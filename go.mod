module krisp

go 1.22
