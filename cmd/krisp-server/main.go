// Command krisp-server runs one inference-serving scenario on the
// simulated GPU stack and reports throughput, tail latency, and energy.
//
// Usage:
//
//	krisp-server -model squeezenet -workers 4 -policy krisp-i
//	krisp-server -model albert,vgg19 -policy model-right-size
//	krisp-server -model resnet152 -workers 2 -policy krisp-i -trace trace.csv
//	krisp-server -model resnet152 -workers 2 -policy krisp-i -trace out.json
//
// A -trace path ending in .json writes a Chrome trace-event file of the
// full telemetry span timeline (load it in Perfetto or chrome://tracing);
// any other extension writes worker 0's kernel trace CSV.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"krisp/internal/models"
	"krisp/internal/policies"
	"krisp/internal/server"
	"krisp/internal/telemetry"
	"krisp/internal/trace"
)

func main() {
	var (
		modelList = flag.String("model", "squeezenet", "model name(s), comma-separated; multiple names co-locate one worker each")
		workers   = flag.Int("workers", 2, "workers per listed model")
		policy    = flag.String("policy", "krisp-i", "partitioning policy: mps-default|static-equal|model-right-size|krisp-o|krisp-i")
		batch     = flag.Int("batch", models.CalibrationBatch, "request batch size")
		seed      = flag.Int64("seed", 42, "jitter seed")
		emulate   = flag.Bool("emulate", false, "use the emulated (stream-masking) KRISP path instead of native support")
		traceOut  = flag.String("trace", "", "trace output path: .json = Chrome trace-event JSON, else kernel trace CSV")
		gpus      = flag.Int("gpus", 1, "number of devices (workers spread round-robin)")
		rate      = flag.Float64("rate", 0, "open-loop arrival rate in req/s (0 = closed-loop max load)")
	)
	flag.Parse()

	kind, err := policies.ByName(*policy)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	var specs []server.WorkerSpec
	for _, name := range strings.Split(*modelList, ",") {
		m, ok := models.ByName(strings.TrimSpace(name))
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown model %q; available: %v\n", name, models.Names())
			os.Exit(2)
		}
		for i := 0; i < *workers; i++ {
			specs = append(specs, server.WorkerSpec{Model: m, Batch: *batch})
		}
	}

	chromeTrace := strings.HasSuffix(*traceOut, ".json")
	var tr *trace.Trace
	var hub *telemetry.Hub
	if *traceOut != "" {
		if chromeTrace {
			hub = telemetry.NewHub(true)
		} else {
			tr = &trace.Trace{}
		}
	}

	cfg := server.Config{
		Policy:         kind,
		GPUs:           *gpus,
		Workers:        specs,
		Seed:           *seed,
		ForceEmulation: *emulate,
		Trace:          tr,
		Telemetry:      hub,
	}
	var res server.Result
	if *rate > 0 {
		open := server.RunOpenLoop(cfg, server.Arrival{RatePerSec: *rate})
		res = open.Result
		fmt.Printf("open loop:           offered %.0f req/s, completed %.0f req/s, request p95 %.1f ms\n",
			open.Offered, open.Completed, open.RequestLatency.P95()/1000)
	} else {
		res = server.Run(cfg)
	}

	fmt.Printf("policy:              %s\n", kind.Label())
	fmt.Printf("workers:             %d (batch %d)\n", len(specs), *batch)
	fmt.Printf("measurement window:  %.1f virtual ms\n", res.WindowUs/1000)
	fmt.Printf("aggregate RPS:       %.1f\n", res.RPS)
	fmt.Printf("energy/inference:    %.4f J\n", res.EnergyPerInference)
	fmt.Printf("avg busy CUs:        %.1f / 60\n", res.AvgBusyCUs)
	if res.Oversubscribed {
		fmt.Println("note: model-wise partitions oversubscribe the device")
	}
	fmt.Println()
	fmt.Printf("%-4s %-14s %9s %9s %10s %10s\n", "#", "model", "batches", "requests", "p95 ms", "mean ms")
	for i := range res.Workers {
		ws := &res.Workers[i]
		fmt.Printf("%-4d %-14s %9d %9d %10.1f %10.1f\n",
			i, ws.Model, ws.Batches, ws.Requests, ws.P95()/1000, ws.BatchLatency.Mean()/1000)
	}

	if tr != nil {
		f, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		if err := tr.WriteCSV(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("\nwrote %d kernel trace records to %s\n", tr.Len(), *traceOut)
	}
	if hub != nil {
		f, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		if err := hub.Trace().WriteChromeTrace(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("\nwrote %d trace events to %s (open in Perfetto)\n", hub.Trace().Len(), *traceOut)
	}
}
