// Command krisp-httpd serves the KRISP control-plane API over HTTP:
// workload inventory, kernel profiles, serving simulations, and the
// paper's experiments.
//
// Usage:
//
//	krisp-httpd -addr :8080
//
//	curl localhost:8080/v1/models
//	curl localhost:8080/v1/profile?model=albert
//	curl -d '{"model":"squeezenet","policy":"krisp-i","workers":4}' localhost:8080/v1/simulate
//	curl localhost:8080/v1/experiments/fig13a
package main

import (
	"flag"
	"log"
	"net/http"
	"time"

	"krisp/internal/httpapi"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	flag.Parse()

	srv := &http.Server{
		Addr:         *addr,
		Handler:      httpapi.Handler(),
		ReadTimeout:  10 * time.Second,
		WriteTimeout: 15 * time.Minute, // full experiments take minutes
	}
	log.Printf("krisp-httpd listening on %s", *addr)
	log.Fatal(srv.ListenAndServe())
}
