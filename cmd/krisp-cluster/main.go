// Command krisp-cluster runs a fleet experiment: simulated multi-GPU
// nodes behind an SLO-aware router, with gpulet placement and epoch
// autoscaling driven by a diurnal workload trace.
//
// Usage:
//
//	krisp-cluster -models squeezenet,mobilenet -policy slo-aware
//	krisp-cluster -compare -degrade 1:0:3.0
//	krisp-cluster -down 2:120 -policy least-outstanding
//	krisp-cluster -chaos gray-node -gateway
//	krisp-cluster -chaos overload-burst -tenants 4
//	krisp-cluster -journeys 100 -slo-monitors
//	krisp-cluster -chaos gray-node -flight flight.json -flight-trace flight-trace.json
//	krisp-cluster -serve :8080   (fleet metrics stay up on /metrics)
//	krisp-cluster -llm llm-small -llm-rate 300
//	krisp-cluster -llm llm-small -llm-disagg -llm-perphase -models ""
//
// Each listed model is served with a diurnal rate profile sweeping
// trough = rate/4 up to peak = rate over the run. Faults are injected
// with -degrade node:gpu:stretch (a GPU running slow for the whole run)
// and -down node:at_ms[:dur_ms] (a node crash, optionally recovering), or
// composed into fleet-scale stories with -chaos (see -chaos list).
// -gateway fronts the router with the resilience layer (admission control,
// circuit breakers, hedging, retry budget) and prints its shed / hedged /
// broken-circuit summary at exit; -chaos and -tenants imply it.
// -journeys N samples every Nth request's journey for per-stage latency
// attribution; -slo-monitors runs burn-rate alerting and prints the monitor
// table at exit; -flight / -flight-trace dump the anomalous-journey ring as
// JSON or a Chrome trace (both imply -journeys 1 unless set).
//
// -llm adds an autoregressive serving workload (llm-small or llm-large)
// at -llm-rate sequences/second under continuous batching; -llm-disagg
// splits the fleet into prefill and decode replicas with KV-cache handoff
// between them, and -llm-perphase right-sizes each phase's partition
// independently (without it, disaggregated replicas all run at the shared
// phase-blind size). Prompt and output lengths draw uniformly from
// -llm-prompt / -llm-output min:max ranges. Pass -models "" to serve the
// LLM workload alone. LLM workloads bypass the gateway, so -llm cannot be
// combined with -gateway, -chaos, or -tenants.
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"strings"

	"krisp/internal/cluster"
	"krisp/internal/cluster/gateway"
	"krisp/internal/cluster/workload"
	"krisp/internal/faults"
	"krisp/internal/httpapi"
	"krisp/internal/llm"
	"krisp/internal/models"
	"krisp/internal/reconfig"
	"krisp/internal/sim"
	"krisp/internal/telemetry"
)

func main() {
	var (
		modelList  = flag.String("models", "squeezenet,mobilenet", "comma-separated model names to serve")
		batch      = flag.Int("batch", 8, "replica batch size")
		rate       = flag.Float64("rate", 5000, "peak request rate per model (req/s); the diurnal trough is rate/4")
		nodes      = flag.Int("nodes", 3, "fleet size")
		gpus       = flag.Int("gpus", 2, "GPUs per node")
		policyName = flag.String("policy", "slo-aware", "routing policy: round-robin|least-outstanding|p2c|slo-aware")
		compare    = flag.Bool("compare", false, "run every routing policy on the same trace and tabulate")
		durationMs = flag.Int("duration-ms", 300, "simulated fleet time (virtual ms)")
		epochMs    = flag.Int("epoch-ms", 50, "autoscaler replanning interval (virtual ms)")
		tickUs     = flag.Int("tick-us", 2000, "router control interval (virtual us)")
		seed       = flag.Int64("seed", 42, "seed for arrivals, jitter, and p2c sampling")
		par        = flag.Int("parallel", 0, "node-advancement workers (0 = GOMAXPROCS, 1 = serial; results identical)")
		schedName  = flag.String("sched", "lookahead", "advancement scheduler: lookahead|lockstep (results identical)")
		headroom   = flag.Float64("headroom", 1.2, "autoscaler overprovisioning factor")
		degrade    = flag.String("degrade", "", "inject a slow GPU: node:gpu:stretch (e.g. 1:0:3.0)")
		down       = flag.String("down", "", "crash a node: node:at_ms[:dur_ms] (no duration = stays down)")
		realCosts  = flag.Bool("real-costs", false, "use production-scale reconfig costs (10s-class reloads) instead of costs compressed to the run's timescale")
		serve      = flag.String("serve", "", "after the run, serve the HTTP API (fleet metrics on /metrics) at this address")
		useGateway = flag.Bool("gateway", false, "front the router with the resilience gateway (admission, breakers, hedging, retry budget)")
		chaosName  = flag.String("chaos", "", "apply a named chaos scenario ('list' to enumerate); implies -gateway")
		tenants    = flag.Int("tenants", 1, "split arrivals across N equal-weight tenants (first half premium class 0, rest class 1); >1 implies -gateway")
		journeys   = flag.Int("journeys", 0, "sample every Nth request's journey for latency attribution (1 = all, 0 = off)")
		sloMon     = flag.Bool("slo-monitors", false, "run burn-rate SLO monitors and print their alert states at exit")
		flightPath = flag.String("flight", "", "dump the flight recorder (anomalous journeys) as JSON to this file")
		tracePath  = flag.String("flight-trace", "", "dump the flight recorder as a Chrome trace (Perfetto) to this file")
		llmName    = flag.String("llm", "", "add an autoregressive LLM workload: llm-small|llm-large (empty = off)")
		llmRate    = flag.Float64("llm-rate", 300, "LLM sequence arrival rate (seq/s, constant)")
		llmDisagg  = flag.Bool("llm-disagg", false, "disaggregate the LLM fleet into prefill and decode replicas with KV handoff")
		llmPhase   = flag.Bool("llm-perphase", false, "right-size prefill and decode partitions independently (vs one shared size)")
		llmSeqs    = flag.Int("llm-maxseqs", 8, "continuous-batch width per LLM replica")
		llmPrompt  = flag.String("llm-prompt", "64:192", "LLM prompt-length range min:max (tokens)")
		llmOutput  = flag.String("llm-output", "16:48", "LLM output-length range min:max (tokens)")
	)
	flag.Parse()

	if *chaosName == "list" {
		for _, s := range cluster.ChaosScenarios() {
			fmt.Printf("%-16s %s\n", s.Name, s.Description)
		}
		return
	}

	var workloads []cluster.Workload
	for _, name := range strings.Split(*modelList, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		m, ok := models.ByName(name)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown model %q; available: %v\n", name, models.Names())
			os.Exit(2)
		}
		workloads = append(workloads, cluster.Workload{
			Model: m,
			Batch: *batch,
			Gen: workload.Diurnal{
				Trough: *rate / 4,
				Peak:   *rate,
				Period: sim.Duration(*durationMs) * sim.Millisecond,
			},
		})
	}
	if *llmName != "" {
		if *useGateway || *chaosName != "" || *tenants > 1 {
			fmt.Fprintln(os.Stderr, "-llm workloads bypass the gateway; drop -gateway/-chaos/-tenants")
			os.Exit(2)
		}
		lm, ok := llm.ByName(*llmName)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown LLM model %q; available: llm-small, llm-large\n", *llmName)
			os.Exit(2)
		}
		pMin, pMax, err := parseRange(*llmPrompt)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		oMin, oMax, err := parseRange(*llmOutput)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		workloads = append(workloads, cluster.Workload{
			Gen: workload.Constant{RatePerSec: *llmRate},
			LLM: &cluster.LLMWorkload{
				Model:   lm,
				MaxSeqs: *llmSeqs,
				Lengths: workload.LengthDist{
					PromptMin: pMin, PromptMax: pMax,
					OutputMin: oMin, OutputMax: oMax,
				},
				Disaggregate: *llmDisagg,
				PerPhase:     *llmPhase,
			},
		})
	}
	if len(workloads) == 0 {
		fmt.Fprintln(os.Stderr, "no workloads: give -models and/or -llm")
		os.Exit(2)
	}

	var nodeFaults []faults.NodeFault
	if *degrade != "" {
		n, g, s, err := parseDegrade(*degrade)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		nodeFaults = append(nodeFaults, faults.NodeFault{
			Node: n, Kind: faults.GPUDegrade, GPU: g, Stretch: s,
		})
	}
	if *down != "" {
		n, at, dur, err := parseDown(*down)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		nodeFaults = append(nodeFaults, faults.NodeFault{
			Node: n, Kind: faults.NodeDown, At: at, Duration: dur,
		})
	}

	costs := reconfig.Costs{
		PartitionSetup: 2 * sim.Millisecond,
		ProcessStart:   3 * sim.Millisecond,
		ModelLoad:      10 * sim.Millisecond,
		SwapDowntime:   55 * sim.Microsecond,
	}
	if *realCosts {
		costs = reconfig.DefaultCosts()
	}

	sched, err := cluster.SchedByName(*schedName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	cfg := cluster.Config{
		Nodes:       *nodes,
		GPUsPerNode: *gpus,
		Workloads:   workloads,
		Tick:        sim.Duration(*tickUs),
		Epoch:       sim.Duration(*epochMs) * sim.Millisecond,
		Duration:    sim.Duration(*durationMs) * sim.Millisecond,
		Seed:        *seed,
		Parallel:    *par,
		Sched:       sched,
		Headroom:    *headroom,
		NodeFaults:  nodeFaults,
		Costs:       costs,
	}

	if *tenants > 1 || *chaosName != "" {
		*useGateway = true
	}
	if *tenants > 1 {
		var shares []workload.TenantShare
		var gts []gateway.Tenant
		for i := 0; i < *tenants; i++ {
			class := 0
			if i >= *tenants/2 {
				class = 1
			}
			shares = append(shares, workload.TenantShare{ID: i, Weight: 1})
			gts = append(gts, gateway.Tenant{ID: i, Weight: 1, Class: class})
		}
		cfg.Tenants = shares
		cfg.Gateway = &gateway.Config{Tenants: gts}
	}
	if *useGateway && cfg.Gateway == nil {
		cfg.Gateway = &gateway.Config{}
	}
	if *chaosName != "" {
		s, err := cluster.ChaosByName(*chaosName)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%v (try -chaos list)\n", err)
			os.Exit(2)
		}
		s.Apply(&cfg)
		fmt.Printf("chaos: %s — %s\n", s.Name, s.Description)
	}

	// Flight dumps need sampled journeys; default to full sampling when a
	// dump was requested but -journeys left off.
	if (*flightPath != "" || *tracePath != "") && *journeys == 0 {
		*journeys = 1
	}
	if *journeys > 0 || *sloMon {
		cfg.Obs = &cluster.Observability{
			SampleEvery: *journeys,
			Monitors:    *sloMon,
			FlightCap:   256,
		}
	}

	policies := []cluster.Policy{}
	if *compare {
		policies = cluster.Policies()
	} else {
		p, err := cluster.PolicyByName(*policyName)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		policies = append(policies, p)
	}

	fmt.Printf("fleet: %d nodes x %d GPUs, %d models, %d ms trace, seed %d\n",
		*nodes, *gpus, len(workloads), *durationMs, *seed)
	if len(nodeFaults) > 0 {
		for _, nf := range nodeFaults {
			fmt.Printf("fault: %s node=%d gpu=%d at=%.0fms stretch=%.1f dur=%.0fms\n",
				nf.Kind, nf.Node, nf.GPU, float64(nf.At)/1000, nf.Stretch, float64(nf.Duration)/1000)
		}
	}
	fmt.Println()
	fmt.Printf("%-18s %8s %8s %8s %8s %6s %9s %9s %8s\n",
		"policy", "routed", "complete", "rejected", "sloviol", "bad", "p95(ms)", "goodput", "energy(J)")

	for i, p := range policies {
		run := cfg
		run.Policy = p
		// The last (or only) policy's run feeds the live metrics registry.
		if *serve != "" && i == len(policies)-1 {
			run.Telemetry = telemetry.DefaultHub()
		}
		f := cluster.New(run)
		res := f.Run()
		fmt.Printf("%-18s %8d %8d %8d %8d %6d %9.2f %9.0f %8.1f\n",
			p, res.Routed, res.Completed, res.Rejected, res.SLOViolations,
			res.BadRequests(), res.Latency.P95()/1000, res.GoodputRPS(), res.EnergyJ)
		if i == len(policies)-1 {
			if *llmName != "" {
				fmt.Printf("\nllm serving:     %d tokens, %d KV handoffs (%.1f ms transfer), %d preemptions\n",
					res.TokensOut, res.KVHandoffs, float64(res.KVHandoffUs)/1000, res.Preemptions)
			}
			fmt.Printf("\nplacement churn: %d migrations, %d resizes, %d drains, %d node faults\n",
				res.Migrations, res.Resizes, res.Drains, res.NodeFaults)
			fmt.Printf("reconfig bill:   process-scoped %.1f ms vs kernel-scoped %.1f ms\n",
				float64(res.ProcessScopedReload)/1000, float64(res.KernelScopedReload)/1000)
			if res.Gateway != nil {
				printGatewaySummary(res.Gateway)
			}
			if ss := f.SLOStatuses(); len(ss) > 0 {
				printSLOSummary(ss)
			}
			dumpFlight(f.FlightRecorder(), *flightPath, *tracePath)
		}
	}

	if *serve != "" {
		fmt.Printf("\nserving fleet metrics at http://%s/metrics (ctrl-c to stop)\n", *serve)
		if err := http.ListenAndServe(*serve, httpapi.Handler()); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}

// printGatewaySummary renders the gateway's shed / hedged / broken-circuit
// outcome table.
func printGatewaySummary(gs *gateway.Stats) {
	fmt.Printf("\ngateway summary\n")
	fmt.Printf("  %-14s %8s %8s %9s %9s %7s\n",
		"verdict", "admitted", "deadline", "tenant", "overload", "queue")
	fmt.Printf("  %-14s %8d %8d %9d %9d %7d\n",
		"requests", gs.Admitted, gs.ShedDeadline, gs.ShedTenant, gs.ShedOverload, gs.ShedQueue)
	fmt.Printf("  hedged %d (won %d) · retried %d · budget-denied %d · cancelled %d\n",
		gs.Hedges, gs.HedgeWins, gs.Retries, gs.BudgetDenied, gs.Cancelled)
	fmt.Printf("  circuits broken %d · half-opened %d · re-closed %d\n",
		gs.BreakerOpens, gs.BreakerHalfOpens, gs.BreakerCloses)
	if len(gs.Tenants) > 1 {
		fmt.Printf("  %-8s %8s %8s %9s\n", "tenant", "admitted", "shed", "shed-rate")
		for _, ts := range gs.Tenants {
			total := ts.Admitted + ts.Shed
			rate := 0.0
			if total > 0 {
				rate = float64(ts.Shed) / float64(total)
			}
			fmt.Printf("  %-8d %8d %8d %8.1f%%\n", ts.ID, ts.Admitted, ts.Shed, 100*rate)
		}
	}
}

// printSLOSummary renders the burn-rate monitor states — one row per model
// with its windows' burn, bad fraction, and recent alert transitions.
func printSLOSummary(ss []telemetry.SLOStatus) {
	fmt.Printf("\nslo burn-rate monitors\n")
	fmt.Printf("  %-14s %8s %10s %10s %10s %12s\n",
		"model", "state", "burn-fast", "burn-slow", "bad", "transitions")
	for _, s := range ss {
		fmt.Printf("  %-14s %8s %10.2f %10.2f %5d/%-5d %12d\n",
			s.Name, s.State, s.BurnFast, s.BurnSlow, s.Bad, s.Total, s.Transitions)
		for _, tr := range s.History {
			fmt.Printf("    %8.0fms  %s -> %s\n", float64(tr.AtUs)/1000, tr.From, tr.To)
		}
	}
}

// dumpFlight writes the flight recorder to the requested files.
func dumpFlight(fl *telemetry.FlightRecorder, jsonPath, tracePath string) {
	write := func(path string, dump func(w io.Writer) error) {
		if path == "" {
			return
		}
		w, err := os.Create(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer w.Close()
		if err := dump(w); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("flight recorder (%d journeys) written to %s\n", fl.Len(), path)
	}
	if fl == nil {
		if jsonPath != "" || tracePath != "" {
			fmt.Fprintln(os.Stderr, "no flight recording (enable -journeys)")
		}
		return
	}
	write(jsonPath, fl.WriteJSON)
	write(tracePath, fl.WriteChromeTrace)
}

func parseRange(s string) (min, max int, err error) {
	parts := strings.Split(s, ":")
	if len(parts) != 2 {
		return 0, 0, fmt.Errorf("bad range %q, want min:max", s)
	}
	min, e1 := strconv.Atoi(parts[0])
	max, e2 := strconv.Atoi(parts[1])
	if e1 != nil || e2 != nil || min < 1 || max < min {
		return 0, 0, fmt.Errorf("bad range %q, want 1 <= min <= max", s)
	}
	return min, max, nil
}

func parseDegrade(s string) (node, gpu int, stretch float64, err error) {
	parts := strings.Split(s, ":")
	if len(parts) != 3 {
		return 0, 0, 0, fmt.Errorf("bad -degrade %q, want node:gpu:stretch", s)
	}
	node, e1 := strconv.Atoi(parts[0])
	gpu, e2 := strconv.Atoi(parts[1])
	stretch, e3 := strconv.ParseFloat(parts[2], 64)
	if e1 != nil || e2 != nil || e3 != nil {
		return 0, 0, 0, fmt.Errorf("bad -degrade %q, want node:gpu:stretch", s)
	}
	return node, gpu, stretch, nil
}

func parseDown(s string) (node int, at sim.Time, dur sim.Duration, err error) {
	parts := strings.Split(s, ":")
	if len(parts) != 2 && len(parts) != 3 {
		return 0, 0, 0, fmt.Errorf("bad -down %q, want node:at_ms[:dur_ms]", s)
	}
	node, e1 := strconv.Atoi(parts[0])
	atMs, e2 := strconv.Atoi(parts[1])
	if e1 != nil || e2 != nil {
		return 0, 0, 0, fmt.Errorf("bad -down %q, want node:at_ms[:dur_ms]", s)
	}
	if len(parts) == 3 {
		durMs, e3 := strconv.Atoi(parts[2])
		if e3 != nil {
			return 0, 0, 0, fmt.Errorf("bad -down %q, want node:at_ms[:dur_ms]", s)
		}
		dur = sim.Duration(durMs) * sim.Millisecond
	}
	return node, sim.Time(atMs) * sim.Millisecond, dur, nil
}
