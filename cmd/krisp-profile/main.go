// Command krisp-profile runs KRISP's install-time profiling step: it
// measures every kernel variant of the requested models on the simulated
// MI50 and writes the Required CUs table (the performance database the
// runtime consults at each kernel launch) as JSON.
//
// Usage:
//
//	krisp-profile                        # profile all models to stdout
//	krisp-profile -models albert,vgg19   # a subset
//	krisp-profile -batch 16 -o perf.json # different batch, to a file
//	krisp-profile -model-summary         # per-model right-size summary
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"krisp/internal/models"
	"krisp/internal/profile"
)

func main() {
	var (
		modelList = flag.String("models", "all", "comma-separated model names, or 'all'")
		batch     = flag.Int("batch", models.CalibrationBatch, "batch size to profile at")
		out       = flag.String("o", "-", "output path for the JSON database ('-' = stdout)")
		summary   = flag.Bool("model-summary", false, "print per-model right-size instead of the kernel DB")
	)
	flag.Parse()

	var selected []models.Model
	if *modelList == "all" {
		selected = models.All()
	} else {
		for _, name := range strings.Split(*modelList, ",") {
			m, ok := models.ByName(strings.TrimSpace(name))
			if !ok {
				fmt.Fprintf(os.Stderr, "unknown model %q; available: %v\n", name, models.Names())
				os.Exit(2)
			}
			selected = append(selected, m)
		}
	}

	p := profile.New(profile.DefaultConfig())

	if *summary {
		fmt.Printf("%-14s %8s %12s %14s\n", "model", "kernels", "right-size", "isolated ms")
		for _, m := range selected {
			ks := m.Kernels(*batch)
			fmt.Printf("%-14s %8d %12d %14.1f\n",
				m.Name, len(ks), p.ModelRightSize(ks), float64(p.ModelLatency(ks, 60))/1000)
		}
		return
	}

	db := profile.NewDB()
	for _, m := range selected {
		db.Profile(p, m.Kernels(*batch))
	}

	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := db.Save(w); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "profiled %d kernel variants\n", db.Len())
}
