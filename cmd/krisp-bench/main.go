// Command krisp-bench regenerates the paper's evaluation tables and
// figures on the simulated MI50 stack.
//
// Usage:
//
//	krisp-bench -exp all            # every experiment
//	krisp-bench -exp fig13a         # one experiment
//	krisp-bench -exp table3,fig8    # a comma-separated subset
//	krisp-bench -quick              # shrunken sweeps for a fast smoke run
//	krisp-bench -parallel 8         # fan grid experiments over 8 workers
//	krisp-bench -list               # list experiment ids
//	krisp-bench -cpuprofile p.out   # write a pprof CPU profile
//	krisp-bench -memprofile m.out   # write a pprof heap profile at exit
//	krisp-bench -trace out.json     # write a Chrome trace (load in Perfetto)
//
// Grid experiments (table4, fig13a/b/c, fig14, fig15, fig16) fan their
// independent simulation cells across -parallel workers; every cell owns
// its engine and RNG, so the output is byte-identical at any worker count.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"krisp/internal/bench"
	"krisp/internal/telemetry"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment id(s), comma-separated, or 'all'")
		quick    = flag.Bool("quick", false, "shrink sweeps and model sets for a fast run")
		seed     = flag.Int64("seed", 42, "simulation jitter seed")
		par      = flag.Int("parallel", runtime.GOMAXPROCS(0), "worker count for grid experiments (1 = serial)")
		list     = flag.Bool("list", false, "list experiment ids and exit")
		cpuProf  = flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
		memProf  = flag.String("memprofile", "", "write a pprof heap profile to this file at exit")
		traceOut = flag.String("trace", "", "write a Chrome trace-event JSON of the runs to this file")
	)
	flag.Parse()

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile shows retained allocations
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
		}()
	}

	if *list {
		for _, id := range bench.Experiments() {
			fmt.Println(id)
		}
		return
	}

	ids := bench.Experiments()
	if *exp != "all" {
		ids = strings.Split(*exp, ",")
	}

	var hub *telemetry.Hub
	if *traceOut != "" {
		hub = telemetry.NewHub(true)
	}

	h := bench.New(bench.Options{Seed: *seed, Quick: *quick, Parallel: *par, Telemetry: hub})
	for _, id := range ids {
		id = strings.TrimSpace(id)
		start := time.Now()
		if err := h.Run(id, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		fmt.Printf("[%s completed in %.1fs]\n", id, time.Since(start).Seconds())
	}

	if hub != nil {
		f, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		defer f.Close()
		if err := hub.Trace().WriteChromeTrace(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		fmt.Printf("[wrote %d trace events to %s]\n", hub.Trace().Len(), *traceOut)
	}
}
