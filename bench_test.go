// Package krisp_test hosts the top-level benchmark harness: one testing.B
// benchmark per table and figure of the paper's evaluation. Each benchmark
// regenerates its experiment through internal/bench (writing the report to
// io.Discard); run krisp-bench to see the rendered tables.
//
//	go test -bench=. -benchmem
//
// The heavyweight grid (Fig. 13a/b/c, Table IV, Fig. 14) shares one
// memoized evaluation, so the first of those benchmarks pays the
// simulation cost and the rest reuse it.
package krisp_test

import (
	"io"
	"sync"
	"testing"

	"krisp/internal/bench"
)

var (
	harnessOnce sync.Once
	harness     *bench.Harness
)

// sharedHarness returns the process-wide harness so grid experiments are
// simulated once across benchmarks.
func sharedHarness() *bench.Harness {
	harnessOnce.Do(func() {
		harness = bench.New(bench.DefaultOptions())
	})
	return harness
}

func runExperiment(b *testing.B, id string) {
	b.Helper()
	h := sharedHarness()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := h.Run(id, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable3ModelRightSize regenerates Table III: per-model kernel
// counts, profiled model right-size, and isolated p95 latency.
func BenchmarkTable3ModelRightSize(b *testing.B) { runExperiment(b, "table3") }

// BenchmarkTable4MaxConcurrency regenerates Table IV: the maximum
// concurrent workers per model and policy without SLO violations.
func BenchmarkTable4MaxConcurrency(b *testing.B) { runExperiment(b, "table4") }

// BenchmarkFig3ModelSensitivity regenerates Fig. 3: model throughput and
// latency versus active CUs.
func BenchmarkFig3ModelSensitivity(b *testing.B) { runExperiment(b, "fig3") }

// BenchmarkFig4KernelTrace regenerates Fig. 4: the per-kernel minimum
// required CU traces for albert and resnext101.
func BenchmarkFig4KernelTrace(b *testing.B) { runExperiment(b, "fig4") }

// BenchmarkFig6KernelScatter regenerates Fig. 6: kernel minCU versus
// kernel size and input size across all profiled kernel variants.
func BenchmarkFig6KernelScatter(b *testing.B) { runExperiment(b, "fig6") }

// BenchmarkFig7AllocationPolicies regenerates Fig. 7: the 19-CU allocation
// under the Distributed, Packed, and Conserved policies.
func BenchmarkFig7AllocationPolicies(b *testing.B) { runExperiment(b, "fig7") }

// BenchmarkFig8DistributionPolicies regenerates Fig. 8: the vec_mult
// latency and energy sweep across CU counts and distribution policies.
func BenchmarkFig8DistributionPolicies(b *testing.B) { runExperiment(b, "fig8") }

// BenchmarkFig12EmulationOverhead regenerates the §V-B emulation overhead
// accounting and its native-vs-adjusted validation.
func BenchmarkFig12EmulationOverhead(b *testing.B) { runExperiment(b, "fig12") }

// BenchmarkFig13aThroughput regenerates Fig. 13a: normalized throughput
// per model, policy, and worker count.
func BenchmarkFig13aThroughput(b *testing.B) { runExperiment(b, "fig13a") }

// BenchmarkFig13bTailLatency regenerates Fig. 13b: p95 tail latency versus
// the 2x-isolated SLO.
func BenchmarkFig13bTailLatency(b *testing.B) { runExperiment(b, "fig13b") }

// BenchmarkFig13cEnergy regenerates Fig. 13c: energy per inference.
func BenchmarkFig13cEnergy(b *testing.B) { runExperiment(b, "fig13c") }

// BenchmarkFig14BatchSensitivity regenerates Fig. 14: geomean normalized
// RPS at batch sizes 16 and 8.
func BenchmarkFig14BatchSensitivity(b *testing.B) { runExperiment(b, "fig14") }

// BenchmarkFig15MixedColocation regenerates Fig. 15: throughput
// distributions across all mixed model pairs.
func BenchmarkFig15MixedColocation(b *testing.B) { runExperiment(b, "fig15") }

// BenchmarkFig16OverlapLimit regenerates Fig. 16: sensitivity to the
// kernel overlap (oversubscription) limit.
func BenchmarkFig16OverlapLimit(b *testing.B) { runExperiment(b, "fig16") }

// BenchmarkFig2ReconfigurationOverhead regenerates Fig. 2: partition
// resize time-to-effect and downtime for restart, shadow-instance, and
// kernel-scoped schemes.
func BenchmarkFig2ReconfigurationOverhead(b *testing.B) { runExperiment(b, "fig2") }

// BenchmarkAblationDesignChoices measures KRISP's individual design
// decisions end to end: Conserved vs Distributed/Packed kernel masks, the
// fair-share allocation floor, and interference-tax sensitivity.
func BenchmarkAblationDesignChoices(b *testing.B) { runExperiment(b, "ablation") }

// BenchmarkExtensionMRSRequest measures the paper's suggested enhancement
// to prior works: request-granular model right-sizing on kernel-scoped
// partition instances.
func BenchmarkExtensionMRSRequest(b *testing.B) { runExperiment(b, "extension") }

// BenchmarkExtensionLoadSweep measures open-loop (Poisson-arrival) serving
// across offered load — the fluctuating-rate regime beyond the paper's
// max-load evaluation.
func BenchmarkExtensionLoadSweep(b *testing.B) { runExperiment(b, "loadsweep") }

// BenchmarkExtensionScheduler measures Gpulet-style epoch replanning over
// a diurnal trace and its reconfiguration bill, process- vs kernel-scoped.
func BenchmarkExtensionScheduler(b *testing.B) { runExperiment(b, "scheduler") }
