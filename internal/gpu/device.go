package gpu

import (
	"fmt"
	"math"
	"math/bits"

	"krisp/internal/sim"
)

// KernelWork is the device-level description of one kernel dispatch: how
// much work it carries and how that work responds to CU allocation. Higher
// layers (internal/kernels) attach names, families, and sizes; the device
// only needs these numbers.
type KernelWork struct {
	// Workgroups is the total number of workgroups (thread blocks) in the
	// kernel's grid.
	Workgroups int
	// ThreadsPerWG is the workgroup size in threads. It does not affect
	// timing directly (the WGTime already accounts for it) but is tracked
	// for kernel-size reporting (Fig. 6a).
	ThreadsPerWG int
	// WGTime is the execution time of a single workgroup occupying one
	// workgroup slot, in virtual microseconds.
	WGTime sim.Duration
	// MemBytes is the total DRAM traffic of the kernel in bytes. Kernels
	// with high MemBytes become bandwidth-bound and tolerate CU
	// restriction (the paper's Fig. 6 observation that thread count alone
	// does not predict the minimum required CUs).
	MemBytes float64
	// Tail is a fixed serial epilogue (drain, final reduction) added to
	// every execution, in microseconds.
	Tail sim.Duration
	// WaveExponent controls how gracefully the kernel degrades when it
	// runs more waves than its single-wave knee: execution time scales as
	// waves^WaveExponent. 0 means 1.0 (linear, the worst case). Real
	// compute kernels land around 0.6-0.8 because deeper per-CU queues
	// improve latency hiding — this is what lets a 55-CU kernel survive
	// on a 15-CU partition with ~2.5x (not 4x) slowdown, as the paper's
	// SLO results imply.
	WaveExponent float64
}

// Threads returns the total thread count of the dispatch (Fig. 6a x-axis).
func (w KernelWork) Threads() int { return w.Workgroups * w.ThreadsPerWG }

// DeviceSpec captures the fixed hardware parameters of the simulated GPU.
type DeviceSpec struct {
	Topo Topology
	// SlotsPerCU is the number of workgroups a CU can execute
	// concurrently. The MI50's 2560 threads/CU with 256-thread workgroups
	// gives 10 slots.
	SlotsPerCU int
	// MemBandwidth is the device DRAM bandwidth in bytes per microsecond
	// (1 TB/s == 1e6 bytes/us).
	MemBandwidth float64
	// InterferenceTax scales the cost of oversubscribing a CU's issue
	// capacity: when the total compute pressure P on a CU exceeds 1.0
	// (saturation), every workgroup on it stretches by an extra
	// (1+InterferenceTax) x (P-1). Sharing is cheap while the machine has
	// slack — the premise that makes co-location attractive — and
	// destructively expensive once saturated, which is why isolation
	// (KRISP-I) outperforms free sharing at high worker counts.
	InterferenceTax float64
	// ShareTax is the baseline cost of co-location even below
	// saturation: every unit of co-runner compute pressure on a kernel's
	// CUs stretches it by ShareTax (cache thrash, scheduler
	// interference). Zero would make unsaturated sharing literally free,
	// which real hardware never is.
	ShareTax float64
	// HBMBytes is the device memory capacity in bytes. It bounds the
	// KV-cache ledger (ReserveKV/FreeKV) used by autoregressive serving;
	// zero means no KV budget is enforced, which keeps every pre-existing
	// spec literal behaving exactly as before.
	HBMBytes float64
}

// MI50Spec approximates the AMD MI50: 60 CUs, 10 workgroup slots per CU,
// 1 TB/s HBM2 bandwidth.
func MI50Spec() DeviceSpec {
	return DeviceSpec{
		Topo:            MI50,
		SlotsPerCU:      10,
		MemBandwidth:    1.0e6, // 1 TB/s in bytes/us
		InterferenceTax: 1.0,
		ShareTax:        0.25,
		HBMBytes:        32e9, // 32 GB HBM2
	}
}

// MI100Spec approximates the AMD MI100: 120 CUs and 1.23 TB/s HBM2.
func MI100Spec() DeviceSpec {
	return DeviceSpec{
		Topo:            MI100,
		SlotsPerCU:      10,
		MemBandwidth:    1.23e6,
		InterferenceTax: 1.0,
		ShareTax:        0.25,
		HBMBytes:        32e9, // 32 GB HBM2
	}
}

// Meter observes device activity state changes; internal/energy implements
// it to integrate power over virtual time. busyCUs is the number of CUs
// with at least one kernel assigned, kernels the number of kernels
// currently executing.
type Meter interface {
	ObserveState(now sim.Time, busyCUs, kernels int)
}

// Exec is one kernel execution in flight on the device.
type Exec struct {
	work   KernelWork
	mask   CUMask
	onDone func()

	remaining  float64 // fraction of the kernel still to execute, 1 → 0
	curTotal   sim.Duration
	lastUpdate sim.Time
	done       *sim.Event
	id         uint64
	// runIdx is this execution's slot in the device's running slice, kept
	// current by swap-removal so membership updates stay O(1).
	runIdx int
	// pressure is this kernel's per-CU compute pressure contribution,
	// fixed at dispatch; memIntensity its bandwidth demand weight.
	pressure     float64
	memIntensity float64
	// completeFn is the cached completion closure scheduled on the engine;
	// created once per Exec object and reused across free-list recycles so
	// steady-state launches allocate nothing.
	completeFn func()
}

// Mask returns the CU mask this execution was dispatched with.
func (x *Exec) Mask() CUMask { return x.mask }

// Device simulates kernel execution over the SE/CU topology. All methods
// must be called from the simulation goroutine.
type Device struct {
	Spec DeviceSpec

	eng *sim.Engine
	// running holds the in-flight executions as a dense slice (launch
	// order, perturbed by swap-removal on completion). retime walks it on
	// every launch and completion, so it must iterate like an array, not a
	// map — and slice order is deterministic, where map order is not.
	running  []*Exec
	counters []int // per-CU count of kernels whose mask includes the CU (Resource Monitor)
	busy     int   // CUs with at least one kernel assigned, maintained incrementally
	// healthy tracks the CUs still alive; allHealthy short-circuits the
	// per-launch health intersection while no CU has been killed, so the
	// fault-free path stays bit-identical to a device without the health
	// machinery.
	healthy    CUMask
	allHealthy bool
	// degrade holds each CU's extra execution stretch (0 = full speed); a
	// degraded CU slows every workgroup wave scheduled on its shader
	// engine's enabled set proportionally. numDegraded gates the cost.
	degrade     []float64
	numDegraded int
	// pressure is the per-CU sum of the running kernels' compute pressure
	// (occupancy x compute-boundedness). It drives the contention model:
	// a low-occupancy or bandwidth-bound co-runner barely disturbs a CU,
	// which is exactly the fine-grain under-utilization KRISP harvests.
	pressure []float64
	// memPressure is the sum of running kernels' memory intensity — the
	// demand weight dividing DRAM bandwidth.
	memPressure float64
	meter       Meter
	nextID      uint64
	// gen is the occupancy generation: it advances whenever the per-CU
	// kernel counters change, so mask caches keyed on it can prove an
	// occupancy state unchanged without comparing counter arrays.
	gen uint64
	// execFree recycles completed Exec objects so steady-state launches
	// allocate nothing.
	execFree []*Exec
	// tel, when non-nil, receives occupancy/launch/health telemetry. The
	// handles inside are resolved once at construction (see telemetry.go);
	// with telemetry disabled this stays nil and costs one check per
	// charge/release.
	tel *Telemetry

	// busyIntegral accumulates busyCUs x time for utilization reporting.
	busyIntegral float64
	lastBusyAt   sim.Time
	lastBusyCUs  int

	// kvCapacity/kvInUse are the KV-cache ledger for autoregressive
	// serving: replicas reserve bytes at sequence admission and per decoded
	// token, and free them when sequences retire or are preempted.
	// kvCapacity <= 0 disables the ledger (every reservation succeeds), so
	// devices built from pre-LLM spec literals are unchanged.
	kvCapacity float64
	kvInUse    float64
}

// NewDevice creates a device bound to the simulation engine. meter may be
// nil when energy accounting is not needed.
func NewDevice(eng *sim.Engine, spec DeviceSpec, meter Meter) *Device {
	if err := spec.Topo.Validate(); err != nil {
		panic(err)
	}
	if spec.SlotsPerCU <= 0 {
		panic("gpu: SlotsPerCU must be positive")
	}
	if spec.MemBandwidth <= 0 {
		panic("gpu: MemBandwidth must be positive")
	}
	return &Device{
		Spec:       spec,
		eng:        eng,
		counters:   make([]int, spec.Topo.TotalCUs()),
		pressure:   make([]float64, spec.Topo.TotalCUs()),
		healthy:    FullMask(spec.Topo),
		allHealthy: true,
		degrade:    make([]float64, spec.Topo.TotalCUs()),
		meter:      meter,
		kvCapacity: spec.HBMBytes,
	}
}

// SetKVCapacity overrides the device's KV-cache budget in bytes (the spec
// HBM size minus resident weights, or a deliberately tight test budget).
// Non-positive disables the ledger. Lowering the budget below the bytes
// already in use is allowed: existing sequences keep their reservations
// and new ones are refused until usage drains below the new cap.
func (d *Device) SetKVCapacity(bytes float64) { d.kvCapacity = bytes }

// KVCapacity returns the KV budget in bytes (<= 0: unenforced).
func (d *Device) KVCapacity() float64 { return d.kvCapacity }

// KVInUse returns the bytes currently reserved.
func (d *Device) KVInUse() float64 { return d.kvInUse }

// ReserveKV claims bytes from the KV budget, reporting whether they fit.
// Admission at exact capacity succeeds — the ledger refuses only requests
// that would exceed the budget.
func (d *Device) ReserveKV(bytes float64) bool {
	if d.kvCapacity > 0 && d.kvInUse+bytes > d.kvCapacity {
		return false
	}
	d.kvInUse += bytes
	return true
}

// FreeKV returns bytes to the KV budget.
func (d *Device) FreeKV(bytes float64) {
	d.kvInUse -= bytes
	if d.kvInUse < 0 {
		d.kvInUse = 0
	}
}

// HealthMask returns the bitmap of CUs still alive.
func (d *Device) HealthMask() CUMask { return d.healthy }

// AllHealthy reports whether no CU has been killed.
func (d *Device) AllHealthy() bool { return d.allHealthy }

// DegradedCUs returns the number of CUs currently running degraded.
func (d *Device) DegradedCUs() int { return d.numDegraded }

// KillCU permanently removes a CU from service: the health bitmap drops
// it, in-flight executions whose mask includes it are re-masked onto their
// surviving CUs (falling back to the whole healthy set when nothing
// survives) and re-timed, and future launches are intersected with the
// health bitmap. The last healthy CU can never be killed — the device
// refuses (returns false) so the simulation always retains a making-
// progress path.
func (d *Device) KillCU(cu int) bool {
	if cu < 0 || cu >= d.Spec.Topo.TotalCUs() || !d.healthy.Has(cu) {
		return false
	}
	if d.healthy.Count() == 1 {
		return false
	}
	d.accumulateBusy()
	d.healthy = d.healthy.Clear(cu)
	d.allHealthy = false
	if t := d.tel; t != nil {
		t.CUKills.Inc()
		t.HealthyCUs.Set(int64(d.healthy.Count()))
	}
	for _, x := range d.running {
		if !x.mask.Has(cu) {
			continue
		}
		// Release the old footprint, shrink the mask around the dead CU,
		// and charge the new footprint.
		d.releaseExec(x.mask, x.pressure)
		d.memPressure -= x.memIntensity
		nm := x.mask.And(d.healthy)
		if nm.IsEmpty() {
			nm = d.healthy
		}
		x.mask = nm
		x.pressure, x.memIntensity = d.pressureOf(x.work, nm)
		d.chargeExec(nm, x.pressure)
		d.memPressure += x.memIntensity
	}
	d.retime()
	d.observe()
	return true
}

// SetCUDegrade sets a CU's extra execution stretch: 0 restores full speed,
// 1.0 roughly doubles the cost of waves scheduled over it. Running kernels
// are re-timed immediately.
func (d *Device) SetCUDegrade(cu int, stretch float64) {
	if cu < 0 || cu >= len(d.degrade) || stretch < 0 {
		return
	}
	was, now := d.degrade[cu] > 0, stretch > 0
	if was == now && d.degrade[cu] == stretch {
		return
	}
	d.accumulateBusy()
	d.degrade[cu] = stretch
	switch {
	case now && !was:
		d.numDegraded++
	case was && !now:
		d.numDegraded--
	}
	d.retime()
}

// KernelCount returns the number of kernels currently assigned to CU cu —
// the per-CU kernel counter KRISP's Resource Monitor exposes to the
// allocator (Algorithm 1's CU_Kernel_Counters).
func (d *Device) KernelCount(cu int) int { return d.counters[cu] }

// Counters returns a copy of all per-CU kernel counters.
func (d *Device) Counters() []int {
	out := make([]int, len(d.counters))
	copy(out, d.counters)
	return out
}

// CountersView returns the live per-CU kernel counters without copying —
// the zero-allocation Resource Monitor read the dispatch fast path uses.
// The slice is owned by the device: callers must not mutate it or hold it
// across simulation events (use OccupancyGen to detect staleness).
func (d *Device) CountersView() []int { return d.counters }

// OccupancyGen returns the occupancy generation counter; it changes
// whenever any per-CU kernel counter changes.
func (d *Device) OccupancyGen() uint64 { return d.gen }

// Running returns the number of kernels currently executing.
func (d *Device) Running() int { return len(d.running) }

// BusyCUs returns the number of CUs with at least one kernel assigned.
func (d *Device) BusyCUs() int { return d.busy }

// chargeExec adds one execution's footprint — kernel counter and compute
// pressure — to every CU enabled in m, iterating set bits directly so the
// per-launch bookkeeping allocates nothing.
func (d *Device) chargeExec(m CUMask, pressure float64) {
	d.gen++
	for w := m.lo; w != 0; w &= w - 1 {
		d.chargeCU(bits.TrailingZeros64(w), pressure)
	}
	for w := m.hi; w != 0; w &= w - 1 {
		d.chargeCU(64+bits.TrailingZeros64(w), pressure)
	}
	d.publishOccupancy()
}

func (d *Device) chargeCU(cu int, pressure float64) {
	if d.counters[cu] == 0 {
		d.busy++
	}
	d.counters[cu]++
	d.pressure[cu] += pressure
}

// releaseExec undoes chargeExec for a finished or re-masked execution.
func (d *Device) releaseExec(m CUMask, pressure float64) {
	d.gen++
	for w := m.lo; w != 0; w &= w - 1 {
		d.releaseCU(bits.TrailingZeros64(w), pressure)
	}
	for w := m.hi; w != 0; w &= w - 1 {
		d.releaseCU(64+bits.TrailingZeros64(w), pressure)
	}
	d.publishOccupancy()
}

func (d *Device) releaseCU(cu int, pressure float64) {
	d.counters[cu]--
	if d.counters[cu] < 0 {
		panic("gpu: per-CU kernel counter went negative")
	}
	if d.counters[cu] == 0 {
		d.busy--
	}
	d.pressure[cu] -= pressure
	if d.pressure[cu] < 0 {
		d.pressure[cu] = 0
	}
}

// AvgBusyCUs returns the time-weighted average number of busy CUs since the
// device was created (or since ResetUtilization).
func (d *Device) AvgBusyCUs() float64 {
	d.accumulateBusy()
	if d.eng.Now() == 0 {
		return 0
	}
	return d.busyIntegral / d.eng.Now()
}

// ResetUtilization clears the busy-CU integral, starting a fresh
// measurement window at the current virtual time.
func (d *Device) ResetUtilization() {
	d.busyIntegral = 0
	d.lastBusyAt = d.eng.Now()
	d.lastBusyCUs = d.BusyCUs()
}

// Reset returns the device to its just-constructed state for engine reuse:
// in-flight executions are detached and recycled (their completion events
// died with the engine's reset), occupancy and pressure state zeroed, and
// CU health restored. The occupancy generation and exec id counters stay
// monotonic — caches keyed on gen can never confuse a pre-reset state with
// a post-reset one, and nothing observes their absolute values — which is
// what lets the exec free list and mask caches survive across runs.
func (d *Device) Reset() {
	for _, x := range d.running {
		x.onDone = nil
		x.done = nil
		x.work = KernelWork{}
		x.mask = CUMask{}
		d.execFree = append(d.execFree, x)
	}
	d.running = d.running[:0]
	for i := range d.counters {
		d.counters[i] = 0
		d.pressure[i] = 0
		d.degrade[i] = 0
	}
	d.busy = 0
	d.numDegraded = 0
	d.memPressure = 0
	d.healthy = FullMask(d.Spec.Topo)
	d.allHealthy = true
	d.gen++
	d.busyIntegral = 0
	d.lastBusyAt = 0
	d.lastBusyCUs = 0
	d.kvInUse = 0
	d.kvCapacity = d.Spec.HBMBytes
}

func (d *Device) accumulateBusy() {
	now := d.eng.Now()
	d.busyIntegral += float64(d.lastBusyCUs) * (now - d.lastBusyAt)
	d.lastBusyAt = now
	d.lastBusyCUs = d.BusyCUs()
}

// Launch begins executing a kernel on the CUs enabled in mask. onDone fires
// (via the simulation engine) when the kernel completes. The mask must be
// non-empty and the work non-trivial.
func (d *Device) Launch(work KernelWork, mask CUMask, onDone func()) *Exec {
	if mask.IsEmpty() {
		panic("gpu: Launch with empty CU mask")
	}
	if work.Workgroups <= 0 {
		panic(fmt.Sprintf("gpu: Launch with %d workgroups", work.Workgroups))
	}
	if !d.allHealthy {
		// Re-mask around dead CUs; a mask with no survivors falls back to
		// the whole healthy set so the launch always makes progress.
		if m := mask.And(d.healthy); m.IsEmpty() {
			mask = d.healthy
		} else {
			mask = m
		}
	}
	d.accumulateBusy()
	if t := d.tel; t != nil {
		t.Launches.Inc()
	}
	d.nextID++
	var x *Exec
	if n := len(d.execFree); n > 0 {
		x = d.execFree[n-1]
		d.execFree[n-1] = nil
		d.execFree = d.execFree[:n-1]
	} else {
		x = &Exec{}
		xx := x
		x.completeFn = func() { d.complete(xx) }
	}
	x.work = work
	x.mask = mask
	x.onDone = onDone
	x.remaining = 1
	x.curTotal = 0
	x.lastUpdate = d.eng.Now()
	x.done = nil
	x.id = d.nextID
	x.pressure, x.memIntensity = d.pressureOf(work, mask)
	d.chargeExec(mask, x.pressure)
	d.memPressure += x.memIntensity
	x.runIdx = len(d.running)
	d.running = append(d.running, x)
	d.retime()
	d.observe()
	return x
}

// complete finishes an execution: releases its CUs, re-times survivors, and
// invokes the completion callback.
func (d *Device) complete(x *Exec) {
	d.accumulateBusy()
	last := len(d.running) - 1
	moved := d.running[last]
	d.running[x.runIdx] = moved
	moved.runIdx = x.runIdx
	d.running[last] = nil
	d.running = d.running[:last]
	d.releaseExec(x.mask, x.pressure)
	d.memPressure -= x.memIntensity
	if d.memPressure < 0 {
		d.memPressure = 0
	}
	d.retime()
	d.observe()
	// Recycle before the callback: the Exec is fully detached from device
	// state, and a callback that immediately launches the next kernel can
	// then reuse the object. The callback runs from a stack copy so the
	// reset cannot clobber it.
	onDone := x.onDone
	x.onDone = nil
	x.done = nil
	x.work = KernelWork{}
	x.mask = CUMask{}
	d.execFree = append(d.execFree, x)
	if onDone != nil {
		onDone()
	}
}

func (d *Device) observe() {
	if d.meter != nil {
		d.meter.ObserveState(d.eng.Now(), d.BusyCUs(), len(d.running))
	}
	if t := d.tel; t != nil {
		t.RunningKernels.Set(int64(len(d.running)))
	}
}

// retime re-evaluates every running kernel's duration under the current
// contention state and reschedules its completion event. This is the
// processor-sharing core: each kernel tracks the fraction of work
// remaining; when conditions change, elapsed progress is banked at the old
// speed and the residue re-timed at the new speed.
func (d *Device) retime() {
	now := d.eng.Now()
	for _, x := range d.running {
		// Bank progress at the previous speed.
		if x.curTotal > 0 {
			elapsed := now - x.lastUpdate
			x.remaining -= elapsed / x.curTotal
			if x.remaining < 0 {
				x.remaining = 0
			}
		}
		x.lastUpdate = now
		x.curTotal = d.duration(x.work, x.mask, x.pressure, x.memIntensity)
		finish := now + x.remaining*x.curTotal
		if x.done == nil {
			x.done = d.eng.At(finish, x.completeFn)
		} else {
			x.done = d.eng.Reschedule(x.done, finish)
		}
	}
}

// pressureOf computes a kernel's contention footprint on the mask it was
// granted: its per-CU compute pressure (slot occupancy x
// compute-boundedness — how much of a co-located CU's issue capacity it
// consumes) and its memory intensity (the fraction of its lifetime spent
// saturating DRAM bandwidth). A bandwidth-bound or low-occupancy kernel
// leaves most of the CU usable by others — the fine-grain
// under-utilization the paper targets.
func (d *Device) pressureOf(work KernelWork, mask CUMask) (compute, memIntensity float64) {
	nCUs := mask.Count()
	if nCUs == 0 {
		return 0, 0
	}
	occ := float64(work.Workgroups) / float64(nCUs*d.Spec.SlotsPerCU)
	if occ > 1 {
		occ = 1
	}
	// Solo compute time (average view) vs memory time on this mask.
	waves := math.Ceil(float64(work.Workgroups) / float64(nCUs*d.Spec.SlotsPerCU))
	if waves < 1 {
		waves = 1
	}
	comp := waves * float64(work.WGTime)
	mem := work.MemBytes / d.Spec.MemBandwidth
	intensity := 1.0
	memIntensity = 0
	if comp+mem > 0 {
		intensity = comp / (comp + mem)
		memIntensity = mem / (comp + mem)
	}
	return occ * intensity, memIntensity
}

// Duration computes the solo execution time of work on mask: no CU
// co-location and full memory bandwidth. Exported for profiling and tests.
func (d *Device) Duration(work KernelWork, mask CUMask) sim.Duration {
	return d.duration(work, mask, math.Inf(1), 0)
}

// duration is the full model. ownPressure is the calling kernel's own
// per-CU pressure contribution, subtracted from the device's per-CU
// pressure to leave only co-runners. Pass +Inf to ignore contention (solo
// view).
//
// The model follows observed AMD behaviour (paper §IV-C, [51]):
//
//   - workgroups are split equally across the SEs that have at least one
//     enabled CU — so the least-provisioned SE gates the kernel, which is
//     what produces the Packed-policy spikes at 16/31/46 CUs and the
//     Distributed-policy dips below one full SE (Fig. 8);
//   - within an SE, the workgroup manager dispatches workgroups to CUs as
//     slots free up, so the SE behaves as a pooled set of workgroup
//     slots; execution proceeds in waves of the pooled slots, quantized
//     to half waves, and waves beyond the first cost waves^WaveExponent
//     (latency hiding improves with per-CU queue depth);
//   - co-location is free while the enabled CUs have issue slack; once
//     their aggregate compute pressure exceeds capacity, every workgroup
//     stretches by the oversubscription times (1 + InterferenceTax);
//   - memory-bound kernels are limited by their demand-weighted share of
//     device bandwidth, which is why large kernels can tolerate few CUs
//     (Fig. 6).
func (d *Device) duration(work KernelWork, mask CUMask, ownPressure, ownMem float64) sim.Duration {
	topo := d.Spec.Topo
	// Two passes over the (at most 8) SEs instead of materializing a
	// UsedSEs slice: duration runs for every running kernel on every
	// launch/complete, so this path must not allocate.
	nSE := 0
	for se := 0; se < topo.NumSEs; se++ {
		if mask.seBits(topo, se) != 0 {
			nSE++
		}
	}
	if nSE == 0 {
		panic("gpu: Duration with empty mask")
	}
	baseWG := work.Workgroups / nSE
	extraWG := work.Workgroups % nSE

	var worst float64 // waveCost x stretch, worst SE
	i := 0
	for se := 0; se < topo.NumSEs; se++ {
		sb := mask.seBits(topo, se)
		if sb == 0 {
			continue
		}
		wgSE := baseWG
		if i < extraWG {
			wgSE++
		}
		i++
		if wgSE == 0 {
			continue
		}
		a := bits.OnesCount64(sb)
		waves := float64(wgSE) / float64(a*d.Spec.SlotsPerCU)
		// Half-wave quantization keeps the single-wave knee sharp (the
		// minCU phenomenon) while letting deep restriction degrade in
		// steps.
		wq := math.Ceil(2*waves) / 2
		if wq < 1 {
			wq = 1
		}
		waveCost := wq
		if work.WaveExponent > 0 && work.WaveExponent != 1 && wq > 1 {
			waveCost = math.Pow(wq, work.WaveExponent)
		}
		// Degraded CUs slow the waves scheduled across this SE's enabled
		// set in proportion to how much of the set they are. Gated on
		// numDegraded so the fault-free path performs no extra float work.
		if d.numDegraded > 0 {
			sumDeg := 0.0
			base := se * topo.CUsPerSE
			for w := sb; w != 0; w &= w - 1 {
				sumDeg += d.degrade[base+bits.TrailingZeros64(w)]
			}
			if sumDeg > 0 {
				waveCost *= 1 + sumDeg/float64(a)
			}
		}
		// Contention stretch: co-runners always cost a little (cache and
		// scheduler interference, ShareTax), and once the enabled CUs'
		// aggregate compute pressure exceeds capacity the oversubscribed
		// fraction costs fully plus the interference tax.
		if !math.IsInf(ownPressure, 1) {
			sumP := 0.0
			base := se * topo.CUsPerSE
			for w := sb; w != 0; w &= w - 1 {
				sumP += d.pressure[base+bits.TrailingZeros64(w)]
			}
			avgP := sumP / float64(a)
			other := avgP - ownPressure
			if other < 0 {
				other = 0
			}
			stretch := 1 + d.Spec.ShareTax*other
			if avgP > 1 {
				stretch += (1 + d.Spec.InterferenceTax) * (avgP - 1)
			}
			waveCost *= stretch
		}
		if waveCost > worst {
			worst = waveCost
		}
	}
	compute := sim.Duration(worst) * work.WGTime

	var mem sim.Duration
	if work.MemBytes > 0 {
		// Bandwidth is shared in proportion to memory intensity: a
		// compute-bound co-runner barely dents a streaming kernel's
		// bandwidth, while two streaming kernels halve each other's.
		demand := 1.0
		if !math.IsInf(ownPressure, 1) {
			others := d.memPressure - ownMem
			if others > 0 {
				demand += others
			}
		}
		mem = work.MemBytes * demand / d.Spec.MemBandwidth
	}

	t := compute
	if mem > t {
		t = mem
	}
	return t + work.Tail
}

// IsolatedDuration is Duration on an otherwise-idle device: no CU sharing
// and full memory bandwidth. It is the closed form the profiler uses, so
// minCU searches do not need event simulation.
func (d *Device) IsolatedDuration(work KernelWork, mask CUMask) sim.Duration {
	if d.Running() != 0 {
		panic("gpu: IsolatedDuration called while kernels are running")
	}
	return d.Duration(work, mask)
}
