package gpu

import (
	"testing"

	"krisp/internal/sim"
)

func TestKillCUShrinksHealthAndFutureLaunches(t *testing.T) {
	eng, d := newTestDevice()
	if !d.AllHealthy() {
		t.Fatal("fresh device not all-healthy")
	}
	if !d.KillCU(0) || !d.KillCU(1) {
		t.Fatal("KillCU refused on a healthy device")
	}
	if d.AllHealthy() || d.HealthMask().Count() != 58 {
		t.Fatalf("health after two kills: %d CUs", d.HealthMask().Count())
	}
	// A launch asking for the dead CUs is re-masked around them.
	var got CUMask
	done := false
	x := d.Launch(computeKernel(10), RangeMask(MI50, 0, 4), func() { done = true })
	got = x.Mask()
	if got.Has(0) || got.Has(1) {
		t.Errorf("launch mask still includes dead CUs: %v", got)
	}
	if got.Count() != 2 {
		t.Errorf("launch mask has %d CUs, want the 2 survivors", got.Count())
	}
	eng.Run()
	if !done {
		t.Fatal("launch on re-masked CUs never completed")
	}
}

func TestKillCUFallsBackToHealthySetWhenMaskDies(t *testing.T) {
	eng, d := newTestDevice()
	done := false
	d.Launch(computeKernel(10), RangeMask(MI50, 0, 1), func() { done = true })
	// Kill the only CU the kernel runs on: it must be re-masked onto the
	// surviving set and still complete.
	if !d.KillCU(0) {
		t.Fatal("KillCU refused")
	}
	for _, x := range d.running {
		if x.mask.Has(0) {
			t.Error("in-flight exec still masked to the dead CU")
		}
	}
	eng.Run()
	if !done {
		t.Fatal("kernel never completed after its CU died")
	}
	if c := d.KernelCount(0); c != 0 {
		t.Errorf("dead CU still has kernel counter %d", c)
	}
}

func TestKillCURefusesLastHealthyCU(t *testing.T) {
	_, d := newTestDevice()
	for cu := 0; cu < 59; cu++ {
		if !d.KillCU(cu) {
			t.Fatalf("KillCU(%d) refused", cu)
		}
	}
	if d.KillCU(59) {
		t.Fatal("killed the last healthy CU")
	}
	if d.HealthMask().Count() != 1 {
		t.Fatalf("%d healthy CUs, want 1", d.HealthMask().Count())
	}
}

func TestKillCUReleasesOldFootprint(t *testing.T) {
	eng, d := newTestDevice()
	d.Launch(computeKernel(600), FullMask(MI50), nil)
	d.KillCU(3)
	// The dead CU's counter must be zero, every survivor's still 1.
	if d.KernelCount(3) != 0 {
		t.Errorf("dead CU counter = %d", d.KernelCount(3))
	}
	for cu := 0; cu < 60; cu++ {
		if cu == 3 {
			continue
		}
		if d.KernelCount(cu) != 1 {
			t.Fatalf("CU %d counter = %d, want 1", cu, d.KernelCount(cu))
		}
	}
	eng.Run()
	for cu := 0; cu < 60; cu++ {
		if d.KernelCount(cu) != 0 {
			t.Fatalf("CU %d counter = %d after completion", cu, d.KernelCount(cu))
		}
	}
}

func TestDegradedCUSlowsExecution(t *testing.T) {
	_, d := newTestDevice()
	mask := RangeMask(MI50, 0, 15) // all of SE0
	base := d.IsolatedDuration(computeKernel(150), mask)

	d.SetCUDegrade(0, 1.0)
	if d.DegradedCUs() != 1 {
		t.Fatalf("DegradedCUs = %d", d.DegradedCUs())
	}
	slow := d.IsolatedDuration(computeKernel(150), mask)
	if slow <= base {
		t.Errorf("degraded duration %v not above baseline %v", slow, base)
	}

	d.SetCUDegrade(0, 0)
	if d.DegradedCUs() != 0 {
		t.Fatalf("DegradedCUs = %d after restore", d.DegradedCUs())
	}
	if got := d.IsolatedDuration(computeKernel(150), mask); got != base {
		t.Errorf("restored duration %v != baseline %v", got, base)
	}
}

func TestDegradeRetimesInFlightKernel(t *testing.T) {
	eng, d := newTestDevice()
	var doneAt sim.Time
	mask := RangeMask(MI50, 0, 15)
	base := d.IsolatedDuration(computeKernel(150), mask)
	d.Launch(computeKernel(150), mask, func() { doneAt = eng.Now() })

	// Halfway through, degrade one of its CUs: completion must move out.
	eng.RunUntil(base / 2)
	d.SetCUDegrade(0, 2.0)
	eng.Run()
	if doneAt <= base {
		t.Errorf("degraded mid-flight kernel finished at %v, no later than solo %v", doneAt, base)
	}
}
