package gpu

import (
	"testing"

	"krisp/internal/sim"
)

// FuzzDuration drives the latency model with arbitrary work shapes and
// masks; durations must always be positive and finite, and enabling more
// CUs within an already-used SE must never hurt.
func FuzzDuration(f *testing.F) {
	f.Add(uint(600), uint(10), uint64(0xfff), false)
	f.Add(uint(1), uint(1), uint64(1), true)
	f.Add(uint(65535), uint(500), uint64(0x7fffffffffffffff), true)
	f.Fuzz(func(t *testing.T, wgs, wgTime uint, maskBits uint64, mem bool) {
		work := KernelWork{
			Workgroups:   int(wgs%100000) + 1,
			ThreadsPerWG: 256,
			WGTime:       sim.Duration(wgTime%10000) + 0.01,
			Tail:         0.5,
			WaveExponent: 0.65,
		}
		if mem {
			work.MemBytes = float64(wgs) * 1e4
		}
		var mask CUMask
		for cu := 0; cu < 60; cu++ {
			if maskBits>>uint(cu)&1 == 1 {
				mask = mask.Set(cu)
			}
		}
		if mask.IsEmpty() {
			mask = mask.Set(0)
		}
		d := NewDevice(sim.New(), MI50Spec(), nil)
		got := d.Duration(work, mask)
		if !(got > 0) || got > sim.Never {
			t.Fatalf("duration %v for %+v on %v", got, work, mask)
		}
		// Monotonicity within a used SE.
		se := mask.CUs()[0] / 15
		for c := 0; c < 15; c++ {
			cu := se*15 + c
			if !mask.Has(cu) {
				bigger := mask.Set(cu)
				if d.Duration(work, bigger) > got+1e-9 {
					t.Fatalf("adding CU %d to a used SE increased duration", cu)
				}
				break
			}
		}
	})
}
