package gpu

import (
	"math/bits"
	"strings"
)

// MaxCUs is the largest device this package's CUMask supports.
const MaxCUs = 128

// CUMask is a bitmask over physical compute units: bit i set means CU i is
// enabled. It mirrors the mask passed to AMD's CU Masking API and the
// kernel resource mask KRISP's packet processor generates.
//
// The zero value is the empty mask.
type CUMask struct {
	lo, hi uint64
}

// Set returns a copy of m with CU cu enabled.
func (m CUMask) Set(cu int) CUMask {
	if cu < 64 {
		m.lo |= 1 << uint(cu)
	} else {
		m.hi |= 1 << uint(cu-64)
	}
	return m
}

// Clear returns a copy of m with CU cu disabled.
func (m CUMask) Clear(cu int) CUMask {
	if cu < 64 {
		m.lo &^= 1 << uint(cu)
	} else {
		m.hi &^= 1 << uint(cu-64)
	}
	return m
}

// Has reports whether CU cu is enabled.
func (m CUMask) Has(cu int) bool {
	if cu < 64 {
		return m.lo&(1<<uint(cu)) != 0
	}
	return m.hi&(1<<uint(cu-64)) != 0
}

// Count returns the number of enabled CUs.
func (m CUMask) Count() int {
	return bits.OnesCount64(m.lo) + bits.OnesCount64(m.hi)
}

// IsEmpty reports whether no CU is enabled.
func (m CUMask) IsEmpty() bool { return m.lo == 0 && m.hi == 0 }

// And returns the intersection of two masks.
func (m CUMask) And(o CUMask) CUMask { return CUMask{m.lo & o.lo, m.hi & o.hi} }

// Or returns the union of two masks.
func (m CUMask) Or(o CUMask) CUMask { return CUMask{m.lo | o.lo, m.hi | o.hi} }

// AndNot returns the CUs in m that are not in o.
func (m CUMask) AndNot(o CUMask) CUMask { return CUMask{m.lo &^ o.lo, m.hi &^ o.hi} }

// Equal reports whether two masks enable the same CUs.
func (m CUMask) Equal(o CUMask) bool { return m.lo == o.lo && m.hi == o.hi }

// CUs returns the enabled CU ids in ascending order.
func (m CUMask) CUs() []int {
	out := make([]int, 0, m.Count())
	lo := m.lo
	for lo != 0 {
		out = append(out, bits.TrailingZeros64(lo))
		lo &= lo - 1
	}
	hi := m.hi
	for hi != 0 {
		out = append(out, 64+bits.TrailingZeros64(hi))
		hi &= hi - 1
	}
	return out
}

// seBits extracts shader engine se's slice of the mask as a uint64 with
// bit c set for enabled (se, c). CUs are laid out SE-major (CUIndex), so
// the slice is the CUsPerSE-wide bit range starting at se*CUsPerSE,
// possibly straddling the lo/hi words. Callers iterate or popcount it,
// keeping the per-SE hot paths free of per-CU Has probes.
func (m CUMask) seBits(t Topology, se int) uint64 {
	a := uint(se * t.CUsPerSE)
	var v uint64
	if a >= 64 {
		v = m.hi >> (a - 64)
	} else {
		v = m.lo >> a
		if a > 0 {
			v |= m.hi << (64 - a)
		}
	}
	if t.CUsPerSE < 64 {
		v &= 1<<uint(t.CUsPerSE) - 1
	}
	return v
}

// CountInSE returns the number of enabled CUs within shader engine se.
func (m CUMask) CountInSE(t Topology, se int) int {
	return bits.OnesCount64(m.seBits(t, se))
}

// UsedSEs returns the shader engines with at least one enabled CU,
// ascending.
func (m CUMask) UsedSEs(t Topology) []int {
	var out []int
	for se := 0; se < t.NumSEs; se++ {
		if m.seBits(t, se) != 0 {
			out = append(out, se)
		}
	}
	return out
}

// FullMask returns a mask enabling all CUs of the topology.
func FullMask(t Topology) CUMask {
	var m CUMask
	for cu := 0; cu < t.TotalCUs(); cu++ {
		m = m.Set(cu)
	}
	return m
}

// RangeMask returns a mask enabling CUs [lo, hi) of the topology, wrapping
// around modulo TotalCUs. It is how Static Equal and Model Right-Size
// partitions carve contiguous CU ranges.
func RangeMask(t Topology, lo, n int) CUMask {
	var m CUMask
	total := t.TotalCUs()
	if n > total {
		n = total
	}
	for i := 0; i < n; i++ {
		m = m.Set((lo + i) % total)
	}
	return m
}

// String renders the mask as per-SE groups, most-significant CU first, e.g.
// "SE0[111000000000000] SE1[...]". Intended for debugging and traces.
func (m CUMask) String() string {
	return m.Format(MI50)
}

// Format renders the mask against an explicit topology.
func (m CUMask) Format(t Topology) string {
	var b strings.Builder
	for se := 0; se < t.NumSEs; se++ {
		if se > 0 {
			b.WriteByte(' ')
		}
		b.WriteString("SE")
		b.WriteByte(byte('0' + se%10))
		b.WriteByte('[')
		for c := 0; c < t.CUsPerSE; c++ {
			if m.Has(t.CUIndex(se, c)) {
				b.WriteByte('1')
			} else {
				b.WriteByte('0')
			}
		}
		b.WriteByte(']')
	}
	return b.String()
}
