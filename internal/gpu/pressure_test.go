package gpu

import (
	"math/rand"
	"testing"
	"testing/quick"

	"krisp/internal/sim"
)

// Property: after any schedule of launches drains, per-CU pressure and
// memory pressure return to zero.
func TestPressureConservationProperty(t *testing.T) {
	prop := func(seed int64, n8 uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		eng := sim.New()
		d := NewDevice(eng, MI50Spec(), nil)
		n := int(n8%10) + 1
		for i := 0; i < n; i++ {
			work := KernelWork{
				Workgroups:   1 + rng.Intn(3000),
				ThreadsPerWG: 256,
				WGTime:       sim.Duration(1 + rng.Intn(40)),
				MemBytes:     float64(rng.Intn(2)) * float64(rng.Intn(100)) * 1e6,
				Tail:         0.5,
				WaveExponent: []float64{0, 0.5, 0.65, 1}[rng.Intn(4)],
			}
			at := sim.Time(rng.Intn(200))
			mask := RangeMask(MI50, rng.Intn(60), 1+rng.Intn(60))
			eng.At(at, func() { d.Launch(work, mask, nil) })
		}
		eng.Run()
		for cu := 0; cu < 60; cu++ {
			if d.pressure[cu] > 1e-9 {
				return false
			}
		}
		return d.memPressure < 1e-9 && d.Running() == 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestPressureOfLowOccupancy(t *testing.T) {
	_, d := newTestDevice()
	// 120 WGs on the full device: occupancy 0.2, compute-bound.
	work := KernelWork{Workgroups: 120, ThreadsPerWG: 256, WGTime: 100, Tail: 0.5}
	p, memI := d.pressureOf(work, FullMask(MI50))
	if p < 0.19 || p > 0.21 {
		t.Errorf("pressure = %v, want ~0.2", p)
	}
	if memI > 0.01 {
		t.Errorf("memIntensity = %v for compute kernel, want ~0", memI)
	}
	// Same kernel on 12 CUs: occupancy 1.0.
	p, _ = d.pressureOf(work, RangeMask(MI50, 0, 12))
	if p < 0.99 {
		t.Errorf("pressure on tight mask = %v, want ~1", p)
	}
}

func TestPressureOfMemBound(t *testing.T) {
	_, d := newTestDevice()
	work := KernelWork{Workgroups: 6000, ThreadsPerWG: 256, WGTime: 0.05, MemBytes: 5e8, Tail: 0.5}
	p, memI := d.pressureOf(work, FullMask(MI50))
	if p > 0.05 {
		t.Errorf("compute pressure = %v for streaming kernel, want ~0", p)
	}
	if memI < 0.9 {
		t.Errorf("memIntensity = %v for streaming kernel, want ~1", memI)
	}
}

// TestLowOccupancySharingNearlyFree verifies the paper's co-location
// premise: two low-occupancy kernels share the GPU at almost no cost.
func TestLowOccupancySharingNearlyFree(t *testing.T) {
	eng, d := newTestDevice()
	work := KernelWork{Workgroups: 120, ThreadsPerWG: 256, WGTime: 100, Tail: 1}
	solo := d.IsolatedDuration(work, FullMask(MI50))
	var t1, t2 sim.Time
	d.Launch(work, FullMask(MI50), func() { t1 = eng.Now() })
	d.Launch(work, FullMask(MI50), func() { t2 = eng.Now() })
	eng.Run()
	// Each sees 0.2 of co-runner pressure: stretch = 1 + 0.25*0.2 = 1.05.
	if t1 != t2 {
		t.Fatalf("asymmetric completions %v, %v", t1, t2)
	}
	if ratio := float64(t1) / float64(solo); ratio > 1.1 {
		t.Errorf("low-occupancy sharing cost %.2fx, want <= 1.1x", ratio)
	}
}

// TestSaturatedSharingIsExpensive is the flip side: two saturating kernels
// pay the full oversubscription penalty.
func TestSaturatedSharingIsExpensive(t *testing.T) {
	eng, d := newTestDevice()
	work := computeKernel(600)
	solo := d.IsolatedDuration(work, FullMask(MI50))
	var done sim.Time
	d.Launch(work, FullMask(MI50), func() { done = eng.Now() })
	d.Launch(work, FullMask(MI50), nil)
	eng.Run()
	if ratio := float64(done) / float64(solo); ratio < 2 {
		t.Errorf("saturated sharing cost %.2fx, want >= 2x", ratio)
	}
}

// TestMemBoundCoRunnerIsCheapCompute: a streaming kernel on the same CUs
// barely slows a compute kernel (its compute pressure is ~0), though it
// does claim bandwidth.
func TestMemBoundCoRunnerIsCheapCompute(t *testing.T) {
	eng, d := newTestDevice()
	compute := computeKernel(600)
	stream := KernelWork{Workgroups: 600, ThreadsPerWG: 256, WGTime: 0.01, MemBytes: 5e8, Tail: 0.5}
	solo := d.IsolatedDuration(compute, FullMask(MI50))
	var done sim.Time
	d.Launch(compute, FullMask(MI50), func() { done = eng.Now() })
	d.Launch(stream, FullMask(MI50), nil)
	eng.Run()
	if ratio := float64(done) / float64(solo); ratio > 1.15 {
		t.Errorf("compute kernel slowed %.2fx by streaming co-runner, want <= 1.15x", ratio)
	}
}

// TestWaveExponentSoftensRestriction verifies the sub-linear scaling knob:
// a calibrated kernel on a quarter of its knee is much less than 4x slower.
func TestWaveExponentSoftensRestriction(t *testing.T) {
	_, d := newTestDevice()
	linear := KernelWork{Workgroups: 600, ThreadsPerWG: 256, WGTime: 10, Tail: 0}
	soft := linear
	soft.WaveExponent = 0.5
	full := FullMask(MI50)
	quarter := RangeMask(MI50, 0, 15)
	linRatio := float64(d.IsolatedDuration(linear, quarter)) / float64(d.IsolatedDuration(linear, full))
	softRatio := float64(d.IsolatedDuration(soft, quarter)) / float64(d.IsolatedDuration(soft, full))
	if linRatio < 3.9 || linRatio > 4.1 {
		t.Errorf("linear restriction ratio = %v, want ~4", linRatio)
	}
	if softRatio < 1.9 || softRatio > 2.1 {
		t.Errorf("alpha=0.5 restriction ratio = %v, want ~2", softRatio)
	}
}

// TestHalfWaveQuantization pins the quantization boundaries.
func TestHalfWaveQuantization(t *testing.T) {
	_, d := newTestDevice()
	full := FullMask(MI50)
	base := float64(d.IsolatedDuration(computeKernel(600), full)) - 1 // strip tail
	cases := []struct {
		wgs  int
		want float64 // in waves
	}{
		{600, 1}, {601, 1.5}, {900, 1.5}, {901, 2}, {1200, 2}, {1201, 2.5},
	}
	for _, c := range cases {
		got := (float64(d.IsolatedDuration(computeKernel(c.wgs), full)) - 1) / base
		if got != c.want {
			t.Errorf("%d WGs: %v waves, want %v", c.wgs, got, c.want)
		}
	}
}
