package gpu

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMaskSetClearHas(t *testing.T) {
	var m CUMask
	for _, cu := range []int{0, 5, 59, 63, 64, 100, 127} {
		m = m.Set(cu)
		if !m.Has(cu) {
			t.Errorf("Has(%d) = false after Set", cu)
		}
	}
	if m.Count() != 7 {
		t.Errorf("Count() = %d, want 7", m.Count())
	}
	m = m.Clear(64)
	if m.Has(64) {
		t.Error("Has(64) = true after Clear")
	}
	if m.Count() != 6 {
		t.Errorf("Count() = %d after clear, want 6", m.Count())
	}
}

func TestMaskCUsOrdered(t *testing.T) {
	var m CUMask
	want := []int{3, 17, 59, 70, 127}
	for _, cu := range []int{127, 3, 70, 59, 17} {
		m = m.Set(cu)
	}
	got := m.CUs()
	if len(got) != len(want) {
		t.Fatalf("CUs() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("CUs() = %v, want %v", got, want)
		}
	}
}

func TestMaskSetOperations(t *testing.T) {
	a := CUMask{}.Set(1).Set(2).Set(65)
	b := CUMask{}.Set(2).Set(3).Set(65)
	if got := a.And(b).CUs(); len(got) != 2 || got[0] != 2 || got[1] != 65 {
		t.Errorf("And = %v, want [2 65]", got)
	}
	if got := a.Or(b).Count(); got != 4 {
		t.Errorf("Or count = %d, want 4", got)
	}
	if got := a.AndNot(b).CUs(); len(got) != 1 || got[0] != 1 {
		t.Errorf("AndNot = %v, want [1]", got)
	}
	if !a.Equal(a) || a.Equal(b) {
		t.Error("Equal is wrong")
	}
}

func TestFullMask(t *testing.T) {
	m := FullMask(MI50)
	if m.Count() != 60 {
		t.Errorf("FullMask(MI50).Count() = %d, want 60", m.Count())
	}
	for se := 0; se < 4; se++ {
		if got := m.CountInSE(MI50, se); got != 15 {
			t.Errorf("CountInSE(%d) = %d, want 15", se, got)
		}
	}
	if got := len(m.UsedSEs(MI50)); got != 4 {
		t.Errorf("UsedSEs = %d, want 4", got)
	}
}

func TestRangeMaskWraps(t *testing.T) {
	m := RangeMask(MI50, 55, 10)
	if m.Count() != 10 {
		t.Fatalf("Count = %d, want 10", m.Count())
	}
	for _, cu := range []int{55, 59, 0, 4} {
		if !m.Has(cu) {
			t.Errorf("RangeMask(55,10) missing CU %d", cu)
		}
	}
	if m.Has(5) || m.Has(54) {
		t.Error("RangeMask(55,10) includes out-of-range CU")
	}
	// Oversized request clamps to the device.
	if got := RangeMask(MI50, 0, 100).Count(); got != 60 {
		t.Errorf("oversized RangeMask count = %d, want 60", got)
	}
}

func TestMaskFormat(t *testing.T) {
	m := CUMask{}.Set(0).Set(15)
	s := m.Format(MI50)
	want := "SE0[100000000000000] SE1[100000000000000] SE2[000000000000000] SE3[000000000000000]"
	if s != want {
		t.Errorf("Format = %q, want %q", s, want)
	}
}

// Property: Count equals the number of ids CUs() returns, and every id
// returned satisfies Has.
func TestMaskCountCUsConsistency(t *testing.T) {
	prop := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		var m CUMask
		set := map[int]bool{}
		for i := 0; i < int(n); i++ {
			cu := rng.Intn(MaxCUs)
			m = m.Set(cu)
			set[cu] = true
		}
		if m.Count() != len(set) {
			return false
		}
		for _, cu := range m.CUs() {
			if !set[cu] || !m.Has(cu) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

// Property: De Morgan-ish identities over masks.
func TestMaskAlgebraProperty(t *testing.T) {
	gen := func(rng *rand.Rand) CUMask {
		var m CUMask
		for i := 0; i < MaxCUs; i++ {
			if rng.Intn(2) == 0 {
				m = m.Set(i)
			}
		}
		return m
	}
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b := gen(rng), gen(rng)
		if !a.And(b).Or(a.AndNot(b)).Equal(a) {
			return false
		}
		if a.And(b).Count()+a.AndNot(b).Count() != a.Count() {
			return false
		}
		return a.Or(b).Count() == a.Count()+b.AndNot(a).Count()
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestTopology(t *testing.T) {
	if MI50.TotalCUs() != 60 {
		t.Errorf("MI50 total = %d, want 60", MI50.TotalCUs())
	}
	if MI50.SEOf(14) != 0 || MI50.SEOf(15) != 1 || MI50.SEOf(59) != 3 {
		t.Error("SEOf wrong")
	}
	if MI50.CUIndex(2, 3) != 33 {
		t.Errorf("CUIndex(2,3) = %d, want 33", MI50.CUIndex(2, 3))
	}
	if err := MI50.Validate(); err != nil {
		t.Errorf("MI50.Validate() = %v", err)
	}
	if err := (Topology{0, 5}).Validate(); err == nil {
		t.Error("invalid topology validated")
	}
	if err := (Topology{10, 20}).Validate(); err == nil {
		t.Error("oversized topology validated")
	}
}
