// Package gpu models an AMD-style GPU at the granularity KRISP cares about:
// Shader Engines (SEs) containing Compute Units (CUs), a workgroup
// dispatcher that splits a kernel's workgroups equally across SEs and
// round-robins them over the enabled CUs within each SE, per-CU workgroup
// slots, shared memory bandwidth, and per-CU kernel counters (the Resource
// Monitor from the paper's §IV-C).
//
// The model is deliberately not cycle-accurate: KRISP changes nothing inside
// the CU pipeline or the threadblock scheduler (paper §V), so the relevant
// behaviours are which CUs a kernel may use, how workgroup waves quantize
// latency, how SE imbalance creates bottlenecks, and how oversubscribed CUs
// divide their slots. All of those are captured here.
package gpu

import "fmt"

// Topology describes the SE/CU organization of a device.
type Topology struct {
	// NumSEs is the number of Shader Engines (GPCs in Nvidia terms).
	NumSEs int
	// CUsPerSE is the number of Compute Units in each Shader Engine.
	CUsPerSE int
}

// TotalCUs returns the total number of compute units on the device.
func (t Topology) TotalCUs() int { return t.NumSEs * t.CUsPerSE }

// SEOf returns the shader engine that physical CU cu belongs to.
func (t Topology) SEOf(cu int) int { return cu / t.CUsPerSE }

// CUIndex returns the physical CU id for (se, cuInSE).
func (t Topology) CUIndex(se, cuInSE int) int { return se*t.CUsPerSE + cuInSE }

// Validate reports whether the topology is usable.
func (t Topology) Validate() error {
	if t.NumSEs <= 0 || t.CUsPerSE <= 0 {
		return fmt.Errorf("gpu: invalid topology %d SEs x %d CUs", t.NumSEs, t.CUsPerSE)
	}
	if t.TotalCUs() > MaxCUs {
		return fmt.Errorf("gpu: topology has %d CUs, max supported is %d", t.TotalCUs(), MaxCUs)
	}
	return nil
}

func (t Topology) String() string {
	return fmt.Sprintf("%d SEs x %d CUs (%d total)", t.NumSEs, t.CUsPerSE, t.TotalCUs())
}

// MI50 is the topology of the AMD MI50 used throughout the paper:
// 60 CUs organized as 4 Shader Engines of 15 CUs each.
var MI50 = Topology{NumSEs: 4, CUsPerSE: 15}

// MI100 is the AMD MI100: 120 CUs as 8 Shader Engines of 15 CUs. Included
// to demonstrate that nothing in the stack is MI50-specific.
var MI100 = Topology{NumSEs: 8, CUsPerSE: 15}
