package gpu

import (
	"fmt"

	tele "krisp/internal/telemetry"
)

// Telemetry holds the device's metric handles, resolved once at stack
// construction so the launch/complete path never touches the registry. All
// handles are nil-safe; a nil *Telemetry on the device disables everything.
type Telemetry struct {
	// BusyCUs is the number of CUs with at least one kernel assigned.
	BusyCUs *tele.Gauge
	// HealthyCUs is the number of CUs still alive (health bitmap popcount).
	HealthyCUs *tele.Gauge
	// RunningKernels is the number of kernels currently executing.
	RunningKernels *tele.Gauge
	// Launches counts kernel executions started on the device.
	Launches *tele.Counter
	// CUKills counts CUs permanently removed from service.
	CUKills *tele.Counter

	// tracer, when non-nil, receives a per-SE occupancy counter event on
	// every occupancy change — the Fig. 4-style timeline in Perfetto.
	tracer  *tele.Tracer
	pid     int
	ctrName string
	seKeys  []string  // "se0".."seN", built once
	seVals  []float64 // scratch reused across counter events
}

// NewTelemetry resolves the device metric handles for GPU index gpu against
// the hub. Returns nil (telemetry fully disabled) when the hub carries no
// registry. The gpu index becomes both the metric label and the trace pid.
func NewTelemetry(hub *tele.Hub, topo Topology, gpu int) *Telemetry {
	reg := hub.Registry()
	if reg == nil {
		return nil
	}
	lbl := fmt.Sprintf(`{gpu="%d"}`, gpu)
	t := &Telemetry{
		BusyCUs:        reg.Gauge("krisp_gpu_busy_cus"+lbl, "CUs with at least one kernel assigned"),
		HealthyCUs:     reg.Gauge("krisp_gpu_healthy_cus"+lbl, "CUs still in service (health bitmap)"),
		RunningKernels: reg.Gauge("krisp_gpu_running_kernels"+lbl, "kernels currently executing"),
		Launches:       reg.Counter("krisp_gpu_launches_total"+lbl, "kernel executions started"),
		CUKills:        reg.Counter("krisp_gpu_cu_kills_total"+lbl, "CUs permanently removed from service"),
		tracer:         hub.Trace(),
		pid:            gpu,
		ctrName:        fmt.Sprintf("gpu%d_se_busy_cus", gpu),
	}
	t.HealthyCUs.Set(int64(topo.TotalCUs()))
	if t.tracer != nil {
		t.tracer.NameProcess(gpu, fmt.Sprintf("gpu%d", gpu))
		t.seKeys = make([]string, topo.NumSEs)
		t.seVals = make([]float64, topo.NumSEs)
		for se := range t.seKeys {
			t.seKeys[se] = fmt.Sprintf("se%d", se)
		}
	}
	return t
}

// SetTelemetry installs (or removes, with nil) the device's telemetry.
func (d *Device) SetTelemetry(t *Telemetry) { d.tel = t }

// publishOccupancy pushes the busy-CU gauge and, when tracing, the per-SE
// occupancy timeline. Called after every chargeExec/releaseExec; with a nil
// tracer the cost is one nil check and one atomic store.
func (d *Device) publishOccupancy() {
	t := d.tel
	if t == nil {
		return
	}
	t.BusyCUs.Set(int64(d.busy))
	if t.tracer == nil {
		return
	}
	topo := d.Spec.Topo
	for se := 0; se < topo.NumSEs; se++ {
		n := 0
		base := se * topo.CUsPerSE
		for c := 0; c < topo.CUsPerSE; c++ {
			if d.counters[base+c] > 0 {
				n++
			}
		}
		t.seVals[se] = float64(n)
	}
	t.tracer.CounterEvent(t.ctrName, t.pid, d.eng.Now(), t.seKeys, t.seVals)
}
