package gpu

import (
	"math/rand"
	"testing"
	"testing/quick"

	"krisp/internal/sim"
)

func newTestDevice() (*sim.Engine, *Device) {
	eng := sim.New()
	return eng, NewDevice(eng, MI50Spec(), nil)
}

// computeKernel is CU-bound: no memory traffic.
func computeKernel(wgs int) KernelWork {
	return KernelWork{Workgroups: wgs, ThreadsPerWG: 256, WGTime: 10, Tail: 1}
}

func TestDeviceSingleKernelDuration(t *testing.T) {
	_, d := newTestDevice()
	// 600 WGs on 60 CUs with 10 slots: each CU gets 10 WGs = 1 wave.
	work := computeKernel(600)
	got := d.IsolatedDuration(work, FullMask(MI50))
	want := sim.Duration(1*10 + 1)
	if got != want {
		t.Errorf("duration = %v, want %v", got, want)
	}
	// 601 WGs spills into a half wave: 1.5 x 10 + 1.
	got = d.IsolatedDuration(computeKernel(601), FullMask(MI50))
	want = sim.Duration(1.5*10 + 1)
	if got != want {
		t.Errorf("601-WG duration = %v, want %v", got, want)
	}
}

func TestDeviceWaveQuantizationTolerance(t *testing.T) {
	// A 120-WG kernel fits in one wave on any single-SE mask of >= 12 CUs:
	// this is the mechanism behind low minimum-required-CU kernels.
	_, d := newTestDevice()
	work := computeKernel(120)
	full := d.IsolatedDuration(work, FullMask(MI50))
	for n := 12; n <= 15; n++ {
		m := RangeMask(MI50, 0, n) // n CUs inside SE0
		if got := d.IsolatedDuration(work, m); got != full {
			t.Errorf("%d CUs: duration %v != full-GPU %v", n, got, full)
		}
	}
	// 11 CUs forces a second wave.
	if got := d.IsolatedDuration(work, RangeMask(MI50, 0, 11)); got <= full {
		t.Errorf("11 CUs: duration %v not slower than full %v", got, full)
	}
}

func TestDeviceSEImbalanceBottleneck(t *testing.T) {
	// Packed 16 CUs = SE0 full + 1 CU in SE1. Workgroups split equally
	// across the two used SEs, so the single CU in SE1 dominates.
	_, d := newTestDevice()
	work := computeKernel(1200)
	packed := CUMask{}
	for cu := 0; cu < 16; cu++ {
		packed = packed.Set(cu)
	}
	conserved := CUMask{}.
		Or(RangeMask(MI50, 0, 8)).
		Or(RangeMask(MI50, 15, 8)) // 8+8 across two SEs
	tPacked := d.IsolatedDuration(work, packed)
	tCons := d.IsolatedDuration(work, conserved)
	if tPacked <= tCons {
		t.Errorf("packed 16 (%v) should be slower than balanced 16 (%v)", tPacked, tCons)
	}
	// The single CU in SE1 handles 600 WGs = 60 waves.
	want := sim.Duration(60*10 + 1)
	if tPacked != want {
		t.Errorf("packed duration = %v, want %v", tPacked, want)
	}
}

func TestDeviceMemoryBoundKernel(t *testing.T) {
	_, d := newTestDevice()
	// 1 GB of traffic at 1 TB/s = 1000 us, far above compute time.
	work := KernelWork{Workgroups: 600, ThreadsPerWG: 256, WGTime: 1, MemBytes: 1e9, Tail: 1}
	full := d.IsolatedDuration(work, FullMask(MI50))
	small := d.IsolatedDuration(work, RangeMask(MI50, 0, 4))
	if full != small {
		t.Errorf("bandwidth-bound kernel should be CU-insensitive: full=%v small=%v", full, small)
	}
	if full < 1000 {
		t.Errorf("duration %v below memory time 1000", full)
	}
}

func TestDeviceLaunchCompletion(t *testing.T) {
	eng, d := newTestDevice()
	doneAt := sim.Time(-1)
	work := computeKernel(600)
	d.Launch(work, FullMask(MI50), func() { doneAt = eng.Now() })
	if d.Running() != 1 {
		t.Fatalf("Running = %d, want 1", d.Running())
	}
	if d.BusyCUs() != 60 {
		t.Fatalf("BusyCUs = %d, want 60", d.BusyCUs())
	}
	eng.Run()
	if doneAt != 11 {
		t.Errorf("completion at %v, want 11", doneAt)
	}
	if d.Running() != 0 || d.BusyCUs() != 0 {
		t.Error("device not idle after completion")
	}
	for cu := 0; cu < 60; cu++ {
		if d.KernelCount(cu) != 0 {
			t.Fatalf("counter for CU %d = %d after completion", cu, d.KernelCount(cu))
		}
	}
}

func TestDeviceContentionSlowsSharedCUs(t *testing.T) {
	eng, d := newTestDevice()
	work := computeKernel(600) // 11us alone on full GPU
	var t1, t2 sim.Time
	d.Launch(work, FullMask(MI50), func() { t1 = eng.Now() })
	d.Launch(work, FullMask(MI50), func() { t2 = eng.Now() })
	eng.Run()
	// Two identical fully-occupying compute kernels sharing every CU:
	// total pressure 2.0, so each stretches by the share tax on the
	// co-runner (1 + 0.25x1) plus the saturation penalty
	// ((1+1.0)x(2-1)): 10 x 3.25 + 1 = 33.5us.
	if t1 != 33.5 || t2 != 33.5 {
		t.Errorf("shared completions at %v, %v, want 33.5, 33.5", t1, t2)
	}
}

func TestDeviceIsolatedPartitionsDoNotInterfere(t *testing.T) {
	eng, d := newTestDevice()
	work := computeKernel(150) // 15 CUs x 10 slots = 1 wave on one SE
	var t1, t2 sim.Time
	d.Launch(work, RangeMask(MI50, 0, 15), func() { t1 = eng.Now() })
	d.Launch(work, RangeMask(MI50, 15, 15), func() { t2 = eng.Now() })
	eng.Run()
	if t1 != 11 || t2 != 11 {
		t.Errorf("isolated completions at %v, %v, want 11, 11", t1, t2)
	}
}

func TestDeviceProgressBankingAcrossContentionChange(t *testing.T) {
	eng, d := newTestDevice()
	long := computeKernel(600 * 10) // 100us alone
	short := computeKernel(600)     // 11us alone
	var longDone sim.Time
	d.Launch(long, FullMask(MI50), func() { longDone = eng.Now() })
	// At t=50, the long kernel is half done; launch a contender.
	eng.At(50, func() {
		d.Launch(short, FullMask(MI50), nil)
	})
	eng.Run()
	// Long kernel: 50us at full speed (progress 50/101), then slowed 2x
	// while the short kernel runs, then full speed again. It must finish
	// strictly later than 101us and earlier than 202us.
	if longDone <= 101 || longDone >= 202 {
		t.Errorf("long kernel finished at %v, want within (101, 202)", longDone)
	}
}

func TestDeviceMemBandwidthSharing(t *testing.T) {
	eng, d := newTestDevice()
	work := KernelWork{Workgroups: 60, ThreadsPerWG: 256, WGTime: 1, MemBytes: 1e8, Tail: 0}
	// Alone: 100us of memory time.
	if got := d.IsolatedDuration(work, FullMask(MI50)); got != 100 {
		t.Fatalf("isolated mem duration = %v, want 100", got)
	}
	var t1, t2 sim.Time
	d.Launch(work, RangeMask(MI50, 0, 30), func() { t1 = eng.Now() })
	d.Launch(work, RangeMask(MI50, 30, 30), func() { t2 = eng.Now() })
	eng.Run()
	// Two bandwidth-bound kernels on disjoint CUs still (nearly) halve
	// each other's bandwidth: demand weighting gives each a share of
	// 1/(1+0.99) since each is 99% memory-intense.
	if t1 < 190 || t1 > 202 || t1 != t2 {
		t.Errorf("completions at %v, %v, want ~199 each", t1, t2)
	}
}

func TestDeviceCountersTrackOverlap(t *testing.T) {
	eng, d := newTestDevice()
	d.Launch(computeKernel(600), RangeMask(MI50, 0, 10), nil)
	d.Launch(computeKernel(600), RangeMask(MI50, 5, 10), nil)
	if got := d.KernelCount(7); got != 2 {
		t.Errorf("overlapped CU counter = %d, want 2", got)
	}
	if got := d.KernelCount(2); got != 1 {
		t.Errorf("exclusive CU counter = %d, want 1", got)
	}
	if got := d.BusyCUs(); got != 15 {
		t.Errorf("BusyCUs = %d, want 15", got)
	}
	eng.Run()
}

func TestDeviceAvgBusyCUs(t *testing.T) {
	eng, d := newTestDevice()
	// One kernel occupying 30 CUs for 11us, then idle until t=22.
	d.Launch(computeKernel(300), RangeMask(MI50, 0, 30), nil)
	eng.Run()
	eng.RunUntil(22)
	avg := d.AvgBusyCUs()
	// 30 CUs x 11us / 22us = 15.
	if avg < 14.9 || avg > 15.1 {
		t.Errorf("AvgBusyCUs = %v, want ~15", avg)
	}
}

type recordingMeter struct {
	observations int
	lastBusy     int
}

func (m *recordingMeter) ObserveState(now sim.Time, busyCUs, kernels int) {
	m.observations++
	m.lastBusy = busyCUs
}

func TestDeviceMeterNotified(t *testing.T) {
	eng := sim.New()
	meter := &recordingMeter{}
	d := NewDevice(eng, MI50Spec(), meter)
	d.Launch(computeKernel(600), FullMask(MI50), nil)
	if meter.observations != 1 || meter.lastBusy != 60 {
		t.Errorf("after launch: obs=%d busy=%d", meter.observations, meter.lastBusy)
	}
	eng.Run()
	if meter.observations != 2 || meter.lastBusy != 0 {
		t.Errorf("after completion: obs=%d busy=%d", meter.observations, meter.lastBusy)
	}
}

func TestDeviceLaunchPanics(t *testing.T) {
	_, d := newTestDevice()
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("empty mask", func() { d.Launch(computeKernel(10), CUMask{}, nil) })
	mustPanic("zero workgroups", func() { d.Launch(KernelWork{}, FullMask(MI50), nil) })
}

// Property: on an idle device, adding a CU to an SE that the mask already
// uses never increases kernel duration.
func TestDeviceMonotoneWithinSEProperty(t *testing.T) {
	_, d := newTestDevice()
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		work := computeKernel(1 + rng.Intn(4000))
		se := rng.Intn(4)
		n := 1 + rng.Intn(14) // 1..14 CUs, room to add one
		m := RangeMask(MI50, se*15, n)
		bigger := m.Set(se*15 + n)
		return d.IsolatedDuration(work, bigger) <= d.IsolatedDuration(work, m)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: duration is positive and completing N launched kernels returns
// all counters to zero.
func TestDeviceCounterConservationProperty(t *testing.T) {
	prop := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		eng, d := newTestDevice()
		count := int(n%6) + 1
		for i := 0; i < count; i++ {
			wgs := 1 + rng.Intn(2000)
			lo := rng.Intn(60)
			width := 1 + rng.Intn(30)
			d.Launch(computeKernel(wgs), RangeMask(MI50, lo, width), nil)
		}
		eng.Run()
		if d.Running() != 0 {
			return false
		}
		for cu := 0; cu < 60; cu++ {
			if d.KernelCount(cu) != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestOccupancyGenTracksCounters pins the mask-cache invalidation
// contract: the occupancy generation advances whenever the per-CU kernel
// counters change (launch and completion), never between, and
// CountersView aliases the live counters.
func TestOccupancyGenTracksCounters(t *testing.T) {
	eng := sim.New()
	d := NewDevice(eng, MI50Spec(), nil)
	view := d.CountersView()
	g0 := d.OccupancyGen()
	d.Launch(KernelWork{Workgroups: 60, ThreadsPerWG: 256, WGTime: 10, Tail: 0.5}, RangeMask(MI50, 0, 15), nil)
	g1 := d.OccupancyGen()
	if g1 == g0 {
		t.Fatal("launch did not advance the occupancy generation")
	}
	if view[0] != 1 || view[15] != 0 {
		t.Fatalf("CountersView not live: view[0]=%d view[15]=%d", view[0], view[15])
	}
	if got := d.OccupancyGen(); got != g1 {
		t.Fatalf("generation moved without a counter change: %d -> %d", g1, got)
	}
	eng.Run()
	if d.OccupancyGen() == g1 {
		t.Fatal("completion did not advance the occupancy generation")
	}
	if d.BusyCUs() != 0 || view[0] != 0 {
		t.Fatalf("device not idle after drain: busy=%d view[0]=%d", d.BusyCUs(), view[0])
	}
}
