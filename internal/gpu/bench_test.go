package gpu

import (
	"testing"

	"krisp/internal/sim"
)

// BenchmarkDuration measures the closed-form latency model — the profiler
// evaluates it tens of thousands of times per model sweep.
func BenchmarkDuration(b *testing.B) {
	d := NewDevice(sim.New(), MI50Spec(), nil)
	work := KernelWork{Workgroups: 550, ThreadsPerWG: 256, WGTime: 10, MemBytes: 1e7, Tail: 0.5, WaveExponent: 0.65}
	mask := RangeMask(MI50, 0, 37)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = d.Duration(work, mask)
	}
}

// BenchmarkLaunchCompleteCycle measures one kernel lifecycle on the
// device, including the retime of co-runners.
func BenchmarkLaunchCompleteCycle(b *testing.B) {
	eng := sim.New()
	d := NewDevice(eng, MI50Spec(), nil)
	work := KernelWork{Workgroups: 600, ThreadsPerWG: 256, WGTime: 10, Tail: 0.5}
	mask := FullMask(MI50)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d.Launch(work, mask, nil)
		eng.Run()
	}
}

// BenchmarkContendedRetime measures the retime cost with several
// concurrent kernels — the dominant per-event cost in big simulations.
func BenchmarkContendedRetime(b *testing.B) {
	eng := sim.New()
	d := NewDevice(eng, MI50Spec(), nil)
	work := KernelWork{Workgroups: 6000, ThreadsPerWG: 256, WGTime: 10, Tail: 0.5}
	for i := 0; i < 3; i++ {
		d.Launch(work, RangeMask(MI50, i*15, 15), nil)
	}
	short := KernelWork{Workgroups: 150, ThreadsPerWG: 256, WGTime: 1, Tail: 0.5}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d.Launch(short, RangeMask(MI50, 45, 15), nil)
		// Drain only the short kernel's completion.
		eng.Step()
	}
}

func BenchmarkMaskOps(b *testing.B) {
	m := FullMask(MI50)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m = m.Clear(i % 60).Set(i % 60)
		_ = m.CountInSE(MI50, i%4)
	}
}
