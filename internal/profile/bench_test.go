package profile

import (
	"testing"

	"krisp/internal/kernels"
	"krisp/internal/models"
)

// BenchmarkKernelMinCU measures one minCU search — the unit of
// install-time profiling.
func BenchmarkKernelMinCU(b *testing.B) {
	p := New(DefaultConfig())
	work := kernels.GEMM(32, 512, 512, 512).Work
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = p.KernelMinCU(work)
	}
}

// BenchmarkModelProfile measures profiling a full model into the
// performance database (albert: 304 kernels, ~30 distinct variants).
func BenchmarkModelProfile(b *testing.B) {
	p := New(DefaultConfig())
	m, _ := models.ByName("albert")
	ks := m.Kernels(models.CalibrationBatch)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		db := NewDB()
		db.Profile(p, ks)
	}
}

// BenchmarkModelRightSize measures the model kneepoint search (Fig. 3's
// per-point cost).
func BenchmarkModelRightSize(b *testing.B) {
	p := New(DefaultConfig())
	m, _ := models.ByName("resnet152")
	ks := m.Kernels(models.CalibrationBatch)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = p.ModelRightSize(ks)
	}
}
