package profile

import (
	"bytes"
	"testing"
	"testing/quick"

	"krisp/internal/gpu"
	"krisp/internal/kernels"
)

func newProfiler() *Profiler { return New(DefaultConfig()) }

func TestKernelMinCUSizedCompute(t *testing.T) {
	p := newProfiler()
	// SizedCompute(target=n) issues n*slots workgroups: one wave at >= n
	// CUs, two waves below — the minCU should land exactly on the target
	// (within single-SE targets where Conserved is exact).
	for _, target := range []int{4, 8, 12, 15} {
		d := kernels.SizedCompute("k", target, 10, 1, 50)
		if got := p.KernelMinCU(d.Work); got != target {
			t.Errorf("SizedCompute(%d): minCU = %d", target, got)
		}
	}
}

func TestKernelMinCUMultiSETargets(t *testing.T) {
	p := newProfiler()
	// Multi-SE targets land close to (not always exactly on) the target
	// because Conserved splits across SEs.
	for _, target := range []int{20, 26, 32, 40, 52} {
		d := kernels.SizedCompute("k", target, 10, 1, 50)
		got := p.KernelMinCU(d.Work)
		if got < target-4 || got > target+4 {
			t.Errorf("SizedCompute(%d): minCU = %d, want within +-4", target, got)
		}
	}
}

func TestMemoryBoundKernelTolerant(t *testing.T) {
	p := newProfiler()
	d := kernels.Elementwise(32*64*112*112, 2)
	if got := p.KernelMinCU(d.Work); got > 8 {
		t.Errorf("elementwise minCU = %d, want <= 8 (bandwidth-bound)", got)
	}
}

func TestLargeConvNeedsWholeGPU(t *testing.T) {
	p := newProfiler()
	// vgg19-class conv: many waves at full GPU, so any CU reduction hurts.
	d := kernels.Conv2D(32, 256, 56, 56, 256, 3, 1)
	if got := p.KernelMinCU(d.Work); got < 50 {
		t.Errorf("large conv minCU = %d, want >= 50", got)
	}
}

func TestLaunchOverheadDominatesTinyKernels(t *testing.T) {
	p := newProfiler()
	d := kernels.Softmax(64, 64) // tiny: 16 WGs
	if got := p.KernelMinCU(d.Work); got > 4 {
		t.Errorf("tiny softmax minCU = %d, want <= 4 (launch-dominated)", got)
	}
}

func TestModelLatencyIsSumOfKernels(t *testing.T) {
	p := newProfiler()
	a := kernels.SizedCompute("a", 10, 10, 1, 50)
	b := kernels.Elementwise(1<<20, 2)
	sum := p.KernelLatency(a.Work, 60) + p.KernelLatency(b.Work, 60)
	if got := p.ModelLatency([]kernels.Desc{a, b}, 60); got != sum {
		t.Errorf("ModelLatency = %v, want %v", got, sum)
	}
}

func TestModelRightSizeDominatedByHeavyKernels(t *testing.T) {
	p := newProfiler()
	// A model whose time is dominated by a 12-CU kernel plus brief 60-CU
	// spikes should right-size near 12, not 60 — the paper's albert story.
	model := []kernels.Desc{
		kernels.SizedCompute("dominant", 12, 10, 40, 50), // 40 waves x 50us
		kernels.SizedCompute("spike", 60, 10, 1, 2),      // brief full-GPU kernel
	}
	rs := p.ModelRightSize(model)
	if rs > 20 {
		t.Errorf("right-size = %d, want <= 20 (dominant kernel needs 12)", rs)
	}
	// And a model dominated by full-GPU kernels right-sizes near 60.
	model = []kernels.Desc{kernels.SizedCompute("big", 60, 10, 10, 50)}
	if rs := p.ModelRightSize(model); rs < 55 {
		t.Errorf("full-GPU model right-size = %d, want >= 55", rs)
	}
}

func TestCUSweepShape(t *testing.T) {
	p := newProfiler()
	model := []kernels.Desc{kernels.SizedCompute("k", 12, 10, 4, 50)}
	sweep := p.CUSweep(model)
	if len(sweep) != 60 {
		t.Fatalf("sweep has %d points, want 60", len(sweep))
	}
	last := sweep[59]
	if last.CUs != 60 || last.Throughput < 0.999 || last.Throughput > 1.001 {
		t.Errorf("full-GPU point = %+v, want throughput 1.0", last)
	}
	// Throughput at 1 CU must be far below 1.
	if sweep[0].Throughput > 0.5 {
		t.Errorf("1-CU throughput = %v, want < 0.5", sweep[0].Throughput)
	}
	// Latency at the plateau equals the full-GPU latency.
	if sweep[30].Latency > last.Latency*(1+p.cfg.Tolerance) {
		t.Errorf("31-CU latency %v above tolerance of full %v", sweep[30].Latency, last.Latency)
	}
}

func TestDBProfileAndLookup(t *testing.T) {
	p := newProfiler()
	descs := []kernels.Desc{
		kernels.SizedCompute("a", 12, 10, 1, 50),
		kernels.Elementwise(1<<22, 2),
		kernels.GEMM(32, 512, 512, 512),
	}
	db := NewDB()
	db.Profile(p, descs)
	if db.Len() != 3 {
		t.Fatalf("db has %d entries, want 3", db.Len())
	}
	for _, d := range descs {
		e, ok := db.Lookup(d.Key())
		if !ok {
			t.Fatalf("missing entry for %s", d.Key())
		}
		if e.MinCU < 1 || e.MinCU > 60 {
			t.Errorf("%s: minCU %d out of range", d.Key(), e.MinCU)
		}
		if e.FullLatency <= 0 {
			t.Errorf("%s: non-positive latency", d.Key())
		}
		if got := db.MinCU(d, 60); got != e.MinCU {
			t.Errorf("MinCU(%s) = %d, want %d", d.Key(), got, e.MinCU)
		}
	}
	// Unknown kernels fall back to the whole device.
	unknown := kernels.SizedCompute("never-profiled", 5, 10, 1, 1)
	if got := db.MinCU(unknown, 60); got != 60 {
		t.Errorf("unknown kernel MinCU = %d, want 60", got)
	}
}

func TestDBWorstCaseWins(t *testing.T) {
	db := NewDB()
	db.Add(Entry{Key: "k", MinCU: 30})
	db.Add(Entry{Key: "k", MinCU: 10}) // lower value must not overwrite
	if e, _ := db.Lookup("k"); e.MinCU != 30 {
		t.Errorf("MinCU = %d, want 30", e.MinCU)
	}
	db.Add(Entry{Key: "k", MinCU: 45})
	if e, _ := db.Lookup("k"); e.MinCU != 45 {
		t.Errorf("MinCU = %d, want 45", e.MinCU)
	}
}

func TestDBSaveLoadRoundTrip(t *testing.T) {
	p := newProfiler()
	db := NewDB()
	db.Profile(p, []kernels.Desc{
		kernels.GEMM(32, 512, 512, 512),
		kernels.BatchNorm(32, 64, 56, 56),
	})
	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if loaded.Len() != db.Len() {
		t.Fatalf("loaded %d entries, want %d", loaded.Len(), db.Len())
	}
	for _, e := range db.Entries() {
		le, ok := loaded.Lookup(e.Key)
		if !ok || le != e {
			t.Errorf("entry %s did not round-trip: %+v vs %+v", e.Key, e, le)
		}
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewBufferString("not json")); err == nil {
		t.Error("Load accepted garbage")
	}
}

// TestMI100KernelMinCU: the profiler respects the device it is given — a
// kernel sized for 90 CUs knees near 90 on the MI100, a size that does
// not exist on the MI50.
func TestMI100KernelMinCU(t *testing.T) {
	p := New(Config{Spec: gpu.MI100Spec(), Tolerance: 0.05, LaunchOverhead: 6})
	d := kernels.SizedCompute("k", 90, 10, 1, 50)
	got := p.KernelMinCU(d.Work)
	if got < 85 || got > 96 {
		t.Errorf("MI100 minCU = %d, want ~90", got)
	}
	// The same kernel saturates the whole MI50.
	p50 := newProfiler()
	if got := p50.KernelMinCU(d.Work); got < 55 {
		t.Errorf("MI50 minCU = %d, want ~60 (saturated)", got)
	}
}

// Property: minCU is always in [1, 60], and latency at the minCU partition
// really is within tolerance of the full-GPU latency.
func TestMinCUDefinitionProperty(t *testing.T) {
	p := newProfiler()
	prop := func(wg16 uint16, mem uint8) bool {
		wgs := int(wg16)%5000 + 1
		work := gpu.KernelWork{
			Workgroups:   wgs,
			ThreadsPerWG: 256,
			WGTime:       5,
			MemBytes:     float64(mem) * 1e6,
			Tail:         0.5,
		}
		m := p.KernelMinCU(work)
		if m < 1 || m > 60 {
			return false
		}
		full := p.KernelLatency(work, 60)
		return p.KernelLatency(work, m) <= full*(1+p.cfg.Tolerance)+1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
