// Package profile implements KRISP's profile-guided right-sizing inputs:
//
//   - the per-kernel minimum required CUs ("minCU") — the least number of
//     CUs, allocated with the Conserved policy, at which the kernel's
//     isolated latency matches its full-GPU latency (paper §IV-B);
//   - the per-model right-size ("kneepoint") used by Model Right-Size
//     partitioning, i.e. the prior works' GSLICE/Gpulet/PARIS metric;
//   - the performance database (the "Required CUs table" stored alongside
//     MIOpen-style perf DBs at library install time) that the runtime
//     consults on every kernel launch.
//
// Profiling uses the device's closed-form isolated duration, so a full
// model sweep costs microseconds of wall time instead of event simulation.
package profile

import (
	"encoding/json"
	"fmt"
	"io"

	"krisp/internal/alloc"
	"krisp/internal/gpu"
	"krisp/internal/kernels"
	"krisp/internal/sim"
)

// Config parameterizes profiling.
type Config struct {
	// Spec is the device being profiled.
	Spec gpu.DeviceSpec
	// Tolerance is the slowdown (relative to full GPU) still considered
	// "the same latency" when searching for minCU. The paper uses the
	// point of indistinguishable latency; 5% absorbs measurement noise.
	Tolerance float64
	// LaunchOverhead is the per-kernel launch cost (runtime + packet
	// processing) added to every kernel latency. It makes short kernels
	// launch-dominated and hence CU-tolerant, as observed on real stacks.
	LaunchOverhead sim.Duration
}

// DefaultConfig profiles an MI50 with 5% tolerance and a 6us launch cost.
func DefaultConfig() Config {
	return Config{Spec: gpu.MI50Spec(), Tolerance: 0.05, LaunchOverhead: 6}
}

// Profiler evaluates kernel and model latencies on an idle device.
type Profiler struct {
	cfg Config
	dev *gpu.Device
	// maskCache holds the Conserved mask for each partition size; masks on
	// an idle device depend only on the size.
	maskCache []gpu.CUMask
}

// New creates a Profiler for the configured device.
func New(cfg Config) *Profiler {
	if cfg.Tolerance <= 0 {
		cfg.Tolerance = 0.05
	}
	p := &Profiler{
		cfg: cfg,
		dev: gpu.NewDevice(sim.New(), cfg.Spec, nil),
	}
	total := cfg.Spec.Topo.TotalCUs()
	p.maskCache = make([]gpu.CUMask, total+1)
	// One reusable allocator for the whole sweep: GenerateMask would build
	// (and throw away) an Allocator's scratch slices per partition size.
	a := alloc.NewAllocator(cfg.Spec.Topo)
	for n := 1; n <= total; n++ {
		p.maskCache[n] = a.Generate(nil, alloc.Request{
			NumCUs:       n,
			OverlapLimit: alloc.NoOverlapLimit,
		})
	}
	return p
}

// Config returns the profiling configuration.
func (p *Profiler) Config() Config { return p.cfg }

// Mask returns the idle-device Conserved mask of n CUs used for profiling.
func (p *Profiler) Mask(n int) gpu.CUMask {
	if n < 1 {
		n = 1
	}
	if n >= len(p.maskCache) {
		n = len(p.maskCache) - 1
	}
	return p.maskCache[n]
}

// KernelLatency returns the isolated latency of one kernel on an n-CU
// Conserved partition, including launch overhead.
func (p *Profiler) KernelLatency(work gpu.KernelWork, n int) sim.Duration {
	return p.cfg.LaunchOverhead + p.dev.IsolatedDuration(work, p.Mask(n))
}

// KernelMinCU returns the minimum required CUs for a kernel: the smallest
// n such that every partition of n or more CUs stays within Tolerance of
// the full-GPU latency. Scanning from the top handles the (physical)
// non-monotonicities that SE-boundary effects introduce.
func (p *Profiler) KernelMinCU(work gpu.KernelWork) int {
	total := p.cfg.Spec.Topo.TotalCUs()
	full := p.KernelLatency(work, total)
	limit := full * (1 + p.cfg.Tolerance)
	minCU := total
	for n := total; n >= 1; n-- {
		if p.KernelLatency(work, n) > limit {
			break
		}
		minCU = n
	}
	return minCU
}

// ModelLatency returns the isolated latency of a full inference pass (the
// sum of its kernel launches) on an n-CU Conserved partition.
func (p *Profiler) ModelLatency(descs []kernels.Desc, n int) sim.Duration {
	var total sim.Duration
	for _, d := range descs {
		total += p.KernelLatency(d.Work, n)
	}
	return total
}

// ModelRightSize returns the model-wise right-size (the prior works'
// kneepoint): the smallest partition that keeps the whole inference pass
// within Tolerance of its full-GPU latency.
func (p *Profiler) ModelRightSize(descs []kernels.Desc) int {
	total := p.cfg.Spec.Topo.TotalCUs()
	full := p.ModelLatency(descs, total)
	limit := full * (1 + p.cfg.Tolerance)
	minCU := total
	for n := total; n >= 1; n-- {
		if p.ModelLatency(descs, n) > limit {
			break
		}
		minCU = n
	}
	return minCU
}

// SweepPoint is one point of a CU-restriction sweep (Fig. 3).
type SweepPoint struct {
	CUs int
	// Latency is the isolated inference latency at this partition size.
	Latency sim.Duration
	// Throughput is normalized to the full-GPU throughput (1.0 at 60 CUs).
	Throughput float64
}

// CUSweep evaluates a model's latency and normalized throughput across
// every partition size from 1 CU to the full device (Fig. 3).
func (p *Profiler) CUSweep(descs []kernels.Desc) []SweepPoint {
	total := p.cfg.Spec.Topo.TotalCUs()
	full := p.ModelLatency(descs, total)
	out := make([]SweepPoint, 0, total)
	for n := 1; n <= total; n++ {
		l := p.ModelLatency(descs, n)
		out = append(out, SweepPoint{CUs: n, Latency: l, Throughput: float64(full / l)})
	}
	return out
}

// Entry is one row of the performance database: the profiled minimum
// required CUs for a kernel variant, plus the metadata the Fig. 6 scatter
// plots need.
type Entry struct {
	Key          string  `json:"key"`
	Name         string  `json:"name"`
	Workgroups   int     `json:"workgroups"`
	ThreadsPerWG int     `json:"threads_per_wg"`
	MinCU        int     `json:"min_cu"`
	FullLatency  float64 `json:"full_latency_us"`
	InputBytes   float64 `json:"input_bytes"`
}

// variant is the struct form of Entry.Key / kernels.Desc.Key — comparable,
// so the launch-path lookup never formats a key string.
type variant struct {
	name         string
	workgroups   int
	threadsPerWG int
}

// DB is the Required CUs table: kernel variant -> profiled minCU. In the
// paper this lives in CPU-side memory next to the accelerated library's
// perf DB and is consulted by the runtime on each kernel launch.
//
// entries keys on the string form (the JSON/serialization identity);
// minCUs mirrors it keyed on the struct form so MinCU — called once per
// kernel launch on the dispatch hot path — costs one map probe and zero
// allocations instead of an fmt.Sprintf.
type DB struct {
	entries map[string]Entry
	minCUs  map[variant]int
}

// NewDB returns an empty database.
func NewDB() *DB {
	return &DB{entries: make(map[string]Entry), minCUs: make(map[variant]int)}
}

// Len returns the number of kernel variants profiled.
func (db *DB) Len() int { return len(db.entries) }

// Lookup returns the entry for a kernel variant.
func (db *DB) Lookup(key string) (Entry, bool) {
	e, ok := db.entries[key]
	return e, ok
}

// MinCU returns the profiled minimum CUs for a kernel, or the full device
// if the kernel was never profiled — the conservative fallback the paper's
// runtime applies to unknown kernels.
func (db *DB) MinCU(d kernels.Desc, totalCUs int) int {
	v := variant{name: d.Name, workgroups: d.Work.Workgroups, threadsPerWG: d.Work.ThreadsPerWG}
	if cu, ok := db.minCUs[v]; ok {
		return cu
	}
	return totalCUs
}

// Entries returns all rows (unordered).
func (db *DB) Entries() []Entry {
	out := make([]Entry, 0, len(db.entries))
	for _, e := range db.entries {
		out = append(out, e)
	}
	return out
}

// Add inserts or overwrites an entry, keeping the larger MinCU when the
// same variant is profiled twice with different workloads (worst case
// wins, so the runtime never under-allocates).
func (db *DB) Add(e Entry) {
	if prev, ok := db.entries[e.Key]; ok && prev.MinCU > e.MinCU {
		return
	}
	db.entries[e.Key] = e
	db.minCUs[variant{name: e.Name, workgroups: e.Workgroups, threadsPerWG: e.ThreadsPerWG}] = e.MinCU
}

// Profile profiles every kernel and records it in the database. It is the
// install-time step the paper amortizes into library installation.
func (db *DB) Profile(p *Profiler, descs []kernels.Desc) {
	total := p.cfg.Spec.Topo.TotalCUs()
	for _, d := range descs {
		key := d.Key()
		if _, ok := db.entries[key]; ok {
			continue
		}
		db.Add(Entry{
			Key:          key,
			Name:         d.Name,
			Workgroups:   d.Work.Workgroups,
			ThreadsPerWG: d.Work.ThreadsPerWG,
			MinCU:        p.KernelMinCU(d.Work),
			FullLatency:  float64(p.KernelLatency(d.Work, total)),
			InputBytes:   d.InputBytes,
		})
	}
}

// Save writes the database as JSON.
func (db *DB) Save(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(db.Entries())
}

// Load reads a database previously written by Save.
func Load(r io.Reader) (*DB, error) {
	var entries []Entry
	if err := json.NewDecoder(r).Decode(&entries); err != nil {
		return nil, fmt.Errorf("profile: loading database: %w", err)
	}
	db := NewDB()
	for _, e := range entries {
		db.Add(e)
	}
	return db, nil
}
