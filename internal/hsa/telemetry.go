package hsa

import (
	"fmt"

	tele "krisp/internal/telemetry"
)

// Telemetry holds the command processor's metric handles, resolved once at
// stack construction. The dispatch pump reads them through a single nil
// check per packet; every write is one atomic op, so the zero-alloc fast
// path (see package doc) is preserved with counters enabled. The tracer is
// the only allocating consumer and is nil unless span tracing was requested.
type Telemetry struct {
	// Dispatches counts kernel packets handed to the device.
	Dispatches *tele.Counter
	// Barriers counts barrier-AND packets consumed.
	Barriers *tele.Counter
	// IOCTLs counts CU-mask IOCTL syscalls issued.
	IOCTLs *tele.Counter
	// QueueDepth is the number of packets waiting across all queues of the
	// processor (submitted, not yet consumed).
	QueueDepth *tele.Gauge
	// DispatchWait is the doorbell-to-dispatch latency: from Submit to the
	// device launch, including queue serialization and packet processing.
	DispatchWait *tele.Histogram
	// IOCTLLatency is the caller-observed CU-mask IOCTL latency, including
	// the global serialization wait.
	IOCTLLatency *tele.Histogram

	tracer *tele.Tracer
	pid    int
}

// NewTelemetry resolves the HSA metric handles for GPU index gpu against
// the hub. Returns nil when the hub carries no registry.
func NewTelemetry(hub *tele.Hub, gpu int) *Telemetry {
	reg := hub.Registry()
	if reg == nil {
		return nil
	}
	lbl := fmt.Sprintf(`{gpu="%d"}`, gpu)
	return &Telemetry{
		Dispatches:   reg.Counter("krisp_hsa_dispatches_total"+lbl, "kernel packets dispatched to the device"),
		Barriers:     reg.Counter("krisp_hsa_barriers_total"+lbl, "barrier-AND packets consumed"),
		IOCTLs:       reg.Counter("krisp_hsa_ioctls_total"+lbl, "CU-mask IOCTL syscalls issued"),
		QueueDepth:   reg.Gauge("krisp_hsa_queue_depth"+lbl, "packets waiting across all queues"),
		DispatchWait: reg.Histogram("krisp_hsa_dispatch_wait_us"+lbl, "doorbell-to-dispatch latency (virtual us)", tele.LatencyBucketsUs()),
		IOCTLLatency: reg.Histogram("krisp_hsa_ioctl_latency_us"+lbl, "observed CU-mask IOCTL latency incl. serialization (virtual us)", tele.LatencyBucketsUs()),
		tracer:       hub.Trace(),
		pid:          gpu,
	}
}

// SetTelemetry installs (or removes, with nil) the processor's telemetry.
// Install it before creating queues so the trace names every queue thread.
func (cp *CommandProcessor) SetTelemetry(t *Telemetry) { cp.tel = t }

// nameQueue registers the Perfetto display name for a queue's trace rows.
func (t *Telemetry) nameQueue(id int) {
	if t == nil || t.tracer == nil {
		return
	}
	t.tracer.NameThread(t.pid, id, fmt.Sprintf("hsa-queue-%d", id))
}
