package hsa

import (
	"testing"

	"krisp/internal/gpu"
	"krisp/internal/kernels"
	"krisp/internal/sim"
)

func newStack(kernelScoped bool) (*sim.Engine, *gpu.Device, *CommandProcessor) {
	eng := sim.New()
	dev := gpu.NewDevice(eng, gpu.MI50Spec(), nil)
	cfg := DefaultConfig()
	cfg.KernelScoped = kernelScoped
	cp := NewCommandProcessor(eng, dev, cfg)
	return eng, dev, cp
}

// oneWave is a 600-WG compute kernel: 1 wave on the full MI50 (~10us).
func oneWave() kernels.Desc {
	return kernels.SizedCompute("test", 60, 10, 1, 10)
}

func TestSignalLifecycle(t *testing.T) {
	s := NewSignal(2)
	fired := 0
	s.OnDone(func() { fired++ })
	if s.Done() {
		t.Fatal("signal done before completions")
	}
	s.Complete()
	if s.Done() || fired != 0 {
		t.Fatal("signal done after 1 of 2 completions")
	}
	s.Complete()
	if !s.Done() || fired != 1 {
		t.Fatalf("done=%v fired=%d after 2 completions", s.Done(), fired)
	}
	// Extra completes are no-ops; waiters on a done signal fire at once.
	s.Complete()
	s.OnDone(func() { fired++ })
	if fired != 2 {
		t.Fatalf("fired=%d, want 2", fired)
	}
}

func TestKernelDispatchCompletes(t *testing.T) {
	eng, dev, cp := newStack(false)
	q := cp.NewQueue()
	var doneAt sim.Time
	q.SubmitKernel(oneWave(), func() { doneAt = eng.Now() })
	eng.Run()
	// 6us packet processing + ~10.5us kernel.
	if doneAt < 16 || doneAt > 18 {
		t.Errorf("kernel completed at %v, want ~16.5", doneAt)
	}
	if dev.Running() != 0 {
		t.Error("device not idle")
	}
	if cp.DispatchCount != 1 {
		t.Errorf("DispatchCount = %d, want 1", cp.DispatchCount)
	}
}

func TestQueueSerializesKernels(t *testing.T) {
	eng, _, cp := newStack(false)
	q := cp.NewQueue()
	var first, second sim.Time
	q.SubmitKernel(oneWave(), func() { first = eng.Now() })
	q.SubmitKernel(oneWave(), func() { second = eng.Now() })
	eng.Run()
	if second <= first {
		t.Fatalf("second kernel (%v) did not run after first (%v)", second, first)
	}
	// Serialized: second completes one full launch+exec after the first.
	if d := second - first; d < 16 || d > 18 {
		t.Errorf("spacing = %v, want ~16.5", d)
	}
}

func TestSeparateQueuesRunConcurrently(t *testing.T) {
	eng, _, cp := newStack(false)
	q1, q2 := cp.NewQueue(), cp.NewQueue()
	var t1, t2 sim.Time
	q1.SubmitKernel(oneWave(), func() { t1 = eng.Now() })
	q2.SubmitKernel(oneWave(), func() { t2 = eng.Now() })
	eng.Run()
	// Both share the full GPU and slow down symmetrically; simultaneous
	// completion proves they overlapped rather than serialized.
	if t1 != t2 {
		t.Errorf("concurrent kernels at %v, %v — look serialized", t1, t2)
	}
	if t1 <= 0 {
		t.Fatal("kernels never completed")
	}
}

func TestQueueCUMaskRestrictsKernels(t *testing.T) {
	eng, dev, cp := newStack(false)
	q := cp.NewQueue()
	applied := false
	q.SetCUMask(gpu.RangeMask(gpu.MI50, 0, 15), func() { applied = true })
	eng.Run()
	if !applied {
		t.Fatal("mask never applied")
	}
	var maxBusy int
	q.SubmitKernel(oneWave(), nil)
	eng.At(eng.Now()+10, func() {
		if b := dev.BusyCUs(); b > maxBusy {
			maxBusy = b
		}
	})
	eng.Run()
	if maxBusy != 15 {
		t.Errorf("busy CUs = %d, want 15 (stream mask)", maxBusy)
	}
}

func TestSetCUMaskTakesIOCTLLatency(t *testing.T) {
	eng, _, cp := newStack(false)
	q := cp.NewQueue()
	var appliedAt sim.Time
	q.SetCUMask(gpu.RangeMask(gpu.MI50, 0, 10), func() { appliedAt = eng.Now() })
	eng.Run()
	if appliedAt != 20 {
		t.Errorf("mask applied at %v, want 20 (IOCTL latency)", appliedAt)
	}
}

func TestIOCTLsSerializeGlobally(t *testing.T) {
	eng, _, cp := newStack(false)
	q1, q2, q3 := cp.NewQueue(), cp.NewQueue(), cp.NewQueue()
	var times []sim.Time
	record := func() { times = append(times, eng.Now()) }
	q1.SetCUMask(gpu.RangeMask(gpu.MI50, 0, 10), record)
	q2.SetCUMask(gpu.RangeMask(gpu.MI50, 10, 10), record)
	q3.SetCUMask(gpu.RangeMask(gpu.MI50, 20, 10), record)
	eng.Run()
	want := []sim.Time{20, 40, 60}
	for i, w := range want {
		if times[i] != w {
			t.Errorf("IOCTL %d applied at %v, want %v (serialized)", i, times[i], w)
		}
	}
}

func TestSetCUMaskEmptyPanics(t *testing.T) {
	_, _, cp := newStack(false)
	q := cp.NewQueue()
	defer func() {
		if recover() == nil {
			t.Error("empty mask did not panic")
		}
	}()
	q.SetCUMask(gpu.CUMask{}, nil)
}

func TestBarrierWaitsForDeps(t *testing.T) {
	eng, _, cp := newStack(false)
	q1, q2 := cp.NewQueue(), cp.NewQueue()
	kernelSig := NewSignal(1)
	q1.Submit(Packet{Type: KernelDispatch, Kernel: oneWave(), Completion: kernelSig})
	var barrierAt, kernelAt sim.Time
	kernelSig.OnDone(func() { kernelAt = eng.Now() })
	q2.SubmitBarrier([]*Signal{kernelSig}, func() { barrierAt = eng.Now() }, nil)
	eng.Run()
	if barrierAt < kernelAt {
		t.Errorf("barrier fired at %v before dep at %v", barrierAt, kernelAt)
	}
}

func TestBarrierWithDoneDepsFiresImmediately(t *testing.T) {
	eng, _, cp := newStack(false)
	q := cp.NewQueue()
	fired := false
	q.SubmitBarrier([]*Signal{NewSignal(0)}, func() { fired = true }, nil)
	eng.Run()
	if !fired {
		t.Error("barrier with satisfied deps never fired")
	}
	if eng.Now() != 6 {
		t.Errorf("barrier consumed at %v, want 6 (packet process time)", eng.Now())
	}
}

func TestBarrierBlocksLaterPackets(t *testing.T) {
	eng, _, cp := newStack(false)
	q := cp.NewQueue()
	gate := NewSignal(1)
	var kernelAt sim.Time
	q.SubmitBarrier([]*Signal{gate}, nil, nil)
	q.SubmitKernel(oneWave(), func() { kernelAt = eng.Now() })
	eng.At(100, func() { gate.Complete() })
	eng.Run()
	if kernelAt < 100 {
		t.Errorf("kernel behind barrier completed at %v, before gate at 100", kernelAt)
	}
}

func TestKernelScopedPartitionHonoursPacketField(t *testing.T) {
	eng, dev, cp := newStack(true)
	q := cp.NewQueue()
	var busyDuringExec int
	q.SubmitKernelScoped(oneWave(), 12, 0, nil)
	eng.At(10, func() { busyDuringExec = dev.BusyCUs() })
	eng.Run()
	if busyDuringExec != 12 {
		t.Errorf("busy CUs = %d, want 12 (kernel-scoped partition)", busyDuringExec)
	}
}

func TestKernelScopedIgnoredWhenDisabled(t *testing.T) {
	eng, dev, cp := newStack(false)
	q := cp.NewQueue()
	var busyDuringExec int
	q.SubmitKernelScoped(oneWave(), 12, 0, nil)
	eng.At(10, func() { busyDuringExec = dev.BusyCUs() })
	eng.Run()
	if busyDuringExec != 60 {
		t.Errorf("busy CUs = %d, want 60 (partition field ignored)", busyDuringExec)
	}
}

func TestKernelScopedIsolationBetweenQueues(t *testing.T) {
	eng, dev, cp := newStack(true)
	q1, q2 := cp.NewQueue(), cp.NewQueue()
	q1.SubmitKernelScoped(oneWave(), 30, 0, nil)
	q2.SubmitKernelScoped(oneWave(), 30, 0, nil)
	overlap := -1
	eng.At(12, func() {
		// Both kernels should be running on disjoint 30-CU partitions.
		overlap = 0
		for cu := 0; cu < 60; cu++ {
			if dev.KernelCount(cu) > 1 {
				overlap++
			}
		}
	})
	eng.Run()
	if overlap != 0 {
		t.Errorf("%d CUs overlapped, want 0 (isolated kernel-scoped partitions)", overlap)
	}
}

func TestMaskAllocTimeCharged(t *testing.T) {
	engA, _, cpA := newStack(false)
	qA := cpA.NewQueue()
	var plainDone sim.Time
	qA.SubmitKernel(oneWave(), func() { plainDone = engA.Now() })
	engA.Run()

	engB, _, cpB := newStack(true)
	qB := cpB.NewQueue()
	var scopedDone sim.Time
	qB.SubmitKernelScoped(oneWave(), 60, 60, func() { scopedDone = engB.Now() })
	engB.Run()

	if d := scopedDone - plainDone; d != 1 {
		t.Errorf("kernel-scoped extra cost = %v, want 1 (MaskAllocTime)", d)
	}
}
