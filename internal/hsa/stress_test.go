package hsa

import (
	"math/rand"
	"testing"
	"testing/quick"

	"krisp/internal/gpu"
	"krisp/internal/kernels"
	"krisp/internal/sim"
)

// Property: any interleaving of kernel and barrier packets across several
// queues drains completely, completes every packet exactly once, and
// leaves the device idle.
func TestQueueStressProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		eng := sim.New()
		dev := gpu.NewDevice(eng, gpu.MI50Spec(), nil)
		cfg := DefaultConfig()
		cfg.KernelScoped = rng.Intn(2) == 0
		cp := NewCommandProcessor(eng, dev, cfg)

		nQueues := 1 + rng.Intn(4)
		queues := make([]*Queue, nQueues)
		for i := range queues {
			queues[i] = cp.NewQueue()
		}

		completed := 0
		expected := 0
		var signals []*Signal
		for i := 0; i < 30; i++ {
			q := queues[rng.Intn(nQueues)]
			switch rng.Intn(3) {
			case 0, 1: // kernel
				d := kernels.SizedCompute("k", 1+rng.Intn(60), 10, 1, sim.Duration(1+rng.Intn(20)))
				sig := NewSignal(1)
				sig.OnDone(func() { completed++ })
				signals = append(signals, sig)
				q.Submit(Packet{
					Type:         KernelDispatch,
					Kernel:       d,
					PartitionCUs: 1 + rng.Intn(60),
					OverlapLimit: rng.Intn(61),
					Completion:   sig,
				})
				expected++
			case 2: // barrier on a random earlier signal
				var deps []*Signal
				if len(signals) > 0 && rng.Intn(2) == 0 {
					deps = []*Signal{signals[rng.Intn(len(signals))]}
				}
				sig := NewSignal(1)
				sig.OnDone(func() { completed++ })
				q.SubmitBarrier(deps, nil, sig)
				expected++
			}
		}
		eng.Run()
		if completed != expected {
			return false
		}
		if dev.Running() != 0 || dev.BusyCUs() != 0 {
			return false
		}
		for _, q := range queues {
			if q.Pending() != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: kernels submitted to one queue complete in submission order.
func TestQueueFIFOProperty(t *testing.T) {
	prop := func(seed int64, n8 uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		eng := sim.New()
		dev := gpu.NewDevice(eng, gpu.MI50Spec(), nil)
		cp := NewCommandProcessor(eng, dev, DefaultConfig())
		q := cp.NewQueue()
		n := int(n8%15) + 2
		var order []int
		for i := 0; i < n; i++ {
			i := i
			d := kernels.SizedCompute("k", 1+rng.Intn(60), 10, 1, sim.Duration(1+rng.Intn(50)))
			q.SubmitKernel(d, func() { order = append(order, i) })
		}
		eng.Run()
		if len(order) != n {
			return false
		}
		for i, v := range order {
			if v != i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestActiveStreams(t *testing.T) {
	eng := sim.New()
	dev := gpu.NewDevice(eng, gpu.MI50Spec(), nil)
	cp := NewCommandProcessor(eng, dev, DefaultConfig())
	q1 := cp.NewQueue()
	q2 := cp.NewQueue()
	_ = q2
	if got := cp.ActiveStreams(); got != 0 {
		t.Errorf("ActiveStreams = %d on idle queues, want 0", got)
	}
	if got := cp.FairShare(); got != 60 {
		t.Errorf("FairShare = %d with no active streams, want 60", got)
	}
	q1.SubmitKernel(oneWave(), nil)
	if got := cp.ActiveStreams(); got != 1 {
		t.Errorf("ActiveStreams = %d with one busy queue, want 1", got)
	}
	if got := cp.FairShare(); got != 60 {
		t.Errorf("FairShare = %d with one stream, want 60", got)
	}
	q2.SubmitKernel(oneWave(), nil)
	if got := cp.FairShare(); got != 30 {
		t.Errorf("FairShare = %d with two streams, want 30", got)
	}
	eng.Run()
	if got := cp.ActiveStreams(); got != 0 {
		t.Errorf("ActiveStreams = %d after drain, want 0", got)
	}
}

func TestDispatchReportsGrantedMask(t *testing.T) {
	eng := sim.New()
	dev := gpu.NewDevice(eng, gpu.MI50Spec(), nil)
	cfg := DefaultConfig()
	cfg.KernelScoped = true
	cp := NewCommandProcessor(eng, dev, cfg)
	q := cp.NewQueue()
	var granted gpu.CUMask
	q.Submit(Packet{
		Type:         KernelDispatch,
		Kernel:       oneWave(),
		PartitionCUs: 12,
		OnDispatch:   func(m gpu.CUMask) { granted = m },
	})
	eng.Run()
	if granted.Count() != 12 {
		t.Errorf("OnDispatch mask has %d CUs, want 12", granted.Count())
	}
}
