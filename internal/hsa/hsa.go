// Package hsa models the slice of the ROCm runtime stack that KRISP
// touches (paper §IV-D, Fig. 9/10): software HSA queues holding AQL
// packets, completion signals, barrier-AND packets, a command processor
// whose packet processor consumes packets, per-queue CU masks settable
// through an IOCTL (AMD's stream-scoped CU Masking API), and — when
// kernel-scoped partition instances are enabled — the KRISP extension that
// reads a partition-size field from the kernel packet and generates a
// per-kernel resource mask with Algorithm 1.
//
// Queues process their packets in order and serialize kernel execution the
// way dependent ML inference streams do: packet n+1 is consumed only after
// packet n's kernel has completed.
//
// The packet processor is the simulator's hottest path — it runs for every
// kernel of every inference pass — so its steady state allocates nothing:
// queues store packets in a head-indexed ring, the dispatch and completion
// hooks are pre-bound method values created once per queue, completion
// signals recycle through a per-processor free list, and kernel-scoped
// mask generation goes through an alloc.MaskCache over the device's live
// Resource Monitor counters.
package hsa

import (
	"errors"

	"krisp/internal/alloc"
	"krisp/internal/gpu"
	"krisp/internal/kernels"
	"krisp/internal/sim"
)

// ErrIOCTLFault is reported to SetCUMaskChecked callers when fault
// injection fails the CU-mask IOCTL: the syscall consumed its latency but
// the queue mask was left unchanged.
var ErrIOCTLFault = errors.New("hsa: CU-mask IOCTL failed")

// Signal is an HSA completion signal: a counter that barrier packets and
// host code can wait on. It is decremented by Complete; observers fire
// when it reaches zero.
type Signal struct {
	value   int
	waiters []func()
	// fired latches once waiters have been notified, and overruns counts
	// Complete calls past zero. Together they make the signal defensive
	// against double completion: injected faults (a retry path completing a
	// packet a second time, a watchdog racing a late completion) can
	// over-complete a signal, and without the guard that would silently
	// corrupt the dependency counts of barrier packets waiting on it.
	fired    bool
	overruns int
	// pool, when non-nil, is the command processor whose free list this
	// signal recycles through; auto makes the recycle happen right after
	// the completion waiters fire (safe only when nothing observes the
	// signal past completion — see CommandProcessor.GetSignal).
	pool *CommandProcessor
	auto bool
}

// NewSignal creates a signal with the given initial value. A value of 0 is
// already complete.
func NewSignal(initial int) *Signal { return &Signal{value: initial} }

// Done reports whether the signal has reached zero.
func (s *Signal) Done() bool { return s.value <= 0 }

// Value returns the remaining completion count (never below zero).
func (s *Signal) Value() int {
	if s.value < 0 {
		return 0
	}
	return s.value
}

// Overruns returns how many Complete calls arrived after the signal had
// already reached zero — always zero in a fault-free run.
func (s *Signal) Overruns() int { return s.overruns }

// Complete decrements the signal; at zero all waiters fire (once).
// Completing an already-done signal is counted as an overrun and otherwise
// ignored, so waiters can never fire twice and barrier dependency counts
// cannot go negative.
func (s *Signal) Complete() {
	if s.value <= 0 {
		s.overruns++
		return
	}
	s.value--
	if s.value != 0 || s.fired {
		return
	}
	s.fired = true
	ws := s.waiters
	if s.pool == nil {
		// Unpooled signals shed their waiters permanently; pooled ones
		// keep the backing array for the next lease.
		s.waiters = nil
	}
	for i := range ws {
		ws[i]()
	}
	if s.pool != nil && s.auto {
		s.pool.putSignal(s)
	}
}

// OnDone registers fn to run when the signal completes; if it already has,
// fn runs immediately.
func (s *Signal) OnDone(fn func()) {
	if s.Done() {
		fn()
		return
	}
	s.waiters = append(s.waiters, fn)
}

// PacketType discriminates AQL packets.
type PacketType int

const (
	// KernelDispatch launches a kernel.
	KernelDispatch PacketType = iota
	// BarrierAND blocks the queue until all dependency signals complete.
	BarrierAND
)

// Packet is an architected queuing language (AQL) packet.
type Packet struct {
	Type PacketType

	// Kernel dispatch fields.
	Kernel kernels.Desc
	// PartitionCUs is KRISP's extension to the AQL kernel packet: the
	// partition size injected by kernel-wise right-sizing in the runtime.
	// Zero means "no kernel-scoped partition" and the kernel inherits the
	// queue's CU mask (baseline stream-scoped behaviour).
	PartitionCUs int
	// OverlapLimit bounds how many already-busy CUs the generated mask may
	// include (see alloc.Request). Only meaningful with PartitionCUs > 0.
	OverlapLimit int

	// Barrier fields: the packet is consumed once all DepSignals are done.
	DepSignals []*Signal
	// Callback runs in the runtime when the barrier packet is consumed —
	// the hook KRISP's emulation uses to reconfigure the queue mask
	// between kernels (Fig. 11b step 2).
	Callback func()

	// Completion, if non-nil, is completed when the packet finishes
	// (kernel completed, or barrier consumed).
	Completion *Signal

	// OnDispatch, if non-nil, runs when a kernel packet is handed to the
	// device, with the resource mask it was granted. Tracing hook.
	OnDispatch func(mask gpu.CUMask)

	// OnFault, if non-nil, is invoked INSTEAD of Completion when fault
	// injection turns this dispatch into a transient failure: the kernel
	// occupied the device for its full duration but its result is lost
	// (the software-visible shape of an ECC/queue-preemption error). A
	// packet without an OnFault handler swallows the failure and completes
	// normally, so untracked callers can never deadlock on a lost signal.
	OnFault func()

	// enqueuedAt is stamped by Submit (doorbell time) so telemetry can
	// report doorbell-to-dispatch latency and queue-wait spans.
	enqueuedAt sim.Time
}

// FaultHook is the injection surface the command processor consults when
// fault injection is armed (see internal/faults). All methods are called
// from the simulation goroutine; a nil hook means a fault-free run and
// costs a single pointer check per consultation site.
type FaultHook interface {
	// IOCTLOutcome is consulted once per CU-mask IOCTL: fail aborts the
	// mask change after the syscall latency elapses, extra adds a latency
	// spike on top of the configured IOCTLLatency.
	IOCTLOutcome() (fail bool, extra sim.Duration)
	// KernelOutcome is consulted once per kernel dispatch: stretch > 1
	// turns the kernel into a straggler (its execution time multiplies),
	// fail turns it into a transient failure routed to Packet.OnFault.
	KernelOutcome() (stretch float64, fail bool)
	// NoteHealthRemask records that a dispatch's resource mask had to be
	// shrunk around dead CUs.
	NoteHealthRemask()
}

// Config parameterizes the command processor.
type Config struct {
	// PacketProcessTime is the fixed cost to consume any AQL packet
	// (runtime launch path + packet processor), per packet.
	PacketProcessTime sim.Duration
	// MaskAllocTime is the added firmware cost of running the resource
	// mask generation algorithm for kernel-scoped partitions. The paper
	// measured a 1us tail for Algorithm 1.
	MaskAllocTime sim.Duration
	// IOCTLLatency is the cost of the CU-mask IOCTL syscall behind the
	// stream-scoped CU Masking API. IOCTLs serialize in the ROCm runtime
	// (paper §V-B), which this model enforces globally.
	IOCTLLatency sim.Duration
	// KernelScoped enables KRISP's hardware support: the packet processor
	// honours PartitionCUs and generates a per-kernel resource mask.
	KernelScoped bool
	// AllocPolicy is the distribution policy used for kernel-scoped masks.
	// The zero value is alloc.Conserved, KRISP's choice.
	AllocPolicy alloc.Policy
	// NoFairShare disables the fair-share progress floor in kernel-scoped
	// allocation (ablation knob): starved kernels then run on whatever
	// scraps the overlap limit leaves them.
	NoFairShare bool
}

// DefaultConfig matches the measurements the paper reports: ~6us launch
// path, 1us for mask generation, 20us per CU-mask IOCTL.
func DefaultConfig() Config {
	return Config{
		PacketProcessTime: 6,
		MaskAllocTime:     1,
		IOCTLLatency:      20,
	}
}

// CommandProcessor consumes AQL packets from queues and dispatches kernels
// to the device.
type CommandProcessor struct {
	cfg Config
	eng *sim.Engine
	dev *gpu.Device

	// masks caches Algorithm 1 output against the device's occupancy
	// generation (the dispatch fast path).
	masks *alloc.MaskCache

	// sigFree recycles completion signals leased through GetSignal /
	// GetBarrierSignal. sigAll tracks every signal this processor ever
	// allocated, so Reset can reclaim leases orphaned by an engine reset
	// (signals of kernels still in flight when a run was cut off).
	sigFree []*Signal
	sigAll  []*Signal

	// ioctlFreeAt implements global IOCTL serialization.
	ioctlFreeAt sim.Time
	nextQueueID int
	queues      []*Queue
	// queueFree recycles released queues (ReleaseQueue / Reset) so replica
	// churn and run reuse stop growing cp.queues without bound. A recycled
	// queue keeps its original ID: cross-queue ordering is driven by event
	// sequence, never by ID, and ActiveStreams only counts busy queues.
	queueFree []*Queue
	faults    FaultHook
	// tel, when non-nil, receives dispatch/IOCTL/queue telemetry. Handles
	// are resolved once (see telemetry.go); a disabled run keeps this nil
	// and pays one pointer check per packet.
	tel *Telemetry

	// DispatchCount counts kernels launched (for tests and stats).
	DispatchCount int
}

// SetFaults installs (or clears, with nil) the fault-injection hook.
func (cp *CommandProcessor) SetFaults(f FaultHook) { cp.faults = f }

// NumQueues returns the number of queues created on this processor.
func (cp *CommandProcessor) NumQueues() int { return len(cp.queues) }

// Queue returns the i-th queue in creation order, or nil when out of range.
func (cp *CommandProcessor) Queue(i int) *Queue {
	if i < 0 || i >= len(cp.queues) {
		return nil
	}
	return cp.queues[i]
}

// ActiveStreams returns the number of queues currently holding or
// processing packets — the concurrency the allocator's fair-share floor is
// computed against.
func (cp *CommandProcessor) ActiveStreams() int {
	n := 0
	for _, q := range cp.queues {
		if q.busy || q.Pending() > 0 {
			n++
		}
	}
	return n
}

// FairShare returns the per-stream fair share of CUs given current queue
// activity: the whole device for a lone stream.
func (cp *CommandProcessor) FairShare() int {
	active := cp.ActiveStreams()
	if active < 1 {
		active = 1
	}
	return cp.dev.Spec.Topo.TotalCUs() / active
}

// NewCommandProcessor creates a command processor bound to a device.
func NewCommandProcessor(eng *sim.Engine, dev *gpu.Device, cfg Config) *CommandProcessor {
	return &CommandProcessor{
		cfg:   cfg,
		eng:   eng,
		dev:   dev,
		masks: alloc.NewMaskCache(dev.Spec.Topo),
	}
}

// Device returns the device this command processor dispatches to.
func (cp *CommandProcessor) Device() *gpu.Device { return cp.dev }

// Config returns the command processor configuration.
func (cp *CommandProcessor) Config() Config { return cp.cfg }

// MaskCache returns the processor's Algorithm 1 cache (for stats/tests).
func (cp *CommandProcessor) MaskCache() *alloc.MaskCache { return cp.masks }

// GenerateKernelMask runs Algorithm 1 for req against the device's live
// Resource Monitor counters through the processor's mask cache — the same
// path the packet processor uses for kernel-scoped dispatches, exposed for
// the runtime's emulated enforcement (Fig. 11b).
func (cp *CommandProcessor) GenerateKernelMask(req alloc.Request) gpu.CUMask {
	return cp.masks.Generate(cp.dev, req)
}

// GetSignal leases a completion signal from the processor's free list
// (allocating one when the list is empty). The signal returns itself to
// the pool as soon as it completes and its waiters have run, so it must
// not be observed (Done/Value/OnDone) after completion — the pattern of a
// kernel completion signal, whose last act is firing its waiters. Signals
// that never complete (a faulted dispatch routed to OnFault) simply fall
// to the garbage collector; the pool is a cache, not an accounting ledger.
func (cp *CommandProcessor) GetSignal(initial int) *Signal {
	s := cp.leaseSignal(initial)
	s.auto = true
	return s
}

// GetBarrierSignal leases a pooled signal that is NOT recycled on
// completion: barrier dependency signals may be inspected (Done) after
// they complete, so the owner returns them with PutSignal at a point where
// no references remain — typically the consuming barrier's callback.
func (cp *CommandProcessor) GetBarrierSignal(initial int) *Signal {
	s := cp.leaseSignal(initial)
	s.auto = false
	return s
}

// PutSignal returns a signal leased with GetBarrierSignal to the free
// list. It must be called at most once per lease, only after the signal
// completed and every reference to it is dead. Signals from other
// processors (or plain NewSignal) are ignored.
func (cp *CommandProcessor) PutSignal(s *Signal) {
	if s == nil || s.pool != cp {
		return
	}
	cp.putSignal(s)
}

func (cp *CommandProcessor) leaseSignal(initial int) *Signal {
	var s *Signal
	if n := len(cp.sigFree); n > 0 {
		s = cp.sigFree[n-1]
		cp.sigFree[n-1] = nil
		cp.sigFree = cp.sigFree[:n-1]
	} else {
		s = &Signal{pool: cp}
		cp.sigAll = append(cp.sigAll, s)
	}
	s.value = initial
	s.fired = false
	s.overruns = 0
	return s
}

func (cp *CommandProcessor) putSignal(s *Signal) {
	s.waiters = s.waiters[:0]
	cp.sigFree = append(cp.sigFree, s)
}

// Queue is a software HSA queue. Packets submitted to it are consumed in
// FIFO order; kernel packets serialize on completion.
type Queue struct {
	ID   int
	cp   *CommandProcessor
	mask gpu.CUMask

	// packets[head:] are the waiting packets; the head index advances on
	// consumption (and both reset once the queue drains) so the steady
	// state re-uses one backing array instead of re-slicing it away.
	packets []Packet
	head    int
	busy    bool // a packet from this queue is being processed or executing

	// cur is the packet currently mid-flight (from consumption until its
	// kernel completes or its barrier fires). The queue serializes
	// packets, so exactly one can be in flight — which lets the pre-bound
	// hooks below read it from the queue instead of a per-packet closure.
	cur             Packet
	curKernelScoped bool
	curFaulted      bool
	barrierWaits    int
	// curConsumedAt/curDispatchedAt mark when the in-flight packet was
	// consumed from the ring and handed to the device — the span
	// boundaries telemetry reports. Maintained only when telemetry is on.
	curConsumedAt   sim.Time
	curDispatchedAt sim.Time

	// Pre-bound method values, created once in NewQueue, so the dispatch
	// path schedules and registers callbacks without allocating closures.
	dispatchFn   func()
	kernelDoneFn func()
	barrierFn    func()
	barrierDepFn func()

	// stalledUntil freezes the packet processor: while now < stalledUntil
	// no new packet is consumed (a packet already mid-flight finishes).
	// resume is the event that restarts the pump when the stall expires.
	stalledUntil sim.Time
	resume       *sim.Event

	// pendingIOCTL counts SetCUMask IOCTLs issued on this queue whose
	// apply events have not fired yet. A queue with one in flight is not
	// quiescent: recycling it would let the stale apply clobber the next
	// tenant's mask.
	pendingIOCTL int
}

// NewQueue allocates a queue whose initial CU mask is the full device,
// recycling a released queue when one is available.
func (cp *CommandProcessor) NewQueue() *Queue {
	var q *Queue
	if n := len(cp.queueFree); n > 0 {
		q = cp.queueFree[n-1]
		cp.queueFree[n-1] = nil
		cp.queueFree = cp.queueFree[:n-1]
	} else {
		cp.nextQueueID++
		q = &Queue{
			ID: cp.nextQueueID,
			cp: cp,
		}
		q.dispatchFn = q.dispatchCur
		q.kernelDoneFn = q.kernelDone
		q.barrierFn = q.barrierReady
		q.barrierDepFn = q.barrierDepDone
	}
	q.mask = gpu.FullMask(cp.dev.Spec.Topo)
	cp.queues = append(cp.queues, q)
	cp.tel.nameQueue(q.ID)
	return q
}

// Quiescent reports whether the queue holds no packet, no in-flight work,
// no pending stall resume and no un-applied CU-mask IOCTL — the condition
// under which recycling it cannot be observed.
func (q *Queue) Quiescent() bool {
	return !q.busy && q.Pending() == 0 && q.resume == nil && q.pendingIOCTL == 0
}

// reset returns a queue to its just-constructed state, keeping its ID and
// pre-bound dispatch hooks.
func (q *Queue) reset() {
	q.mask = gpu.FullMask(q.cp.dev.Spec.Topo)
	q.packets = q.packets[:0]
	q.head = 0
	q.busy = false
	q.cur = Packet{}
	q.curKernelScoped = false
	q.curFaulted = false
	q.barrierWaits = 0
	q.curConsumedAt = 0
	q.curDispatchedAt = 0
	q.stalledUntil = 0
	q.resume = nil
	q.pendingIOCTL = 0
}

// ReleaseQueue retires a quiescent queue to the free list for reuse by a
// later NewQueue, removing it from the processor's live set. Queues that
// are busy, stalled, or have an IOCTL in flight are left alone — their
// pending engine events still reference them, so the caller simply leaks
// them to the garbage collector.
func (cp *CommandProcessor) ReleaseQueue(q *Queue) {
	if q == nil || q.cp != cp || !q.Quiescent() {
		return
	}
	for i, x := range cp.queues {
		if x == q {
			cp.queues = append(cp.queues[:i], cp.queues[i+1:]...)
			q.reset()
			cp.queueFree = append(cp.queueFree, q)
			return
		}
	}
}

// Reset returns the command processor to its just-constructed state for
// reuse against a reset engine and device. Every live queue is force-reset
// (the engine reset already dropped any events referencing it) and parked
// on the free list in creation order, so a rerun's NewQueue calls get the
// same queues back with the same IDs. The mask cache survives: its idle
// side is a pure function of topology, and its busy side is keyed on the
// device occupancy generation, which Device.Reset advances.
func (cp *CommandProcessor) Reset() {
	for i := len(cp.queues) - 1; i >= 0; i-- {
		q := cp.queues[i]
		q.reset()
		cp.queueFree = append(cp.queueFree, q)
		cp.queues[i] = nil
	}
	cp.queues = cp.queues[:0]
	// Every lease is dead once the engine resets: rebuild the free list
	// from the full signal population, reclaiming in-flight orphans.
	cp.sigFree = cp.sigFree[:0]
	for _, s := range cp.sigAll {
		s.waiters = s.waiters[:0]
		cp.sigFree = append(cp.sigFree, s)
	}
	cp.ioctlFreeAt = 0
	cp.DispatchCount = 0
	cp.faults = nil
}

// CUMask returns the queue's current stream-scoped CU mask.
func (q *Queue) CUMask() gpu.CUMask { return q.mask }

// SetCUMask models the CU Masking API: an HSA runtime call backed by an
// IOCTL. The mask takes effect after the (globally serialized) IOCTL
// completes; onApplied, if non-nil, runs at that point. Kernels dispatched
// before the IOCTL completes use the old mask — the race the paper's
// emulation methodology guards against with its second barrier packet.
// Injected IOCTL failures are swallowed (the mask is simply left
// unchanged); callers that must react to them use SetCUMaskChecked.
func (q *Queue) SetCUMask(mask gpu.CUMask, onApplied func()) {
	if onApplied == nil {
		q.SetCUMaskChecked(mask, nil)
		return
	}
	q.SetCUMaskChecked(mask, func(error) { onApplied() })
}

// SetCUMaskChecked is SetCUMask with an outcome: onApplied receives nil
// when the mask took effect, or ErrIOCTLFault when fault injection failed
// the IOCTL (latency paid, mask unchanged). Latency spikes injected on the
// IOCTL path lengthen the global serialization window exactly as a slow
// real syscall would.
func (q *Queue) SetCUMaskChecked(mask gpu.CUMask, onApplied func(err error)) {
	if mask.IsEmpty() {
		panic("hsa: SetCUMask with empty mask")
	}
	cp := q.cp
	var fail bool
	var extra sim.Duration
	if cp.faults != nil {
		fail, extra = cp.faults.IOCTLOutcome()
	}
	now := cp.eng.Now()
	start := now
	if cp.ioctlFreeAt > start {
		start = cp.ioctlFreeAt
	}
	applyAt := start + cp.cfg.IOCTLLatency + extra
	cp.ioctlFreeAt = applyAt
	if t := cp.tel; t != nil {
		t.IOCTLs.Inc()
		t.IOCTLLatency.Observe(applyAt - now)
		t.tracer.Span("hsa", "cu_mask_ioctl", t.pid, q.ID, start, applyAt)
	}
	q.pendingIOCTL++
	cp.eng.At(applyAt, func() {
		q.pendingIOCTL--
		if fail {
			if onApplied != nil {
				onApplied(ErrIOCTLFault)
			}
			return
		}
		q.mask = mask
		if onApplied != nil {
			onApplied(nil)
		}
	})
}

// StallFor freezes this queue's packet processor for d microseconds from
// now: no further packet is consumed until the stall expires (or a
// watchdog calls ResetStall). Overlapping stalls extend to the furthest
// deadline. A packet already mid-flight completes normally.
func (q *Queue) StallFor(d sim.Duration) {
	until := q.cp.eng.Now() + d
	if until <= q.stalledUntil {
		return
	}
	q.stalledUntil = until
	if q.resume != nil {
		q.cp.eng.Cancel(q.resume)
	}
	q.resume = q.cp.eng.At(until, func() {
		q.resume = nil
		q.pump()
	})
}

// Stalled reports whether the packet processor is currently frozen.
func (q *Queue) Stalled() bool { return q.cp.eng.Now() < q.stalledUntil }

// StalledUntil returns the time the current stall expires (zero when the
// queue has never stalled).
func (q *Queue) StalledUntil() sim.Time { return q.stalledUntil }

// ResetStall clears an active stall immediately — the driver-level queue
// reset a watchdog performs on a hung packet processor — and restarts the
// pump. It reports whether a stall was actually cleared.
func (q *Queue) ResetStall() bool {
	if !q.Stalled() {
		return false
	}
	q.stalledUntil = q.cp.eng.Now()
	if q.resume != nil {
		q.cp.eng.Cancel(q.resume)
		q.resume = nil
	}
	q.pump()
	return true
}

// Submit enqueues a packet and rings the doorbell.
func (q *Queue) Submit(p Packet) {
	p.enqueuedAt = q.cp.eng.Now()
	if t := q.cp.tel; t != nil {
		t.QueueDepth.Add(1)
	}
	q.packets = append(q.packets, p)
	q.pump()
}

// SubmitKernel is a convenience wrapper: enqueue a kernel dispatch whose
// completion invokes onDone.
func (q *Queue) SubmitKernel(d kernels.Desc, onDone func()) {
	q.submitKernel(d, 0, 0, onDone)
}

// SubmitKernelScoped enqueues a kernel dispatch carrying KRISP's partition
// size and overlap limit in the extended AQL fields.
func (q *Queue) SubmitKernelScoped(d kernels.Desc, partitionCUs, overlapLimit int, onDone func()) {
	q.submitKernel(d, partitionCUs, overlapLimit, onDone)
}

func (q *Queue) submitKernel(d kernels.Desc, cus, limit int, onDone func()) {
	sig := q.cp.GetSignal(1)
	if onDone != nil {
		sig.OnDone(onDone)
	}
	q.Submit(Packet{
		Type:         KernelDispatch,
		Kernel:       d,
		PartitionCUs: cus,
		OverlapLimit: limit,
		Completion:   sig,
	})
}

// SubmitBarrier enqueues a barrier-AND packet. callback runs when the
// barrier is consumed (after deps complete); completion, if non-nil, is
// completed at the same point.
func (q *Queue) SubmitBarrier(deps []*Signal, callback func(), completion *Signal) {
	q.Submit(Packet{
		Type:       BarrierAND,
		DepSignals: deps,
		Callback:   callback,
		Completion: completion,
	})
}

// Pending returns the number of packets waiting in the queue (not counting
// one currently being processed).
func (q *Queue) Pending() int { return len(q.packets) - q.head }

// pump consumes the next packet if the queue is idle and not stalled.
func (q *Queue) pump() {
	if q.busy || q.head >= len(q.packets) {
		return
	}
	if q.Stalled() {
		return // the stall's resume event re-pumps
	}
	q.busy = true
	q.cur = q.packets[q.head]
	q.packets[q.head] = Packet{} // release the slot's references
	q.head++
	if t := q.cp.tel; t != nil {
		t.QueueDepth.Add(-1)
		q.curConsumedAt = q.cp.eng.Now()
	}
	if q.head == len(q.packets) {
		q.packets = q.packets[:0]
		q.head = 0
	}
	switch q.cur.Type {
	case KernelDispatch:
		q.processKernel()
	case BarrierAND:
		q.processBarrier()
	default:
		panic("hsa: unknown packet type")
	}
}

// processKernel pays the packet-processing cost, then hands q.cur to the
// device via the pre-bound dispatch hook.
func (q *Queue) processKernel() {
	cp := q.cp
	cost := cp.cfg.PacketProcessTime
	q.curKernelScoped = cp.cfg.KernelScoped && q.cur.PartitionCUs > 0
	if q.curKernelScoped {
		cost += cp.cfg.MaskAllocTime
	}
	cp.eng.After(cost, q.dispatchFn)
}

// dispatchCur launches the in-flight kernel packet on the device.
func (q *Queue) dispatchCur() {
	cp := q.cp
	p := &q.cur
	mask := q.mask
	if q.curKernelScoped {
		// KRISP packet processor: generate the kernel resource mask
		// from the live Resource Monitor counters. The fair share of
		// the device is passed as the progress floor.
		minGrant := cp.FairShare()
		if cp.cfg.NoFairShare {
			minGrant = 0
		}
		mask = cp.masks.Generate(cp.dev, alloc.Request{
			NumCUs:       p.PartitionCUs,
			OverlapLimit: p.OverlapLimit,
			Policy:       cp.cfg.AllocPolicy,
			MinGrant:     minGrant,
		})
	}
	if !cp.dev.AllHealthy() {
		// Dead CUs are masked out before dispatch; an all-dead grant
		// falls back to the surviving set so the kernel still runs.
		if m := mask.And(cp.dev.HealthMask()); !m.Equal(mask) {
			if m.IsEmpty() {
				m = cp.dev.HealthMask()
			}
			mask = m
			if cp.faults != nil {
				cp.faults.NoteHealthRemask()
			}
		}
	}
	work := p.Kernel.Work
	q.curFaulted = false
	if cp.faults != nil {
		stretch, fail := cp.faults.KernelOutcome()
		if stretch > 1 {
			work.WGTime *= stretch
			work.Tail *= stretch
		}
		q.curFaulted = fail
	}
	cp.DispatchCount++
	if t := cp.tel; t != nil {
		now := cp.eng.Now()
		t.Dispatches.Inc()
		t.DispatchWait.Observe(now - p.enqueuedAt)
		if tr := t.tracer; tr != nil {
			tr.Span("hsa", "queue_wait", t.pid, q.ID, p.enqueuedAt, q.curConsumedAt)
			tr.SpanArg("hsa", "packet_process", t.pid, q.ID, q.curConsumedAt, now,
				"mask_cus", float64(mask.Count()))
		}
		q.curDispatchedAt = now
	}
	if p.OnDispatch != nil {
		p.OnDispatch(mask)
	}
	cp.dev.Launch(work, mask, q.kernelDoneFn)
}

// kernelDone finishes the in-flight kernel packet: completion (or the
// fault route), then the next packet.
func (q *Queue) kernelDone() {
	if t := q.cp.tel; t != nil {
		if tr := t.tracer; tr != nil {
			tr.Span("kernel", q.cur.Kernel.Name, t.pid, q.ID, q.curDispatchedAt, q.cp.eng.Now())
		}
	}
	onFault := q.cur.OnFault
	completion := q.cur.Completion
	faulted := q.curFaulted
	q.cur = Packet{}
	q.curFaulted = false
	if faulted && onFault != nil {
		onFault()
	} else if completion != nil {
		completion.Complete()
	}
	q.busy = false
	q.pump()
}

// processBarrier pays the packet-processing cost, then evaluates the
// barrier's dependencies.
func (q *Queue) processBarrier() {
	q.cp.eng.After(q.cp.cfg.PacketProcessTime, q.barrierFn)
}

// barrierReady counts the in-flight barrier's outstanding dependencies and
// either fires it or parks the pre-bound dep hook on each pending signal.
func (q *Queue) barrierReady() {
	deps := q.cur.DepSignals
	q.barrierWaits = 0
	for _, s := range deps {
		if !s.Done() {
			q.barrierWaits++
		}
	}
	if q.barrierWaits == 0 {
		q.finishBarrier()
		return
	}
	for _, s := range deps {
		if !s.Done() {
			s.OnDone(q.barrierDepFn)
		}
	}
}

func (q *Queue) barrierDepDone() {
	q.barrierWaits--
	if q.barrierWaits == 0 {
		q.finishBarrier()
	}
}

// finishBarrier consumes the in-flight barrier packet: callback,
// completion, then the next packet.
func (q *Queue) finishBarrier() {
	if t := q.cp.tel; t != nil {
		t.Barriers.Inc()
		if tr := t.tracer; tr != nil {
			tr.Span("hsa", "barrier", t.pid, q.ID, q.curConsumedAt, q.cp.eng.Now())
		}
	}
	callback := q.cur.Callback
	completion := q.cur.Completion
	q.cur = Packet{}
	if callback != nil {
		callback()
	}
	if completion != nil {
		completion.Complete()
	}
	q.busy = false
	q.pump()
}
