package hsa

import (
	"testing"

	"krisp/internal/gpu"
	"krisp/internal/kernels"
	"krisp/internal/sim"
)

func dispatchStack(kernelScoped bool) (*sim.Engine, *Queue) {
	eng := sim.New()
	dev := gpu.NewDevice(eng, gpu.MI50Spec(), nil)
	cfg := DefaultConfig()
	cfg.KernelScoped = kernelScoped
	cp := NewCommandProcessor(eng, dev, cfg)
	return eng, cp.NewQueue()
}

var benchDesc = kernels.Desc{
	Name: "gemm",
	Work: gpu.KernelWork{Workgroups: 220, ThreadsPerWG: 256, WGTime: 10, Tail: 0.5},
}

// BenchmarkDispatch measures one steady-state kernel-scoped dispatch:
// packet consumption, Algorithm 1 through the mask cache, device launch,
// completion signal, recycle. This is the simulator's innermost loop and
// must run at 0 allocs/op once the pools are warm.
func BenchmarkDispatch(b *testing.B) {
	eng, q := dispatchStack(true)
	for i := 0; i < 8; i++ { // warm the signal/exec pools and the ring
		q.SubmitKernelScoped(benchDesc, 22, 0, nil)
		eng.Run()
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		q.SubmitKernelScoped(benchDesc, 22, 0, nil)
		eng.Run()
	}
}

// BenchmarkDispatchPassthrough is the baseline path: no kernel-scoped
// masking, the kernel inherits the stream mask.
func BenchmarkDispatchPassthrough(b *testing.B) {
	eng, q := dispatchStack(false)
	for i := 0; i < 8; i++ {
		q.SubmitKernel(benchDesc, nil)
		eng.Run()
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		q.SubmitKernel(benchDesc, nil)
		eng.Run()
	}
}

// TestDispatchZeroAllocs pins the fast-path property the benchmarks
// report: a warm steady-state dispatch — kernel-scoped or passthrough —
// allocates nothing.
func TestDispatchZeroAllocs(t *testing.T) {
	for _, tc := range []struct {
		name   string
		scoped bool
	}{{"kernel-scoped", true}, {"passthrough", false}} {
		eng, q := dispatchStack(tc.scoped)
		submit := func() {
			if tc.scoped {
				q.SubmitKernelScoped(benchDesc, 22, 0, nil)
			} else {
				q.SubmitKernel(benchDesc, nil)
			}
			eng.Run()
		}
		for i := 0; i < 8; i++ {
			submit()
		}
		if allocs := testing.AllocsPerRun(200, submit); allocs != 0 {
			t.Errorf("%s: %v allocs/op in steady-state dispatch, want 0", tc.name, allocs)
		}
	}
}
