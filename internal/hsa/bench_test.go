package hsa

import (
	"testing"

	"krisp/internal/gpu"
	"krisp/internal/kernels"
	"krisp/internal/sim"
	tele "krisp/internal/telemetry"
)

func dispatchStack(kernelScoped bool) (*sim.Engine, *Queue) {
	eng := sim.New()
	dev := gpu.NewDevice(eng, gpu.MI50Spec(), nil)
	cfg := DefaultConfig()
	cfg.KernelScoped = kernelScoped
	cp := NewCommandProcessor(eng, dev, cfg)
	return eng, cp.NewQueue()
}

// telemetryStack is dispatchStack with metrics enabled on both the device
// and the command processor — the configuration the zero-alloc guard below
// must hold under. No tracer: span tracing records events and is excluded
// from the 0 allocs/op contract by design.
func telemetryStack(kernelScoped bool) (*sim.Engine, *Queue) {
	eng := sim.New()
	hub := tele.NewHub(false)
	dev := gpu.NewDevice(eng, gpu.MI50Spec(), nil)
	dev.SetTelemetry(gpu.NewTelemetry(hub, gpu.MI50, 0))
	cfg := DefaultConfig()
	cfg.KernelScoped = kernelScoped
	cp := NewCommandProcessor(eng, dev, cfg)
	cp.SetTelemetry(NewTelemetry(hub, 0))
	return eng, cp.NewQueue()
}

var benchDesc = kernels.Desc{
	Name: "gemm",
	Work: gpu.KernelWork{Workgroups: 220, ThreadsPerWG: 256, WGTime: 10, Tail: 0.5},
}

// BenchmarkDispatch measures one steady-state kernel-scoped dispatch:
// packet consumption, Algorithm 1 through the mask cache, device launch,
// completion signal, recycle. This is the simulator's innermost loop and
// must run at 0 allocs/op once the pools are warm.
func BenchmarkDispatch(b *testing.B) {
	eng, q := dispatchStack(true)
	for i := 0; i < 8; i++ { // warm the signal/exec pools and the ring
		q.SubmitKernelScoped(benchDesc, 22, 0, nil)
		eng.Run()
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		q.SubmitKernelScoped(benchDesc, 22, 0, nil)
		eng.Run()
	}
}

// BenchmarkDispatchPassthrough is the baseline path: no kernel-scoped
// masking, the kernel inherits the stream mask.
func BenchmarkDispatchPassthrough(b *testing.B) {
	eng, q := dispatchStack(false)
	for i := 0; i < 8; i++ {
		q.SubmitKernel(benchDesc, nil)
		eng.Run()
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		q.SubmitKernel(benchDesc, nil)
		eng.Run()
	}
}

// BenchmarkDispatchWithTelemetry is BenchmarkDispatch with device and
// processor metrics enabled: queue depth, dispatch counters, wait
// histograms, occupancy gauges. The number to watch is allocs/op — it must
// stay 0 (TestDispatchZeroAllocs asserts it), so future instrumentation
// cannot regress the fast path.
func BenchmarkDispatchWithTelemetry(b *testing.B) {
	eng, q := telemetryStack(true)
	for i := 0; i < 8; i++ {
		q.SubmitKernelScoped(benchDesc, 22, 0, nil)
		eng.Run()
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		q.SubmitKernelScoped(benchDesc, 22, 0, nil)
		eng.Run()
	}
}

// TestDispatchZeroAllocs pins the fast-path property the benchmarks
// report: a warm steady-state dispatch — kernel-scoped or passthrough,
// with or without telemetry — allocates nothing.
func TestDispatchZeroAllocs(t *testing.T) {
	for _, tc := range []struct {
		name      string
		scoped    bool
		telemetry bool
	}{
		{"kernel-scoped", true, false},
		{"passthrough", false, false},
		{"kernel-scoped+telemetry", true, true},
		{"passthrough+telemetry", false, true},
	} {
		var eng *sim.Engine
		var q *Queue
		if tc.telemetry {
			eng, q = telemetryStack(tc.scoped)
		} else {
			eng, q = dispatchStack(tc.scoped)
		}
		submit := func() {
			if tc.scoped {
				q.SubmitKernelScoped(benchDesc, 22, 0, nil)
			} else {
				q.SubmitKernel(benchDesc, nil)
			}
			eng.Run()
		}
		for i := 0; i < 8; i++ {
			submit()
		}
		if allocs := testing.AllocsPerRun(200, submit); allocs != 0 {
			t.Errorf("%s: %v allocs/op in steady-state dispatch, want 0", tc.name, allocs)
		}
	}
}
