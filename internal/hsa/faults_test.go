package hsa

import (
	"testing"

	"krisp/internal/gpu"
	"krisp/internal/sim"
)

// TestSignalDoubleCompletionGuard asserts the defensive behaviour injected
// faults rely on: completing a signal past zero is counted as an overrun,
// never fires waiters twice, and never pushes the value negative (which
// would corrupt barrier dependency counts).
func TestSignalDoubleCompletionGuard(t *testing.T) {
	s := NewSignal(1)
	fired := 0
	s.OnDone(func() { fired++ })
	s.Complete()
	s.Complete()
	s.Complete()
	if fired != 1 {
		t.Fatalf("waiters fired %d times, want 1", fired)
	}
	if s.Overruns() != 2 {
		t.Fatalf("overruns = %d, want 2", s.Overruns())
	}
	if s.Value() != 0 {
		t.Fatalf("value = %d, want 0 (never negative)", s.Value())
	}
	// A signal that over-completed still behaves as done for barriers.
	lateFired := false
	s.OnDone(func() { lateFired = true })
	if !lateFired {
		t.Fatal("late waiter on over-completed signal did not fire")
	}
}

// TestSignalReentrantComplete guards against a waiter completing the same
// signal again from inside its own callback.
func TestSignalReentrantComplete(t *testing.T) {
	s := NewSignal(1)
	fired := 0
	s.OnDone(func() {
		fired++
		s.Complete() // malicious/faulty re-entry
	})
	s.Complete()
	if fired != 1 {
		t.Fatalf("waiters fired %d times, want 1", fired)
	}
	if s.Overruns() != 1 {
		t.Fatalf("overruns = %d, want 1", s.Overruns())
	}
}

func TestQueueStallDelaysConsumption(t *testing.T) {
	eng, _, cp := newStack(false)
	q := cp.NewQueue()

	q.StallFor(500)
	if !q.Stalled() {
		t.Fatal("queue not stalled")
	}
	var doneAt sim.Time
	q.SubmitKernel(oneWave(), func() { doneAt = eng.Now() })
	eng.Run()
	if doneAt < 500 {
		t.Fatalf("kernel completed at %v, inside the stall window", doneAt)
	}
}

func TestQueueStallDoesNotAbortInFlightPacket(t *testing.T) {
	eng, _, cp := newStack(false)
	q := cp.NewQueue()
	var first, second sim.Time
	q.SubmitKernel(oneWave(), func() { first = eng.Now() })
	q.SubmitKernel(oneWave(), func() { second = eng.Now() })

	// Stall mid-execution of the first kernel: it finishes normally, the
	// second is held until the stall expires.
	eng.RunUntil(8)
	q.StallFor(1000)
	eng.Run()
	if first >= 1000 {
		t.Errorf("in-flight kernel completed at %v, should finish during the stall", first)
	}
	if second < 1008 {
		t.Errorf("second kernel completed at %v, before the stall expired", second)
	}
}

func TestResetStallRecoversHungQueue(t *testing.T) {
	eng, _, cp := newStack(false)
	q := cp.NewQueue()
	q.StallFor(1e12) // effectively hung
	var doneAt sim.Time
	q.SubmitKernel(oneWave(), func() { doneAt = eng.Now() })

	eng.RunUntil(100)
	if !q.ResetStall() {
		t.Fatal("ResetStall reported no stall")
	}
	eng.RunUntil(1e6)
	if doneAt == 0 || doneAt > 1000 {
		t.Fatalf("kernel completed at %v, want shortly after the reset at 100", doneAt)
	}
	if eng.Pending() != 0 {
		t.Errorf("%d events still pending after reset drain", eng.Pending())
	}
}

// stubHook scripts the FaultHook for deterministic unit tests.
type stubHook struct {
	ioctlFail  bool
	ioctlExtra sim.Duration
	stretch    float64
	kernelFail bool
	remasks    int
}

func (s *stubHook) IOCTLOutcome() (bool, sim.Duration) { return s.ioctlFail, s.ioctlExtra }
func (s *stubHook) KernelOutcome() (float64, bool)     { return s.stretch, s.kernelFail }
func (s *stubHook) NoteHealthRemask()                  { s.remasks++ }

func TestSetCUMaskCheckedFailureLeavesMaskUnchanged(t *testing.T) {
	eng, _, cp := newStack(false)
	q := cp.NewQueue()
	hook := &stubHook{ioctlFail: true, stretch: 1}
	cp.SetFaults(hook)

	before := q.CUMask()
	var got error
	called := false
	q.SetCUMaskChecked(gpu.RangeMask(gpu.MI50, 0, 15), func(err error) {
		called = true
		got = err
	})
	eng.Run()
	if !called {
		t.Fatal("onApplied never ran")
	}
	if got != ErrIOCTLFault {
		t.Fatalf("err = %v, want ErrIOCTLFault", got)
	}
	if !q.CUMask().Equal(before) {
		t.Error("failed IOCTL changed the queue mask")
	}
}

func TestIOCTLLatencySpikeSerializes(t *testing.T) {
	eng, _, cp := newStack(false)
	q := cp.NewQueue()
	hook := &stubHook{ioctlExtra: 400, stretch: 1}
	cp.SetFaults(hook)

	var firstAt, secondAt sim.Time
	q.SetCUMaskChecked(gpu.RangeMask(gpu.MI50, 0, 15), func(error) { firstAt = eng.Now() })
	q.SetCUMaskChecked(gpu.RangeMask(gpu.MI50, 0, 30), func(error) { secondAt = eng.Now() })
	eng.Run()
	// Default IOCTL latency is 20us; the spike adds 400us to each, and the
	// second serializes behind the first.
	if firstAt != 420 {
		t.Errorf("first IOCTL applied at %v, want 420", firstAt)
	}
	if secondAt != 840 {
		t.Errorf("second IOCTL applied at %v, want 840 (serialized)", secondAt)
	}
}

func TestTransientKernelFailureRoutesToOnFault(t *testing.T) {
	eng, _, cp := newStack(false)
	q := cp.NewQueue()
	hook := &stubHook{kernelFail: true, stretch: 1}
	cp.SetFaults(hook)

	sig := NewSignal(1)
	faulted := false
	q.Submit(Packet{
		Type:       KernelDispatch,
		Kernel:     oneWave(),
		Completion: sig,
		OnFault:    func() { faulted = true },
	})
	eng.Run()
	if !faulted {
		t.Fatal("OnFault never ran")
	}
	if sig.Done() {
		t.Fatal("completion signal completed despite the failure")
	}
}

func TestTransientFailureWithoutHandlerIsSwallowed(t *testing.T) {
	eng, _, cp := newStack(false)
	q := cp.NewQueue()
	cp.SetFaults(&stubHook{kernelFail: true, stretch: 1})

	done := false
	q.SubmitKernel(oneWave(), func() { done = true })
	eng.Run()
	if !done {
		t.Fatal("unhandled transient failure deadlocked the queue")
	}
}

func TestStragglerStretchSlowsKernel(t *testing.T) {
	runOne := func(stretch float64) sim.Time {
		eng, _, cp := newStack(false)
		q := cp.NewQueue()
		cp.SetFaults(&stubHook{stretch: stretch})
		var doneAt sim.Time
		q.SubmitKernel(oneWave(), func() { doneAt = eng.Now() })
		eng.Run()
		return doneAt
	}
	base := runOne(1)
	slow := runOne(4)
	if slow <= base {
		t.Fatalf("straggler completed at %v, not after baseline %v", slow, base)
	}
}

func TestDispatchRemasksAroundDeadCUs(t *testing.T) {
	eng, dev, cp := newStack(false)
	q := cp.NewQueue()
	hook := &stubHook{stretch: 1}
	cp.SetFaults(hook)

	// Pin the stream to SE0 then kill half of it.
	applied := false
	q.SetCUMask(gpu.RangeMask(gpu.MI50, 0, 4), func() { applied = true })
	eng.Run()
	if !applied {
		t.Fatal("mask never applied")
	}
	for cu := 0; cu < 2; cu++ {
		dev.KillCU(cu)
	}
	var granted gpu.CUMask
	q.Submit(Packet{
		Type:       KernelDispatch,
		Kernel:     oneWave(),
		Completion: NewSignal(1),
		OnDispatch: func(m gpu.CUMask) { granted = m },
	})
	eng.Run()
	if granted.Has(0) || granted.Has(1) {
		t.Errorf("dispatch mask includes dead CUs: %v", granted)
	}
	if hook.remasks != 1 {
		t.Errorf("health remasks = %d, want 1", hook.remasks)
	}
}
