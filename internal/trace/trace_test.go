package trace

import (
	"bytes"
	"encoding/csv"
	"strings"
	"testing"
)

func TestTraceAddAndRecords(t *testing.T) {
	var tr Trace
	tr.Add(Record{Seq: 0, Kernel: "a", Workgroups: 10, MinCU: 12, AllocatedCUs: 12, Start: 0, End: 5})
	tr.Add(Record{Seq: 1, Kernel: "b", Workgroups: 20, MinCU: 60, AllocatedCUs: 48, Start: 5, End: 9})
	if tr.Len() != 2 {
		t.Fatalf("Len = %d, want 2", tr.Len())
	}
	if got := tr.Records()[1].Duration(); got != 4 {
		t.Errorf("Duration = %v, want 4", got)
	}
}

func TestWriteCSVRoundTrip(t *testing.T) {
	var tr Trace
	tr.Add(Record{Seq: 0, Kernel: "gemm", Workgroups: 120, MinCU: 12, AllocatedCUs: 12, Attempt: 2, Queue: 3, Device: 1, Start: 1.5, End: 7.25})
	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatalf("parsing CSV: %v", err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows, want 2 (header + record)", len(rows))
	}
	if rows[0][0] != "seq" || rows[0][3] != "min_cu" || rows[0][5] != "attempt" ||
		rows[0][6] != "queue" || rows[0][7] != "device" {
		t.Errorf("header = %v", rows[0])
	}
	if rows[1][1] != "gemm" || rows[1][2] != "120" || rows[1][5] != "2" ||
		rows[1][6] != "3" || rows[1][7] != "1" {
		t.Errorf("record = %v", rows[1])
	}
	if !strings.HasPrefix(rows[1][8], "1.5") {
		t.Errorf("start = %q", rows[1][8])
	}
}

func TestEmptyTraceCSV(t *testing.T) {
	var tr Trace
	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatalf("WriteCSV on empty trace: %v", err)
	}
	if lines := strings.Count(buf.String(), "\n"); lines != 1 {
		t.Errorf("empty trace CSV has %d lines, want 1 (header only)", lines)
	}
}
