// Package trace records per-kernel execution events — the data behind the
// paper's kernel-trace figures (Fig. 4) — and exports them as CSV.
package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"krisp/internal/sim"
)

// Record is one kernel execution observed by the runtime.
type Record struct {
	// Seq is the kernel's position in the inference pass.
	Seq int
	// Kernel is the kernel family/symbol name.
	Kernel string
	// Workgroups is the dispatch grid size.
	Workgroups int
	// MinCU is the profiled minimum required CUs (0 when not right-sized).
	MinCU int
	// AllocatedCUs is the number of CUs in the granted resource mask.
	AllocatedCUs int
	// Attempt is the dispatch attempt that finally completed: 0 for a
	// first-try success, >0 when the hardened runtime relaunched the kernel
	// after transient failures. One record is emitted per seq regardless of
	// how many attempts it took.
	Attempt int
	// Queue is the HSA queue ID the kernel was submitted on, and Device the
	// GPU index it executed on — the attribution multi-GPU runs need when
	// several streams share one trace.
	Queue  int
	Device int
	// Start and End bound the kernel's execution in virtual time.
	Start, End sim.Time
}

// Duration returns the kernel's execution time.
func (r Record) Duration() sim.Duration { return r.End - r.Start }

// Trace is an append-only sequence of kernel records.
type Trace struct {
	records []Record
}

// Add appends a record.
func (t *Trace) Add(r Record) { t.records = append(t.records, r) }

// Len returns the number of records.
func (t *Trace) Len() int { return len(t.records) }

// Records returns the recorded events (shared slice; do not mutate).
func (t *Trace) Records() []Record { return t.records }

// WriteCSV emits the trace with a header row.
func (t *Trace) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"seq", "kernel", "workgroups", "min_cu", "allocated_cus", "attempt", "queue", "device", "start_us", "end_us"}); err != nil {
		return fmt.Errorf("trace: writing header: %w", err)
	}
	for _, r := range t.records {
		row := []string{
			strconv.Itoa(r.Seq),
			r.Kernel,
			strconv.Itoa(r.Workgroups),
			strconv.Itoa(r.MinCU),
			strconv.Itoa(r.AllocatedCUs),
			strconv.Itoa(r.Attempt),
			strconv.Itoa(r.Queue),
			strconv.Itoa(r.Device),
			strconv.FormatFloat(float64(r.Start), 'f', 3, 64),
			strconv.FormatFloat(float64(r.End), 'f', 3, 64),
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("trace: writing record %d: %w", r.Seq, err)
		}
	}
	cw.Flush()
	return cw.Error()
}
