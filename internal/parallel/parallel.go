// Package parallel provides a small bounded worker pool for fanning out
// independent jobs — grid cells of a benchmark sweep, per-seed simulation
// runs — while keeping results in deterministic input order.
//
// The pool is deliberately minimal: jobs are addressed by index, results
// land at the same index, and the first failure cancels the remainder.
// Because each KRISP simulation owns its engine and RNG, running cells
// concurrently and reading results in index order produces output that is
// byte-identical to a serial run (see internal/bench's determinism test).
package parallel

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// PanicError is returned by Map when a job panics. It carries the job
// index, the recovered value, and the goroutine stack at the panic site.
type PanicError struct {
	Index int
	Value any
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("parallel: job %d panicked: %v\n%s", e.Index, e.Value, e.Stack)
}

// Map runs fn(ctx, i) for i in [0, n) on at most workers goroutines and
// returns the results in index order: out[i] is fn's result for job i,
// regardless of which worker ran it or when it finished.
//
// workers <= 0 selects runtime.GOMAXPROCS(0). At most n workers are
// started. Jobs are dispatched in index order via a shared atomic counter,
// so with workers == 1 the jobs run exactly in sequence.
//
// The first failure — an fn error, a panic (wrapped in *PanicError), or
// ctx becoming done — cancels the context passed to fn, and Map returns
// after all started jobs finish. When several jobs fail, the error of the
// lowest-index failed job is returned, preferring real failures over
// context.Canceled noise from the cancellation cascade; a nil result slice
// accompanies any error.
func Map[T any](ctx context.Context, workers, n int, fn func(ctx context.Context, i int) (T, error)) ([]T, error) {
	if n <= 0 {
		return []T{}, ctx.Err()
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	out := make([]T, n)
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup

	run := func(i int) (err error) {
		defer func() {
			if r := recover(); r != nil {
				err = &PanicError{Index: i, Value: r, Stack: debug.Stack()}
			}
		}()
		out[i], err = fn(ctx, i)
		return err
	}

	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := ctx.Err(); err != nil {
					errs[i] = err
					continue // keep draining so every slot records an error
				}
				if err := run(i); err != nil {
					errs[i] = err
					cancel()
				}
			}
		}()
	}
	wg.Wait()

	// Pick the lowest-index real failure; fall back to the lowest-index
	// context error only if nothing failed on its own.
	var ctxErr error
	for i, err := range errs {
		if err == nil {
			continue
		}
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			if ctxErr == nil {
				ctxErr = err
			}
			continue
		}
		return nil, fmt.Errorf("parallel: job %d: %w", i, err)
	}
	if ctxErr != nil {
		return nil, ctxErr
	}
	return out, nil
}

// Each is Map without results: it runs fn(ctx, i) for i in [0, n) on at
// most workers goroutines, with the same dispatch order, cancellation, and
// panic-capture semantics. The cluster fleet uses it to advance
// share-nothing node simulations in lockstep — side effects land in each
// job's own state, so no result slice is needed.
func Each(ctx context.Context, workers, n int, fn func(ctx context.Context, i int) error) error {
	_, err := Map(ctx, workers, n, func(ctx context.Context, i int) (struct{}, error) {
		return struct{}{}, fn(ctx, i)
	})
	return err
}
