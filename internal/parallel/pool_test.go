package parallel

import (
	"sync/atomic"
	"testing"
)

func TestPoolRunsEveryJobOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		p := NewPool(workers)
		for round := 0; round < 50; round++ {
			n := round%7 + 1
			var hits [8]atomic.Int32
			p.Run(n, func(i int) { hits[i].Add(1) })
			for i := 0; i < n; i++ {
				if got := hits[i].Load(); got != 1 {
					t.Fatalf("workers=%d round=%d job %d ran %d times", workers, round, i, got)
				}
			}
			for i := n; i < len(hits); i++ {
				if hits[i].Load() != 0 {
					t.Fatalf("workers=%d job %d beyond n ran", workers, i)
				}
			}
		}
		p.Close()
	}
}

func TestPoolSerialOrder(t *testing.T) {
	p := NewPool(1)
	defer p.Close()
	var order []int
	p.Run(16, func(i int) { order = append(order, i) })
	for i, got := range order {
		if got != i {
			t.Fatalf("serial pool ran job %d at position %d", got, i)
		}
	}
}

func TestPoolZeroAndNegativeN(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	p.Run(0, func(i int) { t.Error("job ran for n=0") })
	p.Run(-3, func(i int) { t.Error("job ran for n<0") })
}

func TestPoolMoreJobsThanWorkers(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	var sum atomic.Int64
	p.Run(1000, func(i int) { sum.Add(int64(i)) })
	if got := sum.Load(); got != 499500 {
		t.Fatalf("sum = %d, want 499500", got)
	}
}

func TestPoolPanicSurfacesAndPoolSurvives(t *testing.T) {
	for _, workers := range []int{1, 4} {
		p := NewPool(workers)
		func() {
			defer func() {
				v := recover()
				pe, ok := v.(*PanicError)
				if !ok {
					t.Fatalf("workers=%d: recovered %T (%v), want *PanicError", workers, v, v)
				}
				if pe.Value != "boom" {
					t.Fatalf("workers=%d: panic value = %v", workers, pe.Value)
				}
			}()
			p.Run(8, func(i int) {
				if i == 3 {
					panic("boom")
				}
			})
			t.Fatalf("workers=%d: Run returned without re-panicking", workers)
		}()
		// The pool must survive a panicked round.
		var ran atomic.Int32
		p.Run(4, func(i int) { ran.Add(1) })
		if ran.Load() != 4 {
			t.Fatalf("workers=%d: pool dead after panic round", workers)
		}
		p.Close()
	}
}

func TestPoolRunAfterClosePanics(t *testing.T) {
	p := NewPool(2)
	p.Close()
	defer func() {
		if recover() == nil {
			t.Error("Run after Close did not panic")
		}
	}()
	p.Run(1, func(i int) {})
}

// BenchmarkPoolRound measures the per-round overhead of a persistent pool
// against tiny jobs — the shape of a fleet settle round where most nodes
// are already settled.
func BenchmarkPoolRound(b *testing.B) {
	p := NewPool(4)
	defer p.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Run(16, func(int) {})
	}
}
