package parallel_test

import (
	"context"
	"testing"

	"krisp/internal/models"
	"krisp/internal/parallel"
	"krisp/internal/policies"
	"krisp/internal/server"
	"krisp/internal/telemetry"
)

// TestConcurrentSimulationsShareRegistry fans telemetry-enabled simulation
// cells across the worker pool, all writing one shared registry and tracer
// — the way bench grid experiments run with Options.Telemetry set. Under
// -race this exercises every instrumented layer (gpu, hsa, core, server)
// writing handles concurrently.
func TestConcurrentSimulationsShareRegistry(t *testing.T) {
	m, ok := models.ByName("squeezenet")
	if !ok {
		t.Fatal("squeezenet missing")
	}
	hub := telemetry.NewHub(true)
	const cells = 8
	_, err := parallel.Map(context.Background(), 8, cells,
		func(ctx context.Context, i int) (int, error) {
			res := server.Run(server.Config{
				Policy:       policies.KRISPI,
				Workers:      []server.WorkerSpec{{Model: m, Batch: 32}},
				Seed:         int64(i),
				MeasureScale: 0.25,
				Telemetry:    hub,
			})
			return res.TotalRequests(), nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if v := hub.Registry().Counter("krisp_hsa_dispatches_total{gpu=\"0\"}", "").Value(); v == 0 {
		t.Error("no dispatches recorded")
	}
	if hub.Trace().CountCat("kernel") == 0 {
		t.Error("no kernel spans recorded")
	}
}
