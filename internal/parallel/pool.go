package parallel

import (
	"runtime"
	"runtime/debug"
	"sync/atomic"
)

// Pool is a persistent fixed-size worker pool for repeated index fan-outs.
// Map/Each spin up and tear down goroutines per call, which is fine for a
// benchmark grid but not for a simulation scheduler that fans out thousands
// of times per run: goroutine startup and the final join dominate when each
// round's work is tens of microseconds. A Pool starts its workers once;
// each Run hands them one round of jobs through a channel and a pair of
// atomic counters, so the steady-state cost of a round is one channel
// operation per woken worker and no goroutine churn.
//
// Rounds are synchronous: Run returns only after every job of the round has
// finished, and the caller must not issue concurrent Runs. Jobs are
// dispatched in index order via an atomic counter (the same discipline as
// Map), so a Pool with one worker executes jobs exactly in sequence — the
// zero-overhead serial mode the fleet's determinism oracle compares
// against.
//
// A panic in a job is captured and re-raised as *PanicError from Run after
// the round winds down (remaining jobs are abandoned, in-flight jobs
// finish). The pool itself survives and can run further rounds.
type Pool struct {
	workers int
	rounds  []chan *poolRound // one buffered channel per background worker
	cur     poolRound
	closed  bool
}

// poolRound is one fan-out. Jobs [0,n) are claimed through next; left
// counts participating workers still inside the round, and the last one
// out closes done.
type poolRound struct {
	fn    func(i int)
	n     int
	next  atomic.Int64
	left  atomic.Int64
	panic atomic.Pointer[PanicError]
	done  chan struct{}
}

// NewPool starts a pool of the given size. workers <= 0 selects
// runtime.GOMAXPROCS(0). A pool of one worker starts no goroutines at all —
// Run executes jobs inline on the caller.
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	p := &Pool{workers: workers}
	if workers == 1 {
		return p
	}
	p.rounds = make([]chan *poolRound, workers-1)
	for w := range p.rounds {
		ch := make(chan *poolRound, 1)
		p.rounds[w] = ch
		go poolWorker(ch)
	}
	return p
}

// Workers returns the pool size (background workers plus the caller).
func (p *Pool) Workers() int { return p.workers }

func poolWorker(rounds <-chan *poolRound) {
	for r := range rounds {
		runRound(r)
	}
}

// runRound claims and executes jobs until the round is exhausted, then
// checks out; the last participant to leave closes done. A participant's
// final access to the round is its left.Add(-1) unless it is the closer,
// so once done is closed the round memory is free for reuse.
func runRound(r *poolRound) {
	for {
		i := int(r.next.Add(1)) - 1
		if i >= r.n {
			break
		}
		runJob(r, i)
	}
	if r.left.Add(-1) == 0 && r.done != nil {
		close(r.done)
	}
}

func runJob(r *poolRound, i int) {
	defer func() {
		if v := recover(); v != nil {
			pe := &PanicError{Index: i, Value: v, Stack: debug.Stack()}
			r.panic.CompareAndSwap(nil, pe)
			// Abandon the round's unclaimed jobs so the panic surfaces
			// promptly; jobs already claimed by other workers still finish.
			r.next.Store(int64(r.n))
		}
	}()
	r.fn(i)
}

// Run executes fn(i) for i in [0, n) across the pool's workers and returns
// when all have finished. The caller participates as a worker, so a round
// needs no handoff before the first job starts. If any job panicked, the
// first captured panic is re-raised on the caller as *PanicError. Not safe
// for concurrent use.
func (p *Pool) Run(n int, fn func(i int)) {
	if p.closed {
		panic("parallel: Run on closed Pool")
	}
	if n <= 0 {
		return
	}
	r := &p.cur
	*r = poolRound{fn: fn, n: n}
	wake := p.workers - 1
	if wake > n-1 {
		wake = n - 1
	}
	r.left.Store(int64(wake + 1))
	if wake > 0 {
		r.done = make(chan struct{})
		for w := 0; w < wake; w++ {
			p.rounds[w] <- r
		}
	}
	runRound(r)
	if r.done != nil {
		<-r.done
	}
	r.fn = nil
	if pe := r.panic.Load(); pe != nil {
		panic(pe)
	}
}

// Close stops the background workers. The pool must be idle; Run after
// Close panics.
func (p *Pool) Close() {
	if p.closed {
		return
	}
	p.closed = true
	for _, ch := range p.rounds {
		close(ch)
	}
}
