package parallel

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// TestMapOrdersResultsUnderRandomFinishOrder checks that results land at
// their job's index even when jobs finish in a scrambled order.
func TestMapOrdersResultsUnderRandomFinishOrder(t *testing.T) {
	const n = 64
	rng := rand.New(rand.NewSource(7))
	delays := make([]time.Duration, n)
	for i := range delays {
		delays[i] = time.Duration(rng.Intn(3)) * time.Millisecond
	}
	out, err := Map(context.Background(), 8, n, func(_ context.Context, i int) (int, error) {
		time.Sleep(delays[i])
		return i * i, nil
	})
	if err != nil {
		t.Fatalf("Map: %v", err)
	}
	if len(out) != n {
		t.Fatalf("got %d results, want %d", len(out), n)
	}
	for i, v := range out {
		if v != i*i {
			t.Errorf("out[%d] = %d, want %d", i, v, i*i)
		}
	}
}

// TestMapMatchesSerial checks that any worker count produces the same
// result slice as workers=1.
func TestMapMatchesSerial(t *testing.T) {
	const n = 40
	fn := func(_ context.Context, i int) (string, error) {
		return fmt.Sprintf("cell-%03d", i), nil
	}
	serial, err := Map(context.Background(), 1, n, fn)
	if err != nil {
		t.Fatalf("serial Map: %v", err)
	}
	for _, workers := range []int{2, 4, 16, 100} {
		par, err := Map(context.Background(), workers, n, fn)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range serial {
			if par[i] != serial[i] {
				t.Fatalf("workers=%d: out[%d] = %q, want %q", workers, i, par[i], serial[i])
			}
		}
	}
}

// TestMapErrorCancelsRemainingJobs checks that a failing job stops the
// grid: jobs dispatched after the failure observe a canceled context and
// are not run.
func TestMapErrorCancelsRemainingJobs(t *testing.T) {
	const n = 200
	boom := errors.New("boom")
	var ran atomic.Int64
	_, err := Map(context.Background(), 2, n, func(ctx context.Context, i int) (int, error) {
		ran.Add(1)
		if i == 3 {
			return 0, boom
		}
		time.Sleep(100 * time.Microsecond)
		return i, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped %v", err, boom)
	}
	if !strings.Contains(err.Error(), "job 3") {
		t.Errorf("err = %q, want it to name job 3", err)
	}
	if got := ran.Load(); got >= n {
		t.Errorf("all %d jobs ran despite early failure", got)
	}
}

// TestMapContextCancellationMidGrid cancels the caller's context while the
// grid is in flight and checks Map returns the context error promptly
// without running every job.
func TestMapContextCancellationMidGrid(t *testing.T) {
	const n = 1000
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int64
	_, err := Map(ctx, 4, n, func(ctx context.Context, i int) (int, error) {
		if ran.Add(1) == 10 {
			cancel()
		}
		select {
		case <-ctx.Done():
			return 0, ctx.Err()
		case <-time.After(time.Millisecond):
			return i, nil
		}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if got := ran.Load(); got >= n {
		t.Errorf("all %d jobs ran despite cancellation", got)
	}
}

// TestMapPanicSurfacesAsError checks that a panicking job is converted to
// a *PanicError naming the job, rather than crashing the process.
func TestMapPanicSurfacesAsError(t *testing.T) {
	_, err := Map(context.Background(), 4, 32, func(_ context.Context, i int) (int, error) {
		if i == 5 {
			panic("kaboom")
		}
		return i, nil
	})
	if err == nil {
		t.Fatal("Map returned nil error for panicking job")
	}
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %T %v, want *PanicError", err, err)
	}
	if pe.Index != 5 {
		t.Errorf("PanicError.Index = %d, want 5", pe.Index)
	}
	if pe.Value != "kaboom" {
		t.Errorf("PanicError.Value = %v, want kaboom", pe.Value)
	}
	if len(pe.Stack) == 0 {
		t.Error("PanicError.Stack is empty")
	}
}

// TestMapLowestIndexErrorWins checks the deterministic error selection:
// when several jobs fail, the lowest-index real failure is reported.
func TestMapLowestIndexErrorWins(t *testing.T) {
	// Serial dispatch with one worker makes both failures deterministic.
	_, err := Map(context.Background(), 1, 10, func(_ context.Context, i int) (int, error) {
		if i == 2 || i == 7 {
			return 0, fmt.Errorf("fail-%d", i)
		}
		return i, nil
	})
	if err == nil || !strings.Contains(err.Error(), "fail-2") {
		t.Fatalf("err = %v, want the job-2 failure", err)
	}
}

// BenchmarkMapDispatch measures the pool's per-job dispatch overhead with
// a trivial job body, the floor under every grid fan-out.
func BenchmarkMapDispatch(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Map(context.Background(), 4, 64, func(_ context.Context, j int) (int, error) {
			return j, nil
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// TestMapDefaultsAndEdgeCases covers workers<=0 and n<=0.
func TestMapDefaultsAndEdgeCases(t *testing.T) {
	out, err := Map(context.Background(), 0, 4, func(_ context.Context, i int) (int, error) {
		return i, nil
	})
	if err != nil || len(out) != 4 {
		t.Fatalf("workers=0: out=%v err=%v", out, err)
	}
	out, err = Map(context.Background(), 4, 0, func(_ context.Context, i int) (int, error) {
		t.Error("fn called for n=0")
		return 0, nil
	})
	if err != nil || len(out) != 0 {
		t.Fatalf("n=0: out=%v err=%v", out, err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Map(ctx, 4, 0, func(_ context.Context, i int) (int, error) { return 0, nil }); !errors.Is(err, context.Canceled) {
		t.Fatalf("n=0 with canceled ctx: err = %v, want context.Canceled", err)
	}
}

func TestEachRunsAllJobs(t *testing.T) {
	var hits [50]atomic.Int32
	err := Each(context.Background(), 4, len(hits), func(_ context.Context, i int) error {
		hits[i].Add(1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range hits {
		if got := hits[i].Load(); got != 1 {
			t.Fatalf("job %d ran %d times", i, got)
		}
	}
}

func TestEachPropagatesError(t *testing.T) {
	boom := errors.New("boom")
	err := Each(context.Background(), 2, 10, func(_ context.Context, i int) error {
		if i == 3 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
}

func TestEachCapturesPanic(t *testing.T) {
	err := Each(context.Background(), 2, 4, func(_ context.Context, i int) error {
		if i == 2 {
			panic("kaboom")
		}
		return nil
	})
	var pe *PanicError
	if !errors.As(err, &pe) || pe.Index != 2 {
		t.Fatalf("err = %v, want PanicError for job 2", err)
	}
}
