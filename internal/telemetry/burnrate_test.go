package telemetry

import "testing"

// goldenCfg is sized so the transition arithmetic below is hand-checkable:
// 10ms rollups, a 2-bucket fast window, a 6-bucket slow window, a 10%
// error budget, and a 30ms de-escalation hold.
func goldenCfg() BurnConfig {
	return BurnConfig{
		Objective:    0.9,
		WidthUs:      10_000,
		FastWindowUs: 20_000,
		SlowWindowUs: 60_000,
		PageBurn:     5,
		WarnBurn:     2,
		ClearHoldUs:  30_000,
		MinCount:     1,
	}
}

// TestBurnGoldenWindows drives one request per millisecond — all good
// before t=60ms, all bad from 60ms to 90ms, all good after — and pins the
// exact advance at which each transition fires.
//
// Hand check (budget 0.1, one request per bucket-millisecond):
//
//	advance(70ms): fast = [50,70)ms = 10 good + 10 bad -> burn 5;
//	               slow = [10,70)ms = 50 good + 10 bad -> burn 1.67 < warn
//	               -> still ok (the fast cliff alone must not page)
//	advance(80ms): fast = 20 bad/20 -> burn 10; slow = 20 bad/60 -> 3.33
//	               -> warning (both windows >= 2, slow < 5)
//	advance(90ms): slow = 30 bad/60 -> burn 5 -> page
//
// Recovery (all good from 90ms): slow stays at burn 5 through advance(100ms)
// (target still page), drops the target to ok at 110ms; the 30ms hold then
// steps page->warning at 140ms and warning->ok at 170ms.
func TestBurnGoldenWindows(t *testing.T) {
	m := NewBurnMonitor("golden", goldenCfg())

	want := map[int64]AlertState{
		10_000: AlertOK, 60_000: AlertOK, 70_000: AlertOK,
		80_000: AlertWarning, 90_000: AlertPage,
		100_000: AlertPage, 110_000: AlertPage, 130_000: AlertPage,
		140_000: AlertWarning, 160_000: AlertWarning,
		170_000: AlertOK,
	}
	for ts := int64(0); ts < 170_000; ts += 1000 {
		bad := ts >= 60_000 && ts < 90_000
		m.Observe(ts, bad)
		if next := ts + 1000; next%10_000 == 0 {
			m.Advance(next)
			if exp, ok := want[next]; ok && m.State() != exp {
				t.Fatalf("at %dus: state %v, want %v (fast %.2f, slow %.2f)",
					next, m.State(), exp, m.Status().BurnFast, m.Status().BurnSlow)
			}
		}
	}
	// ok -> warning -> page -> warning -> ok.
	if got := m.Transitions(); got != 4 {
		t.Fatalf("transitions = %d, want 4", got)
	}
	st := m.Status()
	if st.Total != 170 || st.Bad != 30 {
		t.Fatalf("status totals = %d/%d, want 170/30", st.Bad, st.Total)
	}
}

// TestBurnHysteresisNoFlapping: once the monitor warns, an oscillating
// signal whose clean phases are shorter than ClearHoldUs must never
// de-escalate — each clean bucket resets nothing, each hot bucket resets
// the hold. Exactly one transition over the whole run.
func TestBurnHysteresisNoFlapping(t *testing.T) {
	m := NewBurnMonitor("flap", BurnConfig{
		Objective:    0.9,
		WidthUs:      10_000,
		FastWindowUs: 10_000, // single-bucket fast window: maximally twitchy
		SlowWindowUs: 40_000,
		PageBurn:     10,
		WarnBurn:     2,
		ClearHoldUs:  40_000, // longer than the 20ms oscillation period
		MinCount:     1,
	})

	// After a clean 40ms warm-up (so the slow window starts with history),
	// alternate all-bad and all-clean 10ms buckets: the fast burn swings
	// 10 -> 0 -> 10 while the slow window holds near 5.
	warnedAt := int64(-1)
	for ts := int64(0); ts < 400_000; ts += 1000 {
		bad := ts >= 40_000 && ((ts-40_000)/10_000)%2 == 0
		m.Observe(ts, bad)
		if next := ts + 1000; next%10_000 == 0 {
			m.Advance(next)
			if m.State() == AlertWarning && warnedAt < 0 {
				warnedAt = next
			}
			if warnedAt >= 0 && m.State() != AlertWarning {
				t.Fatalf("at %dus: state %v after warning at %dus — flapped", next, m.State(), warnedAt)
			}
		}
	}
	if warnedAt < 0 {
		t.Fatal("monitor never reached warning")
	}
	if got := m.Transitions(); got != 1 {
		t.Fatalf("transitions = %d, want exactly 1 (no flapping)", got)
	}
}

// TestBurnMinCountGatesEscalation: a single early failure on an otherwise
// idle fleet must not page.
func TestBurnMinCountGatesEscalation(t *testing.T) {
	cfg := goldenCfg()
	cfg.MinCount = 10
	m := NewBurnMonitor("quiet", cfg)
	m.Observe(1000, true)
	m.Advance(10_000)
	if m.State() != AlertOK {
		t.Fatalf("one bad request below MinCount paged: %v", m.State())
	}
}

func TestBurnGaugesBound(t *testing.T) {
	reg := New()
	m := NewBurnMonitor("squeezenet", goldenCfg())
	m.Bind(reg)
	for ts := int64(0); ts < 60_000; ts += 1000 {
		m.Observe(ts, true)
	}
	m.Advance(60_000)
	if got := reg.Gauge(`krisp_slo_burn_fast_milli{model="squeezenet"}`, "").Value(); got != 10_000 {
		t.Fatalf("fast burn gauge = %d, want 10000 (burn 10 x 1000)", got)
	}
	if got := reg.Gauge(`krisp_slo_burn_state{model="squeezenet"}`, "").Value(); got != int64(AlertPage) {
		t.Fatalf("state gauge = %d, want %d", got, AlertPage)
	}
}

func TestBurnObserveAdvanceZeroAlloc(t *testing.T) {
	m := NewBurnMonitor("alloc", goldenCfg())
	m.Bind(New())
	ts := int64(0)
	allocs := testing.AllocsPerRun(1000, func() {
		m.Observe(ts, ts%7 == 0)
		if ts%10_000 == 0 {
			m.Advance(ts)
		}
		ts += 137
	})
	if allocs != 0 {
		t.Fatalf("BurnMonitor Observe/Advance allocates %.1f/op, want 0", allocs)
	}
}

func TestSLOBoardPublishSnapshot(t *testing.T) {
	b := &SLOBoard{}
	b.Publish([]SLOStatus{{Name: "m0", State: "page"}})
	got := b.Snapshot()
	if len(got) != 1 || got[0].Name != "m0" || got[0].State != "page" {
		t.Fatalf("snapshot = %+v", got)
	}
}
