package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
)

// maxCtrSeries bounds the per-event counter series of a CounterEvent — 8
// covers one value per shader engine on the largest supported topology.
const maxCtrSeries = 8

// Event is one recorded trace event in virtual time. Ts and Dur are virtual
// microseconds — the same unit Chrome trace-event JSON uses, so spans load
// into Perfetto with no conversion. Pid conventionally identifies the
// device (GPU index) and Tid the HSA queue.
type Event struct {
	Ph   byte // 'X' complete span, 'i' instant, 'C' counter
	Cat  string
	Name string
	Pid  int
	Tid  int
	Ts   float64
	Dur  float64
	// One optional numeric argument for spans and instants.
	ArgKey string
	ArgVal float64
	// Counter-event series (Ph == 'C').
	CtrKeys [maxCtrSeries]string
	CtrVals [maxCtrSeries]float64
	NCtr    int
}

// Tracer records spans, instants, and counter time-series against the
// virtual clock. It is concurrency-safe (parallel grid cells may share
// one), and every method is nil-receiver safe so call sites gate tracing
// with a plain field copy instead of branching.
//
// Unlike the metrics registry, the tracer retains one record per event, so
// it is an opt-in tool for bounded runs (quick experiments, single
// scenarios), not an always-on production path.
type Tracer struct {
	mu     sync.Mutex
	events []Event
	// process/thread display names for the Perfetto UI, keyed by pid and
	// (pid, tid).
	procNames   map[int]string
	threadNames map[[2]int]string
}

// NewTracer returns an enabled tracer.
func NewTracer() *Tracer {
	return &Tracer{
		procNames:   make(map[int]string),
		threadNames: make(map[[2]int]string),
	}
}

// Enabled reports whether events will be recorded (false for nil).
func (t *Tracer) Enabled() bool { return t != nil }

func (t *Tracer) add(e Event) {
	t.mu.Lock()
	t.events = append(t.events, e)
	t.mu.Unlock()
}

// Span records a complete span [start, end] on (pid, tid).
func (t *Tracer) Span(cat, name string, pid, tid int, start, end float64) {
	if t == nil {
		return
	}
	t.add(Event{Ph: 'X', Cat: cat, Name: name, Pid: pid, Tid: tid, Ts: start, Dur: end - start})
}

// SpanArg records a complete span carrying one numeric argument.
func (t *Tracer) SpanArg(cat, name string, pid, tid int, start, end float64, argKey string, argVal float64) {
	if t == nil {
		return
	}
	t.add(Event{Ph: 'X', Cat: cat, Name: name, Pid: pid, Tid: tid, Ts: start, Dur: end - start,
		ArgKey: argKey, ArgVal: argVal})
}

// Instant records a zero-duration marker with one numeric argument
// (pass an empty argKey to omit it).
func (t *Tracer) Instant(cat, name string, pid, tid int, ts float64, argKey string, argVal float64) {
	if t == nil {
		return
	}
	t.add(Event{Ph: 'i', Cat: cat, Name: name, Pid: pid, Tid: tid, Ts: ts, ArgKey: argKey, ArgVal: argVal})
}

// CounterEvent records a named multi-series counter sample at ts — Perfetto
// renders these as stacked time-series (the per-SE occupancy timeline). At
// most maxCtrSeries series are kept; keys and vals must have equal length.
func (t *Tracer) CounterEvent(name string, pid int, ts float64, keys []string, vals []float64) {
	if t == nil {
		return
	}
	n := len(keys)
	if len(vals) < n {
		n = len(vals)
	}
	if n > maxCtrSeries {
		n = maxCtrSeries
	}
	e := Event{Ph: 'C', Name: name, Pid: pid, Ts: ts, NCtr: n}
	for i := 0; i < n; i++ {
		e.CtrKeys[i] = keys[i]
		e.CtrVals[i] = vals[i]
	}
	t.add(e)
}

// NameProcess sets the display name Perfetto shows for pid.
func (t *Tracer) NameProcess(pid int, name string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.procNames[pid] = name
	t.mu.Unlock()
}

// NameThread sets the display name Perfetto shows for (pid, tid).
func (t *Tracer) NameThread(pid, tid int, name string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.threadNames[[2]int{pid, tid}] = name
	t.mu.Unlock()
}

// Len returns the number of recorded events (0 for nil).
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// CountCat returns how many events carry the given category.
func (t *Tracer) CountCat(cat string) int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	n := 0
	for i := range t.events {
		if t.events[i].Cat == cat {
			n++
		}
	}
	return n
}

// Events returns a copy of the recorded events.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, len(t.events))
	copy(out, t.events)
	return out
}

// jsonEvent is the Chrome trace-event wire shape.
type jsonEvent struct {
	Name string         `json:"name,omitempty"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  *float64       `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// WriteChromeTrace emits the recorded events as Chrome trace-event JSON
// (the {"traceEvents": [...]} object form), loadable in Perfetto and
// chrome://tracing. Virtual microseconds map directly onto the format's ts
// unit. Process and thread metadata events are emitted first so the UI
// shows device and queue names.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	if t == nil {
		_, err := io.WriteString(w, `{"displayTimeUnit":"ms","traceEvents":[]}`)
		return err
	}
	t.mu.Lock()
	defer t.mu.Unlock()

	if _, err := io.WriteString(w, `{"displayTimeUnit":"ms","traceEvents":[`); err != nil {
		return err
	}
	first := true
	emit := func(je jsonEvent) error {
		b, err := json.Marshal(je)
		if err != nil {
			return err
		}
		if !first {
			if _, err := w.Write([]byte{',', '\n'}); err != nil {
				return err
			}
		}
		first = false
		_, err = w.Write(b)
		return err
	}

	// Metadata first, in deterministic order.
	for _, pid := range sortedIntKeys(t.procNames) {
		if err := emit(jsonEvent{Name: "process_name", Ph: "M", Pid: pid,
			Args: map[string]any{"name": t.procNames[pid]}}); err != nil {
			return err
		}
	}
	for _, k := range sortedPairKeys(t.threadNames) {
		if err := emit(jsonEvent{Name: "thread_name", Ph: "M", Pid: k[0], Tid: k[1],
			Args: map[string]any{"name": t.threadNames[k]}}); err != nil {
			return err
		}
	}

	for i := range t.events {
		e := &t.events[i]
		je := jsonEvent{Name: e.Name, Cat: e.Cat, Ph: string(e.Ph), Ts: e.Ts, Pid: e.Pid, Tid: e.Tid}
		switch e.Ph {
		case 'X':
			d := e.Dur
			je.Dur = &d
			if e.ArgKey != "" {
				je.Args = map[string]any{e.ArgKey: e.ArgVal}
			}
		case 'i':
			je.S = "t" // thread-scoped instant
			if e.ArgKey != "" {
				je.Args = map[string]any{e.ArgKey: e.ArgVal}
			}
		case 'C':
			args := make(map[string]any, e.NCtr)
			for j := 0; j < e.NCtr; j++ {
				args[e.CtrKeys[j]] = e.CtrVals[j]
			}
			je.Args = args
		default:
			return fmt.Errorf("telemetry: unknown event phase %q", e.Ph)
		}
		if err := emit(je); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "]}\n")
	return err
}

func sortedIntKeys(m map[int]string) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	for i := 1; i < len(out); i++ { // insertion sort; metadata sets are tiny
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

func sortedPairKeys(m map[[2]int]string) [][2]int {
	out := make([][2]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	less := func(a, b [2]int) bool { return a[0] < b[0] || (a[0] == b[0] && a[1] < b[1]) }
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && less(out[j], out[j-1]); j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
