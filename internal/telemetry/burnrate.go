package telemetry

import "sync"

// burnrate.go implements multi-window SLO burn-rate monitoring over virtual
// time — the SRE error-budget alerting shape: the burn rate is the fraction
// of requests violating the objective divided by the error budget (so burn 1
// spends the budget exactly at the objective's horizon, burn 10 spends it
// 10x faster), and an alert requires BOTH a fast window (catches sudden
// cliffs quickly) and a slow window (suppresses blips) to burn hot.
//
// Everything is deterministic: observations and advances carry virtual-time
// timestamps, the state machine has no wall-clock or randomness, and two
// runs with identical traffic produce identical transition ticks. The
// monitor is single-goroutine like the Series underneath it; bound gauges
// are atomic so scrapes may race with advances.

// AlertState is the burn-rate alert level.
type AlertState int

const (
	AlertOK AlertState = iota
	AlertWarning
	AlertPage
)

// String returns the state's name.
func (s AlertState) String() string {
	switch s {
	case AlertOK:
		return "ok"
	case AlertWarning:
		return "warning"
	case AlertPage:
		return "page"
	default:
		return "unknown"
	}
}

// BurnConfig parameterises one monitor. Zero values take the defaults noted
// per field; windows should be multiples of WidthUs (the rollup
// granularity).
type BurnConfig struct {
	Objective    float64 // success objective, e.g. 0.99; default 0.99
	WidthUs      int64   // rollup bucket width; default 10_000 (10ms)
	FastWindowUs int64   // fast window; default 5*WidthUs
	SlowWindowUs int64   // slow window; default 30*WidthUs
	PageBurn     float64 // both-window burn rate that pages; default 10
	WarnBurn     float64 // both-window burn rate that warns; default 2
	ClearHoldUs  int64   // time below a level before de-escalating one step; default SlowWindowUs/2
	MinCount     uint64  // fast-window volume gate for escalation; default 10
}

func (c BurnConfig) withDefaults() BurnConfig {
	if c.Objective <= 0 || c.Objective >= 1 {
		c.Objective = 0.99
	}
	if c.WidthUs <= 0 {
		c.WidthUs = 10_000
	}
	if c.FastWindowUs <= 0 {
		c.FastWindowUs = 5 * c.WidthUs
	}
	if c.SlowWindowUs <= 0 {
		c.SlowWindowUs = 30 * c.WidthUs
	}
	if c.PageBurn <= 0 {
		c.PageBurn = 10
	}
	if c.WarnBurn <= 0 {
		c.WarnBurn = 2
	}
	if c.ClearHoldUs <= 0 {
		c.ClearHoldUs = c.SlowWindowUs / 2
	}
	if c.MinCount == 0 {
		c.MinCount = 10
	}
	return c
}

// BurnMonitor tracks one SLO's error-budget burn across a fast and a slow
// window and runs the ok → warning → page state machine. Escalation is
// immediate (volume-gated); de-escalation steps down ONE level only after
// the computed level has held below the current state for ClearHoldUs —
// the hysteresis that keeps alerts from flapping across window boundaries.
type BurnMonitor struct {
	Name string

	cfg    BurnConfig
	series *Series

	state       AlertState
	belowSince  int64 // virtual us the target level first held below state; -1 when not holding
	fast, slow  float64
	total, bad  uint64
	transitions int
	history     []AlertTransition // most recent transitionHistory changes

	gFast, gSlow, gState *Gauge
}

// transitionHistory bounds the per-monitor transition log.
const transitionHistory = 64

// AlertTransition is one recorded state change.
type AlertTransition struct {
	AtUs int64  `json:"at_us"`
	From string `json:"from"`
	To   string `json:"to"`
}

// NewBurnMonitor creates a monitor named name (conventionally the model)
// with cfg's windows. Nil-safe methods make an unused monitor free.
func NewBurnMonitor(name string, cfg BurnConfig) *BurnMonitor {
	cfg = cfg.withDefaults()
	n := int(cfg.SlowWindowUs/cfg.WidthUs) + 1
	return &BurnMonitor{
		Name:       name,
		cfg:        cfg,
		series:     NewSeries(cfg.WidthUs, n),
		belowSince: -1,
	}
}

// Bind registers the monitor's burn gauges (milli-burn-rate, so integer
// gauges keep two decimals) and state gauge (0 ok / 1 warning / 2 page)
// under the model label. Nil-safe.
func (m *BurnMonitor) Bind(reg *Registry) {
	if m == nil || reg == nil {
		return
	}
	label := `{model="` + m.Name + `"}`
	m.gFast = reg.Gauge("krisp_slo_burn_fast_milli"+label,
		"fast-window SLO error-budget burn rate x1000")
	m.gSlow = reg.Gauge("krisp_slo_burn_slow_milli"+label,
		"slow-window SLO error-budget burn rate x1000")
	m.gState = reg.Gauge("krisp_slo_burn_state"+label,
		"burn-rate alert state: 0 ok, 1 warning, 2 page")
}

// Observe records one request outcome at tsUs; bad marks an SLO violation,
// shed, or failure. Nil-safe, allocation-free.
func (m *BurnMonitor) Observe(tsUs int64, bad bool) {
	if m == nil {
		return
	}
	m.total++
	if bad {
		m.bad++
	}
	m.series.Observe(tsUs, 0, bad)
}

// burn computes the window's error-budget burn rate: (bad/count) divided by
// the error budget. An empty window burns 0.
func (m *BurnMonitor) burn(nowUs, windowUs int64) (float64, uint64) {
	count, bad, _ := m.series.WindowStats(nowUs, windowUs)
	if count == 0 {
		return 0, 0
	}
	budget := 1 - m.cfg.Objective
	return (float64(bad) / float64(count)) / budget, count
}

// Advance recomputes both windows at nowUs and steps the alert state
// machine. Call once per tick (or per rollup width); nil-safe.
func (m *BurnMonitor) Advance(nowUs int64) {
	if m == nil {
		return
	}
	var fastCount uint64
	m.fast, fastCount = m.burn(nowUs, m.cfg.FastWindowUs)
	m.slow, _ = m.burn(nowUs, m.cfg.SlowWindowUs)

	// The target level needs BOTH windows hot; escalation is also gated on
	// fast-window volume so a lone early failure cannot page an idle fleet.
	target := AlertOK
	if fastCount >= m.cfg.MinCount {
		switch {
		case m.fast >= m.cfg.PageBurn && m.slow >= m.cfg.PageBurn:
			target = AlertPage
		case m.fast >= m.cfg.WarnBurn && m.slow >= m.cfg.WarnBurn:
			target = AlertWarning
		}
	}

	switch {
	case target > m.state:
		m.record(nowUs, m.state, target)
		m.state = target
		m.belowSince = -1
		m.transitions++
	case target < m.state:
		if m.belowSince < 0 {
			m.belowSince = nowUs
		} else if nowUs-m.belowSince >= m.cfg.ClearHoldUs {
			m.record(nowUs, m.state, m.state-1)
			m.state-- // step down one level, then re-earn the next step
			m.belowSince = nowUs
			m.transitions++
		}
	default:
		m.belowSince = -1
	}

	m.gFast.Set(int64(m.fast * 1000))
	m.gSlow.Set(int64(m.slow * 1000))
	m.gState.Set(int64(m.state))
}

// record appends one transition to the bounded history (oldest dropped).
func (m *BurnMonitor) record(nowUs int64, from, to AlertState) {
	if len(m.history) == transitionHistory {
		copy(m.history, m.history[1:])
		m.history = m.history[:transitionHistory-1]
	}
	m.history = append(m.history, AlertTransition{AtUs: nowUs, From: from.String(), To: to.String()})
}

// History returns the monitor's recent transitions, oldest first.
func (m *BurnMonitor) History() []AlertTransition {
	if m == nil {
		return nil
	}
	return m.history
}

// State returns the current alert level (AlertOK on a nil receiver).
func (m *BurnMonitor) State() AlertState {
	if m == nil {
		return AlertOK
	}
	return m.state
}

// Transitions returns how many state changes the monitor has made.
func (m *BurnMonitor) Transitions() int {
	if m == nil {
		return 0
	}
	return m.transitions
}

// Status snapshots the monitor for dashboards and the /debug/slo endpoint.
func (m *BurnMonitor) Status() SLOStatus {
	if m == nil {
		return SLOStatus{State: AlertOK.String()}
	}
	return SLOStatus{
		Name:        m.Name,
		State:       m.state.String(),
		BurnFast:    m.fast,
		BurnSlow:    m.slow,
		Total:       m.total,
		Bad:         m.bad,
		Transitions: m.transitions,
		History:     append([]AlertTransition(nil), m.history...),
	}
}

// SLOStatus is one monitor's JSON-friendly snapshot.
type SLOStatus struct {
	Name        string  `json:"name"`
	State       string  `json:"state"`
	BurnFast    float64 `json:"burn_fast"`
	BurnSlow    float64 `json:"burn_slow"`
	Total       uint64  `json:"total"`
	Bad         uint64  `json:"bad"`
	Transitions int     `json:"transitions"`
	// History lists the monitor's recent state changes, oldest first.
	History []AlertTransition `json:"history,omitempty"`
}

// SLOBoard is a concurrency-safe holder for the latest published SLO
// statuses — the bridge between a fleet run (which owns the monitors) and
// the /debug/slo endpoint (which may be scraped from another goroutine).
type SLOBoard struct {
	mu       sync.RWMutex
	statuses []SLOStatus
}

// Publish replaces the board's statuses with a copy of ss.
func (b *SLOBoard) Publish(ss []SLOStatus) {
	if b == nil {
		return
	}
	cp := make([]SLOStatus, len(ss))
	copy(cp, ss)
	b.mu.Lock()
	b.statuses = cp
	b.mu.Unlock()
}

// Snapshot returns a copy of the board's statuses.
func (b *SLOBoard) Snapshot() []SLOStatus {
	if b == nil {
		return nil
	}
	b.mu.RLock()
	defer b.mu.RUnlock()
	cp := make([]SLOStatus, len(b.statuses))
	copy(cp, b.statuses)
	return cp
}

var defaultBoard = &SLOBoard{}

// DefaultBoard returns the process-wide SLO board the /debug/slo endpoint
// serves — fleets wired to the default telemetry hub publish here.
func DefaultBoard() *SLOBoard { return defaultBoard }
