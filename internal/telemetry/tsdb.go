package telemetry

// tsdb.go is the windowed time-series store: a fixed-size ring of per-metric
// rollups over virtual time. It exists for one consumer — the multi-window
// SLO burn-rate monitors (burnrate.go) need "how many requests, and how many
// bad, over the last fast/slow window" at every tick — but the shape is
// generic: bucketed counts, bad counts, and value sums over a rolling span
// of virtual microseconds.
//
// Design constraints mirror the rest of the package: Observe is called from
// the fleet's completion path on every request, so after construction it
// never allocates; the ring is fixed at creation, advancing the head only
// zeroes stale buckets in place. Unlike Counter/Gauge/Histogram the Series
// is NOT concurrency-safe — the fleet observer runs single-goroutine on the
// coordinator (nodes advance in parallel, bookkeeping does not), and paying
// atomics here would be pure overhead. Timestamps are int64 virtual
// microseconds, deliberately not sim.Time: telemetry stays import-free of
// the simulation core.

// SeriesPoint is one rollup bucket of a Series: all observations whose
// timestamp fell inside [Start, Start+width).
type SeriesPoint struct {
	Start int64   // bucket start, virtual microseconds
	Count uint64  // observations in the bucket
	Bad   uint64  // observations flagged bad (SLO miss, shed, failure)
	Sum   float64 // sum of observed values
}

// Series is a fixed ring of time-bucketed rollups. Observations land in the
// bucket covering their timestamp; buckets older than the ring's reach are
// overwritten in place. Zero allocations after New.
type Series struct {
	buckets []SeriesPoint
	width   int64 // bucket width, virtual microseconds
	headWin int64 // highest window number observed; -1 before first Observe
}

// NewSeries creates a ring of n buckets of widthUs virtual microseconds
// each, covering a rolling span of n*widthUs.
func NewSeries(widthUs int64, n int) *Series {
	if widthUs <= 0 || n < 1 {
		panic("telemetry: NewSeries needs widthUs > 0, n >= 1")
	}
	return &Series{buckets: make([]SeriesPoint, n), width: widthUs, headWin: -1}
}

// Width returns the bucket width in virtual microseconds.
func (s *Series) Width() int64 { return s.width }

// Span returns the rolling span the ring covers, in virtual microseconds.
func (s *Series) Span() int64 { return s.width * int64(len(s.buckets)) }

// Observe records one observation at tsUs. Observations older than the
// ring's reach (relative to the newest seen) are dropped; observations in
// the future advance the head, zeroing any skipped buckets.
func (s *Series) Observe(tsUs int64, v float64, bad bool) {
	if s == nil || tsUs < 0 {
		return
	}
	win := tsUs / s.width
	n := int64(len(s.buckets))
	if win > s.headWin {
		// Advance the head, resetting every bucket between the old head and
		// the new one. A jump past the whole ring resets everything once.
		from := s.headWin + 1
		if win-from >= n {
			from = win - n + 1
		}
		for w := from; w <= win; w++ {
			s.buckets[w%n] = SeriesPoint{Start: w * s.width}
		}
		s.headWin = win
	} else if s.headWin-win >= n {
		return // older than the ring's reach
	}
	b := &s.buckets[win%n]
	b.Count++
	b.Sum += v
	if bad {
		b.Bad++
	}
}

// WindowStats sums the rollups covering (nowUs-windowUs, nowUs]. Buckets
// that only partially overlap the window count in full — the ring's bucket
// width is the rollup granularity, and callers size their windows as
// multiples of it.
func (s *Series) WindowStats(nowUs, windowUs int64) (count, bad uint64, sum float64) {
	if s == nil || s.headWin < 0 {
		return 0, 0, 0
	}
	from := nowUs - windowUs
	for i := range s.buckets {
		b := &s.buckets[i]
		if b.Count == 0 && b.Bad == 0 {
			continue
		}
		// Include buckets that intersect (from, nowUs]: the bucket must end
		// after the window opens and start at or before now.
		if b.Start+s.width > from && b.Start <= nowUs {
			count += b.Count
			bad += b.Bad
			sum += b.Sum
		}
	}
	return count, bad, sum
}
