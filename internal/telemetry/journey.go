package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
)

// journey.go holds the per-request journey record: a sampled span of one
// request's life through the fleet, stamped at every stage boundary so the
// end-to-end latency decomposes exactly into stage durations. Journeys are
// pooled (single-goroutine free list on the fleet coordinator) so a
// steady-state sampled run allocates only up to its in-flight high-water
// mark, and anomalous journeys are retained in a bounded FlightRecorder
// ring for post-hoc "why was this request slow" forensics.

// Journey stages, in request order. Stage s spans T[s] → T[s+1]; the
// boundaries telescope, so the sum of all stage durations equals the
// end-to-end latency.
const (
	StageAdmit     = iota // arrival → router send: admission, rate-limit and router-queue wait
	StageTransit          // send → node enqueue: fabric/mailbox transit
	StageNodeQueue        // enqueue → batch start: node queue wait
	StageBatchForm        // batch start → kernel start: batch formation / preprocess
	StageKernels          // kernel start → kernel end: the KRISP-partitioned kernels
	StagePost             // kernel end → completion: postprocess and result return
	NumStages
)

// StageNames maps stage indices to their metric/trace names.
var StageNames = [NumStages]string{
	"admit", "transit", "node_queue", "batch_form", "kernels", "post",
}

// Journey outcomes.
const (
	JourneyInFlight = iota
	JourneyCompleted
	JourneyShed
	JourneyFailed
)

func outcomeName(o int) string {
	switch o {
	case JourneyInFlight:
		return "in-flight"
	case JourneyCompleted:
		return "completed"
	case JourneyShed:
		return "shed"
	case JourneyFailed:
		return "failed"
	default:
		return "unknown"
	}
}

// Journey is one sampled request's stage-boundary record. T holds the
// NumStages+1 boundary timestamps in virtual microseconds (-1 when a
// boundary was never reached — shed journeys stop at T[1]). All fields are
// plain values so the FlightRecorder can retain copies after the pooled
// record is recycled.
type Journey struct {
	ID           uint64
	Model        int
	Tenant       int
	Replica      int
	ModelName    string
	Outcome      int
	Hedged       bool
	Retried      bool
	SLOViolated  bool
	FaultTouched bool
	T            [NumStages + 1]int64
}

// reset clears the record for pool reuse.
func (j *Journey) reset() {
	*j = Journey{}
	for i := range j.T {
		j.T[i] = -1
	}
}

// StageUs returns stage s's duration, or -1 when either boundary is
// missing.
func (j *Journey) StageUs(s int) int64 {
	if s < 0 || s >= NumStages || j.T[s] < 0 || j.T[s+1] < 0 {
		return -1
	}
	return j.T[s+1] - j.T[s]
}

// LatencyUs returns the end-to-end latency from arrival to the last stamped
// boundary (0 when only the arrival is known).
func (j *Journey) LatencyUs() int64 {
	for s := NumStages; s > 0; s-- {
		if j.T[s] >= 0 {
			return j.T[s] - j.T[0]
		}
	}
	return 0
}

// Anomalous reports whether the journey belongs in the flight recorder:
// shed, failed, hedged, retried, SLO-violating, or fault-touched.
func (j *Journey) Anomalous() bool {
	return j.Outcome == JourneyShed || j.Outcome == JourneyFailed ||
		j.Hedged || j.Retried || j.SLOViolated || j.FaultTouched
}

// JourneyPool is a free list of journey records. It is intentionally NOT
// concurrency-safe: the fleet observer owns it on the coordinator
// goroutine, and a sync.Pool would trade that certainty for GC-coupled
// reuse. Allocation is bounded by the in-flight sampled high-water mark.
type JourneyPool struct {
	free      []*Journey
	allocated int
}

// Get returns a reset record, reusing a pooled one when available.
func (p *JourneyPool) Get() *Journey {
	var j *Journey
	if n := len(p.free); n > 0 {
		j = p.free[n-1]
		p.free = p.free[:n-1]
	} else {
		j = new(Journey)
		p.allocated++
	}
	j.reset()
	return j
}

// Put returns a record to the free list.
func (p *JourneyPool) Put(j *Journey) {
	if j != nil {
		p.free = append(p.free, j)
	}
}

// Allocated returns how many records were ever heap-allocated — the
// in-flight high-water mark, not the sample count.
func (p *JourneyPool) Allocated() int { return p.allocated }

// FlightRecorder retains value copies of the most recent anomalous journeys
// in a fixed ring, overwriting the oldest on overflow. Recording copies the
// journey, so pooled records stay recyclable. Methods are concurrency-safe
// (a scrape may race the recording run) and nil-receiver safe.
type FlightRecorder struct {
	mu    sync.Mutex
	ring  []Journey
	next  int
	n     int
	total uint64
}

// NewFlightRecorder creates a recorder keeping the last cap journeys
// (64 when cap <= 0).
func NewFlightRecorder(cap int) *FlightRecorder {
	if cap <= 0 {
		cap = 64
	}
	return &FlightRecorder{ring: make([]Journey, cap)}
}

// Record copies j into the ring. Nil-safe.
func (f *FlightRecorder) Record(j *Journey) {
	if f == nil || j == nil {
		return
	}
	f.mu.Lock()
	f.ring[f.next] = *j
	f.next = (f.next + 1) % len(f.ring)
	if f.n < len(f.ring) {
		f.n++
	}
	f.total++
	f.mu.Unlock()
}

// Len returns how many journeys the ring currently holds.
func (f *FlightRecorder) Len() int {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.n
}

// Total returns how many journeys were ever recorded (including evicted).
func (f *FlightRecorder) Total() uint64 {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.total
}

// Journeys returns the retained journeys, oldest first.
func (f *FlightRecorder) Journeys() []Journey {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]Journey, 0, f.n)
	start := f.next - f.n
	for i := 0; i < f.n; i++ {
		out = append(out, f.ring[(start+i+len(f.ring))%len(f.ring)])
	}
	return out
}

// journeyJSON is the export shape: stage durations by name, flags, and the
// raw boundaries for tools that want them.
type journeyJSON struct {
	ID           uint64           `json:"id"`
	Model        string           `json:"model"`
	Tenant       int              `json:"tenant"`
	Replica      int              `json:"replica"`
	Outcome      string           `json:"outcome"`
	Hedged       bool             `json:"hedged,omitempty"`
	Retried      bool             `json:"retried,omitempty"`
	SLOViolated  bool             `json:"slo_violated,omitempty"`
	FaultTouched bool             `json:"fault_touched,omitempty"`
	ArrivalUs    int64            `json:"arrival_us"`
	LatencyUs    int64            `json:"latency_us"`
	Stages       map[string]int64 `json:"stages"`
}

func exportJourney(j *Journey) journeyJSON {
	out := journeyJSON{
		ID: j.ID, Model: j.ModelName, Tenant: j.Tenant, Replica: j.Replica,
		Outcome: outcomeName(j.Outcome), Hedged: j.Hedged, Retried: j.Retried,
		SLOViolated: j.SLOViolated, FaultTouched: j.FaultTouched,
		ArrivalUs: j.T[0], LatencyUs: j.LatencyUs(),
		Stages: make(map[string]int64),
	}
	for s := 0; s < NumStages; s++ {
		if d := j.StageUs(s); d >= 0 {
			out.Stages[StageNames[s]] = d
		}
	}
	return out
}

// WriteJSON dumps the retained journeys (oldest first) as a JSON document.
func (f *FlightRecorder) WriteJSON(w io.Writer) error {
	journeys := f.Journeys()
	out := struct {
		Retained int           `json:"retained"`
		Total    uint64        `json:"total"`
		Journeys []journeyJSON `json:"journeys"`
	}{Retained: len(journeys), Total: f.Total(), Journeys: make([]journeyJSON, 0, len(journeys))}
	for i := range journeys {
		out.Journeys = append(out.Journeys, exportJourney(&journeys[i]))
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// WriteChromeTrace renders the retained journeys as Chrome trace-event
// JSON: one process per tenant, one thread per ring slot (so overlapping
// journeys land on separate lines), one span per completed stage, and an
// instant marking the outcome of journeys that never finished a stage.
func (f *FlightRecorder) WriteChromeTrace(w io.Writer) error {
	journeys := f.Journeys()
	tr := NewTracer()
	for slot := range journeys {
		j := &journeys[slot]
		pid := j.Tenant
		tr.NameProcess(pid, fmt.Sprintf("tenant %d", j.Tenant))
		tr.NameThread(pid, slot, fmt.Sprintf("journey %d (%s)", j.ID, j.ModelName))
		emitted := false
		for s := 0; s < NumStages; s++ {
			if j.T[s] >= 0 && j.T[s+1] >= 0 {
				tr.SpanArg("journey", StageNames[s], pid, slot,
					float64(j.T[s]), float64(j.T[s+1]), "id", float64(j.ID))
				emitted = true
			}
		}
		if j.Outcome != JourneyCompleted || !emitted {
			ts := j.T[0]
			if last := j.T[0] + j.LatencyUs(); last > ts {
				ts = last
			}
			tr.Instant("journey", outcomeName(j.Outcome), pid, slot, float64(ts), "id", float64(j.ID))
		}
	}
	return tr.WriteChromeTrace(w)
}

var (
	defaultFlightMu sync.RWMutex
	defaultFlight   *FlightRecorder
)

// SetDefaultFlight installs the process-wide flight recorder served by
// /debug/flight — fleets wired to the default telemetry hub call this.
func SetDefaultFlight(f *FlightRecorder) {
	defaultFlightMu.Lock()
	defaultFlight = f
	defaultFlightMu.Unlock()
}

// DefaultFlight returns the process-wide flight recorder (may be nil).
func DefaultFlight() *FlightRecorder {
	defaultFlightMu.RLock()
	defer defaultFlightMu.RUnlock()
	return defaultFlight
}
