// Package telemetry is the runtime observability substrate: a process-wide,
// concurrency-safe registry of counters, gauges, and fixed-bucket histograms,
// plus a virtual-time span tracer (see tracer.go) that emits Chrome
// trace-event JSON loadable in Perfetto.
//
// The design constraint is the dispatch hot path: internal/hsa consumes a
// packet, runs Algorithm 1, and launches a kernel in ~500ns with zero heap
// allocations, and instrumenting that loop must not regress it. So metric
// handles are resolved once at stack-construction time (never looked up per
// event), every write is a single atomic operation (histograms add one
// bounded linear scan over their fixed buckets), and nothing on the write
// path allocates, locks, or formats. Registration and exposition take the
// registry lock; writes never do.
//
// All handle methods are nil-receiver safe: a nil *Counter/*Gauge/*Histogram
// is a no-op sink, so partially-wired telemetry structs cost only the nil
// checks. Disabling telemetry entirely (a nil Hub on server.Config) installs
// no handles at all and leaves experiment output byte-identical — telemetry
// only observes; it never schedules simulation events or draws randomness.
//
// Metric names follow Prometheus conventions: snake_case with a krisp_
// prefix and a unit suffix (_total for counters, _us/_ms for durations).
// Fixed label sets are baked into the registered name — e.g.
// krisp_gpu_busy_cus{gpu="0"} — so the hot path never assembles label
// strings; WritePrometheus splits them back out for scrapes.
package telemetry

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically-increasing metric (Prometheus counter).
type Counter struct {
	v    atomic.Uint64
	name string
	help string
}

// Inc adds one. Safe on a nil receiver (no-op).
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n. Safe on a nil receiver (no-op).
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count (0 on a nil receiver).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Name returns the registered (labeled) metric name.
func (c *Counter) Name() string { return c.name }

// Gauge is a settable instantaneous value (Prometheus gauge). Values are
// int64: every gauge in this codebase is a count of discrete things (busy
// CUs, queued packets, healthy CUs).
type Gauge struct {
	v    atomic.Int64
	name string
	help string
}

// Set stores v. Safe on a nil receiver (no-op).
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add adds delta (may be negative). Safe on a nil receiver (no-op).
func (g *Gauge) Add(delta int64) {
	if g != nil {
		g.v.Add(delta)
	}
}

// Value returns the current value (0 on a nil receiver).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Name returns the registered (labeled) metric name.
func (g *Gauge) Name() string { return g.name }

// Histogram is a fixed-bucket distribution (Prometheus histogram). Bucket
// bounds are set at registration and never change, so Observe is one
// bounded linear scan plus three atomic updates — no allocation, no lock.
type Histogram struct {
	name   string
	help   string
	bounds []float64 // upper bounds, ascending; an implicit +Inf bucket follows
	counts []atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits, updated by CAS
}

// Observe records one observation. Safe on a nil receiver (no-op).
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := 0
	for ; i < len(h.bounds); i++ {
		if v <= h.bounds[i] {
			break
		}
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations (0 on a nil receiver).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observations (0 on a nil receiver).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// Name returns the registered (labeled) metric name.
func (h *Histogram) Name() string { return h.name }

// Bounds returns the bucket upper bounds (excluding the implicit +Inf).
func (h *Histogram) Bounds() []float64 {
	out := make([]float64, len(h.bounds))
	copy(out, h.bounds)
	return out
}

// BucketCounts returns the per-bucket (non-cumulative) counts; the last
// entry is the +Inf bucket.
func (h *Histogram) BucketCounts() []uint64 {
	out := make([]uint64, len(h.counts))
	for i := range h.counts {
		out[i] = h.counts[i].Load()
	}
	return out
}

// ExpBuckets returns n bucket bounds starting at start and growing by
// factor: the standard shape for latency histograms.
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("telemetry: ExpBuckets needs start > 0, factor > 1, n >= 1")
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// LatencyBucketsUs is the default microsecond latency bucketing:
// 1us .. ~8.4s in powers of two — wide enough for IOCTL syscalls at the
// bottom and straggler batches at the top.
func LatencyBucketsUs() []float64 { return ExpBuckets(1, 2, 24) }

// LatencyBucketsMs is the default millisecond latency bucketing for batch
// and request latencies: 0.5ms .. ~16s.
func LatencyBucketsMs() []float64 { return ExpBuckets(0.5, 2, 16) }

// CUBuckets buckets CU grant sizes on MI50/MI100-shaped devices.
func CUBuckets() []float64 { return []float64{1, 2, 4, 8, 15, 22, 30, 45, 60, 90, 120} }

// QueueDepthBuckets suits queue-depth and outstanding-request histograms
// (fleet routing, per-node backlogs): power-of-two depths from empty to
// overload.
func QueueDepthBuckets() []float64 {
	return []float64{0, 1, 2, 4, 8, 16, 32, 64, 128, 256}
}

// Registry is a concurrency-safe named-metric store. Registration is
// get-or-register: asking for an existing name returns the existing handle
// (so parallel grid cells share counters), and asking for it as a different
// metric type panics — that is a programming error, not a runtime state.
type Registry struct {
	mu         sync.RWMutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// New creates an empty registry.
func New() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// defaultRegistry is the process-wide registry behind Default() — the one
// the HTTP exposition endpoints serve.
var defaultRegistry = New()

// Default returns the process-wide registry.
func Default() *Registry { return defaultRegistry }

// Counter returns the counter registered under name, creating it if absent.
// name may carry a fixed label set: `krisp_x_total{gpu="0"}`.
func (r *Registry) Counter(name, help string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[name]; ok {
		return c
	}
	r.checkFreeLocked(name, "counter")
	c := &Counter{name: name, help: help}
	r.counters[name] = c
	return c
}

// Gauge returns the gauge registered under name, creating it if absent.
func (r *Registry) Gauge(name, help string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.gauges[name]; ok {
		return g
	}
	r.checkFreeLocked(name, "gauge")
	g := &Gauge{name: name, help: help}
	r.gauges[name] = g
	return g
}

// Histogram returns the histogram registered under name, creating it with
// the given bucket upper bounds if absent. Bounds must be ascending and
// non-empty; re-registrations keep the original bounds.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.histograms[name]; ok {
		return h
	}
	r.checkFreeLocked(name, "histogram")
	if len(bounds) == 0 {
		panic(fmt.Sprintf("telemetry: histogram %q registered with no buckets", name))
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("telemetry: histogram %q bounds not ascending", name))
		}
	}
	b := make([]float64, len(bounds))
	copy(b, bounds)
	h := &Histogram{name: name, help: help, bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
	r.histograms[name] = h
	return h
}

// checkFreeLocked panics when name is already registered as another kind.
func (r *Registry) checkFreeLocked(name, want string) {
	if _, ok := r.counters[name]; ok {
		panic(fmt.Sprintf("telemetry: %q already registered as a counter, requested as %s", name, want))
	}
	if _, ok := r.gauges[name]; ok {
		panic(fmt.Sprintf("telemetry: %q already registered as a gauge, requested as %s", name, want))
	}
	if _, ok := r.histograms[name]; ok {
		panic(fmt.Sprintf("telemetry: %q already registered as a histogram, requested as %s", name, want))
	}
}

// Len returns the number of registered metrics.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.counters) + len(r.gauges) + len(r.histograms)
}

// Reset drops every registered metric. Handles already held by instrumented
// components keep working but are no longer exported — Reset is a test
// isolation tool, not a production operation.
func (r *Registry) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.counters = make(map[string]*Counter)
	r.gauges = make(map[string]*Gauge)
	r.histograms = make(map[string]*Histogram)
}

// sortedNames returns every registered name, sorted, for deterministic
// exposition. Caller must not hold the lock.
func (r *Registry) sortedNames() []string {
	r.mu.RLock()
	names := make([]string, 0, len(r.counters)+len(r.gauges)+len(r.histograms))
	for n := range r.counters {
		names = append(names, n)
	}
	for n := range r.gauges {
		names = append(names, n)
	}
	for n := range r.histograms {
		names = append(names, n)
	}
	r.mu.RUnlock()
	sort.Strings(names)
	return names
}

// Hub bundles one metrics registry and one (optional) span tracer — the
// single handle a serving stack needs to become observable. A nil *Hub
// disables telemetry entirely.
type Hub struct {
	Reg    *Registry
	Tracer *Tracer
}

// NewHub returns a Hub over a fresh registry, with tracing enabled when
// withTracer is set.
func NewHub(withTracer bool) *Hub {
	h := &Hub{Reg: New()}
	if withTracer {
		h.Tracer = NewTracer()
	}
	return h
}

// DefaultHub returns a Hub over the process-wide default registry, with no
// tracer — what the HTTP serving path attaches so /metrics sees live load.
func DefaultHub() *Hub { return &Hub{Reg: Default()} }

// Registry returns the hub's registry, nil-safe.
func (h *Hub) Registry() *Registry {
	if h == nil {
		return nil
	}
	return h.Reg
}

// Trace returns the hub's tracer, nil-safe.
func (h *Hub) Trace() *Tracer {
	if h == nil {
		return nil
	}
	return h.Tracer
}
