package telemetry

import "testing"

func TestSeriesRollup(t *testing.T) {
	s := NewSeries(1000, 4)
	s.Observe(0, 1, false)
	s.Observe(500, 2, true)
	s.Observe(999, 3, false)
	s.Observe(1500, 4, true)

	count, bad, sum := s.WindowStats(1999, 1000)
	// The window (999, 1999] partially overlaps bucket [0,1000), which
	// counts in full: rollup granularity is the bucket width.
	if count != 4 || bad != 2 || sum != 10 {
		t.Fatalf("window stats = (%d, %d, %g), want (4, 2, 10)", count, bad, sum)
	}

	count, bad, sum = s.WindowStats(3999, 4000)
	if count != 4 || bad != 2 || sum != 10 {
		t.Fatalf("full-span stats = (%d, %d, %g), want (4, 2, 10)", count, bad, sum)
	}
}

func TestSeriesEviction(t *testing.T) {
	s := NewSeries(1000, 3)
	s.Observe(0, 1, true)
	s.Observe(1000, 1, false)
	s.Observe(2000, 1, false)
	// Advancing into window 3 overwrites window 0's bucket.
	s.Observe(3000, 1, false)
	count, bad, _ := s.WindowStats(3999, 4000)
	if count != 3 || bad != 0 {
		t.Fatalf("after eviction: count=%d bad=%d, want 3, 0", count, bad)
	}
	// An observation older than the ring's reach is dropped.
	s.Observe(0, 1, true)
	count, bad, _ = s.WindowStats(3999, 4000)
	if count != 3 || bad != 0 {
		t.Fatalf("stale observe landed: count=%d bad=%d, want 3, 0", count, bad)
	}
}

func TestSeriesHeadJumpResetsRing(t *testing.T) {
	s := NewSeries(1000, 3)
	s.Observe(0, 1, true)
	s.Observe(1000, 1, true)
	// Jump far past the whole ring: every old bucket must be gone.
	s.Observe(100_000, 1, false)
	count, bad, _ := s.WindowStats(100_999, 101_000)
	if count != 1 || bad != 0 {
		t.Fatalf("after jump: count=%d bad=%d, want 1, 0", count, bad)
	}
}

func TestSeriesObserveZeroAlloc(t *testing.T) {
	s := NewSeries(1000, 8)
	ts := int64(0)
	allocs := testing.AllocsPerRun(1000, func() {
		s.Observe(ts, 1, ts%3 == 0)
		ts += 137
	})
	if allocs != 0 {
		t.Fatalf("Series.Observe allocates %.1f/op, want 0", allocs)
	}
}

func BenchmarkSeriesObserve(b *testing.B) {
	s := NewSeries(1000, 64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Observe(int64(i)*7, 1, i%5 == 0)
	}
}
