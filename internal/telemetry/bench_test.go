package telemetry

import "testing"

// The write path is the contract: one atomic op per counter/gauge write, a
// bounded scan plus atomics for histograms, zero heap allocations. The hsa
// dispatch benchmark asserts the end-to-end property; these isolate the
// primitives.

func BenchmarkCounterInc(b *testing.B) {
	c := New().Counter("bench_total", "")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkGaugeSet(b *testing.B) {
	g := New().Gauge("bench_gauge", "")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.Set(int64(i))
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := New().Histogram("bench_us", "", LatencyBucketsUs())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i & 1023))
	}
}

func TestWritePathZeroAllocs(t *testing.T) {
	r := New()
	c := r.Counter("za_total", "")
	g := r.Gauge("za_gauge", "")
	h := r.Histogram("za_us", "", LatencyBucketsUs())
	var nilC *Counter
	allocs := testing.AllocsPerRun(1000, func() {
		c.Inc()
		c.Add(2)
		g.Set(9)
		g.Add(-1)
		h.Observe(17)
		nilC.Inc()
	})
	if allocs != 0 {
		t.Errorf("metric write path allocates: %g allocs/op", allocs)
	}
}
