package telemetry

import (
	"bytes"
	"encoding/json"
	"testing"
)

func stampedJourney(id uint64) *Journey {
	j := &Journey{ID: id, Model: 0, ModelName: "squeezenet", Outcome: JourneyCompleted}
	// Telescoping boundaries: 100 -> 150 -> 180 -> 400 -> 450 -> 900 -> 950.
	j.T = [NumStages + 1]int64{100, 150, 180, 400, 450, 900, 950}
	return j
}

func TestJourneyStageSumTelescopes(t *testing.T) {
	j := stampedJourney(1)
	var sum int64
	for s := 0; s < NumStages; s++ {
		d := j.StageUs(s)
		if d < 0 {
			t.Fatalf("stage %s missing", StageNames[s])
		}
		sum += d
	}
	if sum != j.LatencyUs() {
		t.Fatalf("stage sum %d != end-to-end latency %d", sum, j.LatencyUs())
	}
	if j.LatencyUs() != 850 {
		t.Fatalf("latency = %d, want 850", j.LatencyUs())
	}
}

func TestJourneyPartialStages(t *testing.T) {
	var j Journey
	j.reset()
	j.T[0], j.T[1] = 100, 250 // shed at the router: only admit is stamped
	j.Outcome = JourneyShed
	if d := j.StageUs(StageAdmit); d != 150 {
		t.Fatalf("admit = %d, want 150", d)
	}
	if d := j.StageUs(StageTransit); d != -1 {
		t.Fatalf("transit = %d, want -1 (never reached)", d)
	}
	if j.LatencyUs() != 150 {
		t.Fatalf("latency = %d, want 150", j.LatencyUs())
	}
	if !j.Anomalous() {
		t.Fatal("shed journey not anomalous")
	}
}

func TestJourneyPoolReuses(t *testing.T) {
	var p JourneyPool
	a := p.Get()
	a.ID = 7
	a.T[3] = 123
	p.Put(a)
	b := p.Get()
	if a != b {
		t.Fatal("pool did not reuse the freed record")
	}
	if b.ID != 0 || b.T[3] != -1 {
		t.Fatalf("reused record not reset: id=%d T3=%d", b.ID, b.T[3])
	}
	c := p.Get()
	if c == b {
		t.Fatal("pool handed out the same record twice")
	}
	if p.Allocated() != 2 {
		t.Fatalf("allocated = %d, want 2", p.Allocated())
	}
}

func TestFlightRecorderEviction(t *testing.T) {
	f := NewFlightRecorder(4)
	for id := uint64(1); id <= 6; id++ {
		f.Record(stampedJourney(id))
	}
	if f.Len() != 4 || f.Total() != 6 {
		t.Fatalf("len=%d total=%d, want 4, 6", f.Len(), f.Total())
	}
	got := f.Journeys()
	for i, want := range []uint64{3, 4, 5, 6} {
		if got[i].ID != want {
			t.Fatalf("journeys[%d].ID = %d, want %d (oldest-first, oldest evicted)", i, got[i].ID, want)
		}
	}
}

func TestFlightRecorderWriteJSON(t *testing.T) {
	f := NewFlightRecorder(8)
	f.Record(stampedJourney(42))
	var buf bytes.Buffer
	if err := f.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var out struct {
		Retained int    `json:"retained"`
		Total    uint64 `json:"total"`
		Journeys []struct {
			ID        uint64           `json:"id"`
			LatencyUs int64            `json:"latency_us"`
			Stages    map[string]int64 `json:"stages"`
		} `json:"journeys"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if out.Retained != 1 || len(out.Journeys) != 1 {
		t.Fatalf("retained=%d journeys=%d", out.Retained, len(out.Journeys))
	}
	j := out.Journeys[0]
	if j.ID != 42 || j.LatencyUs != 850 {
		t.Fatalf("journey = %+v", j)
	}
	var sum int64
	for _, d := range j.Stages {
		sum += d
	}
	if sum != j.LatencyUs {
		t.Fatalf("exported stages sum %d != latency %d", sum, j.LatencyUs)
	}
}

func TestFlightRecorderWriteChromeTrace(t *testing.T) {
	f := NewFlightRecorder(8)
	f.Record(stampedJourney(1))
	shed := &Journey{ID: 2, Tenant: 1, ModelName: "mobilenet", Outcome: JourneyShed}
	shed.T = [NumStages + 1]int64{100, 250, -1, -1, -1, -1, -1}
	f.Record(shed)

	var buf bytes.Buffer
	if err := f.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var out struct {
		TraceEvents []struct {
			Ph   string `json:"ph"`
			Name string `json:"name"`
			Pid  int    `json:"pid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("invalid Chrome trace: %v\n%s", err, buf.String())
	}
	spans, instants := 0, 0
	for _, e := range out.TraceEvents {
		switch e.Ph {
		case "X":
			spans++
		case "i":
			instants++
		}
	}
	if spans != NumStages+1 { // 6 stages for the complete journey + admit for the shed one
		t.Fatalf("spans = %d, want %d", spans, NumStages+1)
	}
	if instants != 1 { // the shed marker
		t.Fatalf("instants = %d, want 1", instants)
	}
}
