package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := New()
	c := r.Counter("krisp_test_total", "a counter")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Errorf("counter = %d, want 5", c.Value())
	}
	g := r.Gauge("krisp_test_depth", "a gauge")
	g.Set(7)
	g.Add(-3)
	if g.Value() != 4 {
		t.Errorf("gauge = %d, want 4", g.Value())
	}
}

func TestNilHandlesAreNoOps(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	var tr *Tracer
	c.Inc()
	c.Add(3)
	g.Set(1)
	g.Add(1)
	h.Observe(1)
	tr.Span("x", "y", 0, 0, 0, 1)
	tr.Instant("x", "y", 0, 0, 0, "", 0)
	tr.CounterEvent("x", 0, 0, nil, nil)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || tr.Len() != 0 {
		t.Error("nil handles must read as zero")
	}
	var hub *Hub
	if hub.Registry() != nil || hub.Trace() != nil {
		t.Error("nil hub accessors must return nil")
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := New()
	h := r.Histogram("krisp_test_lat_us", "latency", []float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 5, 50, 500} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if h.Sum() != 556.5 {
		t.Errorf("sum = %g, want 556.5", h.Sum())
	}
	want := []uint64{2, 1, 1, 1} // (<=1)=2, (<=10)=1, (<=100)=1, +Inf=1
	got := h.BucketCounts()
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("bucket %d = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestGetOrRegisterSharesHandles(t *testing.T) {
	r := New()
	a := r.Counter("krisp_shared_total", "")
	b := r.Counter("krisp_shared_total", "")
	if a != b {
		t.Error("same name must return the same counter")
	}
	h1 := r.Histogram("krisp_shared_us", "", []float64{1, 2})
	h2 := r.Histogram("krisp_shared_us", "", []float64{9, 99}) // bounds ignored on re-registration
	if h1 != h2 {
		t.Error("same name must return the same histogram")
	}
	if b := h2.Bounds(); b[0] != 1 || b[1] != 2 {
		t.Errorf("re-registration changed bounds: %v", b)
	}
}

func TestCrossKindRegistrationPanics(t *testing.T) {
	r := New()
	r.Counter("krisp_kind_total", "")
	defer func() {
		if recover() == nil {
			t.Error("registering a counter name as a gauge must panic")
		}
	}()
	r.Gauge("krisp_kind_total", "")
}

func TestWritePrometheus(t *testing.T) {
	r := New()
	r.Counter("krisp_dispatches_total", "kernels dispatched").Add(12)
	r.Gauge(`krisp_busy_cus{gpu="0"}`, "busy CUs").Set(33)
	r.Gauge(`krisp_busy_cus{gpu="1"}`, "busy CUs").Set(44)
	h := r.Histogram(`krisp_lat_us{model="albert"}`, "latency", []float64{1, 10})
	h.Observe(0.5)
	h.Observe(5)
	h.Observe(50)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE krisp_dispatches_total counter",
		"krisp_dispatches_total 12",
		"# TYPE krisp_busy_cus gauge",
		`krisp_busy_cus{gpu="0"} 33`,
		`krisp_busy_cus{gpu="1"} 44`,
		"# TYPE krisp_lat_us histogram",
		`krisp_lat_us_bucket{model="albert",le="1"} 1`,
		`krisp_lat_us_bucket{model="albert",le="10"} 2`,
		`krisp_lat_us_bucket{model="albert",le="+Inf"} 3`,
		`krisp_lat_us_sum{model="albert"} 55.5`,
		`krisp_lat_us_count{model="albert"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n%s", want, out)
		}
	}
	// One HELP/TYPE header per base name, not per labeled series.
	if n := strings.Count(out, "# TYPE krisp_busy_cus gauge"); n != 1 {
		t.Errorf("TYPE header for krisp_busy_cus appears %d times, want 1", n)
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := New()
	r.Counter("krisp_a_total", "help a").Add(3)
	h := r.Histogram("krisp_b_us", "", []float64{10})
	h.Observe(5)
	h.Observe(500)

	snap := r.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("%d snapshot entries, want 2", len(snap))
	}
	b, err := json.Marshal(snap)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var back []MetricSnapshot
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if back[0].Name != "krisp_a_total" || back[0].Type != "counter" || back[0].Value != 3 {
		t.Errorf("counter snapshot = %+v", back[0])
	}
	hs := back[1]
	if hs.Type != "histogram" || hs.Count != 2 || hs.Sum != 505 {
		t.Errorf("histogram snapshot = %+v", hs)
	}
	if len(hs.Buckets) != 2 || hs.Buckets[1].LE != "+Inf" || hs.Buckets[1].Count != 2 {
		t.Errorf("histogram buckets = %+v", hs.Buckets)
	}
}

// TestConcurrentWrites drives one shared counter, gauge, and histogram from
// many goroutines — the shape of parallel grid cells writing the
// process-wide registry — and checks the totals are exact. Run under -race
// in CI, this is the registry's concurrency contract.
func TestConcurrentWrites(t *testing.T) {
	r := New()
	const workers, perWorker = 16, 2000
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			// Registration races too: every worker get-or-registers.
			c := r.Counter("krisp_conc_total", "")
			g := r.Gauge("krisp_conc_gauge", "")
			h := r.Histogram("krisp_conc_us", "", []float64{1, 2, 4, 8})
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i % 10))
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("krisp_conc_total", "").Value(); got != workers*perWorker {
		t.Errorf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := r.Gauge("krisp_conc_gauge", "").Value(); got != workers*perWorker {
		t.Errorf("gauge = %d, want %d", got, workers*perWorker)
	}
	h := r.Histogram("krisp_conc_us", "", []float64{1, 2, 4, 8})
	if h.Count() != workers*perWorker {
		t.Errorf("histogram count = %d, want %d", h.Count(), workers*perWorker)
	}
}

func TestExpBuckets(t *testing.T) {
	b := ExpBuckets(1, 2, 4)
	want := []float64{1, 2, 4, 8}
	for i := range want {
		if b[i] != want[i] {
			t.Errorf("bucket %d = %g, want %g", i, b[i], want[i])
		}
	}
	if len(LatencyBucketsUs()) != 24 || len(LatencyBucketsMs()) != 16 {
		t.Error("default bucket shapes changed")
	}
}
