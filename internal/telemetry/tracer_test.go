package telemetry

import (
	"bytes"
	"encoding/json"
	"testing"
)

// chromeTrace mirrors the document WriteChromeTrace emits, for decoding in
// tests the same way Perfetto would.
type chromeTrace struct {
	DisplayTimeUnit string `json:"displayTimeUnit"`
	TraceEvents     []struct {
		Name string         `json:"name"`
		Cat  string         `json:"cat"`
		Ph   string         `json:"ph"`
		Ts   float64        `json:"ts"`
		Dur  *float64       `json:"dur"`
		Pid  int            `json:"pid"`
		Tid  int            `json:"tid"`
		S    string         `json:"s"`
		Args map[string]any `json:"args"`
	} `json:"traceEvents"`
}

func decodeTrace(t *testing.T, tr *Tracer) chromeTrace {
	t.Helper()
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	var doc chromeTrace
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, buf.String())
	}
	return doc
}

func TestWriteChromeTrace(t *testing.T) {
	tr := NewTracer()
	tr.NameProcess(0, "gpu0")
	tr.NameThread(0, 3, "hsa-queue-3")
	tr.Span("hsa", "kernel:gemm", 0, 3, 10, 42.5)
	tr.SpanArg("hsa", "queue_wait", 0, 3, 2, 10, "depth", 4)
	tr.Instant("core", "widen", 0, 3, 50, "level", 1)
	tr.CounterEvent("se_occupancy", 0, 42.5, []string{"se0", "se1"}, []float64{7, 5})

	doc := decodeTrace(t, tr)
	if doc.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	// 2 metadata + 4 recorded events.
	if len(doc.TraceEvents) != 6 {
		t.Fatalf("%d events, want 6", len(doc.TraceEvents))
	}
	m0 := doc.TraceEvents[0]
	if m0.Ph != "M" || m0.Name != "process_name" || m0.Args["name"] != "gpu0" {
		t.Errorf("first event is not process metadata: %+v", m0)
	}
	m1 := doc.TraceEvents[1]
	if m1.Ph != "M" || m1.Name != "thread_name" || m1.Tid != 3 {
		t.Errorf("second event is not thread metadata: %+v", m1)
	}
	span := doc.TraceEvents[2]
	if span.Ph != "X" || span.Name != "kernel:gemm" || span.Ts != 10 || span.Dur == nil || *span.Dur != 32.5 {
		t.Errorf("span event wrong: %+v", span)
	}
	arg := doc.TraceEvents[3]
	if arg.Args["depth"] != 4.0 {
		t.Errorf("span arg not carried: %+v", arg)
	}
	inst := doc.TraceEvents[4]
	if inst.Ph != "i" || inst.S != "t" || inst.Args["level"] != 1.0 {
		t.Errorf("instant event wrong: %+v", inst)
	}
	ctr := doc.TraceEvents[5]
	if ctr.Ph != "C" || ctr.Args["se0"] != 7.0 || ctr.Args["se1"] != 5.0 {
		t.Errorf("counter event wrong: %+v", ctr)
	}
}

func TestWriteChromeTraceEmptyAndNil(t *testing.T) {
	for name, tr := range map[string]*Tracer{"nil": nil, "empty": NewTracer()} {
		doc := decodeTrace(t, tr)
		if len(doc.TraceEvents) != 0 {
			t.Errorf("%s tracer emitted %d events", name, len(doc.TraceEvents))
		}
	}
}

func TestTracerCounts(t *testing.T) {
	tr := NewTracer()
	tr.Span("hsa", "a", 0, 0, 0, 1)
	tr.Span("hsa", "b", 0, 0, 1, 2)
	tr.Span("core", "c", 0, 0, 2, 3)
	if tr.Len() != 3 {
		t.Errorf("Len = %d, want 3", tr.Len())
	}
	if tr.CountCat("hsa") != 2 || tr.CountCat("core") != 1 || tr.CountCat("x") != 0 {
		t.Errorf("CountCat wrong: hsa=%d core=%d", tr.CountCat("hsa"), tr.CountCat("core"))
	}
	if got := len(tr.Events()); got != 3 {
		t.Errorf("Events len = %d", got)
	}
}

func TestCounterEventSeriesClamped(t *testing.T) {
	tr := NewTracer()
	keys := make([]string, maxCtrSeries+4)
	vals := make([]float64, maxCtrSeries+4)
	for i := range keys {
		keys[i] = string(rune('a' + i))
		vals[i] = float64(i)
	}
	tr.CounterEvent("big", 0, 0, keys, vals)
	ev := tr.Events()[0]
	if ev.NCtr != maxCtrSeries {
		t.Errorf("NCtr = %d, want %d", ev.NCtr, maxCtrSeries)
	}
}
