package telemetry

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// splitName separates a registered name into its base metric name and its
// baked-in label set: `krisp_gpu_busy_cus{gpu="0"}` → ("krisp_gpu_busy_cus",
// `gpu="0"`). Names without labels return an empty label string.
func splitName(name string) (base, labels string) {
	i := strings.IndexByte(name, '{')
	if i < 0 {
		return name, ""
	}
	return name[:i], strings.TrimSuffix(name[i+1:], "}")
}

// joinLabels renders a label body plus an optional extra label as a
// {...} block, or "" when both are empty.
func joinLabels(labels, extra string) string {
	switch {
	case labels == "" && extra == "":
		return ""
	case labels == "":
		return "{" + extra + "}"
	case extra == "":
		return "{" + labels + "}"
	default:
		return "{" + labels + "," + extra + "}"
	}
}

func formatLE(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders every registered metric in the Prometheus text
// exposition format (version 0.0.4), sorted by name so scrapes are
// deterministic. Labeled series sharing a base name emit one HELP/TYPE
// header (first occurrence wins).
func (r *Registry) WritePrometheus(w io.Writer) error {
	seenHeader := make(map[string]bool)
	header := func(base, help, typ string) {
		if seenHeader[base] {
			return
		}
		seenHeader[base] = true
		if help != "" {
			fmt.Fprintf(w, "# HELP %s %s\n", base, help)
		}
		fmt.Fprintf(w, "# TYPE %s %s\n", base, typ)
	}
	var err error
	for _, name := range r.sortedNames() {
		r.mu.RLock()
		c := r.counters[name]
		g := r.gauges[name]
		h := r.histograms[name]
		r.mu.RUnlock()
		base, labels := splitName(name)
		switch {
		case c != nil:
			header(base, c.help, "counter")
			_, err = fmt.Fprintf(w, "%s%s %d\n", base, joinLabels(labels, ""), c.Value())
		case g != nil:
			header(base, g.help, "gauge")
			_, err = fmt.Fprintf(w, "%s%s %d\n", base, joinLabels(labels, ""), g.Value())
		case h != nil:
			header(base, h.help, "histogram")
			cum := uint64(0)
			for i, n := range h.BucketCounts() {
				cum += n
				le := "+Inf"
				if i < len(h.bounds) {
					le = formatLE(h.bounds[i])
				}
				fmt.Fprintf(w, "%s_bucket%s %d\n", base, joinLabels(labels, `le="`+le+`"`), cum)
			}
			fmt.Fprintf(w, "%s_sum%s %g\n", base, joinLabels(labels, ""), h.Sum())
			_, err = fmt.Fprintf(w, "%s_count%s %d\n", base, joinLabels(labels, ""), h.Count())
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// BucketSnapshot is one cumulative histogram bucket in a Snapshot. LE is a
// string so the +Inf bucket survives JSON encoding.
type BucketSnapshot struct {
	LE    string `json:"le"`
	Count uint64 `json:"count"`
}

// MetricSnapshot is one metric's point-in-time state, JSON-friendly for the
// /debug/telemetry endpoint.
type MetricSnapshot struct {
	Name  string  `json:"name"`
	Type  string  `json:"type"`
	Help  string  `json:"help,omitempty"`
	Value float64 `json:"value"`
	// Histogram-only fields.
	Count   uint64           `json:"count,omitempty"`
	Sum     float64          `json:"sum,omitempty"`
	Buckets []BucketSnapshot `json:"buckets,omitempty"`
}

// Snapshot captures every registered metric, sorted by name. Counter and
// gauge snapshots carry Value; histograms carry Count/Sum/Buckets
// (cumulative, Prometheus-style) with Value left at the observation count.
func (r *Registry) Snapshot() []MetricSnapshot {
	names := r.sortedNames()
	out := make([]MetricSnapshot, 0, len(names))
	for _, name := range names {
		r.mu.RLock()
		c := r.counters[name]
		g := r.gauges[name]
		h := r.histograms[name]
		r.mu.RUnlock()
		switch {
		case c != nil:
			out = append(out, MetricSnapshot{Name: name, Type: "counter", Help: c.help, Value: float64(c.Value())})
		case g != nil:
			out = append(out, MetricSnapshot{Name: name, Type: "gauge", Help: g.help, Value: float64(g.Value())})
		case h != nil:
			s := MetricSnapshot{Name: name, Type: "histogram", Help: h.help, Count: h.Count(), Sum: h.Sum()}
			s.Value = float64(s.Count)
			cum := uint64(0)
			for i, n := range h.BucketCounts() {
				cum += n
				le := "+Inf"
				if i < len(h.bounds) {
					le = formatLE(h.bounds[i])
				}
				s.Buckets = append(s.Buckets, BucketSnapshot{LE: le, Count: cum})
			}
			out = append(out, s)
		}
	}
	return out
}
