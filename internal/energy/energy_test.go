package energy

import (
	"math"
	"testing"

	"krisp/internal/gpu"
	"krisp/internal/sim"
)

func TestPowerModel(t *testing.T) {
	m := MI50Power()
	if got := m.Power(0); got != 75 {
		t.Errorf("idle power = %v, want 75", got)
	}
	if got := m.Power(60); got != 300 {
		t.Errorf("full power = %v, want 300", got)
	}
}

func TestMeterIntegratesPiecewise(t *testing.T) {
	m := NewMeter(Model{IdleW: 100, PerCUW: 1})
	// 0-10us idle (100W), 10-30us with 50 CUs (150W), 30-40us idle.
	m.ObserveState(10, 50, 1)
	m.ObserveState(30, 0, 0)
	got := m.EnergyJ(40)
	want := (100*10 + 150*20 + 100*10) / 1e6
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("EnergyJ = %v, want %v", got, want)
	}
}

func TestMeterReset(t *testing.T) {
	m := NewMeter(Model{IdleW: 100, PerCUW: 2})
	m.ObserveState(10, 30, 1)
	m.Reset(20)
	// After reset, only the 20-30us window counts: 160W x 10us.
	got := m.EnergyJ(30)
	want := 160 * 10 / 1e6
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("EnergyJ after reset = %v, want %v", got, want)
	}
}

func TestMeterIdempotentReads(t *testing.T) {
	m := NewMeter(MI50Power())
	m.ObserveState(100, 10, 1)
	a := m.EnergyJ(200)
	b := m.EnergyJ(200)
	if a != b {
		t.Errorf("repeated reads differ: %v vs %v", a, b)
	}
}

func TestPerInference(t *testing.T) {
	if got := PerInference(10, 4); got != 2.5 {
		t.Errorf("PerInference = %v, want 2.5", got)
	}
	if PerInference(10, 0) != 0 {
		t.Error("zero inferences should yield 0")
	}
}

// TestMeterWithDevice wires the meter into a gpu.Device and checks that a
// kernel on fewer CUs consumes less energy than the same work spread wide
// but idle-padded — the Fig. 8 conserved-policy effect.
func TestMeterWithDevice(t *testing.T) {
	run := func(cus int) float64 {
		eng := sim.New()
		meter := NewMeter(MI50Power())
		dev := gpu.NewDevice(eng, gpu.MI50Spec(), meter)
		// 1-wave kernel on `cus` CUs within one SE: same duration
		// regardless of cus (for cus >= 12), different busy count.
		work := gpu.KernelWork{Workgroups: cus * 10, ThreadsPerWG: 256, WGTime: 100, Tail: 1}
		dev.Launch(work, gpu.RangeMask(gpu.MI50, 0, cus), nil)
		eng.Run()
		return meter.EnergyJ(eng.Now())
	}
	e12, e15 := run(12), run(15)
	if e12 >= e15 {
		t.Errorf("12-CU energy %v should be below 15-CU energy %v", e12, e15)
	}
}
