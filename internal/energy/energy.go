// Package energy models GPU power draw and integrates it over virtual time,
// standing in for the paper's rocm-smi sampling when computing energy per
// inference (Fig. 13c) and the distribution-policy energy effects (Fig. 8).
//
// Power is piecewise constant between device state changes:
//
//	P = Idle + PerCU x busyCUs
//
// which captures the two effects the paper reports: co-location amortizes
// idle power across more inferences, and CU-conserving allocation policies
// power fewer CUs for the same work.
package energy

import (
	"krisp/internal/sim"
)

// Model holds the power parameters, in watts.
type Model struct {
	// IdleW is the static draw of the powered-on device.
	IdleW float64
	// PerCUW is the additional draw of each busy CU.
	PerCUW float64
}

// MI50Power approximates the MI50: 75W idle, 300W with all 60 CUs busy.
func MI50Power() Model {
	return Model{IdleW: 75, PerCUW: 3.75}
}

// Power returns the instantaneous draw with busyCUs CUs active.
func (m Model) Power(busyCUs int) float64 {
	return m.IdleW + m.PerCUW*float64(busyCUs)
}

// Meter integrates power over virtual time. It implements gpu.Meter, so it
// can be attached to a gpu.Device at construction.
type Meter struct {
	model    Model
	lastTime sim.Time
	lastBusy int
	joules   float64
}

// NewMeter creates a meter that starts integrating at time zero with an
// idle device.
func NewMeter(model Model) *Meter {
	return &Meter{model: model}
}

// ObserveState banks the energy accrued since the previous state change
// and records the new busy-CU count. It satisfies gpu.Meter.
func (m *Meter) ObserveState(now sim.Time, busyCUs, kernels int) {
	m.accumulate(now)
	m.lastBusy = busyCUs
}

func (m *Meter) accumulate(now sim.Time) {
	if now > m.lastTime {
		// watts x microseconds -> microjoules -> joules.
		m.joules += m.model.Power(m.lastBusy) * (now - m.lastTime) / 1e6
		m.lastTime = now
	}
}

// EnergyJ returns the total energy in joules consumed up to virtual time
// now (which must not precede the last observed state change).
func (m *Meter) EnergyJ(now sim.Time) float64 {
	m.accumulate(now)
	return m.joules
}

// Reset zeroes the integral, starting a fresh measurement window at now
// while keeping the current busy state.
func (m *Meter) Reset(now sim.Time) {
	m.accumulate(now)
	m.joules = 0
}

// Rezero returns the meter to its just-constructed state — clock at zero,
// idle device, empty integral — for reuse against a reset engine.
func (m *Meter) Rezero() {
	m.lastTime = 0
	m.lastBusy = 0
	m.joules = 0
}

// PerInference divides total energy by completed inferences; zero
// inferences yields 0.
func PerInference(joules float64, inferences int) float64 {
	if inferences <= 0 {
		return 0
	}
	return joules / float64(inferences)
}
