package faults

import (
	"testing"

	"krisp/internal/gpu"
)

func TestNodeFaultKindString(t *testing.T) {
	if NodeDown.String() != "node-down" || GPUDegrade.String() != "gpu-degrade" {
		t.Fatal("bad kind names")
	}
	if NodeFaultKind(99).String() != "unknown" {
		t.Fatal("unknown kind not handled")
	}
}

func TestCUDegradesLowering(t *testing.T) {
	topo := gpu.MI50Spec().Topo
	f := NodeFault{At: 100, Node: 2, Kind: GPUDegrade, GPU: 1, Stretch: 2.5, Duration: 500}
	ds := f.CUDegrades(topo)
	if len(ds) != topo.TotalCUs() {
		t.Fatalf("lowered %d degrades, want one per CU (%d)", len(ds), topo.TotalCUs())
	}
	seen := map[int]bool{}
	for _, d := range ds {
		if d.At != 100 || d.GPU != 1 || d.Stretch != 2.5 || d.Duration != 500 {
			t.Fatalf("degrade lost fault fields: %+v", d)
		}
		if seen[d.CU] {
			t.Fatalf("CU %d degraded twice", d.CU)
		}
		seen[d.CU] = true
	}
}

func TestCUDegradesOnlyForGPUDegrade(t *testing.T) {
	topo := gpu.MI50Spec().Topo
	if got := (NodeFault{Kind: NodeDown}).CUDegrades(topo); got != nil {
		t.Fatalf("NodeDown lowered to %d CU degrades", len(got))
	}
	if got := (NodeFault{Kind: GPUDegrade, Stretch: 0}).CUDegrades(topo); got != nil {
		t.Fatal("zero-stretch degrade lowered to events")
	}
}
