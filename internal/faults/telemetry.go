package faults

import tele "krisp/internal/telemetry"

// Telemetry mirrors the injected-fault Stats counters into the metrics
// registry so live scrapes can see fault pressure without waiting for the
// run's report. One set per injector (faults are planned per run, not per
// GPU); a nil *Telemetry disables everything.
type Telemetry struct {
	CUKills          *tele.Counter
	CUDegrades       *tele.Counter
	QueueStalls      *tele.Counter
	IOCTLFailures    *tele.Counter
	IOCTLDelays      *tele.Counter
	KernelStragglers *tele.Counter
	KernelFailures   *tele.Counter
	HealthRemasks    *tele.Counter
}

// NewTelemetry resolves the fault counters against the hub. Returns nil
// when the hub carries no registry.
func NewTelemetry(hub *tele.Hub) *Telemetry {
	reg := hub.Registry()
	if reg == nil {
		return nil
	}
	return &Telemetry{
		CUKills:          reg.Counter("krisp_faults_cu_kills_total", "CU kills injected"),
		CUDegrades:       reg.Counter("krisp_faults_cu_degrades_total", "CU degradations injected"),
		QueueStalls:      reg.Counter("krisp_faults_queue_stalls_total", "queue stalls injected"),
		IOCTLFailures:    reg.Counter("krisp_faults_ioctl_failures_total", "CU-mask IOCTL failures injected"),
		IOCTLDelays:      reg.Counter("krisp_faults_ioctl_delays_total", "CU-mask IOCTL latency spikes injected"),
		KernelStragglers: reg.Counter("krisp_faults_kernel_stragglers_total", "kernel stragglers injected"),
		KernelFailures:   reg.Counter("krisp_faults_kernel_failures_total", "transient kernel failures injected"),
		HealthRemasks:    reg.Counter("krisp_faults_health_remasks_total", "dispatch masks shrunk around dead CUs"),
	}
}

// SetTelemetry installs (or removes, with nil) the injector's telemetry.
func (in *Injector) SetTelemetry(t *Telemetry) { in.tel = t }
