package faults

import (
	"krisp/internal/gpu"
	"krisp/internal/sim"
)

// NodeFaultKind classifies cluster-level faults — failures above the
// single-device granularity of Plan, consumed by internal/cluster's fleet
// controller rather than the per-node Injector.
type NodeFaultKind int

const (
	// NodeDown crashes a whole node: every replica on it is lost, queued
	// and in-flight requests fail, and the node stops advancing until (and
	// unless) it recovers.
	NodeDown NodeFaultKind = iota
	// GPUDegrade slows every CU of one GPU on the node (thermal throttle,
	// ECC storm). It lowers the node's effective service rate without
	// taking replicas away — the regime SLO-aware routing must detect.
	GPUDegrade
	// NodeGray gray-fails a whole node: every CU of every GPU is stretched
	// and a fraction of kernel dispatches become stragglers. The node stays
	// up, keeps accepting work, and serves it slowly — the failure mode
	// health checks miss and circuit breakers exist for.
	NodeGray
	// NodeStall freezes the first HSA queue of every GPU on the node for
	// Duration (hung packet processors; only a watchdog recovers a very
	// long one).
	NodeStall
)

func (k NodeFaultKind) String() string {
	switch k {
	case NodeDown:
		return "node-down"
	case GPUDegrade:
		return "gpu-degrade"
	case NodeGray:
		return "node-gray"
	case NodeStall:
		return "node-stall"
	default:
		return "unknown"
	}
}

// NodeFault is one cluster-level fault event on the fleet clock.
type NodeFault struct {
	At   sim.Time
	Node int
	Kind NodeFaultKind
	// GPU is the device index on the node (GPUDegrade only).
	GPU int
	// Stretch is the per-wave slowdown for GPUDegrade and NodeGray
	// (1.0 ≈ half speed).
	Stretch float64
	// StragglerProb is the per-dispatch straggler probability for NodeGray
	// (lowered into the node plan's kernel fault model).
	StragglerProb float64
	// Duration bounds the fault; zero means it lasts for the rest of the
	// run. For NodeDown a recovered node rejoins empty — its replicas do
	// not come back, the placer must re-place them.
	Duration sim.Duration
}

// Lower folds a node-scoped fault into the node-local plan a server.Node
// replays. GPUDegrade becomes per-CU degrades on its device; NodeGray
// degrades every device and raises the kernel straggler probability;
// NodeStall freezes each device's first queue. NodeDown stays a fleet-level
// event and lowers to nothing.
func (f NodeFault) Lower(topo gpu.Topology, gpus int, plan *Plan) {
	switch f.Kind {
	case GPUDegrade:
		plan.CUDegrades = append(plan.CUDegrades, f.CUDegrades(topo)...)
	case NodeGray:
		for g := 0; g < gpus; g++ {
			d := f
			d.Kind = GPUDegrade
			d.GPU = g
			plan.CUDegrades = append(plan.CUDegrades, d.CUDegrades(topo)...)
		}
		if f.StragglerProb > plan.Kernels.StragglerProb {
			plan.Kernels.StragglerProb = f.StragglerProb
		}
	case NodeStall:
		for g := 0; g < gpus; g++ {
			plan.QueueStalls = append(plan.QueueStalls, QueueStall{
				At: f.At, GPU: g, Queue: 0, Duration: f.Duration,
			})
		}
	}
}

// CUDegrades lowers a GPUDegrade node fault into the per-CU degrade events
// a node-local Plan understands, one per CU of the target device. Non-
// GPUDegrade faults return nil.
func (f NodeFault) CUDegrades(topo gpu.Topology) []CUDegrade {
	if f.Kind != GPUDegrade || f.Stretch <= 0 {
		return nil
	}
	out := make([]CUDegrade, 0, topo.TotalCUs())
	for cu := 0; cu < topo.TotalCUs(); cu++ {
		out = append(out, CUDegrade{
			At:       f.At,
			GPU:      f.GPU,
			CU:       cu,
			Stretch:  f.Stretch,
			Duration: f.Duration,
		})
	}
	return out
}
