package faults

import (
	"krisp/internal/gpu"
	"krisp/internal/sim"
)

// NodeFaultKind classifies cluster-level faults — failures above the
// single-device granularity of Plan, consumed by internal/cluster's fleet
// controller rather than the per-node Injector.
type NodeFaultKind int

const (
	// NodeDown crashes a whole node: every replica on it is lost, queued
	// and in-flight requests fail, and the node stops advancing until (and
	// unless) it recovers.
	NodeDown NodeFaultKind = iota
	// GPUDegrade slows every CU of one GPU on the node (thermal throttle,
	// ECC storm). It lowers the node's effective service rate without
	// taking replicas away — the regime SLO-aware routing must detect.
	GPUDegrade
)

func (k NodeFaultKind) String() string {
	switch k {
	case NodeDown:
		return "node-down"
	case GPUDegrade:
		return "gpu-degrade"
	default:
		return "unknown"
	}
}

// NodeFault is one cluster-level fault event on the fleet clock.
type NodeFault struct {
	At   sim.Time
	Node int
	Kind NodeFaultKind
	// GPU is the device index on the node (GPUDegrade only).
	GPU int
	// Stretch is the per-wave slowdown for GPUDegrade (1.0 ≈ half speed).
	Stretch float64
	// Duration bounds the fault; zero means it lasts for the rest of the
	// run. For NodeDown a recovered node rejoins empty — its replicas do
	// not come back, the placer must re-place them.
	Duration sim.Duration
}

// CUDegrades lowers a GPUDegrade node fault into the per-CU degrade events
// a node-local Plan understands, one per CU of the target device. Non-
// GPUDegrade faults return nil.
func (f NodeFault) CUDegrades(topo gpu.Topology) []CUDegrade {
	if f.Kind != GPUDegrade || f.Stretch <= 0 {
		return nil
	}
	out := make([]CUDegrade, 0, topo.TotalCUs())
	for cu := 0; cu < topo.TotalCUs(); cu++ {
		out = append(out, CUDegrade{
			At:       f.At,
			GPU:      f.GPU,
			CU:       cu,
			Stretch:  f.Stretch,
			Duration: f.Duration,
		})
	}
	return out
}
