package faults

import (
	"testing"

	"krisp/internal/gpu"
	"krisp/internal/hsa"
	"krisp/internal/sim"
)

func TestPlanEmpty(t *testing.T) {
	var nilPlan *Plan
	if !nilPlan.Empty() {
		t.Error("nil plan not empty")
	}
	if !(&Plan{}).Empty() {
		t.Error("zero plan not empty")
	}
	// Hardening knobs alone keep the plan empty.
	if !(&Plan{Seed: 7, MaxRetries: 5, WatchdogTimeout: 100}).Empty() {
		t.Error("knobs-only plan not empty")
	}
	cases := []Plan{
		{CUKills: []CUKill{{At: 1, CU: 0}}},
		{CUDegrades: []CUDegrade{{At: 1, CU: 0, Stretch: 1}}},
		{QueueStalls: []QueueStall{{At: 1, Duration: 10}}},
		{IOCTL: IOCTLFaults{FailProb: 0.1}},
		{IOCTL: IOCTLFaults{SlowProb: 0.1}},
		{Kernels: KernelFaults{StragglerProb: 0.1}},
		{Kernels: KernelFaults{TransientFailProb: 0.1}},
	}
	for i, p := range cases {
		if p.Empty() {
			t.Errorf("case %d: fault-bearing plan reported empty", i)
		}
	}
}

func TestDefaults(t *testing.T) {
	eng := sim.New()
	in := NewInjector(eng, Plan{})
	if in.MaxRetries() != 3 {
		t.Errorf("MaxRetries default = %d", in.MaxRetries())
	}
	if in.RetryBackoff() != 50 {
		t.Errorf("RetryBackoff default = %v", in.RetryBackoff())
	}
	if in.IOCTLFailureStreak() != 3 {
		t.Errorf("IOCTLFailureStreak default = %d", in.IOCTLFailureStreak())
	}
	in2 := NewInjector(eng, Plan{MaxRetries: 1, RetryBackoff: 7, IOCTLFailureStreak: 9})
	if in2.MaxRetries() != 1 || in2.RetryBackoff() != 7 || in2.IOCTLFailureStreak() != 9 {
		t.Error("explicit hardening knobs not honoured")
	}
}

func newStack() (*sim.Engine, *gpu.Device, *hsa.CommandProcessor) {
	eng := sim.New()
	dev := gpu.NewDevice(eng, gpu.MI50Spec(), nil)
	cp := hsa.NewCommandProcessor(eng, dev, hsa.DefaultConfig())
	return eng, dev, cp
}

func TestArmReplaysTimeline(t *testing.T) {
	eng, dev, cp := newStack()
	q := cp.NewQueue()
	in := NewInjector(eng, Plan{
		CUKills:     []CUKill{{At: 100, GPU: 0, CU: 5}},
		CUDegrades:  []CUDegrade{{At: 200, GPU: 0, CU: 6, Stretch: 1, Duration: 300}},
		QueueStalls: []QueueStall{{At: 250, GPU: 0, Queue: 0, Duration: 50}},
	})
	in.Arm([]*gpu.Device{dev}, []*hsa.CommandProcessor{cp})

	eng.RunUntil(150)
	if dev.HealthMask().Has(5) {
		t.Error("CU 5 still healthy after scheduled kill")
	}
	eng.RunUntil(220)
	if dev.DegradedCUs() != 1 {
		t.Errorf("DegradedCUs = %d at t=220", dev.DegradedCUs())
	}
	eng.RunUntil(260)
	if !q.Stalled() {
		t.Error("queue not stalled at t=260")
	}
	eng.RunUntil(1000)
	if dev.DegradedCUs() != 0 {
		t.Errorf("degrade window did not expire: %d degraded CUs", dev.DegradedCUs())
	}
	if q.Stalled() {
		t.Error("stall did not expire")
	}
	s := in.Stats
	if s.CUKills != 1 || s.CUDegrades != 1 || s.QueueStalls != 1 {
		t.Errorf("stats = %+v", s)
	}
}

func TestArmSkipsOutOfRangeTargets(t *testing.T) {
	eng, dev, cp := newStack()
	cp.NewQueue()
	in := NewInjector(eng, Plan{
		CUKills:     []CUKill{{At: 1, GPU: 3, CU: 0}},
		CUDegrades:  []CUDegrade{{At: 1, GPU: 0, CU: 999, Stretch: 1}},
		QueueStalls: []QueueStall{{At: 1, GPU: 0, Queue: 7, Duration: 10}},
	})
	in.Arm([]*gpu.Device{dev}, []*hsa.CommandProcessor{cp})
	eng.Run()
	s := in.Stats
	if s.CUKills != 0 || s.CUDegrades != 0 || s.QueueStalls != 0 {
		t.Errorf("out-of-range faults were applied: %+v", s)
	}
}

func TestProbabilisticDrawsDeterministicPerSeed(t *testing.T) {
	draw := func(seed int64) ([]bool, []float64) {
		eng := sim.New()
		in := NewInjector(eng, Plan{
			Seed:    seed,
			IOCTL:   IOCTLFaults{FailProb: 0.3, SlowProb: 0.3, SlowExtra: 11},
			Kernels: KernelFaults{StragglerProb: 0.3, StragglerStretch: 2, TransientFailProb: 0.3},
		})
		var fails []bool
		var stretches []float64
		for i := 0; i < 200; i++ {
			f, _ := in.IOCTLOutcome()
			fails = append(fails, f)
			s, kf := in.KernelOutcome()
			stretches = append(stretches, s)
			fails = append(fails, kf)
		}
		return fails, stretches
	}
	f1, s1 := draw(42)
	f2, s2 := draw(42)
	f3, _ := draw(43)
	for i := range f1 {
		if f1[i] != f2[i] {
			t.Fatalf("same-seed draw %d differs", i)
		}
	}
	for i := range s1 {
		if s1[i] != s2[i] {
			t.Fatalf("same-seed stretch %d differs", i)
		}
	}
	same := true
	for i := range f1 {
		if f1[i] != f3[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical draw sequences")
	}
}

func TestZeroProbDrawsNothing(t *testing.T) {
	eng := sim.New()
	in := NewInjector(eng, Plan{})
	for i := 0; i < 100; i++ {
		if fail, extra := in.IOCTLOutcome(); fail || extra != 0 {
			t.Fatal("zero-prob IOCTL outcome non-clean")
		}
		if stretch, fail := in.KernelOutcome(); stretch != 1 || fail {
			t.Fatal("zero-prob kernel outcome non-clean")
		}
	}
	s := in.Stats
	if s.IOCTLFailures+s.IOCTLDelays+s.KernelStragglers+s.KernelTransientFailures != 0 {
		t.Errorf("stats accumulated without faults: %+v", s)
	}
}

func TestStragglerStretchDefault(t *testing.T) {
	eng := sim.New()
	in := NewInjector(eng, Plan{Kernels: KernelFaults{StragglerProb: 1}})
	stretch, _ := in.KernelOutcome()
	if stretch != 4 {
		t.Errorf("default straggler stretch = %v, want 4", stretch)
	}
	in2 := NewInjector(eng, Plan{Kernels: KernelFaults{StragglerProb: 1, StragglerStretch: 2.5}})
	if s, _ := in2.KernelOutcome(); s != 2.5 {
		t.Errorf("explicit straggler stretch = %v, want 2.5", s)
	}
}
