// Package faults is a deterministic, seed-driven fault injector for the
// KRISP simulation stack. Real spatially-partitioned fleets see degraded
// CUs, stuck packet processors, failed or slow CU-mask reconfigurations,
// and straggler kernels; a Plan describes such a fault timeline and an
// Injector replays it against the simulated devices and command
// processors, on the sim.Engine clock, with every probabilistic draw taken
// from the plan's seed so a chaos run is exactly reproducible.
//
// The injector is strictly opt-in: an empty Plan arms nothing, installs no
// hooks, schedules no events, and draws no random numbers, so a fault-free
// run is bit-identical to one on a build without this package.
package faults

import (
	"math/rand"

	"krisp/internal/gpu"
	"krisp/internal/hsa"
	"krisp/internal/sim"
)

// CUKill schedules the permanent death of one CU at a point in virtual
// time. The device re-masks in-flight and future launches around it; the
// last healthy CU of a device is never killed.
type CUKill struct {
	At  sim.Time
	GPU int // device index; out-of-range entries are ignored
	CU  int
}

// CUDegrade slows one CU by Stretch (extra per-wave cost: 1.0 ≈ half
// speed) for Duration of virtual time; a zero Duration degrades it for the
// rest of the run.
type CUDegrade struct {
	At       sim.Time
	GPU      int
	CU       int
	Stretch  float64
	Duration sim.Duration
}

// QueueStall freezes one HSA queue's packet processor for Duration
// starting at At. Queue indexes the device's queues in creation order (the
// worker index on that GPU). A very large Duration models a hung packet
// processor that only a watchdog reset recovers.
type QueueStall struct {
	At       sim.Time
	GPU      int
	Queue    int
	Duration sim.Duration
}

// IOCTLFaults is the probabilistic fault model of the CU-mask IOCTL — the
// reconfiguration path the paper's emulation methodology leans on and the
// one ECLIP identifies as too expensive to exercise per kernel.
type IOCTLFaults struct {
	// FailProb is the probability a SetCUMask IOCTL fails outright (the
	// latency is paid, the mask does not change).
	FailProb float64
	// SlowProb is the probability the IOCTL takes SlowExtra longer,
	// lengthening the global IOCTL serialization window.
	SlowProb  float64
	SlowExtra sim.Duration
}

// KernelFaults is the probabilistic per-dispatch fault model.
type KernelFaults struct {
	// StragglerProb turns a dispatch into a straggler whose execution time
	// multiplies by StragglerStretch (default 4x when zero).
	StragglerProb    float64
	StragglerStretch float64
	// TransientFailProb makes a dispatch run to completion but fail — the
	// hardened runtime retries it with exponential backoff.
	TransientFailProb float64
}

// Plan is a complete fault scenario plus the knobs of the hardened serving
// path that reacts to it. The zero value is the empty plan: nothing is
// injected and the serving path is byte-for-byte the fault-free one.
type Plan struct {
	// Seed drives every probabilistic draw; runs with equal seeds and
	// plans are identical.
	Seed int64

	CUKills     []CUKill
	CUDegrades  []CUDegrade
	QueueStalls []QueueStall
	IOCTL       IOCTLFaults
	Kernels     KernelFaults

	// MaxRetries bounds relaunches of a transiently-failed kernel before
	// it is abandoned (the batch continues without it). Zero means 3.
	MaxRetries int
	// RetryBackoff is the first retry delay; it doubles per attempt.
	// Zero means 50us.
	RetryBackoff sim.Duration
	// IOCTLFailureStreak is the consecutive SetCUMask failure count that
	// drops an emulated KRISP runtime from kernel-scoped masking to its
	// stream-scoped mask (one rung down the degradation ladder). Zero
	// means 3.
	IOCTLFailureStreak int
	// WatchdogTimeout is the per-batch watchdog deadline in virtual time;
	// zero auto-sizes from the slowest worker's isolated latency.
	WatchdogTimeout sim.Duration
	// SLOP99 is the windowed-p99 batch-latency threshold above which the
	// SLO guard widens masks (degradation ladder up); zero auto-sizes.
	SLOP99 sim.Duration
	// SLOWindow is the guard's sampling window; zero auto-sizes.
	SLOWindow sim.Duration
	// SLOCooldown is how long the guard waits after a widening before it
	// re-tightens; zero means two windows.
	SLOCooldown sim.Duration
}

// Empty reports whether the plan injects nothing. Hardening knobs alone do
// not make a plan non-empty: with no fault sources the hardened path is
// not armed at all, which is what keeps an empty-plan run bit-identical
// to a nil-plan run.
func (p *Plan) Empty() bool {
	if p == nil {
		return true
	}
	return len(p.CUKills) == 0 && len(p.CUDegrades) == 0 && len(p.QueueStalls) == 0 &&
		p.IOCTL.FailProb == 0 && p.IOCTL.SlowProb == 0 &&
		p.Kernels.StragglerProb == 0 && p.Kernels.TransientFailProb == 0
}

// Stats aggregates what the injector did and how the hardened serving path
// reacted. It is shared (single simulation goroutine) by the injector, the
// runtimes, and the server watchdog/SLO guard, and surfaced on
// server.Result.
type Stats struct {
	// Injected faults.
	CUKills                 int `json:"cu_kills,omitempty"`
	CUDegrades              int `json:"cu_degrades,omitempty"`
	QueueStalls             int `json:"queue_stalls,omitempty"`
	IOCTLFailures           int `json:"ioctl_failures,omitempty"`
	IOCTLDelays             int `json:"ioctl_delays,omitempty"`
	KernelStragglers        int `json:"kernel_stragglers,omitempty"`
	KernelTransientFailures int `json:"kernel_transient_failures,omitempty"`

	// Reactions of the hardened serving path.
	KernelRetries    int `json:"kernel_retries,omitempty"`
	KernelsAbandoned int `json:"kernels_abandoned,omitempty"`
	// HealthRemasks counts dispatches whose resource mask was shrunk
	// around dead CUs.
	HealthRemasks int `json:"health_remasks,omitempty"`
	// MaskFallbacks counts kernels that ran on the stale stream mask
	// because their kernel-scoped mask set failed (ladder rung 1, per
	// kernel).
	MaskFallbacks int `json:"mask_fallbacks,omitempty"`
	// StreamFallbacks / FullGPUFallbacks count degradation-ladder
	// transitions: kernel-scoped → stream-scoped and stream-scoped →
	// full-GPU.
	StreamFallbacks  int `json:"stream_fallbacks,omitempty"`
	FullGPUFallbacks int `json:"full_gpu_fallbacks,omitempty"`
	// LadderTightenings counts steps back toward kernel-scoped masking
	// after a cool-down.
	LadderTightenings int `json:"ladder_tightenings,omitempty"`
	WatchdogTrips     int `json:"watchdog_trips,omitempty"`
	WatchdogResets    int `json:"watchdog_resets,omitempty"`
	SLOWidenings      int `json:"slo_widenings,omitempty"`
	// DegradedTime sums, across runtimes, the virtual time spent above
	// ladder level 0 (runtime-microseconds).
	DegradedTime sim.Duration `json:"degraded_time_us,omitempty"`
}

// Injector replays a Plan against a simulation stack. Create one per run
// with NewInjector, install it on each command processor (it implements
// hsa.FaultHook), and Arm it once the devices and queues exist.
type Injector struct {
	plan  Plan
	eng   *sim.Engine
	rng   *rand.Rand
	Stats Stats
	// tel, when non-nil, mirrors the Stats increments into live metrics.
	// Telemetry only observes — it never draws from rng or schedules
	// events, so enabling it cannot perturb the fault timeline.
	tel *Telemetry
}

// NewInjector binds a plan to an engine. The plan is copied; defaults for
// the hardening knobs are resolved by the accessors below.
func NewInjector(eng *sim.Engine, plan Plan) *Injector {
	return &Injector{
		plan: plan,
		eng:  eng,
		rng:  rand.New(rand.NewSource(plan.Seed ^ 0x6b72697370)), // "krisp"
	}
}

// Plan returns the injector's plan.
func (in *Injector) Plan() Plan { return in.plan }

// MaxRetries resolves the plan's retry bound (default 3).
func (in *Injector) MaxRetries() int {
	if in.plan.MaxRetries > 0 {
		return in.plan.MaxRetries
	}
	return 3
}

// RetryBackoff resolves the first retry delay (default 50us).
func (in *Injector) RetryBackoff() sim.Duration {
	if in.plan.RetryBackoff > 0 {
		return in.plan.RetryBackoff
	}
	return 50
}

// IOCTLFailureStreak resolves the ladder's consecutive-failure trigger
// (default 3).
func (in *Injector) IOCTLFailureStreak() int {
	if in.plan.IOCTLFailureStreak > 0 {
		return in.plan.IOCTLFailureStreak
	}
	return 3
}

// Arm schedules the plan's deterministic fault timeline against the given
// devices and command processors (index i of each slice is GPU i). Entries
// referencing a GPU, CU, or queue that does not exist are skipped. Arm
// must be called after the serving stack has created its queues.
func (in *Injector) Arm(devs []*gpu.Device, cps []*hsa.CommandProcessor) {
	schedule := func(at sim.Time, fn func()) {
		if at < in.eng.Now() {
			at = in.eng.Now()
		}
		in.eng.At(at, fn)
	}
	for _, k := range in.plan.CUKills {
		k := k
		if k.GPU < 0 || k.GPU >= len(devs) {
			continue
		}
		schedule(k.At, func() {
			if devs[k.GPU].KillCU(k.CU) {
				in.Stats.CUKills++
				if in.tel != nil {
					in.tel.CUKills.Inc()
				}
			}
		})
	}
	for _, dgr := range in.plan.CUDegrades {
		dgr := dgr
		if dgr.GPU < 0 || dgr.GPU >= len(devs) || dgr.Stretch <= 0 {
			continue
		}
		schedule(dgr.At, func() {
			dev := devs[dgr.GPU]
			if dgr.CU < 0 || dgr.CU >= dev.Spec.Topo.TotalCUs() {
				return
			}
			dev.SetCUDegrade(dgr.CU, dgr.Stretch)
			in.Stats.CUDegrades++
			if in.tel != nil {
				in.tel.CUDegrades.Inc()
			}
			if dgr.Duration > 0 {
				in.eng.After(dgr.Duration, func() { dev.SetCUDegrade(dgr.CU, 0) })
			}
		})
	}
	for _, st := range in.plan.QueueStalls {
		st := st
		if st.GPU < 0 || st.GPU >= len(cps) || st.Duration <= 0 {
			continue
		}
		schedule(st.At, func() {
			q := cps[st.GPU].Queue(st.Queue)
			if q == nil {
				return
			}
			q.StallFor(st.Duration)
			in.Stats.QueueStalls++
			if in.tel != nil {
				in.tel.QueueStalls.Inc()
			}
		})
	}
}

// IOCTLOutcome implements hsa.FaultHook. Draws happen only for non-zero
// probabilities, keeping the RNG stream stable across plans that do not
// use a given fault class.
func (in *Injector) IOCTLOutcome() (fail bool, extra sim.Duration) {
	f := in.plan.IOCTL
	if f.FailProb > 0 && in.rng.Float64() < f.FailProb {
		in.Stats.IOCTLFailures++
		if in.tel != nil {
			in.tel.IOCTLFailures.Inc()
		}
		return true, 0
	}
	if f.SlowProb > 0 && in.rng.Float64() < f.SlowProb {
		in.Stats.IOCTLDelays++
		if in.tel != nil {
			in.tel.IOCTLDelays.Inc()
		}
		return false, f.SlowExtra
	}
	return false, 0
}

// KernelOutcome implements hsa.FaultHook.
func (in *Injector) KernelOutcome() (stretch float64, fail bool) {
	k := in.plan.Kernels
	stretch = 1
	if k.StragglerProb > 0 && in.rng.Float64() < k.StragglerProb {
		in.Stats.KernelStragglers++
		if in.tel != nil {
			in.tel.KernelStragglers.Inc()
		}
		stretch = k.StragglerStretch
		if stretch <= 1 {
			stretch = 4
		}
	}
	if k.TransientFailProb > 0 && in.rng.Float64() < k.TransientFailProb {
		in.Stats.KernelTransientFailures++
		if in.tel != nil {
			in.tel.KernelFailures.Inc()
		}
		fail = true
	}
	return stretch, fail
}

// NoteHealthRemask implements hsa.FaultHook.
func (in *Injector) NoteHealthRemask() {
	in.Stats.HealthRemasks++
	if in.tel != nil {
		in.tel.HealthRemasks.Inc()
	}
}
