// Package cluster is the fleet layer above the single-node KRISP stack: a
// set of simulated multi-GPU nodes behind an SLO-aware front-end router,
// with a gpulet placer and an epoch-driven autoscaler above the per-device
// CU-mask layer.
//
// KRISP right-sizes kernels on one GPU; serving millions of users takes
// many GPUs across many nodes, and the decisions that matter there are
// which partition of which GPU serves each request (ParvaGPU's regime) and
// when placements change. The fleet controller advances every node in
// lockstep ticks: requests arrive from deterministic workload generators,
// the router admits and places them, nodes simulate concurrently (each
// owns its engine, so parallel advancement is byte-identical to serial),
// and at epoch boundaries the autoscaler replans against the trace, paying
// reconfig costs for migrations and draining replicas on injected node
// faults.
package cluster

import (
	"context"
	"fmt"
	"sort"

	"krisp/internal/cluster/gateway"
	"krisp/internal/cluster/workload"
	"krisp/internal/faults"
	"krisp/internal/gpu"
	"krisp/internal/hsa"
	"krisp/internal/metrics"
	"krisp/internal/models"
	"krisp/internal/parallel"
	"krisp/internal/profile"
	"krisp/internal/reconfig"
	"krisp/internal/sched"
	"krisp/internal/server"
	"krisp/internal/sim"
	"krisp/internal/telemetry"
	"math/rand"
)

// Workload is one model's serving requirement: a rate profile plus an SLO.
type Workload struct {
	Model models.Model
	// Batch is the replica batch size. Zero means the calibration batch.
	Batch int
	// Gen is the request-rate profile driving both the arrival process and
	// the autoscaler's forecasts.
	Gen workload.Generator
	// SLOUs is the per-request latency SLO in virtual microseconds; zero
	// auto-sizes from the profiled isolated latency (2x the planner's QoS
	// target plus the CPU-side batch costs). LLM workloads auto-size from
	// the expected full-sequence latency (prefill plus mean-output decode
	// steps) instead.
	SLOUs sim.Duration
	// LLM, when non-nil, makes this an autoregressive workload: requests
	// become sequences, replicas run continuous batching with KV
	// accounting, and the autoscaler sizes per phase. Model and Batch are
	// derived from it when left zero.
	LLM *LLMWorkload
}

// Config describes one fleet experiment.
type Config struct {
	// Nodes and GPUsPerNode shape the fleet. Defaults: 3 nodes, 2 GPUs.
	Nodes, GPUsPerNode int
	// Spec is the device model for every GPU; zero means MI50.
	Spec gpu.DeviceSpec
	// HSA is the runtime cost model; zero means hsa.DefaultConfig.
	HSA hsa.Config
	// Workloads lists the served models.
	Workloads []Workload
	// Policy is the routing policy under test.
	Policy Policy
	// Tick is the router's control interval: completions are pulled,
	// queues drained, and arrivals routed once per tick. Zero means 2ms.
	Tick sim.Duration
	// Epoch is the autoscaler's replanning interval. Zero means 25 ticks.
	Epoch sim.Duration
	// Duration is total simulated fleet time. Zero means 6 epochs.
	Duration sim.Duration
	// Seed drives every random draw (arrivals, jitter, p2c sampling).
	Seed int64
	// Parallel bounds the worker pool that advances nodes concurrently;
	// 0 picks GOMAXPROCS, 1 forces serial. Results are identical either
	// way — each node owns its engine and RNGs, and the router only sees
	// completions pulled at tick boundaries.
	Parallel int
	// Sched selects the advancement scheduler. The zero value is
	// SchedLookahead: nodes advance only when they can act before the tick
	// horizon, with cross-node effects carried by timestamped mailboxes.
	// SchedLockstep keeps the per-tick barrier over every up node. Both
	// produce byte-identical results at any Parallel setting.
	Sched Sched
	// Telemetry, when non-nil, exposes fleet gauges and counters (and the
	// per-node serving stacks) on the hub's registry.
	Telemetry *telemetry.Hub
	// NodeFaults is the cluster-level fault timeline: node crashes and
	// GPU-wide degradations.
	NodeFaults []faults.NodeFault
	// Costs is the reconfiguration cost model; zero means
	// reconfig.DefaultCosts (10s-class reloads).
	Costs reconfig.Costs
	// Headroom pads the autoscaler's forecast rates so the fleet keeps
	// slack for Poisson bursts and for the router to steer around slow
	// replicas. Zero means 1.2 (20% overprovisioning); values below 1 are
	// clamped to 1 (no headroom).
	Headroom float64
	// OutstandingCap is admission control's per-replica bound on routed
	// but unfinished requests. Zero means 4 batches worth.
	OutstandingCap int
	// QueueCap bounds each model's router-side admission queue. Zero
	// means 64.
	QueueCap int
	// Jitter is per-kernel duration noise on every node (default 0.04;
	// negative disables).
	Jitter float64
	// RecordRouting captures every routing decision into
	// Result.RoutingLog — the determinism tests compare these byte for
	// byte across serial and parallel runs.
	RecordRouting bool
	// Gateway, when non-nil, fronts the router with the resilience layer:
	// per-tenant rate limiting, circuit breakers, hedging under a retry
	// budget, and deadline admission. Nil runs the bare router (the PR5
	// baseline).
	Gateway *gateway.Config
	// Tenants is the traffic mix: arrivals are attributed to tenants in
	// proportion to their weights. Empty means a single tenant 0. The mix
	// is independent of gateway entitlement, so a tenant can offer more
	// than its admitted share and be shed back down.
	Tenants []workload.TenantShare
	// Obs, when non-nil, enables the observability layer: sampled request
	// journeys with per-stage latency attribution, per-model SLO burn-rate
	// monitors, and the anomalous-journey flight recorder. Nil (or a fully
	// disabled value) leaves the run byte-identical to a fleet without it.
	Obs *Observability
}

// ModelResult is one model's fleet-level outcome.
type ModelResult struct {
	Model         string
	Arrivals      int
	Routed        int
	Rejected      int
	Completed     int
	SLOViolations int
	// TokensOut counts generated tokens across served requests (LLM
	// workloads only; classic models report zero).
	TokensOut int
	// Latency samples per-request latency (arrival to completion, us).
	Latency metrics.Sample
}

// Result is the outcome of one fleet run.
type Result struct {
	Policy   Policy
	Duration sim.Duration
	Epochs   int

	Arrivals      int
	Routed        int
	Rejected      int
	Completed     int
	Failed        int // lost to node faults
	SLOViolations int

	Migrations int
	Resizes    int
	Drains     int
	Unplaced   int
	NodeFaults int

	// ProcessScopedReload / KernelScopedReload are the cumulative
	// reconfiguration bills of the epoch replans under the two regimes
	// (Fig. 2 at fleet scale): process-scoped instances reload on every
	// resize and migration; kernel-scoped ones only load models on moves.
	ProcessScopedReload sim.Duration
	KernelScopedReload  sim.Duration

	// LLM serving counters, all zero without LLM workloads. TokensOut is
	// the fleet's generated-token total; KVHandoffs/KVHandoffUs bill the
	// prefill→decode KV-cache transfers of disaggregated fleets (the
	// migration-class cost of splitting the phases); Preemptions counts
	// sequences evicted from a replica's KV budget and requeued.
	TokensOut   int
	KVHandoffs  int
	KVHandoffUs sim.Duration
	Preemptions int

	// Latency aggregates per-request latency across models.
	Latency  metrics.Sample
	PerModel []ModelResult

	// EnergyJ sums node energy over the run.
	EnergyJ float64

	// RoutingLog holds one line per routing decision when
	// Config.RecordRouting was set.
	RoutingLog string

	// Gateway is the resilience layer's decision record (nil without one).
	Gateway *gateway.Stats
}

// BadRequests is the fleet quality metric the router policies compete on:
// requests that were rejected, lost, or completed past their SLO.
func (r *Result) BadRequests() int { return r.Rejected + r.Failed + r.SLOViolations }

// GoodputRPS is the rate of requests completed within their SLO.
func (r *Result) GoodputRPS() float64 {
	return metrics.Throughput(r.Completed-r.SLOViolations, float64(r.Duration))
}

// fleetNode is one simulated machine plus its fleet-side state.
type fleetNode struct {
	id        int
	node      *server.Node
	up        bool
	downUntil sim.Time // <0: down for good
	handles   []*replicaHandle

	// Event-horizon scheduler state: the node's position and key in the
	// fleet's wake heap (heapIdx -1 when out — down, or mid-advancement),
	// and the heap itself so mail posts can lower the key in place. hz is
	// nil under the other schedulers.
	wake    sim.Time
	heapIdx int
	hz      *wakeHeap
}

// Fleet is a configured cluster experiment. Build with New, execute with
// Run.
type Fleet struct {
	cfg     Config
	planner *sched.Planner
	nodes   []*fleetNode
	router  *router
	scaler  *autoscaler
	tel     *fleetTelemetry
	obs     *fleetObserver
	res     *Result

	handles   []*replicaHandle // live + draining, ascending id
	handleSeq int

	// gw is the resilience gateway (nil without one); handleByID resolves
	// the replica ids the gateway speaks back into handles.
	gw         *gateway.Gateway
	handleByID map[int]*replicaHandle

	downFaults []faults.NodeFault // NodeDown timeline, ascending At
	faultIdx   int

	arrivalRngs []*rand.Rand
	arrivalBufs [][]workload.TenantArrival
	lenBufs     [][]llmLen // drawn lengths, parallel to arrivalBufs (LLM models only)
	complBuf    []server.Completion
	complPairs  []complPair
	admitBuf    []admission
	orderBuf    []int
	killedBuf   []*replicaHandle

	// now is the router-phase clock (the current tick's start), the lower
	// bound lookahead sends clamp their delivery timestamps to; pool and
	// activeBuf are the lookahead/event-horizon schedulers' persistent
	// workers and per-tick active-node scratch.
	now       sim.Time
	pool      *parallel.Pool
	activeBuf []*fleetNode
	mergeIdx  []int // k-way arrival-merge cursors, reused across ticks

	// hz and dirty belong to the event-horizon scheduler: the wake heap
	// over up nodes, and whether any node advanced since the last
	// completion pull (the condition that forces a full router phase).
	hz    *wakeHeap
	dirty bool
}

// complPair is one pulled completion with its handle, buffered so gateway
// runs can replay completions in virtual-time order (the first copy to
// finish must win the hedge, regardless of handle iteration order).
type complPair struct {
	h *replicaHandle
	c server.Completion
}

// admission is one merged arrival awaiting its gateway verdict.
type admission struct {
	at       sim.Time
	deadline sim.Time
	model    int
	tenant   int // dense gateway tenant index
	class    int
	admitted bool
}

// New validates the configuration and builds the fleet: planner, nodes
// (with node-local fault plans lowered from GPUDegrade entries), router,
// and autoscaler. No virtual time passes until Run.
func New(cfg Config) *Fleet {
	if len(cfg.Workloads) == 0 {
		panic("cluster: no workloads")
	}
	if cfg.Nodes < 1 {
		cfg.Nodes = 3
	}
	if cfg.GPUsPerNode < 1 {
		cfg.GPUsPerNode = 2
	}
	if cfg.Spec.Topo.TotalCUs() == 0 {
		cfg.Spec = gpu.MI50Spec()
	}
	if cfg.HSA.PacketProcessTime == 0 {
		cfg.HSA = hsa.DefaultConfig()
	}
	if cfg.Tick <= 0 {
		cfg.Tick = 2 * sim.Millisecond
	}
	if cfg.Epoch <= 0 {
		cfg.Epoch = 25 * cfg.Tick
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 6 * cfg.Epoch
	}
	if cfg.Costs == (reconfig.Costs{}) {
		cfg.Costs = reconfig.DefaultCosts()
	}
	if cfg.QueueCap <= 0 {
		cfg.QueueCap = 64
	}
	if cfg.Headroom == 0 {
		cfg.Headroom = 1.2
	} else if cfg.Headroom < 1 {
		cfg.Headroom = 1
	}
	for i := range cfg.Workloads {
		if lw := cfg.Workloads[i].LLM; lw != nil {
			if cfg.Gateway != nil {
				panic("cluster: gateway is not supported with LLM workloads yet")
			}
			n := normalizeLLM(*lw)
			cfg.Workloads[i].LLM = &n
			cfg.Workloads[i].Batch = n.MaxSeqs
			if cfg.Workloads[i].Model.Name == "" {
				mp, mo := n.Lengths.MeanTokens()
				cfg.Workloads[i].Model = n.Model.Proxy(int(mp), int(mo))
			}
		}
		if cfg.Workloads[i].Batch < 1 {
			cfg.Workloads[i].Batch = models.CalibrationBatch
		}
		if cfg.Workloads[i].Gen == nil {
			panic(fmt.Sprintf("cluster: workload %s has no rate generator", cfg.Workloads[i].Model.Name))
		}
	}
	if cfg.OutstandingCap <= 0 {
		maxBatch := 0
		for _, w := range cfg.Workloads {
			if w.Batch > maxBatch {
				maxBatch = w.Batch
			}
		}
		cfg.OutstandingCap = 4 * maxBatch
	}

	planner := sched.NewPlanner(profile.Config{
		Spec: cfg.Spec, Tolerance: 0.05, LaunchOverhead: cfg.HSA.PacketProcessTime,
	})

	names := make([]string, len(cfg.Workloads))
	for i, w := range cfg.Workloads {
		names[i] = w.Model.Name
	}
	tel := newFleetTelemetry(cfg.Telemetry, names)

	f := &Fleet{
		cfg:     cfg,
		planner: planner,
		tel:     tel,
		obs:     newFleetObserver(cfg.Obs, cfg.Telemetry, names, len(cfg.Tenants), cfg.Tick),
		res:     &Result{Policy: cfg.Policy, Duration: cfg.Duration},
		router:  newRouter(cfg.Policy, cfg.Seed, cfg.OutstandingCap, cfg.QueueCap, tel, cfg.RecordRouting),
		scaler: &autoscaler{
			placer:   &placer{planner: planner},
			epoch:    cfg.Epoch,
			headroom: cfg.Headroom,
		},
	}
	f.router.obs = f.obs

	// Per-model router state, with auto-sized SLOs. LLM workloads carry a
	// per-phase sizing profile and auto-size their SLO from the expected
	// full-sequence latency (one prefill plus mean-output decode steps)
	// instead of one fixed-batch pass.
	pre, post := sim.Duration(150), sim.Duration(80)
	for i, w := range cfg.Workloads {
		var lm *llmModelState
		if w.LLM != nil {
			mp, mo := w.LLM.Lengths.MeanTokens()
			lm = &llmModelState{
				spec:       *w.LLM,
				meanPrompt: int(mp), meanOutput: int(mo),
				kvPerToken: w.LLM.Model.KVBytesPerToken(),
			}
			lm.sizing = planner.LLMSizing(w.LLM.Model, lm.meanPrompt, lm.meanOutput, w.LLM.MaxSeqs)
		}
		slo := w.SLOUs
		if slo <= 0 {
			if lm != nil {
				seqUs := lm.sizing.PrefillLatency + sim.Duration(lm.meanOutput)*lm.sizing.DecodeStepLatency
				slo = 2*seqUs + pre + post
			} else {
				slo = 2*planner.SLOLatency(w.Model, w.Batch) + pre + post
			}
		}
		f.router.models = append(f.router.models, &modelState{
			index: i, name: w.Model.Name, batch: w.Batch, sloUs: float64(slo), llm: lm,
		})
		f.arrivalRngs = append(f.arrivalRngs,
			rand.New(rand.NewSource(cfg.Seed+int64(i)*104729+17)))
		f.arrivalBufs = append(f.arrivalBufs, nil)
		f.lenBufs = append(f.lenBufs, nil)
	}

	// Lower node-scoped faults (GPU degrades, gray failures, queue stalls)
	// into node-local plans; keep NodeDown events on the fleet timeline.
	nodePlans := make([]faults.Plan, cfg.Nodes)
	for _, nf := range cfg.NodeFaults {
		if nf.Node < 0 || nf.Node >= cfg.Nodes {
			continue
		}
		if nf.Kind == faults.NodeDown {
			f.downFaults = append(f.downFaults, nf)
			continue
		}
		if nf.Kind == faults.GPUDegrade && (nf.GPU < 0 || nf.GPU >= cfg.GPUsPerNode) {
			continue
		}
		nf.Lower(cfg.Spec.Topo, cfg.GPUsPerNode, &nodePlans[nf.Node])
	}
	sort.SliceStable(f.downFaults, func(i, j int) bool {
		return f.downFaults[i].At < f.downFaults[j].At
	})

	for i := 0; i < cfg.Nodes; i++ {
		var plan *faults.Plan
		if !nodePlans[i].Empty() {
			p := nodePlans[i]
			p.Seed = cfg.Seed + int64(i)
			plan = &p
		}
		f.nodes = append(f.nodes, &fleetNode{
			id: i,
			up: true,
			node: server.NewNode(server.NodeConfig{
				Spec:      cfg.Spec,
				HSA:       cfg.HSA,
				GPUs:      cfg.GPUsPerNode,
				Index:     i,
				Seed:      cfg.Seed + int64(i)*31337 + 7,
				Jitter:    cfg.Jitter,
				Telemetry: cfg.Telemetry,
				Faults:    plan,
			}),
		})
	}
	f.tel.gNodesUp().Set(int64(cfg.Nodes))

	if cfg.Gateway != nil {
		gcfg := *cfg.Gateway
		if len(gcfg.Tenants) == 0 {
			// Default entitlement mirrors the traffic mix: equal classes,
			// weights from the shares.
			for _, s := range cfg.Tenants {
				gcfg.Tenants = append(gcfg.Tenants, gateway.Tenant{ID: s.ID, Weight: s.Weight})
			}
		}
		slos := make([]gateway.ModelSLO, len(f.router.models))
		for i, m := range f.router.models {
			slos[i] = gateway.ModelSLO{Name: m.name, SLOUs: m.sloUs}
		}
		var reg *telemetry.Registry
		if cfg.Telemetry != nil {
			reg = cfg.Telemetry.Registry()
		}
		f.gw = gateway.New(gcfg, slos, &fleetFabric{f: f}, reg)
		if tr := cfg.Telemetry.Trace(); tr != nil {
			f.gw.SetTrace(tr, fleetPid, fleetTidGateway)
		}
		f.router.gw = f.gw
		f.handleByID = make(map[int]*replicaHandle)
	}
	return f
}

// Run executes the fleet experiment and returns its result.
func (f *Fleet) Run() *Result {
	eventDriven := f.cfg.Sched == SchedEventHorizon
	mailboxed := eventDriven || f.cfg.Sched == SchedLookahead
	if mailboxed {
		f.router.mailbox = true
		f.pool = f.newAdvancePool()
		defer f.pool.Close()
	}
	if eventDriven {
		f.hz = &wakeHeap{}
		for _, n := range f.nodes {
			n.hz = f.hz
			f.hz.push(n, nodeWake(n))
		}
	}
	ticks := int(f.cfg.Duration / f.cfg.Tick)
	for tick := 0; tick < ticks; tick++ {
		now := sim.Time(tick) * f.cfg.Tick
		f.now = now
		if eventDriven && f.canSkipPhases(now) {
			// The whole router phase is provably a no-op; only the tick's
			// arrival draws (mandatory for RNG parity) and any due node
			// advancement remain. Arrivals, if any, route through the same
			// merge as the full phase — the queues are empty, so skipping
			// drainQueue changes nothing.
			if f.genArrivals(now, now+f.cfg.Tick) {
				f.mergeRoute(now)
			}
			if f.settleEvent(now + f.cfg.Tick) {
				f.dirty = true
			}
			continue
		}
		f.pullCompletions(now)
		f.dirty = false
		f.applyFaults(now)
		if f.gw != nil {
			f.gw.BeginTick(now)
		}
		f.scaler.maybeReplan(f, now)
		f.reap()
		f.routeTick(now, now+f.cfg.Tick)
		if f.gw != nil {
			// Hedge after routing: this tick's sends are fresh, earlier
			// ones that outlived the P95-derived delay get a second copy.
			f.gw.HedgeScan(now)
		}
		f.observe()
		switch {
		case eventDriven:
			if f.settleEvent(now + f.cfg.Tick) {
				f.dirty = true
			}
		case mailboxed:
			f.settle(now + f.cfg.Tick)
		default:
			f.advance(now + f.cfg.Tick)
		}
	}
	f.now = f.cfg.Duration
	f.pullCompletions(f.cfg.Duration)
	if mailboxed {
		// Settled nodes may have been skipped for many ticks; their frozen
		// state is already final, but the energy integration reads each
		// node's clock, so fast-forward the stragglers to the end of the
		// run. No events fire — a skipped node proved it had none due.
		for _, n := range f.nodes {
			if n.up {
				n.node.RunUntil(f.cfg.Duration)
			}
		}
	}
	f.finish()
	f.obs.finishRun(f.cfg.Duration, f.cfg.Telemetry)
	return f.res
}

// FlightRecorder returns the run's anomalous-journey recorder, nil when
// journey sampling is disabled. Valid after Run.
func (f *Fleet) FlightRecorder() *telemetry.FlightRecorder {
	if f.obs == nil {
		return nil
	}
	return f.obs.flight
}

// SLOStatuses snapshots the per-model burn-rate monitors (empty without
// Obs.Monitors). Valid after Run.
func (f *Fleet) SLOStatuses() []telemetry.SLOStatus { return f.obs.statuses() }

// liveHandles returns the handles the placer should diff against.
func (f *Fleet) liveHandles() []*replicaHandle { return f.handles }

// spawnReplica places one gpulet on its node.
func (f *Fleet) spawnReplica(t target, readyAt sim.Time) {
	n := f.nodes[t.node]
	m := f.modelByName(t.model)
	spec := server.ReplicaSpec{
		Model: f.cfg.Workloads[m.index].Model,
		Batch: t.batch,
		GPU:   t.gpu,
		CUs:   t.cus,
	}
	if lm := m.llm; lm != nil {
		ls := &server.LLMSpec{
			Model:    lm.spec.Model,
			MaxSeqs:  lm.spec.MaxSeqs,
			Role:     t.role,
			KVBudget: lm.spec.KVBudget,
		}
		if lm.spec.PerPhase {
			ls.PrefillCUs, ls.DecodeCUs = lm.sizing.PrefillCUs, lm.sizing.DecodeCUs
		}
		spec.LLM = ls
	}
	rep := n.node.AddReplica(spec)
	h := &replicaHandle{
		id:      f.handleSeq,
		node:    t.node,
		gpu:     t.gpu,
		nodeRef: n,
		model:   t.model,
		cus:     t.cus,
		rep:     rep,
		readyAt: readyAt,
		role:    t.role,
	}
	f.handleSeq++
	f.handles = append(f.handles, h)
	n.handles = append(n.handles, h)
	m.replicas = append(m.replicas, h)
	f.router.invalidate()
	if f.gw != nil {
		f.handleByID[h.id] = h
		h.breaker = f.gw.AddReplica(h.id)
	}
}

// drainReplica starts a graceful drain: no new routing, queued and
// in-flight work completes, then reap removes the handle.
func (f *Fleet) drainReplica(h *replicaHandle) {
	h.draining = true
	h.rep.Drain()
	f.router.invalidate()
}

func (f *Fleet) modelByName(name string) *modelState {
	for _, m := range f.router.models {
		if m.name == name {
			return m
		}
	}
	panic("cluster: unknown model " + name)
}

// pullCompletions collects finished requests from every live replica and
// feeds them to the router's accounting. Without a gateway they are
// absorbed in handle order, as before. With one they are replayed in
// virtual-time order instead: the hedge winner is whichever copy finished
// first on the fleet clock, which handle iteration order must not decide.
func (f *Fleet) pullCompletions(now sim.Time) {
	if f.gw == nil {
		for _, h := range f.handles {
			if h.dead {
				continue
			}
			f.complBuf = h.rep.TakeCompletions(f.complBuf[:0])
			m := f.modelByName(h.model)
			for _, c := range f.complBuf {
				f.router.absorb(m, h, c, now)
			}
		}
		return
	}
	f.complPairs = f.complPairs[:0]
	for _, h := range f.handles {
		if h.dead {
			continue
		}
		f.complBuf = h.rep.TakeCompletions(f.complBuf[:0])
		for _, c := range f.complBuf {
			f.complPairs = append(f.complPairs, complPair{h: h, c: c})
		}
	}
	sort.SliceStable(f.complPairs, func(i, j int) bool {
		if f.complPairs[i].c.End != f.complPairs[j].c.End {
			return f.complPairs[i].c.End < f.complPairs[j].c.End
		}
		return f.complPairs[i].h.id < f.complPairs[j].h.id
	})
	for _, p := range f.complPairs {
		f.router.absorb(f.modelByName(p.h.model), p.h, p.c, now)
	}
}

// applyFaults fires due NodeDown events and recovers expired ones.
func (f *Fleet) applyFaults(now sim.Time) {
	for f.faultIdx < len(f.downFaults) && f.downFaults[f.faultIdx].At <= now {
		nf := f.downFaults[f.faultIdx]
		f.faultIdx++
		n := f.nodes[nf.Node]
		if !n.up {
			continue
		}
		n.up = false
		if nf.Duration > 0 {
			n.downUntil = nf.At + nf.Duration
		} else {
			n.downUntil = -1
		}
		if f.hz != nil {
			f.hz.remove(n)
		}
		// Mark every handle dead before running the gateway's loss pass, so
		// retries cannot land on a sibling replica of the same dying node.
		f.router.invalidate()
		f.killedBuf = f.killedBuf[:0]
		for _, h := range n.handles {
			if h.dead {
				continue
			}
			h.rep.Kill()
			h.dead = true
			h.draining = true
			// Killed replicas are never Released; fold their preemption
			// count now, before reap compacts them away.
			f.res.Preemptions += h.rep.Stats().Preempted
			f.killedBuf = append(f.killedBuf, h)
		}
		for _, h := range f.killedBuf {
			if f.gw != nil {
				// The gateway knows which copies sat on the replica:
				// requests with a surviving hedge continue, the rest retry
				// on live replicas (budget permitting) or fail.
				failed := f.gw.OnReplicaDown(h.id, now)
				f.res.Failed += failed
				f.tel.cFailed().Add(uint64(failed))
				f.obs.onReplicaDown(h, now, failed, true)
			} else {
				f.res.Failed += h.outstanding
				f.tel.cFailed().Add(uint64(h.outstanding))
				f.obs.onReplicaDown(h, now, h.outstanding, false)
			}
			h.outstanding = 0
		}
		f.res.NodeFaults++
		f.tel.cNodeFaults().Inc()
		f.tel.traceFault(now, "node-down", nf.Node)
		f.tel.gNodesUp().Add(-1)
	}
	for _, n := range f.nodes {
		if !n.up && n.downUntil >= 0 && now >= n.downUntil {
			n.up = true
			n.downUntil = 0
			n.node.RunUntil(now) // fast-forward the frozen clock, empty
			if f.hz != nil {
				f.hz.push(n, nodeWake(n))
			}
			f.tel.traceFault(now, "node-up", n.id)
			f.tel.gNodesUp().Add(1)
		}
	}
}

// reap removes handles that finished draining (or died) from every index.
func (f *Fleet) reap() {
	compact := func(hs []*replicaHandle) []*replicaHandle {
		out := hs[:0]
		for _, h := range hs {
			if !h.dead {
				out = append(out, h)
			}
		}
		return out
	}
	changed := false
	for _, h := range f.handles {
		if !h.dead && h.draining && h.rep.Drained() {
			h.dead = true
			if f.gw != nil {
				f.gw.RemoveReplica(h.id)
			}
			// Harvest LLM counters before Release resets the stats.
			f.res.Preemptions += h.rep.Stats().Preempted
			// A gracefully drained replica is quiescent: recycle it (and
			// its HSA queue) through the node's pool so autoscaler churn
			// stops growing per-node state. Release refuses killed
			// replicas itself — their in-flight events still fire.
			h.rep.Release()
		}
		if h.dead {
			changed = true
			if f.gw != nil {
				delete(f.handleByID, h.id)
			}
		}
	}
	if !changed {
		return
	}
	f.router.invalidate()
	f.handles = compact(f.handles)
	for _, n := range f.nodes {
		n.handles = compact(n.handles)
	}
	for _, m := range f.router.models {
		m.replicas = compact(m.replicas)
	}
}

// routeTick drains admission queues, then generates and routes the tick's
// arrivals. Arrivals across models are merged by (time, model index) so the
// decision order is deterministic; each routed request is scheduled onto
// its node at the exact arrival timestamp. With a rate-limiting gateway,
// admission tokens are contended in priority order — highest class and
// tightest deadline first, so under overload the lowest-priority,
// most-slack work is what the emptying buckets shed — while admitted
// requests still route in arrival-time order.
func (f *Fleet) routeTick(from, to sim.Time) {
	for _, m := range f.router.models {
		f.router.drainQueue(m, from)
	}
	f.releaseHandoffs(from, to)
	f.genArrivals(from, to)
	f.mergeRoute(from)
}

// genArrivals draws every workload's arrivals for one tick window into the
// reusable per-model buffers, reporting whether any arrived. The draws
// must happen exactly once per tick window on every scheduler path — the
// generators restart their gap sampling from the window start — so this is
// the one phase an idle tick can never skip.
func (f *Fleet) genArrivals(from, to sim.Time) bool {
	any := false
	for i, w := range f.cfg.Workloads {
		f.arrivalBufs[i] = workload.TenantArrivals(w.Gen, f.arrivalRngs[i], f.cfg.Tenants, from, to, f.arrivalBufs[i][:0])
		if len(f.arrivalBufs[i]) > 0 {
			any = true
		}
		// LLM workloads draw their sequence lengths from the same per-model
		// rng, after the window's arrival draws — one Draw per arrival, so
		// classic models consume exactly the PR9 stream.
		if lm := f.router.models[i].llm; lm != nil {
			f.lenBufs[i] = f.lenBufs[i][:0]
			for range f.arrivalBufs[i] {
				p, o := lm.spec.Lengths.Draw(f.arrivalRngs[i])
				f.lenBufs[i] = append(f.lenBufs[i], llmLen{prompt: p, output: o})
			}
		}
	}
	return any
}

// mergeRoute merges the generated arrival buffers by (time, model index)
// and routes them — one router pass per tick, so per-request decision cost
// amortizes over the phase-cached candidate sets.
func (f *Fleet) mergeRoute(from sim.Time) {
	if cap(f.mergeIdx) < len(f.arrivalBufs) {
		f.mergeIdx = make([]int, len(f.arrivalBufs))
	}
	idx := f.mergeIdx[:len(f.arrivalBufs)]
	for i := range idx {
		idx[i] = 0
	}
	if f.gw == nil {
		for {
			best := -1
			var bestT sim.Time
			for i := range f.arrivalBufs {
				if idx[i] >= len(f.arrivalBufs[i]) {
					continue
				}
				t := f.arrivalBufs[i][idx[i]].At
				if best < 0 || t < bestT {
					best, bestT = i, t
				}
			}
			if best < 0 {
				return
			}
			m := f.router.models[best]
			prompt, output := 0, 0
			if m.llm != nil {
				l := f.lenBufs[best][idx[best]]
				prompt, output = l.prompt, l.output
			}
			idx[best]++
			f.res.Arrivals++
			f.router.route(m, bestT, from, 0, prompt, output)
		}
	}

	f.admitBuf = f.admitBuf[:0]
	for {
		best := -1
		var bestT sim.Time
		for i := range f.arrivalBufs {
			if idx[i] >= len(f.arrivalBufs[i]) {
				continue
			}
			t := f.arrivalBufs[i][idx[i]].At
			if best < 0 || t < bestT {
				best, bestT = i, t
			}
		}
		if best < 0 {
			break
		}
		a := f.arrivalBufs[best][idx[best]]
		idx[best]++
		ten := f.gw.TenantIndex(a.Tenant)
		m := f.router.models[best]
		f.admitBuf = append(f.admitBuf, admission{
			at:       a.At,
			deadline: a.At + sim.Duration(m.sloUs),
			model:    best,
			tenant:   ten,
			class:    f.gw.Class(ten),
		})
	}
	f.res.Arrivals += len(f.admitBuf)

	// Admission order: merge order when nothing is rate-limited (order
	// cannot matter, and the sort would disturb the gateway-off baseline);
	// (class, deadline, merge order) when buckets are finite.
	f.orderBuf = f.orderBuf[:0]
	for i := range f.admitBuf {
		f.orderBuf = append(f.orderBuf, i)
	}
	if f.cfg.Gateway.RateLimited() {
		sort.SliceStable(f.orderBuf, func(x, y int) bool {
			a, b := &f.admitBuf[f.orderBuf[x]], &f.admitBuf[f.orderBuf[y]]
			if a.class != b.class {
				return a.class < b.class
			}
			return a.deadline < b.deadline
		})
	}
	for _, i := range f.orderBuf {
		a := &f.admitBuf[i]
		if f.gw.Admit(from, a.at, a.model, a.tenant) == gateway.Admitted {
			a.admitted = true
			continue
		}
		m := f.router.models[a.model]
		m.arrivals++
		m.rejected++
		f.tel.cRejected().Inc()
		f.obs.onShed(m, a.tenant, a.at, from)
		if f.router.log != nil {
			f.router.seq++
			fmt.Fprintf(f.router.log, "%d %s->shed\n", f.router.seq, m.name)
		}
	}
	// Route the admitted requests in their original arrival order.
	for i := range f.admitBuf {
		a := &f.admitBuf[i]
		if a.admitted {
			f.router.route(f.router.models[a.model], a.at, from, a.tenant, 0, 0)
		}
	}
}

// observe samples fleet gauges once per tick and advances the SLO
// monitors' windows to the tick clock.
func (f *Fleet) observe() {
	f.obs.onTick(f.now)
	if f.tel == nil {
		return
	}
	for _, m := range f.router.models {
		live := 0
		for _, h := range m.replicas {
			if !h.draining {
				live++
			}
		}
		f.tel.setReplicas(m.name, live)
	}
	// One aggregated depth observation per node, plus a top-K laggard
	// ranking (outstanding descending, node id ascending on ties — the
	// strict > keeps the earlier node ahead when depths are equal).
	var lagIDs, lagDepths [laggardK]int
	lagN := 0
	for _, n := range f.nodes {
		if !n.up {
			continue
		}
		outstanding := 0
		for _, h := range n.handles {
			outstanding += h.outstanding
		}
		f.tel.observeNode(n.id, outstanding)
		i := lagN
		for i > 0 && outstanding > lagDepths[i-1] {
			i--
		}
		if i < laggardK {
			end := lagN
			if end == laggardK {
				end = laggardK - 1
			}
			for j := end; j > i; j-- {
				lagDepths[j], lagIDs[j] = lagDepths[j-1], lagIDs[j-1]
			}
			lagDepths[i], lagIDs[i] = outstanding, n.id
			if lagN < laggardK {
				lagN++
			}
		}
	}
	f.tel.setLaggards(&lagIDs, &lagDepths, lagN)
}

// advance runs every up node to t, concurrently when configured. Nodes
// share nothing — each owns its engine, devices, and RNGs — so the merge
// is trivially deterministic: results are read back in node order after
// the barrier.
func (f *Fleet) advance(t sim.Time) {
	up := make([]*fleetNode, 0, len(f.nodes))
	for _, n := range f.nodes {
		if n.up {
			up = append(up, n)
		}
	}
	err := parallel.Each(context.Background(), f.cfg.Parallel, len(up), func(_ context.Context, i int) error {
		up[i].node.RunUntil(t)
		return nil
	})
	if err != nil {
		panic(err) // only node-sim panics reach here; re-raise them
	}
}

// finish folds per-model state into the result.
func (f *Fleet) finish() {
	f.res.Epochs = f.scaler.epochs
	for _, h := range f.handles {
		// Live (and still-draining) handles keep their stats; drained and
		// killed ones were harvested at reap/fault time.
		if !h.dead {
			f.res.Preemptions += h.rep.Stats().Preempted
		}
	}
	for _, m := range f.router.models {
		// Requests still queued at the end never completed; count them
		// rejected so totals balance. Handoffs still in transit were
		// already routed — they end the run in flight, like any other
		// unfinished request.
		m.rejected += len(m.queue)
		m.queue = nil
		if m.llm != nil {
			m.llm.handoffs = nil
			f.res.KVHandoffs += m.llm.handoffCount
			f.res.KVHandoffUs += m.llm.handoffUs
		}
		f.res.Routed += m.routed
		f.res.Rejected += m.rejected
		f.res.Completed += m.completed
		f.res.SLOViolations += m.sloViolations
		f.res.TokensOut += m.tokensOut
		mr := ModelResult{
			Model:         m.name,
			Arrivals:      m.arrivals,
			Routed:        m.routed,
			Rejected:      m.rejected,
			Completed:     m.completed,
			SLOViolations: m.sloViolations,
			TokensOut:     m.tokensOut,
			Latency:       m.latency,
		}
		for _, v := range m.latency.Values() {
			f.res.Latency.Add(v)
		}
		f.res.PerModel = append(f.res.PerModel, mr)
	}
	for _, n := range f.nodes {
		f.res.EnergyJ += n.node.EnergyJ()
	}
	if f.router.log != nil {
		f.res.RoutingLog = f.router.log.String()
	}
	if f.gw != nil {
		f.res.Gateway = f.gw.Snapshot()
	}
}

// Run builds and executes a fleet experiment in one call.
func Run(cfg Config) *Result { return New(cfg).Run() }
