package cluster

import (
	"strings"
	"testing"

	"krisp/internal/cluster/workload"
	"krisp/internal/faults"
	"krisp/internal/models"
	"krisp/internal/reconfig"
	"krisp/internal/sim"
	"krisp/internal/telemetry"
)

func pick(t *testing.T, name string) models.Model {
	t.Helper()
	m, ok := models.ByName(name)
	if !ok {
		t.Fatalf("model %s not found", name)
	}
	return m
}

// compressedCosts scales reconfiguration to the compressed timescale the
// tests simulate (tens of milliseconds per epoch instead of tens of
// seconds).
func compressedCosts() reconfig.Costs {
	return reconfig.Costs{
		PartitionSetup: 2 * sim.Millisecond,
		ProcessStart:   3 * sim.Millisecond,
		ModelLoad:      10 * sim.Millisecond,
		SwapDowntime:   55 * sim.Microsecond,
	}
}

func baseConfig(t *testing.T) Config {
	return Config{
		Nodes:       3,
		GPUsPerNode: 2,
		Workloads: []Workload{
			{
				Model: pick(t, "squeezenet"),
				Batch: 8,
				Gen: workload.Diurnal{
					Trough: 800, Peak: 5000, Period: 300 * sim.Millisecond,
				},
			},
			{
				Model: pick(t, "mobilenet"),
				Batch: 8,
				Gen:   workload.Constant{RatePerSec: 1200},
			},
		},
		Tick:     2 * sim.Millisecond,
		Epoch:    50 * sim.Millisecond,
		Duration: 300 * sim.Millisecond,
		Seed:     42,
		Costs:    compressedCosts(),
		Parallel: 1,
	}
}

func TestFleetSmoke(t *testing.T) {
	res := Run(baseConfig(t))
	if res.Arrivals == 0 {
		t.Fatal("no arrivals generated")
	}
	if res.Completed == 0 {
		t.Fatal("no requests completed")
	}
	if res.Epochs != 6 {
		t.Fatalf("epochs = %d, want 6", res.Epochs)
	}
	if res.Routed > res.Arrivals {
		t.Fatalf("routed %d > arrivals %d", res.Routed, res.Arrivals)
	}
	// Conservation: every arrival is routed or rejected.
	if got := res.Routed + res.Rejected; got != res.Arrivals {
		t.Fatalf("routed(%d)+rejected(%d) = %d, want arrivals %d",
			res.Routed, res.Rejected, got, res.Arrivals)
	}
	// Routed requests complete, fail with a node fault, or are still in
	// flight at the horizon; without faults, completed <= routed.
	if res.Completed > res.Routed {
		t.Fatalf("completed %d > routed %d", res.Completed, res.Routed)
	}
	if res.Failed != 0 {
		t.Fatalf("failed = %d with no node faults", res.Failed)
	}
	if res.Latency.Len() != res.Completed {
		t.Fatalf("latency samples %d != completed %d", res.Latency.Len(), res.Completed)
	}
	if res.EnergyJ <= 0 {
		t.Fatal("no energy accounted")
	}
	if len(res.PerModel) != 2 {
		t.Fatalf("per-model results = %d, want 2", len(res.PerModel))
	}
	// The diurnal trace must force at least one replan that changes the
	// squeezenet replica set.
	if res.Resizes+res.Migrations+res.Drains == 0 {
		t.Fatal("autoscaler never changed the placement across a diurnal trace")
	}
	// Kernel-scoped reconfiguration must be strictly cheaper than the
	// process-scoped counterfactual whenever anything was resized.
	if res.Resizes > 0 && res.KernelScopedReload >= res.ProcessScopedReload {
		t.Fatalf("kernel-scoped bill %v not below process-scoped %v",
			res.KernelScopedReload, res.ProcessScopedReload)
	}
}

// TestSLOAwareBeatsRoundRobin is the acceptance scenario: a diurnal trace
// over 3 nodes x 2 GPUs with one degraded GPU. The SLO-aware policy must
// observe the inflated tail on the slow replicas and steer around them,
// ending with fewer rejected + SLO-violating requests than round-robin.
func TestSLOAwareBeatsRoundRobin(t *testing.T) {
	run := func(p Policy) *Result {
		cfg := baseConfig(t)
		cfg.Policy = p
		// One GPU on node 1 runs at ~1/4 speed for the whole trace.
		cfg.NodeFaults = []faults.NodeFault{
			{At: 0, Node: 1, Kind: faults.GPUDegrade, GPU: 0, Stretch: 3.0},
		}
		return Run(cfg)
	}
	rr := run(RoundRobin)
	slo := run(SLOAware)

	rrBad := rr.Rejected + rr.SLOViolations
	sloBad := slo.Rejected + slo.SLOViolations
	t.Logf("round-robin: %d rejected + %d violations = %d bad (completed %d)",
		rr.Rejected, rr.SLOViolations, rrBad, rr.Completed)
	t.Logf("slo-aware:   %d rejected + %d violations = %d bad (completed %d)",
		slo.Rejected, slo.SLOViolations, sloBad, slo.Completed)
	if sloBad >= rrBad {
		t.Fatalf("slo-aware bad requests (%d) not below round-robin (%d)", sloBad, rrBad)
	}
}

// TestNodeFaultDrainAndReplace is the second acceptance scenario: a node
// crash kills its replicas, and the next epoch's replan places
// replacements on the surviving nodes.
func TestNodeFaultDrainAndReplace(t *testing.T) {
	cfg := baseConfig(t)
	cfg.Policy = LeastOutstanding
	// Crash node 2 mid-run, permanently.
	crashAt := 120 * sim.Millisecond
	cfg.NodeFaults = []faults.NodeFault{
		{At: crashAt, Node: 2, Kind: faults.NodeDown},
	}
	f := New(cfg)
	res := f.Run()

	if res.NodeFaults != 1 {
		t.Fatalf("node faults applied = %d, want 1", res.NodeFaults)
	}
	if f.nodes[2].up {
		t.Fatal("node 2 recovered without a recovery window")
	}
	for _, h := range f.handles {
		if h.node == 2 && !h.dead {
			t.Fatalf("replica %d still live on crashed node 2", h.id)
		}
	}
	// Replacement placement within one epoch of the crash: every model
	// still has live replicas, all on surviving nodes.
	for _, m := range f.router.models {
		live := 0
		for _, h := range m.replicas {
			if !h.draining && !h.dead {
				if h.node == 2 {
					t.Fatalf("model %s has a live replica on the crashed node", m.name)
				}
				live++
			}
		}
		if live == 0 {
			t.Fatalf("model %s has no live replicas after the crash", m.name)
		}
	}
	// Work kept completing after the crash (replacements took traffic).
	if res.Completed == 0 || res.Failed == 0 {
		t.Fatalf("expected both completions (%d) and crash losses (%d)", res.Completed, res.Failed)
	}
}

// TestFleetMetricsExposed asserts the fleet gauges and counters land in
// the registry and render through the Prometheus exposition — the same
// path httpapi's /metrics serves.
func TestFleetMetricsExposed(t *testing.T) {
	hub := telemetry.NewHub(false)
	cfg := baseConfig(t)
	cfg.Telemetry = hub
	cfg.NodeFaults = []faults.NodeFault{
		{At: 100 * sim.Millisecond, Node: 0, Kind: faults.NodeDown},
	}
	res := Run(cfg)

	var sb strings.Builder
	if err := hub.Reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"krisp_fleet_routed_total",
		"krisp_fleet_completed_total",
		"krisp_fleet_nodes_up",
		`krisp_fleet_replicas{model="squeezenet"}`,
		`krisp_fleet_node_outstanding_bucket{le="1"}`,
		`krisp_fleet_node_laggard{rank="0"}`,
		`krisp_fleet_node_laggard_node{rank="0"}`,
		"krisp_fleet_node_faults_total 1",
		"krisp_fleet_nodes_up 2",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q\n%s", want, out)
		}
	}
	// Counters must agree with the result.
	reg := hub.Reg
	if got := reg.Counter("krisp_fleet_completed_total", "").Value(); got != uint64(res.Completed) {
		t.Fatalf("completed counter %d != result %d", got, res.Completed)
	}
	if got := reg.Counter("krisp_fleet_routed_total", "").Value(); got != uint64(res.Routed) {
		t.Fatalf("routed counter %d != result %d", got, res.Routed)
	}
}

// TestTelemetryDoesNotPerturb: a fleet run with a hub attached must be
// decision-identical to one without (telemetry only observes).
func TestTelemetryDoesNotPerturb(t *testing.T) {
	cfg := baseConfig(t)
	cfg.RecordRouting = true
	plain := Run(cfg)

	cfg2 := baseConfig(t)
	cfg2.RecordRouting = true
	cfg2.Telemetry = telemetry.NewHub(false)
	instrumented := Run(cfg2)

	if plain.RoutingLog != instrumented.RoutingLog {
		t.Fatal("telemetry changed routing decisions")
	}
	if plain.Completed != instrumented.Completed || plain.SLOViolations != instrumented.SLOViolations {
		t.Fatalf("telemetry changed results: %+v vs %+v", plain, instrumented)
	}
}

func TestPolicyNames(t *testing.T) {
	for _, p := range Policies() {
		got, err := PolicyByName(p.String())
		if err != nil || got != p {
			t.Fatalf("PolicyByName(%q) = %v, %v", p.String(), got, err)
		}
	}
	if _, err := PolicyByName("nope"); err == nil {
		t.Fatal("expected error for unknown policy")
	}
}
