package cluster

import (
	"sort"

	"krisp/internal/reconfig"
	"krisp/internal/sched"
	"krisp/internal/server"
	"krisp/internal/sim"
)

// slot is one placeable GPU: a device on a currently-up node.
type slot struct {
	node, gpu int
}

// target is one desired gpulet after an epoch replan.
type target struct {
	model string
	batch int
	cus   int
	node  int
	gpu   int
	// role is the LLM serving role this gpulet is placed for
	// (LLMRoleMixed for classic models and non-disaggregated fleets).
	role server.LLMRole
}

// llmInst is one pre-sized LLM gpulet the autoscaler asks the placer to
// spread: the planner's per-phase sizing already fixed its CU budget, so
// the placer only packs it.
type llmInst struct {
	model string
	batch int
	cus   int
	role  server.LLMRole
}

// placer turns demand forecasts into gpulet placements. Sizing comes from
// sched.Planner (the Gpulet-style control plane: CUs per instance and
// instance count for each demand), but packing is the fleet's own: the
// single-server planner bin-packs into the fewest GPUs, which is wrong at
// cluster scale — co-locating every replica on one device means a single
// node fault strands all of a model's capacity. Dead nodes simply
// contribute no slots, which is how a crashed node's replicas get
// re-placed elsewhere at the next epoch.
type placer struct {
	planner *sched.Planner
}

// place sizes every demand at the forecast rates and spreads the resulting
// gpulets across the available slots worst-fit-decreasing: largest
// instances first, each onto the slot with the most free CUs (ties break
// toward the lowest slot index, and slots are interleaved gpu-major by the
// caller, so equal-freedom ties walk across nodes before doubling up).
// It returns the placed targets and the count of gpulets that did not fit
// (unplaced demand the router will shed).
func (p *placer) place(demands []sched.Demand, llmInsts []llmInst, slots []slot) (placed []target, unplaced int) {
	if len(slots) == 0 || (len(demands) == 0 && len(llmInsts) == 0) {
		return nil, 0
	}
	insts := append([]llmInst(nil), llmInsts...)
	for _, d := range demands {
		s := p.planner.Sizing(d.Model, d.Batch, d.RatePerSec)
		for i := 0; i < s.Instances; i++ {
			insts = append(insts, llmInst{model: d.Model.Name, batch: d.Batch, cus: s.CUs})
		}
	}
	sort.SliceStable(insts, func(i, j int) bool {
		if insts[i].cus != insts[j].cus {
			return insts[i].cus > insts[j].cus
		}
		if insts[i].model != insts[j].model {
			return insts[i].model < insts[j].model
		}
		return insts[i].role < insts[j].role
	})

	free := make([]int, len(slots))
	for i := range free {
		free[i] = p.planner.TotalCUs()
	}
	for _, in := range insts {
		best := -1
		for si := range slots {
			if free[si] >= in.cus && (best < 0 || free[si] > free[best]) {
				best = si
			}
		}
		if best < 0 {
			unplaced++
			continue
		}
		free[best] -= in.cus
		placed = append(placed, target{
			model: in.model, batch: in.batch, cus: in.cus,
			node: slots[best].node, gpu: slots[best].gpu, role: in.role,
		})
	}
	return placed, unplaced
}

// diffActions is the migration bill of applying one epoch's placement.
type diffActions struct {
	keep    []*replicaHandle
	resize  []resizeAction // drain old, spawn same slot at new size (free)
	migrate []target       // spawn on a new slot (model load paid)
	drain   []*replicaHandle
}

type resizeAction struct {
	old *replicaHandle
	to  target
}

// diff matches the current live replica set against the placed targets.
// Matching is per (node, gpu, model): equal-size pairs are kept, unequal
// pairs become in-place resizes (free for kernel-scoped instances — the
// next kernel simply right-sizes into the new budget), unmatched targets
// are migrations (the model must load onto that GPU), and unmatched
// replicas drain.
func diff(current []*replicaHandle, targets []target) diffActions {
	type key struct {
		node, gpu int
		model     string
		role      server.LLMRole
	}
	curByKey := make(map[key][]*replicaHandle)
	for _, h := range current {
		if h.dead || h.draining {
			continue
		}
		k := key{h.node, h.gpu, h.model, h.role}
		curByKey[k] = append(curByKey[k], h)
	}
	tgtByKey := make(map[key][]target)
	for _, t := range targets {
		k := key{t.node, t.gpu, t.model, t.role}
		tgtByKey[k] = append(tgtByKey[k], t)
	}

	var acts diffActions
	for k, tgts := range tgtByKey {
		curs := curByKey[k]
		delete(curByKey, k)
		// Deterministic matching: ascending CU size on both sides; exact
		// sizes pair first, leftovers pair up as resizes.
		sort.SliceStable(tgts, func(i, j int) bool { return tgts[i].cus < tgts[j].cus })
		sort.SliceStable(curs, func(i, j int) bool {
			if curs[i].cus != curs[j].cus {
				return curs[i].cus < curs[j].cus
			}
			return curs[i].id < curs[j].id
		})
		usedCur := make([]bool, len(curs))
		usedTgt := make([]bool, len(tgts))
		for ti, t := range tgts {
			for ci, c := range curs {
				if !usedCur[ci] && c.cus == t.cus {
					usedCur[ci] = true
					usedTgt[ti] = true
					acts.keep = append(acts.keep, c)
					break
				}
			}
		}
		var freeCur []*replicaHandle
		for ci, c := range curs {
			if !usedCur[ci] {
				freeCur = append(freeCur, c)
			}
		}
		for ti, t := range tgts {
			if usedTgt[ti] {
				continue
			}
			if len(freeCur) > 0 {
				acts.resize = append(acts.resize, resizeAction{old: freeCur[0], to: t})
				freeCur = freeCur[1:]
			} else {
				acts.migrate = append(acts.migrate, t)
			}
		}
		acts.drain = append(acts.drain, freeCur...)
	}
	for _, curs := range curByKey {
		acts.drain = append(acts.drain, curs...)
	}
	// Deterministic apply order regardless of map iteration.
	sort.SliceStable(acts.keep, func(i, j int) bool { return acts.keep[i].id < acts.keep[j].id })
	sort.SliceStable(acts.drain, func(i, j int) bool { return acts.drain[i].id < acts.drain[j].id })
	sort.SliceStable(acts.resize, func(i, j int) bool { return acts.resize[i].old.id < acts.resize[j].old.id })
	sort.SliceStable(acts.migrate, func(i, j int) bool {
		a, b := acts.migrate[i], acts.migrate[j]
		if a.node != b.node {
			return a.node < b.node
		}
		if a.gpu != b.gpu {
			return a.gpu < b.gpu
		}
		if a.model != b.model {
			return a.model < b.model
		}
		if a.role != b.role {
			return a.role < b.role
		}
		return a.cus < b.cus
	})
	return acts
}

// reconfigBill accounts one epoch's actions under both reconfiguration
// regimes: process-scoped instances reload for every resize and migration;
// kernel-scoped instances resize for free and only pay the model load on
// migrations (the paper's Fig. 2 argument, now at fleet scale).
func reconfigBill(acts diffActions, costs reconfig.Costs) (processScoped, kernelScoped sim.Duration) {
	n := len(acts.resize) + len(acts.migrate)
	processScoped = sim.Duration(n) * costs.ReloadTime()
	kernelScoped = sim.Duration(len(acts.migrate)) * costs.ModelLoad
	return processScoped, kernelScoped
}
