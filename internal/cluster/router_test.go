package cluster

import (
	"testing"
)

// fakeHandles builds a model with n routable replicas (no live server
// replica behind them — pick never touches rep).
func fakeModel(n int) *modelState {
	m := &modelState{name: "m", batch: 8, sloUs: 20000}
	for i := 0; i < n; i++ {
		m.replicas = append(m.replicas, &replicaHandle{id: i})
	}
	return m
}

func testRouter(p Policy) *router {
	return newRouter(p, 1, 4, 8, nil, false)
}

func TestPickRoundRobinCycles(t *testing.T) {
	r := testRouter(RoundRobin)
	m := fakeModel(3)
	var got []int
	for i := 0; i < 6; i++ {
		h := r.pick(m, 0, -1)
		if h == nil {
			t.Fatal("no replica picked")
		}
		got = append(got, h.id)
	}
	want := []int{0, 1, 2, 0, 1, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("round-robin order = %v, want %v", got, want)
		}
	}
}

func TestPickSkipsUnroutable(t *testing.T) {
	for _, p := range Policies() {
		r := testRouter(p)
		m := fakeModel(4)
		m.replicas[0].draining = true
		m.replicas[1].dead = true
		m.replicas[2].readyAt = 100 // not ready at t=0
		for i := 0; i < 5; i++ {
			h := r.pick(m, 0, -1)
			if h == nil {
				t.Fatalf("%v: no replica picked", p)
			}
			if h.id != 3 {
				t.Fatalf("%v: picked unroutable replica %d", p, h.id)
			}
		}
		// At t=100 the warming replica becomes eligible.
		seen := map[int]bool{}
		for i := 0; i < 8; i++ {
			seen[r.pick(m, 100, -1).id] = true
		}
		if !seen[2] && p != SLOAware {
			// SLO-aware may legitimately stick to one replica while
			// outstanding counts are equal priors; the others must rotate
			// or sample replica 2 in.
			t.Fatalf("%v: never picked newly-ready replica", p)
		}
	}
}

func TestPickLeastOutstanding(t *testing.T) {
	r := testRouter(LeastOutstanding)
	m := fakeModel(3)
	m.replicas[0].outstanding = 2
	m.replicas[1].outstanding = 1
	m.replicas[2].outstanding = 3
	if h := r.pick(m, 0, -1); h.id != 1 {
		t.Fatalf("picked %d, want 1", h.id)
	}
}

func TestPickRespectsOutstandingCap(t *testing.T) {
	for _, p := range Policies() {
		r := testRouter(p) // cap = 4
		m := fakeModel(2)
		m.replicas[0].outstanding = 4
		m.replicas[1].outstanding = 4
		if h := r.pick(m, 0, -1); h != nil {
			t.Fatalf("%v: picked replica %d with every candidate at cap", p, h.id)
		}
		m.replicas[1].outstanding = 3
		if h := r.pick(m, 0, -1); h == nil || h.id != 1 {
			t.Fatalf("%v: did not pick the only replica under cap", p)
		}
	}
}

func TestSLOAwareAvoidsSlowReplica(t *testing.T) {
	r := testRouter(SLOAware)
	m := fakeModel(2)
	// Replica 0 observed fast completions, replica 1 slow ones.
	for i := 0; i < 20; i++ {
		m.replicas[0].lat.add(5000)
		m.replicas[1].lat.add(50000)
	}
	for i := 0; i < 3; i++ {
		h := r.pick(m, 0, -1)
		if h.id != 0 {
			t.Fatalf("picked slow replica %d", h.id)
		}
		h.outstanding++
	}
	// Once the fast replica's backlog predicts worse latency than the idle
	// slow one, traffic spills over: 5000*(1+o/8) > 50000 at o >= 72, which
	// is above the cap, so here it saturates at the cap instead.
	m.replicas[0].outstanding = 4
	if h := r.pick(m, 0, -1); h == nil || h.id != 1 {
		t.Fatal("did not spill to the slow replica at cap")
	}
}

func TestRouteQueuesThenRejects(t *testing.T) {
	r := testRouter(RoundRobin) // queueCap = 8
	m := fakeModel(0)           // no replicas at all
	for i := 0; i < 10; i++ {
		r.route(m, 0, 0, 0, 0, 0)
	}
	if m.arrivals != 10 {
		t.Fatalf("arrivals = %d, want 10", m.arrivals)
	}
	if len(m.queue) != 8 {
		t.Fatalf("queued = %d, want 8 (cap)", len(m.queue))
	}
	if m.rejected != 2 {
		t.Fatalf("rejected = %d, want 2", m.rejected)
	}
	if m.routed != 0 {
		t.Fatalf("routed = %d, want 0", m.routed)
	}
}

func TestDrainQueueShedsStale(t *testing.T) {
	r := testRouter(RoundRobin)
	m := fakeModel(0)
	m.sloUs = 1000
	m.queue = []queuedReq{{arrival: 0}, {arrival: 500}, {arrival: 4000}}
	// At t=5000 the first two waited past the 1000us SLO; the third is
	// fresh but still has no replica to land on.
	r.drainQueue(m, 5000)
	if m.rejected != 2 {
		t.Fatalf("rejected = %d, want 2", m.rejected)
	}
	if len(m.queue) != 1 || m.queue[0].arrival != 4000 {
		t.Fatalf("queue = %+v, want the fresh request kept", m.queue)
	}
}

func TestLatWindowP95(t *testing.T) {
	var w latWindow
	if got := w.p95(); got != 0 {
		t.Fatalf("empty window p95 = %v, want 0", got)
	}
	for i := 1; i <= 100; i++ {
		w.add(float64(i))
	}
	// Window holds the last 64 values: 37..100; p95 is near the top.
	got := w.p95()
	if got < 95 || got > 100 {
		t.Fatalf("p95 = %v, want within [95, 100]", got)
	}
	// Cached value invalidates on add.
	w.add(1e9)
	if w.p95() <= got {
		t.Fatal("p95 did not react to a new extreme sample")
	}
}

func TestSLOAwareAvoidsDeadSilentReplica(t *testing.T) {
	// Regression: a replica with zero healthy history — routed to, never
	// completing — must not keep winning on a flat neutral prior while its
	// queue grows. The no-history prior escalates with backlog, so after a
	// bounded number of probes all traffic shifts to the proven-but-slow
	// replica that is at least alive.
	r := newRouter(SLOAware, 1, 32, 8, nil, false)
	m := fakeModel(2)
	// Replica 1 is alive but slow: its observed P95 (25000us) is worse than
	// the neutral prior (sloUs/2 = 10000us), the regime where the old flat
	// prior made the silent replica win forever.
	for i := 0; i < 20; i++ {
		m.replicas[1].lat.add(25000)
	}
	silentPicks := 0
	for i := 0; i < 40; i++ {
		h := r.pick(m, 0, -1)
		if h == nil {
			t.Fatal("no replica picked")
		}
		h.outstanding++
		if h.id == 0 {
			silentPicks++ // never completes: outstanding only grows
		} else {
			// The live replica completes what it gets.
			h.outstanding--
			h.lat.add(25000)
		}
	}
	if silentPicks == 0 {
		t.Fatal("silent replica never probed: prior too pessimistic")
	}
	if silentPicks > 4 {
		t.Fatalf("dead-silent replica won %d of 40 picks; prior must escalate with backlog", silentPicks)
	}
	// And with hindsight: the next pick goes to the live replica.
	if h := r.pick(m, 0, -1); h.id != 0 && h.id != 1 {
		t.Fatal("no pick")
	} else if h.id == 0 {
		t.Fatal("still routing to the dead-silent replica")
	}
}

func TestFeasibleUsNoBacklogDoubleCount(t *testing.T) {
	// The admission oracle must not double-count steady-state queueing: the
	// observed P95 already includes it, so backlog up to one in-flight batch
	// leaves the estimate at P95, and only excess queue escalates it.
	m := fakeModel(1)
	h := m.replicas[0]
	for i := 0; i < 20; i++ {
		h.lat.add(8000)
	}
	h.outstanding = m.batch // one batch in flight: no excess
	if got := feasibleUs(m, h); got != 8000 {
		t.Fatalf("feasibleUs at one batch = %v, want the raw p95 8000", got)
	}
	h.outstanding = 3 * m.batch // two batches of excess queue
	if got := feasibleUs(m, h); got != 8000*3 {
		t.Fatalf("feasibleUs at 3x batch = %v, want 24000", got)
	}
	// Relative routing score still escalates from the first request.
	h.outstanding = m.batch
	if got := predictUs(m, h); got <= 8000 {
		t.Fatalf("predictUs = %v, must penalise backlog for ranking", got)
	}
}
