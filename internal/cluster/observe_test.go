package cluster

import (
	"fmt"
	"reflect"
	"testing"

	"krisp/internal/cluster/gateway"
	"krisp/internal/faults"
	"krisp/internal/server"
	"krisp/internal/sim"
	"krisp/internal/telemetry"
)

// grayBurn is the chaos-test burn config, tuned from the measured
// deterministic rates with >= 2x margins on both sides: the healthy run's
// worst post-gate window burns ~0.7 (startup sheds diluted across the
// first full fast window), the gray run sustains ~4.2 — so warn 1.4 and
// page 2 split the gap with a factor of two each way. MinCount 100 gates
// the cold-start ticks, whose tiny windows would otherwise page on the
// handful of warm-up sheds.
func grayBurn() telemetry.BurnConfig {
	return telemetry.BurnConfig{
		Objective:    0.85,
		WidthUs:      20_000,
		FastWindowUs: 40_000,
		SlowWindowUs: 120_000,
		PageBurn:     2,
		WarnBurn:     1.4,
		ClearHoldUs:  60_000,
		MinCount:     100,
	}
}

// TestJourneyMatrixIdentical is the observability determinism guarantee:
// full journey sampling plus burn-rate monitors must leave the routing log
// and the entire Result byte-identical to an unobserved run — across every
// scheduler and worker count, with the gateway's hedging and a node fault
// in play. Run under -race this also proves the observer stays on the
// control goroutine.
func TestJourneyMatrixIdentical(t *testing.T) {
	run := func(sched Sched, workers int, obs *Observability) *Result {
		cfg := baseConfig(t)
		cfg.Policy = SLOAware
		cfg.Sched = sched
		cfg.Parallel = workers
		cfg.RecordRouting = true
		cfg.Gateway = &gateway.Config{}
		cfg.Obs = obs
		cfg.NodeFaults = []faults.NodeFault{
			{At: 0, Node: 1, Kind: faults.GPUDegrade, GPU: 0, Stretch: 3.0},
			{At: 140 * sim.Millisecond, Node: 2, Kind: faults.NodeDown,
				Duration: 80 * sim.Millisecond},
		}
		return Run(cfg)
	}

	base := run(SchedLockstep, 1, nil)
	if base.RoutingLog == "" {
		t.Fatal("no routing decisions recorded")
	}
	obs := &Observability{SampleEvery: 1, Monitors: true, FlightCap: 32}
	for _, sched := range []Sched{SchedLockstep, SchedLookahead, SchedEventHorizon} {
		for _, workers := range []int{1, 0, 8} {
			got := run(sched, workers, obs)
			if got.RoutingLog != base.RoutingLog {
				t.Fatalf("sched=%v workers=%d: journeys changed the routing log", sched, workers)
			}
			if !reflect.DeepEqual(got, base) {
				t.Fatalf("sched=%v workers=%d: journeys changed the result:\nbase: %+v\ngot:  %+v",
					sched, workers, base, got)
			}
		}
	}
}

// TestChaosGrayNodePagesMonitor: the gray-node chaos scenario must drive
// the model's burn-rate monitor to page, deterministically, while the
// identical healthy fleet never leaves ok — and the flight recorder must
// retain at least one anomalous journey whose stage breakdown telescopes
// to its end-to-end latency.
func TestChaosGrayNodePagesMonitor(t *testing.T) {
	run := func(chaos bool) *Fleet {
		cfg := chaosConfig(t)
		cfg.Gateway = &gateway.Config{}
		if chaos {
			applyChaos(t, &cfg, "gray-node")
		}
		// Cap above the run's anomaly count so shed journeys don't evict the
		// completed (hedged / SLO-violating) ones this test telescopes.
		cfg.Obs = &Observability{SampleEvery: 1, Monitors: true, Burn: grayBurn(), FlightCap: 1024}
		f := New(cfg)
		f.Run()
		return f
	}

	healthy := run(false)
	for _, s := range healthy.SLOStatuses() {
		if s.State != "ok" || s.Transitions != 0 {
			t.Fatalf("healthy baseline alerted: %+v", s)
		}
	}

	gray := run(true)
	paged := false
	for _, s := range gray.SLOStatuses() {
		if s.State == "page" {
			paged = true
			if len(s.History) == 0 {
				t.Fatalf("paged monitor has no transition history: %+v", s)
			}
		}
	}
	if !paged {
		t.Fatalf("gray-node chaos did not page any monitor: %+v", gray.SLOStatuses())
	}

	fl := gray.FlightRecorder()
	if fl == nil || fl.Len() == 0 {
		t.Fatal("gray-node chaos left the flight recorder empty")
	}
	telescoped := 0
	for _, j := range fl.Journeys() {
		if j.Outcome != telemetry.JourneyCompleted {
			continue
		}
		var sum int64
		for s := 0; s < telemetry.NumStages; s++ {
			d := j.StageUs(s)
			if d < 0 {
				t.Fatalf("completed journey %d missing stage %s: %+v", j.ID, telemetry.StageNames[s], j)
			}
			sum += d
		}
		if sum != j.LatencyUs() {
			t.Fatalf("journey %d: stage sum %d != latency %d", j.ID, sum, j.LatencyUs())
		}
		telescoped++
	}
	if telescoped == 0 {
		t.Fatal("no completed journey with a telescoping stage breakdown in the flight ring")
	}
	if fl.Total() < 10 {
		t.Fatalf("flight recorder saw only %d anomalous journeys", fl.Total())
	}
	t.Logf("flight: %d retained, %d total, %d completed telescoped", fl.Len(), fl.Total(), telescoped)
}

// TestFlightRecorderTelescopesUnderHedging is the healthy-fleet twin: with
// hedging active, anomalous (hedged / SLO-violating) journeys complete and
// their stage breakdowns must telescope exactly.
func TestFlightRecorderTelescopesUnderHedging(t *testing.T) {
	cfg := chaosConfig(t)
	cfg.Gateway = &gateway.Config{}
	cfg.Obs = &Observability{SampleEvery: 1, FlightCap: 64}
	f := New(cfg)
	f.Run()
	fl := f.FlightRecorder()
	completed := 0
	for _, j := range fl.Journeys() {
		if j.Outcome != telemetry.JourneyCompleted {
			continue
		}
		completed++
		var sum int64
		for s := 0; s < telemetry.NumStages; s++ {
			d := j.StageUs(s)
			if d < 0 {
				t.Fatalf("completed journey %d missing stage %s: %+v", j.ID, telemetry.StageNames[s], j)
			}
			sum += d
		}
		if sum != j.LatencyUs() {
			t.Fatalf("journey %d: stage sum %d != latency %d", j.ID, sum, j.LatencyUs())
		}
	}
	if completed == 0 {
		t.Fatalf("no completed anomalous journeys recorded (flight: %d retained, %d total)",
			fl.Len(), fl.Total())
	}
}

// TestStageHistogramsPopulated: sampled journeys must land in the
// per-(model, tenant) stage histograms on the hub's registry.
func TestStageHistogramsPopulated(t *testing.T) {
	hub := telemetry.NewHub(false)
	cfg := baseConfig(t)
	cfg.Telemetry = hub
	cfg.Gateway = &gateway.Config{}
	cfg.Obs = &Observability{SampleEvery: 1}
	res := New(cfg).Run()
	if res.Completed == 0 {
		t.Fatal("fleet completed nothing")
	}
	for _, stage := range telemetry.StageNames {
		name := fmt.Sprintf(`krisp_stage_%s_us{model="squeezenet",tenant="0"}`, stage)
		h := hub.Reg.Histogram(name, "", telemetry.LatencyBucketsUs())
		if h.Count() == 0 {
			t.Fatalf("stage histogram %s empty", name)
		}
	}
}

// TestObservabilityOffIsFree: a nil and a fully-disabled Obs produce no
// observer at all, so the event-horizon scheduler keeps its idle-skip path.
func TestObservabilityOffIsFree(t *testing.T) {
	if o := newFleetObserver(nil, nil, nil, 0, sim.Millisecond); o != nil {
		t.Fatal("nil Obs built an observer")
	}
	if o := newFleetObserver(&Observability{}, nil, nil, 0, sim.Millisecond); o != nil {
		t.Fatal("disabled Obs built an observer")
	}
}

// routeHookBench mirrors send()'s instrumentation sequence — identity
// allocation, journey sampling, trace instant — on top of the pick loop
// from BenchmarkFleetRoutingDecision, without the node scheduling that both
// modes share. This is the path the journeys-off zero-alloc guarantee
// covers.
func routeHookBench(r *router, m *modelState) {
	h := r.pick(m, 0, -1)
	var id uint64
	if r.gw != nil || r.obs.journeysOn() {
		r.reqSeq++
		id = r.reqSeq
	}
	r.obs.onSend(id, m, h, 0, 0, 0)
	r.tel.traceRoute(0, h.id)
	h.outstanding++
	if h.outstanding > 1<<20 {
		for _, rh := range m.replicas {
			rh.outstanding = 0
		}
	}
}

func obsRouterBench(sampleEvery int) (*router, *modelState, *fleetObserver) {
	r := newRouter(SLOAware, 1, 1<<30, 0, nil, false)
	m := &modelState{name: "m", batch: 8, sloUs: 20000}
	for i := 0; i < 8; i++ {
		h := &replicaHandle{id: i}
		for j := 0; j < 64; j++ {
			h.lat.add(float64(5000 + i*100 + j))
		}
		m.replicas = append(m.replicas, h)
	}
	r.models = []*modelState{m}
	var obs *fleetObserver
	if sampleEvery >= 0 {
		obs = newFleetObserver(&Observability{SampleEvery: sampleEvery, Monitors: true},
			nil, []string{"m"}, 1, 2*sim.Millisecond)
		r.obs = obs
	}
	return r, m, obs
}

// TestRouteJourneysOffZeroAlloc pins the PR's hot-path invariant: with an
// observer attached but sampling off, the routing path allocates nothing.
func TestRouteJourneysOffZeroAlloc(t *testing.T) {
	r, m, _ := obsRouterBench(0)
	allocs := testing.AllocsPerRun(1000, func() {
		routeHookBench(r, m)
	})
	if allocs != 0 {
		t.Fatalf("journeys-off route path allocates %.1f/op, want 0", allocs)
	}
}

// BenchmarkRouteWithJourneys measures the routing decision under the three
// sampling regimes the bench.sh overhead section tracks. The sampled
// variants complete each journey immediately so the pooled records recycle,
// as they do steady-state in a live fleet.
func BenchmarkRouteWithJourneys(b *testing.B) {
	for _, bc := range []struct {
		name        string
		sampleEvery int
	}{
		{"off", 0},
		{"1pct", 100},
		{"all", 1},
	} {
		b.Run(bc.name, func(b *testing.B) {
			r, m, obs := obsRouterBench(bc.sampleEvery)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				routeHookBench(r, m)
				if obs != nil && obs.byID != nil && len(obs.byID) > 0 {
					h := m.replicas[0]
					obs.onWinner(m, h, server.Completion{
						ID: r.reqSeq, Arrival: 0, End: 9000,
						Enqueued: 10, BatchStart: 200, KernelStart: 300, KernelEnd: 8000,
					}, false)
				}
			}
		})
	}
}

// BenchmarkFleetScalingJourneys is the whole-fleet overhead benchmark
// behind BENCH_PR9.json's journey-sampling section: the 16-node
// event-horizon sweep from BenchmarkFleetScaling with observability off,
// at 1% sampling, and at full sampling (monitors on in both sampled
// modes).
func BenchmarkFleetScalingJourneys(b *testing.B) {
	for _, bc := range []struct {
		name string
		obs  *Observability
	}{
		{"off", nil},
		{"1pct", &Observability{SampleEvery: 100, Monitors: true}},
		{"all", &Observability{SampleEvery: 1, Monitors: true}},
	} {
		b.Run(bc.name, func(b *testing.B) {
			cfg := scalingConfig(b, 16)
			cfg.Sched = SchedEventHorizon
			cfg.Parallel = 0
			cfg.Obs = bc.obs
			total := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				total += Run(cfg).Routed
			}
			b.StopTimer()
			if total == 0 {
				b.Fatal("fleet routed nothing")
			}
			b.ReportMetric(float64(total)/b.Elapsed().Seconds(), "requests/s")
		})
	}
}
