// Package gateway is the resilience layer between clients and the fleet
// router: per-tenant token-bucket rate limiting with weighted fairness and
// priority classes, per-replica circuit breakers, request hedging with
// cancellation under a global retry/hedge budget, and deadline-aware
// admission. KRISP right-sizes kernels and the cluster routes replicas;
// the gateway is what keeps one hot tenant or one gray-failing GPU from
// dragging the whole fleet's tail down — the regime large-scale spatial
// sharing (ParvaGPU) and co-location (ECLIP) serving actually lives in,
// where partial gray degradation is the common case and clean crashes are
// the exception.
//
// Everything here is deterministic and single-goroutine: decisions depend
// only on virtual time and the caller's event order, never on wall time,
// goroutine interleaving, or map iteration. The per-request admission path
// performs zero heap allocations (asserted by benchmark), so the gateway
// can front a saturating open-loop workload without becoming the
// bottleneck it exists to remove.
package gateway

import (
	"fmt"
	"sort"

	"krisp/internal/sim"
	"krisp/internal/telemetry"
)

// Verdict classifies one admission decision.
type Verdict uint8

const (
	// Admitted passes the request to the router.
	Admitted Verdict = iota
	// ShedDeadline rejects a request that cannot meet its SLO even if
	// served immediately — shedding it at admission costs nothing; serving
	// it would waste CUs on a guaranteed violation.
	ShedDeadline
	// ShedTenantRate rejects a request whose tenant exhausted its own
	// token bucket (weighted-fair isolation: a hot tenant sheds first).
	ShedTenantRate
	// ShedOverload rejects a request the global admission bucket cannot
	// cover at its priority class's reserve level.
	ShedOverload
)

func (v Verdict) String() string {
	switch v {
	case Admitted:
		return "admitted"
	case ShedDeadline:
		return "deadline"
	case ShedTenantRate:
		return "tenant-rate"
	case ShedOverload:
		return "overload"
	default:
		return "unknown"
	}
}

// CopyKind labels the copies of one logical request.
type CopyKind uint8

const (
	// CopyPrimary is the first send of a request.
	CopyPrimary CopyKind = iota
	// CopyHedge is a duplicate sent after the hedge delay; first copy to
	// complete wins, the loser is cancelled.
	CopyHedge
	// CopyRetry replaces a copy lost to a dead replica.
	CopyRetry
)

func (k CopyKind) String() string {
	switch k {
	case CopyPrimary:
		return "primary"
	case CopyHedge:
		return "hedge"
	case CopyRetry:
		return "retry"
	default:
		return "unknown"
	}
}

// Fabric is what the gateway needs from the routing layer beneath it. The
// cluster fleet implements it over its router and replica handles; tests
// implement it with fakes.
type Fabric interface {
	// PickReplica chooses a routable replica for the model, excluding the
	// given replica id (-1 excludes nothing). Returns -1 when no candidate
	// has admission headroom.
	PickReplica(model, exclude int, now sim.Time) int
	// SendCopy commits one copy of request id to a replica at its original
	// arrival timestamp.
	SendCopy(model, replica int, id uint64, arrival sim.Time, kind CopyKind)
	// CancelCopy revokes the losing copy of a hedged request: dequeued if
	// still waiting, suppressed at the batch boundary if in flight.
	CancelCopy(replica int, id uint64)
	// BestLatencyUs estimates the latency the model's best routable
	// replica would deliver right now — the deadline-admission oracle.
	BestLatencyUs(model int, now sim.Time) float64
}

// Tenant describes one traffic source's contract with the gateway.
type Tenant struct {
	// ID is the tenant's stable identity (arbitrary, need not be dense).
	ID int
	// Weight is the tenant's share of the global admission rate; its token
	// bucket refills at GlobalRatePerSec * Weight/sumWeights *
	// OverSubscription. Zero means 1.
	Weight float64
	// Class is the tenant's priority class, 0 = highest. Under overload,
	// lower classes (higher numbers) are shed first.
	Class int
	// RatePerSec, when positive, overrides the weight-derived bucket rate.
	RatePerSec float64
	// Burst, when positive, overrides the bucket depth (default: 100ms of
	// the tenant rate, minimum 8).
	Burst float64
}

// ModelSLO names one served model and its per-request latency SLO.
type ModelSLO struct {
	Name  string
	SLOUs float64
}

// Config tunes the gateway. The zero value disables rate limiting (no
// buckets), keeps hedging, retries, breakers, and deadline admission on
// with defaults, and assumes a single tenant 0.
type Config struct {
	// Tenants lists the admitted traffic sources. Empty means one tenant
	// (ID 0, weight 1, class 0). Requests from unknown tenants are mapped
	// onto the first tenant.
	Tenants []Tenant
	// GlobalRatePerSec caps aggregate admission (requests per virtual
	// second). Zero disables the global bucket.
	GlobalRatePerSec float64
	// GlobalBurst is the global bucket depth; zero means 100ms of the
	// global rate (minimum 16).
	GlobalBurst float64
	// OverSubscription scales each tenant's weight-derived bucket rate
	// above its exact fair share, so spare capacity is usable while hard
	// isolation still kicks in at OverSubscription x fair share. Zero
	// means 2.
	OverSubscription float64

	// HedgeDelayFactor scales the P95-derived hedge delay. Zero means 1.
	HedgeDelayFactor float64
	// HedgeMinDelay floors the hedge delay (a cold P95 window must not
	// cause hedges on every request). Zero means 500us.
	HedgeMinDelay sim.Duration
	// Budget is the retry+hedge budget as a ratio of primary sends. Zero
	// means 0.1; negative disables all secondary traffic.
	Budget float64
	// BudgetBurst is the budget bank's depth. Zero means 16.
	BudgetBurst float64

	// Breaker tunes the per-replica circuit breakers.
	Breaker BreakerConfig

	// DisableHedging, DisableRetry, DisableDeadline, and DisableBreakers
	// switch off the corresponding mechanism (for ablations and the
	// transparency tests).
	DisableHedging  bool
	DisableRetry    bool
	DisableDeadline bool
	DisableBreakers bool
}

// RateLimited reports whether the configuration can ever shed on rate
// (some bucket is finite). When false, admission order cannot matter and
// the fleet skips the priority sort entirely.
func (c *Config) RateLimited() bool {
	if c.GlobalRatePerSec > 0 {
		return true
	}
	for _, t := range c.Tenants {
		if t.RatePerSec > 0 {
			return true
		}
	}
	return false
}

// TenantStats is one tenant's admission outcome.
type TenantStats struct {
	ID             int
	Admitted, Shed uint64
}

// Stats is the gateway's cumulative decision record. Counters mirror the
// krisp_gateway_* telemetry series.
type Stats struct {
	Admitted     uint64
	ShedDeadline uint64
	ShedTenant   uint64
	ShedOverload uint64
	// ShedQueue counts admitted requests later shed from the router queue
	// because their remaining deadline budget could no longer cover the
	// estimated service time.
	ShedQueue uint64

	Primaries    uint64
	Hedges       uint64
	HedgeWins    uint64
	Retries      uint64
	BudgetDenied uint64
	Cancelled    uint64

	BreakerOpens     uint64
	BreakerHalfOpens uint64
	BreakerCloses    uint64

	// BudgetRatio and BudgetBurst are the budget's resolved parameters,
	// recorded so invariant checks need no access to the config defaults.
	BudgetRatio float64
	BudgetBurst float64

	// ShedByClass indexes shed counts by priority class.
	ShedByClass []uint64
	// Tenants holds per-tenant admission outcomes, in config order.
	Tenants []TenantStats
}

// CheckBudget verifies the retry/hedge budget invariant — secondary sends
// never exceed the configured ratio of primary traffic plus the bank's
// burst. The chaos tests call it on every scenario.
func (s *Stats) CheckBudget() error {
	limit := s.BudgetRatio*float64(s.Primaries) + s.BudgetBurst
	if got := float64(s.Secondaries()); got > limit {
		return fmt.Errorf("gateway: budget exceeded: %d hedges + %d retries = %.0f > %.1f (%.2f x %d primaries + %.0f burst)",
			s.Hedges, s.Retries, got, limit, s.BudgetRatio, s.Primaries, s.BudgetBurst)
	}
	return nil
}

// Shed sums every shed reason (including post-admission queue sheds).
func (s *Stats) Shed() uint64 {
	return s.ShedDeadline + s.ShedTenant + s.ShedOverload + s.ShedQueue
}

// Secondaries sums hedge and retry sends — the traffic the budget caps.
func (s *Stats) Secondaries() uint64 { return s.Hedges + s.Retries }

type tenantState struct {
	idx    int
	cfg    Tenant
	bucket TokenBucket
	stats  TenantStats
}

type modelState struct {
	name  string
	sloUs float64
	lat   pctWindow // winning end-to-end latencies; drives the hedge delay
}

// track is the gateway's view of one in-flight logical request.
type track struct {
	id          uint64
	model       int32
	tenant      int32
	arrival     sim.Time
	deadline    sim.Time
	sentAt      sim.Time // primary (or retry) send time
	hedgeSentAt sim.Time
	primary     int // replica id, -1 after its replica died
	hedge       int // -1 while unhedged
	resolved    bool
}

// Gateway is the resilience front end. Strictly single-goroutine, like the
// router it feeds.
type Gateway struct {
	cfg    Config
	fabric Fabric

	models   []modelState
	tenants  []tenantState
	byTenant map[int]int // tenant ID -> index
	global   TokenBucket
	classes  int
	budget   Budget

	breakers map[int]*Breaker // replica id -> breaker

	inflight []*track
	byID     map[uint64]*track
	resolved int

	now   sim.Time
	tel   *Telemetry
	stats Stats

	// tr, when set via SetTrace, mirrors gateway control events — hedges,
	// cancellations, retries, breaker transitions — onto a trace track as
	// instant events.
	tr    *telemetry.Tracer
	trPid int
	trTid int
}

// SetTrace points gateway control events at a Chrome-trace track. The
// gateway only observes through it; decisions are unchanged.
func (g *Gateway) SetTrace(tr *telemetry.Tracer, pid, tid int) {
	g.tr = tr
	g.trPid = pid
	g.trTid = tid
}

// traceInstant drops one control event on the trace track (no-op untraced).
func (g *Gateway) traceInstant(name string, ts sim.Time, replica int) {
	if g.tr == nil {
		return
	}
	g.tr.Instant("fleet", name, g.trPid, g.trTid, float64(ts), "replica", float64(replica))
}

// New builds a gateway over the given fabric. models fixes the model index
// space (the same indexes the fabric methods use); reg, when non-nil,
// registers the krisp_gateway_* series.
func New(cfg Config, models []ModelSLO, fabric Fabric, reg *telemetry.Registry) *Gateway {
	if len(cfg.Tenants) == 0 {
		cfg.Tenants = []Tenant{{ID: 0, Weight: 1}}
	}
	if cfg.OverSubscription <= 0 {
		cfg.OverSubscription = 2
	}
	if cfg.HedgeDelayFactor <= 0 {
		cfg.HedgeDelayFactor = 1
	}
	if cfg.HedgeMinDelay <= 0 {
		cfg.HedgeMinDelay = 500 * sim.Microsecond
	}
	switch {
	case cfg.Budget == 0:
		cfg.Budget = 0.1
	case cfg.Budget < 0:
		cfg.Budget = 0
	}

	g := &Gateway{
		cfg:      cfg,
		fabric:   fabric,
		byTenant: make(map[int]int, len(cfg.Tenants)),
		breakers: make(map[int]*Breaker),
		byID:     make(map[uint64]*track),
		budget:   NewBudget(cfg.Budget, cfg.BudgetBurst),
	}
	for _, m := range models {
		g.models = append(g.models, modelState{name: m.Name, sloUs: m.SLOUs})
	}

	sumW := 0.0
	classes := 1
	for i := range cfg.Tenants {
		if cfg.Tenants[i].Weight <= 0 {
			cfg.Tenants[i].Weight = 1
		}
		sumW += cfg.Tenants[i].Weight
		if cfg.Tenants[i].Class+1 > classes {
			classes = cfg.Tenants[i].Class + 1
		}
	}
	g.classes = classes

	if cfg.GlobalRatePerSec > 0 {
		burst := cfg.GlobalBurst
		if burst <= 0 {
			burst = cfg.GlobalRatePerSec * 0.1
			if burst < 16 {
				burst = 16
			}
		}
		g.global = NewTokenBucket(cfg.GlobalRatePerSec, burst)
	}
	for i, t := range cfg.Tenants {
		rate := t.RatePerSec
		if rate <= 0 && cfg.GlobalRatePerSec > 0 {
			rate = cfg.GlobalRatePerSec * t.Weight / sumW * cfg.OverSubscription
		}
		burst := t.Burst
		if burst <= 0 {
			burst = rate * 0.1
			if burst < 8 {
				burst = 8
			}
		}
		g.tenants = append(g.tenants, tenantState{
			idx:    i,
			cfg:    t,
			bucket: NewTokenBucket(rate, burst),
			stats:  TenantStats{ID: t.ID},
		})
		g.byTenant[t.ID] = i
	}
	g.stats.ShedByClass = make([]uint64, classes)
	g.tel = NewTelemetry(reg, cfg.Tenants)
	return g
}

// DeadlineEnabled reports whether deadline admission is active (the router
// uses it to decide whether queue admission should consult the oracle).
func (g *Gateway) DeadlineEnabled() bool { return !g.cfg.DisableDeadline }

// TenantIndex maps a tenant ID onto its dense index (unknown IDs map to
// tenant 0 so a misconfigured trace degrades instead of panicking).
func (g *Gateway) TenantIndex(id int) int {
	if i, ok := g.byTenant[id]; ok {
		return i
	}
	return 0
}

// Class returns the priority class of the tenant at the given index.
func (g *Gateway) Class(tenantIdx int) int { return g.tenants[tenantIdx].cfg.Class }

// SLOUs returns the model's latency SLO.
func (g *Gateway) SLOUs(model int) float64 { return g.models[model].sloUs }

// BeginTick refills every bucket to now. The fleet calls it once per
// control tick, before admitting the tick's arrivals.
func (g *Gateway) BeginTick(now sim.Time) {
	g.now = now
	g.global.Refill(now)
	for i := range g.tenants {
		g.tenants[i].bucket.Refill(now)
	}
}

// Admit decides one request's fate. It consumes tokens only when the
// request is admitted, checks cheapest-reject-first (deadline before
// buckets), and performs no heap allocation — the per-request overhead the
// BENCH_PR6 admission benchmark pins at 0 allocs/op.
func (g *Gateway) Admit(now, arrival sim.Time, model, tenantIdx int) Verdict {
	t := &g.tenants[tenantIdx]
	if !g.cfg.DisableDeadline {
		slack := float64(arrival - now) // arrivals within the tick sit in the future
		slack += g.models[model].sloUs
		if g.fabric.BestLatencyUs(model, now) > slack {
			g.shed(t, ShedDeadline)
			return ShedDeadline
		}
	}
	if !t.bucket.Take(1) {
		g.shed(t, ShedTenantRate)
		return ShedTenantRate
	}
	// Priority classes keep a reserve in the global bucket: class c may
	// only draw while the bucket stays above c/classes of its depth, so
	// when overload drains the bucket, the lowest classes starve first.
	reserve := g.global.burst * float64(t.cfg.Class) / float64(g.classes)
	if !g.global.TakeAbove(1, reserve) {
		t.bucket.Put(1)
		g.shed(t, ShedOverload)
		return ShedOverload
	}
	g.stats.Admitted++
	t.stats.Admitted++
	g.tel.admit(tenantIdx)
	return Admitted
}

func (g *Gateway) shed(t *tenantState, v Verdict) {
	switch v {
	case ShedDeadline:
		g.stats.ShedDeadline++
	case ShedTenantRate:
		g.stats.ShedTenant++
	case ShedOverload:
		g.stats.ShedOverload++
	}
	g.stats.ShedByClass[t.cfg.Class]++
	t.stats.Shed++
	g.tel.shed(v, t.idx)
}

// OnQueueShed records a request shed from the router's admission queue
// after its remaining deadline budget fell below the estimated service
// time.
func (g *Gateway) OnQueueShed(model, tenantIdx int) {
	t := &g.tenants[tenantIdx]
	g.stats.ShedQueue++
	g.stats.ShedByClass[t.cfg.Class]++
	t.stats.Shed++
	g.tel.queueShed(tenantIdx)
}

// AddReplica registers a replica and returns its circuit breaker (nil when
// breakers are disabled) for the router to consult on every pick.
func (g *Gateway) AddReplica(replica int) *Breaker {
	if g.cfg.DisableBreakers {
		return nil
	}
	b := NewBreaker(g.cfg.Breaker)
	b.onTransition = func(_, to BreakerState) {
		switch to {
		case BreakerOpen:
			g.stats.BreakerOpens++
			g.tel.breakerOpen()
			g.traceInstant("breaker-open", g.now, replica)
		case BreakerHalfOpen:
			g.stats.BreakerHalfOpens++
			g.tel.breakerHalfOpen()
			g.traceInstant("breaker-half-open", g.now, replica)
		case BreakerClosed:
			g.stats.BreakerCloses++
			g.tel.breakerClose()
			g.traceInstant("breaker-closed", g.now, replica)
		}
	}
	g.breakers[replica] = b
	return b
}

// RemoveReplica forgets a drained or dead replica's breaker.
func (g *Gateway) RemoveReplica(replica int) {
	if b := g.breakers[replica]; b != nil && b.State() == BreakerOpen {
		g.tel.breakerGone()
	}
	delete(g.breakers, replica)
}

// OnPrimarySend tracks a routed request and credits the hedge/retry
// budget. deadline is arrival + the model's SLO.
func (g *Gateway) OnPrimarySend(id uint64, model, tenantIdx, replica int, arrival, now sim.Time) {
	g.budget.Credit()
	g.stats.Primaries++
	g.breakers[replica].OnSend()
	t := &track{
		id:       id,
		model:    int32(model),
		tenant:   int32(tenantIdx),
		arrival:  arrival,
		deadline: arrival + sim.Duration(g.models[model].sloUs),
		sentAt:   now,
		primary:  replica,
		hedge:    -1,
	}
	g.inflight = append(g.inflight, t)
	g.byID[id] = t
}

// HedgeDelay returns the model's current hedge trigger: the windowed P95
// of winning end-to-end latencies scaled by HedgeDelayFactor, floored at
// HedgeMinDelay. A cold window uses half the SLO.
func (g *Gateway) HedgeDelay(model int) sim.Duration {
	p95 := g.models[model].lat.p95()
	if g.models[model].lat.n == 0 {
		p95 = g.models[model].sloUs / 2
	}
	d := sim.Duration(g.cfg.HedgeDelayFactor * p95)
	if d < g.cfg.HedgeMinDelay {
		d = g.cfg.HedgeMinDelay
	}
	return d
}

// HedgeScan walks the in-flight set (in send order — deterministic) and
// hedges every request stuck past its model's hedge delay, subject to the
// budget and to a second replica existing. The fleet calls it once per
// tick.
func (g *Gateway) HedgeScan(now sim.Time) {
	if g.cfg.DisableHedging {
		return
	}
	for _, t := range g.inflight {
		if t.resolved || t.hedge >= 0 || t.primary < 0 {
			continue
		}
		if now >= t.deadline || now-t.sentAt < g.HedgeDelay(int(t.model)) {
			continue
		}
		if !g.budget.Take() {
			g.tel.denied()
			continue
		}
		r := g.fabric.PickReplica(int(t.model), t.primary, now)
		if r < 0 {
			g.budget.Refund()
			continue
		}
		t.hedge = r
		t.hedgeSentAt = now
		g.stats.Hedges++
		g.tel.hedge()
		g.traceInstant("hedge", now, r)
		g.breakers[r].OnSend()
		g.fabric.SendCopy(int(t.model), r, t.id, t.arrival, CopyHedge)
	}
	g.compact()
}

// OnCompletion resolves one copy's completion. It returns true when this
// completion is the request's winner (the caller should count it toward
// latency and SLO metrics) and false for the losing copy of a hedge or an
// already-resolved request.
func (g *Gateway) OnCompletion(id uint64, replica int, end, now sim.Time) bool {
	t := g.byID[id]
	if t == nil || t.resolved {
		return false
	}
	var copySent sim.Time
	var loser int
	hedgeWon := false
	switch replica {
	case t.primary:
		copySent, loser = t.sentAt, t.hedge
	case t.hedge:
		copySent, loser = t.hedgeSentAt, t.primary
		hedgeWon = true
	default:
		// A copy on a replica the tracker already dropped (its node died
		// between the batch finishing and the pull); the request was
		// retried or failed — this completion is stale.
		return false
	}

	lat := float64(end - t.arrival)
	m := &g.models[t.model]
	m.lat.add(lat)
	// The winner's breaker judges its own service: time from this copy's
	// send to completion, against the SLO.
	g.breakers[replica].Record(now, float64(end-copySent) <= m.sloUs)

	if hedgeWon {
		g.stats.HedgeWins++
		g.tel.hedgeWin()
		// The primary lost to a copy that started later: that is a timeout
		// in all but name, and its breaker should know.
		if loser >= 0 {
			g.breakers[loser].Record(now, false)
		}
	}
	if loser >= 0 {
		g.stats.Cancelled++
		g.tel.cancel()
		g.traceInstant("hedge-cancel", now, loser)
		g.fabric.CancelCopy(loser, id)
	}
	g.resolve(t)
	return true
}

// OnReplicaDown drops every copy on a dead replica: requests with a
// surviving copy continue; the rest are retried (budget and deadline
// permitting) or failed. Returns how many requests were lost for the
// fleet's Failed accounting.
func (g *Gateway) OnReplicaDown(replica int, now sim.Time) (failed int) {
	g.RemoveReplica(replica)
	for _, t := range g.inflight {
		if t.resolved {
			continue
		}
		hit := false
		if t.primary == replica {
			t.primary, hit = -1, true
		}
		if t.hedge == replica {
			t.hedge, hit = -1, true
		}
		if !hit {
			continue
		}
		if t.primary >= 0 || t.hedge >= 0 {
			continue // the other copy is still running
		}
		if g.retry(t, now) {
			continue
		}
		g.resolve(t)
		failed++
	}
	g.compact()
	return failed
}

// retry re-sends a request whose every copy died. The retry becomes the
// new primary.
func (g *Gateway) retry(t *track, now sim.Time) bool {
	if g.cfg.DisableRetry || now >= t.deadline {
		return false
	}
	if !g.cfg.DisableDeadline &&
		g.fabric.BestLatencyUs(int(t.model), now) > float64(t.deadline-now) {
		return false
	}
	if !g.budget.Take() {
		g.tel.denied()
		return false
	}
	r := g.fabric.PickReplica(int(t.model), -1, now)
	if r < 0 {
		g.budget.Refund()
		return false
	}
	t.primary = r
	t.sentAt = now
	g.stats.Retries++
	g.tel.retry()
	g.traceInstant("retry", now, r)
	g.breakers[r].OnSend()
	g.fabric.SendCopy(int(t.model), r, t.id, t.arrival, CopyRetry)
	return true
}

func (g *Gateway) resolve(t *track) {
	t.resolved = true
	delete(g.byID, t.id)
	g.resolved++
}

// compact drops resolved tracks once they dominate the in-flight slice.
func (g *Gateway) compact() {
	if g.resolved < 64 || g.resolved*2 < len(g.inflight) {
		return
	}
	kept := g.inflight[:0]
	for _, t := range g.inflight {
		if !t.resolved {
			kept = append(kept, t)
		}
	}
	for i := len(kept); i < len(g.inflight); i++ {
		g.inflight[i] = nil
	}
	g.inflight = kept
	g.resolved = 0
}

// Unresolved returns how many admitted-and-sent requests have neither
// completed nor failed (in flight at the horizon).
func (g *Gateway) Unresolved() int {
	n := 0
	for _, t := range g.inflight {
		if !t.resolved {
			n++
		}
	}
	return n
}

// BudgetDenied returns how many secondary sends the budget refused.
func (g *Gateway) BudgetDenied() uint64 { return g.budget.Denied() }

// Snapshot returns a copy of the cumulative stats (slices cloned), with
// the budget counters folded in.
func (g *Gateway) Snapshot() *Stats {
	s := g.stats
	s.BudgetDenied = g.budget.Denied()
	s.BudgetRatio = g.budget.ratio
	s.BudgetBurst = g.budget.burst
	s.ShedByClass = append([]uint64(nil), g.stats.ShedByClass...)
	s.Tenants = make([]TenantStats, len(g.tenants))
	for i := range g.tenants {
		s.Tenants[i] = g.tenants[i].stats
	}
	return &s
}

// BreakerStates summarizes the live breakers as "closed/open/half-open"
// counts, in that order.
func (g *Gateway) BreakerStates() [3]int {
	var out [3]int
	for _, b := range g.breakers {
		out[b.State()]++
	}
	return out
}

// String renders a one-line summary (CLI exit tables).
func (s *Stats) String() string {
	return fmt.Sprintf(
		"admitted %d, shed %d (deadline %d, tenant-rate %d, overload %d, queue %d), hedges %d (wins %d), retries %d, budget-denied %d, breaker opens %d / closes %d",
		s.Admitted, s.Shed(), s.ShedDeadline, s.ShedTenant, s.ShedOverload, s.ShedQueue,
		s.Hedges, s.HedgeWins, s.Retries, s.BudgetDenied, s.BreakerOpens, s.BreakerCloses)
}

// pctWindow keeps the most recent winning latencies of one model and
// serves their P95 with a lazily-sorted scratch copy (same scheme as the
// router's per-replica windows).
type pctWindow struct {
	buf     [64]float64
	n, next int
	dirty   bool
	p95v    float64
}

func (w *pctWindow) add(v float64) {
	w.buf[w.next] = v
	w.next = (w.next + 1) % len(w.buf)
	if w.n < len(w.buf) {
		w.n++
	}
	w.dirty = true
}

func (w *pctWindow) p95() float64 {
	if w.n == 0 {
		return 0
	}
	if w.dirty {
		var scratch [64]float64
		s := scratch[:w.n]
		copy(s, w.buf[:w.n])
		sort.Float64s(s)
		idx := (w.n*95 + 99) / 100
		if idx > 0 {
			idx--
		}
		w.p95v = s[idx]
		w.dirty = false
	}
	return w.p95v
}
