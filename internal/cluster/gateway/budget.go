package gateway

// Budget is the global retry/hedge budget: secondary traffic (hedge copies
// and retries of failed requests) is capped to a ratio of primary traffic,
// so a fleet-wide outage can never be amplified into a retry storm. Every
// primary send credits Ratio tokens (banked up to Burst); every hedge or
// retry debits one. When the bank is empty, secondaries are denied — the
// invariant, counter-checked by the chaos tests, is
//
//	hedges + retries <= Ratio * primaries + Burst
//
// at every point in the run.
type Budget struct {
	ratio  float64
	burst  float64
	tokens float64

	primaries uint64
	taken     uint64
	denied    uint64
}

// NewBudget builds a budget. ratio <= 0 disables secondaries entirely;
// burst <= 0 defaults to 16 (the slack that lets hedging start before many
// primaries have been credited).
func NewBudget(ratio, burst float64) Budget {
	if burst <= 0 {
		burst = 16
	}
	return Budget{ratio: ratio, burst: burst, tokens: burst}
}

// Credit banks the budget earned by one primary send.
func (b *Budget) Credit() {
	b.primaries++
	if b.ratio <= 0 {
		return
	}
	b.tokens += b.ratio
	if b.tokens > b.burst {
		b.tokens = b.burst
	}
}

// Take reserves one secondary send. A disabled budget (ratio <= 0) always
// denies.
func (b *Budget) Take() bool {
	if b.ratio <= 0 || b.tokens < 1 {
		b.denied++
		return false
	}
	b.tokens--
	b.taken++
	return true
}

// Refund returns a reservation that was not used (no alternative replica
// was available for the hedge or retry).
func (b *Budget) Refund() {
	if b.ratio <= 0 {
		return
	}
	b.tokens++
	if b.tokens > b.burst {
		b.tokens = b.burst
	}
	if b.taken > 0 {
		b.taken--
	}
}

// Taken returns how many secondary sends the budget has granted (net of
// refunds); Denied how many it refused; Primaries how many credits it saw.
func (b *Budget) Taken() uint64     { return b.taken }
func (b *Budget) Denied() uint64    { return b.denied }
func (b *Budget) Primaries() uint64 { return b.primaries }
