package gateway

import (
	"krisp/internal/sim"
)

// TokenBucket is a deterministic virtual-time token bucket: tokens refill
// continuously at Rate per virtual second up to Burst. All arithmetic is
// driven by the caller's clock — the bucket never reads wall time and never
// allocates, so admission decisions are reproducible and free of heap
// traffic.
type TokenBucket struct {
	rate   float64 // tokens per virtual second
	burst  float64 // bucket depth
	tokens float64
	last   sim.Time
}

// NewTokenBucket returns a full bucket. A non-positive rate disables the
// bucket: Take always succeeds.
func NewTokenBucket(ratePerSec, burst float64) TokenBucket {
	if burst <= 0 {
		burst = 1
	}
	return TokenBucket{rate: ratePerSec, burst: burst, tokens: burst}
}

// Refill advances the bucket to now. Callers refill once per control tick;
// Take between refills sees a consistent snapshot.
func (b *TokenBucket) Refill(now sim.Time) {
	if b.rate <= 0 || now <= b.last {
		b.last = now
		return
	}
	b.tokens += b.rate * float64(now-b.last) / float64(sim.Second)
	if b.tokens > b.burst {
		b.tokens = b.burst
	}
	b.last = now
}

// Take consumes n tokens if available (or if the bucket is unlimited) and
// reports whether it did.
func (b *TokenBucket) Take(n float64) bool {
	if b.rate <= 0 {
		return true
	}
	if b.tokens < n {
		return false
	}
	b.tokens -= n
	return true
}

// TakeAbove consumes n tokens only while the post-take level stays at or
// above reserve — the mechanism behind priority classes: lower classes must
// leave a reserve for higher ones, so under overload they starve first.
func (b *TokenBucket) TakeAbove(n, reserve float64) bool {
	if b.rate <= 0 {
		return true
	}
	if b.tokens-n < reserve {
		return false
	}
	b.tokens -= n
	return true
}

// Put returns n tokens (a refund for a reservation that was not used).
func (b *TokenBucket) Put(n float64) {
	if b.rate <= 0 {
		return
	}
	b.tokens += n
	if b.tokens > b.burst {
		b.tokens = b.burst
	}
}

// Tokens returns the current level (meaningful only between Refills).
func (b *TokenBucket) Tokens() float64 { return b.tokens }
