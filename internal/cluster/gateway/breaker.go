package gateway

import (
	"krisp/internal/sim"
)

// BreakerState is a circuit breaker's position.
type BreakerState uint8

const (
	// BreakerClosed passes traffic and watches the windowed failure rate.
	BreakerClosed BreakerState = iota
	// BreakerOpen refuses traffic until the cooldown expires.
	BreakerOpen
	// BreakerHalfOpen admits a bounded number of probe requests; a probe
	// success closes the breaker, a probe failure re-opens it.
	BreakerHalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return "unknown"
	}
}

// BreakerConfig tunes the per-replica circuit breakers.
type BreakerConfig struct {
	// Window is the outcome ring size the failure rate is computed over.
	// Default 32, capped at 256.
	Window int
	// MinVolume is the minimum number of windowed outcomes before the
	// breaker may trip — a single early failure must not open it. Default 8.
	MinVolume int
	// FailureRate is the windowed error+timeout fraction that trips the
	// breaker. Default 0.5.
	FailureRate float64
	// Cooldown is how long an open breaker waits before probing (virtual
	// time). Default 10ms.
	Cooldown sim.Duration
	// Probes bounds concurrent half-open probe requests. Default 2.
	Probes int
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.Window <= 0 {
		c.Window = 32
	}
	if c.Window > 256 {
		c.Window = 256
	}
	if c.MinVolume <= 0 {
		c.MinVolume = 8
	}
	if c.FailureRate <= 0 {
		c.FailureRate = 0.5
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 10 * sim.Millisecond
	}
	if c.Probes <= 0 {
		c.Probes = 2
	}
	return c
}

// Breaker is one replica's circuit breaker: closed / open / half-open on a
// windowed error+timeout rate, driven entirely by virtual time. It is
// single-goroutine, like everything else in the fleet control plane.
//
// Outcomes are recorded by the gateway: an in-SLO completion is a success;
// an SLO-violating completion, a hedge fired against the replica, or the
// replica's node dying count as failures. The window resets on every state
// transition so stale history cannot mask a relapse (or keep punishing a
// recovered replica).
type Breaker struct {
	cfg      BreakerConfig
	state    BreakerState
	outcomes []bool // ring, true = failure
	n, next  int
	failures int

	openedUntil sim.Time
	probesOut   int

	// onTransition, when non-nil, observes every state change (telemetry
	// and stats; it must not call back into the breaker).
	onTransition func(from, to BreakerState)
}

// NewBreaker builds a closed breaker.
func NewBreaker(cfg BreakerConfig) *Breaker {
	cfg = cfg.withDefaults()
	return &Breaker{cfg: cfg, outcomes: make([]bool, cfg.Window)}
}

// State returns the breaker's current position without advancing it.
func (b *Breaker) State() BreakerState {
	if b == nil {
		return BreakerClosed
	}
	return b.state
}

// Allow reports whether a request may be routed to the replica at now. It
// performs the open→half-open transition when the cooldown has expired.
// Nil-safe: a nil breaker always allows (breakers disabled).
func (b *Breaker) Allow(now sim.Time) bool {
	if b == nil {
		return true
	}
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if now < b.openedUntil {
			return false
		}
		b.transition(BreakerHalfOpen)
		return b.probesOut < b.cfg.Probes
	case BreakerHalfOpen:
		return b.probesOut < b.cfg.Probes
	default:
		return true
	}
}

// OnSend records that a request was routed to the replica (a probe, when
// half-open). Nil-safe.
func (b *Breaker) OnSend() {
	if b == nil {
		return
	}
	if b.state == BreakerHalfOpen {
		b.probesOut++
	}
}

// Record feeds one outcome (ok = completed within SLO) and applies the
// state machine. Nil-safe.
func (b *Breaker) Record(now sim.Time, ok bool) {
	if b == nil {
		return
	}
	switch b.state {
	case BreakerClosed:
		b.push(!ok)
		if b.n >= b.cfg.MinVolume &&
			float64(b.failures) >= b.cfg.FailureRate*float64(b.n) {
			b.openedUntil = now + b.cfg.Cooldown
			b.transition(BreakerOpen)
		}
	case BreakerHalfOpen:
		if b.probesOut > 0 {
			b.probesOut--
		}
		if ok {
			b.transition(BreakerClosed)
		} else {
			b.openedUntil = now + b.cfg.Cooldown
			b.transition(BreakerOpen)
		}
	case BreakerOpen:
		// Stale completions from before the trip; the cooldown is already
		// running, nothing to learn.
	}
}

// Trip forces the breaker open (the replica's node died). Nil-safe.
func (b *Breaker) Trip(now sim.Time) {
	if b == nil || b.state == BreakerOpen {
		return
	}
	b.openedUntil = now + b.cfg.Cooldown
	b.transition(BreakerOpen)
}

func (b *Breaker) push(failure bool) {
	if b.n == len(b.outcomes) {
		if b.outcomes[b.next] {
			b.failures--
		}
	} else {
		b.n++
	}
	b.outcomes[b.next] = failure
	if failure {
		b.failures++
	}
	b.next = (b.next + 1) % len(b.outcomes)
}

func (b *Breaker) transition(to BreakerState) {
	from := b.state
	b.state = to
	// Every transition clears the window and probe count: each state
	// reasons only about evidence gathered while in it.
	b.n, b.next, b.failures, b.probesOut = 0, 0, 0, 0
	if b.onTransition != nil {
		b.onTransition(from, to)
	}
}
