package gateway

import (
	"fmt"

	"krisp/internal/telemetry"
)

// Telemetry mirrors gateway decisions into the live metrics registry as
// the krisp_gateway_* series. Nil-safe throughout: a nil registry yields a
// nil *Telemetry whose methods no-op, and fleet results are byte-identical
// with telemetry on or off — it only observes.
type Telemetry struct {
	admitted     *telemetry.Counter
	shedDeadline *telemetry.Counter
	shedTenant   *telemetry.Counter
	shedOverload *telemetry.Counter
	shedQueue    *telemetry.Counter

	hedges       *telemetry.Counter
	hedgeWins    *telemetry.Counter
	retries      *telemetry.Counter
	cancelled    *telemetry.Counter
	budgetDenied *telemetry.Counter

	breakerOpens     *telemetry.Counter
	breakerHalfOpens *telemetry.Counter
	breakerCloses    *telemetry.Counter
	breakersOpen     *telemetry.Gauge

	tenantAdmitted []*telemetry.Counter
	tenantShed     []*telemetry.Counter
}

// NewTelemetry registers the gateway series. A nil registry returns nil.
func NewTelemetry(reg *telemetry.Registry, tenants []Tenant) *Telemetry {
	if reg == nil {
		return nil
	}
	t := &Telemetry{
		admitted:     reg.Counter("krisp_gateway_admitted_total", "requests admitted by the gateway"),
		shedDeadline: reg.Counter(`krisp_gateway_shed_total{reason="deadline"}`, "requests shed at admission: SLO already infeasible"),
		shedTenant:   reg.Counter(`krisp_gateway_shed_total{reason="tenant-rate"}`, "requests shed at admission: tenant token bucket empty"),
		shedOverload: reg.Counter(`krisp_gateway_shed_total{reason="overload"}`, "requests shed at admission: global bucket below the class reserve"),
		shedQueue:    reg.Counter(`krisp_gateway_shed_total{reason="queue"}`, "admitted requests shed from the router queue: deadline no longer feasible"),

		hedges:       reg.Counter("krisp_gateway_hedges_total", "hedge copies sent"),
		hedgeWins:    reg.Counter("krisp_gateway_hedge_wins_total", "requests whose hedge copy completed first"),
		retries:      reg.Counter("krisp_gateway_retries_total", "requests re-sent after every copy died with its replica"),
		cancelled:    reg.Counter("krisp_gateway_cancelled_total", "losing hedge copies cancelled"),
		budgetDenied: reg.Counter("krisp_gateway_budget_denied_total", "hedges/retries refused by the retry budget"),

		breakerOpens:     reg.Counter("krisp_gateway_breaker_opens_total", "circuit breaker transitions to open"),
		breakerHalfOpens: reg.Counter("krisp_gateway_breaker_half_opens_total", "circuit breaker transitions to half-open"),
		breakerCloses:    reg.Counter("krisp_gateway_breaker_closes_total", "circuit breaker transitions back to closed"),
		breakersOpen:     reg.Gauge("krisp_gateway_breakers_open", "replicas currently behind an open breaker"),
	}
	for _, ten := range tenants {
		t.tenantAdmitted = append(t.tenantAdmitted, reg.Counter(
			fmt.Sprintf(`krisp_gateway_tenant_admitted_total{tenant="%d"}`, ten.ID),
			"requests admitted per tenant"))
		t.tenantShed = append(t.tenantShed, reg.Counter(
			fmt.Sprintf(`krisp_gateway_tenant_shed_total{tenant="%d"}`, ten.ID),
			"requests shed per tenant"))
	}
	return t
}

func (t *Telemetry) admit(tenantIdx int) {
	if t == nil {
		return
	}
	t.admitted.Inc()
	t.tenantAdmitted[tenantIdx].Inc()
}

func (t *Telemetry) shed(v Verdict, tenantIdx int) {
	if t == nil {
		return
	}
	switch v {
	case ShedDeadline:
		t.shedDeadline.Inc()
	case ShedTenantRate:
		t.shedTenant.Inc()
	case ShedOverload:
		t.shedOverload.Inc()
	}
	t.tenantShed[tenantIdx].Inc()
}

func (t *Telemetry) queueShed(tenantIdx int) {
	if t == nil {
		return
	}
	t.shedQueue.Inc()
	t.tenantShed[tenantIdx].Inc()
}

func (t *Telemetry) hedge() {
	if t != nil {
		t.hedges.Inc()
	}
}

func (t *Telemetry) hedgeWin() {
	if t != nil {
		t.hedgeWins.Inc()
	}
}

func (t *Telemetry) retry() {
	if t != nil {
		t.retries.Inc()
	}
}

func (t *Telemetry) cancel() {
	if t != nil {
		t.cancelled.Inc()
	}
}

func (t *Telemetry) denied() {
	if t != nil {
		t.budgetDenied.Inc()
	}
}

func (t *Telemetry) breakerOpen() {
	if t == nil {
		return
	}
	t.breakerOpens.Inc()
	t.breakersOpen.Add(1)
}

func (t *Telemetry) breakerHalfOpen() {
	if t == nil {
		return
	}
	t.breakerHalfOpens.Inc()
	t.breakersOpen.Add(-1)
}

func (t *Telemetry) breakerClose() {
	if t != nil {
		t.breakerCloses.Inc()
	}
}

// breakerGone adjusts the open gauge when an open breaker's replica is
// removed (node death or drain) rather than recovering.
func (t *Telemetry) breakerGone() {
	if t != nil {
		t.breakersOpen.Add(-1)
	}
}
