package gateway

import (
	"testing"

	"krisp/internal/sim"
	"krisp/internal/telemetry"
)

// fakeFabric is a scripted routing layer: PickReplica returns the first
// entry of pickQueue not equal to exclude (or -1), and every send/cancel
// is logged for assertions.
type fakeFabric struct {
	picks   []int
	bestUs  float64
	sends   []fakeSend
	cancels []fakeCancel
}

type fakeSend struct {
	model, replica int
	id             uint64
	kind           CopyKind
}

type fakeCancel struct {
	replica int
	id      uint64
}

func (f *fakeFabric) PickReplica(model, exclude int, now sim.Time) int {
	for _, p := range f.picks {
		if p != exclude {
			return p
		}
	}
	return -1
}

func (f *fakeFabric) SendCopy(model, replica int, id uint64, arrival sim.Time, kind CopyKind) {
	f.sends = append(f.sends, fakeSend{model, replica, id, kind})
}

func (f *fakeFabric) CancelCopy(replica int, id uint64) {
	f.cancels = append(f.cancels, fakeCancel{replica, id})
}

func (f *fakeFabric) BestLatencyUs(model int, now sim.Time) float64 { return f.bestUs }

func testModels() []ModelSLO {
	return []ModelSLO{{Name: "m0", SLOUs: 10_000}}
}

func TestTokenBucketRefillAndTake(t *testing.T) {
	b := NewTokenBucket(1000, 10) // 1000/s, depth 10
	if !b.Take(10) {
		t.Fatal("full bucket should cover its burst")
	}
	if b.Take(1) {
		t.Fatal("empty bucket granted a token")
	}
	b.Refill(5 * sim.Millisecond) // 1000/s * 5ms = 5 tokens
	if got := b.Tokens(); got < 4.999 || got > 5.001 {
		t.Fatalf("after 5ms at 1000/s want ~5 tokens, got %v", got)
	}
	b.Refill(10 * sim.Second)
	if got := b.Tokens(); got != 10 {
		t.Fatalf("refill must cap at burst: got %v", got)
	}
	// Unlimited bucket: rate <= 0 always grants.
	u := NewTokenBucket(0, 0)
	for i := 0; i < 1000; i++ {
		if !u.Take(1) {
			t.Fatal("unlimited bucket denied")
		}
	}
}

func TestTokenBucketReserve(t *testing.T) {
	b := NewTokenBucket(100, 10)
	// Reserve of 5: only the top half is drawable.
	for i := 0; i < 5; i++ {
		if !b.TakeAbove(1, 5) {
			t.Fatalf("take %d above reserve should succeed", i)
		}
	}
	if b.TakeAbove(1, 5) {
		t.Fatal("take below reserve must fail")
	}
	if !b.TakeAbove(1, 0) {
		t.Fatal("reserve 0 should still see the reserved tokens")
	}
}

func TestBreakerTripsAndRecovers(t *testing.T) {
	transitions := []BreakerState{}
	b := NewBreaker(BreakerConfig{Window: 8, MinVolume: 4, FailureRate: 0.5, Cooldown: sim.Millisecond, Probes: 1})
	b.onTransition = func(_, to BreakerState) { transitions = append(transitions, to) }

	now := sim.Time(0)
	// Three failures in a row: below MinVolume, must stay closed.
	for i := 0; i < 3; i++ {
		b.Record(now, false)
	}
	if b.State() != BreakerClosed {
		t.Fatalf("tripped below MinVolume: %v", b.State())
	}
	b.Record(now, false) // 4th failure: 4/4 >= 0.5 with volume met
	if b.State() != BreakerOpen {
		t.Fatalf("want open, got %v", b.State())
	}
	if b.Allow(now) {
		t.Fatal("open breaker allowed traffic before cooldown")
	}

	// Cooldown expires: Allow flips to half-open and admits one probe.
	now += 2 * sim.Millisecond
	if !b.Allow(now) {
		t.Fatal("cooled-down breaker refused the probe")
	}
	if b.State() != BreakerHalfOpen {
		t.Fatalf("want half-open, got %v", b.State())
	}
	b.OnSend()
	if b.Allow(now) {
		t.Fatal("second concurrent probe allowed with Probes=1")
	}
	// Probe fails: re-open.
	b.Record(now, false)
	if b.State() != BreakerOpen {
		t.Fatalf("failed probe should re-open, got %v", b.State())
	}

	// Next probe succeeds: closed.
	now += 2 * sim.Millisecond
	if !b.Allow(now) {
		t.Fatal("second cooldown refused the probe")
	}
	b.OnSend()
	b.Record(now, true)
	if b.State() != BreakerClosed {
		t.Fatalf("successful probe should close, got %v", b.State())
	}

	want := []BreakerState{BreakerOpen, BreakerHalfOpen, BreakerOpen, BreakerHalfOpen, BreakerClosed}
	if len(transitions) != len(want) {
		t.Fatalf("transitions %v, want %v", transitions, want)
	}
	for i := range want {
		if transitions[i] != want[i] {
			t.Fatalf("transitions %v, want %v", transitions, want)
		}
	}
}

func TestBreakerWindowSlides(t *testing.T) {
	b := NewBreaker(BreakerConfig{Window: 4, MinVolume: 4, FailureRate: 0.75})
	now := sim.Time(0)
	// 2 failures then 2 successes: rate 0.5 < 0.75, closed.
	b.Record(now, false)
	b.Record(now, false)
	b.Record(now, true)
	b.Record(now, true)
	if b.State() != BreakerClosed {
		t.Fatal("rate below threshold must stay closed")
	}
	// Two more failures slide the successes out: window is F F T T -> T T F F
	// after two pushes... 3/4 on the third.
	b.Record(now, false)
	b.Record(now, false)
	if b.State() != BreakerClosed {
		t.Fatal("2/4 failures must stay closed")
	}
	b.Record(now, false)
	if b.State() != BreakerOpen {
		t.Fatal("3/4 failures at threshold 0.75 must open")
	}
}

func TestBudgetInvariant(t *testing.T) {
	b := NewBudget(0.5, 4)
	granted := uint64(0)
	for i := 0; i < 100; i++ {
		b.Credit()
		if b.Take() {
			granted++
		}
		if b.Take() { // second take same credit: must eventually be denied
			granted++
		}
	}
	// Invariant: granted <= ratio*primaries + burst.
	if max := uint64(0.5*100 + 4); granted > max {
		t.Fatalf("budget leaked: granted %d > %d", granted, max)
	}
	if b.Denied() == 0 {
		t.Fatal("overdraw never denied")
	}
	// Disabled budget never grants.
	d := NewBudget(0, 0)
	d.Credit()
	if d.Take() {
		t.Fatal("disabled budget granted")
	}
}

func TestAdmitVerdicts(t *testing.T) {
	fab := &fakeFabric{picks: []int{1}, bestUs: 1000}
	g := New(Config{
		Tenants:          []Tenant{{ID: 7, Weight: 1, Class: 0}, {ID: 8, Weight: 1, Class: 1}},
		GlobalRatePerSec: 1000,
		GlobalBurst:      16,
	}, testModels(), fab, nil)
	g.BeginTick(0)

	if got := g.Admit(0, 0, 0, 0); got != Admitted {
		t.Fatalf("plain admit: %v", got)
	}
	// Deadline: best latency 1000us > slack when SLO already blown.
	fab.bestUs = 20_000
	if got := g.Admit(0, 0, 0, 0); got != ShedDeadline {
		t.Fatalf("infeasible deadline: %v", got)
	}
	fab.bestUs = 1000

	// Drain tenant 8's bucket (class 1): its global reserve is half the
	// depth, so it sheds on overload before the global bucket is empty.
	t8 := g.TenantIndex(8)
	sawOverload := false
	for i := 0; i < 10_000; i++ {
		v := g.Admit(0, 0, 0, t8)
		if v == ShedOverload {
			sawOverload = true
			break
		}
		if v == ShedTenantRate {
			break
		}
	}
	if !sawOverload {
		t.Fatal("class-1 tenant never hit the global reserve")
	}
	// Class 0 can still draw from the reserve.
	if got := g.Admit(0, 0, 0, g.TenantIndex(7)); got != Admitted && got != ShedTenantRate {
		t.Fatalf("class-0 should keep drawing the reserve, got %v", got)
	}

	s := g.Snapshot()
	if s.Shed() == 0 || s.ShedDeadline != 1 {
		t.Fatalf("stats not recorded: %+v", s)
	}
}

func TestAdmitUnlimitedNeverSheds(t *testing.T) {
	fab := &fakeFabric{picks: []int{0}, bestUs: 100}
	cfg := Config{}
	if cfg.RateLimited() {
		t.Fatal("zero config claims rate-limited")
	}
	g := New(cfg, testModels(), fab, nil)
	g.BeginTick(0)
	for i := 0; i < 10_000; i++ {
		if v := g.Admit(0, 0, 0, 0); v != Admitted {
			t.Fatalf("unlimited gateway shed: %v", v)
		}
	}
}

func TestHedgeLifecycle(t *testing.T) {
	fab := &fakeFabric{picks: []int{1, 2}, bestUs: 100}
	g := New(Config{HedgeMinDelay: sim.Millisecond, Budget: 1}, testModels(), fab, nil)
	g.BeginTick(0)

	g.OnPrimarySend(42, 0, 0, 1, 0, 0)
	// Before the delay: no hedge.
	g.HedgeScan(500 * sim.Microsecond)
	if len(fab.sends) != 0 {
		t.Fatalf("hedged before delay: %+v", fab.sends)
	}
	// Past the delay (cold window -> max(SLO/2=5ms, min 1ms) = 5ms).
	g.HedgeScan(6 * sim.Millisecond)
	if len(fab.sends) != 1 || fab.sends[0].kind != CopyHedge || fab.sends[0].replica != 2 {
		t.Fatalf("want one hedge to replica 2, got %+v", fab.sends)
	}
	// Second scan must not re-hedge.
	g.HedgeScan(7 * sim.Millisecond)
	if len(fab.sends) != 1 {
		t.Fatalf("re-hedged: %+v", fab.sends)
	}

	// Hedge completes first: winner, loser (primary replica 1) cancelled.
	if !g.OnCompletion(42, 2, 8*sim.Millisecond, 8*sim.Millisecond) {
		t.Fatal("hedge completion should win")
	}
	if len(fab.cancels) != 1 || fab.cancels[0].replica != 1 || fab.cancels[0].id != 42 {
		t.Fatalf("want cancel of primary copy, got %+v", fab.cancels)
	}
	// The cancelled primary's completion, if it still arrives, must not count.
	if g.OnCompletion(42, 1, 9*sim.Millisecond, 9*sim.Millisecond) {
		t.Fatal("losing copy counted")
	}
	s := g.Snapshot()
	if s.Hedges != 1 || s.HedgeWins != 1 || s.Cancelled != 1 {
		t.Fatalf("hedge stats wrong: %+v", s)
	}
}

func TestHedgeRespectsDeadlineAndBudget(t *testing.T) {
	fab := &fakeFabric{picks: []int{1, 2}, bestUs: 100}
	g := New(Config{HedgeMinDelay: sim.Millisecond, Budget: -1}, testModels(), fab, nil)
	g.BeginTick(0)
	g.OnPrimarySend(1, 0, 0, 1, 0, 0)
	g.HedgeScan(6 * sim.Millisecond)
	if len(fab.sends) != 0 {
		t.Fatal("disabled budget still hedged")
	}
	if g.BudgetDenied() == 0 {
		t.Fatal("budget denial not counted")
	}

	// Past the deadline: pointless hedge suppressed even with budget.
	g2 := New(Config{HedgeMinDelay: sim.Millisecond, Budget: 10}, testModels(), fab, nil)
	g2.OnPrimarySend(1, 0, 0, 1, 0, 0)
	g2.HedgeScan(11 * sim.Millisecond) // SLO is 10ms
	if len(fab.sends) != 0 {
		t.Fatal("hedged past the deadline")
	}
}

func TestReplicaDownRetriesOrFails(t *testing.T) {
	fab := &fakeFabric{picks: []int{5}, bestUs: 100}
	g := New(Config{Budget: 1}, testModels(), fab, nil)
	g.BeginTick(0)

	g.OnPrimarySend(1, 0, 0, 3, 0, 0)
	if failed := g.OnReplicaDown(3, sim.Millisecond); failed != 0 {
		t.Fatalf("retryable request counted as failed: %d", failed)
	}
	if len(fab.sends) != 1 || fab.sends[0].kind != CopyRetry || fab.sends[0].replica != 5 {
		t.Fatalf("want retry to replica 5, got %+v", fab.sends)
	}
	// The retried request resolves normally on the new replica.
	if !g.OnCompletion(1, 5, 2*sim.Millisecond, 2*sim.Millisecond) {
		t.Fatal("retried completion should count")
	}

	// No replica available: the request fails.
	fab.sends = nil
	fab.picks = nil
	g.OnPrimarySend(2, 0, 0, 4, 0, 0)
	if failed := g.OnReplicaDown(4, sim.Millisecond); failed != 1 {
		t.Fatalf("unretryable request not failed: %d", failed)
	}
	// Past the deadline: fail without consuming budget.
	fab.picks = []int{6}
	g.OnPrimarySend(3, 0, 0, 4, 0, 0)
	if failed := g.OnReplicaDown(4, 11*sim.Millisecond); failed != 1 {
		t.Fatalf("expired request not failed: %d", failed)
	}
	s := g.Snapshot()
	if s.Retries != 1 {
		t.Fatalf("want 1 retry, got %+v", s)
	}
}

func TestReplicaDownSurvivingHedgeContinues(t *testing.T) {
	fab := &fakeFabric{picks: []int{1, 2}, bestUs: 100}
	g := New(Config{HedgeMinDelay: sim.Millisecond, Budget: 1}, testModels(), fab, nil)
	g.BeginTick(0)
	g.OnPrimarySend(9, 0, 0, 1, 0, 0)
	g.HedgeScan(6 * sim.Millisecond)
	if len(fab.sends) != 1 {
		t.Fatalf("no hedge: %+v", fab.sends)
	}
	// Primary's replica dies; the hedge copy is still alive, so nothing fails.
	if failed := g.OnReplicaDown(1, 7*sim.Millisecond); failed != 0 {
		t.Fatalf("request with live hedge failed: %d", failed)
	}
	// Hedge completes: wins, but there is no loser copy left to cancel.
	if !g.OnCompletion(9, 2, 8*sim.Millisecond, 8*sim.Millisecond) {
		t.Fatal("surviving hedge should win")
	}
	if len(fab.cancels) != 0 {
		t.Fatalf("cancelled a dead copy: %+v", fab.cancels)
	}
}

func TestGatewayTelemetryMirrorsStats(t *testing.T) {
	reg := telemetry.NewHub(false).Registry()
	fab := &fakeFabric{picks: []int{1, 2}, bestUs: 100}
	g := New(Config{HedgeMinDelay: sim.Millisecond, Budget: 1, GlobalRatePerSec: 1e6},
		testModels(), fab, reg)
	g.BeginTick(0)

	g.Admit(0, 0, 0, 0)
	g.OnPrimarySend(1, 0, 0, 1, 0, 0)
	g.HedgeScan(6 * sim.Millisecond)
	g.OnCompletion(1, 2, 8*sim.Millisecond, 8*sim.Millisecond)

	find := func(name string) uint64 {
		for _, s := range reg.Snapshot() {
			if s.Name == name {
				return uint64(s.Value)
			}
		}
		t.Fatalf("series %q not registered", name)
		return 0
	}
	if got := find("krisp_gateway_admitted_total"); got != 1 {
		t.Fatalf("admitted counter: %d", got)
	}
	if got := find("krisp_gateway_hedges_total"); got != 1 {
		t.Fatalf("hedges counter: %d", got)
	}
	if got := find("krisp_gateway_hedge_wins_total"); got != 1 {
		t.Fatalf("hedge wins counter: %d", got)
	}
	if got := find("krisp_gateway_cancelled_total"); got != 1 {
		t.Fatalf("cancelled counter: %d", got)
	}
}

func BenchmarkGatewayAdmission(b *testing.B) {
	fab := &fakeFabric{picks: []int{1}, bestUs: 100}
	g := New(Config{GlobalRatePerSec: 1e12, GlobalBurst: 1e12}, testModels(), fab, nil)
	g.BeginTick(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Admit(0, 0, 0, 0)
	}
}
