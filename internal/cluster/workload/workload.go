// Package workload generates deterministic request-arrival traces for the
// cluster fleet simulation: Poisson arrivals whose instantaneous rate
// follows a constant, diurnal (sinusoidal), or bursty profile, or any
// composition of the three.
//
// Arrival times are drawn by thinning a homogeneous Poisson process at the
// profile's peak rate, so any non-negative bounded rate function works and
// a given (generator, seed, window) triple always yields the same trace —
// the property the cluster's determinism tests lean on.
package workload

import (
	"math"
	"math/rand"

	"krisp/internal/sim"
)

// Generator is a time-varying request-rate profile. Rate must be
// non-negative and bounded above by MaxRate over any window it is asked
// about.
type Generator interface {
	// Rate returns the instantaneous arrival rate (requests/second) at
	// virtual time t.
	Rate(t sim.Time) float64
	// MaxRate returns an upper bound on Rate over all t — the thinning
	// envelope.
	MaxRate() float64
}

// Constant is a fixed-rate Poisson profile.
type Constant struct {
	RatePerSec float64
}

func (c Constant) Rate(sim.Time) float64 { return c.RatePerSec }
func (c Constant) MaxRate() float64      { return c.RatePerSec }

// Diurnal is a day/night sinusoid: rate oscillates between Trough and Peak
// with the given Period. Phase shifts the cycle start (0 starts at the
// trough).
type Diurnal struct {
	Trough, Peak float64
	Period       sim.Duration
	Phase        float64 // radians
}

func (d Diurnal) Rate(t sim.Time) float64 {
	if d.Period <= 0 {
		return d.Trough
	}
	// 0.5*(1-cos) sweeps 0→1→0 over one period, starting at 0.
	frac := 0.5 * (1 - math.Cos(2*math.Pi*float64(t)/float64(d.Period)+d.Phase))
	return d.Trough + (d.Peak-d.Trough)*frac
}

func (d Diurnal) MaxRate() float64 { return math.Max(d.Trough, d.Peak) }

// Burst overlays rectangular bursts on a base profile: every Every of
// virtual time, the rate is multiplied by Factor for Length.
type Burst struct {
	Base   Generator
	Every  sim.Duration
	Length sim.Duration
	Factor float64
}

func (b Burst) Rate(t sim.Time) float64 {
	r := b.Base.Rate(t)
	if b.Every <= 0 || b.Length <= 0 || b.Factor <= 1 {
		return r
	}
	if math.Mod(float64(t), float64(b.Every)) < float64(b.Length) {
		return r * b.Factor
	}
	return r
}

func (b Burst) MaxRate() float64 {
	f := b.Factor
	if f < 1 {
		f = 1
	}
	return b.Base.MaxRate() * f
}

// Scale multiplies a base profile by a constant factor.
type Scale struct {
	Base   Generator
	Factor float64
}

func (s Scale) Rate(t sim.Time) float64 { return s.Base.Rate(t) * s.Factor }
func (s Scale) MaxRate() float64        { return s.Base.MaxRate() * s.Factor }

// Arrivals appends every arrival in [from, to) to buf and returns it,
// sampling the generator's inhomogeneous Poisson process by thinning: a
// homogeneous candidate stream at MaxRate is kept with probability
// Rate(t)/MaxRate. The rng is consumed deterministically — equal (g, rng
// state, window) triples produce identical traces.
func Arrivals(g Generator, rng *rand.Rand, from, to sim.Time, buf []sim.Time) []sim.Time {
	peak := g.MaxRate()
	if peak <= 0 || to <= from {
		return buf
	}
	meanGapUs := 1e6 / peak
	for t := from; ; {
		t += sim.Duration(rng.ExpFloat64() * meanGapUs)
		if t >= to {
			return buf
		}
		if r := g.Rate(t); r > 0 && rng.Float64() < r/peak {
			buf = append(buf, t)
		}
	}
}

// TenantShare is one tenant's slice of an arrival stream: arrivals are
// attributed to tenants in proportion to Weight. It describes the traffic
// mix only — entitlement (how much of that traffic is admitted) lives in
// the gateway's tenant config, so a tenant can offer more than its fair
// share and be shed back down.
type TenantShare struct {
	ID     int
	Weight float64 // non-positive means 1
}

// TenantArrival is one arrival tagged with the tenant that issued it.
type TenantArrival struct {
	At     sim.Time
	Tenant int // TenantShare.ID
}

// TenantArrivals appends every arrival in [from, to) to buf with a tenant
// drawn per arrival in proportion to the shares' weights. With zero or one
// share no tenant draw happens and the rng is consumed exactly as Arrivals
// consumes it, so single-tenant traces are byte-identical in their
// timestamps to the untagged generator (the regression the workload tests
// pin down).
func TenantArrivals(g Generator, rng *rand.Rand, shares []TenantShare, from, to sim.Time, buf []TenantArrival) []TenantArrival {
	peak := g.MaxRate()
	if peak <= 0 || to <= from {
		return buf
	}
	single := 0
	if len(shares) >= 1 {
		single = shares[0].ID
	}
	sumW := 0.0
	for _, s := range shares {
		w := s.Weight
		if w <= 0 {
			w = 1
		}
		sumW += w
	}
	meanGapUs := 1e6 / peak
	for t := from; ; {
		t += sim.Duration(rng.ExpFloat64() * meanGapUs)
		if t >= to {
			return buf
		}
		if r := g.Rate(t); r > 0 && rng.Float64() < r/peak {
			tenant := single
			if len(shares) > 1 {
				tenant = shares[len(shares)-1].ID
				u := rng.Float64() * sumW
				for _, s := range shares {
					w := s.Weight
					if w <= 0 {
						w = 1
					}
					if u -= w; u < 0 {
						tenant = s.ID
						break
					}
				}
			}
			buf = append(buf, TenantArrival{At: t, Tenant: tenant})
		}
	}
}

// LengthDist is a prompt/output token-length distribution for
// autoregressive (LLM) workloads: lengths are drawn uniformly in
// [Min, Max] per request from the workload's own arrival RNG, so a given
// (dist, rng state) pair always yields the same length trace. Zero bounds
// fall back to a 128-token prompt and 32-token output.
type LengthDist struct {
	PromptMin, PromptMax int
	OutputMin, OutputMax int
}

// span normalizes one [min, max] pair against a default.
func span(min, max, def int) (int, int) {
	if min <= 0 && max <= 0 {
		min, max = def, def
	}
	if min <= 0 {
		min = 1
	}
	if max < min {
		max = min
	}
	return min, max
}

// Draw samples one (prompt, output) pair, consuming one rng draw per
// non-degenerate span — the consumption pattern depends only on the dist,
// never on prior draws, so callers that interleave Draw with other rng
// use still get reproducible traces.
func (d LengthDist) Draw(rng *rand.Rand) (prompt, output int) {
	pmin, pmax := span(d.PromptMin, d.PromptMax, 128)
	omin, omax := span(d.OutputMin, d.OutputMax, 32)
	prompt, output = pmin, omin
	if pmax > pmin {
		prompt += rng.Intn(pmax - pmin + 1)
	}
	if omax > omin {
		output += rng.Intn(omax - omin + 1)
	}
	return prompt, output
}

// MeanTokens returns the distribution's mean prompt and output lengths.
func (d LengthDist) MeanTokens() (prompt, output float64) {
	pmin, pmax := span(d.PromptMin, d.PromptMax, 128)
	omin, omax := span(d.OutputMin, d.OutputMax, 32)
	return float64(pmin+pmax) / 2, float64(omin+omax) / 2
}

// MeanRate numerically averages the profile over [from, to) — handy for
// sizing demand forecasts without sampling.
func MeanRate(g Generator, from, to sim.Time) float64 {
	if to <= from {
		return g.Rate(from)
	}
	const steps = 64
	sum := 0.0
	dt := (to - from) / steps
	for i := 0; i < steps; i++ {
		sum += g.Rate(from + (sim.Duration(i)+0.5)*dt)
	}
	return sum / steps
}
