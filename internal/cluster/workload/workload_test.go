package workload

import (
	"math"
	"math/rand"
	"testing"

	"krisp/internal/sim"
)

func TestConstant(t *testing.T) {
	g := Constant{RatePerSec: 100}
	if g.Rate(0) != 100 || g.Rate(5*sim.Second) != 100 {
		t.Fatal("constant rate varies")
	}
	if g.MaxRate() != 100 {
		t.Fatal("bad envelope")
	}
	if got := MeanRate(g, 0, sim.Second); math.Abs(got-100) > 1e-9 {
		t.Fatalf("mean = %v, want 100", got)
	}
}

func TestDiurnalSweep(t *testing.T) {
	g := Diurnal{Trough: 10, Peak: 110, Period: 1000}
	if got := g.Rate(0); math.Abs(got-10) > 1e-9 {
		t.Fatalf("rate at trough = %v, want 10", got)
	}
	if got := g.Rate(500); math.Abs(got-110) > 1e-9 {
		t.Fatalf("rate at peak = %v, want 110", got)
	}
	if g.MaxRate() != 110 {
		t.Fatalf("envelope = %v, want 110", g.MaxRate())
	}
	// Mean over a full period is the midpoint of trough and peak.
	if got := MeanRate(g, 0, 1000); math.Abs(got-60) > 1.0 {
		t.Fatalf("mean over period = %v, want ~60", got)
	}
	// Periodicity.
	if math.Abs(g.Rate(250)-g.Rate(1250)) > 1e-9 {
		t.Fatal("rate not periodic")
	}
}

func TestBurstOverlay(t *testing.T) {
	g := Burst{
		Base:   Constant{RatePerSec: 50},
		Every:  1000,
		Length: 100,
		Factor: 4,
	}
	if got := g.Rate(50); math.Abs(got-200) > 1e-9 {
		t.Fatalf("in-burst rate = %v, want 200", got)
	}
	if got := g.Rate(500); math.Abs(got-50) > 1e-9 {
		t.Fatalf("off-burst rate = %v, want 50", got)
	}
	if got := g.MaxRate(); math.Abs(got-200) > 1e-9 {
		t.Fatalf("envelope = %v, want 200", got)
	}
}

func TestScale(t *testing.T) {
	g := Scale{Base: Constant{RatePerSec: 50}, Factor: 2}
	if g.Rate(0) != 100 || g.MaxRate() != 100 {
		t.Fatal("scale not applied")
	}
}

func TestArrivalsPoissonCount(t *testing.T) {
	g := Constant{RatePerSec: 2000}
	rng := rand.New(rand.NewSource(7))
	var total int
	runs := 50
	for i := 0; i < runs; i++ {
		buf := Arrivals(g, rng, 0, sim.Second, nil)
		total += len(buf)
		for j := 1; j < len(buf); j++ {
			if buf[j] < buf[j-1] {
				t.Fatal("arrivals not sorted")
			}
		}
		for _, a := range buf {
			if a < 0 || a >= sim.Second {
				t.Fatalf("arrival %v outside window", a)
			}
		}
	}
	mean := float64(total) / float64(runs)
	// Poisson(2000): the mean over 50 runs should land within a few
	// standard errors (sigma/sqrt(50) ~ 6.3).
	if math.Abs(mean-2000) > 40 {
		t.Fatalf("mean arrivals = %v, want ~2000", mean)
	}
}

func TestArrivalsThinningTracksRate(t *testing.T) {
	// The inhomogeneous sampler must put more arrivals where the rate is
	// higher: compare the two halves of a diurnal period.
	g := Diurnal{Trough: 100, Peak: 4000, Period: 100 * sim.Millisecond}
	rng := rand.New(rand.NewSource(11))
	rising, falling := 0, 0
	for i := 0; i < 20; i++ {
		buf := Arrivals(g, rng, 0, 100*sim.Millisecond, nil)
		for _, a := range buf {
			if a < 25*sim.Millisecond || a >= 75*sim.Millisecond {
				falling++
			} else {
				rising++ // middle half straddles the peak
			}
		}
	}
	if rising <= falling*2 {
		t.Fatalf("thinning ignores the rate profile: peak-half=%d trough-half=%d", rising, falling)
	}
}

func TestArrivalsDeterministic(t *testing.T) {
	g := Burst{Base: Diurnal{Trough: 100, Peak: 1000, Period: 50 * sim.Millisecond},
		Every: 20 * sim.Millisecond, Length: 5 * sim.Millisecond, Factor: 3}
	a := Arrivals(g, rand.New(rand.NewSource(5)), 0, 50*sim.Millisecond, nil)
	b := Arrivals(g, rand.New(rand.NewSource(5)), 0, 50*sim.Millisecond, nil)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("arrival %d differs: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestArrivalsEmptyAndDegenerate(t *testing.T) {
	if got := Arrivals(Constant{}, rand.New(rand.NewSource(1)), 0, sim.Second, nil); len(got) != 0 {
		t.Fatalf("zero-rate generator produced %d arrivals", len(got))
	}
	g := Constant{RatePerSec: 100}
	if got := Arrivals(g, rand.New(rand.NewSource(1)), sim.Second, sim.Second, nil); len(got) != 0 {
		t.Fatalf("empty window produced %d arrivals", len(got))
	}
	if got := MeanRate(g, sim.Second, sim.Second); got != 100 {
		t.Fatalf("mean over empty window = %v, want the point rate", got)
	}
}

func TestTenantArrivalsSingleTenantByteIdentical(t *testing.T) {
	// Regression: single-tenant callers must see exactly the arrival stream
	// Arrivals produced before tenants existed — same rng draws, same
	// timestamps, byte for byte.
	g := Diurnal{Trough: 800, Peak: 5000, Period: 300 * sim.Millisecond}
	plain := Arrivals(g, rand.New(rand.NewSource(9)), 0, 400*sim.Millisecond, nil)
	tenanted := TenantArrivals(g, rand.New(rand.NewSource(9)),
		[]TenantShare{{ID: 7, Weight: 3}}, 0, 400*sim.Millisecond, nil)
	if len(plain) != len(tenanted) {
		t.Fatalf("lengths differ: %d vs %d", len(plain), len(tenanted))
	}
	for i := range plain {
		if plain[i] != tenanted[i].At {
			t.Fatalf("arrival %d: %v vs %v", i, plain[i], tenanted[i].At)
		}
		if tenanted[i].Tenant != 7 {
			t.Fatalf("arrival %d tagged tenant %d, want 7", i, tenanted[i].Tenant)
		}
	}
	// Nil shares behave the same: tenant 0, identical timestamps.
	anon := TenantArrivals(g, rand.New(rand.NewSource(9)), nil, 0, 400*sim.Millisecond, nil)
	for i := range plain {
		if anon[i].At != plain[i] || anon[i].Tenant != 0 {
			t.Fatalf("nil-share arrival %d = %+v, want {%v 0}", i, anon[i], plain[i])
		}
	}
}

func TestTenantArrivalsWeightedSplit(t *testing.T) {
	g := Constant{RatePerSec: 5000}
	shares := []TenantShare{{ID: 0, Weight: 1}, {ID: 1, Weight: 3}}
	arr := TenantArrivals(g, rand.New(rand.NewSource(4)), shares, 0, 2*sim.Second, nil)
	counts := map[int]int{}
	for _, a := range arr {
		counts[a.Tenant]++
	}
	if len(counts) != 2 {
		t.Fatalf("tenants seen = %v, want both", counts)
	}
	ratio := float64(counts[1]) / float64(counts[0])
	if ratio < 2.4 || ratio > 3.6 {
		t.Fatalf("weight-3 tenant got %.2fx the weight-1 tenant's arrivals, want ~3x", ratio)
	}
	// Deterministic per seed.
	again := TenantArrivals(g, rand.New(rand.NewSource(4)), shares, 0, 2*sim.Second, nil)
	for i := range arr {
		if arr[i] != again[i] {
			t.Fatalf("arrival %d differs across identical seeds", i)
		}
	}
}
