package cluster

import (
	"math"

	"krisp/internal/cluster/workload"
	"krisp/internal/sched"
	"krisp/internal/server"
	"krisp/internal/sim"
)

// autoscaler is the epoch-driven control loop: at every epoch boundary it
// forecasts each model's rate over the coming epoch, asks the placer for a
// fresh placement over the live slots, and applies the diff — spawning,
// resizing, and draining replicas, and booking the reconfiguration bill.
type autoscaler struct {
	placer   *placer
	epoch    sim.Duration
	headroom float64
	next     sim.Time
	epochs   int
}

// maybeReplan runs the control loop when now crosses the epoch boundary.
func (a *autoscaler) maybeReplan(f *Fleet, now sim.Time) {
	if now < a.next {
		return
	}
	a.next = now + a.epoch
	a.epochs++

	// Forecast: the mean offered rate over the epoch ahead, padded by the
	// headroom factor so the fleet keeps slack for Poisson bursts and for
	// the router to steer around slow replicas. A production autoscaler
	// would predict from history; the simulation forecasts from the
	// generator itself, which isolates placement behaviour from predictor
	// quality.
	demands := make([]sched.Demand, 0, len(f.cfg.Workloads))
	var llmInsts []llmInst
	for i, w := range f.cfg.Workloads {
		rate := a.headroom * workload.MeanRate(w.Gen, now, now+a.epoch)
		if lm := f.router.models[i].llm; lm != nil {
			llmInsts = appendLLMInsts(llmInsts, w.Model.Name, lm, rate)
			continue
		}
		demands = append(demands, sched.Demand{
			Model:      w.Model,
			Batch:      w.Batch,
			RatePerSec: rate,
		})
	}

	// Slots are interleaved gpu-major (node0/gpu0, node1/gpu0, ..., then
	// gpu1) so the placer's worst-fit tie-breaking walks across nodes
	// before doubling up on one — better fault isolation and a more
	// balanced fleet than filling node 0 to the brim first.
	maxGPUs := 0
	for _, n := range f.nodes {
		if n.up && n.node.NumGPUs() > maxGPUs {
			maxGPUs = n.node.NumGPUs()
		}
	}
	var slots []slot
	for g := 0; g < maxGPUs; g++ {
		for _, n := range f.nodes {
			if n.up && g < n.node.NumGPUs() {
				slots = append(slots, slot{node: n.id, gpu: g})
			}
		}
	}

	targets, unplaced := a.placer.place(demands, llmInsts, slots)
	f.res.Unplaced += unplaced

	acts := diff(f.liveHandles(), targets)
	proc, kern := reconfigBill(acts, f.cfg.Costs)
	f.res.ProcessScopedReload += proc
	f.res.KernelScopedReload += kern

	for _, ra := range acts.resize {
		f.drainReplica(ra.old)
		// Kernel-scoped resize: the replacement serves immediately — the
		// next kernel simply launches with the new partition budget.
		f.spawnReplica(ra.to, now)
		f.res.Resizes++
		f.tel.cResizes().Inc()
		f.tel.traceScaler(now, "resize", ra.old.id)
	}
	for _, t := range acts.migrate {
		readyAt := now
		if a.epochs > 1 {
			// Initial placement is a cold deploy (weights staged before
			// traffic); later moves pay the model load before serving.
			readyAt = now + f.cfg.Costs.ModelLoad
		}
		f.spawnReplica(t, readyAt)
		f.res.Migrations++
		f.tel.cMigrations().Inc()
		f.tel.traceScaler(now, "migrate", f.handleSeq-1) // the just-spawned handle
	}
	for _, h := range acts.drain {
		f.drainReplica(h)
		f.res.Drains++
		f.tel.cDrains().Inc()
		f.tel.traceScaler(now, "drain", h.id)
	}
}

// appendLLMInsts expands one LLM workload's forecast into pre-sized
// gpulets. Disaggregated fleets split into prefill instances (sized by
// prefill throughput) and decode instances (sized by token throughput),
// each at its phase's right-sized partition when PerPhase is set — the
// per-phase knees differ by 5x or more, so decode replicas pack several
// per GPU where a shared size allows one. Mixed fleets run both phases in
// every replica and are sized by full-sequence turnaround.
func appendLLMInsts(insts []llmInst, model string, lm *llmModelState, rate float64) []llmInst {
	sz := lm.sizing
	batch := lm.spec.MaxSeqs
	if lm.spec.Disaggregate {
		pcus, dcus := sz.SharedCUs, sz.SharedCUs
		if lm.spec.PerPhase {
			pcus, dcus = sz.PrefillCUs, sz.DecodeCUs
		}
		pre, dec := sz.Instances(rate, lm.meanOutput)
		for i := 0; i < pre; i++ {
			insts = append(insts, llmInst{model: model, batch: batch, cus: pcus, role: server.LLMRolePrefill})
		}
		for i := 0; i < dec; i++ {
			insts = append(insts, llmInst{model: model, batch: batch, cus: dcus, role: server.LLMRoleDecode})
		}
		return insts
	}
	seqUs := float64(sz.PrefillLatency) + float64(lm.meanOutput)*float64(sz.DecodeStepLatency)
	n := 1
	if rate > 0 && seqUs > 0 {
		seqPS := float64(batch) * 1e6 / seqUs
		if n = int(math.Ceil(rate / seqPS)); n < 1 {
			n = 1
		}
	}
	for i := 0; i < n; i++ {
		insts = append(insts, llmInst{model: model, batch: batch, cus: sz.SharedCUs})
	}
	return insts
}
