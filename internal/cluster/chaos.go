package cluster

import (
	"fmt"

	"krisp/internal/cluster/gateway"
	"krisp/internal/cluster/workload"
	"krisp/internal/faults"
	"krisp/internal/sim"
)

// ChaosScenario composes the node-scoped fault kinds into a named
// fleet-scale failure story. Scenarios mutate a fleet Config — faults,
// traffic shape, tenants — and scale their timings to the config's
// duration, so the same scenario runs on a 300ms test fleet or a
// multi-minute one. Everything a scenario injects is seed-driven virtual
// time: two runs with equal configs replay the identical failure.
type ChaosScenario struct {
	Name        string
	Description string
	apply       func(cfg *Config)
}

// Apply injects the scenario into the config. Call it after the config's
// fleet shape (nodes, workloads, duration) is final.
func (s *ChaosScenario) Apply(cfg *Config) { s.apply(cfg) }

// chaosDuration mirrors New's duration defaulting so scenarios can scale
// timings before the config is validated.
func chaosDuration(cfg *Config) sim.Duration {
	if cfg.Duration > 0 {
		return cfg.Duration
	}
	tick := cfg.Tick
	if tick <= 0 {
		tick = 2 * sim.Millisecond
	}
	epoch := cfg.Epoch
	if epoch <= 0 {
		epoch = 25 * tick
	}
	return 6 * epoch
}

func chaosNodes(cfg *Config) int {
	if cfg.Nodes >= 1 {
		return cfg.Nodes
	}
	return 3
}

// ChaosScenarios lists the built-in fleet chaos scenarios.
func ChaosScenarios() []ChaosScenario {
	return []ChaosScenario{
		{
			Name: "gray-node",
			Description: "all nodes but one gray-fail (stretched CUs + kernel stragglers): " +
				"alive, accepting, slow — the scenario circuit breakers and deadline admission exist for",
			apply: func(cfg *Config) {
				dur := chaosDuration(cfg)
				at := dur / 10
				for n := 0; n < chaosNodes(cfg)-1; n++ {
					cfg.NodeFaults = append(cfg.NodeFaults, faults.NodeFault{
						At: at, Node: n, Kind: faults.NodeGray,
						Stretch: 5, StragglerProb: 0.3,
					})
				}
			},
		},
		{
			Name: "flapping-gpu",
			Description: "one GPU repeatedly degrades and recovers — breakers must open during " +
				"each episode and close again after it, never writing the replica off for good",
			apply: func(cfg *Config) {
				dur := chaosDuration(cfg)
				node := 1 % chaosNodes(cfg)
				for at := dur / 6; at < dur; at += dur / 4 {
					cfg.NodeFaults = append(cfg.NodeFaults, faults.NodeFault{
						At: at, Node: node, Kind: faults.GPUDegrade, GPU: 0,
						Stretch: 6, Duration: dur / 8,
					})
				}
			},
		},
		{
			Name: "rack-loss",
			Description: "half the fleet crashes at once (correlated rack failure); one node " +
				"returns, the rest stay dark — retries must rescue what the budget allows",
			apply: func(cfg *Config) {
				dur := chaosDuration(cfg)
				n := chaosNodes(cfg)
				at := dur / 2
				for node := 0; node < n/2; node++ {
					nf := faults.NodeFault{At: at, Node: node, Kind: faults.NodeDown}
					if node == n/2-1 && node > 0 {
						nf.Duration = dur / 4 // the last rack member comes back
					}
					cfg.NodeFaults = append(cfg.NodeFaults, nf)
				}
			},
		},
		{
			Name: "overload-burst",
			Description: "periodic 3x traffic bursts from a hot low-priority tenant — weighted " +
				"fair buckets and class reserves must shed the burst, not the premium tenant",
			apply: func(cfg *Config) {
				dur := chaosDuration(cfg)
				// Base (pre-burst) offered rate: the global admission cap is
				// sized against this, not the burst-inflated mean, so bursts
				// genuinely overrun it.
				baseRate := 0.0
				for i := range cfg.Workloads {
					baseRate += workload.MeanRate(cfg.Workloads[i].Gen, 0, dur)
					cfg.Workloads[i].Gen = workload.Burst{
						Base:   cfg.Workloads[i].Gen,
						Every:  dur / 3,
						Length: dur / 10,
						Factor: 3,
					}
				}
				if len(cfg.Tenants) == 0 {
					// Tenant 1 offers twice tenant 0's traffic at lower priority.
					cfg.Tenants = []workload.TenantShare{
						{ID: 0, Weight: 1},
						{ID: 1, Weight: 2},
					}
				}
				if cfg.Gateway != nil {
					if len(cfg.Gateway.Tenants) == 0 {
						cfg.Gateway.Tenants = []gateway.Tenant{
							{ID: 0, Weight: 1, Class: 0},
							{ID: 1, Weight: 1, Class: 1},
						}
					}
					if cfg.Gateway.GlobalRatePerSec == 0 {
						// Cap admission just under the steady rate with a small
						// burst allowance, so overload is a shedding decision,
						// not a queueing collapse.
						cfg.Gateway.GlobalRatePerSec = baseRate * 0.9
						if cfg.Gateway.GlobalBurst == 0 {
							cfg.Gateway.GlobalBurst = 32
						}
					}
				}
			},
		},
	}
}

// ChaosByName resolves a scenario by its name.
func ChaosByName(name string) (*ChaosScenario, error) {
	for _, s := range ChaosScenarios() {
		if s.Name == name {
			s := s
			return &s, nil
		}
	}
	return nil, fmt.Errorf("cluster: unknown chaos scenario %q", name)
}
