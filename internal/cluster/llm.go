package cluster

import (
	"fmt"

	"krisp/internal/cluster/workload"
	"krisp/internal/llm"
	"krisp/internal/sched"
	"krisp/internal/server"
	"krisp/internal/sim"
)

// LLMWorkload upgrades a Workload to autoregressive serving: requests are
// sequences with drawn prompt/output lengths, replicas run continuous
// batching with KV-cache accounting, and the autoscaler sizes the fleet
// from the model's per-phase right-sizing profile.
type LLMWorkload struct {
	// Model is the autoregressive model served.
	Model llm.Model
	// MaxSeqs is the continuous-batch width per replica. Zero means 8.
	MaxSeqs int
	// Lengths draws per-request prompt/output token counts from the
	// workload's arrival RNG.
	Lengths workload.LengthDist
	// PerPhase gives replicas separate prefill and decode partition sizes
	// (the profiled knees) instead of one shared size — the kernel-wise
	// right-sizing under test.
	PerPhase bool
	// Disaggregate splits the fleet into prefill-only and decode-only
	// replicas: prompts route to prefill replicas, finished prefills hand
	// their KV cache off to a decode replica (billed as a migration-class
	// transfer), and tokens stream there.
	Disaggregate bool
	// KVBudget caps each replica's KV-cache bytes. Zero means the device's
	// HBM capacity is the only limit.
	KVBudget float64
	// HandoffBytesPerUs is the KV-transfer bandwidth between prefill and
	// decode replicas. Zero means 25e3 bytes/us (a 25 GB/s interconnect).
	HandoffBytesPerUs float64
	// HandoffLatencyUs is the fixed per-handoff latency. Zero means 100us.
	HandoffLatencyUs sim.Duration
}

// normalizeLLM applies the workload's defaults.
func normalizeLLM(w LLMWorkload) LLMWorkload {
	if w.MaxSeqs < 1 {
		w.MaxSeqs = 8
	}
	if w.HandoffBytesPerUs <= 0 {
		w.HandoffBytesPerUs = 25e3
	}
	if w.HandoffLatencyUs <= 0 {
		w.HandoffLatencyUs = 100
	}
	return w
}

// llmLen is one request's drawn lengths, buffered alongside its arrival.
type llmLen struct {
	prompt, output int
}

// handoff is one sequence whose prefill completed on a prefill replica and
// whose KV cache is in flight to a decode replica: it becomes routable to
// decode once the transfer finishes at due.
type handoff struct {
	due            sim.Time
	arrival        sim.Time
	id             uint64
	prompt, output int
	tenant         int
}

// llmModelState is the router-side per-model LLM bookkeeping.
type llmModelState struct {
	spec                   LLMWorkload
	sizing                 sched.LLMSizing
	meanPrompt, meanOutput int
	kvPerToken             float64

	// handoffs is the disaggregated transfer queue, FIFO in completion
	// order; handoffCount/handoffUs are the cumulative migration bill.
	handoffs     []handoff
	handoffCount int
	handoffUs    sim.Duration
}

// queueHandoff books one finished prefill's KV transfer.
func (lm *llmModelState) queueHandoff(c server.Completion, tenant int) {
	bytes := float64(c.Prompt) * lm.kvPerToken
	dur := lm.spec.HandoffLatencyUs + sim.Duration(bytes/lm.spec.HandoffBytesPerUs)
	lm.handoffCount++
	lm.handoffUs += dur
	lm.handoffs = append(lm.handoffs, handoff{
		due: c.End + dur, arrival: c.Arrival, id: c.ID,
		prompt: c.Prompt, output: c.Output, tenant: tenant,
	})
}

// pickDecode selects the decode replica with the fewest outstanding
// sequences (first wins ties — deterministic in replica order), or nil
// when none has admission headroom.
func (r *router) pickDecode(m *modelState, now sim.Time) *replicaHandle {
	var best *replicaHandle
	for _, h := range m.replicas {
		if h.role != server.LLMRoleDecode || !h.routable(now) || h.outstanding >= r.outstandingCap {
			continue
		}
		if best == nil || h.outstanding < best.outstanding {
			best = h
		}
	}
	return best
}

// sendHandoff delivers one transferred sequence to a decode replica. The
// request keeps its original arrival (its latency spans prefill, transfer,
// and decode) and its identity (the journey retires on the decode
// completion); it joins decode with prefilled=true, re-reserving its
// context's KV pages there.
func (r *router) sendHandoff(m *modelState, h *replicaHandle, ho handoff, now sim.Time) {
	h.outstanding++
	r.seq++
	if r.log != nil {
		fmt.Fprintf(r.log, "%d %s~>%d\n", r.seq, m.name, h.id)
	}
	r.tel.traceRoute(now, h.id)
	deliver := ho.due
	if deliver < now {
		deliver = now
	}
	if r.mailbox {
		h.nodeRef.node.PostSubmitSeq(deliver, ho.arrival, h.rep, ho.id, ho.prompt, ho.output, true)
		h.nodeRef.noteMail(deliver)
		return
	}
	rep, at, id, p, o := h.rep, ho.arrival, ho.id, ho.prompt, ho.output
	h.nodeRef.node.Schedule(deliver, func() { rep.SubmitSeq(at, id, p, o, true) })
}

// releaseHandoffs routes every handoff whose KV transfer lands inside this
// tick to a decode replica. Transfers still in flight — or blocked because
// every decode replica is at its admission cap — stay queued for the next
// tick (which canSkipPhases can therefore never skip).
func (f *Fleet) releaseHandoffs(from, to sim.Time) {
	for _, m := range f.router.models {
		lm := m.llm
		if lm == nil || len(lm.handoffs) == 0 {
			continue
		}
		keep := lm.handoffs[:0]
		for _, ho := range lm.handoffs {
			if ho.due >= to {
				keep = append(keep, ho)
				continue
			}
			h := f.router.pickDecode(m, from)
			if h == nil {
				keep = append(keep, ho)
				continue
			}
			f.router.sendHandoff(m, h, ho, from)
		}
		lm.handoffs = keep
	}
}
