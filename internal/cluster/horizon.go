package cluster

import "krisp/internal/sim"

// wakeHeap is the event-horizon scheduler's core structure: an indexed
// binary min-heap of up nodes keyed by wake time, tie-broken by node id so
// pop order is deterministic.
//
// Invariants, maintained across the run:
//
//   - Every up node is in the heap exactly once; down nodes are removed
//     when the fault fires and re-pushed on recovery.
//   - A node's wake is a lower bound on the virtual time it can next act:
//     min(its engine's earliest pending event, the earliest delivery of
//     any mail posted to it since its last advancement). A node with
//     neither parks at sim.Never.
//   - Between advancements a node's engine is frozen, so its wake can only
//     move earlier through one path — the router (or gateway fabric)
//     posting mail — and noteMail lowers the key at the moment of posting.
//     Advancement itself drains the mailbox completely (AdvanceTo panics
//     on stranded mail), so the post-advance wake is just the engine's
//     next event time.
//
// settle then pops exactly the nodes whose wake lies inside the granted
// horizon: O(active log n) per tick instead of the lookahead scheduler's
// O(n) fleet scan, which is the cost that erased its edge at 64 nodes.
type wakeHeap struct {
	nodes []*fleetNode
}

func wakeLess(a, b *fleetNode) bool {
	if a.wake != b.wake {
		return a.wake < b.wake
	}
	return a.id < b.id
}

// push inserts a node with the given wake time.
func (w *wakeHeap) push(n *fleetNode, wake sim.Time) {
	n.wake = wake
	n.heapIdx = len(w.nodes)
	w.nodes = append(w.nodes, n)
	w.siftUp(n.heapIdx)
}

// pop removes and returns the minimum-wake node.
func (w *wakeHeap) pop() *fleetNode {
	n := w.nodes[0]
	last := len(w.nodes) - 1
	w.nodes[0] = w.nodes[last]
	w.nodes[0].heapIdx = 0
	w.nodes[last] = nil
	w.nodes = w.nodes[:last]
	if last > 0 {
		w.siftDown(0)
	}
	n.heapIdx = -1
	return n
}

// remove deletes a node wherever it sits (node-down faults).
func (w *wakeHeap) remove(n *fleetNode) {
	i := n.heapIdx
	if i < 0 {
		return
	}
	last := len(w.nodes) - 1
	w.nodes[i] = w.nodes[last]
	w.nodes[i].heapIdx = i
	w.nodes[last] = nil
	w.nodes = w.nodes[:last]
	if i < last {
		if !w.siftUp(i) {
			w.siftDown(i)
		}
	}
	n.heapIdx = -1
}

// lower moves a node's wake earlier (mail posted with an earlier delivery).
func (w *wakeHeap) lower(n *fleetNode, wake sim.Time) {
	if wake >= n.wake {
		return
	}
	n.wake = wake
	if n.heapIdx >= 0 {
		w.siftUp(n.heapIdx)
	}
}

func (w *wakeHeap) siftUp(i int) bool {
	n := w.nodes[i]
	j := i
	for j > 0 {
		p := (j - 1) / 2
		if !wakeLess(n, w.nodes[p]) {
			break
		}
		w.nodes[j] = w.nodes[p]
		w.nodes[j].heapIdx = j
		j = p
	}
	if j == i {
		return false
	}
	w.nodes[j] = n
	n.heapIdx = j
	return true
}

func (w *wakeHeap) siftDown(i int) {
	n := w.nodes[i]
	size := len(w.nodes)
	j := i
	for {
		c := j*2 + 1
		if c >= size {
			break
		}
		if c+1 < size && wakeLess(w.nodes[c+1], w.nodes[c]) {
			c++
		}
		if !wakeLess(w.nodes[c], n) {
			break
		}
		w.nodes[j] = w.nodes[c]
		w.nodes[j].heapIdx = j
		j = c
	}
	if j != i {
		w.nodes[j] = n
		n.heapIdx = j
	}
}

// nodeWake derives a node's heap key from its engine: the earliest pending
// event, or Never when idle. Only valid when the node's mailbox is empty
// (right after construction, advancement, or recovery).
func nodeWake(n *fleetNode) sim.Time {
	if at, ok := n.node.NextEventTime(); ok {
		return at
	}
	return sim.Never
}

// noteMail lowers the node's wake to a just-posted mail delivery. A no-op
// outside event-horizon mode (hz nil) — the lookahead scan checks
// MailboxLen itself — and for nodes not currently in the heap.
func (n *fleetNode) noteMail(deliver sim.Time) {
	if n.hz != nil {
		n.hz.lower(n, deliver)
	}
}

// settleEvent is the event-horizon advancement phase: pop every node whose
// wake lies at or inside the horizon, advance them through the worker
// pool, and re-key them from their engines. It reports whether any node
// advanced — the signal that completions may now be pending and the next
// tick must run a full router phase.
func (f *Fleet) settleEvent(horizon sim.Time) bool {
	act := f.activeBuf[:0]
	for len(f.hz.nodes) > 0 && f.hz.nodes[0].wake <= horizon {
		act = append(act, f.hz.pop())
	}
	f.activeBuf = act
	if len(act) == 0 {
		return false
	}
	f.pool.Run(len(act), func(i int) { act[i].node.AdvanceTo(horizon) })
	for _, n := range act {
		f.hz.push(n, nodeWake(n))
	}
	return true
}

// canSkipPhases reports whether this tick's entire router phase is
// provably a no-op before running it, so the event-horizon loop can jump
// straight to arrival generation:
//
//   - no node advanced since the last completion pull, so every replica's
//     completion list is exactly as empty as that pull left it, no
//     draining replica changed state (reap would find nothing new), and
//     pullCompletions/reap are no-ops;
//   - no node fault fires at this tick and no downed node recovers, so
//     applyFaults is a no-op;
//   - the autoscaler's next epoch lies beyond this tick;
//   - every admission queue is empty, so drainQueue has nothing to retry
//     or shed;
//   - no gateway (hedge scans fire on elapsed time even without traffic),
//     no telemetry (observe samples gauges every tick), and no observer
//     (burn-rate monitors advance their windows every tick).
//
// Arrival generation can never be skipped: the workload generators restart
// their exponential-gap draws from the window start and discard the
// overshooting gap, so each tick window's RNG draws must happen exactly
// once regardless of scheduler — that is what keeps this mode
// byte-identical to lockstep.
func (f *Fleet) canSkipPhases(now sim.Time) bool {
	if f.dirty || f.gw != nil || f.tel != nil || f.obs != nil {
		return false
	}
	if f.faultIdx < len(f.downFaults) && f.downFaults[f.faultIdx].At <= now {
		return false
	}
	if f.scaler.next <= now {
		return false
	}
	for _, n := range f.nodes {
		if !n.up && n.downUntil >= 0 && now >= n.downUntil {
			return false
		}
	}
	for _, m := range f.router.models {
		if len(m.queue) > 0 {
			return false
		}
		// Pending KV handoffs must be released by routeTick: a skipped
		// phase would strand prefilled sequences in transit.
		if m.llm != nil && len(m.llm.handoffs) > 0 {
			return false
		}
	}
	return true
}
