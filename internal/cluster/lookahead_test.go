package cluster

import (
	"reflect"
	"testing"

	"krisp/internal/cluster/gateway"
	"krisp/internal/faults"
	"krisp/internal/server"
	"krisp/internal/sim"
)

// lookaheadScenarios are the configurations the determinism matrix replays
// under every scheduler and worker count: a faulty bare-router fleet, the
// gateway chaos composition with hedges, retries, breakers and node loss,
// and a calm fleet where most ticks find most nodes settled (the case the
// lookahead scheduler actually skips work on).
func lookaheadScenarios(t *testing.T) map[string]func() Config {
	t.Helper()
	return map[string]func() Config{
		"faults": func() Config {
			cfg := baseConfig(t)
			cfg.Policy = SLOAware
			cfg.NodeFaults = []faults.NodeFault{
				{At: 0, Node: 1, Kind: faults.GPUDegrade, GPU: 0, Stretch: 3.0},
				{At: 140 * sim.Millisecond, Node: 2, Kind: faults.NodeDown,
					Duration: 80 * sim.Millisecond},
			}
			return cfg
		},
		"chaos-gateway": func() Config {
			cfg := chaosConfig(t)
			applyChaos(t, &cfg, "rack-loss")
			applyChaos(t, &cfg, "gray-node")
			cfg.Gateway = &gateway.Config{}
			return cfg
		},
		"sparse": func() Config {
			// Light load on a wide fleet: whole ticks pass with idle nodes,
			// so settled-node skipping and lagging clocks (including the
			// final energy fast-forward) are all on the hot path.
			cfg := baseConfig(t)
			cfg.Nodes = 6
			cfg.Workloads = cfg.Workloads[:1]
			return cfg
		},
	}
}

// TestLookaheadLockstepMatrixIdentical is the tentpole's correctness
// oracle: for every scenario, the lookahead scheduler at every worker
// count must be byte-identical — routing log and full result, energy
// included — to the serial lockstep fleet. Run under -race this also
// proves settle rounds share nothing across workers.
func TestLookaheadLockstepMatrixIdentical(t *testing.T) {
	for name, mk := range lookaheadScenarios(t) {
		t.Run(name, func(t *testing.T) {
			run := func(s Sched, workers int) *Result {
				cfg := mk()
				cfg.Sched = s
				cfg.Parallel = workers
				cfg.RecordRouting = true
				return Run(cfg)
			}
			oracle := run(SchedLockstep, 1)
			if oracle.RoutingLog == "" {
				t.Fatal("no routing decisions recorded")
			}
			if oracle.Completed == 0 {
				t.Fatal("degenerate scenario: nothing completed")
			}
			for _, sched := range []Sched{SchedLookahead, SchedEventHorizon} {
				for _, workers := range []int{1, 0, 2, 8} {
					got := run(sched, workers)
					if got.RoutingLog != oracle.RoutingLog {
						t.Fatalf("%v workers=%d: routing log diverged from serial lockstep", sched, workers)
					}
					if !reflect.DeepEqual(got, oracle) {
						t.Fatalf("%v workers=%d: results diverged:\nlockstep: %+v\n%v: %+v",
							sched, workers, oracle, sched, got)
					}
				}
			}
			// The lockstep pool itself must also still be order-independent.
			if got := run(SchedLockstep, 8); !reflect.DeepEqual(got, oracle) {
				t.Fatal("lockstep workers=8 diverged from lockstep serial")
			}
		})
	}
}

// TestSchedNames pins the scheduler name round-trip the CLI flag relies on.
func TestSchedNames(t *testing.T) {
	for _, s := range Scheds() {
		got, err := SchedByName(s.String())
		if err != nil || got != s {
			t.Fatalf("SchedByName(%q) = %v, %v", s.String(), got, err)
		}
	}
	if _, err := SchedByName("bogus"); err == nil {
		t.Fatal("SchedByName accepted an unknown scheduler")
	}
}

// TestSLOAwareWindowOutOfOrderCompletions guards the router's windowed-P95
// state against completion replay order. Completions from different
// replicas interleave in fleet time; the fleet absorbs them sorted by
// (End, handle id). The latency window is per-replica, so the interleave
// must not leak: absorbing the same completions handle-major instead must
// leave every window — and the next SLO-aware pick — unchanged, while
// within one replica the window must still distinguish a slow replica from
// a fast one after the 64-sample ring has wrapped.
func TestSLOAwareWindowOutOfOrderCompletions(t *testing.T) {
	const n = 80 // past the 64-sample window, so eviction order matters
	mkCompl := func(h int, i int) server.Completion {
		lat := sim.Duration(1000 + 200*h) // replica 1 is consistently slower
		arr := sim.Time(i*100 + h*7)
		return server.Completion{Arrival: arr, End: arr + lat}
	}

	absorb := func(order string) (*router, *modelState) {
		r := testRouter(SLOAware)
		m := fakeModel(2)
		switch order {
		case "fleet": // interleaved by (End, id), the pullCompletions order
			for i := 0; i < n; i++ {
				for h := 0; h < 2; h++ {
					r.absorb(m, m.replicas[h], mkCompl(h, i), 0)
				}
			}
		case "handle-major":
			for h := 0; h < 2; h++ {
				for i := 0; i < n; i++ {
					r.absorb(m, m.replicas[h], mkCompl(h, i), 0)
				}
			}
		}
		return r, m
	}

	rf, mf := absorb("fleet")
	rh, mh := absorb("handle-major")
	for h := 0; h < 2; h++ {
		pf, ph := mf.replicas[h].lat.p95(), mh.replicas[h].lat.p95()
		if pf != ph {
			t.Fatalf("replica %d: P95 depends on cross-replica absorb order: %.1f vs %.1f", h, pf, ph)
		}
	}
	if mf.replicas[0].lat.p95() >= mf.replicas[1].lat.p95() {
		t.Fatalf("window lost the slow replica after wraparound: P95 %.1f vs %.1f",
			mf.replicas[0].lat.p95(), mf.replicas[1].lat.p95())
	}
	hf, hh := rf.pick(mf, 0, -1), rh.pick(mh, 0, -1)
	if hf == nil || hh == nil || hf.id != hh.id {
		t.Fatalf("SLO-aware pick depends on absorb interleave: %v vs %v", hf, hh)
	}
	if hf.id != 0 {
		t.Fatalf("picked the slow replica %d", hf.id)
	}
}
