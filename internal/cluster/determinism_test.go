package cluster

import (
	"reflect"
	"testing"

	"krisp/internal/faults"
	"krisp/internal/sim"
)

// TestSerialParallelIdentical is the fleet determinism guarantee: the same
// seed and trace produce byte-identical per-request routing decisions and
// identical results whether nodes advance serially or on a worker pool.
// Run under -race this also proves the lockstep advancement shares nothing.
func TestSerialParallelIdentical(t *testing.T) {
	run := func(workers int) *Result {
		cfg := baseConfig(t)
		cfg.Policy = SLOAware
		cfg.Parallel = workers
		cfg.RecordRouting = true
		cfg.NodeFaults = []faults.NodeFault{
			{At: 0, Node: 1, Kind: faults.GPUDegrade, GPU: 0, Stretch: 3.0},
			{At: 140 * sim.Millisecond, Node: 2, Kind: faults.NodeDown,
				Duration: 80 * sim.Millisecond},
		}
		return Run(cfg)
	}

	serial := run(1)
	if serial.RoutingLog == "" {
		t.Fatal("no routing decisions recorded")
	}
	for _, workers := range []int{0, 2, 8} {
		par := run(workers)
		if par.RoutingLog != serial.RoutingLog {
			t.Fatalf("workers=%d: routing log diverged from serial run", workers)
		}
		if !reflect.DeepEqual(par, serial) {
			t.Fatalf("workers=%d: results diverged:\nserial: %+v\nparallel: %+v",
				workers, serial, par)
		}
	}
}

// TestSeedChangesOutcome guards against the opposite failure: a fleet that
// ignores its seed would make determinism vacuous.
func TestSeedChangesOutcome(t *testing.T) {
	a := func() *Result {
		cfg := baseConfig(t)
		cfg.RecordRouting = true
		return Run(cfg)
	}()
	cfg := baseConfig(t)
	cfg.Seed = 43
	cfg.RecordRouting = true
	b := Run(cfg)
	if a.RoutingLog == b.RoutingLog {
		t.Fatal("different seeds produced identical routing logs")
	}
}

// TestRepeatedRunsIdentical: two fresh fleets with the same config are
// bit-identical — no hidden global state leaks between runs.
func TestRepeatedRunsIdentical(t *testing.T) {
	mk := func() *Result {
		cfg := baseConfig(t)
		cfg.RecordRouting = true
		return Run(cfg)
	}
	a, b := mk(), mk()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("repeated runs diverged:\n%+v\n%+v", a, b)
	}
}
