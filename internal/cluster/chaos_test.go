package cluster

import (
	"testing"

	"krisp/internal/cluster/gateway"
	"krisp/internal/cluster/workload"
	"krisp/internal/sim"
	"krisp/internal/telemetry"
)

// chaosConfig is the shared fleet shape for the chaos scenarios: one model
// held slightly above the capacity that survives each scenario, so the
// resilience mechanisms — not spare hardware — decide the outcome.
func chaosConfig(t *testing.T) Config {
	t.Helper()
	return Config{
		Nodes:       3,
		GPUsPerNode: 2,
		Workloads: []Workload{
			{
				Model: pick(t, "squeezenet"),
				Batch: 8,
				Gen:   workload.Constant{RatePerSec: 2600},
			},
		},
		Tick:     2 * sim.Millisecond,
		Epoch:    50 * sim.Millisecond,
		Duration: 400 * sim.Millisecond,
		Seed:     7,
		Costs:    compressedCosts(),
		Policy:   SLOAware,
		Parallel: 1,
	}
}

func applyChaos(t *testing.T, cfg *Config, name string) {
	t.Helper()
	s, err := ChaosByName(name)
	if err != nil {
		t.Fatal(err)
	}
	s.Apply(cfg)
}

func goodput(res *Result) int { return res.Completed - res.SLOViolations }

// TestChaosGrayNodeGatewayDoublesGoodput is the PR's acceptance scenario:
// under the gray-node chaos scenario (two of three nodes alive but slow),
// the gateway fleet must keep at least 2x the goodput of the bare-router
// baseline at equal offered load, and its retry+hedge traffic must stay
// inside the configured budget — counter-checked through the telemetry
// registry, not just the in-memory stats.
func TestChaosGrayNodeGatewayDoublesGoodput(t *testing.T) {
	base := chaosConfig(t)
	applyChaos(t, &base, "gray-node")
	baseline := Run(base)

	hub := telemetry.NewHub(false)
	gw := chaosConfig(t)
	applyChaos(t, &gw, "gray-node")
	gw.Gateway = &gateway.Config{}
	gw.Telemetry = hub
	gwRes := Run(gw)

	if baseline.Arrivals != gwRes.Arrivals {
		t.Fatalf("offered load differs: baseline %d vs gateway %d arrivals",
			baseline.Arrivals, gwRes.Arrivals)
	}
	bg, gg := goodput(baseline), goodput(gwRes)
	t.Logf("baseline: %d arrivals, %d completed, %d violations -> goodput %d",
		baseline.Arrivals, baseline.Completed, baseline.SLOViolations, bg)
	t.Logf("gateway:  %d arrivals, %d completed, %d violations -> goodput %d",
		gwRes.Arrivals, gwRes.Completed, gwRes.SLOViolations, gg)
	t.Logf("gateway stats: %s", gwRes.Gateway.String())
	if gg < 2*bg {
		t.Fatalf("gateway goodput %d < 2x baseline %d", gg, bg)
	}

	// Budget invariant, from the decision record...
	if err := gwRes.Gateway.CheckBudget(); err != nil {
		t.Fatal(err)
	}
	// ...and independently from the telemetry counters: secondary sends
	// never exceed ratio x primaries + burst. Primaries are the fleet's
	// routed requests (secondary copies do not count as routed).
	reg := hub.Registry()
	hedges := reg.Counter("krisp_gateway_hedges_total", "").Value()
	retries := reg.Counter("krisp_gateway_retries_total", "").Value()
	primaries := reg.Counter("krisp_fleet_routed_total", "").Value()
	limit := gwRes.Gateway.BudgetRatio*float64(primaries) + gwRes.Gateway.BudgetBurst
	if got := float64(hedges + retries); got > limit {
		t.Fatalf("telemetry: %d hedges + %d retries > budget limit %.1f", hedges, retries, limit)
	}
	if hedges != gwRes.Gateway.Hedges || retries != gwRes.Gateway.Retries {
		t.Fatalf("telemetry counters (%d, %d) disagree with stats (%d, %d)",
			hedges, retries, gwRes.Gateway.Hedges, gwRes.Gateway.Retries)
	}
}

// TestChaosDeterminism: the same chaos scenario with the same seed replays
// byte-identically — routing log and every gateway counter.
func TestChaosDeterminism(t *testing.T) {
	run := func() *Result {
		cfg := chaosConfig(t)
		applyChaos(t, &cfg, "gray-node")
		cfg.Gateway = &gateway.Config{}
		cfg.RecordRouting = true
		return Run(cfg)
	}
	a, b := run(), run()
	if a.RoutingLog != b.RoutingLog {
		t.Fatal("routing log differs across identical chaos runs")
	}
	ga, gb := a.Gateway, b.Gateway
	if ga.Admitted != gb.Admitted || ga.Shed() != gb.Shed() ||
		ga.Hedges != gb.Hedges || ga.HedgeWins != gb.HedgeWins ||
		ga.Retries != gb.Retries || ga.Cancelled != gb.Cancelled ||
		ga.BreakerOpens != gb.BreakerOpens {
		t.Fatalf("gateway stats differ:\n%s\n%s", ga, gb)
	}
}

// TestChaosFlappingGPUBreakers: a repeatedly degrading GPU must trip its
// replicas' breakers during episodes and close them again after — the
// breaker is a filter, not a tombstone.
func TestChaosFlappingGPUBreakers(t *testing.T) {
	cfg := chaosConfig(t)
	applyChaos(t, &cfg, "flapping-gpu")
	cfg.Gateway = &gateway.Config{}
	res := Run(cfg)

	t.Logf("gateway stats: %s", res.Gateway.String())
	if res.Gateway.BreakerOpens == 0 {
		t.Fatal("flapping GPU never tripped a breaker")
	}
	if res.Gateway.BreakerCloses == 0 {
		t.Fatal("no breaker ever recovered across the flap episodes")
	}
	if err := res.Gateway.CheckBudget(); err != nil {
		t.Fatal(err)
	}
}

// TestChaosRackLoss: a correlated crash of half the fleet. Retries rescue
// in-flight requests within the budget; the fleet keeps serving on the
// surviving nodes.
func TestChaosRackLoss(t *testing.T) {
	cfg := chaosConfig(t)
	applyChaos(t, &cfg, "rack-loss")
	cfg.Gateway = &gateway.Config{}
	res := Run(cfg)

	t.Logf("failed %d, gateway stats: %s", res.Failed, res.Gateway.String())
	if res.NodeFaults == 0 {
		t.Fatal("rack-loss applied no node faults")
	}
	if res.Gateway.Retries == 0 {
		t.Fatal("no request was retried off the dead rack")
	}
	if res.Completed == 0 {
		t.Fatal("fleet stopped serving after the rack loss")
	}
	if err := res.Gateway.CheckBudget(); err != nil {
		t.Fatal(err)
	}

	// Baseline comparison: retries must strictly reduce losses.
	baseCfg := chaosConfig(t)
	applyChaos(t, &baseCfg, "rack-loss")
	baseline := Run(baseCfg)
	if res.Failed >= baseline.Failed {
		t.Fatalf("gateway failed %d >= baseline %d: retries rescued nothing",
			res.Failed, baseline.Failed)
	}
}

// TestChaosOverloadBurstShedsByClass: under tenant bursts against a finite
// global rate, the low-priority hot tenant is shed hard while the premium
// tenant keeps most of its admissions (weighted buckets + class reserves).
func TestChaosOverloadBurstShedsByClass(t *testing.T) {
	cfg := chaosConfig(t)
	cfg.Gateway = &gateway.Config{}
	applyChaos(t, &cfg, "overload-burst")
	res := Run(cfg)

	gs := res.Gateway
	t.Logf("gateway stats: %s", gs.String())
	t.Logf("shed by class: %v, tenants: %+v", gs.ShedByClass, gs.Tenants)
	if len(gs.ShedByClass) != 2 {
		t.Fatalf("want 2 priority classes, got %d", len(gs.ShedByClass))
	}
	if gs.ShedTenant+gs.ShedOverload == 0 {
		t.Fatal("overload burst never shed on rate")
	}
	// The hot low-priority tenant must bear more shedding than the premium
	// tenant, absolutely and proportionally.
	prem, hot := gs.Tenants[0], gs.Tenants[1]
	if hot.Shed <= prem.Shed {
		t.Fatalf("hot tenant shed %d <= premium %d", hot.Shed, prem.Shed)
	}
	premRate := float64(prem.Shed) / float64(prem.Admitted+prem.Shed)
	hotRate := float64(hot.Shed) / float64(hot.Admitted+hot.Shed)
	if hotRate <= premRate {
		t.Fatalf("hot tenant shed rate %.3f <= premium %.3f", hotRate, premRate)
	}
	if err := gs.CheckBudget(); err != nil {
		t.Fatal(err)
	}
}
