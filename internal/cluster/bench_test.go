package cluster

import (
	"fmt"
	"testing"

	"krisp/internal/cluster/gateway"
	"krisp/internal/cluster/workload"
	"krisp/internal/llm"
	"krisp/internal/models"
	"krisp/internal/reconfig"
	"krisp/internal/sim"
)

func benchConfig(b *testing.B, parallel int) Config {
	b.Helper()
	m, ok := models.ByName("squeezenet")
	if !ok {
		b.Fatal("squeezenet missing")
	}
	m2, ok := models.ByName("mobilenet")
	if !ok {
		b.Fatal("mobilenet missing")
	}
	return Config{
		Nodes:       3,
		GPUsPerNode: 2,
		Workloads: []Workload{
			{Model: m, Batch: 8,
				Gen: workload.Diurnal{Trough: 800, Peak: 5000, Period: 300 * sim.Millisecond}},
			{Model: m2, Batch: 8, Gen: workload.Constant{RatePerSec: 1200}},
		},
		Policy:   SLOAware,
		Tick:     2 * sim.Millisecond,
		Epoch:    50 * sim.Millisecond,
		Duration: 300 * sim.Millisecond,
		Seed:     7,
		Parallel: parallel,
		Costs: reconfig.Costs{
			PartitionSetup: 2 * sim.Millisecond,
			ProcessStart:   3 * sim.Millisecond,
			ModelLoad:      10 * sim.Millisecond,
			SwapDowntime:   55 * sim.Microsecond,
		},
	}
}

// benchmarkFleet runs one full fleet experiment per iteration and reports
// routed requests per wall-second — the fleet-throughput number tracked in
// BENCH_PR5.json and the CI bench-smoke job.
func benchmarkFleet(b *testing.B, parallel int) {
	cfg := benchConfig(b, parallel)
	// Planner profiling dominates cold runs; warm one fleet first so the
	// loop measures simulation, not sweep construction (each New re-sweeps;
	// that cost is part of a fleet build and belongs in the number).
	total := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := Run(cfg)
		total += res.Routed
	}
	b.StopTimer()
	if total == 0 {
		b.Fatal("fleet routed nothing")
	}
	b.ReportMetric(float64(total)/b.Elapsed().Seconds(), "requests/s")
}

func BenchmarkFleetThroughputSerial(b *testing.B)   { benchmarkFleet(b, 1) }
func BenchmarkFleetThroughputParallel(b *testing.B) { benchmarkFleet(b, 0) }

// BenchmarkFleetThroughputLockstep is the same serial fleet on the
// retained lockstep scheduler — the delta against Serial (now the
// lookahead default) is what conservative lookahead buys at this scale.
func BenchmarkFleetThroughputLockstep(b *testing.B) {
	cfg := benchConfig(b, 1)
	cfg.Sched = SchedLockstep
	total := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		total += Run(cfg).Routed
	}
	b.StopTimer()
	if total == 0 {
		b.Fatal("fleet routed nothing")
	}
	b.ReportMetric(float64(total)/b.Elapsed().Seconds(), "requests/s")
}

// scalingConfig holds per-node offered load constant while the fleet
// grows, so the sweep measures scheduler scaling, not a shrinking
// utilization.
func scalingConfig(b *testing.B, nodes int) Config {
	b.Helper()
	m, ok := models.ByName("squeezenet")
	if !ok {
		b.Fatal("squeezenet missing")
	}
	return Config{
		Nodes:       nodes,
		GPUsPerNode: 2,
		Workloads: []Workload{
			{Model: m, Batch: 8,
				Gen: workload.Constant{RatePerSec: 400 * float64(nodes)}},
		},
		Policy:   SLOAware,
		Tick:     2 * sim.Millisecond,
		Epoch:    50 * sim.Millisecond,
		Duration: 300 * sim.Millisecond,
		Seed:     7,
		Costs: reconfig.Costs{
			PartitionSetup: 2 * sim.Millisecond,
			ProcessStart:   3 * sim.Millisecond,
			ModelLoad:      10 * sim.Millisecond,
			SwapDowntime:   55 * sim.Microsecond,
		},
	}
}

// BenchmarkFleetScaling is the scheduler sweep: fleet sizes 4/16/64 under
// the serial lockstep baseline, the parallel lockstep barrier, the
// conservative-lookahead scheduler, and the event-horizon scheduler (the
// default). All four produce identical results (see
// TestLookaheadLockstepMatrixIdentical); only wall time differs.
func BenchmarkFleetScaling(b *testing.B) {
	modes := []struct {
		name  string
		sched Sched
		par   int
	}{
		{"serial", SchedLockstep, 1},
		{"lockstep", SchedLockstep, 0},
		{"lookahead", SchedLookahead, 0},
		{"event-horizon", SchedEventHorizon, 0},
	}
	for _, nodes := range []int{4, 16, 64} {
		for _, mode := range modes {
			b.Run(fmt.Sprintf("nodes=%d/%s", nodes, mode.name), func(b *testing.B) {
				cfg := scalingConfig(b, nodes)
				cfg.Sched = mode.sched
				cfg.Parallel = mode.par
				total := 0
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					total += Run(cfg).Routed
				}
				b.StopTimer()
				if total == 0 {
					b.Fatal("fleet routed nothing")
				}
				b.ReportMetric(float64(total)/b.Elapsed().Seconds(), "requests/s")
			})
		}
	}
}

// BenchmarkFleetRoutingDecision isolates the router's per-request cost:
// pick + accounting on a standing replica set, no simulation behind it.
func BenchmarkFleetRoutingDecision(b *testing.B) {
	for _, pol := range Policies() {
		b.Run(pol.String(), func(b *testing.B) {
			r := newRouter(pol, 1, 1<<30, 0, nil, false)
			m := &modelState{name: "m", batch: 8, sloUs: 20000}
			for i := 0; i < 8; i++ {
				h := &replicaHandle{id: i}
				for j := 0; j < 64; j++ {
					h.lat.add(float64(5000 + i*100 + j))
				}
				m.replicas = append(m.replicas, h)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				h := r.pick(m, 0, -1)
				h.outstanding++
				if h.outstanding > 1<<20 {
					for _, rh := range m.replicas {
						rh.outstanding = 0
					}
				}
			}
		})
	}
}

// BenchmarkLLMFleet runs the disaggregated LLM fleet from the per-phase
// acceptance test at benchmark scale: 2 nodes x 2 GPUs, decode-heavy
// demand, prefill and decode tiers with KV handoffs between them. The
// shared mode sizes every replica at the prefill knee; per-phase gives
// decode its own (much smaller) right-size. tokens/s is generated tokens
// per wall-second — the serving-throughput number tracked in
// BENCH_PR10.json.
func BenchmarkLLMFleet(b *testing.B) {
	model := llm.Small()
	for _, mode := range []struct {
		name     string
		perPhase bool
	}{{"shared", false}, {"per-phase", true}} {
		b.Run(mode.name, func(b *testing.B) {
			cfg := Config{
				Nodes:       2,
				GPUsPerNode: 2,
				Workloads: []Workload{{
					Gen: workload.Constant{RatePerSec: 2000},
					LLM: &LLMWorkload{
						Model: model,
						Lengths: workload.LengthDist{
							PromptMin: 128, PromptMax: 128,
							OutputMin: 64, OutputMax: 64,
						},
						Disaggregate: true,
						PerPhase:     mode.perPhase,
					},
				}},
				Tick:     2 * sim.Millisecond,
				Epoch:    50 * sim.Millisecond,
				Duration: 300 * sim.Millisecond,
				Seed:     42,
				Costs: reconfig.Costs{
					PartitionSetup: 2 * sim.Millisecond,
					ProcessStart:   3 * sim.Millisecond,
					ModelLoad:      10 * sim.Millisecond,
					SwapDowntime:   55 * sim.Microsecond,
				},
			}
			tokens, routed := 0, 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res := Run(cfg)
				tokens += res.TokensOut
				routed += res.Routed
			}
			b.StopTimer()
			if routed == 0 {
				b.Fatal("fleet routed nothing")
			}
			b.ReportMetric(float64(tokens)/b.Elapsed().Seconds(), "tokens/s")
			b.ReportMetric(float64(routed)/b.Elapsed().Seconds(), "requests/s")
		})
	}
}

// BenchmarkFleetThroughputGateway is the gateway-on twin of
// BenchmarkFleetThroughputSerial: the identical fleet and trace fronted by
// the resilience gateway with its default mechanisms (deadline admission,
// breakers, hedging, retry budget) enabled. The delta between the two is
// the whole-run cost of resilience — tracked in BENCH_PR6.json.
func BenchmarkFleetThroughputGateway(b *testing.B) {
	cfg := benchConfig(b, 1)
	cfg.Gateway = &gateway.Config{}
	total := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := Run(cfg)
		total += res.Routed
	}
	b.StopTimer()
	if total == 0 {
		b.Fatal("fleet routed nothing")
	}
	b.ReportMetric(float64(total)/b.Elapsed().Seconds(), "requests/s")
}
