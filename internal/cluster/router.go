package cluster

import (
	"fmt"
	"math"
	"math/rand"
	"strings"

	"krisp/internal/cluster/gateway"
	"krisp/internal/metrics"
	"krisp/internal/server"
	"krisp/internal/sim"
)

// Policy selects the front-end routing strategy.
type Policy int

const (
	// RoundRobin cycles through a model's ready replicas.
	RoundRobin Policy = iota
	// LeastOutstanding routes to the replica with the fewest
	// router-accounted outstanding requests.
	LeastOutstanding
	// PowerOfTwo samples two ready replicas and takes the one with fewer
	// outstanding requests — the classic load-balancing compromise between
	// RoundRobin's bluntness and LeastOutstanding's herd behaviour.
	PowerOfTwo
	// SLOAware predicts each replica's completion latency from its recent
	// observed P95 and outstanding backlog and routes to the minimum — the
	// policy that notices a degraded GPU and steers around it.
	SLOAware
)

// Policies lists every routing policy.
func Policies() []Policy {
	return []Policy{RoundRobin, LeastOutstanding, PowerOfTwo, SLOAware}
}

func (p Policy) String() string {
	switch p {
	case RoundRobin:
		return "round-robin"
	case LeastOutstanding:
		return "least-outstanding"
	case PowerOfTwo:
		return "p2c"
	case SLOAware:
		return "slo-aware"
	default:
		return "unknown"
	}
}

// PolicyByName parses a policy name as printed by String.
func PolicyByName(name string) (Policy, error) {
	for _, p := range Policies() {
		if p.String() == name {
			return p, nil
		}
	}
	return 0, fmt.Errorf("cluster: unknown routing policy %q", name)
}

// latWindow keeps the most recent completed-request latencies of one
// replica and serves their P95 with a lazily-sorted scratch copy.
type latWindow struct {
	buf     [64]float64
	n, next int
	dirty   bool
	p95v    float64
}

func (w *latWindow) add(v float64) {
	w.buf[w.next] = v
	w.next = (w.next + 1) % len(w.buf)
	if w.n < len(w.buf) {
		w.n++
	}
	w.dirty = true
}

// p95 returns the window's 95th percentile, 0 when empty. The percentile
// index for n <= 64 samples is always within the top 4, so a single pass
// keeping the k largest replaces the sorted-scratch approach — same value
// (the k-th largest equals sorted[idx] even with duplicates), no copy, no
// sort. The router recomputes this after every completion, which made it
// one of the fleet's hottest non-simulation paths.
func (w *latWindow) p95() float64 {
	if w.n == 0 {
		return 0
	}
	if w.dirty {
		idx := (w.n*95 + 99) / 100
		if idx > 0 {
			idx--
		}
		k := w.n - idx // p95 is the k-th largest sample; k in [1,4]
		var top [4]float64
		m := 0
		for _, v := range w.buf[:w.n] {
			if m < k {
				i := m
				for i > 0 && top[i-1] > v {
					top[i] = top[i-1]
					i--
				}
				top[i] = v
				m++
				continue
			}
			if v <= top[0] {
				continue
			}
			i := 0
			for i+1 < k && top[i+1] < v {
				top[i] = top[i+1]
				i++
			}
			top[i] = v
		}
		w.p95v = top[0]
		w.dirty = false
	}
	return w.p95v
}

// replicaHandle is the router's view of one placed gpulet. The outstanding
// count is router-side accounting (incremented on route, decremented when
// the completion is pulled) — the router never peeks into a node
// mid-advancement, which is what keeps concurrent node simulation
// deterministic.
type replicaHandle struct {
	id        int // stable fleet-wide creation order
	node, gpu int
	nodeRef   *fleetNode
	model     string
	cus       int
	rep       *server.Replica
	readyAt   sim.Time
	draining  bool
	dead      bool

	// role is the replica's LLM serving role; LLMRoleMixed (zero) for
	// classic models and non-disaggregated LLM fleets.
	role server.LLMRole

	// breaker is the replica's circuit breaker when a gateway fronts the
	// fleet; nil otherwise (and nil always allows).
	breaker *gateway.Breaker

	outstanding int
	routed      int
	lat         latWindow
}

func (h *replicaHandle) routable(now sim.Time) bool {
	return !h.dead && !h.draining && h.readyAt <= now && h.breaker.Allow(now)
}

// accepts reports whether fresh arrivals may route here: decode-role
// replicas only serve sequences handed off after prefill, never prompts.
func (h *replicaHandle) accepts() bool { return h.role != server.LLMRoleDecode }

// queuedReq is one admission-queued request.
type queuedReq struct {
	arrival sim.Time
	tenant  int // dense gateway tenant index; 0 without a gateway

	// prompt/output are the drawn sequence lengths for LLM workloads;
	// zero for classic models.
	prompt, output int
}

// modelState is the router's per-model bookkeeping: the live replica set,
// the admission queue, and the SLO target.
type modelState struct {
	index    int
	name     string
	batch    int
	sloUs    float64
	rrNext   int
	replicas []*replicaHandle
	queue    []queuedReq

	// llm is non-nil when this model is an autoregressive workload; it
	// carries the length distribution, per-phase sizing, and the
	// disaggregated handoff queue.
	llm *llmModelState

	arrivals      int
	routed        int
	rejected      int
	completed     int
	sloViolations int
	tokensOut     int
	latency       metrics.Sample

	// readyBuf caches the routable replica set for one routing phase, keyed
	// by (cacheAt, cacheEpoch): within a tick the router clock is frozen and
	// the replica set only changes at control-plane points that bump the
	// router epoch, so every pick of the phase reuses one filtered scan
	// instead of re-testing routability per candidate (the cost that made
	// p2c rebuild — and allocate — its candidate slice on every decision).
	// Only maintained without a gateway: circuit breakers make routability
	// stateful (a half-open breaker admits exactly one probe), so gateway
	// picks keep the exact per-decision scan.
	readyBuf   []*replicaHandle
	cacheAt    sim.Time
	cacheEpoch uint64
	cacheBuilt bool
}

// router is the SLO-aware front end: per-model queues, pluggable replica
// choice, and admission control. It is strictly single-goroutine; nodes
// only communicate with it through pulled completions.
type router struct {
	policy         Policy
	rng            *rand.Rand // power-of-two sampling only
	outstandingCap int        // per replica, in requests
	queueCap       int        // per model
	models         []*modelState
	tel            *fleetTelemetry

	// obs, when non-nil, is the request-journey observer. Sends then carry
	// request identities even without a gateway so completions can be
	// matched back to their sampled journey records.
	obs *fleetObserver

	// gw, when non-nil, is the resilience gateway fronting this router:
	// sends carry request identities, queue sheds report back, and the
	// deadline oracle tightens queue admission.
	gw     *gateway.Gateway
	reqSeq uint64 // request identity allocator (gateway mode; ids start at 1)

	// mailbox switches sends from scheduling closures on node engines to
	// posting timestamped mail (the lookahead scheduler's transport). The
	// delivery timestamp is clamped to the router clock — the same clamp
	// Schedule applied against the node clock under lockstep, where the two
	// clocks were equal at every router phase.
	mailbox bool

	// epoch versions the replica sets: every control-plane mutation that can
	// change a handle's routability (spawn, drain, kill, reap) bumps it,
	// invalidating each model's cached ready set. Completions don't — they
	// touch latency windows and outstanding counts, which the pick paths
	// read fresh, never routability.
	epoch uint64

	// log records every routing decision when non-nil (determinism tests,
	// debugging). One line per request: "<seq> <model>-><replica id>" or
	// "<seq> <model>->reject".
	log *strings.Builder
	seq int
}

func newRouter(policy Policy, seed int64, outstandingCap, queueCap int, tel *fleetTelemetry, record bool) *router {
	r := &router{
		policy:         policy,
		rng:            rand.New(rand.NewSource(seed ^ 0x726f757465)), // "route"
		outstandingCap: outstandingCap,
		queueCap:       queueCap,
		tel:            tel,
	}
	if record {
		r.log = &strings.Builder{}
	}
	return r
}

// predictUs is the SLO-aware completion-latency estimate for one candidate
// replica: its recently observed request P95 (which already folds in its
// service speed and typical queueing) scaled by how many batches the
// backlog represents. A replica with no history gets a prior of half the
// SLO (the expected healthy latency) that escalates with its backlog: a
// dead-silent replica — routed to, never completing — must not keep
// winning on a flat neutral prior while its queue grows without bound.
func predictUs(m *modelState, h *replicaHandle) float64 {
	p95 := h.lat.p95()
	if h.lat.n == 0 {
		p95 = m.sloUs / 2 * (1 + float64(h.outstanding))
	}
	return p95 * (1 + float64(h.outstanding)/float64(m.batch))
}

// feasibleUs is the absolute completion-latency estimate used for deadline
// admission. Unlike predictUs — a relative score where over-penalising
// backlog is harmless because every candidate is scored the same way — this
// must not double-count: the observed P95 already folds in the queueing a
// replica sees at its steady-state depth, so only backlog beyond one
// in-flight batch (true excess queue) escalates the estimate.
func feasibleUs(m *modelState, h *replicaHandle) float64 {
	p95 := h.lat.p95()
	if h.lat.n == 0 {
		p95 = m.sloUs / 2 * (1 + float64(h.outstanding))
	}
	excess := float64(h.outstanding - m.batch)
	if excess < 0 {
		excess = 0
	}
	return p95 * (1 + excess/float64(m.batch))
}

// bestPredictUs is the deadline-admission oracle: the predicted latency of
// the model's best routable replica right now (+Inf when none is
// routable). Replicas at their outstanding cap still count — the queue
// drains into them — so one gray replica's tail cannot force fleet-wide
// deadline sheds while healthy capacity remains.
func (r *router) bestPredictUs(m *modelState, now sim.Time) float64 {
	best := math.Inf(1)
	for _, h := range m.replicas {
		if !h.accepts() || !h.routable(now) {
			continue
		}
		if s := feasibleUs(m, h); s < best {
			best = s
		}
	}
	return best
}

// invalidate marks every cached ready set stale; callers invoke it on any
// control-plane change to a handle's routability flags.
func (r *router) invalidate() { r.epoch++ }

// readySet returns the model's routable replicas in replica order,
// rebuilding the cached set only when the phase clock or replica epoch
// moved. Candidates at their outstanding cap are included — each policy
// applies its own headroom test — so the set stays valid across the sends
// of one phase (sends raise outstanding, never routability).
func (r *router) readySet(m *modelState, now sim.Time) []*replicaHandle {
	if m.cacheBuilt && m.cacheAt == now && m.cacheEpoch == r.epoch {
		return m.readyBuf
	}
	m.readyBuf = m.readyBuf[:0]
	for _, h := range m.replicas {
		if h.accepts() && h.routable(now) {
			m.readyBuf = append(m.readyBuf, h)
		}
	}
	m.cacheAt, m.cacheEpoch, m.cacheBuilt = now, r.epoch, true
	return m.readyBuf
}

// pick selects a routable replica with admission headroom, or nil when
// every candidate is at its outstanding cap (the request then queues).
// exclude skips one replica id (hedge copies must land elsewhere); -1
// excludes nothing. Without a gateway the candidate scan runs over the
// phase-cached ready set; gateway picks (stateful breakers, hedge
// exclusions) re-test routability per decision, exactly as before.
func (r *router) pick(m *modelState, now sim.Time, exclude int) *replicaHandle {
	cached := r.gw == nil && exclude < 0
	switch r.policy {
	case RoundRobin:
		n := len(m.replicas)
		for i := 0; i < n; i++ {
			h := m.replicas[(m.rrNext+i)%n]
			if h.id != exclude && h.accepts() && h.routable(now) && h.outstanding < r.outstandingCap {
				m.rrNext = (m.rrNext + i + 1) % n
				return h
			}
		}
		return nil

	case LeastOutstanding:
		var best *replicaHandle
		if cached {
			for _, h := range r.readySet(m, now) {
				if h.outstanding >= r.outstandingCap {
					continue
				}
				if best == nil || h.outstanding < best.outstanding {
					best = h
				}
			}
			return best
		}
		for _, h := range m.replicas {
			if h.id == exclude || !h.accepts() || !h.routable(now) || h.outstanding >= r.outstandingCap {
				continue
			}
			if best == nil || h.outstanding < best.outstanding {
				best = h
			}
		}
		return best

	case PowerOfTwo:
		var ready []*replicaHandle
		if cached {
			ready = r.readySet(m, now)
		} else {
			ready = m.readyBuf[:0]
			for _, h := range m.replicas {
				if h.id != exclude && h.accepts() && h.routable(now) {
					ready = append(ready, h)
				}
			}
			m.readyBuf, m.cacheBuilt = ready, false
		}
		if len(ready) == 0 {
			return nil
		}
		a := ready[r.rng.Intn(len(ready))]
		b := ready[r.rng.Intn(len(ready))]
		if b.outstanding < a.outstanding {
			a, b = b, a
		}
		if a.outstanding < r.outstandingCap {
			return a
		}
		if b.outstanding < r.outstandingCap {
			return b
		}
		return nil

	case SLOAware:
		var best *replicaHandle
		bestScore := 0.0
		if cached {
			for _, h := range r.readySet(m, now) {
				if h.outstanding >= r.outstandingCap {
					continue
				}
				score := predictUs(m, h)
				if best == nil || score < bestScore || (score == bestScore && h.id < best.id) {
					best, bestScore = h, score
				}
			}
			return best
		}
		for _, h := range m.replicas {
			if h.id == exclude || !h.accepts() || !h.routable(now) || h.outstanding >= r.outstandingCap {
				continue
			}
			score := predictUs(m, h)
			if best == nil || score < bestScore || (score == bestScore && h.id < best.id) {
				best, bestScore = h, score
			}
		}
		return best

	default:
		panic("cluster: unknown policy")
	}
}

// route admits one request that arrived at the given time: hand it to a
// replica, queue it, or reject it. Routed requests are scheduled onto the
// chosen replica's node at their arrival timestamp. tenant is the dense
// gateway tenant index (0 without a gateway); prompt/output are the drawn
// sequence lengths for LLM workloads (0 for classic models).
func (r *router) route(m *modelState, arrival sim.Time, now sim.Time, tenant, prompt, output int) {
	r.seq++
	m.arrivals++
	if h := r.pick(m, now, -1); h != nil {
		r.send(m, h, arrival, now, tenant, prompt, output)
		return
	}
	if len(m.queue) < r.queueCap {
		m.queue = append(m.queue, queuedReq{arrival: arrival, tenant: tenant, prompt: prompt, output: output})
		return
	}
	m.rejected++
	r.tel.cRejected().Inc()
	r.obs.onShed(m, tenant, arrival, now)
	if r.log != nil {
		fmt.Fprintf(r.log, "%d %s->reject\n", r.seq, m.name)
	}
}

// send commits one request to a replica. In gateway mode the request gets
// a fresh identity so its copies can be hedged, cancelled, and matched.
// LLM requests (prompt > 0) enter the replica's continuous batch as fresh
// sequences via SubmitSeq.
func (r *router) send(m *modelState, h *replicaHandle, arrival, now sim.Time, tenant, prompt, output int) {
	h.outstanding++
	h.routed++
	m.routed++
	r.tel.cRouted().Inc()
	if r.log != nil {
		fmt.Fprintf(r.log, "%d %s->%d\n", r.seq, m.name, h.id)
	}
	rep := h.rep
	at := arrival
	var id uint64
	if r.gw != nil || r.obs.journeysOn() {
		r.reqSeq++
		id = r.reqSeq
	}
	if r.gw != nil {
		r.gw.OnPrimarySend(id, m.index, tenant, h.id, arrival, now)
	}
	r.obs.onSend(id, m, h, tenant, arrival, now)
	r.tel.traceRoute(now, h.id)
	if r.mailbox {
		deliver := at
		if deliver < now {
			deliver = now // queued re-sends deliver now, like Schedule's clamp
		}
		if prompt > 0 {
			h.nodeRef.node.PostSubmitSeq(deliver, at, rep, id, prompt, output, false)
		} else {
			h.nodeRef.node.PostSubmit(deliver, at, rep, id)
		}
		h.nodeRef.noteMail(deliver)
		return
	}
	if prompt > 0 {
		p, o := prompt, output
		h.nodeRef.node.Schedule(at, func() { rep.SubmitSeq(at, id, p, o, false) })
		return
	}
	if id != 0 {
		h.nodeRef.node.Schedule(at, func() { rep.SubmitID(at, id) })
		return
	}
	h.nodeRef.node.Schedule(at, func() { rep.Submit(at) })
}

// drainQueue re-attempts queued requests (oldest first) and sheds the ones
// whose wait already exceeds the model's SLO — they cannot complete in
// time, so admission control fails them fast instead of letting them rot.
// A gateway tightens the test: a request is also shed once the best
// routable replica's predicted latency no longer fits its remaining
// deadline budget.
func (r *router) drainQueue(m *modelState, now sim.Time) {
	keep := m.queue[:0]
	for i := range m.queue {
		q := m.queue[i]
		wait := float64(now - q.arrival)
		infeasible := wait > m.sloUs
		if !infeasible && r.gw != nil && r.gw.DeadlineEnabled() {
			infeasible = r.bestPredictUs(m, now) > m.sloUs-wait
		}
		if infeasible {
			m.rejected++
			r.tel.cRejected().Inc()
			r.obs.onShed(m, q.tenant, q.arrival, now)
			if r.gw != nil {
				r.gw.OnQueueShed(m.index, q.tenant)
			}
			continue
		}
		if h := r.pick(m, now, -1); h != nil {
			r.seq++
			r.send(m, h, q.arrival, now, q.tenant, q.prompt, q.output)
			continue
		}
		keep = append(keep, q)
	}
	m.queue = keep
}

// absorb processes one pulled completion. Cancelled copies only release
// their occupancy; in gateway mode a completion counts as a served request
// only when the gateway rules it the winning copy.
func (r *router) absorb(m *modelState, h *replicaHandle, c server.Completion, now sim.Time) {
	if h.outstanding > 0 {
		h.outstanding--
	}
	if c.Cancelled {
		return
	}
	lat := float64(c.End - c.Arrival)
	h.lat.add(lat)
	if h.role == server.LLMRolePrefill && m.llm != nil {
		// A finished prefill is not a served request yet: bill the KV
		// transfer and queue the sequence for a decode replica. The journey
		// and the latency sample retire on the decode-side completion.
		m.llm.queueHandoff(c, 0)
		return
	}
	if r.gw != nil && !r.gw.OnCompletion(c.ID, h.id, c.End, now) {
		// The losing copy of a hedge (or a stale copy of a retried
		// request): evidence for the replica's latency window above, but
		// not a served request.
		return
	}
	m.completed++
	m.tokensOut += c.Tokens
	m.latency.Add(lat)
	r.tel.cCompleted().Inc()
	sloViolated := lat > m.sloUs
	if sloViolated {
		m.sloViolations++
		r.tel.cSLO().Inc()
	}
	r.obs.onWinner(m, h, c, sloViolated)
}
