package cluster

import (
	"fmt"
	"sort"

	"krisp/internal/cluster/gateway"
	"krisp/internal/server"
	"krisp/internal/sim"
	"krisp/internal/telemetry"
)

// journeyPidBase namespaces the per-tenant journey tracks in the Chrome
// trace, clear of the per-GPU pids the node stacks use and the fleet
// control track (fleetPid, telemetry.go).
const journeyPidBase = 1 << 19

// Observability opts the fleet into the request-journey and SLO-monitoring
// layer. The zero value (and a nil pointer on Config) disables everything:
// runs are byte-identical to a fleet without the layer, and the routing hot
// path keeps its zero-allocation guarantee.
type Observability struct {
	// SampleEvery samples every Nth request into a pooled journey record
	// (1 = every request, 100 = 1%). 0 disables journeys entirely.
	SampleEvery int
	// Monitors enables per-model SLO burn-rate monitors. Unlike journeys,
	// monitors see every request outcome — sampling would distort the burn
	// arithmetic — but cost only ring-bucket increments.
	Monitors bool
	// Burn overrides the monitors' windows; zero fields take tick-derived
	// fleet defaults (see burnDefaults).
	Burn telemetry.BurnConfig
	// FlightCap bounds the anomalous-journey flight recorder (0 = 64).
	FlightCap int
}

func (o *Observability) enabled() bool {
	return o != nil && (o.SampleEvery > 0 || o.Monitors)
}

// burnDefaults fills zero BurnConfig fields with windows derived from the
// fleet tick, so the defaults scale with the experiment's time resolution:
// 5-tick rollups, a 2-bucket fast window, a 6-bucket slow window.
func burnDefaults(b telemetry.BurnConfig, tick sim.Duration) telemetry.BurnConfig {
	w := 5 * int64(tick)
	if b.Objective == 0 {
		b.Objective = 0.95
	}
	if b.WidthUs == 0 {
		b.WidthUs = w
	}
	if b.FastWindowUs == 0 {
		b.FastWindowUs = 2 * b.WidthUs
	}
	if b.SlowWindowUs == 0 {
		b.SlowWindowUs = 6 * b.WidthUs
	}
	if b.PageBurn == 0 {
		b.PageBurn = 5
	}
	if b.WarnBurn == 0 {
		b.WarnBurn = 2
	}
	if b.ClearHoldUs == 0 {
		b.ClearHoldUs = 3 * b.WidthUs
	}
	if b.MinCount == 0 {
		b.MinCount = 5
	}
	return b
}

// fleetObserver threads request journeys, stage-attribution histograms,
// burn-rate monitors, and the flight recorder through the fleet's control
// loop. Like fleetTelemetry, every method tolerates a nil receiver, and the
// observer only observes: it draws no randomness, schedules no events, and
// leaves RoutingLog and Result byte-identical on or off.
//
// The observer runs strictly on the fleet control goroutine. Journey
// records come from a single-goroutine pool; live journeys are keyed by
// request id, and the rare sweeps that iterate the map (node faults, run
// end) sort the ids first so flight-recorder content replays identically.
type fleetObserver struct {
	sampleEvery uint64
	pool        telemetry.JourneyPool
	byID        map[uint64]*telemetry.Journey
	flight      *telemetry.FlightRecorder
	monitors    []*telemetry.BurnMonitor // per model; nil when Monitors off
	// stage[model][tenant][stage] are the latency-attribution histograms.
	stage   [][][telemetry.NumStages]*telemetry.Histogram
	tracer  *telemetry.Tracer
	names   []string
	shedSeq uint64   // dedicated shed-sampling counter (sheds carry no id)
	idBuf   []uint64 // sweep scratch
}

// newFleetObserver builds the observer, registering stage histograms and
// binding monitors on the hub's registry. Returns nil when o is nil or
// fully disabled.
func newFleetObserver(o *Observability, hub *telemetry.Hub, modelNames []string, tenants int, tick sim.Duration) *fleetObserver {
	if !o.enabled() {
		return nil
	}
	if tenants < 1 {
		tenants = 1
	}
	fo := &fleetObserver{
		flight: telemetry.NewFlightRecorder(o.FlightCap),
		tracer: hub.Trace(),
		names:  modelNames,
	}
	if o.SampleEvery > 0 {
		fo.sampleEvery = uint64(o.SampleEvery)
		fo.byID = make(map[uint64]*telemetry.Journey)
	}
	reg := hub.Registry()
	if o.Monitors {
		cfg := burnDefaults(o.Burn, tick)
		fo.monitors = make([]*telemetry.BurnMonitor, len(modelNames))
		for i, name := range modelNames {
			fo.monitors[i] = telemetry.NewBurnMonitor(name, cfg)
			fo.monitors[i].Bind(reg)
		}
	}
	if reg != nil && fo.sampleEvery > 0 {
		fo.stage = make([][][telemetry.NumStages]*telemetry.Histogram, len(modelNames))
		for mi, name := range modelNames {
			fo.stage[mi] = make([][telemetry.NumStages]*telemetry.Histogram, tenants)
			for t := 0; t < tenants; t++ {
				for s := 0; s < telemetry.NumStages; s++ {
					fo.stage[mi][t][s] = reg.Histogram(
						fmt.Sprintf(`krisp_stage_%s_us{model="%s",tenant="%d"}`, telemetry.StageNames[s], name, t),
						"per-stage request latency attribution (sampled journeys)",
						telemetry.LatencyBucketsUs())
				}
			}
		}
	}
	if fo.tracer != nil && fo.sampleEvery > 0 {
		for t := 0; t < tenants; t++ {
			fo.tracer.NameProcess(journeyPidBase+t, fmt.Sprintf("tenant %d journeys", t))
			for mi, name := range modelNames {
				fo.tracer.NameThread(journeyPidBase+t, mi, name)
			}
		}
	}
	return fo
}

// journeysOn reports whether sends need request identities for journey
// tracking (nil-safe; the router's one extra branch on the hot path).
func (o *fleetObserver) journeysOn() bool { return o != nil && o.sampleEvery > 0 }

// sampled reports whether the request id falls in the sample.
func (o *fleetObserver) sampled(id uint64) bool {
	return o.sampleEvery > 0 && id%o.sampleEvery == 0
}

// onSend stamps a sampled request's admit boundary as it leaves the router
// for a replica. T[0] is the true arrival; T[1] the router-phase clock, so
// the admit stage folds in admission, rate-limit, and router-queue wait.
func (o *fleetObserver) onSend(id uint64, m *modelState, h *replicaHandle, tenant int, arrival, now sim.Time) {
	if o == nil || !o.sampled(id) {
		return
	}
	j := o.pool.Get()
	j.ID = id
	j.Model = m.index
	j.Tenant = tenant
	j.Replica = h.id
	j.ModelName = m.name
	j.T[0] = int64(arrival)
	send := now
	if arrival > send {
		send = arrival // same-tick sends leave at their arrival instant
	}
	j.T[1] = int64(send)
	o.byID[id] = j
}

// onCopy flags a tracked journey when the gateway sends a secondary copy:
// hedges mark the journey hedged; retries move it to the new replica.
func (o *fleetObserver) onCopy(id uint64, replica int, kind gateway.CopyKind) {
	if o == nil || o.byID == nil {
		return
	}
	j, ok := o.byID[id]
	if !ok {
		return
	}
	switch kind {
	case gateway.CopyHedge:
		j.Hedged = true
	case gateway.CopyRetry:
		j.Retried = true
		j.Replica = replica
	}
}

// onWinner closes out one served request: the monitor sees the outcome, and
// a sampled journey takes its node-side stamps from the winning copy's
// completion and retires.
func (o *fleetObserver) onWinner(m *modelState, h *replicaHandle, c server.Completion, sloViolated bool) {
	if o == nil {
		return
	}
	if m.index < len(o.monitors) {
		o.monitors[m.index].Observe(int64(c.End), sloViolated)
	}
	if o.byID == nil {
		return
	}
	j, ok := o.byID[c.ID]
	if !ok {
		return
	}
	delete(o.byID, c.ID)
	j.Replica = h.id
	j.T[2] = int64(c.Enqueued)
	j.T[3] = int64(c.BatchStart)
	j.T[4] = int64(c.KernelStart)
	j.T[5] = int64(c.KernelEnd)
	j.T[6] = int64(c.End)
	j.Outcome = telemetry.JourneyCompleted
	j.SLOViolated = sloViolated
	o.retire(j)
}

// onShed records one shed request (router reject, queue shed, or gateway
// admission shed): a bad monitor observation, plus — sheds carry no request
// id — a dedicated sampling counter deciding whether the shed becomes a
// flight-recorder journey.
func (o *fleetObserver) onShed(m *modelState, tenant int, arrival, now sim.Time) {
	if o == nil {
		return
	}
	if m.index < len(o.monitors) {
		o.monitors[m.index].Observe(int64(now), true)
	}
	if o.sampleEvery == 0 {
		return
	}
	o.shedSeq++
	if o.shedSeq%o.sampleEvery != 0 {
		return
	}
	j := o.pool.Get()
	j.Model = m.index
	j.Tenant = tenant
	j.Replica = -1
	j.ModelName = m.name
	j.T[0] = int64(arrival)
	j.T[1] = int64(now)
	j.Outcome = telemetry.JourneyShed
	o.retire(j)
}

// onReplicaDown accounts a replica lost to a node fault: failed requests
// burn the model's error budget, and tracked journeys on the replica are
// marked fault-touched. Without a gateway every outstanding journey on the
// replica is dead — finish them now; with one, retries may still rescue
// them, so the final disposition waits for completion or the run-end sweep.
func (o *fleetObserver) onReplicaDown(h *replicaHandle, now sim.Time, failed int, gatewayMode bool) {
	if o == nil {
		return
	}
	m := -1
	for i, name := range o.names {
		if name == h.model {
			m = i
			break
		}
	}
	if m >= 0 && m < len(o.monitors) {
		for i := 0; i < failed; i++ {
			o.monitors[m].Observe(int64(now), true)
		}
	}
	if o.byID == nil {
		return
	}
	o.idBuf = o.idBuf[:0]
	for id, j := range o.byID {
		if j.Replica == h.id {
			o.idBuf = append(o.idBuf, id)
		}
	}
	sort.Slice(o.idBuf, func(a, b int) bool { return o.idBuf[a] < o.idBuf[b] })
	for _, id := range o.idBuf {
		j := o.byID[id]
		j.FaultTouched = true
		if !gatewayMode {
			delete(o.byID, id)
			j.Outcome = telemetry.JourneyFailed
			o.retire(j)
		}
	}
}

// onTick advances every monitor's windows to the tick clock.
func (o *fleetObserver) onTick(now sim.Time) {
	if o == nil {
		return
	}
	for _, m := range o.monitors {
		m.Advance(int64(now))
	}
}

// retire finishes a journey: stage histograms, the per-tenant trace track,
// the flight recorder when anomalous, then back to the pool.
func (o *fleetObserver) retire(j *telemetry.Journey) {
	if o.stage != nil && j.Model < len(o.stage) {
		hists := o.stage[j.Model]
		t := j.Tenant
		if t < 0 || t >= len(hists) {
			t = 0
		}
		for s := 0; s < telemetry.NumStages; s++ {
			if d := j.StageUs(s); d >= 0 {
				hists[t][s].Observe(float64(d))
			}
		}
	}
	if o.tracer != nil {
		pid := journeyPidBase + j.Tenant
		for s := 0; s < telemetry.NumStages; s++ {
			if j.T[s] >= 0 && j.T[s+1] >= 0 {
				o.tracer.SpanArg("journey", telemetry.StageNames[s], pid, j.Model,
					float64(j.T[s]), float64(j.T[s+1]), "id", float64(j.ID))
			}
		}
	}
	if j.Anomalous() {
		o.flight.Record(j)
	}
	o.pool.Put(j)
}

// finishRun sweeps journeys still live at the end of the run (fault-touched
// ones failed; the rest simply never completed inside the horizon), takes a
// final monitor reading, and — when the fleet is wired to the process-wide
// registry — publishes the SLO board and flight recorder for the debug
// endpoints.
func (o *fleetObserver) finishRun(end sim.Duration, hub *telemetry.Hub) {
	if o == nil {
		return
	}
	if o.byID != nil {
		o.idBuf = o.idBuf[:0]
		for id := range o.byID {
			o.idBuf = append(o.idBuf, id)
		}
		sort.Slice(o.idBuf, func(a, b int) bool { return o.idBuf[a] < o.idBuf[b] })
		for _, id := range o.idBuf {
			j := o.byID[id]
			delete(o.byID, id)
			if j.FaultTouched {
				j.Outcome = telemetry.JourneyFailed
				o.retire(j)
				continue
			}
			o.pool.Put(j) // still in flight at the horizon: not an anomaly
		}
	}
	for _, m := range o.monitors {
		m.Advance(int64(end))
	}
	if hub.Registry() == telemetry.Default() {
		telemetry.DefaultBoard().Publish(o.statuses())
		telemetry.SetDefaultFlight(o.flight)
	}
}

// statuses snapshots every monitor (empty without monitors).
func (o *fleetObserver) statuses() []telemetry.SLOStatus {
	if o == nil || len(o.monitors) == 0 {
		return nil
	}
	out := make([]telemetry.SLOStatus, 0, len(o.monitors))
	for _, m := range o.monitors {
		out = append(out, m.Status())
	}
	return out
}
