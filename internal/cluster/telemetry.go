package cluster

import (
	"fmt"

	"krisp/internal/telemetry"
)

// fleetTelemetry mirrors the fleet controller's counters into the live
// metrics registry. All fields are nil-safe handles: a nil hub yields a
// nil *fleetTelemetry whose methods no-op, and simulation results are
// byte-identical with telemetry on or off (it only observes).
type fleetTelemetry struct {
	routed        *telemetry.Counter
	rejected      *telemetry.Counter
	completed     *telemetry.Counter
	failed        *telemetry.Counter
	sloViolations *telemetry.Counter
	migrations    *telemetry.Counter
	resizes       *telemetry.Counter
	drains        *telemetry.Counter
	nodeFaults    *telemetry.Counter

	nodesUp  *telemetry.Gauge
	replicas map[string]*telemetry.Gauge // per model
	// queueDepth samples each node's outstanding requests once per tick.
	queueDepth []*telemetry.Histogram
}

func newFleetTelemetry(hub *telemetry.Hub, modelNames []string, nodes int) *fleetTelemetry {
	reg := hub.Registry()
	if reg == nil {
		return nil
	}
	t := &fleetTelemetry{
		routed:        reg.Counter("krisp_fleet_routed_total", "requests routed to a replica"),
		rejected:      reg.Counter("krisp_fleet_rejected_total", "requests rejected by admission control or shed from the queue"),
		completed:     reg.Counter("krisp_fleet_completed_total", "requests completed"),
		failed:        reg.Counter("krisp_fleet_failed_total", "requests lost to node faults"),
		sloViolations: reg.Counter("krisp_fleet_slo_violations_total", "completed requests whose latency exceeded the model SLO"),
		migrations:    reg.Counter("krisp_fleet_migrations_total", "replicas placed onto a new GPU (model load paid)"),
		resizes:       reg.Counter("krisp_fleet_resizes_total", "replicas resized in place (free under kernel-scoped instances)"),
		drains:        reg.Counter("krisp_fleet_drains_total", "replicas drained out of the placement"),
		nodeFaults:    reg.Counter("krisp_fleet_node_faults_total", "node-level faults applied"),
		nodesUp:       reg.Gauge("krisp_fleet_nodes_up", "nodes currently serving"),
		replicas:      make(map[string]*telemetry.Gauge, len(modelNames)),
	}
	for _, m := range modelNames {
		t.replicas[m] = reg.Gauge(
			fmt.Sprintf(`krisp_fleet_replicas{model="%s"}`, m),
			"live replicas per model")
	}
	t.queueDepth = make([]*telemetry.Histogram, nodes)
	for n := range t.queueDepth {
		t.queueDepth[n] = reg.Histogram(
			fmt.Sprintf(`krisp_fleet_node_outstanding{node="%d"}`, n),
			"outstanding requests on the node, sampled per tick",
			telemetry.QueueDepthBuckets())
	}
	return t
}

func (t *fleetTelemetry) observeNode(node int, outstanding int) {
	if t == nil || node < 0 || node >= len(t.queueDepth) {
		return
	}
	t.queueDepth[node].Observe(float64(outstanding))
}

func (t *fleetTelemetry) setReplicas(model string, n int) {
	if t == nil {
		return
	}
	t.replicas[model].Set(int64(n))
}

// counter accessors tolerate a nil receiver so call sites stay unguarded.
func (t *fleetTelemetry) cRouted() *telemetry.Counter {
	if t == nil {
		return nil
	}
	return t.routed
}
func (t *fleetTelemetry) cRejected() *telemetry.Counter {
	if t == nil {
		return nil
	}
	return t.rejected
}
func (t *fleetTelemetry) cCompleted() *telemetry.Counter {
	if t == nil {
		return nil
	}
	return t.completed
}
func (t *fleetTelemetry) cFailed() *telemetry.Counter {
	if t == nil {
		return nil
	}
	return t.failed
}
func (t *fleetTelemetry) cSLO() *telemetry.Counter {
	if t == nil {
		return nil
	}
	return t.sloViolations
}
func (t *fleetTelemetry) cMigrations() *telemetry.Counter {
	if t == nil {
		return nil
	}
	return t.migrations
}
func (t *fleetTelemetry) cResizes() *telemetry.Counter {
	if t == nil {
		return nil
	}
	return t.resizes
}
func (t *fleetTelemetry) cDrains() *telemetry.Counter {
	if t == nil {
		return nil
	}
	return t.drains
}
func (t *fleetTelemetry) cNodeFaults() *telemetry.Counter {
	if t == nil {
		return nil
	}
	return t.nodeFaults
}
func (t *fleetTelemetry) gNodesUp() *telemetry.Gauge {
	if t == nil {
		return nil
	}
	return t.nodesUp
}
