package cluster

import (
	"fmt"

	"krisp/internal/sim"
	"krisp/internal/telemetry"
)

// fleetPid is the Chrome-trace process id of the fleet control track:
// router decisions, gateway hedges/breakers, and autoscaler actions land
// here as instant events, clear of the per-GPU node pids and the journey
// tracks (journeyPidBase, observe.go).
const fleetPid = 1 << 20

// Thread ids on the fleet control track.
const (
	fleetTidRouter = iota
	fleetTidGateway
	fleetTidScaler
)

// laggardK bounds the per-rank laggard gauges: instead of one histogram
// per node (unbounded label cardinality as fleets scale), the fleet
// exports one aggregated depth histogram plus the top-K most-loaded nodes
// each tick.
const laggardK = 4

// fleetTelemetry mirrors the fleet controller's counters into the live
// metrics registry. All fields are nil-safe handles: a nil hub yields a
// nil *fleetTelemetry whose methods no-op, and simulation results are
// byte-identical with telemetry on or off (it only observes).
type fleetTelemetry struct {
	routed        *telemetry.Counter
	rejected      *telemetry.Counter
	completed     *telemetry.Counter
	failed        *telemetry.Counter
	sloViolations *telemetry.Counter
	migrations    *telemetry.Counter
	resizes       *telemetry.Counter
	drains        *telemetry.Counter
	nodeFaults    *telemetry.Counter

	nodesUp  *telemetry.Gauge
	replicas map[string]*telemetry.Gauge // per model
	// queueDepth samples every node's outstanding requests once per tick
	// into one aggregated histogram — per-node histograms scaled metric
	// cardinality with fleet size for no analytical gain (the per-node
	// question is "who is the laggard?", answered by the ranked gauges).
	queueDepth *telemetry.Histogram
	// laggardDepth[k] / laggardNode[k] export the k-th most-loaded node's
	// outstanding count and id (-1 when fewer nodes are up than ranks).
	laggardDepth [laggardK]*telemetry.Gauge
	laggardNode  [laggardK]*telemetry.Gauge

	// tr mirrors control-plane events onto the fleet trace track when the
	// hub carries a tracer.
	tr *telemetry.Tracer
}

func newFleetTelemetry(hub *telemetry.Hub, modelNames []string) *fleetTelemetry {
	reg := hub.Registry()
	if reg == nil {
		return nil
	}
	t := &fleetTelemetry{
		routed:        reg.Counter("krisp_fleet_routed_total", "requests routed to a replica"),
		rejected:      reg.Counter("krisp_fleet_rejected_total", "requests rejected by admission control or shed from the queue"),
		completed:     reg.Counter("krisp_fleet_completed_total", "requests completed"),
		failed:        reg.Counter("krisp_fleet_failed_total", "requests lost to node faults"),
		sloViolations: reg.Counter("krisp_fleet_slo_violations_total", "completed requests whose latency exceeded the model SLO"),
		migrations:    reg.Counter("krisp_fleet_migrations_total", "replicas placed onto a new GPU (model load paid)"),
		resizes:       reg.Counter("krisp_fleet_resizes_total", "replicas resized in place (free under kernel-scoped instances)"),
		drains:        reg.Counter("krisp_fleet_drains_total", "replicas drained out of the placement"),
		nodeFaults:    reg.Counter("krisp_fleet_node_faults_total", "node-level faults applied"),
		nodesUp:       reg.Gauge("krisp_fleet_nodes_up", "nodes currently serving"),
		replicas:      make(map[string]*telemetry.Gauge, len(modelNames)),
	}
	for _, m := range modelNames {
		t.replicas[m] = reg.Gauge(
			fmt.Sprintf(`krisp_fleet_replicas{model="%s"}`, m),
			"live replicas per model")
	}
	t.queueDepth = reg.Histogram(
		"krisp_fleet_node_outstanding",
		"outstanding requests per node, sampled per tick (all nodes aggregated)",
		telemetry.QueueDepthBuckets())
	for k := 0; k < laggardK; k++ {
		t.laggardDepth[k] = reg.Gauge(
			fmt.Sprintf(`krisp_fleet_node_laggard{rank="%d"}`, k),
			"outstanding requests on the k-th most-loaded node this tick")
		t.laggardNode[k] = reg.Gauge(
			fmt.Sprintf(`krisp_fleet_node_laggard_node{rank="%d"}`, k),
			"node id holding the k-th laggard rank this tick (-1 when unranked)")
	}
	if t.tr = hub.Trace(); t.tr != nil {
		t.tr.NameProcess(fleetPid, "fleet")
		t.tr.NameThread(fleetPid, fleetTidRouter, "router")
		t.tr.NameThread(fleetPid, fleetTidGateway, "gateway")
		t.tr.NameThread(fleetPid, fleetTidScaler, "autoscaler")
	}
	return t
}

func (t *fleetTelemetry) observeNode(node int, outstanding int) {
	if t == nil {
		return
	}
	t.queueDepth.Observe(float64(outstanding))
}

// setLaggards publishes this tick's top-K node ranking (outstanding
// descending, node id ascending on ties); n is how many ranks are filled.
func (t *fleetTelemetry) setLaggards(ids, depths *[laggardK]int, n int) {
	if t == nil {
		return
	}
	for k := 0; k < laggardK; k++ {
		if k < n {
			t.laggardDepth[k].Set(int64(depths[k]))
			t.laggardNode[k].Set(int64(ids[k]))
			continue
		}
		t.laggardDepth[k].Set(0)
		t.laggardNode[k].Set(-1)
	}
}

// traceRoute drops a route-decision instant on the fleet track.
func (t *fleetTelemetry) traceRoute(now sim.Time, replica int) {
	if t == nil || t.tr == nil {
		return
	}
	t.tr.Instant("fleet", "route", fleetPid, fleetTidRouter, float64(now), "replica", float64(replica))
}

// traceScaler drops an autoscaler action instant (resize/migrate/drain) on
// the fleet track, tagged with the acting replica's id.
func (t *fleetTelemetry) traceScaler(now sim.Time, action string, replica int) {
	if t == nil || t.tr == nil {
		return
	}
	t.tr.Instant("fleet", action, fleetPid, fleetTidScaler, float64(now), "replica", float64(replica))
}

// traceFault drops a node-fault instant on the fleet track.
func (t *fleetTelemetry) traceFault(now sim.Time, kind string, node int) {
	if t == nil || t.tr == nil {
		return
	}
	t.tr.Instant("fleet", kind, fleetPid, fleetTidScaler, float64(now), "node", float64(node))
}

func (t *fleetTelemetry) setReplicas(model string, n int) {
	if t == nil {
		return
	}
	t.replicas[model].Set(int64(n))
}

// counter accessors tolerate a nil receiver so call sites stay unguarded.
func (t *fleetTelemetry) cRouted() *telemetry.Counter {
	if t == nil {
		return nil
	}
	return t.routed
}
func (t *fleetTelemetry) cRejected() *telemetry.Counter {
	if t == nil {
		return nil
	}
	return t.rejected
}
func (t *fleetTelemetry) cCompleted() *telemetry.Counter {
	if t == nil {
		return nil
	}
	return t.completed
}
func (t *fleetTelemetry) cFailed() *telemetry.Counter {
	if t == nil {
		return nil
	}
	return t.failed
}
func (t *fleetTelemetry) cSLO() *telemetry.Counter {
	if t == nil {
		return nil
	}
	return t.sloViolations
}
func (t *fleetTelemetry) cMigrations() *telemetry.Counter {
	if t == nil {
		return nil
	}
	return t.migrations
}
func (t *fleetTelemetry) cResizes() *telemetry.Counter {
	if t == nil {
		return nil
	}
	return t.resizes
}
func (t *fleetTelemetry) cDrains() *telemetry.Counter {
	if t == nil {
		return nil
	}
	return t.drains
}
func (t *fleetTelemetry) cNodeFaults() *telemetry.Counter {
	if t == nil {
		return nil
	}
	return t.nodeFaults
}
func (t *fleetTelemetry) gNodesUp() *telemetry.Gauge {
	if t == nil {
		return nil
	}
	return t.nodesUp
}
