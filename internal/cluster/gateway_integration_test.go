package cluster

import (
	"testing"

	"krisp/internal/cluster/gateway"
	"krisp/internal/cluster/workload"
)

// gwStatsEqual compares the deterministic scalar counters of two gateway
// snapshots.
func gwStatsEqual(a, b *gateway.Stats) bool {
	return a.Admitted == b.Admitted && a.Shed() == b.Shed() &&
		a.ShedDeadline == b.ShedDeadline && a.ShedQueue == b.ShedQueue &&
		a.Primaries == b.Primaries && a.Hedges == b.Hedges &&
		a.HedgeWins == b.HedgeWins && a.Retries == b.Retries &&
		a.Cancelled == b.Cancelled && a.BudgetDenied == b.BudgetDenied &&
		a.BreakerOpens == b.BreakerOpens && a.BreakerCloses == b.BreakerCloses
}

// TestGatewayTransparentWhenAllDisabled: a gateway with every mechanism
// switched off and no rate limits is a pure pass-through — the fleet must
// be byte-identical to running with no gateway at all. This is the
// regression fence that keeps every PR5 result reproducible.
func TestGatewayTransparentWhenAllDisabled(t *testing.T) {
	off := baseConfig(t)
	off.RecordRouting = true
	offRes := Run(off)

	on := baseConfig(t)
	on.RecordRouting = true
	on.Gateway = &gateway.Config{
		DisableHedging:  true,
		DisableRetry:    true,
		DisableDeadline: true,
		DisableBreakers: true,
	}
	onRes := Run(on)

	if offRes.RoutingLog != onRes.RoutingLog {
		t.Fatal("routing log differs: the disabled gateway is not transparent")
	}
	if offRes.Arrivals != onRes.Arrivals || offRes.Routed != onRes.Routed ||
		offRes.Completed != onRes.Completed || offRes.SLOViolations != onRes.SLOViolations ||
		offRes.Rejected != onRes.Rejected {
		t.Fatalf("results differ:\noff: arr %d routed %d compl %d viol %d rej %d\non:  arr %d routed %d compl %d viol %d rej %d",
			offRes.Arrivals, offRes.Routed, offRes.Completed, offRes.SLOViolations, offRes.Rejected,
			onRes.Arrivals, onRes.Routed, onRes.Completed, onRes.SLOViolations, onRes.Rejected)
	}
	if onRes.Gateway.Hedges != 0 || onRes.Gateway.Retries != 0 || onRes.Gateway.Shed() != 0 {
		t.Fatalf("disabled gateway still acted: %s", onRes.Gateway)
	}
}

// TestHedgingDeterministicZeroFaults: with zero faults, the fleet's results
// ordering is byte-identical run-to-run both with hedging on and with it
// off — hedge timers, loser cancellation, and completion replay are all
// functions of the seed and the virtual clock, never of host scheduling.
func TestHedgingDeterministicZeroFaults(t *testing.T) {
	run := func(disableHedging bool) *Result {
		cfg := chaosConfig(t)
		cfg.Workloads[0].Gen = workload.Constant{RatePerSec: 1600}
		cfg.RecordRouting = true
		cfg.Gateway = &gateway.Config{DisableHedging: disableHedging}
		return Run(cfg)
	}
	for _, disable := range []bool{false, true} {
		a, b := run(disable), run(disable)
		if a.RoutingLog != b.RoutingLog {
			t.Fatalf("hedging disabled=%v: routing log differs across identical runs", disable)
		}
		if !gwStatsEqual(a.Gateway, b.Gateway) {
			t.Fatalf("hedging disabled=%v: gateway stats differ:\n%s\n%s", disable, a.Gateway, b.Gateway)
		}
		if a.Completed != b.Completed || a.SLOViolations != b.SLOViolations {
			t.Fatalf("hedging disabled=%v: results differ", disable)
		}
	}
	// Hedging with no faults is pure insurance: it must not lose requests.
	on, offRun := run(false), run(true)
	if on.Arrivals != offRun.Arrivals {
		t.Fatal("offered load differs between hedging on and off")
	}
	if on.Completed == 0 || offRun.Completed == 0 {
		t.Fatal("degenerate run")
	}
	if on.Failed != 0 || offRun.Failed != 0 {
		t.Fatalf("requests failed with zero faults: on %d, off %d", on.Failed, offRun.Failed)
	}
}

// TestGatewayParallelLockstepIdentical: the gateway's verdicts live on the
// fleet control goroutine, so parallel node advancement must not change a
// single decision. This also doubles as the -race exercise for hedged
// copies racing Drain/Kill: nodes die and replicas drain mid-flight while
// hedge submissions and cancellations land from the control goroutine.
func TestGatewayParallelLockstepIdentical(t *testing.T) {
	run := func(parallel int) *Result {
		cfg := chaosConfig(t)
		applyChaos(t, &cfg, "rack-loss")
		applyChaos(t, &cfg, "gray-node")
		cfg.Gateway = &gateway.Config{}
		cfg.RecordRouting = true
		cfg.Parallel = parallel
		return Run(cfg)
	}
	serial, par := run(1), run(4)
	if serial.RoutingLog != par.RoutingLog {
		t.Fatal("parallel fleet diverged from serial with gateway enabled")
	}
	if !gwStatsEqual(serial.Gateway, par.Gateway) {
		t.Fatalf("gateway stats diverge under parallel advancement:\n%s\n%s",
			serial.Gateway, par.Gateway)
	}
	if serial.Completed != par.Completed || serial.Failed != par.Failed {
		t.Fatalf("results diverge: serial compl %d fail %d, parallel compl %d fail %d",
			serial.Completed, serial.Failed, par.Completed, par.Failed)
	}
	if par.Gateway.Retries == 0 && par.Gateway.Hedges == 0 {
		t.Fatal("scenario exercised neither hedges nor retries")
	}
}
