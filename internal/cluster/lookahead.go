package cluster

import (
	"fmt"

	"krisp/internal/parallel"
	"krisp/internal/sim"
)

// Sched selects how the fleet advances its nodes between router phases.
type Sched int

const (
	// SchedEventHorizon is the event-driven scheduler (the default): the
	// fleet keeps a min-heap of per-node wake times — the node's next
	// engine event, lowered to the earliest pending mailbox delivery when
	// the router posts to it — and each tick advances only the nodes whose
	// wake falls inside the granted horizon, popped straight off the heap
	// instead of scanning the fleet. Ticks the whole fleet can prove are
	// couplings-free (no unpulled completions, no due faults or replans,
	// empty admission queues, no arrivals after the window's draws) skip
	// the router phases entirely and advance directly to the next tick
	// that can act. Byte-identical to SchedLockstep and SchedLookahead at
	// any worker count.
	SchedEventHorizon Sched = iota
	// SchedLookahead is the conservative-lookahead scheduler (PR7):
	// every tick the fleet grants each up node the horizon now+Tick, but
	// only nodes that can actually act before the horizon — pending mail,
	// or a simulation event at or before it — are advanced, found by an
	// O(nodes) scan. The rest are provably idle across the window (their
	// engines are event-driven, so no event means no state change) and
	// keep their lagging clocks until something is posted to them.
	// Cross-node effects travel through timestamped node mailboxes
	// drained in (time, posting order).
	SchedLookahead
	// SchedLockstep is the PR5 baseline: every up node advances to the
	// tick barrier via a fork-join pool, whether or not it has work. Kept
	// as the benchmark comparison axis and as a differential oracle for
	// the event-driven schedulers.
	SchedLockstep
)

func (s Sched) String() string {
	switch s {
	case SchedEventHorizon:
		return "event-horizon"
	case SchedLookahead:
		return "lookahead"
	case SchedLockstep:
		return "lockstep"
	default:
		return "unknown"
	}
}

// Scheds lists every fleet scheduler.
func Scheds() []Sched { return []Sched{SchedEventHorizon, SchedLookahead, SchedLockstep} }

// SchedByName parses a scheduler name as printed by String.
func SchedByName(name string) (Sched, error) {
	for _, s := range Scheds() {
		if s.String() == name {
			return s, nil
		}
	}
	return 0, fmt.Errorf("cluster: unknown scheduler %q", name)
}

// settle is the lookahead scheduler's per-tick advancement: collect the
// nodes that can act before the horizon and advance only those, through
// the persistent worker pool. A node is skippable exactly when it is up,
// has no posted mail, and its earliest pending event (if any) lies beyond
// the horizon — between events an event-driven engine's state is constant,
// so the skipped node's frozen state equals the state a lockstep advance
// would have produced, and the direct calls the router phase makes against
// it (Kill, Drain, Cancel, AddReplica, TakeCompletions) read and write
// exactly what they would have under lockstep. Skipped nodes' clocks lag;
// they catch up on their next grant with mail or events, and Run
// fast-forwards any still-lagging clock to Duration before the energy
// integration at the end.
func (f *Fleet) settle(horizon sim.Time) {
	act := f.activeBuf[:0]
	for _, n := range f.nodes {
		if !n.up {
			continue
		}
		if n.node.MailboxLen() > 0 {
			act = append(act, n)
			continue
		}
		if at, ok := n.node.NextEventTime(); ok && at <= horizon {
			act = append(act, n)
		}
	}
	f.activeBuf = act
	if len(act) == 0 {
		return
	}
	f.pool.Run(len(act), func(i int) { act[i].node.AdvanceTo(horizon) })
}

// newAdvancePool builds the persistent pool the lookahead scheduler fans
// settle rounds out on. cfg.Parallel keeps its lockstep meaning: 0 picks
// GOMAXPROCS, 1 forces serial (no goroutines at all).
func (f *Fleet) newAdvancePool() *parallel.Pool { return parallel.NewPool(f.cfg.Parallel) }
