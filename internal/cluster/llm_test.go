package cluster

import (
	"reflect"
	"testing"

	"krisp/internal/cluster/workload"
	"krisp/internal/llm"
	"krisp/internal/models"
	"krisp/internal/sim"
	"krisp/internal/telemetry"
)

// llmBaseConfig is a small mixed-fleet LLM experiment: every replica runs
// both phases under continuous batching.
func llmBaseConfig() Config {
	return Config{
		Nodes:       2,
		GPUsPerNode: 1,
		Workloads: []Workload{
			{
				Gen: workload.Constant{RatePerSec: 300},
				LLM: &LLMWorkload{
					Model: llm.Small(),
					Lengths: workload.LengthDist{
						PromptMin: 64, PromptMax: 192,
						OutputMin: 16, OutputMax: 48,
					},
				},
			},
		},
		Tick:     2 * sim.Millisecond,
		Epoch:    50 * sim.Millisecond,
		Duration: 300 * sim.Millisecond,
		Seed:     42,
		Costs:    compressedCosts(),
		Parallel: 1,
	}
}

func TestLLMFleetSmoke(t *testing.T) {
	res := Run(llmBaseConfig())
	if res.Arrivals == 0 {
		t.Fatal("no arrivals generated")
	}
	if res.Completed == 0 {
		t.Fatal("no sequences completed")
	}
	if got := res.Routed + res.Rejected; got != res.Arrivals {
		t.Fatalf("routed(%d)+rejected(%d) = %d, want arrivals %d",
			res.Routed, res.Rejected, got, res.Arrivals)
	}
	if res.Completed > res.Routed {
		t.Fatalf("completed %d > routed %d", res.Completed, res.Routed)
	}
	// Every served sequence generated at least OutputMin tokens.
	if res.TokensOut < res.Completed*16 {
		t.Fatalf("tokens out %d < completed %d x min output 16", res.TokensOut, res.Completed)
	}
	if res.Latency.Len() != res.Completed {
		t.Fatalf("latency samples %d != completed %d", res.Latency.Len(), res.Completed)
	}
	// Mixed fleets never hand KV caches between replicas.
	if res.KVHandoffs != 0 || res.KVHandoffUs != 0 {
		t.Fatalf("mixed fleet billed %d handoffs (%v us)", res.KVHandoffs, res.KVHandoffUs)
	}
	if len(res.PerModel) != 1 || res.PerModel[0].TokensOut != res.TokensOut {
		t.Fatalf("per-model tokens %+v do not fold into result %d", res.PerModel, res.TokensOut)
	}
}

// llmDisaggConfig splits the fleet into prefill and decode replicas with
// per-phase partition sizes.
func llmDisaggConfig() Config {
	cfg := llmBaseConfig()
	cfg.Workloads[0].LLM.Disaggregate = true
	cfg.Workloads[0].LLM.PerPhase = true
	return cfg
}

func TestLLMDisaggregatedHandoffs(t *testing.T) {
	res := Run(llmDisaggConfig())
	if res.Completed == 0 {
		t.Fatal("disaggregated fleet completed nothing")
	}
	// Every served sequence crossed the prefill→decode boundary exactly
	// once, and the transfer time was billed.
	if res.KVHandoffs < res.Completed {
		t.Fatalf("handoffs %d < completed %d", res.KVHandoffs, res.Completed)
	}
	if res.KVHandoffUs <= 0 {
		t.Fatal("no handoff transfer time billed")
	}
	if res.TokensOut == 0 {
		t.Fatal("no tokens generated")
	}
	if got := res.Routed + res.Rejected; got != res.Arrivals {
		t.Fatalf("routed(%d)+rejected(%d) = %d, want arrivals %d",
			res.Routed, res.Rejected, got, res.Arrivals)
	}
}

// TestLLMPerPhaseBeatsShared is the pinned acceptance scenario for
// kernel-wise right-sizing at fleet scale: a decode-heavy disaggregated
// workload on a fixed 4-GPU fleet. With one shared partition size every
// replica costs the prefill knee (~42 CUs on MI50), so at most one fits
// per GPU and the decode tier starves. Per-phase sizing packs decode
// replicas at their ~8-CU knee — several per GPU — so the same demand
// fits and goodput is strictly higher.
func TestLLMPerPhaseBeatsShared(t *testing.T) {
	run := func(perPhase bool) *Result {
		cfg := Config{
			Nodes:       2,
			GPUsPerNode: 2,
			Workloads: []Workload{
				{
					Gen: workload.Constant{RatePerSec: 2000},
					LLM: &LLMWorkload{
						Model: llm.Small(),
						Lengths: workload.LengthDist{
							PromptMin: 128, PromptMax: 128,
							OutputMin: 64, OutputMax: 64,
						},
						Disaggregate: true,
						PerPhase:     perPhase,
					},
				},
			},
			Tick:     2 * sim.Millisecond,
			Epoch:    50 * sim.Millisecond,
			Duration: 300 * sim.Millisecond,
			Seed:     42,
			Costs:    compressedCosts(),
			Parallel: 1,
		}
		return Run(cfg)
	}

	shared := run(false)
	perPhase := run(true)
	if perPhase.Arrivals != shared.Arrivals {
		t.Fatalf("arrival traces diverged: %d vs %d", perPhase.Arrivals, shared.Arrivals)
	}
	// The shared-size plan cannot place its decode tier; per-phase must.
	if shared.Unplaced == 0 {
		t.Fatalf("shared sizing placed everything — scenario lost its pressure: %+v", shared)
	}
	if perPhase.Unplaced != 0 {
		t.Fatalf("per-phase sizing left %d gpulets unplaced", perPhase.Unplaced)
	}
	if perPhase.Completed <= shared.Completed {
		t.Fatalf("per-phase completed %d <= shared %d", perPhase.Completed, shared.Completed)
	}
	if pg, sg := perPhase.GoodputRPS(), shared.GoodputRPS(); pg < sg*1.3 {
		t.Fatalf("per-phase goodput %.1f not >= 1.3x shared %.1f", pg, sg)
	}
	t.Logf("per-phase: completed %d goodput %.1f | shared: completed %d goodput %.1f unplaced %d",
		perPhase.Completed, perPhase.GoodputRPS(), shared.Completed, shared.GoodputRPS(), shared.Unplaced)
}

// TestLLMMatrixIdentical is the LLM determinism guarantee: a disaggregated
// continuous-batching fleet (plus a classic model sharing the merge) must
// produce byte-identical routing logs and results across every scheduler
// and worker count, with journey sampling on. Run under -race this also
// proves token-boundary joins stay on the node goroutines.
func TestLLMMatrixIdentical(t *testing.T) {
	run := func(sched Sched, workers int, obs *Observability) *Result {
		cfg := llmDisaggConfig()
		sq, _ := models.ByName("squeezenet")
		cfg.Workloads = append(cfg.Workloads, Workload{
			Model: sq,
			Batch: 8,
			Gen:   workload.Constant{RatePerSec: 400},
		})
		cfg.Policy = SLOAware
		cfg.Sched = sched
		cfg.Parallel = workers
		cfg.RecordRouting = true
		cfg.Obs = obs
		return Run(cfg)
	}

	base := run(SchedLockstep, 1, nil)
	if base.RoutingLog == "" {
		t.Fatal("no routing decisions recorded")
	}
	if base.KVHandoffs == 0 {
		t.Fatal("matrix scenario exercised no handoffs")
	}
	obs := &Observability{SampleEvery: 1, Monitors: true, FlightCap: 32}
	for _, sched := range []Sched{SchedLockstep, SchedLookahead, SchedEventHorizon} {
		for _, workers := range []int{1, 0, 8} {
			got := run(sched, workers, obs)
			if got.RoutingLog != base.RoutingLog {
				t.Fatalf("sched=%v workers=%d: routing log diverged", sched, workers)
			}
			if !reflect.DeepEqual(got, base) {
				t.Fatalf("sched=%v workers=%d: result diverged:\nbase: %+v\ngot:  %+v",
					sched, workers, base, got)
			}
		}
	}
}

// TestLLMJourneysTelescope: sampled LLM journeys must keep the exact
// stage-telescoping invariant — the seven stamps bracket prefill, KV
// transfer, and every decode step without gaps, so the stage sum equals
// the end-to-end latency. A deliberately tight SLO makes most journeys
// anomalous so the flight recorder retains them.
func TestLLMJourneysTelescope(t *testing.T) {
	cfg := llmDisaggConfig()
	cfg.Workloads[0].SLOUs = 2 * sim.Millisecond
	cfg.Obs = &Observability{SampleEvery: 1, FlightCap: 64}
	f := New(cfg)
	res := f.Run()
	if res.Completed == 0 {
		t.Fatal("nothing completed")
	}
	fl := f.FlightRecorder()
	completed := 0
	for _, j := range fl.Journeys() {
		if j.Outcome != telemetry.JourneyCompleted {
			continue
		}
		completed++
		var sum int64
		for s := 0; s < telemetry.NumStages; s++ {
			d := j.StageUs(s)
			if d < 0 {
				t.Fatalf("journey %d missing stage %s: %+v", j.ID, telemetry.StageNames[s], j)
			}
			sum += d
		}
		if sum != j.LatencyUs() {
			t.Fatalf("journey %d: stage sum %d != latency %d", j.ID, sum, j.LatencyUs())
		}
	}
	if completed == 0 {
		t.Fatalf("no completed LLM journeys retained (flight: %d/%d)", fl.Len(), fl.Total())
	}
}
