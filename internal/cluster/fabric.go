package cluster

import (
	"krisp/internal/cluster/gateway"
	"krisp/internal/server"
	"krisp/internal/sim"
)

// fleetFabric implements gateway.Fabric over the fleet's router and
// replica handles. Everything runs on the fleet control goroutine at tick
// boundaries, so the gateway's decisions slot into the same deterministic
// order as the router's.
type fleetFabric struct {
	f *Fleet
}

// PickReplica routes a gateway copy (hedge or retry) through the fleet's
// configured routing policy, excluding the replica the copy must avoid.
func (fb *fleetFabric) PickReplica(model, exclude int, now sim.Time) int {
	m := fb.f.router.models[model]
	h := fb.f.router.pick(m, now, exclude)
	if h == nil {
		return -1
	}
	return h.id
}

// SendCopy commits one secondary copy. It raises the target's occupancy —
// hedge copies compete for admission headroom like primaries — but does
// not count toward the model's routed total: that tracks logical requests,
// and this one is already routed.
func (fb *fleetFabric) SendCopy(model, replica int, id uint64, arrival sim.Time, kind gateway.CopyKind) {
	h := fb.f.handleByID[replica]
	if h == nil || h.dead {
		return
	}
	h.outstanding++
	h.routed++
	fb.f.obs.onCopy(id, replica, kind)
	rep := h.rep
	at := arrival
	if fb.f.router.mailbox {
		deliver := at
		if deliver < fb.f.now {
			deliver = fb.f.now
		}
		h.nodeRef.node.PostSubmit(deliver, at, rep, id)
		h.nodeRef.noteMail(deliver)
		return
	}
	h.nodeRef.node.Schedule(at, func() { rep.SubmitID(at, id) })
}

// CancelCopy revokes the losing copy of a hedged request. A dequeued copy
// never reached the replica's batch loop, so its occupancy is released
// here; an in-flight copy completes at the batch boundary with
// Cancelled=true and releases it through absorb.
func (fb *fleetFabric) CancelCopy(replica int, id uint64) {
	h := fb.f.handleByID[replica]
	if h == nil || h.dead {
		return
	}
	if h.rep.Cancel(id) == server.CancelDequeued && h.outstanding > 0 {
		h.outstanding--
	}
}

// BestLatencyUs is the deadline-admission oracle: the predicted latency of
// the model's best routable replica.
func (fb *fleetFabric) BestLatencyUs(model int, now sim.Time) float64 {
	return fb.f.router.bestPredictUs(fb.f.router.models[model], now)
}
