// Package models defines the nine inference workloads of the paper's
// evaluation (Table III plus the ninth model of Fig. 3) as kernel-call
// sequence generators.
//
// The real workloads are PyTorch models running through MIOpen/rocBLAS;
// with no ROCm stack available, each model here is a synthetic sequence
// calibrated to preserve exactly what KRISP's argument consumes:
//
//   - the number of kernel calls per inference pass (matches Table III
//     exactly at batch 32);
//   - the per-kernel minimum-required-CU profile, including the phase
//     behaviour of Fig. 4 (albert mostly <=12 with periodic 60-CU spikes;
//     resnext101 mostly >30 with dips);
//   - the model-wise right-size (Table III within a small tolerance);
//   - the isolated 95% latency ballpark (Table III, virtual milliseconds).
//
// Kernel sequences scale with batch size: workgroup counts and memory
// traffic shrink proportionally below the calibration batch of 32, which
// reproduces the paper's batch-sensitivity behaviour (Fig. 14).
package models

import (
	"fmt"
	"sort"

	"krisp/internal/gpu"
	"krisp/internal/kernels"
	"krisp/internal/sim"
)

// CalibrationBatch is the batch size the sequences are calibrated at.
const CalibrationBatch = 32

// slotsPerCU mirrors gpu.MI50Spec().SlotsPerCU; kernel knees are expressed
// in CU counts via workgroup quantization against this value.
const slotsPerCU = 10

// Model is a named inference workload.
type Model struct {
	// Name is the workload name as used in the paper's tables.
	Name string
	// PaperKernels is the kernel-call count Table III reports (batch 32).
	PaperKernels int
	// PaperRightSize is the model-wise right-size Table III reports.
	PaperRightSize int
	// PaperP95Ms is the isolated 95% tail latency Table III reports.
	PaperP95Ms float64

	build func(batch int) []kernels.Desc
}

// Kernels returns the kernel-call sequence for one inference pass at the
// given batch size. Batch must be positive.
func (m Model) Kernels(batch int) []kernels.Desc {
	if batch < 1 {
		panic(fmt.Sprintf("models: batch %d", batch))
	}
	return m.build(batch)
}

// All lists every workload, in the paper's Table III order, with
// mobilenet_v2 appended as the ninth Fig. 3 model.
func All() []Model {
	return []Model{
		albert, alexnet, densenet201, resnet152, resnext101,
		shufflenet, squeezenet, vgg19, mobilenet,
	}
}

// TableIII lists the eight models evaluated in the paper's main results.
func TableIII() []Model {
	return []Model{
		albert, alexnet, densenet201, resnet152, resnext101,
		shufflenet, squeezenet, vgg19,
	}
}

// Custom builds a model from an external kernel-sequence recipe. It is
// the hook other workload families (internal/llm's representative-pass
// proxies, harness-built synthetic workloads) use to enter the profiled
// ecosystem — planner sweeps, right-size tables, replica specs — without
// this package having to know their recipes.
func Custom(name string, rightSize int, build func(batch int) []kernels.Desc) Model {
	if build == nil {
		panic("models: Custom requires a build func")
	}
	return Model{Name: name, PaperRightSize: rightSize, build: build}
}

// ByName returns the model with the given name.
func ByName(name string) (Model, bool) {
	for _, m := range All() {
		if m.Name == name {
			return m, true
		}
	}
	return Model{}, false
}

// Names returns all model names, sorted.
func Names() []string {
	var out []string
	for _, m := range All() {
		out = append(out, m.Name)
	}
	sort.Strings(out)
	return out
}

// ---------------------------------------------------------------------------
// Sequence-building helpers.

// scale returns n scaled by batch relative to the calibration batch,
// floored at 1.
func scale(n, batch int) int {
	v := n * batch / CalibrationBatch
	if v < 1 {
		v = 1
	}
	return v
}

// dom builds a compute-bound kernel whose minimum required CUs is minCU at
// the calibration batch: it issues minCU x slots workgroups (one wave at or
// above minCU CUs, two below) and runs for execUs on the full GPU.
func dom(name string, minCU int, execUs float64, batch int) kernels.Desc {
	wgs := scale(minCU*slotsPerCU, batch)
	return kernels.Desc{
		Name: name,
		Work: gpu.KernelWork{
			Workgroups:   wgs,
			ThreadsPerWG: 256,
			WGTime:       sim.Duration(execUs),
			MemBytes:     float64(wgs) * 256 * 16,
			Tail:         0.5,
			WaveExponent: 0.5,
		},
		InputBytes: float64(wgs) * 256 * 4,
	}
}

// spike builds a short kernel that needs the whole GPU: 600 workgroups
// (one wave only at 60 CUs). These are the periodic full-width spikes in
// albert's Fig. 4 trace.
func spike(name string, execUs float64, batch int) kernels.Desc {
	return dom(name, 60, execUs, batch)
}

// memk builds a bandwidth-bound kernel moving mbytes of DRAM traffic; its
// minimum required CUs is small regardless of thread count.
func memk(name string, mbytes float64, batch int) kernels.Desc {
	bytes := mbytes * 1e6 * float64(batch) / CalibrationBatch
	wgs := int(bytes / 4 / 4096)
	if wgs < 1 {
		wgs = 1
	}
	return kernels.Desc{
		Name: name,
		Work: gpu.KernelWork{
			Workgroups:   wgs,
			ThreadsPerWG: 256,
			WGTime:       0.05,
			MemBytes:     bytes,
			Tail:         0.5,
		},
		InputBytes: bytes / 2,
	}
}

// tiny builds a launch-overhead-dominated helper kernel (reshape, copy,
// bias, scalar ops) — the long tail of PyTorch kernel launches.
func tiny(name string, batch int) kernels.Desc {
	wgs := scale(40, batch)
	return kernels.Desc{
		Name: name,
		Work: gpu.KernelWork{
			Workgroups:   wgs,
			ThreadsPerWG: 256,
			WGTime:       0.1,
			MemBytes:     float64(wgs) * 4096,
			Tail:         0.5,
		},
		InputBytes: float64(wgs) * 2048,
	}
}

// seq collects kernel descriptors while a recipe is assembled.
type seq struct{ ks []kernels.Desc }

func (s *seq) add(ds ...kernels.Desc) { s.ks = append(s.ks, ds...) }

// ---------------------------------------------------------------------------
// albert: 304 kernels, right-size 12, p95 ~27ms. A 12-layer transformer:
// six dominant GEMM-class kernels per layer with a 12-CU knee, one brief
// full-GPU spike, plus normalization and pointwise helpers.
var albert = Model{
	Name: "albert", PaperKernels: 304, PaperRightSize: 12, PaperP95Ms: 27,
	build: func(b int) []kernels.Desc {
		var s seq
		s.add(kernels.Embedding(scale(32*128, b), 768))
		for layer := 0; layer < 12; layer++ {
			s.add(
				dom(kernels.FamilyGEMM+"_qkv", 12, 310, b),
				dom(kernels.FamilyGEMMSmall+"_qk_bmm", 12, 300, b),
				kernels.Softmax(scale(32*12*128, b), 128),
				dom(kernels.FamilyGEMMSmall+"_av_bmm", 12, 300, b),
				dom(kernels.FamilyGEMM+"_attn_out", 12, 310, b),
				memk(kernels.FamilyElementwise+"_residual1", 13, b),
				kernels.LayerNorm(scale(32*128, b), 768),
				dom(kernels.FamilyGEMM+"_ffn1", 12, 320, b),
				memk(kernels.FamilyElementwise+"_gelu", 50, b),
				dom(kernels.FamilyGEMM+"_ffn2", 12, 320, b),
				memk(kernels.FamilyElementwise+"_residual2", 13, b),
				kernels.LayerNorm(scale(32*128, b), 768),
				spike(kernels.FamilyReduce+"_allsum", 15, b),
			)
			for i := 0; i < 12; i++ {
				s.add(tiny(fmt.Sprintf("%s_h%d", kernels.FamilyElementwise, i), b))
			}
		}
		s.add(
			dom(kernels.FamilyGEMM+"_pooler", 12, 300, b),
			memk(kernels.FamilyElementwise+"_tanh", 3, b),
			dom(kernels.FamilyGEMMSmall+"_classifier", 8, 120, b),
		)
		return s.ks
	},
}

// alexnet: 34 kernels, right-size 45, p95 ~91ms. Five fat convolutions
// dominate; classifier GEMMs and pointwise helpers fill the rest.
var alexnet = Model{
	Name: "alexnet", PaperKernels: 34, PaperRightSize: 45, PaperP95Ms: 91,
	build: func(b int) []kernels.Desc {
		var s seq
		// One conv pins the kneepoint at 45; the rest saturate at modest
		// occupancy, so restriction degrades gracefully — the
		// real-hardware behaviour behind Table IV's alexnet row (every
		// policy reaches 4 workers).
		convT := []float64{23000, 14500, 13500, 13000, 12500}
		convK := []int{45, 18, 16, 14, 12}
		for i, t := range convT {
			s.add(
				dom(fmt.Sprintf("%s_c%d", kernels.FamilyConvDirect, i+1), convK[i], t, b),
				memk(kernels.FamilyElementwise+"_relu", 25, b),
			)
		}
		s.add(
			kernels.Pooling(b, 64, 55, 55, 2),
			kernels.Pooling(b, 192, 27, 27, 2),
			kernels.Pooling(b, 256, 13, 13, 2),
			memk(kernels.FamilyBatchNorm+"_lrn1", 30, b),
			memk(kernels.FamilyBatchNorm+"_lrn2", 30, b),
			tiny("Flatten", b),
			dom(kernels.FamilyGEMM+"_fc6", 26, 3200, b),
			memk(kernels.FamilyElementwise+"_relu_fc6", 4, b),
			dom(kernels.FamilyGEMM+"_fc7", 26, 2400, b),
			memk(kernels.FamilyElementwise+"_relu_fc7", 4, b),
			dom(kernels.FamilyGEMMSmall+"_fc8", 10, 600, b),
		)
		for i := 0; i < 13; i++ {
			s.add(tiny(fmt.Sprintf("%s_bias%d", kernels.FamilyElementwise, i), b))
		}
		return s.ks
	},
}

// densenet201: 711 kernels, right-size 32, p95 ~72ms. 98 dense layers of
// bn-relu-conv1x1-bn-relu-conv3x3-concat, three transitions, stem, head.
var densenet201 = Model{
	Name: "densenet201", PaperKernels: 711, PaperRightSize: 32, PaperP95Ms: 72,
	build: func(b int) []kernels.Desc {
		var s seq
		s.add(
			dom(kernels.FamilyConvDirect+"_stem", 32, 700, b),
			memk(kernels.FamilyBatchNorm+"_stem", 25, b),
			memk(kernels.FamilyElementwise+"_relu_stem", 25, b),
			kernels.Pooling(b, 64, 112, 112, 2),
		)
		denseLayers := 98
		for l := 0; l < denseLayers; l++ {
			s.add(
				memk(kernels.FamilyBatchNorm+"_d", 8, b),
				memk(kernels.FamilyElementwise+"_relu_d", 8, b),
				dom(kernels.FamilyGEMMSmall+"_conv1x1", 20, 230, b),
				memk(kernels.FamilyBatchNorm+"_d2", 3, b),
				memk(kernels.FamilyElementwise+"_relu_d2", 3, b),
				dom(kernels.FamilyConvDirect+"_conv3x3", 32, 330, b),
				memk(kernels.FamilyElementwise+"_concat", 60, b),
			)
		}
		for t := 0; t < 3; t++ {
			s.add(
				memk(kernels.FamilyBatchNorm+"_t", 10, b),
				memk(kernels.FamilyElementwise+"_relu_t", 10, b),
				dom(kernels.FamilyGEMMSmall+"_tconv", 20, 260, b),
				kernels.Pooling(b, 256, 28, 28, 2),
				tiny(kernels.FamilyElementwise+"_tcopy", b),
				tiny(kernels.FamilyElementwise+"_tpad", b),
			)
		}
		s.add(
			kernels.Pooling(b, 1920, 7, 7, 7),
			dom(kernels.FamilyGEMMSmall+"_classifier", 10, 220, b),
			kernels.Softmax(scale(32, b), 1000),
		)
		return s.ks
	},
}

// resnet152: 517 kernels, right-size 26, p95 ~11ms. 50 bottleneck blocks;
// short kernels make the pass launch-dominated — why its p95 is small
// despite 517 launches.
var resnet152 = Model{
	Name: "resnet152", PaperKernels: 517, PaperRightSize: 26, PaperP95Ms: 11,
	build: func(b int) []kernels.Desc {
		var s seq
		s.add(
			dom(kernels.FamilyConvDirect+"_stem", 26, 60, b),
			memk(kernels.FamilyBatchNorm+"_stem", 6, b),
			memk(kernels.FamilyElementwise+"_relu_stem", 6, b),
			kernels.Pooling(b, 64, 112, 112, 2),
		)
		for blk := 0; blk < 50; blk++ {
			s.add(
				dom(kernels.FamilyGEMMSmall+"_reduce1x1", 18, 7, b),
				memk(kernels.FamilyBatchNorm+"_b1", 1.5, b),
				memk(kernels.FamilyElementwise+"_relu_b1", 1.5, b),
				dom(kernels.FamilyConvDirect+"_conv3x3", 26, 34, b),
				memk(kernels.FamilyBatchNorm+"_b2", 1.5, b),
				memk(kernels.FamilyElementwise+"_relu_b2", 1.5, b),
				dom(kernels.FamilyGEMMSmall+"_expand1x1", 14+2*(blk%3), 7, b),
				memk(kernels.FamilyBatchNorm+"_b3", 1.5, b),
				memk(kernels.FamilyElementwise+"_addres", 3, b),
				memk(kernels.FamilyElementwise+"_relu_b3", 1.5, b),
			)
		}
		s.add(
			kernels.Pooling(b, 2048, 7, 7, 7),
			tiny("Flatten", b),
			dom(kernels.FamilyGEMMSmall+"_fc", 10, 40, b),
		)
		for i := 0; i < 10; i++ {
			s.add(tiny(fmt.Sprintf("%s_h%d", kernels.FamilyElementwise, i), b))
		}
		return s.ks
	},
}

// resnext101: 347 kernels, right-size 55, p95 ~154ms. Grouped convolutions
// keep most kernels above 30 required CUs (Fig. 4 bottom), with brief
// normalization dips.
var resnext101 = Model{
	Name: "resnext101", PaperKernels: 347, PaperRightSize: 55, PaperP95Ms: 154,
	build: func(b int) []kernels.Desc {
		var s seq
		s.add(
			dom(kernels.FamilyConvDirect+"_stem", 55, 1500, b),
			memk(kernels.FamilyBatchNorm+"_stem", 25, b),
			memk(kernels.FamilyElementwise+"_relu_stem", 25, b),
			kernels.Pooling(b, 64, 112, 112, 2),
		)
		// Knees staggered 55/48/40/32 across the pass: most kernels need
		// more than half the machine (Fig. 4 bottom), but restriction
		// degrades gradually rather than cliff-like.
		grpK := []int{55, 55, 48, 40}
		for blk := 0; blk < 33; blk++ {
			s.add(
				dom(kernels.FamilyGEMM+"_reduce1x1", 32+4*(blk%3), 900, b),
				memk(kernels.FamilyBatchNorm+"_x1", 6, b),
				memk(kernels.FamilyElementwise+"_relu_x1", 6, b),
				dom(kernels.FamilyConvGroup+"_grp32", grpK[blk%len(grpK)], 2200, b),
				memk(kernels.FamilyBatchNorm+"_x2", 6, b),
				memk(kernels.FamilyElementwise+"_relu_x2", 6, b),
				dom(kernels.FamilyGEMM+"_expand1x1", 24+4*(blk%3), 1100, b),
				memk(kernels.FamilyBatchNorm+"_x3", 6, b),
				memk(kernels.FamilyElementwise+"_addres", 12, b),
				memk(kernels.FamilyElementwise+"_relu_x3", 6, b),
			)
		}
		s.add(
			kernels.Pooling(b, 2048, 7, 7, 7),
			tiny("Flatten", b),
			dom(kernels.FamilyGEMMSmall+"_fc", 10, 200, b),
		)
		for i := 0; i < 10; i++ {
			s.add(tiny(fmt.Sprintf("%s_h%d", kernels.FamilyElementwise, i), b))
		}
		return s.ks
	},
}

// shufflenet: 211 kernels, right-size 21, p95 ~8ms. Pointwise group convs
// with channel shuffles; short and launch-dominated.
var shufflenet = Model{
	Name: "shufflenet", PaperKernels: 211, PaperRightSize: 21, PaperP95Ms: 8,
	build: func(b int) []kernels.Desc {
		var s seq
		s.add(
			dom(kernels.FamilyConvDirect+"_stem", 21, 70, b),
			memk(kernels.FamilyBatchNorm+"_stem", 5, b),
			kernels.Pooling(b, 24, 112, 112, 2),
		)
		for u := 0; u < 16; u++ {
			s.add(
				dom(kernels.FamilyGEMMSmall+"_pw1", 21, 100, b),
				memk(kernels.FamilyBatchNorm+"_s1", 1.2, b),
				memk(kernels.FamilyElementwise+"_relu_s1", 1.2, b),
				memk(kernels.FamilyConvGroup+"_dw", 6, b),
				memk(kernels.FamilyBatchNorm+"_s2", 1.2, b),
				dom(kernels.FamilyGEMMSmall+"_pw2", 21, 100, b),
				memk(kernels.FamilyBatchNorm+"_s3", 1.2, b),
				memk(kernels.FamilyElementwise+"_relu_s2", 1.2, b),
				memk(kernels.FamilyElementwise+"_concat", 2.4, b),
				memk(kernels.FamilyElementwise+"_shuffle", 2.4, b),
				tiny(kernels.FamilyElementwise+"_split", b),
				tiny(kernels.FamilyElementwise+"_copy", b),
			)
		}
		s.add(
			kernels.Pooling(b, 1024, 7, 7, 7),
			dom(kernels.FamilyGEMMSmall+"_fc", 10, 40, b),
		)
		for i := 0; i < 14; i++ {
			s.add(tiny(fmt.Sprintf("%s_h%d", kernels.FamilyElementwise, i), b))
		}
		return s.ks
	},
}

// squeezenet: 90 kernels, right-size 21, p95 ~8ms. Eight fire modules.
var squeezenet = Model{
	Name: "squeezenet", PaperKernels: 90, PaperRightSize: 21, PaperP95Ms: 8,
	build: func(b int) []kernels.Desc {
		var s seq
		s.add(
			dom(kernels.FamilyConvDirect+"_stem", 21, 180, b),
			memk(kernels.FamilyElementwise+"_relu_stem", 6, b),
			kernels.Pooling(b, 96, 111, 111, 2),
		)
		for f := 0; f < 8; f++ {
			s.add(
				dom(kernels.FamilyGEMMSmall+"_squeeze", 21, 230, b),
				memk(kernels.FamilyElementwise+"_relu_sq", 1.2, b),
				dom(kernels.FamilyGEMMSmall+"_expand1", 21, 230, b),
				memk(kernels.FamilyElementwise+"_relu_e1", 1.8, b),
				dom(kernels.FamilyConvDirect+"_expand3", 21, 260, b),
				memk(kernels.FamilyElementwise+"_relu_e3", 1.8, b),
				memk(kernels.FamilyElementwise+"_concat", 3.6, b),
				tiny(kernels.FamilyElementwise+"_copy1", b),
				tiny(kernels.FamilyElementwise+"_copy2", b),
				tiny(kernels.FamilyElementwise+"_pad", b),
			)
		}
		s.add(
			dom(kernels.FamilyConvDirect+"_conv10", 21, 300, b),
			memk(kernels.FamilyElementwise+"_relu10", 4, b),
			kernels.Pooling(b, 1000, 13, 13, 13),
			kernels.Softmax(scale(32, b), 1000),
			tiny("Flatten", b),
			tiny(kernels.FamilyElementwise+"_out", b),
			tiny(kernels.FamilyElementwise+"_out2", b),
		)
		return s.ks
	},
}

// vgg19: 62 kernels, right-size 60, p95 ~81ms. Sixteen dense convolutions
// that need the full machine (600-workgroup multi-wave grids), so any CU
// restriction immediately degrades throughput (Fig. 3).
var vgg19 = Model{
	Name: "vgg19", PaperKernels: 62, PaperRightSize: 60, PaperP95Ms: 81,
	build: func(b int) []kernels.Desc {
		var s seq
		// Three early convs need the full machine, pinning the model-wise
		// right-size at 60; the remaining convs are latency-bound (their
		// occupancy saturates around 15-24 CUs), so a 15-CU partition
		// costs ~1.6x rather than 4x — matching the paper's Table IV,
		// where Static Equal sustains four vgg19 workers while vgg19's
		// kneepoint stays at 60.
		convT := []float64{6500, 6500, 6500, 4600, 4400, 4400, 4200, 4200,
			4200, 4000, 4000, 4000, 3800, 3800, 3800, 3800}
		convK := []int{60, 60, 60, 24, 22, 20, 18, 18, 16, 16, 15, 15, 15, 14, 14, 12}
		for i, t := range convT {
			s.add(
				dom(fmt.Sprintf("%s_c%d", kernels.FamilyConvDirect, i+1), convK[i], t, b),
				memk(kernels.FamilyElementwise+"_relu", 12, b),
			)
		}
		s.add(
			kernels.Pooling(b, 64, 224, 224, 2),
			kernels.Pooling(b, 128, 112, 112, 2),
			kernels.Pooling(b, 256, 56, 56, 2),
			kernels.Pooling(b, 512, 28, 28, 2),
			kernels.Pooling(b, 512, 14, 14, 2),
			tiny("Flatten", b),
			dom(kernels.FamilyGEMM+"_fc6", 26, 2600, b),
			memk(kernels.FamilyElementwise+"_relu_fc6", 4, b),
			dom(kernels.FamilyGEMM+"_fc7", 26, 1900, b),
			memk(kernels.FamilyElementwise+"_relu_fc7", 4, b),
			dom(kernels.FamilyGEMMSmall+"_fc8", 10, 500, b),
		)
		for i := 0; i < 19; i++ {
			s.add(tiny(fmt.Sprintf("%s_h%d", kernels.FamilyElementwise, i), b))
		}
		return s.ks
	},
}

// mobilenet: the ninth Fig. 3 model (mobilenet_v2-class). Depthwise
// separable blocks; bandwidth-bound depthwise stages keep it tolerant.
var mobilenet = Model{
	Name: "mobilenet", PaperKernels: 152, PaperRightSize: 15, PaperP95Ms: 10,
	build: func(b int) []kernels.Desc {
		var s seq
		s.add(
			dom(kernels.FamilyConvDirect+"_stem", 15, 80, b),
			memk(kernels.FamilyBatchNorm+"_stem", 5, b),
			memk(kernels.FamilyElementwise+"_relu6_stem", 5, b),
		)
		for blk := 0; blk < 17; blk++ {
			s.add(
				dom(kernels.FamilyGEMMSmall+"_expand", 15, 120, b),
				memk(kernels.FamilyBatchNorm+"_m1", 2, b),
				memk(kernels.FamilyElementwise+"_relu6_m1", 2, b),
				memk(kernels.FamilyConvGroup+"_dw", 8, b),
				memk(kernels.FamilyBatchNorm+"_m2", 2, b),
				memk(kernels.FamilyElementwise+"_relu6_m2", 2, b),
				dom(kernels.FamilyGEMMSmall+"_project", 15, 110, b),
				memk(kernels.FamilyElementwise+"_addres", 4, b),
			)
		}
		s.add(
			dom(kernels.FamilyGEMMSmall+"_head", 15, 150, b),
			memk(kernels.FamilyBatchNorm+"_head", 3, b),
			memk(kernels.FamilyElementwise+"_relu6_head", 3, b),
			kernels.Pooling(b, 1280, 7, 7, 7),
			dom(kernels.FamilyGEMMSmall+"_fc", 10, 40, b),
		)
		for i := 0; i < 8; i++ {
			s.add(tiny(fmt.Sprintf("%s_h%d", kernels.FamilyElementwise, i), b))
		}
		return s.ks
	},
}
