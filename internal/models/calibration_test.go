package models

import (
	"testing"

	"krisp/internal/profile"
)

// TestTableIIICalibration pins the synthetic workloads to the paper's
// Table III: exact kernel counts, model right-size within tolerance, and
// isolated latency in the right ballpark. If the performance model drifts,
// this test catches it.
func TestTableIIICalibration(t *testing.T) {
	p := profile.New(profile.DefaultConfig())
	for _, m := range TableIII() {
		m := m
		t.Run(m.Name, func(t *testing.T) {
			ks := m.Kernels(CalibrationBatch)
			if got := len(ks); got != m.PaperKernels {
				t.Errorf("kernel count = %d, want %d (Table III)", got, m.PaperKernels)
			}
			rs := p.ModelRightSize(ks)
			if diff := rs - m.PaperRightSize; diff < -5 || diff > 5 {
				t.Errorf("right-size = %d CUs, want %d +-5 (Table III)", rs, m.PaperRightSize)
			}
			latMs := float64(p.ModelLatency(ks, 60)) / 1000
			lo, hi := m.PaperP95Ms*0.55, m.PaperP95Ms*1.8
			if latMs < lo || latMs > hi {
				t.Errorf("isolated latency = %.1fms, want within [%.1f, %.1f] of paper's %vms",
					latMs, lo, hi, m.PaperP95Ms)
			}
		})
	}
}

func TestAllModelsBuildAtEveryBatch(t *testing.T) {
	for _, m := range All() {
		for _, b := range []int{1, 8, 16, 32} {
			ks := m.Kernels(b)
			if len(ks) != m.PaperKernels {
				t.Errorf("%s at batch %d: %d kernels, want %d (count is batch-invariant)",
					m.Name, b, len(ks), m.PaperKernels)
			}
			for i, k := range ks {
				if k.Work.Workgroups < 1 || k.Work.WGTime <= 0 {
					t.Fatalf("%s batch %d kernel %d (%s): invalid work %+v",
						m.Name, b, i, k.Name, k.Work)
				}
			}
		}
	}
}

func TestSmallerBatchShrinksWork(t *testing.T) {
	for _, m := range All() {
		big := m.Kernels(32)
		small := m.Kernels(8)
		var bigWG, smallWG int
		for i := range big {
			bigWG += big[i].Work.Workgroups
			smallWG += small[i].Work.Workgroups
		}
		if smallWG >= bigWG {
			t.Errorf("%s: batch 8 has %d WGs, batch 32 has %d — no shrink", m.Name, smallWG, bigWG)
		}
	}
}

func TestByName(t *testing.T) {
	m, ok := ByName("albert")
	if !ok || m.Name != "albert" {
		t.Errorf("ByName(albert) = %v, %v", m.Name, ok)
	}
	if _, ok := ByName("nope"); ok {
		t.Error("ByName(nope) found a model")
	}
	if len(Names()) != 9 {
		t.Errorf("Names() has %d entries, want 9", len(Names()))
	}
	if len(TableIII()) != 8 {
		t.Errorf("TableIII() has %d entries, want 8", len(TableIII()))
	}
}

func TestKernelsPanicsOnBadBatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("batch 0 did not panic")
		}
	}()
	albert.Kernels(0)
}

// TestFig4PhaseBehaviour checks the kernel-trace shapes of Fig. 4: albert
// is mostly low-minCU with periodic full-GPU spikes; resnext101 is mostly
// high-minCU with dips.
func TestFig4PhaseBehaviour(t *testing.T) {
	p := profile.New(profile.DefaultConfig())

	count := func(m Model, pred func(int) bool) (matching, total int) {
		for _, k := range m.Kernels(CalibrationBatch) {
			if pred(p.KernelMinCU(k.Work)) {
				matching++
			}
			total++
		}
		return matching, total
	}

	low, total := count(albert, func(mc int) bool { return mc <= 15 })
	if frac := float64(low) / float64(total); frac < 0.7 {
		t.Errorf("albert: only %.0f%% of kernels have minCU <= 15, want >= 70%%", frac*100)
	}
	spikes, _ := count(albert, func(mc int) bool { return mc >= 50 })
	if spikes < 10 {
		t.Errorf("albert: %d full-GPU spike kernels, want >= 10 (Fig. 4 top)", spikes)
	}

	high, total := count(resnext101, func(mc int) bool { return mc >= 30 })
	if frac := float64(high) / float64(total); frac < 0.2 {
		t.Errorf("resnext101: only %.0f%% of kernels have minCU >= 30, want >= 20%%", frac*100)
	}
	dips, _ := count(resnext101, func(mc int) bool { return mc <= 20 })
	if dips < 50 {
		t.Errorf("resnext101: %d low-minCU kernels, want >= 50 (Fig. 4 bottom dips)", dips)
	}
	// Time-weighted, resnext101 spends most of its pass in kernels that
	// need more than half the machine ("most kernels require more than
	// half of the available CUs").
	var highTime, totalTime float64
	for _, k := range resnext101.Kernels(CalibrationBatch) {
		d := float64(p.KernelLatency(k.Work, 60))
		totalTime += d
		if p.KernelMinCU(k.Work) >= 30 {
			highTime += d
		}
	}
	if frac := highTime / totalTime; frac < 0.5 {
		t.Errorf("resnext101: only %.0f%% of execution time in minCU>=30 kernels, want >= 50%%", frac*100)
	}
}
