package reconfig

import (
	"testing"

	"krisp/internal/models"
	"krisp/internal/sim"
)

func request(t *testing.T) Request {
	t.Helper()
	m, ok := models.ByName("squeezenet")
	if !ok {
		t.Fatal("squeezenet missing")
	}
	return Request{Model: m, Batch: 32, FromCUs: 40, ToCUs: 20}
}

func TestRestartPaysFullReload(t *testing.T) {
	res := Simulate(Restart, request(t))
	reload := DefaultCosts().ReloadTime()
	if res.Downtime != reload {
		t.Errorf("downtime = %v, want %v (full reload)", res.Downtime, reload)
	}
	// Effect: drain the in-flight batch (ms) + the 10.5s reload.
	if res.TimeToEffect < reload {
		t.Errorf("TimeToEffect = %v, below the reload time %v", res.TimeToEffect, reload)
	}
	if res.StaleBatches != 1 {
		t.Errorf("stale batches = %d, want 1 (the drained batch)", res.StaleBatches)
	}
}

func TestShadowMasksDowntimeButNotLatency(t *testing.T) {
	res := Simulate(Shadow, request(t))
	c := DefaultCosts()
	if res.Downtime != c.SwapDowntime {
		t.Errorf("downtime = %v, want %v (hot-swap pause only)", res.Downtime, c.SwapDowntime)
	}
	// The new size still takes ~ReloadTime to arrive...
	if res.TimeToEffect < c.ReloadTime() {
		t.Errorf("TimeToEffect = %v, below reload %v", res.TimeToEffect, c.ReloadTime())
	}
	// ...and the old-size instance keeps serving throughout, so many
	// stale batches complete (10.5s / ~8ms batches).
	if res.StaleBatches < 100 {
		t.Errorf("stale batches = %d, want >= 100 (serving continues on old size)", res.StaleBatches)
	}
}

func TestKernelScopedResizesAtKernelBoundary(t *testing.T) {
	res := Simulate(KernelScoped, request(t))
	if res.Downtime != 0 {
		t.Errorf("downtime = %v, want 0", res.Downtime)
	}
	// The request lands mid-batch; the next kernel already runs at the
	// new size — sub-millisecond, versus ~10.5s for process-scoped.
	if res.TimeToEffect > 1000 {
		t.Errorf("TimeToEffect = %vus, want < 1000us (next kernel boundary)", res.TimeToEffect)
	}
	if res.StaleBatches != 0 {
		t.Errorf("stale batches = %d, want 0 (resize lands mid-batch)", res.StaleBatches)
	}
}

func TestSchemeOrdering(t *testing.T) {
	req := request(t)
	restart := Simulate(Restart, req)
	shadow := Simulate(Shadow, req)
	kernel := Simulate(KernelScoped, req)
	// Time-to-effect: kernel-scoped orders of magnitude below both
	// process-scoped schemes.
	if kernel.TimeToEffect*1000 > restart.TimeToEffect || kernel.TimeToEffect*1000 > shadow.TimeToEffect {
		t.Errorf("kernel-scoped effect %v not >=1000x faster than restart %v / shadow %v",
			kernel.TimeToEffect, restart.TimeToEffect, shadow.TimeToEffect)
	}
	// Downtime: restart >> shadow > kernel.
	if !(restart.Downtime > shadow.Downtime && shadow.Downtime > kernel.Downtime) {
		t.Errorf("downtime ordering wrong: restart %v, shadow %v, kernel %v",
			restart.Downtime, shadow.Downtime, kernel.Downtime)
	}
}

func TestGrowAndShrinkBothWork(t *testing.T) {
	req := request(t)
	req.FromCUs, req.ToCUs = 15, 45 // grow
	res := Simulate(KernelScoped, req)
	if res.EffectAt < 0 {
		t.Fatal("grow resize never took effect")
	}
	req.FromCUs, req.ToCUs = 45, 15 // shrink
	res = Simulate(KernelScoped, req)
	if res.EffectAt < 0 {
		t.Fatal("shrink resize never took effect")
	}
}

func TestDefaultsApplied(t *testing.T) {
	m, _ := models.ByName("squeezenet")
	res := Simulate(KernelScoped, Request{Model: m, FromCUs: 30, ToCUs: 20})
	if res.EffectAt < 0 || res.RequestAt < 0 {
		t.Fatalf("defaulted request did not complete: %+v", res)
	}
}

func TestCostsReload(t *testing.T) {
	c := Costs{PartitionSetup: 1, ProcessStart: 2, ModelLoad: 3, SwapDowntime: 4}
	if got := c.ReloadTime(); got != 6 {
		t.Errorf("ReloadTime = %v, want 6", got)
	}
	if DefaultCosts().ReloadTime() != 10.5*sim.Second {
		t.Errorf("default reload = %v, want 10.5s", DefaultCosts().ReloadTime())
	}
}

func TestSchemeStrings(t *testing.T) {
	if len(Schemes()) != 3 {
		t.Fatal("Schemes() wrong length")
	}
	for _, s := range Schemes() {
		if s.String() == "unknown" {
			t.Errorf("scheme %d has no name", s)
		}
	}
	if Scheme(9).String() != "unknown" {
		t.Error("unknown scheme formatting wrong")
	}
}
