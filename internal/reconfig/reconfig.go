// Package reconfig models spatial-partition *resizing* — the paper's
// Fig. 2 comparison between process-scoped partition instances and
// KRISP's kernel-scoped ones.
//
// Process-scoped techniques (MPS/MIG) bind the partition to a process, so
// resizing means: configure a new MPS/MIG instance, start a new ML
// backend process, and reload the model onto the GPU — tens of seconds.
// GSLICE masks the downtime with a shadow instance that is hot-swapped in
// once ready; Gpulet restricts resizes to ~20s epochs. KRISP resizes at
// the next kernel boundary with no reload at all.
//
// Simulate serves a model continuously on the simulated GPU stack, issues
// one resize request mid-batch, and reports when the new partition size
// took effect, how long serving was interrupted, and how many stale
// batches completed at the old size in the meantime.
package reconfig

import (
	"fmt"

	"krisp/internal/alloc"
	"krisp/internal/gpu"
	"krisp/internal/hsa"
	"krisp/internal/kernels"
	"krisp/internal/models"
	"krisp/internal/sim"
)

// Scheme is a partition-resizing mechanism.
type Scheme int

const (
	// Restart is the naive process-scoped path (Fig. 2 top): stop the
	// backend, configure the new instance, restart, reload the model.
	Restart Scheme = iota
	// Shadow is the GSLICE/Gpulet path (Fig. 2 middle): build a fully
	// loaded shadow instance in the background, then hot-swap.
	Shadow
	// KernelScoped is KRISP (Fig. 2 bottom): the next kernel simply
	// launches with the new partition size.
	KernelScoped
)

// Schemes lists all resizing mechanisms.
func Schemes() []Scheme { return []Scheme{Restart, Shadow, KernelScoped} }

func (s Scheme) String() string {
	switch s {
	case Restart:
		return "restart"
	case Shadow:
		return "shadow-instance"
	case KernelScoped:
		return "kernel-scoped"
	default:
		return "unknown"
	}
}

// Costs are the process-scoped reconfiguration overheads, in virtual
// microseconds. Defaults follow the paper's Table II observations
// (2–15s in GSLICE, 10–15s in Gpulet, ~10s for PARIS/ELSA).
type Costs struct {
	// PartitionSetup is MPS/MIG instance (re)configuration.
	PartitionSetup sim.Duration
	// ProcessStart is forking and initializing a fresh ML backend.
	ProcessStart sim.Duration
	// ModelLoad is loading model weights onto the GPU.
	ModelLoad sim.Duration
	// SwapDowntime is the serving pause during a GSLICE hot-swap
	// (the paper reports 50–60us).
	SwapDowntime sim.Duration
}

// DefaultCosts returns a 10s-class reload, matching Table II.
func DefaultCosts() Costs {
	return Costs{
		PartitionSetup: 1.0 * sim.Second,
		ProcessStart:   1.5 * sim.Second,
		ModelLoad:      8.0 * sim.Second,
		SwapDowntime:   55 * sim.Microsecond,
	}
}

// ReloadTime is the total background work before a new process-scoped
// instance can serve.
func (c Costs) ReloadTime() sim.Duration {
	return c.PartitionSetup + c.ProcessStart + c.ModelLoad
}

// Request describes one resize experiment.
type Request struct {
	Model   models.Model
	Batch   int
	FromCUs int
	ToCUs   int
	Costs   Costs
	// SettleBatches is how many batches to serve before requesting the
	// resize (reaching steady state). Zero means 3.
	SettleBatches int
}

// Result reports the resize behaviour.
type Result struct {
	Scheme Scheme
	// RequestAt is when the resize was requested (mid-batch).
	RequestAt sim.Time
	// EffectAt is when the first kernel ran at the new partition size.
	EffectAt sim.Time
	// TimeToEffect = EffectAt - RequestAt.
	TimeToEffect sim.Duration
	// Downtime is how long serving was paused because of the
	// reconfiguration (drain-to-reload for Restart, the swap pause for
	// Shadow, zero for KernelScoped).
	Downtime sim.Duration
	// StaleBatches is the number of batches completed at the old
	// partition size after the resize was requested.
	StaleBatches int
}

func (r Result) String() string {
	return fmt.Sprintf("%s: effect after %.3f ms, downtime %.3f ms, %d stale batches",
		r.Scheme, r.TimeToEffect/1000, r.Downtime/1000, r.StaleBatches)
}

// Simulate runs one resize experiment.
func Simulate(scheme Scheme, req Request) Result {
	if req.Batch < 1 {
		req.Batch = models.CalibrationBatch
	}
	if req.SettleBatches < 1 {
		req.SettleBatches = 3
	}
	if req.Costs == (Costs{}) {
		req.Costs = DefaultCosts()
	}

	eng := sim.New()
	dev := gpu.NewDevice(eng, gpu.MI50Spec(), nil)
	cfg := hsa.DefaultConfig()
	cfg.KernelScoped = scheme == KernelScoped
	cp := hsa.NewCommandProcessor(eng, dev, cfg)

	r := &runner{
		eng:    eng,
		q:      cp.NewQueue(),
		descs:  req.Model.Kernels(req.Batch),
		scheme: scheme,
		costs:  req.Costs,
		settle: req.SettleBatches,
		from:   req.FromCUs,
		to:     req.ToCUs,
		res:    Result{Scheme: scheme, RequestAt: -1, EffectAt: -1},
	}
	topo := dev.Spec.Topo
	r.oldMask = conserved(topo, req.FromCUs)
	r.newMask = conserved(topo, req.ToCUs)
	r.curSize = req.FromCUs
	if scheme != KernelScoped {
		r.q.SetCUMask(r.oldMask, nil)
	}

	r.startBatch()
	eng.Run()
	r.res.TimeToEffect = r.res.EffectAt - r.res.RequestAt
	return r.res
}

func conserved(topo gpu.Topology, n int) gpu.CUMask {
	return alloc.GenerateMask(topo, nil, alloc.Request{
		NumCUs: n, OverlapLimit: alloc.NoOverlapLimit,
	})
}

// runner drives the serving loop: kernels submitted one at a time so the
// partition can change at any kernel boundary.
type runner struct {
	eng    *sim.Engine
	q      *hsa.Queue
	descs  []kernels.Desc
	scheme Scheme
	costs  Costs
	settle int
	from   int
	to     int

	oldMask gpu.CUMask
	newMask gpu.CUMask
	curSize int // partition request for kernel-scoped dispatches

	batches        int
	batchStart     sim.Time
	requested      bool
	restartPending bool
	swapReady      bool
	done           bool

	res Result
}

func (r *runner) startBatch() {
	if r.done {
		return
	}
	r.batchStart = r.eng.Now()
	r.launchKernel(0)
}

func (r *runner) launchKernel(i int) {
	if i >= len(r.descs) {
		r.batchDone()
		return
	}
	d := r.descs[i]
	partition := 0
	if r.scheme == KernelScoped {
		partition = r.curSize
	}
	r.q.Submit(hsa.Packet{
		Type:         hsa.KernelDispatch,
		Kernel:       d,
		PartitionCUs: partition,
		OverlapLimit: alloc.NoOverlapLimit,
		OnDispatch: func(mask gpu.CUMask) {
			if r.res.EffectAt < 0 && r.requested && mask.Equal(r.newMask) {
				r.res.EffectAt = r.eng.Now()
			}
		},
		Completion: completion(func() { r.launchKernel(i + 1) }),
	})
}

func (r *runner) batchDone() {
	r.batches++
	now := r.eng.Now()
	if r.requested && r.res.EffectAt < 0 {
		r.res.StaleBatches++
	}
	if r.res.EffectAt >= 0 && now > r.res.EffectAt {
		// Two more clean batches after the resize took effect, then stop.
		if r.batches >= r.settle+r.res.StaleBatches+3 {
			r.done = true
			return
		}
	}

	if !r.requested && r.batches == r.settle {
		// Request the resize 40% into the next batch.
		batchTime := (now - 0) / sim.Duration(r.batches)
		r.eng.After(0.4*batchTime, r.requestResize)
		r.startBatch()
		return
	}

	switch {
	case r.restartPending:
		// Drained: tear down, reload, reconfigure, resume.
		r.restartPending = false
		r.res.Downtime += r.costs.ReloadTime()
		r.eng.After(r.costs.ReloadTime(), func() {
			r.q.SetCUMask(r.newMask, r.startBatch)
		})
	case r.swapReady:
		// Shadow instance is loaded: hot-swap with a brief pause.
		r.swapReady = false
		r.res.Downtime += r.costs.SwapDowntime
		r.eng.After(r.costs.SwapDowntime, func() {
			r.q.SetCUMask(r.newMask, r.startBatch)
		})
	default:
		r.startBatch()
	}
}

func (r *runner) requestResize() {
	r.requested = true
	r.res.RequestAt = r.eng.Now()
	switch r.scheme {
	case KernelScoped:
		// The very next kernel packet carries the new partition size.
		r.curSize = r.to
	case Restart:
		r.restartPending = true
	case Shadow:
		// The shadow instance loads in the background; serving continues
		// on the old partition until it is ready.
		r.eng.After(r.costs.ReloadTime(), func() { r.swapReady = true })
	}
}

func completion(fn func()) *hsa.Signal {
	s := hsa.NewSignal(1)
	s.OnDone(fn)
	return s
}
