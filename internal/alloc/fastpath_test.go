package alloc

import (
	"math/rand"
	"testing"

	"krisp/internal/gpu"
)

// fakeOcc is a scriptable Occupancy for cache tests: counters, generation
// and busy count are set directly.
type fakeOcc struct {
	counters []int
	gen      uint64
	busy     int
}

func (f *fakeOcc) CountersView() []int  { return f.counters }
func (f *fakeOcc) OccupancyGen() uint64 { return f.gen }
func (f *fakeOcc) BusyCUs() int         { return f.busy }

// bump mutates one counter the way a device launch/completion would:
// counters change and the generation advances.
func (f *fakeOcc) bump(cu, delta int) {
	f.counters[cu] += delta
	f.gen++
	f.busy = 0
	for _, c := range f.counters {
		if c > 0 {
			f.busy++
		}
	}
}

func randomRequest(rng *rand.Rand) Request {
	req := Request{
		NumCUs: rng.Intn(70),
		Policy: Policy(rng.Intn(3)),
	}
	switch rng.Intn(3) {
	case 0:
		req.OverlapLimit = 0
	case 1:
		req.OverlapLimit = rng.Intn(12)
	default:
		req.OverlapLimit = NoOverlapLimit
	}
	if rng.Intn(2) == 0 {
		req.MinGrant = rng.Intn(61)
	}
	return req
}

// TestAllocatorMatchesGenerateMask drives one reused Allocator through
// random counter states and requests and checks every mask against a
// fresh-allocator call — scratch state leaking between calls would
// diverge them.
func TestAllocatorMatchesGenerateMask(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := NewAllocator(gpu.MI50)
	counters := make([]int, 60)
	for iter := 0; iter < 2000; iter++ {
		for i := range counters {
			counters[i] = rng.Intn(4)
		}
		req := randomRequest(rng)
		got := a.Generate(counters, req)
		want := GenerateMask(gpu.MI50, counters, req)
		if !got.Equal(want) {
			t.Fatalf("iter %d req %+v: reused allocator %v, fresh %v", iter, req, got, want)
		}
	}
}

// TestAllocatorZeroAllocs asserts the dispatch fast path allocates
// nothing, including when the MinGrant progress-floor extension fires.
func TestAllocatorZeroAllocs(t *testing.T) {
	a := NewAllocator(gpu.MI50)
	busy := make([]int, 60)
	for i := range busy {
		busy[i] = 1 + i%2
	}
	cases := []struct {
		name     string
		counters []int
		req      Request
	}{
		{"idle", nil, Request{NumCUs: 22, OverlapLimit: 0, MinGrant: 15}},
		{"busy", busy, Request{NumCUs: 22, OverlapLimit: NoOverlapLimit}},
		{"floor-extension", busy, Request{NumCUs: 22, OverlapLimit: 0, MinGrant: 30}},
	}
	for _, tc := range cases {
		if allocs := testing.AllocsPerRun(200, func() {
			_ = a.Generate(tc.counters, tc.req)
		}); allocs != 0 {
			t.Errorf("%s: %v allocs/op, want 0", tc.name, allocs)
		}
	}
}

// TestMaskCacheMatchesUncached runs a mutation script through a MaskCache
// and checks every served mask — hit or miss, idle or busy — against an
// uncached computation on the same counters.
func TestMaskCacheMatchesUncached(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	c := NewMaskCache(gpu.MI50)
	occ := &fakeOcc{counters: make([]int, 60)}
	for iter := 0; iter < 3000; iter++ {
		switch rng.Intn(5) {
		case 0: // return to idle
			for i := range occ.counters {
				occ.counters[i] = 0
			}
			occ.gen++
			occ.busy = 0
		case 1, 2: // occupancy change
			occ.bump(rng.Intn(60), 1)
		default: // unchanged state — exercises the generation-keyed hit
		}
		req := randomRequest(rng)
		got := c.Generate(occ, req)
		var counters []int
		if occ.busy > 0 {
			counters = occ.counters
		}
		want := GenerateMask(gpu.MI50, counters, req)
		if !got.Equal(want) {
			t.Fatalf("iter %d req %+v gen %d busy %d: cached %v, uncached %v",
				iter, req, occ.gen, occ.busy, got, want)
		}
	}
	if c.Hits == 0 {
		t.Error("mutation script never hit the cache")
	}
	if c.Misses == 0 {
		t.Error("mutation script never missed the cache")
	}
}

// TestIdleMaskIndependentOfMinGrant backs the idle-key design: with every
// counter zero the MinGrant cap cannot fire and the floor cannot come up
// short, so idle masks must not vary with MinGrant (it is deliberately
// absent from the cache key).
func TestIdleMaskIndependentOfMinGrant(t *testing.T) {
	for _, p := range []Policy{Conserved, Distributed, Packed} {
		for _, limit := range []int{0, 3, NoOverlapLimit} {
			for n := 1; n <= 60; n++ {
				base := GenerateMask(gpu.MI50, nil, Request{NumCUs: n, OverlapLimit: limit, Policy: p})
				for _, mg := range []int{1, 15, 60} {
					got := GenerateMask(gpu.MI50, nil, Request{NumCUs: n, OverlapLimit: limit, Policy: p, MinGrant: mg})
					if !got.Equal(base) {
						t.Fatalf("policy %v limit %d n %d: MinGrant %d changed idle mask", p, limit, n, mg)
					}
				}
			}
		}
	}
}

// TestMaskCacheHitServesCachedGrid asserts the cache actually serves the
// dominant shapes from cache: an idle-device repeat and a same-generation
// busy repeat must both count as hits.
func TestMaskCacheHitServesCachedGrid(t *testing.T) {
	c := NewMaskCache(gpu.MI50)
	occ := &fakeOcc{counters: make([]int, 60)}
	req := Request{NumCUs: 22, OverlapLimit: 0, MinGrant: 60}
	first := c.Generate(occ, req)
	again := c.Generate(occ, req)
	if c.Hits != 1 || !first.Equal(again) {
		t.Fatalf("idle repeat: hits = %d, masks equal = %v", c.Hits, first.Equal(again))
	}
	occ.bump(3, 1)
	busyReq := Request{NumCUs: 10, OverlapLimit: 0, MinGrant: 15}
	first = c.Generate(occ, busyReq)
	again = c.Generate(occ, busyReq)
	if c.Hits != 2 || !first.Equal(again) {
		t.Fatalf("busy repeat: hits = %d, masks equal = %v", c.Hits, first.Equal(again))
	}
	occ.bump(3, 1) // generation moves: cached busy entry must be dropped
	misses := c.Misses
	_ = c.Generate(occ, busyReq)
	if c.Misses != misses+1 {
		t.Fatalf("stale generation served from cache (misses %d -> %d)", misses, c.Misses)
	}
}
