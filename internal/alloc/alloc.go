// Package alloc implements KRISP's partition resource allocation: given a
// requested partition size (number of CUs), the device topology, and the
// per-CU kernel counters from the Resource Monitor, it generates the kernel
// resource mask the packet processor tags onto the dispatch.
//
// Three CU-distribution policies are provided (paper §IV-C, Fig. 7):
//
//   - Distributed: spread the allocation equally across all SEs (the
//     default hardware behaviour). Suffers when the allocation is smaller
//     than one CU per SE-share — dips at 15, 11, 7 CUs on the MI50.
//   - Packed: fill one SE completely before spilling into the next.
//     Suffers whenever an SE is left nearly empty — spikes at 16, 31, 46.
//   - Conserved: use the minimum number of SEs that satisfies the request
//     and spread evenly across them. Avoids both pitfalls; KRISP adopts it.
//
// Allocator.Generate is a faithful implementation of the paper's
// Algorithm 1, including the overlap limit: CUs already running kernels
// count as "overlapped", and once the limit is exceeded further busy CUs
// are skipped (consuming allocation budget without setting the bit, exactly
// as the pseudocode does), so a constrained allocation can return fewer CUs
// than requested — this is the KRISP-I behaviour of granting only what is
// isolatable.
//
// Algorithm 1 runs on every kernel launch, so the allocator is built for
// the dispatch fast path: an Allocator owns fixed topology-sized scratch
// buffers and sorts them with insertion sort, allocating nothing per call,
// and a MaskCache in front of it memoizes the dominant request shapes
// (idle-device allocations and repeated occupancy states keyed by the
// device's occupancy generation counter).
package alloc

import (
	"krisp/internal/gpu"
)

// Policy selects how CUs are distributed across shader engines.
type Policy int

const (
	// Conserved uses the fewest SEs that satisfy the request, evenly.
	Conserved Policy = iota
	// Distributed spreads the request across all SEs evenly.
	Distributed
	// Packed fills SEs one at a time.
	Packed
)

func (p Policy) String() string {
	switch p {
	case Conserved:
		return "conserved"
	case Distributed:
		return "distributed"
	case Packed:
		return "packed"
	default:
		return "unknown"
	}
}

// NoOverlapLimit disables the overlap limit: every CU may be shared.
// Passing it as overlapLimit yields KRISP-O behaviour.
const NoOverlapLimit = int(^uint(0) >> 1)

// Request describes one allocation.
type Request struct {
	// NumCUs is the partition size from kernel-wise right-sizing.
	NumCUs int
	// OverlapLimit is the maximum number of allocated CUs that may already
	// have kernels assigned. 0 = full isolation (KRISP-I),
	// NoOverlapLimit = unrestricted (KRISP-O).
	OverlapLimit int
	// Policy is the SE distribution policy. The zero value is Conserved,
	// the policy KRISP adopts.
	Policy Policy
	// MinGrant is a progress floor: if the overlap limit leaves the
	// allocation below min(NumCUs, MinGrant), the shortfall is filled with
	// overlapped least-loaded CUs regardless of the limit. The command
	// processor passes the kernel's fair share (totalCUs / active kernels)
	// here so a starved stream degrades to time-shared fairness instead of
	// crawling on whatever scraps are free.
	MinGrant int
}

// Allocator runs Algorithm 1 over fixed scratch buffers so the per-launch
// mask generation allocates nothing. It is not safe for concurrent use;
// each command processor (simulation goroutine) owns its own.
type Allocator struct {
	topo gpu.Topology

	// seLoads[se] is the summed kernel counter of SE se; seOrder holds SE
	// ids sorted least-loaded first (insertion sort keeps ties in SE-id
	// order, matching the stable sort of the original implementation).
	seLoads []int
	seOrder []int
	// cuOrder holds the current SE's CU indices sorted least-loaded first.
	cuOrder []int
	// quotas is the per-selected-SE CU quota buffer.
	quotas []int
	// zeros stands in for nil counters (idle device); never written.
	zeros []int
	// ext is the biased counter copy used by the progress-floor extension.
	ext []int
}

// NewAllocator builds an allocator for one device topology.
func NewAllocator(topo gpu.Topology) *Allocator {
	total := topo.TotalCUs()
	return &Allocator{
		topo:    topo,
		seLoads: make([]int, topo.NumSEs),
		seOrder: make([]int, topo.NumSEs),
		cuOrder: make([]int, topo.CUsPerSE),
		quotas:  make([]int, topo.NumSEs),
		zeros:   make([]int, total),
		ext:     make([]int, total),
	}
}

// Topology returns the device topology the allocator was built for.
func (a *Allocator) Topology() gpu.Topology { return a.topo }

// Generate runs Algorithm 1 and returns the kernel resource mask.
// counters must have one entry per physical CU (the Resource Monitor
// state); a nil counters slice means an idle device. counters is never
// mutated.
//
// The mask is never empty: if the overlap limit filtered out every
// candidate (all CUs busy under KRISP-I), the single least-loaded CU is
// granted so the kernel can make progress. The paper's evaluation implies
// the same floor ("we allocate only what is available").
func (a *Allocator) Generate(counters []int, req Request) gpu.CUMask {
	if counters == nil {
		counters = a.zeros
	}
	return a.generate(counters, req, true)
}

// generate is one Algorithm 1 pass. extend gates the progress-floor
// extension: the extension pass itself runs with NoOverlapLimit and no
// MinGrant, which can never come up short again, so recursion is bounded
// at depth one and replaced by a plain second pass over the same scratch.
func (a *Allocator) generate(counters []int, req Request, extend bool) gpu.CUMask {
	topo := a.topo
	total := topo.TotalCUs()
	numCUs := req.NumCUs
	if numCUs < 1 {
		numCUs = 1
	}
	if numCUs > total {
		numCUs = total
	}

	// Isolation-seeking requests (a finite overlap limit) exceed the fair
	// share only when the full request fits in currently free CUs:
	// "allocate only what is available". Without the cap, early
	// requesters hoard CUs and force later ones into saturating overlap;
	// a partial surplus (free CUs above fair but below the request) is
	// left for other streams, so concurrent streams converge to an even
	// split while a lone stream still gets its full request.
	if req.MinGrant > 0 && req.OverlapLimit < total &&
		numCUs > req.MinGrant && numCUs > FreeCUs(counters) {
		numCUs = req.MinGrant
	}

	quotas := a.seQuotas(numCUs, req.Policy)

	// Select SEs ordered by total assigned kernels, least-loaded first
	// (Algorithm 1 lines 4-8). Ties break on SE id for determinism.
	order := a.seOrder[:topo.NumSEs]
	for se := 0; se < topo.NumSEs; se++ {
		sum := 0
		for c := 0; c < topo.CUsPerSE; c++ {
			sum += counters[topo.CUIndex(se, c)]
		}
		a.seLoads[se] = sum
		order[se] = se
	}
	insertionSortByKey(order, a.seLoads)

	var mask gpu.CUMask
	allocated := 0
	overlapped := 0
	for i := 0; i < len(quotas) && allocated < numCUs; i++ {
		se := order[i]
		// Within the SE, order CUs by assigned-kernel count (line 12).
		cus := a.cuOrder[:topo.CUsPerSE]
		for c := 0; c < topo.CUsPerSE; c++ {
			cus[c] = topo.CUIndex(se, c)
		}
		insertionSortByKey(cus, counters)

		take := quotas[i]
		if rem := numCUs - allocated; take > rem {
			take = rem
		}
		for j := 0; j < take && allocated < numCUs; j++ {
			cu := cus[j]
			busy := counters[cu] > 0
			if busy {
				overlapped++
			}
			if !busy || overlapped <= req.OverlapLimit {
				mask = mask.Set(cu)
			}
			// Budget is consumed whether or not the bit was set — the
			// Algorithm 1 quirk that makes constrained allocations
			// smaller than requested instead of hunting further.
			allocated++
		}
	}

	// Progress floor. If the overlap limit starved the allocation (below
	// MinGrant, or empty outright), extend it with overlapped
	// least-loaded CUs: a real command processor must still dispatch the
	// kernel, and a near-empty grant would pin the stream to scraps for
	// the kernel's whole lifetime. This is the "allocate only what is
	// available" clause of the paper's KRISP-I description, taken at the
	// point where "available" becomes the time-shared machine.
	floor := req.MinGrant
	if floor > numCUs {
		floor = numCUs
	}
	if mask.IsEmpty() && floor < 1 {
		floor = numCUs
	}
	// A grant moderately below the fair share costs little (wave counts
	// quantize), while overlapping poisons both kernels on the shared
	// CUs, so the overlapped extension only fires when the isolated grant
	// fell below half the floor — the genuine starvation cases.
	floor = (floor + 1) / 2
	if short := floor - mask.Count(); extend && short > 0 {
		ext := a.ext[:len(counters)]
		copy(ext, counters)
		for cu := 0; cu < total; cu++ {
			if mask.Has(cu) {
				ext[cu] += busyMark
			}
		}
		extra := a.generate(ext, Request{
			NumCUs:       short,
			OverlapLimit: NoOverlapLimit,
			Policy:       req.Policy,
		}, false)
		mask = mask.Or(extra)
	}
	return mask
}

// insertionSortByKey sorts ids ascending by key[id]. Insertion sort only
// moves an element past strictly-greater predecessors, so equal keys keep
// their original order — the stability GenerateMask's determinism relies
// on — and the N<=16 inputs here beat sort.SliceStable without allocating
// its closure.
func insertionSortByKey(ids []int, key []int) {
	for i := 1; i < len(ids); i++ {
		id := ids[i]
		k := key[id]
		j := i
		for j > 0 && key[ids[j-1]] > k {
			ids[j] = ids[j-1]
			j--
		}
		ids[j] = id
	}
}

// busyMark biases already-granted CUs so the floor extension prefers other
// CUs; it is large enough to outrank any realistic kernel count.
const busyMark = 1 << 20

// seQuotas fills the per-selected-SE CU quotas for a request of numCUs
// under the given policy (Algorithm 1 lines 2-3 for Conserved; the
// Distributed/Packed variants of Fig. 7). The returned slice aliases the
// allocator's quota scratch buffer.
//
// Algorithm 1's pseudocode uses cu_per_se = ceil(num_cus/num_se) for every
// SE with the last SE absorbing the shortfall, which can leave a 2-CU
// imbalance (e.g. 40 CUs -> 14/14/12). The paper's prose says "evenly
// distribute across those SEs" and Fig. 8's smooth Conserved curve matches
// the even split, so we use floor+remainder quotas (40 -> 14/13/13).
func (a *Allocator) seQuotas(numCUs int, p Policy) []int {
	topo := a.topo
	var numSE int
	switch p {
	case Distributed:
		numSE = topo.NumSEs
		if numCUs < numSE {
			numSE = numCUs
		}
	case Packed:
		quotas := a.quotas[:ceilDiv(numCUs, topo.CUsPerSE)]
		left := numCUs
		for i := range quotas {
			take := topo.CUsPerSE
			if take > left {
				take = left
			}
			quotas[i] = take
			left -= take
		}
		return quotas
	default: // Conserved
		numSE = ceilDiv(numCUs, topo.CUsPerSE)
	}
	quotas := a.quotas[:numSE]
	base, extra := numCUs/numSE, numCUs%numSE
	for i := range quotas {
		quotas[i] = base
		if i < extra {
			quotas[i]++
		}
	}
	return quotas
}

// GenerateMask runs Algorithm 1 once with a throwaway Allocator. It is the
// compatibility wrapper for cold paths (policy carving, figures, tests);
// the dispatch fast path holds a reusable Allocator (or a MaskCache)
// instead.
func GenerateMask(topo gpu.Topology, counters []int, req Request) gpu.CUMask {
	return NewAllocator(topo).Generate(counters, req)
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }

// FreeCUs returns the number of CUs with no kernels assigned.
func FreeCUs(counters []int) int {
	n := 0
	for _, c := range counters {
		if c == 0 {
			n++
		}
	}
	return n
}
