// Package alloc implements KRISP's partition resource allocation: given a
// requested partition size (number of CUs), the device topology, and the
// per-CU kernel counters from the Resource Monitor, it generates the kernel
// resource mask the packet processor tags onto the dispatch.
//
// Three CU-distribution policies are provided (paper §IV-C, Fig. 7):
//
//   - Distributed: spread the allocation equally across all SEs (the
//     default hardware behaviour). Suffers when the allocation is smaller
//     than one CU per SE-share — dips at 15, 11, 7 CUs on the MI50.
//   - Packed: fill one SE completely before spilling into the next.
//     Suffers whenever an SE is left nearly empty — spikes at 16, 31, 46.
//   - Conserved: use the minimum number of SEs that satisfies the request
//     and spread evenly across them. Avoids both pitfalls; KRISP adopts it.
//
// GenerateMask is a faithful implementation of the paper's Algorithm 1,
// including the overlap limit: CUs already running kernels count as
// "overlapped", and once the limit is exceeded further busy CUs are skipped
// (consuming allocation budget without setting the bit, exactly as the
// pseudocode does), so a constrained allocation can return fewer CUs than
// requested — this is the KRISP-I behaviour of granting only what is
// isolatable.
package alloc

import (
	"sort"

	"krisp/internal/gpu"
)

// Policy selects how CUs are distributed across shader engines.
type Policy int

const (
	// Conserved uses the fewest SEs that satisfy the request, evenly.
	Conserved Policy = iota
	// Distributed spreads the request across all SEs evenly.
	Distributed
	// Packed fills SEs one at a time.
	Packed
)

func (p Policy) String() string {
	switch p {
	case Conserved:
		return "conserved"
	case Distributed:
		return "distributed"
	case Packed:
		return "packed"
	default:
		return "unknown"
	}
}

// NoOverlapLimit disables the overlap limit: every CU may be shared.
// Passing it as overlapLimit yields KRISP-O behaviour.
const NoOverlapLimit = int(^uint(0) >> 1)

// Request describes one allocation.
type Request struct {
	// NumCUs is the partition size from kernel-wise right-sizing.
	NumCUs int
	// OverlapLimit is the maximum number of allocated CUs that may already
	// have kernels assigned. 0 = full isolation (KRISP-I),
	// NoOverlapLimit = unrestricted (KRISP-O).
	OverlapLimit int
	// Policy is the SE distribution policy. The zero value is Conserved,
	// the policy KRISP adopts.
	Policy Policy
	// MinGrant is a progress floor: if the overlap limit leaves the
	// allocation below min(NumCUs, MinGrant), the shortfall is filled with
	// overlapped least-loaded CUs regardless of the limit. The command
	// processor passes the kernel's fair share (totalCUs / active kernels)
	// here so a starved stream degrades to time-shared fairness instead of
	// crawling on whatever scraps are free.
	MinGrant int
}

// GenerateMask runs Algorithm 1 and returns the kernel resource mask.
// counters must have one entry per physical CU (the Resource Monitor
// state); a nil counters slice means an idle device.
//
// The mask is never empty: if the overlap limit filtered out every
// candidate (all CUs busy under KRISP-I), the single least-loaded CU is
// granted so the kernel can make progress. The paper's evaluation implies
// the same floor ("we allocate only what is available").
func GenerateMask(topo gpu.Topology, counters []int, req Request) gpu.CUMask {
	total := topo.TotalCUs()
	numCUs := req.NumCUs
	if numCUs < 1 {
		numCUs = 1
	}
	if numCUs > total {
		numCUs = total
	}
	if counters == nil {
		counters = make([]int, total)
	}

	// Isolation-seeking requests (a finite overlap limit) exceed the fair
	// share only when the full request fits in currently free CUs:
	// "allocate only what is available". Without the cap, early
	// requesters hoard CUs and force later ones into saturating overlap;
	// a partial surplus (free CUs above fair but below the request) is
	// left for other streams, so concurrent streams converge to an even
	// split while a lone stream still gets its full request.
	if req.MinGrant > 0 && req.OverlapLimit < total &&
		numCUs > req.MinGrant && numCUs > FreeCUs(counters) {
		numCUs = req.MinGrant
	}

	quotas := seQuotas(topo, numCUs, req.Policy)

	// Select SEs ordered by total assigned kernels, least-loaded first
	// (Algorithm 1 lines 4-8). Ties break on SE id for determinism.
	type seLoad struct{ se, load int }
	loads := make([]seLoad, topo.NumSEs)
	for se := 0; se < topo.NumSEs; se++ {
		sum := 0
		for c := 0; c < topo.CUsPerSE; c++ {
			sum += counters[topo.CUIndex(se, c)]
		}
		loads[se] = seLoad{se, sum}
	}
	sort.SliceStable(loads, func(i, j int) bool { return loads[i].load < loads[j].load })

	var mask gpu.CUMask
	allocated := 0
	overlapped := 0
	for i := 0; i < len(quotas) && allocated < numCUs; i++ {
		se := loads[i].se
		// Within the SE, order CUs by assigned-kernel count (line 12).
		cus := make([]int, topo.CUsPerSE)
		for c := 0; c < topo.CUsPerSE; c++ {
			cus[c] = topo.CUIndex(se, c)
		}
		sort.SliceStable(cus, func(a, b int) bool { return counters[cus[a]] < counters[cus[b]] })

		take := quotas[i]
		if rem := numCUs - allocated; take > rem {
			take = rem
		}
		for j := 0; j < take && allocated < numCUs; j++ {
			cu := cus[j]
			busy := counters[cu] > 0
			if busy {
				overlapped++
			}
			if !busy || overlapped <= req.OverlapLimit {
				mask = mask.Set(cu)
			}
			// Budget is consumed whether or not the bit was set — the
			// Algorithm 1 quirk that makes constrained allocations
			// smaller than requested instead of hunting further.
			allocated++
		}
	}

	// Progress floor. If the overlap limit starved the allocation (below
	// MinGrant, or empty outright), extend it with overlapped
	// least-loaded CUs: a real command processor must still dispatch the
	// kernel, and a near-empty grant would pin the stream to scraps for
	// the kernel's whole lifetime. This is the "allocate only what is
	// available" clause of the paper's KRISP-I description, taken at the
	// point where "available" becomes the time-shared machine.
	floor := req.MinGrant
	if floor > numCUs {
		floor = numCUs
	}
	if mask.IsEmpty() && floor < 1 {
		floor = numCUs
	}
	// A grant moderately below the fair share costs little (wave counts
	// quantize), while overlapping poisons both kernels on the shared
	// CUs, so the overlapped extension only fires when the isolated grant
	// fell below half the floor — the genuine starvation cases.
	floor = (floor + 1) / 2
	if short := floor - mask.Count(); short > 0 {
		tmp := make([]int, len(counters))
		copy(tmp, counters)
		for _, cu := range mask.CUs() {
			tmp[cu] += busyMark
		}
		extra := GenerateMask(topo, tmp, Request{
			NumCUs:       short,
			OverlapLimit: NoOverlapLimit,
			Policy:       req.Policy,
		})
		mask = mask.Or(extra)
	}
	return mask
}

// busyMark biases already-granted CUs so the floor extension prefers other
// CUs; it is large enough to outrank any realistic kernel count.
const busyMark = 1 << 20

// seQuotas returns the per-selected-SE CU quotas for a request of numCUs
// under the given policy (Algorithm 1 lines 2-3 for Conserved; the
// Distributed/Packed variants of Fig. 7).
//
// Algorithm 1's pseudocode uses cu_per_se = ceil(num_cus/num_se) for every
// SE with the last SE absorbing the shortfall, which can leave a 2-CU
// imbalance (e.g. 40 CUs -> 14/14/12). The paper's prose says "evenly
// distribute across those SEs" and Fig. 8's smooth Conserved curve matches
// the even split, so we use floor+remainder quotas (40 -> 14/13/13).
func seQuotas(topo gpu.Topology, numCUs int, p Policy) []int {
	var numSE int
	switch p {
	case Distributed:
		numSE = topo.NumSEs
		if numCUs < numSE {
			numSE = numCUs
		}
	case Packed:
		quotas := make([]int, ceilDiv(numCUs, topo.CUsPerSE))
		left := numCUs
		for i := range quotas {
			take := topo.CUsPerSE
			if take > left {
				take = left
			}
			quotas[i] = take
			left -= take
		}
		return quotas
	default: // Conserved
		numSE = ceilDiv(numCUs, topo.CUsPerSE)
	}
	quotas := make([]int, numSE)
	base, extra := numCUs/numSE, numCUs%numSE
	for i := range quotas {
		quotas[i] = base
		if i < extra {
			quotas[i]++
		}
	}
	return quotas
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }

// FreeCUs returns the number of CUs with no kernels assigned.
func FreeCUs(counters []int) int {
	n := 0
	for _, c := range counters {
		if c == 0 {
			n++
		}
	}
	return n
}
