package alloc

import (
	"testing"

	"krisp/internal/gpu"
)

// FuzzGenerateMask drives Algorithm 1 with arbitrary counter states and
// request shapes; the mask must always be non-empty, within the clamped
// request size, and inside the device.
func FuzzGenerateMask(f *testing.F) {
	f.Add(uint(19), uint(0), uint(0), uint(15), uint64(0))
	f.Add(uint(60), uint(60), uint(1), uint(0), uint64(0xffffffffffffffff))
	f.Add(uint(1), uint(3), uint(2), uint(30), uint64(0x5555555555555555))
	f.Fuzz(func(t *testing.T, numCUs, limit, policy, minGrant uint, busy uint64) {
		counters := make([]int, 60)
		for cu := 0; cu < 60; cu++ {
			counters[cu] = int(busy >> uint(cu) & 1)
			if cu < 4 { // a few heavily loaded CUs
				counters[cu] += int(busy >> 60 & 3)
			}
		}
		req := Request{
			NumCUs:       int(numCUs % 100),
			OverlapLimit: int(limit % 70),
			Policy:       Policy(policy % 3),
			MinGrant:     int(minGrant % 70),
		}
		mask := GenerateMask(gpu.MI50, counters, req)
		if mask.IsEmpty() {
			t.Fatalf("empty mask for %+v", req)
		}
		want := req.NumCUs
		if want < 1 {
			want = 1
		}
		if want > 60 {
			want = 60
		}
		if mask.Count() > want {
			t.Fatalf("mask %d CUs exceeds clamped request %d (%+v)", mask.Count(), want, req)
		}
		for _, cu := range mask.CUs() {
			if cu < 0 || cu >= 60 {
				t.Fatalf("mask contains CU %d outside the device", cu)
			}
		}
	})
}
