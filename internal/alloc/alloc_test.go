package alloc

import (
	"math/rand"
	"testing"
	"testing/quick"

	"krisp/internal/gpu"
)

var mi50 = gpu.MI50

func idle() []int { return make([]int, 60) }

func TestConservedUsesMinimumSEs(t *testing.T) {
	cases := []struct {
		numCUs  int
		wantSEs int
	}{
		{1, 1}, {15, 1}, {16, 2}, {19, 2}, {30, 2}, {31, 3}, {45, 3}, {46, 4}, {60, 4},
	}
	for _, c := range cases {
		m := GenerateMask(mi50, idle(), Request{NumCUs: c.numCUs, OverlapLimit: NoOverlapLimit})
		if got := m.Count(); got != c.numCUs {
			t.Errorf("conserved %d CUs: mask has %d", c.numCUs, got)
		}
		if got := len(m.UsedSEs(mi50)); got != c.wantSEs {
			t.Errorf("conserved %d CUs: used %d SEs, want %d", c.numCUs, got, c.wantSEs)
		}
	}
}

func TestConservedBalancesAcrossSelectedSEs(t *testing.T) {
	// The paper's Fig. 7 example: 19 CUs over the MI50 should use 2 SEs
	// split 10/9 under Conserved.
	m := GenerateMask(mi50, idle(), Request{NumCUs: 19, OverlapLimit: NoOverlapLimit})
	used := m.UsedSEs(mi50)
	if len(used) != 2 {
		t.Fatalf("used %d SEs, want 2", len(used))
	}
	counts := []int{m.CountInSE(mi50, used[0]), m.CountInSE(mi50, used[1])}
	if counts[0]+counts[1] != 19 {
		t.Fatalf("total CUs = %d, want 19", counts[0]+counts[1])
	}
	diff := counts[0] - counts[1]
	if diff < -1 || diff > 1 {
		t.Errorf("imbalanced split %v", counts)
	}
}

func TestDistributedSpreadsAcrossAllSEs(t *testing.T) {
	m := GenerateMask(mi50, idle(), Request{NumCUs: 19, OverlapLimit: NoOverlapLimit, Policy: Distributed})
	if got := len(m.UsedSEs(mi50)); got != 4 {
		t.Errorf("distributed 19 CUs used %d SEs, want 4", got)
	}
	if m.Count() != 19 {
		t.Errorf("mask count = %d, want 19", m.Count())
	}
	for se := 0; se < 4; se++ {
		n := m.CountInSE(mi50, se)
		if n < 4 || n > 5 {
			t.Errorf("SE%d has %d CUs, want 4 or 5", se, n)
		}
	}
}

func TestPackedFillsSEsSequentially(t *testing.T) {
	m := GenerateMask(mi50, idle(), Request{NumCUs: 19, OverlapLimit: NoOverlapLimit, Policy: Packed})
	if m.Count() != 19 {
		t.Fatalf("mask count = %d, want 19", m.Count())
	}
	used := m.UsedSEs(mi50)
	if len(used) != 2 {
		t.Fatalf("packed 19 used %d SEs, want 2", len(used))
	}
	full, spill := m.CountInSE(mi50, used[0]), m.CountInSE(mi50, used[1])
	if full != 15 || spill != 4 {
		t.Errorf("packed split = %d/%d, want 15/4", full, spill)
	}
}

func TestLeastLoadedSEPreferred(t *testing.T) {
	counters := idle()
	// Load SE0 and SE1 heavily.
	for cu := 0; cu < 30; cu++ {
		counters[cu] = 3
	}
	m := GenerateMask(mi50, counters, Request{NumCUs: 15, OverlapLimit: NoOverlapLimit})
	used := m.UsedSEs(mi50)
	if len(used) != 1 || used[0] < 2 {
		t.Errorf("allocation landed on SE%v, want SE2 or SE3", used)
	}
}

func TestLeastLoadedCUsWithinSE(t *testing.T) {
	counters := idle()
	counters[0], counters[1], counters[2] = 5, 5, 5 // busy CUs in SE0
	// Everything else idle; ask for 12 CUs — fits in SE0's idle CUs.
	m := GenerateMask(mi50, counters, Request{NumCUs: 12, OverlapLimit: 0})
	if m.Count() != 12 {
		t.Fatalf("mask count = %d, want 12", m.Count())
	}
	for _, cu := range []int{0, 1, 2} {
		if m.Has(cu) {
			t.Errorf("isolated allocation picked busy CU %d", cu)
		}
	}
}

func TestOverlapLimitShrinksAllocation(t *testing.T) {
	counters := idle()
	for cu := 0; cu < 60; cu++ {
		counters[cu] = 1 // fully busy device
	}
	// KRISP-I: no overlap allowed. All candidates are busy, so isolation
	// degrades to an overlapped allocation of half the request (the
	// starvation floor keeps overlap minimal).
	m := GenerateMask(mi50, counters, Request{NumCUs: 20, OverlapLimit: 0})
	if m.Count() != 10 {
		t.Errorf("fully-busy isolated mask count = %d, want 10 (half-request overlap floor)", m.Count())
	}
	// KRISP-O: unrestricted overlap gets the full request.
	m = GenerateMask(mi50, counters, Request{NumCUs: 20, OverlapLimit: NoOverlapLimit})
	if m.Count() != 20 {
		t.Errorf("oversubscribed mask count = %d, want 20", m.Count())
	}
	// A limit of 5 grants at most 5 busy CUs.
	m = GenerateMask(mi50, counters, Request{NumCUs: 20, OverlapLimit: 5})
	if m.Count() != 5 {
		t.Errorf("limit-5 mask count = %d, want 5", m.Count())
	}
}

func TestPartialIsolationMixesFreeAndBudget(t *testing.T) {
	counters := idle()
	// SE0: CUs 0-9 busy, 10-14 free. Other SEs fully busy.
	for cu := 0; cu < 60; cu++ {
		counters[cu] = 1
	}
	for cu := 10; cu < 15; cu++ {
		counters[cu] = 0
	}
	m := GenerateMask(mi50, counters, Request{NumCUs: 12, OverlapLimit: 0})
	// 12 CUs requested from the least-loaded SE (SE0): 5 free CUs granted,
	// 7 busy ones skipped by the overlap limit.
	if m.Count() != 5 {
		t.Errorf("mask count = %d, want 5", m.Count())
	}
	for _, cu := range m.CUs() {
		if counters[cu] != 0 {
			t.Errorf("isolated mask includes busy CU %d", cu)
		}
	}
}

func TestRequestClamping(t *testing.T) {
	if got := GenerateMask(mi50, idle(), Request{NumCUs: 0, OverlapLimit: 0}).Count(); got != 1 {
		t.Errorf("zero-CU request got %d CUs, want 1", got)
	}
	if got := GenerateMask(mi50, idle(), Request{NumCUs: 999, OverlapLimit: 0}).Count(); got != 60 {
		t.Errorf("oversized request got %d CUs, want 60", got)
	}
}

func TestNilCountersMeansIdle(t *testing.T) {
	a := GenerateMask(mi50, nil, Request{NumCUs: 19, OverlapLimit: 0})
	b := GenerateMask(mi50, idle(), Request{NumCUs: 19, OverlapLimit: 0})
	if !a.Equal(b) {
		t.Error("nil counters mask differs from idle counters mask")
	}
}

func TestPolicyString(t *testing.T) {
	if Conserved.String() != "conserved" || Distributed.String() != "distributed" ||
		Packed.String() != "packed" || Policy(99).String() != "unknown" {
		t.Error("Policy.String() wrong")
	}
}

func TestFreeCUs(t *testing.T) {
	counters := idle()
	counters[3], counters[40] = 2, 1
	if got := FreeCUs(counters); got != 58 {
		t.Errorf("FreeCUs = %d, want 58", got)
	}
}

// Property: the generated mask never exceeds the requested size, never
// exceeds the overlap limit in busy CUs (beyond the one-CU progress
// floor), and is never empty.
func TestGenerateMaskInvariantsProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		counters := make([]int, 60)
		for i := range counters {
			counters[i] = rng.Intn(4)
		}
		req := Request{
			NumCUs:       rng.Intn(70),
			OverlapLimit: rng.Intn(8),
			Policy:       Policy(rng.Intn(3)),
		}
		m := GenerateMask(mi50, counters, req)
		if m.IsEmpty() {
			return false
		}
		want := req.NumCUs
		if want < 1 {
			want = 1
		}
		if want > 60 {
			want = 60
		}
		if m.Count() > want {
			return false
		}
		busy := 0
		for _, cu := range m.CUs() {
			if counters[cu] > 0 {
				busy++
			}
		}
		// Either the overlap limit held, or the allocation degraded to
		// the overlapped fallback (in which case it may not exceed the
		// clamped request, checked above).
		return busy <= req.OverlapLimit || busy == m.Count()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: on an idle device, Conserved's per-SE split differs by at most
// one CU between the SEs it uses.
func TestConservedBalanceProperty(t *testing.T) {
	prop := func(n uint8) bool {
		numCUs := int(n%60) + 1
		m := GenerateMask(mi50, idle(), Request{NumCUs: numCUs, OverlapLimit: NoOverlapLimit})
		if m.Count() != numCUs {
			return false
		}
		used := m.UsedSEs(mi50)
		min, max := 16, 0
		for _, se := range used {
			c := m.CountInSE(mi50, se)
			if c < min {
				min = c
			}
			if c > max {
				max = c
			}
		}
		return max-min <= 1
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
