package alloc

import (
	"krisp/internal/gpu"
)

// Occupancy is the live Resource Monitor view a MaskCache reads:
// *gpu.Device implements it. CountersView must return the device's live
// per-CU kernel counters without copying, and OccupancyGen a counter that
// changes whenever those counters change.
type Occupancy interface {
	CountersView() []int
	OccupancyGen() uint64
	BusyCUs() int
}

// idleKey identifies an idle-device allocation. When every counter is
// zero, the mask depends only on these three request fields: the MinGrant
// cap cannot fire (the full clamped request fits in free CUs) and the
// progress floor cannot come up short (no CU is skipped), so MinGrant is
// deliberately absent from the key.
type idleKey struct {
	numCUs  int
	policy  Policy
	overlap int
}

// MaskCache memoizes Algorithm 1 for the two shapes that dominate the
// dispatch stream: idle-device requests (every kernel of a lone worker
// lands on an idle device between batches) and back-to-back requests
// against an unchanged occupancy state, invalidated by the device's
// occupancy generation counter. Cached masks are the allocator's own
// output, so cached and uncached runs are byte-identical.
type MaskCache struct {
	alloc *Allocator
	idle  map[idleKey]gpu.CUMask

	// Single-entry busy-state cache: valid while the device occupancy
	// generation still matches and the request is identical.
	busyGen   uint64
	busyReq   Request
	busyMask  gpu.CUMask
	busyValid bool

	// Hits and Misses count cache outcomes (for tests and benchmarks).
	Hits, Misses uint64
}

// NewMaskCache builds a cache (and its backing Allocator) for one device
// topology. Like the Allocator, it is confined to the simulation goroutine.
func NewMaskCache(topo gpu.Topology) *MaskCache {
	return &MaskCache{
		alloc: NewAllocator(topo),
		idle:  make(map[idleKey]gpu.CUMask),
	}
}

// Allocator returns the cache's backing allocator (for uncached calls that
// still want the scratch buffers).
func (c *MaskCache) Allocator() *Allocator { return c.alloc }

// Generate returns the Algorithm 1 mask for req against occ's current
// counters, serving it from cache when the occupancy state provably
// matches a previous call.
func (c *MaskCache) Generate(occ Occupancy, req Request) gpu.CUMask {
	if occ.BusyCUs() == 0 {
		k := idleKey{numCUs: req.NumCUs, policy: req.Policy, overlap: req.OverlapLimit}
		if m, ok := c.idle[k]; ok {
			c.Hits++
			return m
		}
		m := c.alloc.Generate(nil, req)
		c.idle[k] = m
		c.Misses++
		return m
	}
	gen := occ.OccupancyGen()
	if c.busyValid && c.busyGen == gen && c.busyReq == req {
		c.Hits++
		return c.busyMask
	}
	m := c.alloc.Generate(occ.CountersView(), req)
	c.busyGen, c.busyReq, c.busyMask, c.busyValid = gen, req, m, true
	c.Misses++
	return m
}
