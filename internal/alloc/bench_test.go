package alloc

import (
	"math/rand"
	"testing"

	"krisp/internal/gpu"
)

// BenchmarkGenerateMask measures Algorithm 1 under a realistic counter
// state — the paper reports a ~1us firmware tail for this operation; the
// software implementation should be comfortably inside that.
func BenchmarkGenerateMask(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	counters := make([]int, 60)
	for i := range counters {
		counters[i] = rng.Intn(3)
	}
	req := Request{NumCUs: 22, OverlapLimit: 0, MinGrant: 15}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = GenerateMask(gpu.MI50, counters, req)
	}
}

func BenchmarkGenerateMaskOversubscribed(b *testing.B) {
	counters := make([]int, 60)
	for i := range counters {
		counters[i] = 2
	}
	req := Request{NumCUs: 40, OverlapLimit: NoOverlapLimit}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = GenerateMask(gpu.MI50, counters, req)
	}
}
