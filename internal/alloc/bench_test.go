package alloc

import (
	"math/rand"
	"testing"

	"krisp/internal/gpu"
)

// BenchmarkGenerateMask measures Algorithm 1 on the dispatch fast path — a
// reused Allocator over its scratch buffers. The paper reports a ~1us
// firmware tail for this operation; the software implementation should be
// comfortably inside that, at 0 allocs/op.
func BenchmarkGenerateMask(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	counters := make([]int, 60)
	for i := range counters {
		counters[i] = rng.Intn(3)
	}
	req := Request{NumCUs: 22, OverlapLimit: 0, MinGrant: 15}
	a := NewAllocator(gpu.MI50)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = a.Generate(counters, req)
	}
}

// BenchmarkGenerateMaskCold measures the compatibility wrapper, which
// builds a throwaway Allocator per call — the cost cold paths pay.
func BenchmarkGenerateMaskCold(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	counters := make([]int, 60)
	for i := range counters {
		counters[i] = rng.Intn(3)
	}
	req := Request{NumCUs: 22, OverlapLimit: 0, MinGrant: 15}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = GenerateMask(gpu.MI50, counters, req)
	}
}

func BenchmarkGenerateMaskOversubscribed(b *testing.B) {
	counters := make([]int, 60)
	for i := range counters {
		counters[i] = 2
	}
	req := Request{NumCUs: 40, OverlapLimit: NoOverlapLimit}
	a := NewAllocator(gpu.MI50)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = a.Generate(counters, req)
	}
}

// BenchmarkMaskCacheIdleHit measures the steady state of a lone stream:
// every allocation lands on an idle device and hits the idle-key map.
func BenchmarkMaskCacheIdleHit(b *testing.B) {
	c := NewMaskCache(gpu.MI50)
	occ := &fakeOcc{counters: make([]int, 60)}
	req := Request{NumCUs: 22, OverlapLimit: 0, MinGrant: 60}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = c.Generate(occ, req)
	}
}

// BenchmarkMaskCacheBusyHit measures a repeated allocation against an
// unchanged busy occupancy state — the generation-keyed single entry.
func BenchmarkMaskCacheBusyHit(b *testing.B) {
	c := NewMaskCache(gpu.MI50)
	counters := make([]int, 60)
	for i := range counters {
		counters[i] = i % 3
	}
	occ := &fakeOcc{counters: counters, gen: 7, busy: 40}
	req := Request{NumCUs: 22, OverlapLimit: 0, MinGrant: 15}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = c.Generate(occ, req)
	}
}
