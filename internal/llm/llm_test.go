package llm

import (
	"testing"

	"krisp/internal/kernels"
)

func TestModelCatalog(t *testing.T) {
	for _, m := range All() {
		if m.Name == "" || m.Layers <= 0 || m.Hidden <= 0 {
			t.Fatalf("malformed model %+v", m)
		}
		got, ok := ByName(m.Name)
		if !ok || got.Name != m.Name {
			t.Fatalf("ByName(%q) = %+v, %v", m.Name, got, ok)
		}
		wantW := 12 * float64(m.Layers) * float64(m.Hidden) * float64(m.Hidden)
		if m.WeightBytes() != wantW {
			t.Fatalf("%s WeightBytes = %g, want %g", m.Name, m.WeightBytes(), wantW)
		}
		wantKV := 4 * float64(m.Layers) * float64(m.Hidden)
		if m.KVBytesPerToken() != wantKV {
			t.Fatalf("%s KVBytesPerToken = %g, want %g", m.Name, m.KVBytesPerToken(), wantKV)
		}
		// The phase knees must be far apart — that separation is the whole
		// right-sizing argument for this workload class.
		if m.PrefillKnee < 4*m.DecodeKnee {
			t.Fatalf("%s knees too close: prefill %d decode %d", m.Name, m.PrefillKnee, m.DecodeKnee)
		}
	}
	if _, ok := ByName("no-such-model"); ok {
		t.Fatal("ByName accepted an unknown model")
	}
}

func TestPrefillKernelShape(t *testing.T) {
	m := Small()
	pre := m.PrefillKernels(256)
	if len(pre) != 3 {
		t.Fatalf("prefill pass = %d kernels, want 3", len(pre))
	}
	for _, d := range pre {
		if d.Phase != kernels.PhasePrefill {
			t.Fatalf("kernel %s tagged %v, want prefill", d.Name, d.Phase)
		}
		if d.Work.Workgroups != m.PrefillKnee*slotsPerCU {
			t.Fatalf("kernel %s issues %d WGs, want knee %d x %d", d.Name, d.Work.Workgroups, m.PrefillKnee, slotsPerCU)
		}
	}
	// Linear GEMM cost, quadratic attention cost.
	if got := pre[0].Work.WGTime; got != m.PrefillUsPerToken*256 {
		t.Fatalf("prefill GEMM WGTime = %v, want %v", got, m.PrefillUsPerToken*256)
	}
	if got := pre[1].Work.WGTime; got != m.PrefillUsQuad*256*256/1024 {
		t.Fatalf("prefill attn WGTime = %v, want %v", got, m.PrefillUsQuad*256*256/1024)
	}
	// Longer prompts cost strictly more.
	long := m.PrefillKernels(1024)
	if long[0].Work.WGTime <= pre[0].Work.WGTime || long[1].Work.WGTime <= pre[1].Work.WGTime {
		t.Fatal("prefill cost not increasing in prompt length")
	}
	// Degenerate prompts clamp to one token.
	if z := m.PrefillKernels(0); z[0].Work.WGTime != m.PrefillUsPerToken {
		t.Fatalf("zero-prompt prefill WGTime = %v, want one-token clamp", z[0].Work.WGTime)
	}
}

func TestDecodeKernelShape(t *testing.T) {
	m := Small()
	dec := m.DecodeKernels(8, 800)
	if len(dec) != 2 {
		t.Fatalf("decode step = %d kernels, want 2", len(dec))
	}
	for _, d := range dec {
		if d.Phase != kernels.PhaseDecode {
			t.Fatalf("kernel %s tagged %v, want decode", d.Name, d.Phase)
		}
		if d.Work.Workgroups != m.DecodeKnee*slotsPerCU {
			t.Fatalf("kernel %s issues %d WGs, want knee %d x %d", d.Name, d.Work.Workgroups, m.DecodeKnee, slotsPerCU)
		}
	}
	// The GEMV streams the full weight set regardless of batch; the KV scan
	// traffic is the resident context.
	if dec[0].Work.MemBytes != m.WeightBytes() {
		t.Fatalf("decode GEMV streams %g bytes, want weights %g", dec[0].Work.MemBytes, m.WeightBytes())
	}
	if want := 800 * m.KVBytesPerToken(); dec[1].Work.MemBytes != want {
		t.Fatalf("KV scan streams %g bytes, want %g", dec[1].Work.MemBytes, want)
	}
	// Aging sequences make the step slower (more KV traffic), which is the
	// context-dependent decode cost the engine models.
	older := m.DecodeKernels(8, 1600)
	if older[1].Work.MemBytes <= dec[1].Work.MemBytes {
		t.Fatal("KV scan traffic not increasing in resident context")
	}
	// Degenerate contexts clamp to one token per sequence.
	if z := m.DecodeKernels(4, 0); z[1].Work.MemBytes != 4*m.KVBytesPerToken() {
		t.Fatalf("clamped KV scan = %g bytes, want %g", z[1].Work.MemBytes, 4*m.KVBytesPerToken())
	}
}

func TestAppendFormsDoNotAllocate(t *testing.T) {
	m := Small()
	buf := make([]kernels.Desc, 0, 8)
	allocs := testing.AllocsPerRun(100, func() {
		buf = m.AppendPrefill(buf[:0], 128)
		buf = m.AppendDecodeStep(buf, 8, 1024)
	})
	if allocs > 0 {
		t.Errorf("append into a pre-sized buffer allocated %.1f times per step, want 0", allocs)
	}
}

func TestProxyModel(t *testing.T) {
	m := Small()
	pm := m.Proxy(128, 32)
	if pm.Name != m.Name {
		t.Fatalf("proxy name = %q, want %q", pm.Name, m.Name)
	}
	ks := pm.Kernels(8)
	if len(ks) != 5 {
		t.Fatalf("proxy pass = %d kernels, want prefill(3)+decode(2)", len(ks))
	}
	pre, dec := 0, 0
	for _, d := range ks {
		switch d.Phase {
		case kernels.PhasePrefill:
			pre++
		case kernels.PhaseDecode:
			dec++
		default:
			t.Fatalf("proxy kernel %s untagged", d.Name)
		}
	}
	if pre != 3 || dec != 2 {
		t.Fatalf("proxy phases = %d prefill / %d decode", pre, dec)
	}
}
