// Package llm defines autoregressive LLM serving workloads for the KRISP
// stack: models whose inference is not a fixed kernel sequence but a
// prefill pass over the prompt followed by one decode step per generated
// token, with a KV cache that grows by one entry per sequence per token.
//
// The two phases sit at opposite ends of the minCU spectrum — prefill is
// large compute-bound GEMMs that want most of the machine, decode is
// batched GEMV plus a KV-cache scan that is bandwidth-bound and tolerates
// tiny partitions — which makes this workload class the starkest
// application of the paper's kernel-wise right-sizing argument. Kernel
// descriptors are tagged with their phase (kernels.PhasePrefill /
// kernels.PhaseDecode) so a phase-aware right-sizer can grant the two
// phases different partition sizes inside one replica.
//
// Like internal/models, the kernels here are stylized: durations are
// virtual microseconds calibrated to put prefill knees high and decode
// knees low, prefill cost linear-plus-quadratic in prompt length, and
// decode cost growing with resident context (the KV scan streams more
// bytes as sequences age) — the shape KernelSight-LM-style simulators
// preserve, not a cycle-accurate port of any particular model.
package llm

import (
	"krisp/internal/gpu"
	"krisp/internal/kernels"
	"krisp/internal/models"
	"krisp/internal/sim"
)

// slotsPerCU mirrors gpu.MI50Spec().SlotsPerCU, as in internal/models.
const slotsPerCU = 10

// Model is one autoregressive serving workload.
type Model struct {
	// Name identifies the model in workload configs and result tables.
	Name string
	// Layers and Hidden shape the memory model: weight bytes and KV-cache
	// bytes per token derive from them.
	Layers, Hidden int
	// PrefillKnee / DecodeKnee are the calibrated per-phase minimum CU
	// targets: prefill kernels issue PrefillKnee x slotsPerCU workgroups
	// (one wave at or above the knee), decode kernels DecodeKnee x
	// slotsPerCU with compute sized just under their memory time so
	// restricting below the knee is what breaks the latency budget.
	PrefillKnee, DecodeKnee int
	// MaxContext bounds prompt + output tokens per sequence.
	MaxContext int

	// PrefillUsPerToken is the linear prefill GEMM cost in virtual us per
	// prompt token; PrefillUsQuad the attention cost per (tokens^2 / 1024).
	PrefillUsPerToken, PrefillUsQuad float64
	// DecodeUs is the batched-GEMV compute time of one decode step at the
	// decode knee. The step's memory time (weights plus KV scan) usually
	// dominates; DecodeUs sits just below it so the knee is sharp.
	DecodeUs float64
}

// Small is a compact model sized so fleet simulations turn sequences over
// in a few milliseconds: ~300us decode steps, sub-millisecond prefills
// for typical prompts.
func Small() Model {
	return Model{
		Name: "llm-small", Layers: 12, Hidden: 1024,
		PrefillKnee: 40, DecodeKnee: 8, MaxContext: 2048,
		PrefillUsPerToken: 4.0, PrefillUsQuad: 0.15, DecodeUs: 250,
	}
}

// Large is a 4x heavier model: ~1.2ms decode steps and multi-millisecond
// prefills, for experiments where LLM work should dominate the fleet.
func Large() Model {
	return Model{
		Name: "llm-large", Layers: 24, Hidden: 2048,
		PrefillKnee: 52, DecodeKnee: 12, MaxContext: 4096,
		PrefillUsPerToken: 12.0, PrefillUsQuad: 0.5, DecodeUs: 900,
	}
}

// All lists the defined LLM models.
func All() []Model { return []Model{Small(), Large()} }

// ByName returns the model with the given name.
func ByName(name string) (Model, bool) {
	for _, m := range All() {
		if m.Name == name {
			return m, true
		}
	}
	return Model{}, false
}

// WeightBytes is the resident parameter footprint streamed from HBM on
// every forward pass: ~12*Hidden^2 weights per layer at one byte each
// (stylized quantized storage).
func (m Model) WeightBytes() float64 {
	return 12 * float64(m.Layers) * float64(m.Hidden) * float64(m.Hidden)
}

// KVBytesPerToken is the cache growth per sequence per resident token:
// one K and one V vector of Hidden fp16 values per layer.
func (m Model) KVBytesPerToken() float64 {
	return 4 * float64(m.Layers) * float64(m.Hidden)
}

// Kernel names follow the symbol style of ROCm traces.
const (
	namePrefillGEMM   = kernels.FamilyGEMM + "_prefill"
	namePrefillAttn   = "flash_attn_fwd_prefill"
	namePrefillPtwise = kernels.FamilyElementwise + "_prefill"
	nameDecodeGEMV    = "gemv_decode_fused"
	nameKVScan        = "paged_kv_scan_decode"
)

// AppendPrefill appends the prefill pass of one sequence with the given
// prompt length to buf and returns it: a fused QKV/FFN GEMM whose
// duration is linear in the prompt, a flash-attention kernel quadratic in
// it, and a bandwidth-bound pointwise epilogue. All three are tagged
// kernels.PhasePrefill. Append-style so callers with pre-sized buffers
// build steps without allocating.
func (m Model) AppendPrefill(buf []kernels.Desc, promptTokens int) []kernels.Desc {
	if promptTokens < 1 {
		promptTokens = 1
	}
	p := float64(promptTokens)
	wgs := m.PrefillKnee * slotsPerCU
	buf = append(buf, kernels.Desc{
		Name: namePrefillGEMM,
		Work: gpu.KernelWork{
			Workgroups:   wgs,
			ThreadsPerWG: 256,
			WGTime:       sim.Duration(m.PrefillUsPerToken * p),
			MemBytes:     m.WeightBytes(),
			Tail:         0.5,
			WaveExponent: 0.5,
		},
		InputBytes: p * float64(m.Hidden) * 2,
		Phase:      kernels.PhasePrefill,
	})
	buf = append(buf, kernels.Desc{
		Name: namePrefillAttn,
		Work: gpu.KernelWork{
			Workgroups:   wgs,
			ThreadsPerWG: 256,
			WGTime:       sim.Duration(m.PrefillUsQuad * p * p / 1024),
			MemBytes:     p * m.KVBytesPerToken(),
			Tail:         0.5,
			WaveExponent: 0.5,
		},
		InputBytes: p * float64(m.Hidden) * 2,
		Phase:      kernels.PhasePrefill,
	})
	actBytes := p * float64(m.Hidden) * 12
	buf = append(buf, kernels.Desc{
		Name: namePrefillPtwise,
		Work: gpu.KernelWork{
			Workgroups:   wgs,
			ThreadsPerWG: 256,
			WGTime:       0.05,
			MemBytes:     actBytes,
			Tail:         0.5,
		},
		InputBytes: actBytes / 2,
		Phase:      kernels.PhasePrefill,
	})
	return buf
}

// AppendDecodeStep appends one continuous-batching decode step to buf and
// returns it: a batched GEMV streaming the full weight set (amortized
// over every decoding sequence in the step, so its cost is nearly
// independent of the batch) and a KV scan whose traffic is the resident
// context of all seqs sequences — ctxTokens total tokens — which is what
// makes decode steps slower as sequences age. Both are tagged
// kernels.PhaseDecode.
func (m Model) AppendDecodeStep(buf []kernels.Desc, seqs, ctxTokens int) []kernels.Desc {
	if seqs < 1 {
		seqs = 1
	}
	if ctxTokens < seqs {
		ctxTokens = seqs
	}
	wgs := m.DecodeKnee * slotsPerCU
	buf = append(buf, kernels.Desc{
		Name: nameDecodeGEMV,
		Work: gpu.KernelWork{
			Workgroups:   wgs,
			ThreadsPerWG: 256,
			WGTime:       sim.Duration(m.DecodeUs),
			MemBytes:     m.WeightBytes(),
			Tail:         0.5,
			WaveExponent: 0.6,
		},
		InputBytes: float64(seqs) * float64(m.Hidden) * 2,
		Phase:      kernels.PhaseDecode,
	})
	kvBytes := float64(ctxTokens) * m.KVBytesPerToken()
	buf = append(buf, kernels.Desc{
		Name: nameKVScan,
		Work: gpu.KernelWork{
			Workgroups:   wgs,
			ThreadsPerWG: 256,
			WGTime:       0.05,
			MemBytes:     kvBytes,
			Tail:         0.5,
		},
		InputBytes: kvBytes,
		Phase:      kernels.PhaseDecode,
	})
	return buf
}

// PrefillKernels is the allocating convenience form of AppendPrefill.
func (m Model) PrefillKernels(promptTokens int) []kernels.Desc {
	return m.AppendPrefill(nil, promptTokens)
}

// DecodeKernels is the allocating convenience form of AppendDecodeStep.
func (m Model) DecodeKernels(seqs, ctxTokens int) []kernels.Desc {
	return m.AppendDecodeStep(nil, seqs, ctxTokens)
}

// Proxy wraps the model as a fixed-sequence models.Model — one prefill of
// avgPrompt tokens plus one decode step of batch sequences at their mean
// resident context — so LLM replicas can carry a models.Model in their
// spec and profiling tools can sweep a representative pass.
func (m Model) Proxy(avgPrompt, avgOutput int) models.Model {
	if avgPrompt < 1 {
		avgPrompt = 1
	}
	if avgOutput < 1 {
		avgOutput = 1
	}
	return models.Custom(m.Name, m.PrefillKnee, func(batch int) []kernels.Desc {
		ctx := batch * (avgPrompt + avgOutput/2)
		buf := m.AppendPrefill(nil, avgPrompt)
		return m.AppendDecodeStep(buf, batch, ctx)
	})
}
