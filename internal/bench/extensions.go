package bench

import (
	"fmt"
	"io"

	"krisp/internal/metrics"
	"krisp/internal/models"
	"krisp/internal/policies"
	"krisp/internal/profile"
	"krisp/internal/reconfig"
	"krisp/internal/sched"
	"krisp/internal/server"
)

// Fig2 reproduces the paper's motivating comparison of partition-resizing
// mechanisms (Fig. 2): the naive process-scoped restart, the GSLICE-style
// shadow instance, and KRISP's kernel-scoped resize, measured as
// time-to-effect, serving downtime, and batches stuck at the old size.
func (h *Harness) Fig2(w io.Writer) {
	title(w, "Fig 2: resizing an inference server's spatial partition")
	names := []string{"squeezenet", "albert"}
	if h.opts.Quick {
		names = names[:1]
	}
	var t table
	t.addHeader("model", "scheme", "time-to-effect", "downtime", "stale batches")
	for _, name := range names {
		m, _ := models.ByName(name)
		for _, s := range reconfig.Schemes() {
			res := reconfig.Simulate(s, reconfig.Request{
				Model: m, Batch: models.CalibrationBatch, FromCUs: 40, ToCUs: 20,
			})
			t.addRow(name, s.String(),
				formatDuration(res.TimeToEffect),
				formatDuration(res.Downtime),
				fmt.Sprint(res.StaleBatches))
		}
	}
	t.render(w)
	fmt.Fprintln(w, "process-scoped resizes pay a ~10s model reload (masked or not); kernel-scoped resizes land at the next kernel")
}

func formatDuration(us float64) string {
	switch {
	case us >= 1e6:
		return fmt.Sprintf("%.2f s", us/1e6)
	case us >= 1e3:
		return fmt.Sprintf("%.2f ms", us/1e3)
	default:
		return fmt.Sprintf("%.0f us", us)
	}
}

// LoadSweep is the open-loop extension: Poisson arrivals with dynamic
// batching swept across offered load, reporting p95 request latency per
// policy — the fluctuating-request-rate regime the paper's evaluation
// deliberately excludes but prior-work schedulers target. The useful
// shape: KRISP-I sustains the highest load before its latency knee.
func (h *Harness) LoadSweep(w io.Writer) {
	title(w, "Load sweep (extension): p95 request latency (ms) vs offered load, 4 workers of squeezenet")
	m, _ := models.ByName("squeezenet")
	rates := []float64{1000, 4000, 8000, 12000, 16000}
	if h.opts.Quick {
		rates = []float64{1000, 8000}
	}
	kinds := []policies.Kind{policies.MPSDefault, policies.StaticEqual, policies.KRISPI}

	var t table
	header := []string{"offered req/s"}
	for _, k := range kinds {
		header = append(header, k.Label()+" p95", k.Label()+" done/s")
	}
	t.addHeader(header...)
	scale := 1.0
	if h.opts.Quick {
		scale = 0.25
	}
	for _, rate := range rates {
		row := []string{fmt.Sprintf("%.0f", rate)}
		for _, k := range kinds {
			specs := make([]server.WorkerSpec, 4)
			for i := range specs {
				specs[i] = server.WorkerSpec{Model: m, Batch: models.CalibrationBatch}
			}
			cfg := server.Config{
				Policy:       k,
				Workers:      specs,
				Seed:         h.opts.Seed,
				MeasureScale: scale,
			}
			h.applyProfiles(&cfg)
			res := server.RunOpenLoop(cfg, server.Arrival{RatePerSec: rate})
			row = append(row,
				fmt.Sprintf("%.1f", res.RequestLatency.P95()/1000),
				fmt.Sprintf("%.0f", res.Completed))
		}
		t.addRow(row...)
	}
	t.render(w)
}

// Scheduler is the cluster-scale extension: a Gpulet-style epoch planner
// re-sizes and re-packs model instances as offered load moves through a
// diurnal trace, and the reconfiguration bill is compared between
// process-scoped shadow reloads and kernel-scoped partition instances —
// the paper's Fig. 2 argument at fleet scale.
func (h *Harness) Scheduler(w io.Writer) {
	title(w, "Cluster scheduler (extension): epoch replanning cost, process- vs kernel-scoped")
	planner := sched.NewPlanner(profile.DefaultConfig())
	squeeze, _ := models.ByName("squeezenet")
	albert, _ := models.ByName("albert")
	resnet, _ := models.ByName("resnet152")
	base := []sched.Demand{
		{Model: squeeze, Batch: models.CalibrationBatch},
		{Model: albert, Batch: models.CalibrationBatch},
		{Model: resnet, Batch: models.CalibrationBatch},
	}
	// A compressed diurnal trace: night, ramp, peak, evening, night.
	trace := [][]float64{
		{800, 200, 600},
		{2500, 600, 2000},
		{7000, 1100, 4500},
		{3500, 800, 2500},
		{800, 200, 600},
	}
	if h.opts.Quick {
		trace = trace[:3]
	}
	plans, report := planner.ReplanTrace(base, trace, 4, reconfig.DefaultCosts())

	var t table
	t.addHeader("epoch", "rates (rps)", "gpulets", "GPUs", "CUs used")
	for e, plan := range plans {
		used := 0
		for g := 0; g < plan.GPUs; g++ {
			used += plan.TotalCUs(g)
		}
		t.addRow(fmt.Sprint(e),
			fmt.Sprintf("%v", trace[e]),
			fmt.Sprint(len(plan.Gpulets)),
			fmt.Sprint(plan.GPUs),
			fmt.Sprint(used))
	}
	t.render(w)
	fmt.Fprintf(w, "\n%d resizes over %d epochs\n", report.Resizes, report.Epochs)
	fmt.Fprintf(w, "process-scoped reload bill: %s of background reloading (shadow instances)\n",
		formatDuration(float64(report.ProcessScopedReload)))
	fmt.Fprintf(w, "kernel-scoped reload bill:  %s\n", formatDuration(float64(report.KernelScopedReload)))
}

// Extension evaluates the paper's suggested enhancement to prior works
// (§II-D): model-wise right-sizing enforced per request through
// kernel-scoped partition instances (MRS-Request), between the epoch-based
// Model Right-Size baseline and full kernel-wise KRISP-I.
func (h *Harness) Extension(w io.Writer) {
	title(w, "Extension: request-granular model right-sizing on kernel-scoped instances")
	names := []string{"albert", "squeezenet", "resnext101", "vgg19"}
	if h.opts.Quick {
		names = names[:2]
	}
	kinds := []policies.Kind{policies.ModelRightSize, policies.MRSRequest, policies.KRISPI}

	var t table
	header := []string{"model"}
	for _, k := range kinds {
		header = append(header, k.Label()+"/2w", k.Label()+"/4w")
	}
	t.addHeader(header...)

	type acc struct{ vals [6][]float64 }
	var a acc
	for _, name := range names {
		m, _ := models.ByName(name)
		iso := h.runServer(m, models.CalibrationBatch, 1, policies.MPSDefault, nil).RPS
		row := []string{name}
		col := 0
		for _, k := range kinds {
			for _, wk := range []int{2, 4} {
				res := h.runServer(m, models.CalibrationBatch, wk, k, nil)
				norm := res.RPS / iso
				a.vals[col] = append(a.vals[col], norm)
				col++
				row = append(row, fmt.Sprintf("%.2f", norm))
			}
		}
		t.addRow(row...)
	}
	row := []string{"geomean"}
	for col := 0; col < 6; col++ {
		row = append(row, fmt.Sprintf("%.2f", metrics.Geomean(a.vals[col])))
	}
	t.addRow(row...)
	t.render(w)
	fmt.Fprintln(w, "MRS-Request re-establishes the model partition per request (no reload, no epochs);")
	fmt.Fprintln(w, "KRISP-I additionally right-sizes each kernel — the paper's full contribution.")
}
