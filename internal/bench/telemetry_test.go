package bench

import (
	"bytes"
	"testing"

	"krisp/internal/telemetry"
)

// TestTelemetryOutputByteIdentical is the harness-level half of the
// byte-identical contract: a telemetry-enabled run (registry + tracer
// shared across every grid cell) must render exactly the same experiment
// bytes as a run with telemetry off.
func TestTelemetryOutputByteIdentical(t *testing.T) {
	plain := New(Options{Seed: 7, Quick: true, Parallel: 1})
	traced := New(Options{Seed: 7, Quick: true, Parallel: 1, Telemetry: telemetry.NewHub(true)})

	var a, b bytes.Buffer
	if err := plain.Run("table4", &a); err != nil {
		t.Fatalf("plain: %v", err)
	}
	if err := traced.Run("table4", &b); err != nil {
		t.Fatalf("traced: %v", err)
	}
	if a.Len() == 0 {
		t.Fatal("no output")
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Errorf("telemetry changed experiment output\n--- off ---\n%s\n--- on ---\n%s",
			a.String(), b.String())
	}
}

// TestParallelGridSharesRegistry drives telemetry-enabled grid cells from
// the parallel harness: every cell of table4 writes the same shared
// registry (and tracer) concurrently. Run under -race this is the
// concurrent-writes exercise for the whole instrumented stack; the
// assertions check the shared handles accumulated across all cells.
func TestParallelGridSharesRegistry(t *testing.T) {
	hub := telemetry.NewHub(true)
	h := New(Options{Seed: 7, Quick: true, Parallel: 8, Telemetry: hub})

	var out bytes.Buffer
	if err := h.Run("table4", &out); err != nil {
		t.Fatalf("table4: %v", err)
	}
	if v := hub.Registry().Counter("krisp_hsa_dispatches_total{gpu=\"0\"}", "").Value(); v == 0 {
		t.Error("no dispatches recorded across the grid")
	}
	if v := hub.Registry().Counter("krisp_server_batches_total{model=\"albert\"}", "").Value(); v == 0 {
		t.Error("no albert batches recorded across the grid")
	}
	if hub.Trace().CountCat("kernel") == 0 {
		t.Error("no kernel spans recorded across the grid")
	}
}
