package bench

import (
	"fmt"
	"io"

	"krisp/internal/alloc"
	"krisp/internal/gpu"
	"krisp/internal/hsa"
	"krisp/internal/metrics"
	"krisp/internal/models"
	"krisp/internal/policies"
	"krisp/internal/server"
)

// Ablation quantifies KRISP's individual design choices (DESIGN.md §3/§4):
//
//  1. the Conserved CU distribution policy versus Distributed/Packed for
//     the per-kernel masks (the Fig. 7/8 decision, measured end to end);
//  2. the fair-share progress floor in Algorithm 1's allocation;
//  3. sensitivity of KRISP-I's advantage to the co-location interference
//     tax (how much of the win depends on sharing being destructive).
//
// All runs use 4 concurrent workers at batch 32, normalized to one
// isolated worker, geomean over a contention-sensitive model subset.
func (h *Harness) Ablation(w io.Writer) {
	title(w, "Ablation: KRISP design choices (4 workers, geomean normalized RPS)")
	names := []string{"squeezenet", "resnet152", "resnext101", "vgg19"}
	if h.opts.Quick {
		names = names[:2]
	}
	ms := make([]models.Model, len(names))
	iso := make([]float64, len(names))
	for i, n := range names {
		m, ok := models.ByName(n)
		if !ok {
			panic("bench: unknown ablation model " + n)
		}
		ms[i] = m
		iso[i] = h.runServer(m, models.CalibrationBatch, 1, policies.MPSDefault, nil).RPS
	}

	scale := 1.0
	if h.opts.Quick {
		scale = 0.25
	}
	run := func(hsaCfg hsa.Config, spec gpu.DeviceSpec) float64 {
		var vals []float64
		for i, m := range ms {
			specs := make([]server.WorkerSpec, 4)
			for j := range specs {
				specs[j] = server.WorkerSpec{Model: m, Batch: models.CalibrationBatch}
			}
			cfg := server.Config{
				Spec:         spec,
				HSA:          hsaCfg,
				Policy:       policies.KRISPI,
				Workers:      specs,
				Seed:         h.opts.Seed,
				MeasureScale: scale,
			}
			h.applyProfiles(&cfg)
			res := server.Run(cfg)
			vals = append(vals, res.RPS/iso[i])
		}
		return metrics.Geomean(vals)
	}

	var t table
	t.addHeader("variant", "geomean norm RPS")

	// 1. Distribution policy of the kernel resource masks.
	for _, p := range []alloc.Policy{alloc.Conserved, alloc.Distributed, alloc.Packed} {
		cfg := hsa.DefaultConfig()
		cfg.AllocPolicy = p
		t.addRow("alloc policy: "+p.String(), fmt.Sprintf("%.2f", run(cfg, gpu.DeviceSpec{})))
	}

	// 2. Fair-share progress floor.
	noFloor := hsa.DefaultConfig()
	noFloor.NoFairShare = true
	t.addRow("no fair-share floor", fmt.Sprintf("%.2f", run(noFloor, gpu.DeviceSpec{})))

	// 3. Interference tax sensitivity: KRISP-I itself barely moves (it
	// isolates), so this row mostly shows robustness of the result.
	for _, tax := range []float64{0, 0.5, 2.0} {
		spec := gpu.MI50Spec()
		spec.InterferenceTax = tax
		t.addRow(fmt.Sprintf("interference tax %.1f", tax),
			fmt.Sprintf("%.2f", run(hsa.DefaultConfig(), spec)))
	}

	t.render(w)
	fmt.Fprintln(w, "baseline variant is 'alloc policy: conserved' (KRISP's published design)")
}
