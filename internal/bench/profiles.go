package bench

import (
	"fmt"
	"sync"

	"krisp/internal/gpu"
	"krisp/internal/hsa"
	"krisp/internal/models"
	"krisp/internal/policies"
	"krisp/internal/profile"
	"krisp/internal/server"
)

// profileKey identifies one install-time profiling unit: a model at a
// batch size on a device spec. DeviceSpec is a flat comparable struct, so
// ablation variants (interference-tax sweeps) get their own entries.
type profileKey struct {
	spec  gpu.DeviceSpec
	model string
	batch int
}

// profileEntry lazily caches one unit's profiling outputs. The database
// and the model right-size are built independently (a KRISP cell needs
// only the DB, a model-wise cell only the right-size), each at most once.
type profileEntry struct {
	spec  gpu.DeviceSpec
	model models.Model
	batch int

	dbOnce sync.Once
	db     *profile.DB

	rsOnce sync.Once
	rs     int
}

// DB returns the unit's profiled performance database, building it on
// first use. The returned DB is shared and read-only.
func (e *profileEntry) DB() *profile.DB {
	e.dbOnce.Do(func() {
		e.db = server.BuildDB(e.spec, []server.WorkerSpec{{Model: e.model, Batch: e.batch}})
	})
	return e.db
}

// RightSize returns the unit's model-wise right-size under the default
// launch-overhead cost model, computing it on first use.
func (e *profileEntry) RightSize() int {
	e.rsOnce.Do(func() {
		prof := profile.New(profile.Config{
			Spec:           e.spec,
			Tolerance:      0.05,
			LaunchOverhead: hsa.DefaultConfig().PacketProcessTime,
		})
		e.rs = prof.ModelRightSize(e.model.Kernels(e.batch))
	})
	return e.rs
}

// profileStore is a concurrency-safe, spec-keyed cache of install-time
// profiling results shared across every cell of an experiment grid.
// Without it each grid cell re-profiles its model from scratch inside
// server.Run — identical work repeated policy x workers times, and
// repeated again on every parallel worker. The mutex only guards the map;
// the expensive builds run outside it under each entry's sync.Once, so two
// grid cells needing different models profile concurrently while two
// needing the same model share one build.
type profileStore struct {
	mu      sync.Mutex
	entries map[profileKey]*profileEntry
}

func (s *profileStore) get(spec gpu.DeviceSpec, m models.Model, batch int) *profileEntry {
	key := profileKey{spec: spec, model: m.Name, batch: batch}
	s.mu.Lock()
	if s.entries == nil {
		s.entries = make(map[profileKey]*profileEntry)
	}
	e, ok := s.entries[key]
	if !ok {
		e = &profileEntry{spec: spec, model: m, batch: batch}
		s.entries[key] = e
	}
	s.mu.Unlock()
	return e
}

// applyProfiles fills cfg.DB and cfg.RightSizes from the harness's shared
// profile store so server.Run skips its per-cell profiling passes. The
// injected values are exactly what Run would have computed itself —
// BuildDB's profiler config is independent of cfg.HSA, and right-sizes are
// injected only under the default packet-process cost they were profiled
// with — so cell output is byte-identical with or without the store
// (enforced by TestSharedProfilesMatchUnshared).
func (h *Harness) applyProfiles(cfg *server.Config) {
	// Telemetry rides along with profile injection because this is the one
	// hook every experiment's server.Config passes through.
	if cfg.Telemetry == nil {
		cfg.Telemetry = h.opts.Telemetry
	}
	if h.noProfileShare {
		return
	}
	spec := cfg.Spec
	if spec.Topo.TotalCUs() == 0 {
		spec = gpu.MI50Spec()
	}
	if cfg.DB == nil && cfg.Policy.KernelScoped() {
		cfg.DB = h.sharedDB(spec, cfg.Workers)
	}
	ppt := cfg.HSA.PacketProcessTime
	if cfg.RightSizes == nil &&
		(cfg.Policy == policies.ModelRightSize || cfg.Policy == policies.MRSRequest) &&
		(ppt == 0 || ppt == hsa.DefaultConfig().PacketProcessTime) {
		rs := make(map[string]int, len(cfg.Workers))
		for _, w := range cfg.Workers {
			key := fmt.Sprintf("%s/%d", w.Model.Name, w.Batch)
			if _, ok := rs[key]; !ok {
				rs[key] = h.profiles.get(spec, w.Model, w.Batch).RightSize()
			}
		}
		cfg.RightSizes = rs
	}
}

// sharedDB returns the cached performance database covering workers: the
// per-model cached DB directly when the cell serves one model (the common
// case — every worker of a homogeneous cell shares one pointer), or a
// merge of the per-model DBs for mixed-model cells. Entries are
// deterministic per (spec, kernel variant), so the merge equals what
// server.BuildDB would have profiled in one pass.
func (h *Harness) sharedDB(spec gpu.DeviceSpec, workers []server.WorkerSpec) *profile.DB {
	var entries []*profileEntry
	seen := make(map[profileKey]bool, len(workers))
	for _, w := range workers {
		key := profileKey{spec: spec, model: w.Model.Name, batch: w.Batch}
		if seen[key] {
			continue
		}
		seen[key] = true
		entries = append(entries, h.profiles.get(spec, w.Model, w.Batch))
	}
	if len(entries) == 1 {
		return entries[0].DB()
	}
	merged := profile.NewDB()
	for _, e := range entries {
		for _, row := range e.DB().Entries() {
			merged.Add(row)
		}
	}
	return merged
}
