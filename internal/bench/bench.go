// Package bench is the evaluation harness: one runner per table and figure
// of the paper's evaluation section (§VI), each regenerating the same rows
// or series the paper reports, printed as aligned text tables.
//
// Experiment index (see DESIGN.md for the full mapping):
//
//	Table3  — workload inventory: kernel counts, model right-size, p95
//	Table4  — max concurrent workers without SLO violation
//	Fig3    — model sensitivity to CU restriction
//	Fig4    — per-kernel minimum-required-CU traces (albert, resnext101)
//	Fig6    — kernel minCU vs kernel size and input size scatter
//	Fig7    — CU distribution policy illustration (19 CUs)
//	Fig8    — vector-multiply characterization across distribution policies
//	Fig12   — emulation overhead accounting (L_over)
//	Fig13a  — normalized throughput, 1/2/4 workers x 5 policies
//	Fig13b  — tail latency vs SLO
//	Fig13c  — energy per inference
//	Fig14   — batch-size sensitivity (geomean normalized RPS, batch 16/8)
//	Fig15   — mixed-model co-location throughput distributions
//	Fig16   — oversubscription (overlap limit) sensitivity
package bench

import (
	"context"
	"fmt"
	"io"
	"sort"

	"krisp/internal/metrics"
	"krisp/internal/models"
	"krisp/internal/parallel"
	"krisp/internal/policies"
	"krisp/internal/server"
	"krisp/internal/sim"
	"krisp/internal/telemetry"
)

// newEngine returns a fresh simulation engine for closed-form experiments.
func newEngine() *sim.Engine { return sim.New() }

// Options configures a harness run.
type Options struct {
	// Seed drives the simulations' jitter; fixed by default for
	// reproducible tables.
	Seed int64
	// Quick shrinks sweeps and measurement windows for smoke runs.
	Quick bool
	// Parallel is the worker count for grid experiments (Table IV, Fig 13,
	// Fig 14, Fig 15, Fig 16). Values <= 1 run every cell inline on the
	// calling goroutine. Each grid cell is a pure function of its
	// configuration and the seed — one engine and one RNG per cell, no
	// shared mutable state — so any worker count produces byte-identical
	// output; Parallel only changes wall-clock time.
	Parallel int
	// Telemetry, when non-nil, is attached to every simulation the harness
	// runs so experiment sweeps feed the metrics registry and (if the hub
	// carries a tracer) the Chrome trace. Telemetry only observes — cell
	// output is byte-identical with or without it.
	Telemetry *telemetry.Hub
}

// DefaultOptions returns the settings used for the published tables.
func DefaultOptions() Options { return Options{Seed: 42} }

// Harness runs experiments, memoizing the expensive shared evaluations.
type Harness struct {
	opts Options
	// evals memoizes MainEval by batch size.
	evals map[int]*MainEval
	// profiles shares install-time profiling (performance DBs and model
	// right-sizes) across all cells of a grid, including parallel ones.
	profiles profileStore
	// noProfileShare disables the shared store so determinism tests can
	// compare against per-cell profiling.
	noProfileShare bool
}

// New creates a Harness.
func New(opts Options) *Harness {
	return &Harness{opts: opts, evals: make(map[int]*MainEval)}
}

// WorkerCounts are the concurrency levels of the paper's main evaluation.
var WorkerCounts = []int{1, 2, 4}

// Cell is one (model, policy, workers) measurement of the main evaluation.
type Cell struct {
	Model   string
	Policy  policies.Kind
	Workers int
	Batch   int

	// RPS is aggregate requests/second; NormRPS is normalized to one
	// isolated worker of the same model.
	RPS, NormRPS float64
	// P95Ms is the worst per-worker p95 batch latency in milliseconds;
	// SLOMs is the 2x-isolated-p95 target; Violation marks P95Ms > SLOMs.
	P95Ms, SLOMs float64
	Violation    bool
	// EnergyPerInf is joules per request; EnergyReduction is the relative
	// saving versus the isolated baseline (positive = less energy).
	EnergyPerInf, EnergyReduction float64
	// Oversubscribed marks Model Right-Size cells whose partitions
	// overlap (the paper's open circles).
	Oversubscribed bool
}

// MainEval is the shared measurement grid behind Fig. 13, Fig. 14 and
// Table IV: every Table III model x 5 policies x 1/2/4 workers.
type MainEval struct {
	Batch    int
	Isolated map[string]server.Result // per model: 1 worker, MPS Default
	Cells    []Cell
}

// Cell returns the measurement for (model, policy, workers), or nil.
func (e *MainEval) Cell(model string, policy policies.Kind, workers int) *Cell {
	for i := range e.Cells {
		c := &e.Cells[i]
		if c.Model == model && c.Policy == policy && c.Workers == workers {
			return c
		}
	}
	return nil
}

// GeomeanNormRPS aggregates normalized throughput across models for one
// policy and worker count.
func (e *MainEval) GeomeanNormRPS(policy policies.Kind, workers int) float64 {
	var vals []float64
	for i := range e.Cells {
		c := &e.Cells[i]
		if c.Policy == policy && c.Workers == workers {
			vals = append(vals, c.NormRPS)
		}
	}
	return metrics.Geomean(vals)
}

// evalModels returns the models included in the main evaluation.
func (h *Harness) evalModels() []models.Model {
	ms := models.TableIII()
	if h.opts.Quick {
		return ms[:3]
	}
	return ms
}

// runServer executes one serving configuration.
func (h *Harness) runServer(m models.Model, batch, workers int, policy policies.Kind, overlap *int) server.Result {
	specs := make([]server.WorkerSpec, workers)
	for i := range specs {
		specs[i] = server.WorkerSpec{Model: m, Batch: batch}
	}
	scale := 1.0
	if h.opts.Quick {
		scale = 0.25
	}
	cfg := server.Config{
		Policy:       policy,
		Workers:      specs,
		Seed:         h.opts.Seed,
		OverlapLimit: overlap,
		MeasureScale: scale,
	}
	h.applyProfiles(&cfg)
	return server.Run(cfg)
}

// gridMap evaluates fn for every job index in [0, n) and returns the
// results in index order. With opts.Parallel > 1 the jobs fan out over a
// bounded worker pool; otherwise they run inline. Grid jobs are pure
// functions of their index (each builds its own engine and RNG from the
// harness seed), so the fan-out cannot change any result — only
// wall-clock time.
func gridMap[T any](h *Harness, n int, fn func(i int) T) []T {
	if h.opts.Parallel > 1 && n > 1 {
		out, err := parallel.Map(context.Background(), h.opts.Parallel, n,
			func(_ context.Context, i int) (T, error) { return fn(i), nil })
		if err != nil {
			// fn cannot return an error, so this is a job panic; re-raise
			// to keep serial and parallel failure modes alike.
			panic(err)
		}
		return out
	}
	out := make([]T, n)
	for i := range out {
		out[i] = fn(i)
	}
	return out
}

// MainEval measures (and memoizes) the full policy x workers grid at the
// given batch size. The measurement fans out in two phases — isolated
// baselines, then every (model, policy, workers) cell — across
// Options.Parallel workers; cells are assembled in the fixed nested order
// regardless of completion order.
func (h *Harness) MainEval(batch int) *MainEval {
	if e, ok := h.evals[batch]; ok {
		return e
	}
	ms := h.evalModels()

	// Phase 1: per-model isolated baselines (the normalization anchors).
	isolated := gridMap(h, len(ms), func(i int) server.Result {
		return h.runServer(ms[i], batch, 1, policies.MPSDefault, nil)
	})

	// Phase 2: the full grid, one job per (model, policy, workers) cell in
	// the same nested order the serial loops used.
	type cellJob struct {
		model   models.Model
		policy  policies.Kind
		workers int
	}
	var jobs []cellJob
	for _, m := range ms {
		for _, p := range policies.All() {
			for _, w := range WorkerCounts {
				jobs = append(jobs, cellJob{m, p, w})
			}
		}
	}
	results := gridMap(h, len(jobs), func(i int) server.Result {
		j := jobs[i]
		return h.runServer(j.model, batch, j.workers, j.policy, nil)
	})

	e := &MainEval{Batch: batch, Isolated: make(map[string]server.Result)}
	for i, m := range ms {
		e.Isolated[m.Name] = isolated[i]
	}
	for i, j := range jobs {
		iso := e.Isolated[j.model.Name]
		isoP95 := iso.MaxP95() / 1000
		res := results[i]
		cell := Cell{
			Model:          j.model.Name,
			Policy:         j.policy,
			Workers:        j.workers,
			Batch:          batch,
			RPS:            res.RPS,
			NormRPS:        res.RPS / iso.RPS,
			P95Ms:          res.MaxP95() / 1000,
			SLOMs:          2 * isoP95,
			EnergyPerInf:   res.EnergyPerInference,
			Oversubscribed: res.Oversubscribed,
		}
		cell.Violation = cell.P95Ms > cell.SLOMs
		if iso.EnergyPerInference > 0 {
			cell.EnergyReduction = 1 - cell.EnergyPerInf/iso.EnergyPerInference
		}
		e.Cells = append(e.Cells, cell)
	}
	h.evals[batch] = e
	return e
}

// ---------------------------------------------------------------------------
// Rendering helpers.

// table accumulates rows and renders them column-aligned.
type table struct {
	header []string
	rows   [][]string
}

func (t *table) addHeader(cols ...string) { t.header = cols }

func (t *table) addRow(cols ...string) { t.rows = append(t.rows, cols) }

func (t *table) render(w io.Writer) {
	widths := make([]int, 0)
	measure := func(cols []string) {
		for i, c := range cols {
			if i >= len(widths) {
				widths = append(widths, 0)
			}
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	measure(t.header)
	for _, r := range t.rows {
		measure(r)
	}
	writeRow := func(cols []string) {
		for i, c := range cols {
			if i > 0 {
				fmt.Fprint(w, "  ")
			}
			fmt.Fprintf(w, "%-*s", widths[i], c)
		}
		fmt.Fprintln(w)
	}
	if len(t.header) > 0 {
		writeRow(t.header)
		total := -2
		for _, wd := range widths {
			total += wd + 2
		}
		for i := 0; i < total; i++ {
			fmt.Fprint(w, "-")
		}
		fmt.Fprintln(w)
	}
	for _, r := range t.rows {
		writeRow(r)
	}
}

func title(w io.Writer, s string) {
	fmt.Fprintf(w, "\n=== %s ===\n", s)
}

func sortedModelNames(e *MainEval) []string {
	seen := map[string]bool{}
	var names []string
	for i := range e.Cells {
		if !seen[e.Cells[i].Model] {
			seen[e.Cells[i].Model] = true
			names = append(names, e.Cells[i].Model)
		}
	}
	sort.Strings(names)
	return names
}
