package bench

import (
	"bytes"
	"testing"
)

// TestSharedProfilesMatchUnshared is the determinism guarantee behind the
// shared profile store: injecting the cached DB / right-sizes into a cell
// must be invisible in the output, because the injected values are exactly
// what server.Run would have profiled per cell. It compares a harness with
// sharing disabled (per-cell profiling, serial) against sharing enabled,
// both serial and fanned out over 8 workers, byte for byte. table4
// exercises the KRISP DB path, fig15 the mixed-model DB merge plus
// ModelRightSize injection.
func TestSharedProfilesMatchUnshared(t *testing.T) {
	for _, id := range []string{"table4", "fig15"} {
		unshared := New(Options{Seed: 7, Quick: true})
		unshared.noProfileShare = true
		var want bytes.Buffer
		if err := unshared.Run(id, &want); err != nil {
			t.Fatalf("unshared %s: %v", id, err)
		}
		if want.Len() == 0 {
			t.Fatalf("%s produced no output", id)
		}
		for _, workers := range []int{1, 8} {
			shared := New(Options{Seed: 7, Quick: true, Parallel: workers})
			var got bytes.Buffer
			if err := shared.Run(id, &got); err != nil {
				t.Fatalf("shared %s (parallel %d): %v", id, workers, err)
			}
			if !bytes.Equal(want.Bytes(), got.Bytes()) {
				t.Errorf("%s: shared-profile output differs (parallel %d)\n--- unshared ---\n%s\n--- shared ---\n%s",
					id, workers, want.String(), got.String())
			}
		}
		if len(New(Options{}).profiles.entries) != 0 {
			t.Fatal("fresh harness has profile entries")
		}
	}
}
