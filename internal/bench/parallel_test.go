package bench

import (
	"bytes"
	"testing"
)

// TestParallelGridOutputMatchesSerial is the determinism guarantee behind
// Options.Parallel: every grid cell owns its simulation engine and RNG, so
// fanning the grid across workers must produce byte-identical experiment
// output — not merely statistically similar numbers. It runs the grid
// experiments serially and at 8 workers and compares the rendered bytes.
func TestParallelGridOutputMatchesSerial(t *testing.T) {
	serial := New(Options{Seed: 7, Quick: true, Parallel: 1})
	par := New(Options{Seed: 7, Quick: true, Parallel: 8})

	// table4 exercises the MainEval grid; fig15 the pair study; fig16 the
	// overlap sweep (reusing the memoized MainEval within each harness).
	for _, id := range []string{"table4", "fig15", "fig16"} {
		var a, b bytes.Buffer
		if err := serial.Run(id, &a); err != nil {
			t.Fatalf("serial %s: %v", id, err)
		}
		if err := par.Run(id, &b); err != nil {
			t.Fatalf("parallel %s: %v", id, err)
		}
		if a.Len() == 0 {
			t.Fatalf("%s produced no output", id)
		}
		if !bytes.Equal(a.Bytes(), b.Bytes()) {
			t.Errorf("%s: parallel output differs from serial\n--- serial ---\n%s\n--- parallel ---\n%s",
				id, a.String(), b.String())
		}
	}
}

// TestGridMapOrdersAndFallsBack covers the helper directly: inline path
// for Parallel<=1, fan-out path otherwise, both index-ordered.
func TestGridMapOrdersAndFallsBack(t *testing.T) {
	for _, workers := range []int{0, 1, 4} {
		h := New(Options{Seed: 7, Parallel: workers})
		out := gridMap(h, 50, func(i int) int { return i * 3 })
		if len(out) != 50 {
			t.Fatalf("Parallel=%d: got %d results", workers, len(out))
		}
		for i, v := range out {
			if v != i*3 {
				t.Fatalf("Parallel=%d: out[%d] = %d, want %d", workers, i, v, i*3)
			}
		}
	}
}
