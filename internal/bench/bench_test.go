package bench

import (
	"bytes"
	"strconv"
	"strings"
	"testing"

	"krisp/internal/models"
	"krisp/internal/policies"
)

func quickHarness() *Harness { return New(Options{Seed: 7, Quick: true}) }

func TestExperimentsListAndDispatch(t *testing.T) {
	h := quickHarness()
	if err := h.Run("nope", &bytes.Buffer{}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
	// Every listed experiment must dispatch (the cheap ones run fully
	// here; the heavy grid-based ones are covered separately).
	cheap := []string{"table3", "fig3", "fig7", "fig8", "fig12"}
	for _, id := range cheap {
		var buf bytes.Buffer
		if err := h.Run(id, &buf); err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if buf.Len() == 0 {
			t.Errorf("%s produced no output", id)
		}
	}
}

func TestMainEvalMemoized(t *testing.T) {
	h := quickHarness()
	a := h.MainEval(models.CalibrationBatch)
	b := h.MainEval(models.CalibrationBatch)
	if a != b {
		t.Error("MainEval not memoized")
	}
	if len(a.Cells) != len(h.evalModels())*len(policies.All())*len(WorkerCounts) {
		t.Errorf("cell count = %d", len(a.Cells))
	}
	for i := range a.Cells {
		c := &a.Cells[i]
		if c.NormRPS <= 0 {
			t.Fatalf("cell %s/%v/%d: NormRPS %v", c.Model, c.Policy, c.Workers, c.NormRPS)
		}
		if c.P95Ms <= 0 || c.SLOMs <= 0 {
			t.Fatalf("cell %s/%v/%d: latency fields unset", c.Model, c.Policy, c.Workers)
		}
	}
}

func TestMainEvalNormalization(t *testing.T) {
	h := quickHarness()
	e := h.MainEval(models.CalibrationBatch)
	// One MPS-Default worker IS the baseline, so its NormRPS must be ~1.
	for _, name := range sortedModelNames(e) {
		c := e.Cell(name, policies.MPSDefault, 1)
		if c == nil {
			t.Fatalf("missing baseline cell for %s", name)
		}
		if c.NormRPS < 0.99 || c.NormRPS > 1.01 {
			t.Errorf("%s baseline NormRPS = %v, want ~1", name, c.NormRPS)
		}
		if c.Violation {
			t.Errorf("%s baseline violates its own SLO", name)
		}
	}
}

func TestGeomeanNormRPS(t *testing.T) {
	h := quickHarness()
	e := h.MainEval(models.CalibrationBatch)
	g := e.GeomeanNormRPS(policies.MPSDefault, 1)
	if g < 0.99 || g > 1.01 {
		t.Errorf("baseline geomean = %v, want ~1", g)
	}
	if e.GeomeanNormRPS(policies.KRISPI, 4) <= 1 {
		t.Error("KRISP-I at 4 workers should improve on isolated throughput")
	}
}

func TestTable4Renders(t *testing.T) {
	h := quickHarness()
	var buf bytes.Buffer
	h.Table4(&buf)
	out := buf.String()
	if !strings.Contains(out, "KRISP-I") {
		t.Errorf("Table4 missing policy column: %s", out)
	}
	for _, m := range h.evalModels() {
		if !strings.Contains(out, m.Name) {
			t.Errorf("Table4 missing model %s", m.Name)
		}
	}
}

func TestFig13Renders(t *testing.T) {
	h := quickHarness()
	for _, id := range []string{"fig13a", "fig13b", "fig13c"} {
		var buf bytes.Buffer
		if err := h.Run(id, &buf); err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if !strings.Contains(buf.String(), "albert") {
			t.Errorf("%s output missing model rows", id)
		}
	}
}

func TestFig16OverlapSweep(t *testing.T) {
	h := quickHarness()
	var buf bytes.Buffer
	h.Fig16(&buf)
	out := buf.String()
	for _, lim := range []string{"0", "31", "60"} {
		if !strings.Contains(out, lim) {
			t.Errorf("Fig16 missing limit %s row", lim)
		}
	}
}

func TestFig8ShowsPackedSpike(t *testing.T) {
	h := New(Options{Seed: 7}) // full sweep for the 16-CU row
	var buf bytes.Buffer
	h.Fig8(&buf)
	lines := strings.Split(buf.String(), "\n")
	var at15, at16 struct{ packed, conserved float64 }
	for _, l := range lines {
		fields := strings.Fields(l)
		if len(fields) < 4 {
			continue
		}
		n, err := strconv.Atoi(fields[0])
		if err != nil {
			continue
		}
		p, err1 := strconv.ParseFloat(fields[2], 64)
		c, err2 := strconv.ParseFloat(fields[3], 64)
		if err1 != nil || err2 != nil {
			continue
		}
		if n == 15 {
			at15.packed, at15.conserved = p, c
		}
		if n == 16 {
			at16.packed, at16.conserved = p, c
		}
	}
	if at16.packed == 0 || at16.conserved == 0 {
		t.Fatal("Fig8 rows for 15/16 CUs not found")
	}
	// The Packed policy spills one CU into SE1 at 16 CUs: a huge spike
	// versus both its own 15-CU point and Conserved at 16.
	if at16.packed <= at15.packed || at16.packed <= 3*at16.conserved {
		t.Errorf("no packed spike at 16 CUs: packed(15)=%v packed(16)=%v conserved(16)=%v",
			at15.packed, at16.packed, at16.conserved)
	}
}
