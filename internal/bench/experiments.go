package bench

import (
	"fmt"
	"io"
	"sort"

	"krisp/internal/alloc"
	"krisp/internal/core"
	"krisp/internal/energy"
	"krisp/internal/gpu"
	"krisp/internal/hsa"
	"krisp/internal/kernels"
	"krisp/internal/metrics"
	"krisp/internal/models"
	"krisp/internal/policies"
	"krisp/internal/profile"
	"krisp/internal/server"
)

// Experiments lists every runnable experiment id.
func Experiments() []string {
	return []string{
		"fig2", "table3", "table4", "fig3", "fig4", "fig6", "fig7", "fig8",
		"fig12", "fig13a", "fig13b", "fig13c", "fig14", "fig15", "fig16",
		"ablation", "extension", "loadsweep", "scheduler",
	}
}

// Run executes one experiment by id, writing its report to w.
func (h *Harness) Run(id string, w io.Writer) error {
	switch id {
	case "fig2":
		h.Fig2(w)
	case "table3":
		h.Table3(w)
	case "table4":
		h.Table4(w)
	case "fig3":
		h.Fig3(w)
	case "fig4":
		h.Fig4(w)
	case "fig6":
		h.Fig6(w)
	case "fig7":
		h.Fig7(w)
	case "fig8":
		h.Fig8(w)
	case "fig12":
		h.Fig12(w)
	case "fig13a":
		h.Fig13a(w)
	case "fig13b":
		h.Fig13b(w)
	case "fig13c":
		h.Fig13c(w)
	case "fig14":
		h.Fig14(w)
	case "fig15":
		h.Fig15(w)
	case "fig16":
		h.Fig16(w)
	case "ablation":
		h.Ablation(w)
	case "extension":
		h.Extension(w)
	case "loadsweep":
		h.LoadSweep(w)
	case "scheduler":
		h.Scheduler(w)
	default:
		return fmt.Errorf("bench: unknown experiment %q (available: %v)", id, Experiments())
	}
	return nil
}

// Table3 reproduces Table III: per-model kernel count, profiled model
// right-size, and isolated 95% latency, alongside the paper's values.
func (h *Harness) Table3(w io.Writer) {
	title(w, "Table III: inference workloads (measured vs paper)")
	p := profile.New(profile.DefaultConfig())
	var t table
	t.addHeader("model", "kernels", "paper", "right-size", "paper", "p95 ms", "paper")
	for _, m := range models.TableIII() {
		ks := m.Kernels(models.CalibrationBatch)
		rs := p.ModelRightSize(ks)
		iso := h.runServer(m, models.CalibrationBatch, 1, policies.MPSDefault, nil)
		t.addRow(m.Name,
			fmt.Sprint(len(ks)), fmt.Sprint(m.PaperKernels),
			fmt.Sprint(rs), fmt.Sprint(m.PaperRightSize),
			fmt.Sprintf("%.0f", iso.MaxP95()/1000), fmt.Sprintf("%.0f", m.PaperP95Ms))
	}
	t.render(w)
}

// Table4 reproduces Table IV: the maximum concurrent workers (1/2/4)
// serving each model without violating the 2x-isolated-p95 SLO.
func (h *Harness) Table4(w io.Writer) {
	title(w, "Table IV: max concurrent workers without SLO violation")
	e := h.MainEval(models.CalibrationBatch)
	var t table
	header := []string{"model"}
	for _, p := range policies.All() {
		header = append(header, p.Label())
	}
	t.addHeader(header...)
	for _, name := range sortedModelNames(e) {
		row := []string{name}
		for _, p := range policies.All() {
			best := 0
			for _, wk := range WorkerCounts {
				c := e.Cell(name, p, wk)
				if c != nil && !c.Violation && wk > best {
					best = wk
				}
			}
			row = append(row, fmt.Sprint(best))
		}
		t.addRow(row...)
	}
	t.render(w)
}

// Fig3 reproduces the model CU-restriction sensitivity sweep: normalized
// throughput and isolated latency versus active CUs.
func (h *Harness) Fig3(w io.Writer) {
	title(w, "Fig 3: model sensitivity to GPU resource restriction")
	p := profile.New(profile.DefaultConfig())
	step := 4
	if h.opts.Quick {
		step = 12
	}
	var t table
	t.addHeader("model", "CUs", "norm throughput", "latency ms")
	for _, m := range models.All() {
		sweep := p.CUSweep(m.Kernels(models.CalibrationBatch))
		for _, pt := range sweep {
			if pt.CUs%step != 0 && pt.CUs != 1 {
				continue
			}
			t.addRow(m.Name, fmt.Sprint(pt.CUs),
				fmt.Sprintf("%.3f", pt.Throughput),
				fmt.Sprintf("%.1f", float64(pt.Latency)/1000))
		}
	}
	t.render(w)
}

// Fig4 reproduces the per-kernel minimum-required-CU traces for albert and
// resnext101, showing the phase behaviour within an inference pass.
func (h *Harness) Fig4(w io.Writer) {
	title(w, "Fig 4: kernel traces of minimum required CUs")
	p := profile.New(profile.DefaultConfig())
	for _, name := range []string{"albert", "resnext101"} {
		m, _ := models.ByName(name)
		ks := m.Kernels(models.CalibrationBatch)
		fmt.Fprintf(w, "\n%s (%d kernels): seq=minCU\n", name, len(ks))
		col := 0
		for i, k := range ks {
			fmt.Fprintf(w, "%4d=%-3d", i, p.KernelMinCU(k.Work))
			col++
			if col%10 == 0 {
				fmt.Fprintln(w)
			}
		}
		if col%10 != 0 {
			fmt.Fprintln(w)
		}
		// Distribution summary.
		var lo, mid, hi int
		for _, k := range ks {
			switch mc := p.KernelMinCU(k.Work); {
			case mc <= 15:
				lo++
			case mc < 30:
				mid++
			default:
				hi++
			}
		}
		fmt.Fprintf(w, "summary: %d kernels <=15 CUs, %d in 16-29, %d >=30\n", lo, mid, hi)
	}
}

// Fig6 reproduces the kernel scatter: minimum required CUs versus kernel
// size (total threads, Fig. 6a) and input size (Fig. 6b), by kernel family.
func (h *Harness) Fig6(w io.Writer) {
	title(w, "Fig 6: kernel minCU vs kernel size and input size")
	p := profile.New(profile.DefaultConfig())
	db := profile.NewDB()
	for _, m := range models.All() {
		db.Profile(p, m.Kernels(models.CalibrationBatch))
	}
	entries := db.Entries()
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].Name != entries[j].Name {
			return entries[i].Name < entries[j].Name
		}
		return entries[i].Workgroups < entries[j].Workgroups
	})

	var t table
	t.addHeader("kernel", "threads", "input KB", "minCU")
	threadLimit := gpu.MI50Spec().Topo.TotalCUs() * 2560
	overLimitTolerant := 0
	for _, e := range entries {
		threads := e.Workgroups * e.ThreadsPerWG
		t.addRow(e.Name, fmt.Sprint(threads),
			fmt.Sprintf("%.0f", e.InputBytes/1024), fmt.Sprint(e.MinCU))
		if threads > threadLimit && e.MinCU < 30 {
			overLimitTolerant++
		}
	}
	t.render(w)
	fmt.Fprintf(w, "\n%d profiled kernel variants; %d exceed the GPU's %d-thread limit yet need < 30 CUs\n",
		len(entries), overLimitTolerant, threadLimit)
	fmt.Fprintln(w, "(the paper's observation: kernel size and input size do not predict minCU)")
}

// Fig7 reproduces the allocation-policy illustration: 19 CUs across 4 SEs
// under the three distribution policies.
func (h *Harness) Fig7(w io.Writer) {
	title(w, "Fig 7: distributing 19 CUs across 4 SEs")
	topo := gpu.MI50
	for _, p := range []alloc.Policy{alloc.Distributed, alloc.Packed, alloc.Conserved} {
		mask := alloc.GenerateMask(topo, nil, alloc.Request{
			NumCUs: 19, OverlapLimit: alloc.NoOverlapLimit, Policy: p,
		})
		fmt.Fprintf(w, "%-12s %s  (%d CUs over %d SEs)\n",
			p.String(), mask.Format(topo), mask.Count(), len(mask.UsedSEs(topo)))
	}
}

// Fig8 reproduces the vector-multiply characterization: isolated latency
// and energy versus active CU count for each distribution policy,
// exhibiting the Packed spikes at 16/31/46 and the Distributed dips below
// one full SE.
func (h *Harness) Fig8(w io.Writer) {
	title(w, "Fig 8: vec_mult latency/energy vs CUs by distribution policy")
	spec := gpu.MI50Spec()
	power := energy.MI50Power()
	dev := gpu.NewDevice(newEngine(), spec, nil)
	work := kernels.VecMult(360).Work

	var t table
	t.addHeader("CUs", "distributed us", "packed us", "conserved us",
		"distributed J", "packed J", "conserved J")
	step := 1
	if h.opts.Quick {
		step = 5
	}
	for n := 1; n <= spec.Topo.TotalCUs(); n += step {
		row := []string{fmt.Sprint(n)}
		var lat [3]float64
		for i, p := range []alloc.Policy{alloc.Distributed, alloc.Packed, alloc.Conserved} {
			mask := alloc.GenerateMask(spec.Topo, nil, alloc.Request{
				NumCUs: n, OverlapLimit: alloc.NoOverlapLimit, Policy: p,
			})
			lat[i] = float64(dev.IsolatedDuration(work, mask))
			row = append(row, fmt.Sprintf("%.1f", lat[i]))
		}
		for _, l := range lat {
			row = append(row, fmt.Sprintf("%.4f", power.Power(n)*l/1e6))
		}
		t.addRow(row...)
	}
	t.render(w)
}

// Fig12 reproduces the §V-B emulation overhead accounting: the baseline
// latency with and without emulated kernel-scoped partitioning, the
// derived L_over, and a validation that subtracting L_over from an
// emulated KRISP run recovers the native-support latency.
func (h *Harness) Fig12(w io.Writer) {
	title(w, "Fig 12 / §V-B: emulation overhead accounting")
	var t table
	t.addHeader("model", "kernels", "L_real ms", "L_emu ms", "L_over ms",
		"us/kernel", "native ms", "emu-adj ms", "err %")
	for _, m := range h.evalModels() {
		ks := m.Kernels(models.CalibrationBatch)
		est := core.EstimateOverhead(gpu.MI50Spec(), hsa.DefaultConfig(), ks)

		native := h.runServer(m, models.CalibrationBatch, 1, policies.KRISPI, nil)
		emulated := h.runServerEmulated(m, models.CalibrationBatch)
		nativeMean := native.Workers[0].BatchLatency.Mean() / 1000
		adj := est.Adjust(emulated.Workers[0].BatchLatency.Mean()) / 1000
		errPct := 0.0
		if nativeMean > 0 {
			errPct = (adj - nativeMean) / nativeMean * 100
		}
		t.addRow(m.Name, fmt.Sprint(len(ks)),
			fmt.Sprintf("%.1f", est.LRealBase/1000),
			fmt.Sprintf("%.1f", est.LEmuBase/1000),
			fmt.Sprintf("%.1f", est.LOver/1000),
			fmt.Sprintf("%.1f", float64(est.LOver)/float64(len(ks))),
			fmt.Sprintf("%.1f", nativeMean),
			fmt.Sprintf("%.1f", adj),
			fmt.Sprintf("%+.1f", errPct))
	}
	t.render(w)
	fmt.Fprintln(w, "L_over = L_emu_base - L_real_base; emu-adj = emulated KRISP latency - L_over (should match native)")
}

// Fig13a reproduces the main throughput result: RPS normalized to one
// isolated worker, per model x policy x 1/2/4 workers.
func (h *Harness) Fig13a(w io.Writer) {
	title(w, "Fig 13a: normalized throughput (batch 32)")
	e := h.MainEval(models.CalibrationBatch)
	h.renderMainGrid(w, e, func(c *Cell) string {
		mark := ""
		if c.Oversubscribed {
			mark = "o" // the paper's open-circle oversubscription marker
		}
		return fmt.Sprintf("%.2f%s", c.NormRPS, mark)
	})
	var t table
	t.addHeader("geomean", "1w", "2w", "4w")
	for _, p := range policies.All() {
		t.addRow(p.Label(),
			fmt.Sprintf("%.2f", e.GeomeanNormRPS(p, 1)),
			fmt.Sprintf("%.2f", e.GeomeanNormRPS(p, 2)),
			fmt.Sprintf("%.2f", e.GeomeanNormRPS(p, 4)))
	}
	fmt.Fprintln(w)
	t.render(w)
}

// Fig13b reproduces the tail-latency result: worst per-worker p95 versus
// the 2x-isolated SLO; violations are marked.
func (h *Harness) Fig13b(w io.Writer) {
	title(w, "Fig 13b: p95 tail latency in ms (SLO = 2x isolated; * = violation)")
	e := h.MainEval(models.CalibrationBatch)
	h.renderMainGrid(w, e, func(c *Cell) string {
		mark := ""
		if c.Violation {
			mark = "*"
		}
		return fmt.Sprintf("%.0f%s", c.P95Ms, mark)
	})
}

// Fig13c reproduces the energy-per-inference result, as percentage change
// versus the isolated baseline (negative = saving).
func (h *Harness) Fig13c(w io.Writer) {
	title(w, "Fig 13c: energy per inference (% change vs isolated)")
	e := h.MainEval(models.CalibrationBatch)
	h.renderMainGrid(w, e, func(c *Cell) string {
		return fmt.Sprintf("%+.0f%%", -c.EnergyReduction*100)
	})
	var t table
	t.addHeader("geomean saving", "2w", "4w")
	for _, p := range policies.All() {
		var s2, s4 []float64
		for i := range e.Cells {
			c := &e.Cells[i]
			if c.Policy != p || c.EnergyReduction <= 0 {
				continue
			}
			if c.Workers == 2 {
				s2 = append(s2, c.EnergyReduction)
			}
			if c.Workers == 4 {
				s4 = append(s4, c.EnergyReduction)
			}
		}
		t.addRow(p.Label(), fmt.Sprintf("%.0f%%", mean(s2)*100), fmt.Sprintf("%.0f%%", mean(s4)*100))
	}
	fmt.Fprintln(w)
	t.render(w)
}

// Fig14 reproduces the batch-size sensitivity: geomean normalized RPS
// across models at batch 16 and batch 8.
func (h *Harness) Fig14(w io.Writer) {
	title(w, "Fig 14: geomean normalized RPS at batch 16 and 8")
	for _, batch := range []int{16, 8} {
		e := h.MainEval(batch)
		var t table
		t.addHeader(fmt.Sprintf("batch %d", batch), "1w", "2w", "4w")
		for _, p := range policies.All() {
			t.addRow(p.Label(),
				fmt.Sprintf("%.2f", e.GeomeanNormRPS(p, 1)),
				fmt.Sprintf("%.2f", e.GeomeanNormRPS(p, 2)),
				fmt.Sprintf("%.2f", e.GeomeanNormRPS(p, 4)))
		}
		t.render(w)
		fmt.Fprintln(w)
	}
}

// Fig15 reproduces the mixed-model co-location study: every pair of
// distinct models served by two workers, reported as the distribution of
// aggregate normalized throughput per policy.
func (h *Harness) Fig15(w io.Writer) {
	title(w, "Fig 15: co-located mixed model pairs (normalized aggregate RPS distribution)")
	ms := h.evalModels()
	e := h.MainEval(models.CalibrationBatch)

	// One job per (policy, model pair), flattened so the whole study fans
	// out at once; vals are reassembled per policy in pair order below.
	kinds := []policies.Kind{policies.MPSDefault, policies.ModelRightSize, policies.KRISPO, policies.KRISPI}
	type pairJob struct {
		policy policies.Kind
		a, b   models.Model
	}
	var jobs []pairJob
	for _, p := range kinds {
		for i := 0; i < len(ms); i++ {
			for j := i + 1; j < len(ms); j++ {
				jobs = append(jobs, pairJob{p, ms[i], ms[j]})
			}
		}
	}
	vals := gridMap(h, len(jobs), func(i int) float64 {
		job := jobs[i]
		cfg := server.Config{
			Policy: job.policy,
			Workers: []server.WorkerSpec{
				{Model: job.a, Batch: models.CalibrationBatch},
				{Model: job.b, Batch: models.CalibrationBatch},
			},
			Seed: h.opts.Seed,
		}
		h.applyProfiles(&cfg)
		res := server.Run(cfg)
		// Normalize each worker's throughput to its model's isolated
		// rate, then sum — 2.0 means both ran at full isolated speed.
		isoA := e.Isolated[job.a.Name].RPS
		isoB := e.Isolated[job.b.Name].RPS
		wa := float64(res.Workers[0].Requests) / float64(res.WindowUs) * 1e6
		wb := float64(res.Workers[1].Requests) / float64(res.WindowUs) * 1e6
		return wa/isoA + wb/isoB
	})

	var t table
	t.addHeader("policy", "min", "q1", "median", "q3", "max", "pairs")
	perPolicy := len(jobs) / len(kinds)
	for k, p := range kinds {
		pv := vals[k*perPolicy : (k+1)*perPolicy]
		box := metrics.BoxOf(append([]float64(nil), pv...))
		t.addRow(p.Label(),
			fmt.Sprintf("%.2f", box.Min), fmt.Sprintf("%.2f", box.Q1),
			fmt.Sprintf("%.2f", box.Median), fmt.Sprintf("%.2f", box.Q3),
			fmt.Sprintf("%.2f", box.Max), fmt.Sprint(len(pv)))
	}
	t.render(w)
}

// Fig16 reproduces the oversubscription sensitivity: normalized RPS versus
// the allowed overlap limit, for 2 and 4 workers, geomean across a
// contention-sensitive model subset. KRISP-I is the 0 end, KRISP-O the 60
// end; the spikes at 16/31/46 come from SE-boundary interactions.
func (h *Harness) Fig16(w io.Writer) {
	title(w, "Fig 16: sensitivity to oversubscription (overlap) limit")
	names := []string{"resnet152", "squeezenet", "shufflenet", "resnext101"}
	if h.opts.Quick {
		names = names[:2]
	}
	limits := []int{0, 2, 4, 8, 12, 16, 20, 24, 28, 31, 36, 40, 46, 52, 60}
	if h.opts.Quick {
		limits = []int{0, 16, 31, 46, 60}
	}
	// The isolated baselines come from the (memoized) main evaluation;
	// compute it up front so the sweep below is purely independent jobs.
	iso := h.MainEval(models.CalibrationBatch).Isolated

	// One job per (limit, model, workers) point, flattened across the
	// whole sweep; rows are reassembled per limit in the original order.
	type sweepJob struct {
		limit   int
		model   models.Model
		workers int
	}
	var jobs []sweepJob
	for _, lim := range limits {
		for _, name := range names {
			m, _ := models.ByName(name)
			for _, wk := range []int{2, 4} {
				jobs = append(jobs, sweepJob{lim, m, wk})
			}
		}
	}
	norms := gridMap(h, len(jobs), func(i int) float64 {
		j := jobs[i]
		lim := j.limit
		res := h.runServer(j.model, models.CalibrationBatch, j.workers, policies.KRISPI, &lim)
		return res.RPS / iso[j.model.Name].RPS
	})

	var t table
	t.addHeader("overlap limit", "2 workers", "4 workers")
	i := 0
	for _, lim := range limits {
		var g2, g4 []float64
		for range names {
			g2 = append(g2, norms[i])
			g4 = append(g4, norms[i+1])
			i += 2
		}
		t.addRow(fmt.Sprint(lim),
			fmt.Sprintf("%.2f", metrics.Geomean(g2)),
			fmt.Sprintf("%.2f", metrics.Geomean(g4)))
	}
	t.render(w)
}

// renderMainGrid prints one value per (model, workers x policy) cell.
func (h *Harness) renderMainGrid(w io.Writer, e *MainEval, format func(*Cell) string) {
	var t table
	header := []string{"model"}
	for _, p := range policies.All() {
		for _, wk := range WorkerCounts {
			header = append(header, fmt.Sprintf("%s/%dw", shortPolicy(p), wk))
		}
	}
	t.addHeader(header...)
	for _, name := range sortedModelNames(e) {
		row := []string{name}
		for _, p := range policies.All() {
			for _, wk := range WorkerCounts {
				c := e.Cell(name, p, wk)
				if c == nil {
					row = append(row, "-")
					continue
				}
				row = append(row, format(c))
			}
		}
		t.addRow(row...)
	}
	t.render(w)
}

func shortPolicy(p policies.Kind) string {
	switch p {
	case policies.MPSDefault:
		return "mps"
	case policies.StaticEqual:
		return "stat"
	case policies.ModelRightSize:
		return "mrs"
	case policies.KRISPO:
		return "kr-o"
	case policies.KRISPI:
		return "kr-i"
	}
	return "?"
}

func mean(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range vals {
		s += v
	}
	return s / float64(len(vals))
}

// runServerEmulated runs one KRISP-I worker through the emulated path.
func (h *Harness) runServerEmulated(m models.Model, batch int) server.Result {
	cfg := server.Config{
		Policy:         policies.KRISPI,
		Workers:        []server.WorkerSpec{{Model: m, Batch: batch}},
		Seed:           h.opts.Seed,
		ForceEmulation: true,
	}
	h.applyProfiles(&cfg)
	return server.Run(cfg)
}
