package httpapi

import (
	"net/http"

	"krisp/internal/telemetry"
)

// handleMetrics serves the process-wide registry in the Prometheus text
// exposition format. Simulations attach telemetry.DefaultHub(), so a scrape
// during a running POST /v1/simulate sees live counters.
func handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = telemetry.Default().WritePrometheus(w)
}

// handleTelemetryDebug serves the same registry as a JSON snapshot —
// histogram buckets included — for humans and scripts that do not speak
// the Prometheus format.
func handleTelemetryDebug(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, telemetry.Default().Snapshot())
}
