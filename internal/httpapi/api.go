// Package httpapi exposes the KRISP library over HTTP as a small
// control-plane API: list workloads, fetch kernel profiles, run serving
// simulations, and regenerate paper experiments. It is the integration
// surface cmd/krisp-httpd serves and is fully exercisable with httptest.
//
//	GET  /v1/models                         workload inventory
//	GET  /v1/profile?model=albert&batch=32  per-kernel minCU profile
//	POST /v1/simulate                       run one serving scenario
//	GET  /v1/experiments                    list experiment ids
//	GET  /v1/experiments/{id}?quick=1       regenerate one experiment
//	GET  /v1/chaos                          list fleet chaos scenarios
package httpapi

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"strings"

	"krisp/internal/bench"
	"krisp/internal/cluster"
	"krisp/internal/models"
	"krisp/internal/policies"
	"krisp/internal/profile"
	"krisp/internal/server"
	"krisp/internal/telemetry"
)

// Handler returns the API router.
func Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/models", handleModels)
	mux.HandleFunc("GET /v1/profile", handleProfile)
	mux.HandleFunc("POST /v1/simulate", handleSimulate)
	mux.HandleFunc("GET /v1/experiments", handleExperimentList)
	mux.HandleFunc("GET /v1/experiments/{id}", handleExperiment)
	mux.HandleFunc("GET /v1/chaos", handleChaosList)
	mux.HandleFunc("GET /metrics", handleMetrics)
	mux.HandleFunc("GET /debug/telemetry", handleTelemetryDebug)
	mux.HandleFunc("GET /debug/slo", handleSLO)
	mux.HandleFunc("GET /debug/flight", handleFlight)
	return mux
}

// jsonSafe maps the NaN that server.Result.MaxP95 reports for degenerate
// runs (no batches measured) to 0 — JSON has no NaN, and for this API a
// zero P95 already means "no data".
func jsonSafe(v float64) float64 {
	if math.IsNaN(v) {
		return 0
	}
	return v
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// ModelInfo is one row of GET /v1/models.
type ModelInfo struct {
	Name      string  `json:"name"`
	Kernels   int     `json:"kernels"`
	RightSize int     `json:"right_size_cus"`
	PaperP95  float64 `json:"paper_p95_ms"`
}

func handleModels(w http.ResponseWriter, r *http.Request) {
	p := profile.New(profile.DefaultConfig())
	out := make([]ModelInfo, 0, len(models.All()))
	for _, m := range models.All() {
		ks := m.Kernels(models.CalibrationBatch)
		out = append(out, ModelInfo{
			Name:      m.Name,
			Kernels:   len(ks),
			RightSize: p.ModelRightSize(ks),
			PaperP95:  m.PaperP95Ms,
		})
	}
	writeJSON(w, http.StatusOK, out)
}

func handleProfile(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("model")
	m, ok := models.ByName(name)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown model %q (available: %s)",
			name, strings.Join(models.Names(), ", "))
		return
	}
	batch := models.CalibrationBatch
	if b := r.URL.Query().Get("batch"); b != "" {
		v, err := strconv.Atoi(b)
		if err != nil || v < 1 {
			writeError(w, http.StatusBadRequest, "invalid batch %q", b)
			return
		}
		batch = v
	}
	p := profile.New(profile.DefaultConfig())
	db := profile.NewDB()
	db.Profile(p, m.Kernels(batch))
	writeJSON(w, http.StatusOK, db.Entries())
}

// SimulateRequest is the body of POST /v1/simulate.
type SimulateRequest struct {
	Model      string  `json:"model"`
	Policy     string  `json:"policy"`
	Workers    int     `json:"workers"`
	Batch      int     `json:"batch"`
	Seed       int64   `json:"seed"`
	Quick      bool    `json:"quick"`
	RatePerSec float64 `json:"rate_per_sec"` // >0 switches to open-loop arrivals
}

// SimulateResponse summarizes one simulation.
type SimulateResponse struct {
	Policy             string  `json:"policy"`
	Workers            int     `json:"workers"`
	RPS                float64 `json:"rps"`
	P95Ms              float64 `json:"p95_ms"`
	EnergyPerInference float64 `json:"energy_per_inference_j"`
	AvgBusyCUs         float64 `json:"avg_busy_cus"`
	Oversubscribed     bool    `json:"oversubscribed,omitempty"`
	// Open-loop only:
	OfferedRPS   float64 `json:"offered_rps,omitempty"`
	CompletedRPS float64 `json:"completed_rps,omitempty"`
	RequestP95Ms float64 `json:"request_p95_ms,omitempty"`
}

func handleSimulate(w http.ResponseWriter, r *http.Request) {
	var req SimulateRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "invalid body: %v", err)
		return
	}
	m, ok := models.ByName(req.Model)
	if !ok {
		// A bad name in a POSTed body is a malformed request, not a missing
		// resource: 400, and the message names the valid choices.
		writeError(w, http.StatusBadRequest, "unknown model %q (available: %s)",
			req.Model, strings.Join(models.Names(), ", "))
		return
	}
	kind, err := policies.ByName(req.Policy)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v (available: %s)", err, policyNames())
		return
	}
	if req.Workers < 1 || req.Workers > 16 {
		writeError(w, http.StatusBadRequest, "workers must be in [1,16], got %d", req.Workers)
		return
	}
	if req.Batch == 0 {
		req.Batch = models.CalibrationBatch
	}
	if req.Batch < 1 || req.Batch > 256 {
		writeError(w, http.StatusBadRequest, "batch must be in [1,256], got %d", req.Batch)
		return
	}
	if req.RatePerSec < 0 {
		writeError(w, http.StatusBadRequest, "rate_per_sec must be >= 0, got %v", req.RatePerSec)
		return
	}

	specs := make([]server.WorkerSpec, req.Workers)
	for i := range specs {
		specs[i] = server.WorkerSpec{Model: m, Batch: req.Batch}
	}
	cfg := server.Config{
		Policy:  kind,
		Workers: specs,
		Seed:    req.Seed,
		// The simulation runs on this goroutine for up to several wall
		// seconds; honoring the request context lets a disconnecting client
		// abandon it instead of burning the server.
		Ctx: r.Context(),
		// Feed the process-wide registry so GET /metrics sees this run live.
		Telemetry: telemetry.DefaultHub(),
	}
	if req.Quick {
		cfg.MeasureScale = 0.25
	}

	resp := SimulateResponse{Policy: kind.String(), Workers: req.Workers}
	if req.RatePerSec > 0 {
		res := server.RunOpenLoop(cfg, server.Arrival{RatePerSec: req.RatePerSec})
		if res.Interrupted {
			writeError(w, http.StatusRequestTimeout, "simulation aborted: request canceled")
			return
		}
		resp.RPS = res.RPS
		resp.P95Ms = jsonSafe(res.MaxP95() / 1000)
		resp.EnergyPerInference = res.EnergyPerInference
		resp.AvgBusyCUs = res.AvgBusyCUs
		resp.OfferedRPS = res.Offered
		resp.CompletedRPS = res.Completed
		resp.RequestP95Ms = res.RequestLatency.P95() / 1000
	} else {
		res := server.Run(cfg)
		if res.Interrupted {
			writeError(w, http.StatusRequestTimeout, "simulation aborted: request canceled")
			return
		}
		resp.RPS = res.RPS
		resp.P95Ms = jsonSafe(res.MaxP95() / 1000)
		resp.EnergyPerInference = res.EnergyPerInference
		resp.AvgBusyCUs = res.AvgBusyCUs
		resp.Oversubscribed = res.Oversubscribed
	}
	writeJSON(w, http.StatusOK, resp)
}

// policyNames lists the accepted policy spellings for error messages.
func policyNames() string {
	all := policies.All()
	names := make([]string, len(all))
	for i, p := range all {
		names[i] = p.String()
	}
	return strings.Join(names, ", ")
}

func handleExperimentList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, bench.Experiments())
}

// ChaosInfo is one row of GET /v1/chaos — a fleet chaos scenario the
// cluster simulator (and cmd/krisp-cluster -chaos) can run.
type ChaosInfo struct {
	Name        string `json:"name"`
	Description string `json:"description"`
}

func handleChaosList(w http.ResponseWriter, r *http.Request) {
	out := []ChaosInfo{}
	for _, s := range cluster.ChaosScenarios() {
		out = append(out, ChaosInfo{Name: s.Name, Description: s.Description})
	}
	writeJSON(w, http.StatusOK, out)
}

func handleExperiment(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	known := false
	for _, e := range bench.Experiments() {
		if e == id {
			known = true
			break
		}
	}
	if !known {
		writeError(w, http.StatusNotFound, "unknown experiment %q", id)
		return
	}
	quick := r.URL.Query().Get("quick") != "0"
	h := bench.New(bench.Options{Seed: 42, Quick: quick})
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if err := h.Run(id, w); err != nil {
		// Headers already sent; append the error in text.
		fmt.Fprintf(w, "\nerror: %v\n", err)
	}
}
