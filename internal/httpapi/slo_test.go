package httpapi

import (
	"encoding/json"
	"net/http"
	"testing"

	"krisp/internal/cluster"
	"krisp/internal/cluster/gateway"
	"krisp/internal/cluster/workload"
	"krisp/internal/models"
	"krisp/internal/reconfig"
	"krisp/internal/sim"
	"krisp/internal/telemetry"
)

// runObservedFleet drives a small fleet on the default telemetry hub with
// journey sampling and SLO monitors on, so the run publishes to the
// process-wide SLO board and flight recorder the debug endpoints serve.
func runObservedFleet(t *testing.T) {
	t.Helper()
	m, ok := models.ByName("squeezenet")
	if !ok {
		t.Fatal("squeezenet not found")
	}
	cfg := cluster.Config{
		Nodes:       2,
		GPUsPerNode: 2,
		Workloads: []cluster.Workload{
			{Model: m, Batch: 8, Gen: workload.Constant{RatePerSec: 2600}},
		},
		Tick:     2 * sim.Millisecond,
		Epoch:    50 * sim.Millisecond,
		Duration: 100 * sim.Millisecond,
		Seed:     7,
		Costs: reconfig.Costs{
			PartitionSetup: 2 * sim.Millisecond,
			ProcessStart:   3 * sim.Millisecond,
			ModelLoad:      10 * sim.Millisecond,
			SwapDowntime:   55 * sim.Microsecond,
		},
		Policy:    cluster.SLOAware,
		Parallel:  1,
		Gateway:   &gateway.Config{},
		Telemetry: telemetry.DefaultHub(),
		Obs:       &cluster.Observability{SampleEvery: 1, Monitors: true, FlightCap: 64},
	}
	if res := cluster.Run(cfg); res.Completed == 0 {
		t.Fatal("observed fleet completed nothing")
	}
}

func TestSLOEndpoint(t *testing.T) {
	runObservedFleet(t)
	rec := get(t, "/debug/slo")
	if rec.Code != http.StatusOK {
		t.Fatalf("/debug/slo status %d: %s", rec.Code, rec.Body)
	}
	var statuses []telemetry.SLOStatus
	if err := json.Unmarshal(rec.Body.Bytes(), &statuses); err != nil {
		t.Fatalf("decoding: %v", err)
	}
	if len(statuses) == 0 {
		t.Fatal("no SLO statuses published")
	}
	found := false
	for _, s := range statuses {
		if s.Name == "squeezenet" {
			found = true
			if s.State == "" || s.Total == 0 {
				t.Fatalf("empty status: %+v", s)
			}
		}
	}
	if !found {
		t.Fatalf("no monitor for squeezenet in %+v", statuses)
	}
}

func TestFlightEndpoint(t *testing.T) {
	runObservedFleet(t)
	rec := get(t, "/debug/flight")
	if rec.Code != http.StatusOK {
		t.Fatalf("/debug/flight status %d: %s", rec.Code, rec.Body)
	}
	var dump struct {
		Retained int    `json:"retained"`
		Total    uint64 `json:"total"`
		Journeys []struct {
			Model   string           `json:"model"`
			Outcome string           `json:"outcome"`
			Stages  map[string]int64 `json:"stages"`
		} `json:"journeys"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &dump); err != nil {
		t.Fatalf("decoding: %v", err)
	}
	if dump.Retained != len(dump.Journeys) {
		t.Fatalf("retained %d != %d journeys", dump.Retained, len(dump.Journeys))
	}

	tr := get(t, "/debug/flight?format=trace")
	if tr.Code != http.StatusOK {
		t.Fatalf("trace format status %d: %s", tr.Code, tr.Body)
	}
	var events struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(tr.Body.Bytes(), &events); err != nil {
		t.Fatalf("decoding trace: %v", err)
	}

	if rec := get(t, "/debug/flight?format=nope"); rec.Code != http.StatusBadRequest {
		t.Fatalf("bad format status %d, want 400", rec.Code)
	}
}
