package httpapi

import (
	"encoding/json"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"testing"
)

// scrapeCounter extracts one counter's value from a Prometheus exposition body.
func scrapeCounter(t *testing.T, body, name string) float64 {
	t.Helper()
	for _, line := range strings.Split(body, "\n") {
		if !strings.HasPrefix(line, name+" ") {
			continue
		}
		v, err := strconv.ParseFloat(strings.TrimPrefix(line, name+" "), 64)
		if err != nil {
			t.Fatalf("parsing %q: %v", line, err)
		}
		return v
	}
	t.Fatalf("counter %s not found in scrape:\n%s", name, body)
	return 0
}

func TestMetricsEndpoint(t *testing.T) {
	// A simulation feeds the default registry; afterwards the scrape must
	// carry the core KRISP series.
	rec := post(t, "/v1/simulate",
		`{"model":"squeezenet","policy":"krisp-i","workers":1,"quick":true}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("simulate status %d: %s", rec.Code, rec.Body)
	}

	m := get(t, "/metrics")
	if m.Code != http.StatusOK {
		t.Fatalf("/metrics status %d", m.Code)
	}
	if ct := m.Header().Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Errorf("content-type %q", ct)
	}
	body := m.Body.String()
	for _, want := range []string{
		"# TYPE krisp_hsa_dispatches_total counter",
		"krisp_gpu_busy_cus{gpu=\"0\"}",
		"krisp_server_batch_latency_ms_bucket{model=\"squeezenet\",le=\"+Inf\"}",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("scrape missing %q", want)
		}
	}
	if v := scrapeCounter(t, body, `krisp_hsa_dispatches_total{gpu="0"}`); v <= 0 {
		t.Errorf("dispatches counter %v, want > 0", v)
	}
}

func TestMetricsCounterMonotonic(t *testing.T) {
	body := `{"model":"squeezenet","policy":"krisp-i","workers":1,"quick":true}`
	if rec := post(t, "/v1/simulate", body); rec.Code != http.StatusOK {
		t.Fatalf("simulate status %d", rec.Code)
	}
	before := scrapeCounter(t, get(t, "/metrics").Body.String(),
		`krisp_hsa_dispatches_total{gpu="0"}`)
	if rec := post(t, "/v1/simulate", body); rec.Code != http.StatusOK {
		t.Fatalf("simulate status %d", rec.Code)
	}
	after := scrapeCounter(t, get(t, "/metrics").Body.String(),
		`krisp_hsa_dispatches_total{gpu="0"}`)
	if after <= before {
		t.Errorf("counter not monotonic across runs: before=%v after=%v", before, after)
	}
}

func TestTelemetryDebugEndpoint(t *testing.T) {
	if rec := post(t, "/v1/simulate",
		`{"model":"squeezenet","policy":"krisp-i","workers":1,"quick":true}`); rec.Code != http.StatusOK {
		t.Fatalf("simulate status %d", rec.Code)
	}
	rec := get(t, "/debug/telemetry")
	if rec.Code != http.StatusOK {
		t.Fatalf("/debug/telemetry status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("content-type %q", ct)
	}
	var snap []struct {
		Name string `json:"name"`
		Type string `json:"type"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatalf("decoding snapshot: %v", err)
	}
	kinds := map[string]bool{}
	found := false
	for _, s := range snap {
		kinds[s.Type] = true
		if s.Name == `krisp_hsa_dispatches_total{gpu="0"}` {
			found = true
		}
	}
	if !found {
		t.Error("snapshot missing hsa dispatch counter")
	}
	for _, k := range []string{"counter", "gauge", "histogram"} {
		if !kinds[k] {
			t.Errorf("snapshot has no %s entries", k)
		}
	}
}

func TestTelemetryEndpointsRejectPOST(t *testing.T) {
	for _, path := range []string{"/metrics", "/debug/telemetry"} {
		if rec := post(t, path, ""); rec.Code != http.StatusMethodNotAllowed {
			t.Errorf("POST %s: status %d, want 405", path, rec.Code)
		}
	}
}

// TestMetricsScrapeUnderLoad hits /metrics repeatedly while an open-loop
// simulation is writing to the shared registry from another goroutine.
func TestMetricsScrapeUnderLoad(t *testing.T) {
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(done)
		rec := post(t, "/v1/simulate",
			`{"model":"squeezenet","policy":"krisp-i","workers":2,"quick":true,"rate_per_sec":1000}`)
		if rec.Code != http.StatusOK {
			t.Errorf("open-loop simulate status %d: %s", rec.Code, rec.Body)
		}
	}()
	scrapes := 0
	for {
		select {
		case <-done:
			wg.Wait()
			if scrapes == 0 {
				t.Log("simulation finished before first scrape; scraping once after")
				if rec := get(t, "/metrics"); rec.Code != http.StatusOK {
					t.Errorf("post-run scrape status %d", rec.Code)
				}
			}
			return
		default:
			rec := get(t, "/metrics")
			if rec.Code != http.StatusOK {
				t.Fatalf("scrape under load: status %d", rec.Code)
			}
			if !strings.Contains(rec.Body.String(), "# TYPE") {
				t.Fatal("scrape under load returned no metrics")
			}
			scrapes++
		}
	}
}
