package httpapi

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func get(t *testing.T, path string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	rec := httptest.NewRecorder()
	Handler().ServeHTTP(rec, req)
	return rec
}

func post(t *testing.T, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(body))
	rec := httptest.NewRecorder()
	Handler().ServeHTTP(rec, req)
	return rec
}

func TestModelsEndpoint(t *testing.T) {
	rec := get(t, "/v1/models")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	var out []ModelInfo
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatalf("decoding: %v", err)
	}
	if len(out) != 9 {
		t.Fatalf("%d models, want 9", len(out))
	}
	for _, m := range out {
		if m.Kernels < 1 || m.RightSize < 1 || m.RightSize > 60 {
			t.Errorf("bad row %+v", m)
		}
	}
}

func TestProfileEndpoint(t *testing.T) {
	rec := get(t, "/v1/profile?model=squeezenet")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	var entries []struct {
		Name  string `json:"name"`
		MinCU int    `json:"min_cu"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &entries); err != nil {
		t.Fatalf("decoding: %v", err)
	}
	if len(entries) == 0 {
		t.Fatal("empty profile")
	}
	for _, e := range entries {
		if e.MinCU < 1 || e.MinCU > 60 {
			t.Errorf("minCU out of range: %+v", e)
		}
	}
}

func TestProfileEndpointErrors(t *testing.T) {
	if rec := get(t, "/v1/profile?model=nope"); rec.Code != http.StatusNotFound {
		t.Errorf("unknown model: status %d", rec.Code)
	}
	if rec := get(t, "/v1/profile?model=albert&batch=zero"); rec.Code != http.StatusBadRequest {
		t.Errorf("bad batch: status %d", rec.Code)
	}
}

func TestSimulateEndpoint(t *testing.T) {
	rec := post(t, "/v1/simulate",
		`{"model":"squeezenet","policy":"krisp-i","workers":2,"quick":true}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	var out SimulateResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatalf("decoding: %v", err)
	}
	if out.RPS <= 0 || out.P95Ms <= 0 || out.EnergyPerInference <= 0 {
		t.Errorf("degenerate response %+v", out)
	}
	if out.Policy != "krisp-i" || out.Workers != 2 {
		t.Errorf("echo fields wrong: %+v", out)
	}
}

func TestSimulateOpenLoop(t *testing.T) {
	rec := post(t, "/v1/simulate",
		`{"model":"squeezenet","policy":"krisp-i","workers":2,"quick":true,"rate_per_sec":1000}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	var out SimulateResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatalf("decoding: %v", err)
	}
	if out.OfferedRPS != 1000 || out.CompletedRPS <= 0 || out.RequestP95Ms <= 0 {
		t.Errorf("open-loop fields missing: %+v", out)
	}
}

func TestSimulateValidation(t *testing.T) {
	cases := []struct {
		name, body string
		want       int
	}{
		{"bad json", `{`, http.StatusBadRequest},
		{"unknown model", `{"model":"nope","policy":"krisp-i","workers":1}`, http.StatusBadRequest},
		{"unknown policy", `{"model":"albert","policy":"nope","workers":1}`, http.StatusBadRequest},
		{"zero workers", `{"model":"albert","policy":"krisp-i","workers":0}`, http.StatusBadRequest},
		{"too many workers", `{"model":"albert","policy":"krisp-i","workers":17}`, http.StatusBadRequest},
		{"huge batch", `{"model":"albert","policy":"krisp-i","workers":1,"batch":999}`, http.StatusBadRequest},
		{"negative rate", `{"model":"albert","policy":"krisp-i","workers":1,"rate_per_sec":-5}`, http.StatusBadRequest},
	}
	for _, c := range cases {
		if rec := post(t, "/v1/simulate", c.body); rec.Code != c.want {
			t.Errorf("%s: status %d, want %d (%s)", c.name, rec.Code, c.want, rec.Body)
		}
	}
	// Validation errors must say what the valid inputs are.
	rec := post(t, "/v1/simulate", `{"model":"nope","policy":"krisp-i","workers":1}`)
	if !strings.Contains(rec.Body.String(), "available") {
		t.Errorf("unknown-model error does not list models: %s", rec.Body)
	}
	rec = post(t, "/v1/simulate", `{"model":"albert","policy":"nope","workers":1}`)
	if !strings.Contains(rec.Body.String(), "krisp-i") {
		t.Errorf("unknown-policy error does not list policies: %s", rec.Body)
	}
}

func TestSimulateHonorsCanceledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	req := httptest.NewRequest(http.MethodPost, "/v1/simulate",
		strings.NewReader(`{"model":"squeezenet","policy":"krisp-i","workers":2,"quick":true}`)).
		WithContext(ctx)
	rec := httptest.NewRecorder()
	Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusRequestTimeout {
		t.Fatalf("canceled request: status %d, want %d (%s)", rec.Code, http.StatusRequestTimeout, rec.Body)
	}
}

func TestExperimentEndpoints(t *testing.T) {
	rec := get(t, "/v1/experiments")
	if rec.Code != http.StatusOK {
		t.Fatalf("list status %d", rec.Code)
	}
	var ids []string
	if err := json.Unmarshal(rec.Body.Bytes(), &ids); err != nil || len(ids) < 14 {
		t.Fatalf("experiment list: %v %v", ids, err)
	}
	rec = get(t, "/v1/experiments/fig7")
	if rec.Code != http.StatusOK {
		t.Fatalf("fig7 status %d", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "conserved") {
		t.Errorf("fig7 body missing policies: %s", rec.Body)
	}
	if rec := get(t, "/v1/experiments/nope"); rec.Code != http.StatusNotFound {
		t.Errorf("unknown experiment: status %d", rec.Code)
	}
}

func TestMethodRouting(t *testing.T) {
	if rec := post(t, "/v1/models", ""); rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("POST /v1/models: status %d, want 405", rec.Code)
	}
}

func TestChaosList(t *testing.T) {
	rec := httptest.NewRecorder()
	Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/v1/chaos", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, want 200", rec.Code)
	}
	var out []ChaosInfo
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatalf("bad json: %v", err)
	}
	names := map[string]bool{}
	for _, s := range out {
		if s.Description == "" {
			t.Fatalf("scenario %q has no description", s.Name)
		}
		names[s.Name] = true
	}
	for _, want := range []string{"gray-node", "flapping-gpu", "rack-loss", "overload-burst"} {
		if !names[want] {
			t.Fatalf("scenario %q missing from %v", want, names)
		}
	}
}
