package httpapi

import (
	"net/http"

	"krisp/internal/telemetry"
)

// handleSLO serves the latest SLO burn-rate monitor snapshots. Fleet runs
// wired to the default telemetry hub publish their monitor states (burn
// rates, alert level, transition history) to the process-wide board at run
// end; an empty array means no monitored run has published yet.
func handleSLO(w http.ResponseWriter, r *http.Request) {
	ss := telemetry.DefaultBoard().Snapshot()
	if ss == nil {
		ss = []telemetry.SLOStatus{}
	}
	writeJSON(w, http.StatusOK, ss)
}

// handleFlight dumps the flight recorder — the bounded ring of anomalous
// request journeys (shed, failed, hedged, retried, SLO-violating, or
// fault-touched) from the last fleet run on the default hub. The default
// format is JSON with per-stage latency attribution; ?format=trace returns
// the same journeys as a Chrome trace (load in Perfetto).
func handleFlight(w http.ResponseWriter, r *http.Request) {
	fl := telemetry.DefaultFlight()
	if fl == nil {
		writeError(w, http.StatusNotFound, "no flight recording published; run a fleet with journey sampling enabled")
		return
	}
	switch r.URL.Query().Get("format") {
	case "", "json":
		w.Header().Set("Content-Type", "application/json")
		_ = fl.WriteJSON(w)
	case "trace":
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Content-Disposition", `attachment; filename="flight-trace.json"`)
		_ = fl.WriteChromeTrace(w)
	default:
		writeError(w, http.StatusBadRequest, "unknown format %q (want json or trace)", r.URL.Query().Get("format"))
	}
}
