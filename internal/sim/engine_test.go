package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEngineOrdersEventsByTime(t *testing.T) {
	e := New()
	var got []Time
	for _, d := range []Duration{50, 10, 30, 20, 40} {
		d := d
		e.After(d, func() { got = append(got, e.Now()) })
	}
	e.Run()
	want := []Time{10, 20, 30, 40, 50}
	if len(got) != len(want) {
		t.Fatalf("fired %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("event %d fired at %v, want %v", i, got[i], want[i])
		}
	}
}

func TestEngineFIFOAmongSimultaneous(t *testing.T) {
	e := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(5, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("simultaneous events fired out of order: %v", order)
		}
	}
}

func TestEngineCancel(t *testing.T) {
	e := New()
	fired := false
	ev := e.After(10, func() { fired = true })
	e.Cancel(ev)
	e.Run()
	if fired {
		t.Error("canceled event fired")
	}
	if !ev.Canceled() {
		t.Error("Canceled() = false after Cancel")
	}
	// Double-cancel is a no-op.
	e.Cancel(ev)
	// Cancel nil is a no-op.
	e.Cancel(nil)
}

func TestEngineCancelDuringRun(t *testing.T) {
	e := New()
	fired := false
	var ev *Event
	ev = e.After(20, func() { fired = true })
	e.After(10, func() { e.Cancel(ev) })
	e.Run()
	if fired {
		t.Error("event canceled at t=10 still fired at t=20")
	}
}

func TestEngineReschedule(t *testing.T) {
	e := New()
	var at Time
	ev := e.After(10, func() { at = e.Now() })
	e.Reschedule(ev, 25)
	e.Run()
	if at != 25 {
		t.Errorf("rescheduled event fired at %v, want 25", at)
	}
}

func TestEngineRescheduleFiredEvent(t *testing.T) {
	e := New()
	count := 0
	ev := e.After(5, func() { count++ })
	e.Run()
	if count != 1 {
		t.Fatalf("count = %d after first run", count)
	}
	// Rescheduling a fired event creates a fresh one with the same fn.
	ev2 := e.Reschedule(ev, e.Now()+5)
	if ev2 == ev {
		t.Error("Reschedule of fired event returned the same event")
	}
	e.Run()
	if count != 2 {
		t.Errorf("count = %d after rescheduled run, want 2", count)
	}
}

func TestEngineSchedulingInPastPanics(t *testing.T) {
	e := New()
	e.After(10, func() {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Error("scheduling in the past did not panic")
		}
	}()
	e.At(5, func() {})
}

func TestEngineRunUntil(t *testing.T) {
	e := New()
	var fired []Time
	for _, d := range []Duration{10, 20, 30} {
		e.After(d, func() { fired = append(fired, e.Now()) })
	}
	e.RunUntil(20)
	if len(fired) != 2 {
		t.Fatalf("RunUntil(20) fired %d events, want 2", len(fired))
	}
	if e.Now() != 20 {
		t.Errorf("Now() = %v after RunUntil(20)", e.Now())
	}
	if e.Pending() != 1 {
		t.Errorf("Pending() = %d, want 1", e.Pending())
	}
	e.Run()
	if len(fired) != 3 {
		t.Errorf("total fired = %d, want 3", len(fired))
	}
}

func TestEngineRunForAdvancesClock(t *testing.T) {
	e := New()
	e.RunFor(100)
	if e.Now() != 100 {
		t.Errorf("Now() = %v after empty RunFor(100)", e.Now())
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	e := New()
	depth := 0
	var recurse func()
	recurse = func() {
		depth++
		if depth < 100 {
			e.After(1, recurse)
		}
	}
	e.After(1, recurse)
	e.Run()
	if depth != 100 {
		t.Errorf("depth = %d, want 100", depth)
	}
	if e.Now() != 100 {
		t.Errorf("Now() = %v, want 100", e.Now())
	}
}

func TestEngineProcessedCount(t *testing.T) {
	e := New()
	for i := 0; i < 7; i++ {
		e.After(Duration(i+1), func() {})
	}
	e.Run()
	if e.Processed() != 7 {
		t.Errorf("Processed() = %d, want 7", e.Processed())
	}
}

// Property: events always fire in nondecreasing time order regardless of the
// insertion order, including interleaved cancellations.
func TestEngineOrderingProperty(t *testing.T) {
	prop := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		e := New()
		var fired []Time
		var evs []*Event
		count := int(n%50) + 1
		for i := 0; i < count; i++ {
			d := Duration(rng.Intn(1000))
			evs = append(evs, e.After(d, func() { fired = append(fired, e.Now()) }))
		}
		// Cancel a random subset.
		canceled := 0
		for _, ev := range evs {
			if rng.Intn(4) == 0 {
				e.Cancel(ev)
				canceled++
			}
		}
		e.Run()
		if len(fired) != count-canceled {
			return false
		}
		return sort.Float64sAreSorted(fired)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkEngineScheduleAndRun(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := New()
		for j := 0; j < 1000; j++ {
			e.After(Duration(j%97), func() {})
		}
		e.Run()
	}
}
