package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEngineOrdersEventsByTime(t *testing.T) {
	e := New()
	var got []Time
	for _, d := range []Duration{50, 10, 30, 20, 40} {
		d := d
		e.After(d, func() { got = append(got, e.Now()) })
	}
	e.Run()
	want := []Time{10, 20, 30, 40, 50}
	if len(got) != len(want) {
		t.Fatalf("fired %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("event %d fired at %v, want %v", i, got[i], want[i])
		}
	}
}

func TestEngineFIFOAmongSimultaneous(t *testing.T) {
	e := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(5, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("simultaneous events fired out of order: %v", order)
		}
	}
}

func TestEngineCancel(t *testing.T) {
	e := New()
	fired := false
	ev := e.After(10, func() { fired = true })
	e.Cancel(ev)
	e.Run()
	if fired {
		t.Error("canceled event fired")
	}
	if !ev.Canceled() {
		t.Error("Canceled() = false after Cancel")
	}
	// Double-cancel is a no-op.
	e.Cancel(ev)
	// Cancel nil is a no-op.
	e.Cancel(nil)
}

func TestEngineCancelDuringRun(t *testing.T) {
	e := New()
	fired := false
	var ev *Event
	ev = e.After(20, func() { fired = true })
	e.After(10, func() { e.Cancel(ev) })
	e.Run()
	if fired {
		t.Error("event canceled at t=10 still fired at t=20")
	}
}

func TestEngineReschedule(t *testing.T) {
	e := New()
	var at Time
	ev := e.After(10, func() { at = e.Now() })
	e.Reschedule(ev, 25)
	e.Run()
	if at != 25 {
		t.Errorf("rescheduled event fired at %v, want 25", at)
	}
}

func TestEngineRescheduleFiredEvent(t *testing.T) {
	e := New()
	count := 0
	ev := e.After(5, func() { count++ })
	e.Run()
	if count != 1 {
		t.Fatalf("count = %d after first run", count)
	}
	// Rescheduling a fired event schedules a fresh event with the same fn
	// (the engine may hand back the recycled record, so only behaviour —
	// not pointer identity — is specified).
	ev2 := e.Reschedule(ev, e.Now()+5)
	if ev2.At() != e.Now()+5 {
		t.Errorf("fresh event at %v, want %v", ev2.At(), e.Now()+5)
	}
	e.Run()
	if count != 2 {
		t.Errorf("count = %d after rescheduled run, want 2", count)
	}
}

func TestEngineSchedulingInPastPanics(t *testing.T) {
	e := New()
	e.After(10, func() {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Error("scheduling in the past did not panic")
		}
	}()
	e.At(5, func() {})
}

func TestEngineRunUntil(t *testing.T) {
	e := New()
	var fired []Time
	for _, d := range []Duration{10, 20, 30} {
		e.After(d, func() { fired = append(fired, e.Now()) })
	}
	e.RunUntil(20)
	if len(fired) != 2 {
		t.Fatalf("RunUntil(20) fired %d events, want 2", len(fired))
	}
	if e.Now() != 20 {
		t.Errorf("Now() = %v after RunUntil(20)", e.Now())
	}
	if e.Pending() != 1 {
		t.Errorf("Pending() = %d, want 1", e.Pending())
	}
	e.Run()
	if len(fired) != 3 {
		t.Errorf("total fired = %d, want 3", len(fired))
	}
}

func TestEngineRunForAdvancesClock(t *testing.T) {
	e := New()
	e.RunFor(100)
	if e.Now() != 100 {
		t.Errorf("Now() = %v after empty RunFor(100)", e.Now())
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	e := New()
	depth := 0
	var recurse func()
	recurse = func() {
		depth++
		if depth < 100 {
			e.After(1, recurse)
		}
	}
	e.After(1, recurse)
	e.Run()
	if depth != 100 {
		t.Errorf("depth = %d, want 100", depth)
	}
	if e.Now() != 100 {
		t.Errorf("Now() = %v, want 100", e.Now())
	}
}

func TestEngineProcessedCount(t *testing.T) {
	e := New()
	for i := 0; i < 7; i++ {
		e.After(Duration(i+1), func() {})
	}
	e.Run()
	if e.Processed() != 7 {
		t.Errorf("Processed() = %d, want 7", e.Processed())
	}
}

// Property: events always fire in nondecreasing time order regardless of the
// insertion order, including interleaved cancellations.
func TestEngineOrderingProperty(t *testing.T) {
	prop := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		e := New()
		var fired []Time
		var evs []*Event
		count := int(n%50) + 1
		for i := 0; i < count; i++ {
			d := Duration(rng.Intn(1000))
			evs = append(evs, e.After(d, func() { fired = append(fired, e.Now()) }))
		}
		// Cancel a random subset.
		canceled := 0
		for _, ev := range evs {
			if rng.Intn(4) == 0 {
				e.Cancel(ev)
				canceled++
			}
		}
		e.Run()
		if len(fired) != count-canceled {
			return false
		}
		return sort.Float64sAreSorted(fired)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkEngineScheduleAndRun(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := New()
		for j := 0; j < 1000; j++ {
			e.After(Duration(j%97), func() {})
		}
		e.Run()
	}
}

func TestRescheduleEarlierKeepsOriginalFIFORank(t *testing.T) {
	// A is scheduled first (seq 1) at t=10; B and C are scheduled later at
	// t=5. Moving A earlier to t=5 must keep its original scheduling rank:
	// A fires before B and C, not after them.
	e := New()
	var order []string
	a := e.At(10, func() { order = append(order, "A") })
	e.At(5, func() { order = append(order, "B") })
	e.At(5, func() { order = append(order, "C") })
	e.Reschedule(a, 5)
	e.Run()
	if len(order) != 3 || order[0] != "A" || order[1] != "B" || order[2] != "C" {
		t.Errorf("fire order = %v, want [A B C]", order)
	}
}

func TestRescheduleLaterKeepsOriginalFIFORank(t *testing.T) {
	// Symmetric contract: moving A later to tie with a younger event still
	// ranks A by its original scheduling order.
	e := New()
	var order []string
	a := e.At(5, func() { order = append(order, "A") })
	e.At(10, func() { order = append(order, "B") })
	e.Reschedule(a, 10)
	e.Run()
	if len(order) != 2 || order[0] != "A" || order[1] != "B" {
		t.Errorf("fire order = %v, want [A B]", order)
	}
}

func TestRescheduleRepeatedlyFiresOnce(t *testing.T) {
	e := New()
	count := 0
	ev := e.After(10, func() { count++ })
	for i := 0; i < 50; i++ {
		ev = e.Reschedule(ev, Duration(20+i))
	}
	e.Run()
	if count != 1 {
		t.Errorf("event fired %d times after 50 reschedules, want 1", count)
	}
	if e.Now() != 69 {
		t.Errorf("fired at %v, want 69", e.Now())
	}
}

func TestInterruptPollsOnFirstEventOfEachRun(t *testing.T) {
	// Fire one event first so the processed count sits mid-stride; an
	// immediately-true interrupt must still stop the next run before it
	// fires anything (and certainly within 1024 events).
	e := New()
	e.After(1, func() {})
	e.Run()
	if e.Processed() != 1 {
		t.Fatalf("warmup processed = %d", e.Processed())
	}
	e.SetInterrupt(func() bool { return true })
	for i := 0; i < 2000; i++ {
		e.After(Duration(i+1), func() {})
	}
	before := e.Processed()
	e.Run()
	if fired := e.Processed() - before; fired >= 1024 {
		t.Errorf("run fired %d events past an always-true interrupt, want < 1024", fired)
	} else if fired != 0 {
		t.Errorf("run fired %d events past an always-true interrupt, want 0", fired)
	}
	if !e.Interrupted() {
		t.Error("Interrupted() = false")
	}
	// RunUntil honours the same contract.
	e.SetInterrupt(func() bool { return true })
	before = e.Processed()
	e.RunUntil(5000)
	if fired := e.Processed() - before; fired != 0 {
		t.Errorf("RunUntil fired %d events past an always-true interrupt", fired)
	}
}

func TestPendingExcludesLazilyCanceled(t *testing.T) {
	e := New()
	var evs []*Event
	for i := 0; i < 10; i++ {
		evs = append(evs, e.After(Duration(i+1), func() {}))
	}
	for _, ev := range evs[:4] {
		e.Cancel(ev)
	}
	if e.Pending() != 6 {
		t.Errorf("Pending() = %d after 4 lazy cancels, want 6", e.Pending())
	}
	e.Run()
	if e.Pending() != 0 {
		t.Errorf("Pending() = %d after run", e.Pending())
	}
	if e.Processed() != 6 {
		t.Errorf("Processed() = %d, want 6", e.Processed())
	}
}

func TestCanceledReportedAfterCollection(t *testing.T) {
	// Canceled() stays exact after the engine collects the record, until
	// the record is reused by a later At/After.
	e := New()
	ev := e.After(5, func() {})
	e.Cancel(ev)
	e.After(10, func() {})
	e.Run() // collects the canceled record
	if !ev.Canceled() {
		t.Error("Canceled() = false after collection")
	}
}

func TestSteadyStateSchedulingDoesNotAllocate(t *testing.T) {
	e := New()
	fn := func() {}
	// Warm the heap and free list to their high-water marks.
	for i := 0; i < 512; i++ {
		e.After(Duration(i%97+1), fn)
	}
	e.Run()
	allocs := testing.AllocsPerRun(100, func() {
		for i := 0; i < 256; i++ {
			ev := e.After(Duration(i%97+1), fn)
			if i%3 == 0 {
				e.Reschedule(ev, e.Now()+Duration(i%31+1))
			}
			if i%5 == 0 {
				e.Cancel(ev)
			}
		}
		e.Run()
	})
	if allocs > 0 {
		t.Errorf("steady-state At/Reschedule/Cancel/Run allocated %.1f times per run, want 0", allocs)
	}
}

func TestNextEventTime(t *testing.T) {
	e := New()
	if _, ok := e.NextEventTime(); ok {
		t.Error("NextEventTime on empty engine reported an event")
	}
	a := e.After(30, func() {})
	e.After(10, func() {})
	if at, ok := e.NextEventTime(); !ok || at != 10 {
		t.Errorf("NextEventTime = %v,%v, want 10,true", at, ok)
	}
	// NextEventTime must see through lazily-canceled entries at the top.
	b := e.After(5, func() {})
	e.Cancel(b)
	if at, ok := e.NextEventTime(); !ok || at != 10 {
		t.Errorf("NextEventTime after lazy cancel = %v,%v, want 10,true", at, ok)
	}
	e.RunUntil(10)
	if at, ok := e.NextEventTime(); !ok || at != 30 {
		t.Errorf("NextEventTime after RunUntil(10) = %v,%v, want 30,true", at, ok)
	}
	e.Cancel(a)
	if _, ok := e.NextEventTime(); ok {
		t.Error("NextEventTime after canceling the last event reported an event")
	}
	if e.Pending() != 0 {
		t.Errorf("Pending() = %d, want 0", e.Pending())
	}
}

func TestNextEventTimeDoesNotAllocate(t *testing.T) {
	e := New()
	fn := func() {}
	for i := 0; i < 512; i++ {
		e.After(Duration(i%97+1), fn)
	}
	e.Run()
	// A far-future sentinel keeps the engine non-empty so every probe has
	// an answer; the runs below drain only the near-term events.
	e.At(1e12, fn)
	allocs := testing.AllocsPerRun(100, func() {
		for i := 0; i < 128; i++ {
			ev := e.After(Duration(i%97+1), fn)
			if i%4 == 1 {
				e.Cancel(ev)
			}
			if _, ok := e.NextEventTime(); !ok {
				t.Fatal("warm engine reported no next event")
			}
			e.RunUntil(e.Now() + 13)
		}
		e.RunUntil(e.Now() + 200)
	})
	if allocs > 0 {
		t.Errorf("NextEventTime/RunUntil horizon loop allocated %.1f times per run, want 0", allocs)
	}
}

// TestEngineMatchesReferenceModel drives random schedule/cancel/reschedule
// operation sequences through the engine and checks the fire order against
// a naive reference: stable sort by (time, original scheduling order).
func TestEngineMatchesReferenceModel(t *testing.T) {
	type ref struct {
		at       Time
		rank     int
		id       int
		canceled bool
	}
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := New()
		var fired []int
		var refs []*ref
		var handles []*Event
		nextID := 0
		for op := 0; op < 120; op++ {
			switch k := rng.Intn(4); {
			case k <= 1 || len(refs) == 0: // schedule
				id := nextID
				nextID++
				at := Duration(rng.Intn(200))
				refs = append(refs, &ref{at: at, rank: op, id: id})
				handles = append(handles, e.At(at, func() { fired = append(fired, id) }))
			case k == 2: // cancel a random event
				i := rng.Intn(len(refs))
				if refs[i].canceled {
					continue
				}
				refs[i].canceled = true
				e.Cancel(handles[i])
			default: // reschedule a random live event
				i := rng.Intn(len(refs))
				if refs[i].canceled {
					continue
				}
				at := Duration(rng.Intn(200))
				refs[i].at = at
				handles[i] = e.Reschedule(handles[i], at)
			}
		}
		e.Run()
		var want []int
		live := make([]*ref, 0, len(refs))
		for _, r := range refs {
			if !r.canceled {
				live = append(live, r)
			}
		}
		sort.SliceStable(live, func(i, j int) bool {
			if live[i].at != live[j].at {
				return live[i].at < live[j].at
			}
			return live[i].rank < live[j].rank
		})
		for _, r := range live {
			want = append(want, r.id)
		}
		if len(fired) != len(want) {
			return false
		}
		for i := range want {
			if fired[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// replayTrace runs a small deterministic scenario on the engine and
// returns the observable fire trace: (time, label) per fired event,
// exercising scheduling, cancellation, reschedule and nested events.
func replayTrace(e *Engine) []Time {
	var trace []Time
	note := func() { trace = append(trace, e.Now()) }
	e.At(5, note)
	a := e.At(3, note)
	e.At(3, func() {
		note()
		e.After(4, note) // nested: fires at 7
	})
	e.Reschedule(a, 6)
	b := e.At(2, note)
	e.Cancel(b)
	e.RunUntil(6)
	e.At(9, note)
	e.Run()
	return trace
}

func TestResetMatchesFreshEngine(t *testing.T) {
	fresh := New()
	want := replayTrace(fresh)

	reused := New()
	// Dirty the engine thoroughly: leave pending events behind, advance the
	// clock, install an interrupt.
	reused.SetInterrupt(func() bool { return false })
	for i := 0; i < 100; i++ {
		ev := reused.After(Duration(i+1), func() {})
		if i%4 == 0 {
			reused.Cancel(ev)
		}
	}
	reused.RunUntil(50) // leaves events beyond 50 pending
	reused.Reset()

	if reused.Now() != 0 {
		t.Fatalf("Now after Reset = %v, want 0", reused.Now())
	}
	if reused.Pending() != 0 {
		t.Fatalf("Pending after Reset = %d, want 0", reused.Pending())
	}
	if reused.Processed() != 0 {
		t.Fatalf("Processed after Reset = %d, want 0", reused.Processed())
	}
	got := replayTrace(reused)
	if len(got) != len(want) {
		t.Fatalf("trace length %d after Reset, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("trace[%d] = %v after Reset, want %v", i, got[i], want[i])
		}
	}
	if reused.seq != fresh.seq {
		t.Errorf("seq after replay = %d, want %d (fresh)", reused.seq, fresh.seq)
	}
}

func TestResetThenScheduleDoesNotAllocate(t *testing.T) {
	e := New()
	fn := func() {}
	for i := 0; i < 256; i++ {
		e.After(Duration(i%97+1), fn)
	}
	e.RunUntil(40)
	allocs := testing.AllocsPerRun(100, func() {
		e.Reset()
		for i := 0; i < 128; i++ {
			e.After(Duration(i%97+1), fn)
		}
		e.RunUntil(40) // leave a tail pending for the next Reset to collect
	})
	if allocs > 0 {
		t.Errorf("Reset+reschedule allocated %.1f times per run, want 0", allocs)
	}
}
