// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine drives all of KRISP's virtual-time evaluation: GPU kernel
// execution, HSA queue processing, inference servers, and load generators
// all schedule callbacks on a single Engine. Everything runs on one
// goroutine, so simulations are fully deterministic given a seed.
//
// Time is modelled as float64 microseconds of virtual time. Helpers
// (Microsecond, Millisecond, Second) make call sites readable.
//
// # Performance model
//
// The engine owns its priority queue as a value-type 4-ary min-heap of
// small entries whose ordering keys are denormalized into the slot, so
// comparisons never chase pointers — no container/heap, no interface
// boxing. Cancellation is lazy and O(1): the entry is skipped and
// collected when it surfaces at the top. Reschedule re-keys the entry in
// place through the record's heap index (no tombstone churn under
// retime-heavy loads). Fired and collected event records are recycled
// through an engine-local free list, so in steady state
// At/After/Cancel/Reschedule perform zero heap allocations.
//
// # Event handle lifetime
//
// At/After return *Event handles. A handle is live while its event is
// pending; Cancel, Reschedule, At and Canceled are always exact on a live
// handle. Once the event fires (or a cancellation is collected), the
// engine may recycle the record for a later At/After. Until that reuse
// happens, the documented dead-handle operations still behave as
// specified: Cancel of a fired or canceled event is a no-op, Canceled
// still reports the outcome, and Reschedule of a dead event schedules a
// fresh event with the same callback. After reuse, the handle aliases the
// newer event, so callers that retain handles across later scheduling
// must treat fired handles as expired (every caller in this repository
// either refreshes its handle in the callback or clears it there).
//
// # Tie-break contract
//
// Simultaneous events fire in the order they were first scheduled: each
// event takes a sequence number at At/After time and keeps it for life.
// Reschedule moves an event in time but does not change its sequence
// number, so a rescheduled event that comes to tie with other events —
// whether it moved earlier or later — still ranks by its original
// scheduling order, not by when it was rescheduled.
package sim

import (
	"fmt"
	"math"
)

// Time is a point in virtual time, in microseconds.
type Time = float64

// Duration is a span of virtual time, in microseconds.
type Duration = float64

// Convenient duration units (all in microseconds).
const (
	Microsecond Duration = 1
	Millisecond Duration = 1e3
	Second      Duration = 1e6
)

// Never is a sentinel time further in the future than any event the
// simulator will reach. Completion events for stalled jobs are parked here.
const Never Time = math.MaxFloat64 / 4

// Event lifecycle states.
const (
	statePending  uint8 = iota // scheduled, will fire unless canceled
	stateFired                 // callback ran
	stateCanceled              // canceled before firing, entry not yet collected
	stateFree                  // collected into the engine free list
)

// Event is a scheduled callback. It is returned by Engine.At/After so the
// caller can cancel it before it fires. See the package comment for the
// handle-lifetime contract.
type Event struct {
	at          Time
	seq         uint64 // FIFO rank among simultaneous events; fixed at first schedule
	fn          func()
	index       int32 // heap position while pending, -1 once popped
	state       uint8
	wasCanceled bool // outcome kept through recycling so Canceled() stays exact until reuse
}

// At reports the virtual time the event is (or was last) scheduled for.
func (ev *Event) At() Time { return ev.at }

// Canceled reports whether the event was canceled before firing.
func (ev *Event) Canceled() bool {
	return ev.state == stateCanceled || (ev.state == stateFree && ev.wasCanceled)
}

// entry is one heap slot: the ordering key, denormalized from the record
// so comparisons never chase the *Event pointer, plus the record itself.
// Exactly one entry exists per scheduled record; Reschedule re-keys it in
// place via the record's heap index.
type entry struct {
	at  Time
	seq uint64
	ev  *Event
}

// Engine is a single-threaded discrete-event simulator.
//
// The zero value is not usable; construct with New.
type Engine struct {
	now       Time
	seq       uint64
	events    []entry  // 4-ary min-heap ordered by (at, seq)
	free      []*Event // recycled event records
	live      int      // pending, non-canceled events
	processed uint64

	// interrupt, when set, is polled periodically by Run/RunUntil; once it
	// returns true the run stops early and Interrupted latches.
	interrupt   func() bool
	interrupted bool
	// forcePoll makes the next pollInterrupt consult the hook regardless
	// of the processed-count stride; Run/RunUntil set it on entry so an
	// already-true interrupt stops a run immediately even on an engine
	// whose processed count is mid-stride from earlier runs.
	forcePoll bool
}

// New returns an Engine with the clock at time zero and no pending events.
func New() *Engine {
	return &Engine{}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Pending returns the number of events still scheduled (canceled events
// are excluded even while their heap entries await collection).
func (e *Engine) Pending() int { return e.live }

// Processed returns the total number of events fired so far.
func (e *Engine) Processed() uint64 { return e.processed }

// alloc returns a fresh or recycled event record.
func (e *Engine) alloc() *Event {
	if n := len(e.free); n > 0 {
		ev := e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		return ev
	}
	return &Event{}
}

// recycle returns a dead record to the free list. The callback and
// outcome are kept until reuse so the documented dead-handle operations
// (Cancel no-op, Canceled, Reschedule-as-fresh) stay exact in between.
func (e *Engine) recycle(ev *Event) {
	ev.state = stateFree
	e.free = append(e.free, ev)
}

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// panics: it always indicates a logic error in the caller.
func (e *Engine) At(t Time, fn func()) *Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	e.seq++
	ev := e.alloc()
	ev.at = t
	ev.seq = e.seq
	ev.fn = fn
	ev.state = statePending
	ev.wasCanceled = false
	e.live++
	e.push(entry{at: t, seq: ev.seq, ev: ev})
	return ev
}

// After schedules fn to run d microseconds from now. Negative d panics.
func (e *Engine) After(d Duration, fn func()) *Event {
	return e.At(e.now+d, fn)
}

// Cancel removes a pending event so it never fires. Canceling an event that
// already fired or was already canceled is a no-op. Cancellation is lazy:
// the heap entry is skipped (and the record collected) when it surfaces.
func (e *Engine) Cancel(ev *Event) {
	if ev == nil || ev.state != statePending {
		return
	}
	ev.state = stateCanceled
	ev.wasCanceled = true
	e.live--
}

// Reschedule moves a pending event to a new absolute time, preserving its
// callback and — unlike a cancel-and-reschedule — its FIFO rank: the event
// keeps the sequence number from its first scheduling, so if the move
// makes it simultaneous with other events it fires in original scheduling
// order rather than last. If the event already fired or was canceled,
// Reschedule schedules a fresh event with the same callback and returns
// it; otherwise it returns ev itself.
func (e *Engine) Reschedule(ev *Event, t Time) *Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: rescheduling event to %v before now %v", t, e.now))
	}
	if ev.state != statePending {
		return e.At(t, ev.fn)
	}
	ev.at = t
	e.events[ev.index].at = t // seq — the FIFO rank — is unchanged
	e.fix(int(ev.index))
	return ev
}

// collectTop pops and recycles the top heap entry if its record was lazily
// canceled, reporting whether it did.
func (e *Engine) collectTop() bool {
	ev := e.events[0].ev
	if ev.state == statePending {
		return false
	}
	e.popTop()
	e.recycle(ev)
	return true
}

// Step fires the next pending event, advancing the clock to its timestamp.
// It returns false when no events remain.
func (e *Engine) Step() bool {
	for len(e.events) > 0 {
		if e.collectTop() {
			continue
		}
		en := e.events[0]
		e.popTop()
		ev := en.ev
		e.now = en.at
		e.processed++
		e.live--
		ev.state = stateFired
		fn := ev.fn
		// Recycle before running the callback: the fire-then-rearm pattern
		// (watchdogs, queue pumps) then reuses the hot record immediately.
		e.recycle(ev)
		fn()
		return true
	}
	return false
}

// SetInterrupt installs a poll function consulted every few thousand
// events by Run and RunUntil; when it returns true the run stops early and
// Interrupted reports true from then on. A nil fn clears it. The hook lets
// callers driven by external cancellation (an HTTP request context, a
// deadline) abandon a long simulation without wiring cancellation through
// every model layer.
func (e *Engine) SetInterrupt(fn func() bool) {
	e.interrupt = fn
	e.interrupted = false
}

// Interrupted reports whether a Run/RunUntil stopped early because the
// interrupt poll fired.
func (e *Engine) Interrupted() bool { return e.interrupted }

// pollInterrupt returns true when the run should stop. The poll function
// is consulted at the start of every Run/RunUntil and then once every
// 1024 processed events, keeping it off the hot path while guaranteeing an
// already-true interrupt stops any run before it fires a single event.
func (e *Engine) pollInterrupt() bool {
	if e.interrupted {
		return true
	}
	if e.interrupt != nil && (e.forcePoll || e.processed&1023 == 0) && e.interrupt() {
		e.interrupted = true
	}
	e.forcePoll = false
	return e.interrupted
}

// Run fires events until none remain.
func (e *Engine) Run() {
	e.forcePoll = true
	for !e.pollInterrupt() && e.Step() {
	}
}

// RunUntil fires events with timestamps <= t, then advances the clock to
// exactly t. Events scheduled beyond t remain pending.
func (e *Engine) RunUntil(t Time) {
	e.forcePoll = true
	for len(e.events) > 0 {
		if e.pollInterrupt() {
			return
		}
		if e.collectTop() {
			continue
		}
		if e.events[0].at > t {
			break
		}
		e.Step()
	}
	if t > e.now {
		e.now = t
	}
}

// RunFor runs the simulation for d microseconds of virtual time from now.
func (e *Engine) RunFor(d Duration) {
	e.RunUntil(e.now + d)
}

// NextEventTime returns the timestamp of the earliest pending event, or
// ok=false when none remain. Lazily-canceled entries surfacing at the top
// are collected on the way, so the answer is exact — this is the lower
// bound a lookahead scheduler uses to prove a component cannot act before
// a horizon without running it.
func (e *Engine) NextEventTime() (Time, bool) {
	for len(e.events) > 0 {
		if e.collectTop() {
			continue
		}
		return e.events[0].at, true
	}
	return 0, false
}

// Reset returns the engine to its initial state — clock at zero, no
// pending events, sequence and processed counters rezeroed — while keeping
// the event free list and heap capacity, so a reused engine schedules with
// zero allocations from the first event. Every pending event is discarded
// (its callback never fires) and its record recycled. A run on a Reset
// engine is indistinguishable from a run on a New engine: the first event
// gets seq 1, interrupt polling starts mid-stride at processed 0, and any
// previously installed interrupt hook is cleared.
func (e *Engine) Reset() {
	for i := range e.events {
		ev := e.events[i].ev
		if ev.state == statePending {
			ev.wasCanceled = false
		}
		e.recycle(ev)
		e.events[i] = entry{}
	}
	e.events = e.events[:0]
	e.now = 0
	e.seq = 0
	e.live = 0
	e.processed = 0
	e.interrupt = nil
	e.interrupted = false
	e.forcePoll = false
}

// ---------------------------------------------------------------------------
// 4-ary min-heap over []entry, ordered by (at, seq).
//
// A 4-ary layout halves the tree depth of a binary heap, trading a few
// extra comparisons per level for far fewer cache-missing hops on the
// sift path — the classic d-ary trade that wins for small value-type
// entries like ours.

func entryLess(a, b *entry) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq // FIFO among simultaneous events
}

func (e *Engine) push(en entry) {
	e.events = append(e.events, en)
	en.ev.index = int32(len(e.events) - 1)
	e.siftUp(len(e.events) - 1)
}

// fix restores heap order after the entry at i changed its key in place
// (Reschedule): at most one of the two sifts moves it.
func (e *Engine) fix(i int) {
	if !e.siftUp(i) {
		e.siftDown(i)
	}
}

// siftUp moves the entry at i toward the root until its parent is not
// larger, reporting whether it moved.
func (e *Engine) siftUp(i int) bool {
	en := e.events[i]
	j := i
	for j > 0 {
		p := (j - 1) / 4
		if !entryLess(&en, &e.events[p]) {
			break
		}
		e.events[j] = e.events[p]
		e.events[j].ev.index = int32(j)
		j = p
	}
	if j == i {
		return false
	}
	e.events[j] = en
	en.ev.index = int32(j)
	return true
}

// siftDown moves the entry at i toward the leaves until no child is
// smaller.
func (e *Engine) siftDown(i int) {
	n := len(e.events)
	en := e.events[i]
	j := i
	for {
		c := j*4 + 1
		if c >= n {
			break
		}
		end := c + 4
		if end > n {
			end = n
		}
		m := c
		for k := c + 1; k < end; k++ {
			if entryLess(&e.events[k], &e.events[m]) {
				m = k
			}
		}
		if !entryLess(&e.events[m], &en) {
			break
		}
		e.events[j] = e.events[m]
		e.events[j].ev.index = int32(j)
		j = m
	}
	if j != i {
		e.events[j] = en
		en.ev.index = int32(j)
	}
}

// popTop removes the minimum entry (the caller has already read it).
func (e *Engine) popTop() {
	e.events[0].ev.index = -1
	n := len(e.events) - 1
	en := e.events[n]
	e.events[n] = entry{} // drop the *Event reference for GC
	e.events = e.events[:n]
	if n == 0 {
		return
	}
	e.events[0] = en
	en.ev.index = 0
	e.siftDown(0)
}
