// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine drives all of KRISP's virtual-time evaluation: GPU kernel
// execution, HSA queue processing, inference servers, and load generators
// all schedule callbacks on a single Engine. Everything runs on one
// goroutine, so simulations are fully deterministic given a seed.
//
// Time is modelled as float64 microseconds of virtual time. Helpers
// (Microsecond, Millisecond, Second) make call sites readable.
package sim

import (
	"container/heap"
	"fmt"
	"math"
)

// Time is a point in virtual time, in microseconds.
type Time = float64

// Duration is a span of virtual time, in microseconds.
type Duration = float64

// Convenient duration units (all in microseconds).
const (
	Microsecond Duration = 1
	Millisecond Duration = 1e3
	Second      Duration = 1e6
)

// Never is a sentinel time further in the future than any event the
// simulator will reach. Completion events for stalled jobs are parked here.
const Never Time = math.MaxFloat64 / 4

// Event is a scheduled callback. It is returned by Engine.At/After so the
// caller can cancel it before it fires.
type Event struct {
	at       Time
	seq      uint64
	fn       func()
	index    int // heap index, -1 once removed
	canceled bool
}

// At reports the virtual time the event is scheduled for.
func (ev *Event) At() Time { return ev.at }

// Canceled reports whether the event was canceled before firing.
func (ev *Event) Canceled() bool { return ev.canceled }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq // FIFO among simultaneous events
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*h)
	*h = append(*h, ev)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}

// Engine is a single-threaded discrete-event simulator.
//
// The zero value is not usable; construct with New.
type Engine struct {
	now       Time
	seq       uint64
	events    eventHeap
	processed uint64

	// interrupt, when set, is polled periodically by Run/RunUntil; once it
	// returns true the run stops early and Interrupted latches.
	interrupt   func() bool
	interrupted bool
}

// New returns an Engine with the clock at time zero and no pending events.
func New() *Engine {
	return &Engine{}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Pending returns the number of events still scheduled.
func (e *Engine) Pending() int { return len(e.events) }

// Processed returns the total number of events fired so far.
func (e *Engine) Processed() uint64 { return e.processed }

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// panics: it always indicates a logic error in the caller.
func (e *Engine) At(t Time, fn func()) *Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	e.seq++
	ev := &Event{at: t, seq: e.seq, fn: fn}
	heap.Push(&e.events, ev)
	return ev
}

// After schedules fn to run d microseconds from now. Negative d panics.
func (e *Engine) After(d Duration, fn func()) *Event {
	return e.At(e.now+d, fn)
}

// Cancel removes a pending event so it never fires. Canceling an event that
// already fired or was already canceled is a no-op.
func (e *Engine) Cancel(ev *Event) {
	if ev == nil || ev.canceled || ev.index < 0 {
		if ev != nil {
			ev.canceled = true
		}
		return
	}
	ev.canceled = true
	heap.Remove(&e.events, ev.index)
	ev.index = -1
}

// Reschedule moves a pending event to a new absolute time, preserving its
// callback. If the event already fired or was canceled, Reschedule schedules
// a fresh event with the same callback and returns it; otherwise it returns
// ev itself.
func (e *Engine) Reschedule(ev *Event, t Time) *Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: rescheduling event to %v before now %v", t, e.now))
	}
	if ev.canceled || ev.index < 0 {
		return e.At(t, ev.fn)
	}
	ev.at = t
	e.seq++
	ev.seq = e.seq
	heap.Fix(&e.events, ev.index)
	return ev
}

// Step fires the next pending event, advancing the clock to its timestamp.
// It returns false when no events remain.
func (e *Engine) Step() bool {
	for len(e.events) > 0 {
		ev := heap.Pop(&e.events).(*Event)
		if ev.canceled {
			continue
		}
		e.now = ev.at
		e.processed++
		ev.fn()
		return true
	}
	return false
}

// SetInterrupt installs a poll function consulted every few thousand
// events by Run and RunUntil; when it returns true the run stops early and
// Interrupted reports true from then on. A nil fn clears it. The hook lets
// callers driven by external cancellation (an HTTP request context, a
// deadline) abandon a long simulation without wiring cancellation through
// every model layer.
func (e *Engine) SetInterrupt(fn func() bool) {
	e.interrupt = fn
	e.interrupted = false
}

// Interrupted reports whether a Run/RunUntil stopped early because the
// interrupt poll fired.
func (e *Engine) Interrupted() bool { return e.interrupted }

// pollInterrupt returns true when the run should stop. The poll function is
// only consulted every 1024 processed events to keep it off the hot path.
func (e *Engine) pollInterrupt() bool {
	if e.interrupted {
		return true
	}
	if e.interrupt != nil && e.processed&1023 == 0 && e.interrupt() {
		e.interrupted = true
	}
	return e.interrupted
}

// Run fires events until none remain.
func (e *Engine) Run() {
	for !e.pollInterrupt() && e.Step() {
	}
}

// RunUntil fires events with timestamps <= t, then advances the clock to
// exactly t. Events scheduled beyond t remain pending.
func (e *Engine) RunUntil(t Time) {
	for len(e.events) > 0 {
		if e.pollInterrupt() {
			return
		}
		// Peek at the earliest non-canceled event.
		ev := e.events[0]
		if ev.canceled {
			heap.Pop(&e.events)
			continue
		}
		if ev.at > t {
			break
		}
		e.Step()
	}
	if t > e.now {
		e.now = t
	}
}

// RunFor runs the simulation for d microseconds of virtual time from now.
func (e *Engine) RunFor(d Duration) {
	e.RunUntil(e.now + d)
}
