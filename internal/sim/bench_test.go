package sim

// Engine microbenchmarks tracking the allocation-lean hot path. All report
// allocs/op; scripts/bench.sh records them into BENCH_PR2.json so the perf
// trajectory is visible across PRs.
//
// BenchmarkEngineScheduleAndRun (engine_test.go) keeps the seed-era shape —
// a fresh engine per iteration — so numbers stay comparable across the
// engine rewrite. The benchmarks here exercise the steady state a long
// simulation actually lives in: a warm engine whose heap and free list sit
// at their high-water marks.

import "testing"

// BenchmarkAtRun measures the schedule-then-fire cycle on a warm engine:
// batches of events are scheduled and drained, so every At is served from
// the free list.
func BenchmarkAtRun(b *testing.B) {
	e := New()
	fn := func() {}
	for i := 0; i < 1024; i++ { // reach the steady-state high-water mark
		e.After(Duration(i%97+1), fn)
	}
	e.Run()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.After(Duration(i%97+1), fn)
		if i%1024 == 1023 {
			e.Run()
		}
	}
	e.Run()
}

// BenchmarkCancelReschedule measures the control-plane operations: each
// iteration schedules an event, moves it twice, cancels it, and lets the
// engine collect the tombstones.
func BenchmarkCancelReschedule(b *testing.B) {
	e := New()
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev := e.After(10, fn)
		ev = e.Reschedule(ev, e.Now()+20)
		ev = e.Reschedule(ev, e.Now()+5)
		e.Cancel(ev)
		if i%1024 == 1023 {
			e.RunFor(100) // collect lazy tombstones
		}
	}
	e.Run()
}

// BenchmarkHorizonProbe measures the lookahead scheduler's inner loop: a
// NextEventTime probe followed by a bounded RunUntil on a warm engine —
// the per-node cost of proving "this node cannot act before the horizon".
// Must stay 0 allocs/op like the rest of the engine hot path.
func BenchmarkHorizonProbe(b *testing.B) {
	e := New()
	var rearm func()
	period := Duration(7)
	rearm = func() { e.After(period, rearm) }
	for i := 0; i < 64; i++ {
		e.After(Duration(i+1), rearm)
	}
	e.RunFor(512)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		at, ok := e.NextEventTime()
		if !ok {
			b.Fatal("warm engine drained")
		}
		e.RunUntil(at + 3)
	}
}

// BenchmarkChurn is timer-wheel-style steady-state churn: a fixed
// population of self-rearming timers (watchdogs, queue pumps) plus a
// rotating set of timers that are canceled and replaced before firing —
// the dominant event pattern of the serving simulations.
func BenchmarkChurn(b *testing.B) {
	const wheel = 256
	e := New()
	for i := 0; i < wheel; i++ {
		var rearm func()
		period := Duration(i%37 + 3)
		rearm = func() { e.After(period, rearm) }
		e.After(Duration(i+1), rearm)
	}
	// Rotating cancel-before-fire timers, one slot per wheel position.
	fn := func() {}
	slots := make([]*Event, wheel)
	for i := range slots {
		slots[i] = e.After(Duration(i%53+50), fn)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := i % wheel
		e.Cancel(slots[s])
		slots[s] = e.After(Duration(s%53+50), fn)
		if s == wheel-1 {
			e.RunFor(10)
		}
	}
}
