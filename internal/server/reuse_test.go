package server

import (
	"reflect"
	"sync"
	"testing"

	"krisp/internal/faults"
	"krisp/internal/models"
	"krisp/internal/policies"
)

// reuseScenarios are the configurations the run-context reuse path must
// replay byte-identically: a plain KRISP-I serve, a multi-worker
// multi-GPU contention case, and a chaos run whose fault timeline
// exercises the hardened path (watchdogs, retries, queue resets) on a
// recycled stack.
func reuseScenarios(t *testing.T) map[string]func() Config {
	t.Helper()
	m := mustModel(t, "squeezenet")
	m2 := mustModel(t, "mobilenet")
	return map[string]func() Config{
		"krisp-i": func() Config {
			return Config{
				Policy:  policies.KRISPI,
				Workers: []WorkerSpec{{Model: m, Batch: 32}},
				Seed:    11,
				Warmup:  8_000,
				Measure: 80_000,
			}
		},
		"contended-multigpu": func() Config {
			return Config{
				Policy: policies.KRISPO,
				GPUs:   2,
				Workers: []WorkerSpec{
					{Model: m, Batch: 32}, {Model: m2, Batch: 16},
					{Model: m, Batch: 32}, {Model: m2, Batch: 16},
				},
				Seed:    12,
				Warmup:  10_000,
				Measure: 100_000,
			}
		},
		"chaos": func() Config {
			return Config{
				Policy:  policies.KRISPI,
				Workers: []WorkerSpec{{Model: m, Batch: 32}, {Model: m, Batch: 32}},
				Seed:    13,
				Warmup:  20_000,
				Measure: 150_000,
				Faults: &faults.Plan{
					Seed: 3,
					CUKills: []faults.CUKill{
						{At: 40_000, GPU: 0, CU: 0},
						{At: 40_000, GPU: 0, CU: 1},
					},
					QueueStalls: []faults.QueueStall{
						{At: 80_000, GPU: 0, Queue: 0, Duration: 1e12},
					},
					WatchdogTimeout: 30_000,
				},
			}
		},
	}
}

// stackPool is a deterministic statePool: unlike sync.Pool under the race
// detector (which drops a quarter of Puts by design), every Put is
// retained, so the test can assert the reruns really hit the reset path.
type stackPool struct {
	mu sync.Mutex
	xs []any
}

func (p *stackPool) Get() any {
	p.mu.Lock()
	defer p.mu.Unlock()
	if n := len(p.xs); n > 0 {
		x := p.xs[n-1]
		p.xs[n-1] = nil
		p.xs = p.xs[:n-1]
		return x
	}
	return nil
}

func (p *stackPool) Put(x any) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.xs = append(p.xs, x)
}

// TestRunReuseDeterministic is the zero-alloc lifecycle's correctness
// oracle: a run on a freshly built context and the same run replayed on a
// pooled, reset-in-place context must produce byte-identical Results —
// stats, latency samples, energy, and fault counters included. Run under
// -race in CI, this also proves the pool hands out exclusive contexts.
func TestRunReuseDeterministic(t *testing.T) {
	defer func(p statePool) { runPool = p }(runPool)
	for name, mk := range reuseScenarios(t) {
		t.Run(name, func(t *testing.T) {
			// Empty the pool so the first run builds its context from
			// scratch, and use a deterministic pool so the reruns are
			// guaranteed to hit the reset path.
			runPool = &stackPool{}
			fresh := Run(mk())
			if fresh.TotalRequests() == 0 {
				t.Fatal("degenerate scenario: nothing completed")
			}
			if st, _ := runPool.Get().(*runState); st == nil {
				t.Fatal("run did not return its context to the pool")
			} else {
				runPool.Put(st)
			}
			for i := 0; i < 3; i++ {
				if got := Run(mk()); !reflect.DeepEqual(got, fresh) {
					t.Fatalf("rerun %d on pooled context diverged:\nfresh: %+v\npooled: %+v", i, fresh, got)
				}
			}
			// A shape change must rebuild rather than misuse the pooled
			// context — and the original shape must still replay exactly
			// afterwards.
			other := mk()
			other.GPUs += 1
			Run(other)
			if got := Run(mk()); !reflect.DeepEqual(got, fresh) {
				t.Fatal("run after a shape change diverged from the fresh result")
			}
		})
	}
}

// TestNodeReplicaReuseDeterministic drives the fleet-side twin: a node
// whose replicas are drained, released, and respawned from the pool must
// serve exactly like one that builds every replica fresh.
func TestNodeReplicaReuseDeterministic(t *testing.T) {
	m, ok := models.ByName("squeezenet")
	if !ok {
		t.Fatal("model missing")
	}
	run := func(release bool) (ReplicaStats, ReplicaStats) {
		n := NewNode(NodeConfig{Seed: 9})
		r1 := n.AddReplica(ReplicaSpec{Model: m, Batch: 8, CUs: 30})
		for i := 0; i < 16; i++ {
			r1.Submit(n.Now())
			n.RunUntil(n.Now() + 5_000)
		}
		r1.Drain()
		n.RunUntil(n.Now() + 50_000)
		if !r1.Drained() {
			t.Fatal("replica did not drain")
		}
		s1 := r1.Stats()
		var buf []Completion
		r1.TakeCompletions(buf)
		if release {
			r1.Release()
		}
		// The respawn must behave identically whether it recycles r1's
		// struct and queue or builds fresh ones.
		r2 := n.AddReplica(ReplicaSpec{Model: m, Batch: 8, CUs: 45})
		for i := 0; i < 16; i++ {
			r2.Submit(n.Now())
			n.RunUntil(n.Now() + 5_000)
		}
		n.RunUntil(n.Now() + 50_000)
		return s1, r2.Stats()
	}
	s1a, s2a := run(false)
	s1b, s2b := run(true)
	if s1a != s1b || s2a != s2b {
		t.Fatalf("released-replica respawn diverged:\nfresh:  %+v / %+v\npooled: %+v / %+v", s1a, s2a, s1b, s2b)
	}
	if s2a.CompletedRequests == 0 {
		t.Fatal("respawned replica served nothing")
	}
}
