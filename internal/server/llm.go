package server

import (
	"krisp/internal/kernels"
	"krisp/internal/llm"
	"krisp/internal/sim"
)

// LLMRole restricts which phases a replica serves. Mixed replicas run a
// sequence end to end; prefill/decode replicas implement disaggregated
// serving, where the cluster routes prompts to prefill replicas and hands
// the KV cache off to a decode replica for token generation.
type LLMRole uint8

const (
	// LLMRoleMixed serves both phases on one partition (per-phase CU sizes
	// still apply kernel by kernel — that is the kernel-wise right-sizing).
	LLMRoleMixed LLMRole = iota
	// LLMRolePrefill serves only prompt prefills; sequences complete after
	// their prefill pass and their KV pages hand off to a decode replica.
	LLMRolePrefill
	// LLMRoleDecode serves only token generation for sequences prefilled
	// elsewhere (submitted with prefilled=true).
	LLMRoleDecode
)

// String names the role for logs and result tables.
func (r LLMRole) String() string {
	switch r {
	case LLMRolePrefill:
		return "prefill"
	case LLMRoleDecode:
		return "decode"
	default:
		return "mixed"
	}
}

// LLMSpec turns a replica into an autoregressive serving engine with
// continuous batching: sequences join and leave the running batch at token
// boundaries instead of being served in fixed request batches.
type LLMSpec struct {
	// Model is the autoregressive workload.
	Model llm.Model
	// MaxSeqs bounds concurrently decoding sequences (the continuous batch
	// width). Zero means 8.
	MaxSeqs int
	// PrefillCUs / DecodeCUs are the per-phase partition sizes. When either
	// is set the replica gets a phase-aware right-sizer: prefill kernels
	// run at PrefillCUs, decode kernels at DecodeCUs, anything untagged at
	// the larger of the two. Zero for one phase means ReplicaSpec.CUs.
	PrefillCUs, DecodeCUs int
	// Role restricts the replica to one phase for disaggregated serving.
	Role LLMRole
	// KVBudget caps this replica's KV-cache bytes on its device. Zero means
	// only the device's own HBM capacity limits it.
	KVBudget float64
	// StepOverheadUs is the CPU-side scheduling cost paid before each token
	// step (batch assembly, paging). Zero means 20us.
	StepOverheadUs sim.Duration
	// RetryUs is the re-admission backoff when the replica is idle but its
	// queue head cannot reserve KV space. Zero means 50us.
	RetryUs sim.Duration
}

// llmSeq is one resident sequence in the continuous batch.
type llmSeq struct {
	arrival, enq sim.Time
	// admitted is when the sequence joined the batch (its BatchStart stamp);
	// kernStart when its first step's kernels launched; firstTok when its
	// first token after the last (re)admission was produced.
	admitted  sim.Time
	kernStart sim.Time
	firstTok  sim.Time
	id        uint64
	// prompt/output are the request's lengths; done counts generated tokens;
	// ctx is the resident context (prompt + done) whose KV pages are held.
	prompt, output, done, ctx int
	// kv is the bytes this sequence has reserved on the device.
	kv float64
	// prefilled flips once the prompt pass has run (here or, for handoffs to
	// a decode replica, elsewhere).
	prefilled bool
	started   bool
	gotTok    bool
	cancelled bool
}

// llmEngine is the per-replica continuous-batching state. It reuses the
// replica's queue for waiting sequences (so Submit/Cancel/Drain semantics
// carry over) and owns the resident set.
type llmEngine struct {
	spec       LLMSpec
	active     []llmSeq
	kvInUse    float64
	kvPerToken float64
	// retryPending dedups the idle-but-blocked retry event.
	retryPending bool
	// Pre-bound step hooks; one set per replica, zero-alloc steady state.
	kickFn, stepFn, retryFn func()
	descBuf                 []kernels.Desc
}

// reset re-arms the engine for a (re)added replica.
func (e *llmEngine) reset(spec LLMSpec) {
	e.spec = spec
	e.kvPerToken = spec.Model.KVBytesPerToken()
	e.active = e.active[:0]
	e.kvInUse = 0
}

// SubmitSeq enqueues one autoregressive request: a prompt of the given
// length and a target output length. prefilled marks a disaggregated
// handoff whose prompt pass already ran on a prefill replica — the
// sequence joins decode directly, re-reserving its context's KV pages
// here. On a non-LLM replica it degrades to SubmitID. Admission follows
// the classic rules: refused once draining or killed.
func (r *Replica) SubmitSeq(arrival sim.Time, id uint64, prompt, output int, prefilled bool) bool {
	if r.llm == nil {
		return r.SubmitID(arrival, id)
	}
	if r.draining || r.killed {
		return false
	}
	if prompt < 1 {
		prompt = 1
	}
	if output < 1 {
		output = 1
	}
	enq := r.node.eng.Now()
	if enq < arrival {
		enq = arrival
	}
	r.queue = append(r.queue, pending{
		arrival: arrival, enq: enq, id: id,
		prompt: prompt, output: output, prefilled: prefilled,
	})
	r.llmMaybeStep()
	return true
}

// KVInUse reports the replica's reserved KV-cache bytes (0 for non-LLM).
func (r *Replica) KVInUse() float64 {
	if r.llm == nil {
		return 0
	}
	return r.llm.kvInUse
}

// llmKVCeiling is the hard bound on this replica's KV reservation: the
// smaller of its budget and the device capacity; <= 0 means unenforced.
func (r *Replica) llmKVCeiling() float64 {
	lim := r.node.gpus[r.spec.GPU].dev.KVCapacity()
	if b := r.llm.spec.KVBudget; b > 0 && (lim <= 0 || b < lim) {
		lim = b
	}
	return lim
}

// llmReserveKV reserves bytes against both the replica budget and the
// device ledger; all-or-nothing.
func (r *Replica) llmReserveKV(bytes float64) bool {
	e := r.llm
	if b := e.spec.KVBudget; b > 0 && e.kvInUse+bytes > b {
		return false
	}
	if !r.node.gpus[r.spec.GPU].dev.ReserveKV(bytes) {
		return false
	}
	e.kvInUse += bytes
	return true
}

// llmFreeKV returns bytes to both ledgers.
func (r *Replica) llmFreeKV(bytes float64) {
	if bytes <= 0 {
		return
	}
	e := r.llm
	e.kvInUse -= bytes
	if e.kvInUse < 0 {
		e.kvInUse = 0
	}
	r.node.gpus[r.spec.GPU].dev.FreeKV(bytes)
}

// llmAdmit moves queued sequences into the continuous batch, in FIFO
// order, until the batch is full or the queue head cannot reserve its
// context's KV pages (head-of-line blocking preserves ordering).
// Sequences whose full-context footprint can never fit are rejected with
// a cancelled completion.
func (r *Replica) llmAdmit(now sim.Time) {
	e := r.llm
	for len(r.queue) > 0 && len(e.active) < e.spec.MaxSeqs {
		q := r.queue[0]
		prompt, output := q.prompt, q.output
		if prompt < 1 {
			prompt = 1
		}
		if output < 1 {
			output = 1
		}
		// Full-lifetime footprint: a decode (or mixed) replica must
		// eventually hold prompt+output tokens; a prefill replica only the
		// prompt.
		need := float64(prompt+output) * e.kvPerToken
		if e.spec.Role == LLMRolePrefill {
			need = float64(prompt) * e.kvPerToken
		}
		lim := r.llmKVCeiling()
		tooBig := (lim > 0 && need > lim) ||
			(e.spec.Model.MaxContext > 0 && prompt+output > e.spec.Model.MaxContext)
		if tooBig {
			r.queue = r.queue[:copy(r.queue, r.queue[1:])]
			r.stats.Dropped++
			r.completions = append(r.completions, Completion{
				ID: q.id, Arrival: q.arrival, End: now, Cancelled: true,
				Enqueued: q.enq, BatchStart: now, KernelStart: now, KernelEnd: now,
				Prompt: prompt, Output: output,
			})
			continue
		}
		ctx := prompt + q.done
		if !r.llmReserveKV(float64(ctx) * e.kvPerToken) {
			break
		}
		r.queue = r.queue[:copy(r.queue, r.queue[1:])]
		e.active = append(e.active, llmSeq{
			arrival: q.arrival, enq: q.enq, admitted: now,
			id: q.id, prompt: prompt, output: output, done: q.done, ctx: ctx,
			kv: float64(ctx) * e.kvPerToken, prefilled: q.prefilled,
		})
	}
}

// llmMaybeStep is the continuous-batching pump: admit joiners at this
// token boundary and launch the next step. When the replica is idle but
// KV-blocked, a single retry event keeps it live.
func (r *Replica) llmMaybeStep() {
	if r.busy || r.killed {
		return
	}
	e := r.llm
	now := r.node.eng.Now()
	r.llmAdmit(now)
	if len(e.active) == 0 {
		if len(r.queue) > 0 && !e.retryPending {
			e.retryPending = true
			r.node.eng.After(e.spec.RetryUs, e.retryFn)
		}
		return
	}
	r.busy = true
	r.node.eng.After(e.spec.StepOverheadUs, e.kickFn)
}

// llmRetry re-attempts admission after a KV-blocked idle period.
func (r *Replica) llmRetry() {
	e := r.llm
	if e == nil {
		return
	}
	e.retryPending = false
	if r.killed {
		return
	}
	r.llmMaybeStep()
}

// llmKick fires after the step's CPU overhead: build the step's kernel
// list — a prefill pass per unprefilled joiner plus one batched decode
// step over every prefilled sequence — jitter it, and run it. The buffer
// is reused; steady state allocates nothing.
func (r *Replica) llmKick() {
	e := r.llm
	now := r.node.eng.Now()
	buf := e.descBuf[:0]
	decodeSeqs, ctxTotal := 0, 0
	for i := range e.active {
		s := &e.active[i]
		if !s.started {
			s.started = true
			s.kernStart = now
		}
		if s.prefilled {
			decodeSeqs++
			ctxTotal += s.ctx
		} else {
			buf = e.spec.Model.AppendPrefill(buf, s.ctx)
		}
	}
	if decodeSeqs > 0 {
		buf = e.spec.Model.AppendDecodeStep(buf, decodeSeqs, ctxTotal)
	}
	if j := r.node.cfg.Jitter; j != 0 {
		for i := range buf {
			f := 1 + j*(2*r.rng.Float64()-1)
			buf[i].Work.WGTime *= sim.Duration(f)
		}
	}
	e.descBuf = buf
	if len(buf) == 0 {
		// Kill emptied the batch while the kick was pending.
		r.busy = false
		return
	}
	r.rt.RunSequence(buf, e.stepFn)
}

// llmStepDone is the token boundary: commit this step's progress, retire
// finished and cancelled sequences, grow each survivor's KV cache by one
// token — preempting the youngest residents when the budget is exhausted
// — and pump the next step.
func (r *Replica) llmStepDone() {
	r.busy = false
	if r.killed {
		return
	}
	e := r.llm
	now := r.node.eng.Now()
	// Sequences at index >= end are evicted at this boundary before their
	// own bookkeeping runs: their step output is discarded and they resume
	// from their last committed token.
	end := len(e.active)
	w := 0
	for i := 0; i < end; i++ {
		s := e.active[i]
		finished, preempted := false, false
		if !s.prefilled {
			// The step ran this sequence's prefill (or re-prefill after a
			// preemption). A prefill-only replica is done here: its KV pages
			// hand off to a decode replica, so the local hold is released.
			s.prefilled = true
			finished = s.cancelled || e.spec.Role == LLMRolePrefill
		} else {
			next := s.done + 1
			if s.cancelled || next >= s.output {
				// Final (or revoked) token: no KV growth needed.
				s.done = next
				s.ctx++
				if !s.gotTok {
					s.gotTok = true
					s.firstTok = now
				}
				finished = true
			} else {
				ok := true
				for !r.llmReserveKV(e.kvPerToken) {
					if end-1 > i {
						end--
						r.llmPreempt(e.active[end], now)
					} else {
						ok = false
						break
					}
				}
				if ok {
					s.kv += e.kvPerToken
					s.done = next
					s.ctx++
					if !s.gotTok {
						s.gotTok = true
						s.firstTok = now
					}
				} else {
					// Youngest resident is this sequence itself: the token is
					// discarded and the sequence resumes from done.
					r.llmPreempt(s, now)
					preempted = true
				}
			}
		}
		switch {
		case finished:
			r.llmFreeKV(s.kv)
			r.llmComplete(s, now)
		case preempted:
			// Already requeued by llmPreempt.
		default:
			e.active[w] = s
			w++
		}
	}
	e.active = e.active[:w]
	r.stats.CompletedBatches++
	r.llmMaybeStep()
}

// llmPreempt evicts a resident sequence: its KV pages are freed and it
// re-enters the queue front (victims are evicted youngest-first, and each
// push-front lands in front of the previous one, so preempted sequences
// resume oldest-first). A cancelled victim completes instead of resuming.
// Resumption re-prefills the full committed context before decoding
// continues.
func (r *Replica) llmPreempt(s llmSeq, now sim.Time) {
	r.llmFreeKV(s.kv)
	if s.cancelled {
		r.llmComplete(s, now)
		return
	}
	r.stats.Preempted++
	r.queue = append(r.queue, pending{})
	copy(r.queue[1:], r.queue)
	r.queue[0] = pending{
		arrival: s.arrival, enq: s.enq, id: s.id,
		prompt: s.prompt, output: s.output, done: s.done,
	}
}

// llmComplete emits the sequence's completion at a token boundary.
// KernelEnd and End coincide (the boundary is the abort and completion
// granularity), so the post-process stage telescopes to zero.
func (r *Replica) llmComplete(s llmSeq, now sim.Time) {
	r.completions = append(r.completions, Completion{
		ID: s.id, Arrival: s.arrival, End: now, Cancelled: s.cancelled,
		Enqueued: s.enq, BatchStart: s.admitted,
		KernelStart: s.kernStart, KernelEnd: now,
		FirstToken: s.firstTok, Tokens: s.done,
		Prompt: s.prompt, Output: s.output,
	})
	if !s.cancelled {
		r.stats.CompletedRequests++
	}
}
