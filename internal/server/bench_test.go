package server

import (
	"testing"

	"krisp/internal/gpu"
	"krisp/internal/llm"
	"krisp/internal/models"
	"krisp/internal/policies"
	"krisp/internal/sim"
)

// BenchmarkServeOneBatchKRISP measures the end-to-end simulation cost per
// served batch (virtual serving of squeezenet under KRISP-I).
func BenchmarkServeOneBatchKRISP(b *testing.B) {
	m, ok := models.ByName("squeezenet")
	if !ok {
		b.Fatal("model missing")
	}
	db := BuildDB(gpuSpecDefault(), []WorkerSpec{{Model: m, Batch: 32}})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Run(Config{
			Policy:  policies.KRISPI,
			Workers: []WorkerSpec{{Model: m, Batch: 32}},
			DB:      db,
			Seed:    int64(i),
			Warmup:  8_000,
			Measure: 80_000,
		})
	}
}

// BenchmarkFourWorkerContention measures the heavy case: four contending
// workers with full per-kernel allocation.
func BenchmarkFourWorkerContention(b *testing.B) {
	m, ok := models.ByName("squeezenet")
	if !ok {
		b.Fatal("model missing")
	}
	specs := []WorkerSpec{
		{Model: m, Batch: 32}, {Model: m, Batch: 32},
		{Model: m, Batch: 32}, {Model: m, Batch: 32},
	}
	db := BuildDB(gpuSpecDefault(), specs)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Run(Config{
			Policy:  policies.KRISPI,
			Workers: specs,
			DB:      db,
			Seed:    int64(i),
			Warmup:  10_000,
			Measure: 100_000,
		})
	}
}

func gpuSpecDefault() gpu.DeviceSpec { return gpu.MI50Spec() }

// BenchmarkLLMContinuousBatch measures the steady-state continuous-
// batching token loop: a saturated 8-sequence batch advanced one virtual
// millisecond per iteration, finished sequences replaced at the token
// boundary they leave on. Steady state must not allocate — this is the
// loop the CI serve-alloc guard watches.
func BenchmarkLLMContinuousBatch(b *testing.B) {
	n := NewNode(NodeConfig{GPUs: 1, Seed: 1})
	rep := n.AddReplica(ReplicaSpec{GPU: 0, CUs: 60, LLM: &LLMSpec{Model: llm.Small(), MaxSeqs: 8}})
	next := uint64(0)
	now := sim.Time(0)
	var buf []Completion
	submit := func() {
		next++
		rep.SubmitSeq(now, next, 64, 256, false)
	}
	for i := 0; i < 8; i++ {
		submit()
	}
	// Warm every pool and buffer to its high-water mark.
	for i := 0; i < 100; i++ {
		now += sim.Millisecond
		n.RunUntil(now)
		buf = rep.TakeCompletions(buf[:0])
		for range buf {
			submit()
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now += sim.Millisecond
		n.RunUntil(now)
		buf = rep.TakeCompletions(buf[:0])
		for range buf {
			submit()
		}
	}
}
