package server

import (
	"testing"

	"krisp/internal/gpu"
	"krisp/internal/models"
	"krisp/internal/policies"
)

// BenchmarkServeOneBatchKRISP measures the end-to-end simulation cost per
// served batch (virtual serving of squeezenet under KRISP-I).
func BenchmarkServeOneBatchKRISP(b *testing.B) {
	m, ok := models.ByName("squeezenet")
	if !ok {
		b.Fatal("model missing")
	}
	db := BuildDB(gpuSpecDefault(), []WorkerSpec{{Model: m, Batch: 32}})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Run(Config{
			Policy:  policies.KRISPI,
			Workers: []WorkerSpec{{Model: m, Batch: 32}},
			DB:      db,
			Seed:    int64(i),
			Warmup:  8_000,
			Measure: 80_000,
		})
	}
}

// BenchmarkFourWorkerContention measures the heavy case: four contending
// workers with full per-kernel allocation.
func BenchmarkFourWorkerContention(b *testing.B) {
	m, ok := models.ByName("squeezenet")
	if !ok {
		b.Fatal("model missing")
	}
	specs := []WorkerSpec{
		{Model: m, Batch: 32}, {Model: m, Batch: 32},
		{Model: m, Batch: 32}, {Model: m, Batch: 32},
	}
	db := BuildDB(gpuSpecDefault(), specs)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Run(Config{
			Policy:  policies.KRISPI,
			Workers: specs,
			DB:      db,
			Seed:    int64(i),
			Warmup:  10_000,
			Measure: 100_000,
		})
	}
}

func gpuSpecDefault() gpu.DeviceSpec { return gpu.MI50Spec() }
