package server

import (
	"testing"

	"krisp/internal/models"
	"krisp/internal/sim"
)

func testNode(t *testing.T, gpus int) *Node {
	t.Helper()
	return NewNode(NodeConfig{GPUs: gpus, Seed: 1})
}

func squeezenet(t *testing.T) models.Model {
	t.Helper()
	m, ok := models.ByName("squeezenet")
	if !ok {
		t.Fatal("squeezenet not in the model zoo")
	}
	return m
}

func TestReplicaServesAndCompletes(t *testing.T) {
	n := testNode(t, 1)
	rep := n.AddReplica(ReplicaSpec{Model: squeezenet(t), Batch: 4, CUs: 8})
	for i := 0; i < 8; i++ {
		if !rep.Submit(sim.Time(i) * 100) {
			t.Fatalf("submit %d refused", i)
		}
	}
	n.RunUntil(sim.Second)
	st := rep.Stats()
	if st.CompletedRequests != 8 {
		t.Fatalf("completed = %d, want 8", st.CompletedRequests)
	}
	// Greedy batching: the first submit starts a batch of 1, then the
	// backlog drains in full and partial batches (4, then 3).
	if st.CompletedBatches != 3 {
		t.Fatalf("batches = %d, want 3", st.CompletedBatches)
	}
	if st.Outstanding() != 0 {
		t.Fatalf("outstanding = %d after drain of work", st.Outstanding())
	}
	var buf []Completion
	buf = rep.TakeCompletions(buf)
	if len(buf) != 8 {
		t.Fatalf("completions = %d, want 8", len(buf))
	}
	for i, c := range buf {
		if c.End <= c.Arrival {
			t.Fatalf("completion %d has non-positive latency: %+v", i, c)
		}
	}
	// TakeCompletions drains: a second call returns nothing.
	if again := rep.TakeCompletions(buf[:0]); len(again) != 0 {
		t.Fatalf("completions not drained: %d left", len(again))
	}
}

func TestReplicaPartialBatchStarts(t *testing.T) {
	// A replica must not deadlock waiting for a full batch: a single queued
	// request still runs.
	n := testNode(t, 1)
	rep := n.AddReplica(ReplicaSpec{Model: squeezenet(t), Batch: 8, CUs: 8})
	rep.Submit(0)
	n.RunUntil(sim.Second)
	if st := rep.Stats(); st.CompletedRequests != 1 {
		t.Fatalf("completed = %d, want 1", st.CompletedRequests)
	}
}

func TestReplicaDrainLifecycle(t *testing.T) {
	n := testNode(t, 1)
	rep := n.AddReplica(ReplicaSpec{Model: squeezenet(t), Batch: 4, CUs: 8})
	for i := 0; i < 4; i++ {
		rep.Submit(0)
	}
	rep.Drain()
	if !rep.Draining() {
		t.Fatal("not draining after Drain")
	}
	if rep.Submit(0) {
		t.Fatal("draining replica accepted a request")
	}
	if rep.Drained() {
		t.Fatal("drained before queued work finished")
	}
	n.RunUntil(sim.Second)
	if !rep.Drained() {
		t.Fatal("not drained after queued work finished")
	}
	if st := rep.Stats(); st.CompletedRequests != 4 {
		t.Fatalf("completed = %d, want the pre-drain queue served", st.CompletedRequests)
	}
}

func TestReplicaKillDropsWork(t *testing.T) {
	n := testNode(t, 1)
	rep := n.AddReplica(ReplicaSpec{Model: squeezenet(t), Batch: 4, CUs: 8})
	for i := 0; i < 6; i++ {
		rep.Submit(0)
	}
	// Let the first batch get in flight, then kill.
	n.RunUntil(50)
	dropped := rep.Kill()
	if dropped == 0 {
		t.Fatal("kill dropped nothing with queued and in-flight work")
	}
	n.RunUntil(sim.Second)
	if got := rep.TakeCompletions(nil); len(got) != 0 {
		t.Fatalf("killed replica surfaced %d completions", len(got))
	}
	if rep.Submit(100) {
		t.Fatal("killed replica accepted a request")
	}
	if !rep.Drained() {
		t.Fatal("killed replica not terminal")
	}
	if st := rep.Stats(); st.Dropped != dropped {
		t.Fatalf("stats dropped = %d, want %d", st.Dropped, dropped)
	}
}

func TestReplicasShareNodeDeterministically(t *testing.T) {
	// Two replicas on one GPU (spatial co-location) plus one on a second
	// GPU: same submissions, two fresh nodes, identical completions.
	run := func() []Completion {
		n := testNode(t, 2)
		a := n.AddReplica(ReplicaSpec{Model: squeezenet(t), Batch: 4, GPU: 0, CUs: 8})
		b := n.AddReplica(ReplicaSpec{Model: squeezenet(t), Batch: 4, GPU: 0, CUs: 8})
		c := n.AddReplica(ReplicaSpec{Model: squeezenet(t), Batch: 4, GPU: 1, CUs: 16})
		for i := 0; i < 12; i++ {
			switch i % 3 {
			case 0:
				a.Submit(sim.Time(i) * 50)
			case 1:
				b.Submit(sim.Time(i) * 50)
			default:
				c.Submit(sim.Time(i) * 50)
			}
		}
		n.RunUntil(sim.Second)
		var out []Completion
		out = a.TakeCompletions(out)
		out = b.TakeCompletions(out)
		out = c.TakeCompletions(out)
		return out
	}
	x, y := run(), run()
	if len(x) != len(y) || len(x) != 12 {
		t.Fatalf("completions = %d / %d, want 12", len(x), len(y))
	}
	for i := range x {
		if x[i] != y[i] {
			t.Fatalf("completion %d differs: %+v vs %+v", i, x[i], y[i])
		}
	}
}

func TestNodeSchedulePastClamps(t *testing.T) {
	n := testNode(t, 1)
	n.RunUntil(1000)
	fired := sim.Time(-1)
	n.Schedule(500, func() { fired = n.Now() }) // in the past: clamp to now
	n.RunUntil(2000)
	if fired < 1000 {
		t.Fatalf("past-scheduled fn fired at %v, want clamped >= 1000", fired)
	}
}

func TestNodeEnergyAccumulates(t *testing.T) {
	n := testNode(t, 2)
	rep := n.AddReplica(ReplicaSpec{Model: squeezenet(t), Batch: 4, CUs: 16})
	for i := 0; i < 8; i++ {
		rep.Submit(0)
	}
	n.RunUntil(sim.Second)
	if n.EnergyJ() <= 0 {
		t.Fatal("no energy accounted for a busy node")
	}
}

func TestReplicaCancelQueued(t *testing.T) {
	n := testNode(t, 1)
	rep := n.AddReplica(ReplicaSpec{Model: squeezenet(t), Batch: 8, CUs: 8})
	for id := uint64(1); id <= 4; id++ {
		if !rep.SubmitID(0, id) {
			t.Fatalf("submit %d refused", id)
		}
	}
	if got := rep.Cancel(2); got != CancelDequeued {
		t.Fatalf("cancel queued copy = %v, want CancelDequeued", got)
	}
	if got := rep.Cancel(2); got != CancelNotFound {
		t.Fatalf("double cancel = %v, want CancelNotFound", got)
	}
	if got := rep.Cancel(99); got != CancelNotFound {
		t.Fatalf("cancel unknown id = %v, want CancelNotFound", got)
	}
	n.RunUntil(sim.Second)
	buf := rep.TakeCompletions(nil)
	if len(buf) != 3 {
		t.Fatalf("completions = %d, want 3 (one dequeued)", len(buf))
	}
	for _, c := range buf {
		if c.ID == 2 {
			t.Fatal("cancelled copy still completed")
		}
		if c.Cancelled {
			t.Fatalf("completion %d marked cancelled", c.ID)
		}
	}
	st := rep.Stats()
	if st.Cancelled != 1 || st.CompletedRequests != 3 {
		t.Fatalf("stats = %+v, want 1 cancelled / 3 completed", st)
	}
}

func TestReplicaCancelInFlight(t *testing.T) {
	n := testNode(t, 1)
	rep := n.AddReplica(ReplicaSpec{Model: squeezenet(t), Batch: 4, CUs: 8})
	for id := uint64(1); id <= 4; id++ {
		rep.SubmitID(0, id)
	}
	// Let the first batch start (greedy batching runs request 1 alone);
	// cancellation then lands at the batch boundary, not mid-kernel.
	n.RunUntil(50)
	if got := rep.Cancel(1); got != CancelInFlight {
		t.Fatalf("cancel running copy = %v, want CancelInFlight", got)
	}
	if got := rep.Cancel(1); got != CancelNotFound {
		t.Fatalf("double cancel of in-flight copy = %v, want CancelNotFound", got)
	}
	n.RunUntil(sim.Second)
	var cancelled int
	for _, c := range rep.TakeCompletions(nil) {
		if c.ID == 1 {
			if !c.Cancelled {
				t.Fatal("in-flight cancelled copy completed without the Cancelled mark")
			}
			cancelled++
		} else if c.Cancelled {
			t.Fatalf("completion %d marked cancelled", c.ID)
		}
	}
	if cancelled != 1 {
		t.Fatalf("cancelled completions = %d, want exactly 1", cancelled)
	}
	st := rep.Stats()
	if st.CompletedRequests != 3 {
		t.Fatalf("completed = %d, want 3 (cancelled copy not served)", st.CompletedRequests)
	}
	if st.Cancelled != 1 {
		t.Fatalf("stats cancelled = %d, want 1", st.Cancelled)
	}
}

func TestReplicaCancelAnonymousNever(t *testing.T) {
	// Id 0 is the anonymous Submit path: it must never be cancellable, or a
	// gateway cancel could revoke a bystander's request.
	n := testNode(t, 1)
	rep := n.AddReplica(ReplicaSpec{Model: squeezenet(t), Batch: 4, CUs: 8})
	rep.Submit(0)
	if got := rep.Cancel(0); got != CancelNotFound {
		t.Fatalf("cancel of id 0 = %v, want CancelNotFound", got)
	}
	n.RunUntil(sim.Second)
	if st := rep.Stats(); st.CompletedRequests != 1 || st.Cancelled != 0 {
		t.Fatalf("stats = %+v, want the anonymous request untouched", st)
	}
}

func TestReplicaDrainAndKillWithCancelledCopies(t *testing.T) {
	// Drain and Kill must stay correct when the queue and batch hold
	// revoked hedge copies: drain still terminates, kill still drops
	// everything, and cancelled copies never resurface as served work.
	n := testNode(t, 2)
	d := n.AddReplica(ReplicaSpec{Model: squeezenet(t), Batch: 4, GPU: 0, CUs: 8})
	k := n.AddReplica(ReplicaSpec{Model: squeezenet(t), Batch: 4, GPU: 1, CUs: 8})
	for id := uint64(1); id <= 6; id++ {
		d.SubmitID(0, id)
		k.SubmitID(0, id)
	}
	n.RunUntil(50) // first batches in flight
	d.Cancel(1)    // in-flight
	d.Cancel(6)    // queued
	d.Drain()
	k.Cancel(2)
	dropped := k.Kill()
	if dropped == 0 {
		t.Fatal("kill dropped nothing")
	}
	n.RunUntil(sim.Second)
	if !d.Drained() {
		t.Fatal("replica with cancelled copies never drained")
	}
	if got := k.TakeCompletions(nil); len(got) != 0 {
		t.Fatalf("killed replica surfaced %d completions", len(got))
	}
	served := 0
	for _, c := range d.TakeCompletions(nil) {
		if !c.Cancelled {
			served++
		}
	}
	if want := 4; served != want {
		t.Fatalf("drained replica served %d, want %d", served, want)
	}
}

// TestCompletionStageStampsMonotonic: every completion's stage boundaries
// telescope — arrival <= enqueue <= batch start <= kernel start <= kernel
// end <= end — so journey stage durations are non-negative and sum to the
// end-to-end latency.
func TestCompletionStageStampsMonotonic(t *testing.T) {
	n := testNode(t, 1)
	rep := n.AddReplica(ReplicaSpec{Model: squeezenet(t), Batch: 4, CUs: 8})
	for i := 0; i < 16; i++ {
		if !rep.Submit(sim.Time(i) * 700) {
			t.Fatalf("submit %d refused", i)
		}
	}
	n.RunUntil(sim.Second)
	buf := rep.TakeCompletions(nil)
	if len(buf) != 16 {
		t.Fatalf("completions = %d, want 16", len(buf))
	}
	for i, c := range buf {
		stamps := []sim.Time{c.Arrival, c.Enqueued, c.BatchStart, c.KernelStart, c.KernelEnd, c.End}
		for s := 1; s < len(stamps); s++ {
			if stamps[s] < stamps[s-1] {
				t.Fatalf("completion %d: stamp %d (%d) precedes stamp %d (%d): %+v",
					i, s, int64(stamps[s]), s-1, int64(stamps[s-1]), c)
			}
		}
		if c.KernelEnd <= c.KernelStart {
			t.Fatalf("completion %d: kernel window empty: %+v", i, c)
		}
	}
}
