package server

import (
	"testing"

	"krisp/internal/models"
	"krisp/internal/sim"
)

func testNode(t *testing.T, gpus int) *Node {
	t.Helper()
	return NewNode(NodeConfig{GPUs: gpus, Seed: 1})
}

func squeezenet(t *testing.T) models.Model {
	t.Helper()
	m, ok := models.ByName("squeezenet")
	if !ok {
		t.Fatal("squeezenet not in the model zoo")
	}
	return m
}

func TestReplicaServesAndCompletes(t *testing.T) {
	n := testNode(t, 1)
	rep := n.AddReplica(ReplicaSpec{Model: squeezenet(t), Batch: 4, CUs: 8})
	for i := 0; i < 8; i++ {
		if !rep.Submit(sim.Time(i) * 100) {
			t.Fatalf("submit %d refused", i)
		}
	}
	n.RunUntil(sim.Second)
	st := rep.Stats()
	if st.CompletedRequests != 8 {
		t.Fatalf("completed = %d, want 8", st.CompletedRequests)
	}
	// Greedy batching: the first submit starts a batch of 1, then the
	// backlog drains in full and partial batches (4, then 3).
	if st.CompletedBatches != 3 {
		t.Fatalf("batches = %d, want 3", st.CompletedBatches)
	}
	if st.Outstanding() != 0 {
		t.Fatalf("outstanding = %d after drain of work", st.Outstanding())
	}
	var buf []Completion
	buf = rep.TakeCompletions(buf)
	if len(buf) != 8 {
		t.Fatalf("completions = %d, want 8", len(buf))
	}
	for i, c := range buf {
		if c.End <= c.Arrival {
			t.Fatalf("completion %d has non-positive latency: %+v", i, c)
		}
	}
	// TakeCompletions drains: a second call returns nothing.
	if again := rep.TakeCompletions(buf[:0]); len(again) != 0 {
		t.Fatalf("completions not drained: %d left", len(again))
	}
}

func TestReplicaPartialBatchStarts(t *testing.T) {
	// A replica must not deadlock waiting for a full batch: a single queued
	// request still runs.
	n := testNode(t, 1)
	rep := n.AddReplica(ReplicaSpec{Model: squeezenet(t), Batch: 8, CUs: 8})
	rep.Submit(0)
	n.RunUntil(sim.Second)
	if st := rep.Stats(); st.CompletedRequests != 1 {
		t.Fatalf("completed = %d, want 1", st.CompletedRequests)
	}
}

func TestReplicaDrainLifecycle(t *testing.T) {
	n := testNode(t, 1)
	rep := n.AddReplica(ReplicaSpec{Model: squeezenet(t), Batch: 4, CUs: 8})
	for i := 0; i < 4; i++ {
		rep.Submit(0)
	}
	rep.Drain()
	if !rep.Draining() {
		t.Fatal("not draining after Drain")
	}
	if rep.Submit(0) {
		t.Fatal("draining replica accepted a request")
	}
	if rep.Drained() {
		t.Fatal("drained before queued work finished")
	}
	n.RunUntil(sim.Second)
	if !rep.Drained() {
		t.Fatal("not drained after queued work finished")
	}
	if st := rep.Stats(); st.CompletedRequests != 4 {
		t.Fatalf("completed = %d, want the pre-drain queue served", st.CompletedRequests)
	}
}

func TestReplicaKillDropsWork(t *testing.T) {
	n := testNode(t, 1)
	rep := n.AddReplica(ReplicaSpec{Model: squeezenet(t), Batch: 4, CUs: 8})
	for i := 0; i < 6; i++ {
		rep.Submit(0)
	}
	// Let the first batch get in flight, then kill.
	n.RunUntil(50)
	dropped := rep.Kill()
	if dropped == 0 {
		t.Fatal("kill dropped nothing with queued and in-flight work")
	}
	n.RunUntil(sim.Second)
	if got := rep.TakeCompletions(nil); len(got) != 0 {
		t.Fatalf("killed replica surfaced %d completions", len(got))
	}
	if rep.Submit(100) {
		t.Fatal("killed replica accepted a request")
	}
	if !rep.Drained() {
		t.Fatal("killed replica not terminal")
	}
	if st := rep.Stats(); st.Dropped != dropped {
		t.Fatalf("stats dropped = %d, want %d", st.Dropped, dropped)
	}
}

func TestReplicasShareNodeDeterministically(t *testing.T) {
	// Two replicas on one GPU (spatial co-location) plus one on a second
	// GPU: same submissions, two fresh nodes, identical completions.
	run := func() []Completion {
		n := testNode(t, 2)
		a := n.AddReplica(ReplicaSpec{Model: squeezenet(t), Batch: 4, GPU: 0, CUs: 8})
		b := n.AddReplica(ReplicaSpec{Model: squeezenet(t), Batch: 4, GPU: 0, CUs: 8})
		c := n.AddReplica(ReplicaSpec{Model: squeezenet(t), Batch: 4, GPU: 1, CUs: 16})
		for i := 0; i < 12; i++ {
			switch i % 3 {
			case 0:
				a.Submit(sim.Time(i) * 50)
			case 1:
				b.Submit(sim.Time(i) * 50)
			default:
				c.Submit(sim.Time(i) * 50)
			}
		}
		n.RunUntil(sim.Second)
		var out []Completion
		out = a.TakeCompletions(out)
		out = b.TakeCompletions(out)
		out = c.TakeCompletions(out)
		return out
	}
	x, y := run(), run()
	if len(x) != len(y) || len(x) != 12 {
		t.Fatalf("completions = %d / %d, want 12", len(x), len(y))
	}
	for i := range x {
		if x[i] != y[i] {
			t.Fatalf("completion %d differs: %+v vs %+v", i, x[i], y[i])
		}
	}
}

func TestNodeSchedulePastClamps(t *testing.T) {
	n := testNode(t, 1)
	n.RunUntil(1000)
	fired := sim.Time(-1)
	n.Schedule(500, func() { fired = n.Now() }) // in the past: clamp to now
	n.RunUntil(2000)
	if fired < 1000 {
		t.Fatalf("past-scheduled fn fired at %v, want clamped >= 1000", fired)
	}
}

func TestNodeEnergyAccumulates(t *testing.T) {
	n := testNode(t, 2)
	rep := n.AddReplica(ReplicaSpec{Model: squeezenet(t), Batch: 4, CUs: 16})
	for i := 0; i < 8; i++ {
		rep.Submit(0)
	}
	n.RunUntil(sim.Second)
	if n.EnergyJ() <= 0 {
		t.Fatal("no energy accounted for a busy node")
	}
}
