package server

import (
	"fmt"

	"krisp/internal/sim"
	"krisp/internal/telemetry"
)

// workerTelemetry holds one worker's metric handles, resolved once before
// serving starts. Workers sharing a model share the labeled series (the
// registry is get-or-register). A nil *workerTelemetry disables everything.
type workerTelemetry struct {
	// latency is the per-model end-to-end batch latency in milliseconds.
	latency *telemetry.Histogram
	// batches/requests count completions over the whole run (not just the
	// measurement window — live scrapes want the monotonic totals).
	batches  *telemetry.Counter
	requests *telemetry.Counter

	tracer   *telemetry.Tracer
	spanName string
	pid, tid int
}

// newWorkerTelemetry resolves the handles for a worker serving model on
// GPU pid through HSA queue tid. Returns nil when the hub has no registry.
func newWorkerTelemetry(hub *telemetry.Hub, model string, pid, tid int) *workerTelemetry {
	reg := hub.Registry()
	if reg == nil {
		return nil
	}
	lbl := fmt.Sprintf(`{model="%s"}`, model)
	return &workerTelemetry{
		latency:  reg.Histogram("krisp_server_batch_latency_ms"+lbl, "end-to-end batch latency (virtual ms)", telemetry.LatencyBucketsMs()),
		batches:  reg.Counter("krisp_server_batches_total"+lbl, "batches completed"),
		requests: reg.Counter("krisp_server_requests_total"+lbl, "requests completed"),
		tracer:   hub.Trace(),
		spanName: "batch:" + model,
		pid:      pid,
		tid:      tid,
	}
}

// observeBatch records one completed batch of n requests spanning
// [start, end] virtual microseconds.
func (t *workerTelemetry) observeBatch(n int, start, end sim.Time) {
	if t == nil {
		return
	}
	t.batches.Inc()
	t.requests.Add(uint64(n))
	t.latency.Observe((end - start) / 1000)
	t.tracer.SpanArg("server", t.spanName, t.pid, t.tid, start, end, "requests", float64(n))
}
