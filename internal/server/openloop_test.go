package server

import (
	"testing"

	"krisp/internal/policies"
)

func runOpen(t *testing.T, rate float64, workers int) OpenLoopResult {
	t.Helper()
	m := mustModel(t, "squeezenet")
	specs := make([]WorkerSpec, workers)
	for i := range specs {
		specs[i] = WorkerSpec{Model: m, Batch: 32}
	}
	return RunOpenLoop(Config{
		Policy:  policies.KRISPI,
		Workers: specs,
		Seed:    11,
	}, Arrival{RatePerSec: rate})
}

func TestOpenLoopLightLoad(t *testing.T) {
	// ~500 req/s against a server that sustains thousands: completions
	// must track the offered rate and latency stays near one small-batch
	// service time.
	res := runOpen(t, 500, 2)
	if res.Completed < res.Offered*0.85 || res.Completed > res.Offered*1.15 {
		t.Errorf("completed %.0f req/s, offered %.0f", res.Completed, res.Offered)
	}
	if res.RequestLatency.Len() == 0 {
		t.Fatal("no request latencies recorded")
	}
	// At 500 req/s, batches form far below the 32 maximum.
	if res.MeanBatch > 16 {
		t.Errorf("mean batch = %.1f at light load, want small", res.MeanBatch)
	}
}

func TestOpenLoopSaturation(t *testing.T) {
	light := runOpen(t, 500, 2)
	heavy := runOpen(t, 50_000, 2) // far beyond capacity
	if heavy.Completed >= heavy.Offered*0.9 {
		t.Errorf("server absorbed %.0f of %.0f req/s — should saturate", heavy.Completed, heavy.Offered)
	}
	// Under saturation, batches fill to the maximum and latency explodes.
	if heavy.MeanBatch < 30 {
		t.Errorf("mean batch = %.1f under saturation, want ~32", heavy.MeanBatch)
	}
	if heavy.RequestLatency.P95() <= light.RequestLatency.P95() {
		t.Error("saturated p95 not above light-load p95")
	}
}

// TestOpenLoopPartialBatchAtTimeout pins the batching timeout behaviour:
// when arrivals are sparser than Arrival.Timeout, the oldest request's
// deadline flushes partial (mostly single-request) batches instead of
// waiting for a full one, and a longer timeout buys bigger batches at the
// same rate.
func TestOpenLoopPartialBatchAtTimeout(t *testing.T) {
	m := mustModel(t, "squeezenet")
	run := func(timeoutUs float64) OpenLoopResult {
		return RunOpenLoop(Config{
			Policy:  policies.KRISPI,
			Workers: []WorkerSpec{{Model: m, Batch: 32}, {Model: m, Batch: 32}},
			Seed:    11,
		}, Arrival{RatePerSec: 400, Timeout: timeoutUs})
	}
	short := run(200) // mean inter-arrival 2.5ms >> 200us timeout
	if short.Completed < short.Offered*0.85 {
		t.Errorf("timeout flush lost requests: completed %.0f of %.0f req/s",
			short.Completed, short.Offered)
	}
	if short.MeanBatch >= 3 {
		t.Errorf("mean batch = %.1f with a 200us timeout at 400 req/s, want ~1", short.MeanBatch)
	}
	long := run(20_000) // 20ms timeout accumulates ~8 arrivals
	if long.MeanBatch <= short.MeanBatch*1.5 {
		t.Errorf("longer timeout did not grow batches: %.1f vs %.1f",
			long.MeanBatch, short.MeanBatch)
	}
}

// TestOpenLoopSaturationReportsShortfall locks in the saturation contract
// of OpenLoopResult: under extreme overload the result must report
// Completed far below Offered (not silently clip Offered), while the
// server still makes forward progress at its real capacity.
func TestOpenLoopSaturationReportsShortfall(t *testing.T) {
	res := runOpen(t, 200_000, 2)
	if res.Offered != 200_000 {
		t.Errorf("Offered = %.0f, want the configured 200000", res.Offered)
	}
	if res.Completed <= 0 {
		t.Fatal("saturated server made no progress")
	}
	if res.Completed > res.Offered/4 {
		t.Errorf("Completed %.0f req/s not << Offered %.0f under 40x overload",
			res.Completed, res.Offered)
	}
	// Every completed batch is full under saturation.
	if res.MeanBatch < 31 {
		t.Errorf("mean batch = %.1f under extreme overload, want ~32", res.MeanBatch)
	}
}

func TestOpenLoopLatencyMonotoneInLoad(t *testing.T) {
	prev := 0.0
	for _, rate := range []float64{500, 4000, 12000} {
		res := runOpen(t, rate, 2)
		p95 := res.RequestLatency.P95()
		if p95 < prev*0.7 { // allow batching-efficiency wobble
			t.Errorf("p95 dropped sharply from %.0f to %.0f at rate %.0f", prev, p95, rate)
		}
		prev = p95
	}
}

func TestOpenLoopMoreWorkersLowerLatency(t *testing.T) {
	one := runOpen(t, 6000, 1)
	four := runOpen(t, 6000, 4)
	if four.RequestLatency.P95() >= one.RequestLatency.P95() {
		t.Errorf("4-worker p95 %.0f not below 1-worker %.0f at 6k req/s",
			four.RequestLatency.P95(), one.RequestLatency.P95())
	}
}

func TestOpenLoopUtilization(t *testing.T) {
	res := runOpen(t, 1000, 2)
	if u := res.Utilization(4300, 2); u < 0.1 || u > 0.2 {
		t.Errorf("utilization = %v, want ~0.116", u)
	}
	if u := res.Utilization(0, 2); u != res.Utilization(4300, 0) {
		// both degenerate cases return +Inf
		t.Errorf("degenerate utilization mismatch")
	}
}

func TestOpenLoopValidation(t *testing.T) {
	m := mustModel(t, "squeezenet")
	a := mustModel(t, "albert")
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("zero rate", func() {
		RunOpenLoop(Config{Policy: policies.KRISPI,
			Workers: []WorkerSpec{{Model: m, Batch: 32}}}, Arrival{})
	})
	mustPanic("mixed models", func() {
		RunOpenLoop(Config{Policy: policies.KRISPI,
			Workers: []WorkerSpec{{Model: m, Batch: 32}, {Model: a, Batch: 32}}},
			Arrival{RatePerSec: 100})
	})
}
