package server

import (
	"math"
	"testing"

	"krisp/internal/models"
	"krisp/internal/policies"
	"krisp/internal/trace"
)

func mustModel(t *testing.T, name string) models.Model {
	t.Helper()
	m, ok := models.ByName(name)
	if !ok {
		t.Fatalf("model %s missing", name)
	}
	return m
}

func run(t *testing.T, policy policies.Kind, workers int, model string, batch int) Result {
	t.Helper()
	specs := make([]WorkerSpec, workers)
	for i := range specs {
		specs[i] = WorkerSpec{Model: mustModel(t, model), Batch: batch}
	}
	return Run(Config{Policy: policy, Workers: specs, Seed: 42})
}

func TestSingleWorkerBaseline(t *testing.T) {
	res := run(t, policies.MPSDefault, 1, "squeezenet", 32)
	if res.TotalRequests() == 0 {
		t.Fatal("no requests completed")
	}
	if res.RPS <= 0 {
		t.Fatalf("RPS = %v", res.RPS)
	}
	w := res.Workers[0]
	if w.Batches == 0 || w.Requests != w.Batches*32 {
		t.Errorf("batches=%d requests=%d", w.Batches, w.Requests)
	}
	// p95 should be in the vicinity of the model's isolated latency
	// (~8ms) plus pre/post.
	p95ms := w.P95() / 1000
	if p95ms < 3 || p95ms > 20 {
		t.Errorf("p95 = %.1fms, want ~8ms ballpark", p95ms)
	}
	if res.EnergyPerInference <= 0 {
		t.Error("no energy accounted")
	}
	if res.AvgBusyCUs <= 0 {
		t.Error("no utilization accounted")
	}
}

func TestDeterministicWithSeed(t *testing.T) {
	a := run(t, policies.KRISPI, 2, "squeezenet", 32)
	b := run(t, policies.KRISPI, 2, "squeezenet", 32)
	if a.RPS != b.RPS || a.EnergyJ != b.EnergyJ {
		t.Errorf("same seed, different results: %v vs %v RPS", a.RPS, b.RPS)
	}
}

func TestTwoWorkersImproveThroughput(t *testing.T) {
	// squeezenet right-sizes to ~21 CUs: two copies fit side by side, so
	// every policy should deliver more aggregate RPS than one worker.
	one := run(t, policies.MPSDefault, 1, "squeezenet", 32)
	for _, p := range policies.All() {
		two := run(t, p, 2, "squeezenet", 32)
		if two.RPS <= one.RPS*1.2 {
			t.Errorf("%v: 2-worker RPS %.1f not >1.2x single %.1f", p, two.RPS, one.RPS)
		}
	}
}

func TestKRISPIIsolatesAtFourWorkers(t *testing.T) {
	// The paper's headline: at 4 workers KRISP-I sustains throughput
	// scaling where MPS Default collapses under contention.
	mps := run(t, policies.MPSDefault, 4, "squeezenet", 32)
	krispI := run(t, policies.KRISPI, 4, "squeezenet", 32)
	if krispI.RPS <= mps.RPS {
		t.Errorf("KRISP-I RPS %.1f not above MPS Default %.1f at 4 workers",
			krispI.RPS, mps.RPS)
	}
}

func TestModelRightSizeOversubscriptionFlag(t *testing.T) {
	// vgg19 right-sizes to 60 CUs: two workers cannot fit.
	res := run(t, policies.ModelRightSize, 2, "vgg19", 32)
	if !res.Oversubscribed {
		t.Error("2x vgg19 under Model Right-Size should be oversubscribed")
	}
	res = run(t, policies.ModelRightSize, 2, "albert", 32)
	if res.Oversubscribed {
		t.Error("2x albert (12 CUs each) should fit without oversubscription")
	}
}

func TestEnergyPerInferenceDropsWithColocation(t *testing.T) {
	one := run(t, policies.MPSDefault, 1, "albert", 32)
	two := run(t, policies.KRISPI, 2, "albert", 32)
	if two.EnergyPerInference >= one.EnergyPerInference {
		t.Errorf("energy/inf did not drop: 1w=%.3fJ 2w=%.3fJ",
			one.EnergyPerInference, two.EnergyPerInference)
	}
}

func TestTraceCapturesWorkerZero(t *testing.T) {
	tr := &trace.Trace{}
	m := mustModel(t, "squeezenet")
	res := Run(Config{
		Policy:  policies.KRISPI,
		Workers: []WorkerSpec{{Model: m, Batch: 32}},
		Seed:    1,
		Trace:   tr,
	})
	if res.TotalRequests() == 0 {
		t.Fatal("no requests")
	}
	if tr.Len() < m.PaperKernels {
		t.Errorf("trace has %d records, want >= %d (one pass)", tr.Len(), m.PaperKernels)
	}
	for _, r := range tr.Records()[:m.PaperKernels] {
		if r.AllocatedCUs < 1 || r.AllocatedCUs > 60 {
			t.Fatalf("record %d allocated %d CUs", r.Seq, r.AllocatedCUs)
		}
		if r.MinCU < 1 {
			t.Fatalf("record %d minCU %d — right-sizing not applied", r.Seq, r.MinCU)
		}
	}
}

func TestMixedModelsRun(t *testing.T) {
	res := Run(Config{
		Policy: policies.KRISPI,
		Workers: []WorkerSpec{
			{Model: mustModel(t, "albert"), Batch: 32},
			{Model: mustModel(t, "squeezenet"), Batch: 32},
		},
		Seed: 7,
	})
	if res.Workers[0].Requests == 0 || res.Workers[1].Requests == 0 {
		t.Errorf("a worker starved: %+v", res.Workers)
	}
}

func TestForceEmulationSlower(t *testing.T) {
	m := mustModel(t, "squeezenet")
	native := Run(Config{
		Policy:  policies.KRISPI,
		Workers: []WorkerSpec{{Model: m, Batch: 32}},
		Seed:    3,
	})
	emulated := Run(Config{
		Policy:         policies.KRISPI,
		Workers:        []WorkerSpec{{Model: m, Batch: 32}},
		Seed:           3,
		ForceEmulation: true,
	})
	if emulated.Workers[0].BatchLatency.Mean() <= native.Workers[0].BatchLatency.Mean() {
		t.Errorf("emulated mean latency %.0fus not above native %.0fus",
			emulated.Workers[0].BatchLatency.Mean(), native.Workers[0].BatchLatency.Mean())
	}
}

func TestSmallBatchRuns(t *testing.T) {
	res := run(t, policies.KRISPI, 2, "mobilenet", 8)
	if res.TotalRequests() == 0 {
		t.Fatal("no requests at batch 8")
	}
	if res.Workers[0].Requests != res.Workers[0].Batches*8 {
		t.Error("request accounting wrong at batch 8")
	}
}

func TestRunPanicsWithoutWorkers(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Run without workers did not panic")
		}
	}()
	Run(Config{Policy: policies.MPSDefault})
}

func TestMaxP95NaNOnDegenerateRun(t *testing.T) {
	// No workers at all.
	var empty Result
	if got := empty.MaxP95(); !math.IsNaN(got) {
		t.Fatalf("MaxP95 with no workers = %v, want NaN", got)
	}
	// Workers that never completed a batch inside the window.
	unmeasured := Result{Workers: make([]WorkerStats, 3)}
	if got := unmeasured.MaxP95(); !math.IsNaN(got) {
		t.Fatalf("MaxP95 with unmeasured workers = %v, want NaN", got)
	}
	// One measured worker among unmeasured ones: its p95 wins, NaN-free.
	mixed := Result{Workers: make([]WorkerStats, 3)}
	mixed.Workers[1].BatchLatency.Add(1000)
	mixed.Workers[1].BatchLatency.Add(2000)
	if got := mixed.MaxP95(); math.IsNaN(got) || got <= 0 {
		t.Fatalf("MaxP95 with one measured worker = %v, want its p95", got)
	}
}
