package server

import (
	"bytes"
	"testing"

	"krisp/internal/faults"
	"krisp/internal/policies"
	"krisp/internal/telemetry"
	"krisp/internal/trace"
)

// runTraced runs one single-worker scenario with a kernel trace attached
// and the given hub (nil = telemetry off).
func runTraced(t *testing.T, hub *telemetry.Hub) (Result, *trace.Trace) {
	t.Helper()
	tr := &trace.Trace{}
	res := Run(Config{
		Policy:    policies.KRISPI,
		Workers:   []WorkerSpec{{Model: mustModel(t, "squeezenet"), Batch: 32}},
		Seed:      7,
		Trace:     tr,
		Telemetry: hub,
	})
	return res, tr
}

// TestTelemetryDoesNotPerturbResults is the byte-identical contract:
// attaching a full hub (registry + tracer) must not change a single
// simulated outcome, down to every kernel trace record.
func TestTelemetryDoesNotPerturbResults(t *testing.T) {
	off, trOff := runTraced(t, nil)
	on, trOn := runTraced(t, telemetry.NewHub(true))

	if off.RPS != on.RPS || off.EnergyJ != on.EnergyJ || off.AvgBusyCUs != on.AvgBusyCUs {
		t.Errorf("summary diverged: off RPS=%v E=%v, on RPS=%v E=%v",
			off.RPS, off.EnergyJ, on.RPS, on.EnergyJ)
	}
	if len(off.Workers) != len(on.Workers) {
		t.Fatalf("worker counts diverged: %d vs %d", len(off.Workers), len(on.Workers))
	}
	for i := range off.Workers {
		a, b := &off.Workers[i], &on.Workers[i]
		if a.Batches != b.Batches || a.Requests != b.Requests || a.P95() != b.P95() {
			t.Errorf("worker %d diverged: %+v vs %+v", i, a, b)
		}
	}
	var csvOff, csvOn bytes.Buffer
	if err := trOff.WriteCSV(&csvOff); err != nil {
		t.Fatal(err)
	}
	if err := trOn.WriteCSV(&csvOn); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(csvOff.Bytes(), csvOn.Bytes()) {
		t.Error("kernel trace CSV diverged between telemetry on and off")
	}
}

// TestKernelSpanCountMatchesTrace checks the tracer against the existing
// kernel trace: in a fault-free run every dispatched kernel produces
// exactly one "kernel"-category span, so the span count must equal the
// number of trace records.
func TestKernelSpanCountMatchesTrace(t *testing.T) {
	hub := telemetry.NewHub(true)
	_, tr := runTraced(t, hub)
	if tr.Len() == 0 {
		t.Fatal("empty kernel trace")
	}
	if got := hub.Trace().CountCat("kernel"); got != tr.Len() {
		t.Errorf("kernel spans = %d, trace records = %d", got, tr.Len())
	}
	// Every queue wait precedes a packet-process span which precedes the
	// dispatch, so the hsa category must be at least 2x the kernel count
	// (queue_wait + packet_process per dispatch).
	if got := hub.Trace().CountCat("hsa"); got < 2*tr.Len() {
		t.Errorf("hsa spans = %d, want >= %d", got, 2*tr.Len())
	}
}

// TestTelemetryRegistryPopulated cross-checks registry counters against
// the simulation's own accounting.
func TestTelemetryRegistryPopulated(t *testing.T) {
	hub := telemetry.NewHub(false)
	res, tr := runTraced(t, hub)

	reg := hub.Registry()
	if v := reg.Counter("krisp_hsa_dispatches_total{gpu=\"0\"}", "").Value(); v < uint64(tr.Len()) {
		t.Errorf("dispatches = %d, want >= %d trace records", v, tr.Len())
	}
	// The counters see every batch, including those outside the measurement
	// window that Result excludes, so they bound the result from above.
	batches := reg.Counter("krisp_server_batches_total{model=\"squeezenet\"}", "").Value()
	if batches < uint64(res.Workers[0].Batches) {
		t.Errorf("batch counter = %d, result says %d", batches, res.Workers[0].Batches)
	}
	reqs := reg.Counter("krisp_server_requests_total{model=\"squeezenet\"}", "").Value()
	if reqs < uint64(res.Workers[0].Requests) || reqs != batches*32 {
		t.Errorf("request counter = %d, batches = %d, result says %d",
			reqs, batches, res.Workers[0].Requests)
	}
	if v := reg.Counter("krisp_core_rightsize_decisions_total{gpu=\"0\"}", "").Value(); v == 0 {
		t.Error("no right-size decisions recorded under krisp-i")
	}
	if v := reg.Gauge("krisp_gpu_healthy_cus{gpu=\"0\"}", "").Value(); v != 60 {
		t.Errorf("healthy CUs = %d, want 60 on a fault-free MI50", v)
	}
}

// TestChaosTelemetryCounters runs the hardened path under a fault plan and
// checks the fault-injection counters mirror faults.Stats.
func TestChaosTelemetryCounters(t *testing.T) {
	hub := telemetry.NewHub(false)
	res := Run(Config{
		Policy:  policies.KRISPI,
		Workers: []WorkerSpec{{Model: mustModel(t, "squeezenet"), Batch: 32}},
		Seed:    11,
		Faults: &faults.Plan{
			CUKills:     []faults.CUKill{{At: 2000, GPU: 0, CU: 18}},
			Kernels:     faults.KernelFaults{StragglerProb: 0.05},
			SLOP99:      1000, // 1ms — low enough that the guard fires
			SLOWindow:   50000,
			SLOCooldown: 100000,
		},
		Telemetry: hub,
	})
	reg := hub.Registry()
	if v := reg.Counter("krisp_faults_cu_kills_total", "").Value(); v != uint64(res.Faults.CUKills) {
		t.Errorf("cu kill counter = %d, stats say %d", v, res.Faults.CUKills)
	}
	if v := reg.Counter("krisp_faults_kernel_stragglers_total", "").Value(); v != uint64(res.Faults.KernelStragglers) {
		t.Errorf("straggler counter = %d, stats say %d", v, res.Faults.KernelStragglers)
	}
	if v := reg.Counter("krisp_server_slo_violations_total", "").Value(); v != uint64(res.Faults.SLOWidenings) {
		t.Errorf("slo violation counter = %d, stats say %d", v, res.Faults.SLOWidenings)
	}
	if v := reg.Gauge("krisp_gpu_healthy_cus{gpu=\"0\"}", "").Value(); v != 59 {
		t.Errorf("healthy CUs = %d, want 59 after one kill", v)
	}
}
