package server

import (
	"context"
	"reflect"
	"testing"

	"krisp/internal/core"
	"krisp/internal/faults"
	"krisp/internal/gpu"
	"krisp/internal/hsa"
	"krisp/internal/policies"
	"krisp/internal/sim"
)

// chaosConfig is a small two-worker colocation with explicit windows so
// fault timelines can be placed deterministically: warmup ends at 40ms,
// measurement at 440ms (~30+ batches per worker for squeezenet).
func chaosConfig(t *testing.T, policy policies.Kind, plan *faults.Plan) Config {
	t.Helper()
	return Config{
		Policy: policy,
		Workers: []WorkerSpec{
			{Model: mustModel(t, "squeezenet"), Batch: 32},
			{Model: mustModel(t, "squeezenet"), Batch: 32},
		},
		Seed:    42,
		Warmup:  40_000,
		Measure: 400_000,
		Faults:  plan,
	}
}

func TestChaosCUDeathCompletesAndRemasks(t *testing.T) {
	plan := &faults.Plan{
		Seed: 1,
		CUKills: []faults.CUKill{
			{At: 60_000, GPU: 0, CU: 0},
			{At: 60_000, GPU: 0, CU: 1},
			{At: 120_000, GPU: 0, CU: 16},
			{At: 120_000, GPU: 0, CU: 17},
		},
	}
	res := Run(chaosConfig(t, policies.KRISPI, plan))
	if res.TotalRequests() == 0 {
		t.Fatal("CU-death run completed no requests")
	}
	for i, w := range res.Workers {
		if w.Batches == 0 {
			t.Errorf("worker %d starved after CU deaths", i)
		}
	}
	if res.Faults == nil {
		t.Fatal("Result.Faults nil despite armed plan")
	}
	if res.Faults.CUKills != 4 {
		t.Errorf("CUKills = %d, want 4", res.Faults.CUKills)
	}
	if res.Faults.HealthRemasks == 0 {
		t.Error("no dispatches were re-masked around the dead CUs")
	}
}

func TestChaosQueueStallWatchdogRecovers(t *testing.T) {
	plan := &faults.Plan{
		Seed: 2,
		// Hang worker 0's packet processor indefinitely: only a watchdog
		// queue reset can recover it.
		QueueStalls: []faults.QueueStall{
			{At: 80_000, GPU: 0, Queue: 0, Duration: 1e12},
		},
		WatchdogTimeout: 40_000,
	}
	res := Run(chaosConfig(t, policies.KRISPI, plan))
	if res.TotalRequests() == 0 {
		t.Fatal("stall run completed no requests")
	}
	if res.Faults.QueueStalls != 1 {
		t.Errorf("QueueStalls = %d, want 1", res.Faults.QueueStalls)
	}
	if res.Faults.WatchdogTrips == 0 {
		t.Error("watchdog never tripped on a hung queue")
	}
	if res.Faults.WatchdogResets == 0 {
		t.Error("watchdog never reset the hung queue")
	}
	// The stalled worker must resume completing batches after the reset.
	if res.Workers[0].Batches == 0 {
		t.Error("hung worker never completed a batch after recovery")
	}
}

func TestChaosIOCTLFailuresEngageLadder(t *testing.T) {
	plan := &faults.Plan{
		Seed:  3,
		IOCTL: faults.IOCTLFaults{FailProb: 0.5},
	}
	cfg := chaosConfig(t, policies.KRISPI, plan)
	cfg.ForceEmulation = true // the IOCTL-per-kernel path
	res := Run(cfg)
	if res.TotalRequests() == 0 {
		t.Fatal("IOCTL-failure run completed no requests")
	}
	if res.Faults.IOCTLFailures == 0 {
		t.Fatal("no IOCTL failures injected at prob 0.5")
	}
	if res.Faults.MaskFallbacks == 0 {
		t.Error("no kernels fell back to the stream mask after a failed IOCTL")
	}
	if res.Faults.StreamFallbacks == 0 {
		t.Error("degradation ladder never dropped to stream-scoped masking")
	}
	if res.Faults.DegradedTime <= 0 {
		t.Error("no degraded time accounted despite ladder fallbacks")
	}
}

func TestChaosKernelFaultsRetryAndComplete(t *testing.T) {
	plan := &faults.Plan{
		Seed: 4,
		Kernels: faults.KernelFaults{
			StragglerProb:     0.01,
			StragglerStretch:  3,
			TransientFailProb: 0.01,
		},
	}
	res := Run(chaosConfig(t, policies.KRISPI, plan))
	if res.TotalRequests() == 0 {
		t.Fatal("kernel-fault run completed no requests")
	}
	if res.Faults.KernelStragglers == 0 {
		t.Error("no stragglers injected")
	}
	if res.Faults.KernelTransientFailures == 0 {
		t.Error("no transient failures injected")
	}
	if res.Faults.KernelRetries == 0 {
		t.Error("hardened runtime never retried a failed kernel")
	}
}

// TestChaosDeterministicPerSeed runs the full fault cocktail twice with one
// seed and once with another: equal seeds must agree bit-for-bit, and the
// different seed must not.
func TestChaosDeterministicPerSeed(t *testing.T) {
	mkPlan := func(seed int64) *faults.Plan {
		return &faults.Plan{
			Seed:        seed,
			CUKills:     []faults.CUKill{{At: 70_000, GPU: 0, CU: 2}},
			QueueStalls: []faults.QueueStall{{At: 90_000, GPU: 0, Queue: 1, Duration: 20_000}},
			IOCTL:       faults.IOCTLFaults{FailProb: 0.2, SlowProb: 0.2, SlowExtra: 200},
			Kernels: faults.KernelFaults{
				StragglerProb:     0.01,
				StragglerStretch:  3,
				TransientFailProb: 0.01,
			},
		}
	}
	cfg := chaosConfig(t, policies.KRISPI, mkPlan(7))
	cfg.ForceEmulation = true
	a := Run(cfg)
	b := Run(chaosConfigCopy(cfg))
	if !reflect.DeepEqual(a, b) {
		t.Errorf("same seed, different results:\n a=%+v\n b=%+v", a, b)
	}
	cfg2 := chaosConfig(t, policies.KRISPI, mkPlan(8))
	cfg2.ForceEmulation = true
	c := Run(cfg2)
	if a.RPS == c.RPS && reflect.DeepEqual(a.Faults, c.Faults) {
		t.Error("different fault seeds produced identical runs")
	}
}

// chaosConfigCopy re-runs the exact same experiment (Config is a value;
// this exists to make the double-run explicit at the call site).
func chaosConfigCopy(cfg Config) Config { return cfg }

// TestChaosP99Bounded checks the graceful half of graceful degradation:
// under a moderate fault cocktail the windowed tail stays within a small
// multiple of the fault-free tail instead of running away.
func TestChaosP99Bounded(t *testing.T) {
	base := Run(chaosConfig(t, policies.KRISPI, nil))
	plan := &faults.Plan{
		Seed:    5,
		CUKills: []faults.CUKill{{At: 60_000, GPU: 0, CU: 3}},
		Kernels: faults.KernelFaults{
			StragglerProb:     0.005,
			StragglerStretch:  3,
			TransientFailProb: 0.005,
		},
	}
	chaos := Run(chaosConfig(t, policies.KRISPI, plan))
	for i := range chaos.Workers {
		bp := base.Workers[i].BatchLatency.P99()
		cp := chaos.Workers[i].BatchLatency.P99()
		if cp <= 0 {
			t.Fatalf("worker %d: no p99 under chaos", i)
		}
		if cp > 10*bp {
			t.Errorf("worker %d: chaos p99 %.0fus blew past 10x fault-free %.0fus", i, cp, bp)
		}
	}
}

// TestEmptyPlanBitIdentical is the no-regression guarantee: a nil plan, a
// zero plan, and a knobs-only plan must produce byte-for-byte the same
// Result as each other — fault injection armed nowhere, no extra events,
// no extra RNG draws.
func TestEmptyPlanBitIdentical(t *testing.T) {
	base := Run(chaosConfig(t, policies.KRISPI, nil))
	zero := Run(chaosConfig(t, policies.KRISPI, &faults.Plan{}))
	knobs := Run(chaosConfig(t, policies.KRISPI, &faults.Plan{
		Seed:       99,
		MaxRetries: 9,
		SLOP99:     1,
	}))
	if !reflect.DeepEqual(base, zero) {
		t.Errorf("zero plan perturbed the run:\n nil=%+v\n zero=%+v", base, zero)
	}
	if !reflect.DeepEqual(base, knobs) {
		t.Errorf("knobs-only plan perturbed the run:\n nil=%+v\n knobs=%+v", base, knobs)
	}
	if base.Faults != nil {
		t.Error("fault stats attached to a fault-free run")
	}
}

func TestRunHonorsCanceledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cfg := chaosConfig(t, policies.KRISPI, nil)
	cfg.Ctx = ctx
	res := Run(cfg)
	if !res.Interrupted {
		t.Error("pre-canceled context did not interrupt the run")
	}
	if res.TotalRequests() != 0 {
		t.Errorf("interrupted-at-start run completed %d requests", res.TotalRequests())
	}
}

// TestSLOGuardWidensAndTightens drives the guard's tick logic directly:
// a blown p99 walks every runtime down the ladder and starts the
// cool-down; calm windows after the cool-down re-tighten one rung at a
// time.
func TestSLOGuardWidensAndTightens(t *testing.T) {
	eng := sim.New()
	dev := gpu.NewDevice(eng, gpu.MI50Spec(), nil)
	cp := hsa.NewCommandProcessor(eng, dev, hsa.DefaultConfig())
	q := cp.NewQueue()
	stats := &faults.Stats{}
	rt := core.NewRuntime(eng, cp, q, core.NewRightSizer(nil, 60), core.Config{
		Mode: core.ModeNative,
		Hardening: &core.Hardening{
			MaxRetries: 3, RetryBackoff: 50, IOCTLFailureStreak: 3, Stats: stats,
		},
	})
	ch := &chaosHarness{
		eng:          eng,
		stats:        stats,
		runtimes:     []*core.Runtime{rt},
		batchTimeout: 10_000,
		window:       1_000,
		p99Threshold: 500,
		cooldown:     2_000,
		stopAt:       0, // ticks driven by hand
	}

	feed := func(latency sim.Duration, n int) {
		for i := 0; i < n; i++ {
			ch.observeBatch(latency)
		}
	}

	feed(2_000, 10) // tail far above threshold
	ch.tick()
	if stats.SLOWidenings != 1 || rt.Level() != core.LadderStreamScoped {
		t.Fatalf("after breach: widenings=%d level=%d", stats.SLOWidenings, rt.Level())
	}
	feed(2_000, 10) // still breached: next rung
	ch.tick()
	if rt.Level() != core.LadderFullGPU || stats.FullGPUFallbacks != 1 {
		t.Fatalf("after second breach: level=%d fullGPU=%d", rt.Level(), stats.FullGPUFallbacks)
	}

	// Calm window inside the cool-down: no tightening yet.
	feed(100, 10)
	ch.tick()
	if rt.Level() != core.LadderFullGPU {
		t.Fatal("tightened during the cool-down")
	}
	// Past the cool-down, calm windows tighten one rung per tick.
	eng.RunUntil(eng.Now() + 5_000)
	feed(100, 10)
	ch.tick()
	if rt.Level() != core.LadderStreamScoped || stats.LadderTightenings != 1 {
		t.Fatalf("after calm window: level=%d tightenings=%d", rt.Level(), stats.LadderTightenings)
	}
	feed(100, 10)
	ch.tick()
	if rt.Level() != core.LadderKernelScoped {
		t.Fatalf("never returned to kernel-scoped: level=%d", rt.Level())
	}
	if stats.DegradedTime <= 0 {
		t.Error("degraded time not accumulated across the widened interval")
	}
}

// TestWatchdogTripResetsAndWidens drives a watchdog directly against a
// hung queue.
func TestWatchdogTripResetsAndWidens(t *testing.T) {
	eng := sim.New()
	dev := gpu.NewDevice(eng, gpu.MI50Spec(), nil)
	cp := hsa.NewCommandProcessor(eng, dev, hsa.DefaultConfig())
	q := cp.NewQueue()
	stats := &faults.Stats{}
	rt := core.NewRuntime(eng, cp, q, core.NewRightSizer(nil, 60), core.Config{
		Mode: core.ModeNative,
		Hardening: &core.Hardening{
			MaxRetries: 3, RetryBackoff: 50, IOCTLFailureStreak: 3, Stats: stats,
		},
	})
	ch := &chaosHarness{
		eng: eng, stats: stats, runtimes: []*core.Runtime{rt},
		batchTimeout: 1_000, window: 100_000, p99Threshold: 1, cooldown: 1,
	}
	w := &worker{rt: rt, eng: eng}
	w.chaos = ch

	q.StallFor(1e12)
	wd := ch.armWatchdog(w)
	eng.RunUntil(1_500)
	if stats.WatchdogTrips != 1 {
		t.Fatalf("trips = %d, want 1", stats.WatchdogTrips)
	}
	if stats.WatchdogResets != 1 {
		t.Fatalf("resets = %d, want 1", stats.WatchdogResets)
	}
	if q.Stalled() {
		t.Error("queue still stalled after watchdog reset")
	}
	if rt.Level() == core.LadderKernelScoped {
		t.Error("watchdog trip did not widen the runtime")
	}
	// A re-armed watchdog keeps firing until stopped.
	eng.RunUntil(2_500)
	if stats.WatchdogTrips != 2 {
		t.Errorf("watchdog did not re-arm: trips = %d", stats.WatchdogTrips)
	}
	wd.stop()
	eng.RunUntil(10_000)
	if stats.WatchdogTrips != 2 {
		t.Errorf("stopped watchdog fired again: trips = %d", stats.WatchdogTrips)
	}
}
