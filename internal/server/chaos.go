package server

import (
	"krisp/internal/core"
	"krisp/internal/faults"
	"krisp/internal/metrics"
	"krisp/internal/sim"
	"krisp/internal/telemetry"
)

// chaosHarness is the server-side half of the hardened serving path,
// armed only when Config.Faults holds a non-empty plan: per-batch watchdog
// timeouts in virtual time, and an SLO guard that watches the windowed p99
// of batch latencies and walks every runtime's degradation ladder — wider
// masks when the tail blows past the threshold, re-tightened one rung per
// window once a cool-down expires.
type chaosHarness struct {
	eng      *sim.Engine
	stats    *faults.Stats
	runtimes []*core.Runtime

	batchTimeout sim.Duration

	window        sim.Duration
	p99Threshold  float64
	cooldown      sim.Duration
	cooldownUntil sim.Time
	recent        metrics.Sample
	stopAt        sim.Time

	// sloViolations mirrors SLOWidenings into the metrics registry (nil
	// when telemetry is off — the handle is nil-safe).
	sloViolations *telemetry.Counter
}

// startGuard begins the periodic SLO-guard ticks. Ticks stop rescheduling
// past stopAt so a bounded run leaves no self-perpetuating events behind.
func (c *chaosHarness) startGuard() {
	c.eng.After(c.window, func() { c.tick() })
}

func (c *chaosHarness) tick() {
	if c.recent.Len() > 0 {
		now := c.eng.Now()
		if p99 := c.recent.P99(); p99 > c.p99Threshold {
			c.stats.SLOWidenings++
			c.sloViolations.Inc()
			for _, rt := range c.runtimes {
				rt.Widen()
			}
			c.cooldownUntil = now + c.cooldown
		} else if now >= c.cooldownUntil {
			for _, rt := range c.runtimes {
				rt.Tighten()
			}
		}
		c.recent = metrics.Sample{}
	}
	if c.eng.Now() < c.stopAt {
		c.eng.After(c.window, func() { c.tick() })
	}
}

// observeBatch feeds one completed batch latency to the SLO guard.
func (c *chaosHarness) observeBatch(latency float64) {
	c.recent.Add(latency)
}

// watchdog guards one in-flight batch: if the batch outlives the timeout,
// the trip resets a stalled packet processor (the driver-level queue
// reset), widens the worker's masks, and re-arms in case the batch is
// still wedged.
type watchdog struct {
	c  *chaosHarness
	w  *worker
	ev *sim.Event
}

// armWatchdog starts a watchdog for a batch beginning now on w.
func (c *chaosHarness) armWatchdog(w *worker) *watchdog {
	wd := &watchdog{c: c, w: w}
	wd.ev = c.eng.After(c.batchTimeout, wd.trip)
	return wd
}

func (wd *watchdog) trip() {
	c := wd.c
	c.stats.WatchdogTrips++
	if wd.w.rt.Queue().ResetStall() {
		c.stats.WatchdogResets++
	}
	wd.w.rt.Widen()
	wd.ev = c.eng.After(c.batchTimeout, wd.trip)
}

// stop cancels the watchdog once its batch completes.
func (wd *watchdog) stop() {
	wd.c.eng.Cancel(wd.ev)
}
