package server

import (
	"reflect"
	"testing"

	"krisp/internal/llm"
	"krisp/internal/sim"
)

func llmReplica(n *Node, spec LLMSpec) *Replica {
	return n.AddReplica(ReplicaSpec{GPU: 0, CUs: 60, LLM: &spec})
}

// TestLLMSequenceLifecycle serves three sequences end to end on a mixed
// replica and checks every completion invariant: full token counts, the
// stage stamps in order, and both KV ledgers drained afterwards.
func TestLLMSequenceLifecycle(t *testing.T) {
	n := testNode(t, 1)
	rep := llmReplica(n, LLMSpec{Model: llm.Small(), MaxSeqs: 4})
	for id := uint64(1); id <= 3; id++ {
		if !rep.SubmitSeq(0, id, 64, 16, false) {
			t.Fatalf("seq %d refused", id)
		}
	}
	n.RunUntil(sim.Second)

	comps := rep.TakeCompletions(nil)
	if len(comps) != 3 {
		t.Fatalf("completions = %d, want 3", len(comps))
	}
	for _, c := range comps {
		if c.Cancelled {
			t.Fatalf("seq %d cancelled", c.ID)
		}
		if c.Tokens != 16 || c.Prompt != 64 || c.Output != 16 {
			t.Fatalf("seq %d lengths: tokens %d prompt %d output %d", c.ID, c.Tokens, c.Prompt, c.Output)
		}
		stamps := []sim.Time{c.Arrival, c.Enqueued, c.BatchStart, c.KernelStart, c.FirstToken, c.KernelEnd, c.End}
		names := []string{"Arrival", "Enqueued", "BatchStart", "KernelStart", "FirstToken", "KernelEnd", "End"}
		for i := 1; i < len(stamps); i++ {
			if stamps[i] < stamps[i-1] {
				t.Fatalf("seq %d: %s (%v) < %s (%v)", c.ID, names[i], stamps[i], names[i-1], stamps[i-1])
			}
		}
		// Token boundaries are the completion granularity: the last kernel
		// step and the completion coincide, and the first token costs at
		// least one decode step after the kernels start.
		if c.KernelEnd != c.End {
			t.Fatalf("seq %d: KernelEnd %v != End %v", c.ID, c.KernelEnd, c.End)
		}
		if c.FirstToken <= c.KernelStart {
			t.Fatalf("seq %d: first token %v not after kernel start %v", c.ID, c.FirstToken, c.KernelStart)
		}
	}
	if got := rep.KVInUse(); got != 0 {
		t.Fatalf("KV in use after drain-down = %g, want 0", got)
	}
	st := rep.Stats()
	if st.CompletedRequests != 3 || st.Preempted != 0 || st.Dropped != 0 {
		t.Fatalf("stats = %+v", st)
	}
	// One shared prefill step plus one boundary per generated token.
	if st.CompletedBatches < 17 {
		t.Fatalf("token steps = %d, want >= 17", st.CompletedBatches)
	}
}

// TestLLMContinuousBatchJoinLeave: a sequence submitted mid-run joins the
// running batch at the next token boundary and leaves at its own pace —
// the short joiner finishes first while the long sequence keeps decoding,
// and the shared steps cost far fewer boundaries than serial service.
func TestLLMContinuousBatchJoinLeave(t *testing.T) {
	n := testNode(t, 1)
	rep := llmReplica(n, LLMSpec{Model: llm.Small(), MaxSeqs: 8})
	if !rep.SubmitSeq(0, 1, 64, 32, false) {
		t.Fatal("long seq refused")
	}
	n.RunUntil(2 * sim.Millisecond)
	joinAt := n.Now()
	if !rep.SubmitSeq(joinAt, 2, 64, 8, false) {
		t.Fatal("joiner refused")
	}
	n.RunUntil(sim.Second)

	comps := rep.TakeCompletions(nil)
	if len(comps) != 2 {
		t.Fatalf("completions = %d, want 2", len(comps))
	}
	if comps[0].ID != 2 || comps[1].ID != 1 {
		t.Fatalf("completion order = [%d %d], want joiner first", comps[0].ID, comps[1].ID)
	}
	if comps[0].BatchStart < joinAt {
		t.Fatalf("joiner admitted at %v, before its submission at %v", comps[0].BatchStart, joinAt)
	}
	if comps[0].End >= comps[1].End {
		t.Fatal("joiner did not leave the batch before the long sequence finished")
	}
	if comps[0].Tokens != 8 || comps[1].Tokens != 32 {
		t.Fatalf("tokens = [%d %d], want [8 32]", comps[0].Tokens, comps[1].Tokens)
	}
	// Serial service would cost (1+32)+(1+8) = 42 boundaries; continuous
	// batching shares the decode steps.
	if st := rep.Stats(); st.CompletedBatches > 36 {
		t.Fatalf("token steps = %d, want continuous batching to share them (<= 36)", st.CompletedBatches)
	}
}

// TestLLMAdmissionAtExactCapacity pins the admission boundary: a budget of
// exactly the sequence's full-lifetime footprint admits and completes it
// (the final token needs no KV growth, so the peak hold is footprint-1),
// while one byte less rejects it outright with a cancelled completion.
func TestLLMAdmissionAtExactCapacity(t *testing.T) {
	model := llm.Small()
	kvpt := model.KVBytesPerToken()
	footprint := 16 * kvpt // prompt 8 + output 8

	n := testNode(t, 1)
	fits := llmReplica(n, LLMSpec{Model: model, MaxSeqs: 4, KVBudget: footprint})
	tight := llmReplica(n, LLMSpec{Model: model, MaxSeqs: 4, KVBudget: footprint - 1})
	if !fits.SubmitSeq(0, 1, 8, 8, false) {
		t.Fatal("exact-fit seq refused")
	}
	if !tight.SubmitSeq(0, 2, 8, 8, false) {
		t.Fatal("submit to tight replica refused outright (should drop at admission)")
	}
	n.RunUntil(sim.Second)

	comps := fits.TakeCompletions(nil)
	if len(comps) != 1 || comps[0].Cancelled || comps[0].Tokens != 8 {
		t.Fatalf("exact-fit completion = %+v", comps)
	}
	if st := fits.Stats(); st.Dropped != 0 || st.Preempted != 0 {
		t.Fatalf("exact-fit stats = %+v", st)
	}

	comps = tight.TakeCompletions(nil)
	if len(comps) != 1 || !comps[0].Cancelled || comps[0].Tokens != 0 {
		t.Fatalf("one-byte-under completion = %+v", comps)
	}
	if st := tight.Stats(); st.Dropped != 1 || st.CompletedRequests != 0 {
		t.Fatalf("one-byte-under stats = %+v", st)
	}
	if fits.KVInUse() != 0 || tight.KVInUse() != 0 {
		t.Fatalf("KV left reserved: fits %g tight %g", fits.KVInUse(), tight.KVInUse())
	}
}

// TestLLMOversizeSequenceDropped: a request whose prompt+output exceeds the
// model context window can never be served and is rejected at admission.
func TestLLMOversizeSequenceDropped(t *testing.T) {
	n := testNode(t, 1)
	rep := llmReplica(n, LLMSpec{Model: llm.Small(), MaxSeqs: 4})
	if !rep.SubmitSeq(0, 1, 2000, 100, false) { // 2100 > MaxContext 2048
		t.Fatal("submit refused outright")
	}
	n.RunUntil(sim.Second)
	comps := rep.TakeCompletions(nil)
	if len(comps) != 1 || !comps[0].Cancelled {
		t.Fatalf("completions = %+v, want one cancelled", comps)
	}
	if st := rep.Stats(); st.Dropped != 1 {
		t.Fatalf("stats = %+v, want Dropped 1", st)
	}
}

// TestLLMPreemptResumeOrdering pins the eviction and resume discipline.
// Three 8-prompt/8-output sequences under a 24-token budget fill it
// exactly once all three are resident (3x8 context tokens). The KV
// arithmetic then forces exactly five preemptions:
//
//   - first growth boundary: the budget is full, so the youngest resident
//     (seq 3, still unprefilled) is evicted to let seq 1 grow;
//   - when the budget refills, the youngest grower self-preempts — its own
//     token is discarded, but freeing its pages makes its context fit
//     again and it re-admits at the same boundary (a one-token bounce);
//   - one boundary later the oldest sequence needs the page back and
//     evicts that same victim for real; it lands in the resume queue IN
//     FRONT of earlier victims (push-front keeps resumes oldest-first);
//   - seq 1 completes alone, seqs 2 and 3 re-admit and re-prefill their
//     committed context, and the identical bounce-then-evict pattern
//     repeats against seq 3 before both finish.
//
// Every sequence completes uncancelled, in submission order, with its full
// output — preemption costs re-computation, never correctness.
func TestLLMPreemptResumeOrdering(t *testing.T) {
	model := llm.Small()
	kvpt := model.KVBytesPerToken()
	n := testNode(t, 1)
	rep := llmReplica(n, LLMSpec{Model: model, MaxSeqs: 8, KVBudget: 24 * kvpt})
	for id := uint64(1); id <= 3; id++ {
		if !rep.SubmitSeq(0, id, 8, 8, false) {
			t.Fatalf("seq %d refused", id)
		}
	}
	n.RunUntil(sim.Second)

	comps := rep.TakeCompletions(nil)
	if len(comps) != 3 {
		t.Fatalf("completions = %d, want 3", len(comps))
	}
	for i, c := range comps {
		if c.ID != uint64(i+1) {
			t.Fatalf("completion %d is seq %d, want submission order 1,2,3", i, c.ID)
		}
		if c.Cancelled || c.Tokens != 8 {
			t.Fatalf("seq %d: cancelled=%v tokens=%d, want full uncancelled output", c.ID, c.Cancelled, c.Tokens)
		}
	}
	st := rep.Stats()
	if st.Preempted != 5 {
		t.Fatalf("preemptions = %d, want exactly 5 (see trace derivation)", st.Preempted)
	}
	if st.CompletedRequests != 3 || st.Dropped != 0 {
		t.Fatalf("stats = %+v", st)
	}
	if rep.KVInUse() != 0 {
		t.Fatalf("KV in use = %g, want 0", rep.KVInUse())
	}
}

// TestLLMDecodeJoinRacesDrain: a sequence that joins just before Drain is
// queued work and completes; one submitted after Drain is refused. The
// replica only reports Drained once the resident batch has emptied.
func TestLLMDecodeJoinRacesDrain(t *testing.T) {
	n := testNode(t, 1)
	rep := llmReplica(n, LLMSpec{Model: llm.Small(), MaxSeqs: 8})
	if !rep.SubmitSeq(0, 1, 8, 64, false) {
		t.Fatal("long seq refused")
	}
	n.RunUntil(2 * sim.Millisecond) // mid-decode, between token boundaries
	if !rep.SubmitSeq(n.Now(), 2, 8, 8, false) {
		t.Fatal("join before Drain refused")
	}
	rep.Drain()
	if rep.SubmitSeq(n.Now(), 3, 8, 8, false) {
		t.Fatal("join after Drain accepted")
	}
	if rep.Drained() {
		t.Fatal("Drained with a resident batch still decoding")
	}
	n.RunUntil(sim.Second)
	if !rep.Drained() {
		t.Fatal("not Drained after the batch emptied")
	}
	comps := rep.TakeCompletions(nil)
	if len(comps) != 2 {
		t.Fatalf("completions = %d, want 2", len(comps))
	}
	if comps[0].ID != 2 || comps[1].ID != 1 {
		t.Fatalf("completion order = [%d %d], want short joiner first", comps[0].ID, comps[1].ID)
	}
	if st := rep.Stats(); st.CompletedRequests != 2 || st.Dropped != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestLLMKillAtTokenBoundary: Kill mid-step discards the resident batch,
// frees every KV page immediately, and suppresses all completions — the
// pending step event still fires but commits nothing.
func TestLLMKillAtTokenBoundary(t *testing.T) {
	n := testNode(t, 1)
	rep := llmReplica(n, LLMSpec{Model: llm.Small(), MaxSeqs: 8})
	rep.SubmitSeq(0, 1, 8, 64, false)
	rep.SubmitSeq(0, 2, 8, 64, false)
	n.RunUntil(2 * sim.Millisecond)
	if rep.KVInUse() == 0 {
		t.Fatal("no KV resident before Kill — scenario lost its pressure")
	}
	if lost := rep.Kill(); lost != 2 {
		t.Fatalf("Kill lost %d, want 2", lost)
	}
	if rep.KVInUse() != 0 {
		t.Fatalf("KV in use after Kill = %g, want 0", rep.KVInUse())
	}
	n.RunUntil(sim.Second)
	if comps := rep.TakeCompletions(nil); len(comps) != 0 {
		t.Fatalf("killed replica emitted %d completions", len(comps))
	}
	st := rep.Stats()
	if st.Dropped != 2 || st.CompletedRequests != 0 {
		t.Fatalf("stats = %+v", st)
	}
	if !rep.Drained() {
		t.Fatal("killed replica not Drained")
	}
}

// TestLLMPrefillDecodeRoles covers the disaggregated halves in isolation:
// a prefill replica completes after the prompt pass with zero generated
// tokens and releases its KV hold (the pages hand off), and a decode
// replica serves a prefilled sequence to its full output.
func TestLLMPrefillDecodeRoles(t *testing.T) {
	n := testNode(t, 1)
	pre := llmReplica(n, LLMSpec{
		Model: llm.Small(), MaxSeqs: 4, Role: LLMRolePrefill,
		PrefillCUs: 42, DecodeCUs: 8,
	})
	dec := llmReplica(n, LLMSpec{
		Model: llm.Small(), MaxSeqs: 4, Role: LLMRoleDecode,
		PrefillCUs: 42, DecodeCUs: 8,
	})
	if !pre.SubmitSeq(0, 1, 128, 32, false) {
		t.Fatal("prefill submit refused")
	}
	if !dec.SubmitSeq(0, 2, 128, 32, true) {
		t.Fatal("decode submit refused")
	}
	n.RunUntil(sim.Second)

	comps := pre.TakeCompletions(nil)
	if len(comps) != 1 {
		t.Fatalf("prefill completions = %d, want 1", len(comps))
	}
	c := comps[0]
	if c.Cancelled || c.Tokens != 0 || c.FirstToken != 0 {
		t.Fatalf("prefill completion = %+v, want zero tokens", c)
	}
	if c.KernelEnd != c.End || c.KernelStart < c.BatchStart {
		t.Fatalf("prefill stamps out of order: %+v", c)
	}
	if pre.KVInUse() != 0 {
		t.Fatalf("prefill replica still holds %g KV bytes after handoff", pre.KVInUse())
	}

	comps = dec.TakeCompletions(nil)
	if len(comps) != 1 {
		t.Fatalf("decode completions = %d, want 1", len(comps))
	}
	c = comps[0]
	if c.Cancelled || c.Tokens != 32 || c.Prompt != 128 {
		t.Fatalf("decode completion = %+v, want 32 tokens", c)
	}
	if c.FirstToken <= c.KernelStart || c.FirstToken >= c.End {
		t.Fatalf("decode first token %v not inside (%v, %v)", c.FirstToken, c.KernelStart, c.End)
	}
	if dec.KVInUse() != 0 {
		t.Fatalf("decode replica still holds %g KV bytes", dec.KVInUse())
	}
}

// TestLLMTwinRunDeterminism: two identically-seeded runs with staggered
// submissions, KV pressure, and jittered kernels produce byte-identical
// completion streams.
func TestLLMTwinRunDeterminism(t *testing.T) {
	model := llm.Small()
	run := func() []Completion {
		n := NewNode(NodeConfig{GPUs: 1, Seed: 7})
		rep := llmReplica(n, LLMSpec{Model: model, MaxSeqs: 4, KVBudget: 48 * model.KVBytesPerToken()})
		id := uint64(0)
		for at := sim.Time(0); at < 20*sim.Millisecond; at += 3 * sim.Millisecond {
			at := at
			n.Schedule(at, func() {
				id++
				rep.SubmitSeq(at, id, 16+int(id%5)*8, 8+int(id%3)*8, false)
			})
		}
		n.RunUntil(sim.Second)
		return rep.TakeCompletions(nil)
	}
	a, b := run(), run()
	if len(a) == 0 {
		t.Fatal("no completions")
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("twin runs diverged:\na: %+v\nb: %+v", a, b)
	}
}

// TestLLMTokenLoopZeroAlloc: after warmup the continuous-batching token
// loop — step scheduling, kernel assembly, KV growth, boundary commit —
// allocates nothing per step. This is the satellite guarantee behind the
// tightened CI serve-alloc guard.
func TestLLMTokenLoopZeroAlloc(t *testing.T) {
	n := testNode(t, 1)
	rep := llmReplica(n, LLMSpec{Model: llm.Small(), MaxSeqs: 8})
	next := uint64(0)
	for i := 0; i < 8; i++ {
		next++
		rep.SubmitSeq(0, next, 64, 1024, false)
	}
	// Warm the engine heap, descriptor buffers, and ledgers to their
	// high-water marks.
	now := 50 * sim.Millisecond
	n.RunUntil(now)
	var buf []Completion
	allocs := testing.AllocsPerRun(100, func() {
		now += sim.Millisecond
		n.RunUntil(now)
		buf = rep.TakeCompletions(buf[:0])
		for range buf {
			next++
			rep.SubmitSeq(now, next, 64, 1024, false)
		}
	})
	if allocs > 0 {
		t.Errorf("steady-state token loop allocated %.1f times per ms, want 0", allocs)
	}
}
