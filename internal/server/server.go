// Package server models the paper's custom GPU inference server (§VI-A):
// a frontend feeding per-worker request queues, and independent workers
// that each own one GPU stream (HSA queue) and process batches back to
// back — pre-processing, an inference pass of hundreds of kernel calls,
// then post-processing.
//
// Matching the paper's methodology, the load generator is closed-loop and
// drives the server at maximum load: every worker always has a batch ready.
// Measurements are windowed: a warmup phase reaches steady state, then
// throughput, tail latency, and energy are collected over a measurement
// window of virtual time.
package server

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"krisp/internal/core"
	"krisp/internal/energy"
	"krisp/internal/faults"
	"krisp/internal/gpu"
	"krisp/internal/hsa"
	"krisp/internal/kernels"
	"krisp/internal/metrics"
	"krisp/internal/models"
	"krisp/internal/policies"
	"krisp/internal/profile"
	"krisp/internal/sim"
	"krisp/internal/telemetry"
	"krisp/internal/trace"
)

// WorkerSpec describes one model worker.
type WorkerSpec struct {
	Model models.Model
	Batch int
}

// Config describes one serving experiment.
type Config struct {
	// Spec is the simulated device; zero value means MI50.
	Spec gpu.DeviceSpec
	// HSA configures the runtime/command-processor cost model; zero value
	// means hsa.DefaultConfig.
	HSA hsa.Config
	// Policy is the spatial partitioning policy under test.
	Policy policies.Kind
	// GPUs is the number of identical devices; workers spread over them
	// round-robin and partitioning applies per device (a ScaleServe-style
	// multi-GPU deployment). Zero means 1.
	GPUs int
	// Workers lists the co-located model workers (all drive max load).
	Workers []WorkerSpec
	// DB is the profiled performance database; built on the fly if nil.
	DB *profile.DB
	// RightSizes, when non-nil, supplies precomputed ModelRightSize results
	// keyed "model/batch" (the key format of fmt.Sprintf("%s/%d", model,
	// batch)); workers missing from the map are profiled on the fly. Grid
	// harnesses share one profiling pass across cells this way.
	RightSizes map[string]int
	// Power is the energy model; zero value means energy.MI50Power.
	Power energy.Model
	// Seed drives the per-worker latency jitter.
	Seed int64
	// Warmup and Measure bound the experiment in virtual time; zero means
	// auto-size from the slowest worker's isolated latency.
	Warmup, Measure sim.Duration
	// MeasureScale scales the auto-sized measurement window (default 1.0;
	// smoke runs use a fraction). Ignored when Measure is set explicitly.
	MeasureScale float64
	// PreprocessUs/PostprocessUs are the CPU-side batch costs.
	// Zero means the defaults (150us / 80us).
	PreprocessUs, PostprocessUs sim.Duration
	// Jitter is the relative amplitude of per-kernel duration noise
	// (default 0.04). Set negative to disable.
	Jitter float64
	// ForceEmulation runs KRISP policies through the emulated
	// stream-masking path (Fig. 11) instead of native hardware support —
	// used to reproduce the paper's §V-B overhead accounting.
	ForceEmulation bool
	// OverlapLimit overrides the KRISP policies' per-kernel overlap limit
	// (the Fig. 16 sensitivity knob); nil keeps the policy default.
	OverlapLimit *int
	// Trace, if non-nil, records worker 0's kernel launches.
	Trace *trace.Trace
	// Telemetry, when non-nil, instruments the whole stack — devices,
	// command processors, runtimes, fault injector, workers — against the
	// hub's registry (and tracer, when present). Nil disables telemetry
	// entirely; results are byte-identical either way, because telemetry
	// only observes and never schedules events or draws randomness.
	Telemetry *telemetry.Hub
	// Faults, when non-nil and non-empty, arms the chaos substrate: the
	// plan's fault timeline is injected on the simulation clock and the
	// hardened serving path (watchdog, bounded retry, degradation ladder,
	// SLO guard) is enabled. A nil or empty plan leaves serving results
	// bit-identical to a build without fault injection.
	Faults *faults.Plan
	// Ctx, when non-nil, lets an external caller (an HTTP request, a
	// deadline) abandon the simulation early; the engine polls it between
	// events and Result.Interrupted reports the abort.
	Ctx context.Context

	// openLoop, when set by RunOpenLoop, replaces the closed-loop client
	// with Poisson arrivals and dynamic batching.
	openLoop *openLoop
}

// WorkerStats reports one worker's measurement-window results.
type WorkerStats struct {
	Model string
	Batch int
	// Batches and Requests completed inside the measurement window.
	Batches, Requests int
	// BatchLatency samples the end-to-end batch latencies (microseconds)
	// of batches completing inside the window.
	BatchLatency metrics.Sample
}

// P95 returns the worker's 95th-percentile batch latency in microseconds.
func (w *WorkerStats) P95() float64 { return w.BatchLatency.P95() }

// Result is the outcome of one serving experiment.
type Result struct {
	Policy  policies.Kind
	Workers []WorkerStats
	// WindowUs is the measurement window length.
	WindowUs sim.Duration
	// RPS is aggregate requests per second over the window.
	RPS float64
	// EnergyJ is the energy consumed during the window.
	EnergyJ float64
	// EnergyPerInference is joules per completed request.
	EnergyPerInference float64
	// AvgBusyCUs is the time-weighted mean number of busy CUs.
	AvgBusyCUs float64
	// Oversubscribed marks model-wise configurations whose partitions
	// overlap (the paper's open-circle cases).
	Oversubscribed bool
	// Faults carries fault-injection and hardened-path counters; nil
	// unless Config.Faults held a non-empty plan.
	Faults *faults.Stats
	// Interrupted marks a run abandoned early through Config.Ctx; the
	// windowed metrics then cover only the portion actually simulated.
	Interrupted bool
}

// TotalRequests sums completed requests across workers.
func (r *Result) TotalRequests() int {
	n := 0
	for i := range r.Workers {
		n += r.Workers[i].Requests
	}
	return n
}

// MaxP95 returns the worst per-worker p95 batch latency (us). A
// degenerate run in which no worker completed a single batch inside the
// measurement window (an interrupted or pathologically short experiment)
// returns NaN rather than a misleading 0 — "no data" must not read as
// "infinitely fast". Workers without samples are skipped as long as at
// least one worker measured something.
func (r *Result) MaxP95() float64 {
	worst := math.NaN()
	for i := range r.Workers {
		if r.Workers[i].BatchLatency.Len() == 0 {
			continue
		}
		if p := r.Workers[i].P95(); math.IsNaN(worst) || p > worst {
			worst = p
		}
	}
	return worst
}

// BuildDB profiles every kernel of every worker's model at its batch size —
// the install-time profiling step — and returns the performance database.
func BuildDB(spec gpu.DeviceSpec, workers []WorkerSpec) *profile.DB {
	p := profile.New(profile.Config{Spec: spec, Tolerance: 0.05, LaunchOverhead: 6})
	db := profile.NewDB()
	for _, w := range workers {
		db.Profile(p, w.Model.Kernels(w.Batch))
	}
	return db
}

// Run executes one serving experiment and returns windowed measurements.
func Run(cfg Config) Result {
	if len(cfg.Workers) == 0 {
		panic("server: no workers")
	}
	if cfg.Spec.Topo.TotalCUs() == 0 {
		cfg.Spec = gpu.MI50Spec()
	}
	if cfg.HSA.PacketProcessTime == 0 {
		cfg.HSA = hsa.DefaultConfig()
	}
	if cfg.Power.IdleW == 0 && cfg.Power.PerCUW == 0 {
		cfg.Power = energy.MI50Power()
	}
	if cfg.PreprocessUs == 0 {
		cfg.PreprocessUs = 150
	}
	if cfg.PostprocessUs == 0 {
		cfg.PostprocessUs = 80
	}
	switch {
	case cfg.Jitter == 0:
		cfg.Jitter = 0.04
	case cfg.Jitter < 0:
		cfg.Jitter = 0
	}

	chaosArmed := !cfg.Faults.Empty()

	// The profiler backs window auto-sizing and on-the-fly right-sizing;
	// a fully specified run (explicit windows, precomputed right-sizes,
	// prebuilt DB) never touches it, so it is built lazily — profiler
	// construction is a measurable slice of a pooled run's setup cost.
	var prof *profile.Profiler
	getProf := func() *profile.Profiler {
		if prof == nil {
			prof = profile.New(profile.Config{Spec: cfg.Spec, Tolerance: 0.05, LaunchOverhead: cfg.HSA.PacketProcessTime})
		}
		return prof
	}

	// The slowest worker's isolated latency sizes the windows and, when
	// chaos is armed, the watchdog and SLO-guard defaults.
	var slowest sim.Duration
	if cfg.Warmup == 0 || cfg.Measure == 0 || chaosArmed {
		for _, w := range cfg.Workers {
			if l := getProf().ModelLatency(w.Model.Kernels(w.Batch), cfg.Spec.Topo.TotalCUs()); l > slowest {
				slowest = l
			}
		}
		slowest += cfg.PreprocessUs + cfg.PostprocessUs
	}
	if cfg.Warmup == 0 {
		cfg.Warmup = 5 * slowest
	}
	if cfg.Measure == 0 {
		// Enough for ~60 samples per worker at ~3x contention slowdown.
		scale := cfg.MeasureScale
		if scale <= 0 {
			scale = 1
		}
		cfg.Measure = 180 * slowest * scale
	}

	numGPUs := cfg.GPUs
	if numGPUs < 1 {
		numGPUs = 1
	}
	hsaCfg := cfg.HSA
	hsaCfg.KernelScoped = cfg.Policy.KernelScoped() && !cfg.ForceEmulation

	// Acquire the run context: engine, per-GPU stacks, worker slots. A
	// pooled context with a matching shape is reset in place; everything
	// below reapplies the per-run configuration on top of it.
	st := acquireRun(runShape{
		spec:    cfg.Spec,
		hsa:     hsaCfg,
		power:   cfg.Power,
		gpus:    numGPUs,
		workers: len(cfg.Workers),
	}, cfg.Telemetry)
	eng := st.eng
	gpus := st.gpus
	if cfg.Ctx != nil {
		ctx := cfg.Ctx
		eng.SetInterrupt(func() bool { return ctx.Err() != nil })
	}

	// Per-worker model right-sizes feed the model-granular policies.
	rightSizes := scratchInts(st.rightSizes, len(cfg.Workers))
	st.rightSizes = rightSizes
	if cfg.Policy == policies.ModelRightSize || cfg.Policy == policies.MRSRequest {
		cache := map[string]int{}
		for i, w := range cfg.Workers {
			key := fmt.Sprintf("%s/%d", w.Model.Name, w.Batch)
			rs, ok := cfg.RightSizes[key]
			if !ok {
				rs, ok = cache[key]
				if !ok {
					rs = getProf().ModelRightSize(w.Model.Kernels(w.Batch))
					cache[key] = rs
				}
			}
			rightSizes[i] = rs
		}
	}

	db := cfg.DB
	if db == nil && cfg.Policy.KernelScoped() {
		db = BuildDB(cfg.Spec, cfg.Workers)
	}

	// Workers spread over devices round-robin; partitioning policies are
	// applied independently per device (a spatial partition never spans
	// GPUs).
	if cap(st.perGPU) < numGPUs {
		st.perGPU = make([][]int, numGPUs)
	}
	perGPU := st.perGPU[:numGPUs] // worker indices per device
	for g := range perGPU {
		perGPU[g] = perGPU[g][:0]
	}
	for i := range cfg.Workers {
		g := i % numGPUs
		perGPU[g] = append(perGPU[g], i)
	}
	if cap(st.assignments) < len(cfg.Workers) {
		st.assignments = make([]policies.Assignment, len(cfg.Workers))
	}
	assignments := st.assignments[:len(cfg.Workers)]
	anyOversub := false
	for _, idxs := range perGPU {
		if len(idxs) == 0 {
			continue
		}
		rs := make([]int, len(idxs))
		for j, wi := range idxs {
			rs[j] = rightSizes[wi]
		}
		as := policies.Assign(cfg.Policy, cfg.Spec.Topo, rs)
		for j, wi := range idxs {
			assignments[wi] = as[j]
		}
		if policies.Oversubscribed(cfg.Spec.Topo, as) {
			anyOversub = true
		}
	}
	if cfg.OverlapLimit != nil {
		for i := range assignments {
			if assignments[i].Mode == core.ModeNative {
				assignments[i].OverlapLimit = *cfg.OverlapLimit
			}
		}
	}

	var inj *faults.Injector
	if chaosArmed {
		inj = faults.NewInjector(eng, *cfg.Faults)
		for _, g := range gpus {
			g.cp.SetFaults(inj)
		}
		inj.SetTelemetry(faults.NewTelemetry(cfg.Telemetry))
	}
	rs := core.NewRightSizer(db, cfg.Spec.Topo.TotalCUs())

	measureStart := cfg.Warmup
	measureEnd := cfg.Warmup + cfg.Measure

	workers := st.workers
	for i, spec := range cfg.Workers {
		a := assignments[i]
		stack := gpus[i%numGPUs]
		mode := a.Mode
		if cfg.ForceEmulation && mode == core.ModeNative {
			mode = core.ModeEmulated
		}
		q := stack.cp.NewQueue()
		if !a.QueueMask.IsEmpty() && !a.QueueMask.Equal(gpu.FullMask(cfg.Spec.Topo)) {
			q.SetCUMask(a.QueueMask, nil)
		}
		rtCfg := core.Config{
			Mode:         mode,
			OverlapLimit: a.OverlapLimit,
			Device:       i % numGPUs,
			Telemetry:    st.coreTels[i%numGPUs],
		}
		if i == 0 {
			rtCfg.Trace = cfg.Trace
		}
		if inj != nil {
			rtCfg.Hardening = &core.Hardening{
				MaxRetries:         inj.MaxRetries(),
				RetryBackoff:       inj.RetryBackoff(),
				IOCTLFailureStreak: inj.IOCTLFailureStreak(),
				Stats:              &inj.Stats,
			}
		}
		workerRS := rs
		if a.FixedPartition > 0 {
			workerRS = core.NewFixedRightSizer(a.FixedPartition, cfg.Spec.Topo.TotalCUs())
		}
		w := workers[i]
		seed := cfg.Seed + int64(i)*7919 + 1
		if w.rng == nil {
			w.rng = rand.New(rand.NewSource(seed))
		} else {
			// Reseeding in place restores the exact state rand.New would
			// produce, without the source allocation.
			w.rng.Seed(seed)
		}
		if w.rt == nil {
			w.rt = core.NewRuntime(eng, stack.cp, q, workerRS, rtCfg)
		} else {
			w.rt.Reconfigure(q, workerRS, rtCfg)
		}
		// The cached kernel sequence is a pure function of (model, batch);
		// invalidate it only when the slot's workload changed.
		if w.spec.Model.Name != spec.Model.Name || w.spec.Batch != spec.Batch {
			w.baseDescs = nil
		}
		w.spec = spec
		w.eng = eng
		w.pre = cfg.PreprocessUs
		w.post = cfg.PostprocessUs
		w.jitter = cfg.Jitter
		w.measureStart = measureStart
		w.measureEnd = measureEnd
		// Fresh stats every run: the latency Sample escapes into Result,
		// so its backing store must never be recycled.
		w.stats = WorkerStats{Model: spec.Model.Name, Batch: spec.Batch}
		w.openLoop = cfg.openLoop
		w.chaos = nil
		w.wd = nil
		w.batchStart = 0
		w.tel = newWorkerTelemetry(cfg.Telemetry, spec.Model.Name, i%numGPUs, q.ID)
	}

	// Arm the chaos substrate now that every queue exists: inject the fault
	// timeline, start the SLO guard, and hand each worker its watchdog.
	if inj != nil {
		if cap(st.devs) < numGPUs {
			st.devs = make([]*gpu.Device, numGPUs)
			st.cps = make([]*hsa.CommandProcessor, numGPUs)
		}
		devs := st.devs[:numGPUs]
		cps := st.cps[:numGPUs]
		for g := range gpus {
			devs[g] = gpus[g].dev
			cps[g] = gpus[g].cp
		}
		inj.Arm(devs, cps)

		plan := inj.Plan()
		ch := &chaosHarness{
			eng:          eng,
			stats:        &inj.Stats,
			batchTimeout: plan.WatchdogTimeout,
			window:       plan.SLOWindow,
			p99Threshold: float64(plan.SLOP99),
			cooldown:     plan.SLOCooldown,
			stopAt:       measureEnd,
		}
		if reg := cfg.Telemetry.Registry(); reg != nil {
			ch.sloViolations = reg.Counter("krisp_server_slo_violations_total",
				"SLO-guard windows whose p99 exceeded the threshold")
		}
		for _, w := range workers {
			ch.runtimes = append(ch.runtimes, w.rt)
			w.chaos = ch
		}
		// Auto-size the hardening deadlines from the slowest worker's
		// isolated latency: generous enough that contention alone never
		// trips them, tight enough that a wedged queue is caught within a
		// handful of batch times.
		if ch.batchTimeout <= 0 {
			ch.batchTimeout = 10 * slowest
		}
		if ch.p99Threshold <= 0 {
			ch.p99Threshold = float64(6 * slowest)
		}
		if ch.window <= 0 {
			ch.window = 10 * slowest
		}
		if ch.cooldown <= 0 {
			ch.cooldown = 2 * ch.window
		}
		ch.startGuard()
	}

	if ol := cfg.openLoop; ol != nil {
		ol.measureStart = measureStart
		ol.measureEnd = measureEnd
		ol.start(eng, cfg.Seed)
		for _, w := range workers {
			ol.park(w)
		}
	} else {
		for _, w := range workers {
			w.start()
		}
	}

	// Warm up, then open the measurement window.
	eng.RunUntil(measureStart)
	for _, g := range gpus {
		g.meter.Reset(eng.Now())
		g.dev.ResetUtilization()
	}
	eng.RunUntil(measureEnd)

	var energyJ, busySum float64
	for _, g := range gpus {
		energyJ += g.meter.EnergyJ(measureEnd)
		busySum += g.dev.AvgBusyCUs()
	}
	result := Result{
		Policy:         cfg.Policy,
		WindowUs:       cfg.Measure,
		EnergyJ:        energyJ,
		AvgBusyCUs:     busySum / float64(numGPUs),
		Oversubscribed: (cfg.Policy == policies.ModelRightSize || cfg.Policy == policies.MRSRequest) && anyOversub,
		Interrupted:    eng.Interrupted(),
	}
	if inj != nil {
		for _, w := range workers {
			w.rt.FlushDegradedTime()
		}
		stats := inj.Stats
		result.Faults = &stats
	}
	result.Workers = make([]WorkerStats, 0, len(workers))
	for _, w := range workers {
		result.Workers = append(result.Workers, w.stats)
	}
	result.RPS = metrics.Throughput(result.TotalRequests(), float64(cfg.Measure))
	result.EnergyPerInference = energy.PerInference(result.EnergyJ, result.TotalRequests())
	st.release()
	return result
}

// worker is one closed-loop model worker: it owns a stream and keeps a
// batch in flight at all times.
type worker struct {
	spec   WorkerSpec
	rt     *core.Runtime
	rng    *rand.Rand
	eng    *sim.Engine
	pre    sim.Duration
	post   sim.Duration
	jitter float64

	measureStart, measureEnd sim.Time
	stats                    WorkerStats
	openLoop                 *openLoop
	chaos                    *chaosHarness
	tel                      *workerTelemetry

	// baseDescs caches the closed-loop kernel sequence (fixed batch size);
	// descBuf is the reusable jittered copy. RunSequence copies every desc
	// by value into its packets before returning, so the buffer is free for
	// the next batch as soon as the sequence is submitted.
	baseDescs []kernels.Desc
	descBuf   []kernels.Desc

	// The closed loop keeps exactly one batch in flight, so the batch
	// lifecycle lives in worker fields driven by pre-bound hooks instead
	// of a per-batch closure chain — the steady-state loop allocates
	// nothing.
	batchStart sim.Time
	wd         *watchdog
	preFn      func()
	seqFn      func()
	postFn     func()
}

func (w *worker) start() {
	if w.preFn == nil {
		w.preFn = w.preDone
		w.seqFn = w.seqDone
		w.postFn = w.postDone
	}
	w.runBatch()
}

func (w *worker) runBatch() {
	w.batchStart = w.eng.Now()
	if w.chaos != nil {
		w.wd = w.chaos.armWatchdog(w)
	}
	w.eng.After(w.pre, w.preFn)
}

// preDone fires when pre-processing completes: submit the batch's kernel
// sequence.
func (w *worker) preDone() {
	w.rt.RunSequence(w.jitteredKernels(), w.seqFn)
}

// seqDone fires when the last kernel completes: pay post-processing.
func (w *worker) seqDone() { w.eng.After(w.post, w.postFn) }

// postDone closes out the batch and immediately starts the next one.
func (w *worker) postDone() {
	if w.wd != nil {
		w.wd.stop()
		w.wd = nil
	}
	end := w.eng.Now()
	if w.chaos != nil {
		w.chaos.observeBatch(end - w.batchStart)
	}
	w.tel.observeBatch(w.spec.Batch, w.batchStart, end)
	if end > w.measureStart && end <= w.measureEnd {
		w.stats.Batches++
		w.stats.Requests += w.spec.Batch
		w.stats.BatchLatency.Add(end - w.batchStart)
	}
	w.runBatch()
}

// jitteredKernels returns the model's kernel sequence with small
// per-instance duration noise, modelling run-to-run variance so tail
// latencies are meaningful. The closed-loop batch size never changes, so
// the base sequence is built once and the jittered copy lands in the
// worker's reusable buffer instead of a fresh slice per batch.
func (w *worker) jitteredKernels() []kernels.Desc {
	if w.baseDescs == nil {
		w.baseDescs = w.spec.Model.Kernels(w.spec.Batch)
	}
	return w.jittered(w.baseDescs)
}

// jittered applies per-instance duration noise into the worker's reusable
// desc buffer (the input is returned untouched when jitter is off).
func (w *worker) jittered(descs []kernels.Desc) []kernels.Desc {
	if w.jitter == 0 {
		return descs
	}
	if cap(w.descBuf) < len(descs) {
		w.descBuf = make([]kernels.Desc, len(descs))
	}
	out := w.descBuf[:len(descs)]
	for i, d := range descs {
		f := 1 + w.jitter*(2*w.rng.Float64()-1)
		d.Work.WGTime *= sim.Duration(f)
		out[i] = d
	}
	return out
}
