package server

import (
	"testing"

	"krisp/internal/alloc"
	"krisp/internal/gpu"
	"krisp/internal/policies"
)

func TestMeasureScaleShrinksWindow(t *testing.T) {
	m := mustModel(t, "squeezenet")
	full := Run(Config{
		Policy:  policies.MPSDefault,
		Workers: []WorkerSpec{{Model: m, Batch: 32}},
		Seed:    5,
	})
	quarter := Run(Config{
		Policy:       policies.MPSDefault,
		Workers:      []WorkerSpec{{Model: m, Batch: 32}},
		Seed:         5,
		MeasureScale: 0.25,
	})
	if quarter.WindowUs >= full.WindowUs {
		t.Fatalf("scaled window %v not below full %v", quarter.WindowUs, full.WindowUs)
	}
	// Throughput estimates should agree within a few percent despite the
	// shorter window.
	ratio := quarter.RPS / full.RPS
	if ratio < 0.9 || ratio > 1.1 {
		t.Errorf("quarter-window RPS off by %.2fx", ratio)
	}
}

func TestExplicitWindowRespected(t *testing.T) {
	m := mustModel(t, "squeezenet")
	res := Run(Config{
		Policy:  policies.MPSDefault,
		Workers: []WorkerSpec{{Model: m, Batch: 32}},
		Seed:    5,
		Warmup:  10_000,
		Measure: 50_000,
	})
	if res.WindowUs != 50_000 {
		t.Errorf("WindowUs = %v, want 50000", res.WindowUs)
	}
}

func TestOverlapLimitOverride(t *testing.T) {
	m := mustModel(t, "squeezenet")
	specs := []WorkerSpec{
		{Model: m, Batch: 32}, {Model: m, Batch: 32},
		{Model: m, Batch: 32}, {Model: m, Batch: 32},
	}
	// KRISP-I with the limit overridden to "everything may overlap" must
	// behave like KRISP-O.
	limit := alloc.NoOverlapLimit
	overridden := Run(Config{Policy: policies.KRISPI, Workers: specs, Seed: 5, OverlapLimit: &limit})
	krispO := Run(Config{Policy: policies.KRISPO, Workers: specs, Seed: 5})
	ratio := overridden.RPS / krispO.RPS
	if ratio < 0.98 || ratio > 1.02 {
		t.Errorf("override-to-NoLimit RPS differs from KRISP-O by %.3fx", ratio)
	}
}

func TestJitterDisabled(t *testing.T) {
	m := mustModel(t, "squeezenet")
	res := Run(Config{
		Policy:  policies.MPSDefault,
		Workers: []WorkerSpec{{Model: m, Batch: 32}},
		Seed:    5,
		Jitter:  -1, // disabled
	})
	w := res.Workers[0]
	// Without jitter every batch latency is identical, so p95 == min.
	if w.BatchLatency.Len() < 5 {
		t.Fatalf("only %d batches measured", w.BatchLatency.Len())
	}
	// Identical up to float accumulation noise in the event engine.
	if diff := w.BatchLatency.P95() - w.BatchLatency.Min(); diff > 1e-6 {
		t.Errorf("jitter-free p95 %v != min %v", w.BatchLatency.P95(), w.BatchLatency.Min())
	}
}

func TestDifferentSeedsDifferentTails(t *testing.T) {
	m := mustModel(t, "squeezenet")
	a := Run(Config{Policy: policies.MPSDefault, Workers: []WorkerSpec{{Model: m, Batch: 32}}, Seed: 1})
	b := Run(Config{Policy: policies.MPSDefault, Workers: []WorkerSpec{{Model: m, Batch: 32}}, Seed: 2})
	if a.Workers[0].P95() == b.Workers[0].P95() {
		t.Error("different seeds produced identical p95 — jitter not applied")
	}
}

func TestBuildDBCoversAllWorkers(t *testing.T) {
	a := mustModel(t, "albert")
	s := mustModel(t, "squeezenet")
	db := BuildDB(gpu.MI50Spec(), []WorkerSpec{{Model: a, Batch: 32}, {Model: s, Batch: 32}})
	if db.Len() == 0 {
		t.Fatal("empty database")
	}
	for _, d := range a.Kernels(32) {
		if got := db.MinCU(d, 60); got == 60 && d.Work.Workgroups < 600 {
			// 60 is also the unprofiled fallback — a small kernel
			// reporting 60 means profiling missed it.
			t.Fatalf("kernel %s appears unprofiled (minCU=60, %d WGs)", d.Key(), d.Work.Workgroups)
		}
	}
}
