package server

import (
	"testing"

	"krisp/internal/gpu"
	"krisp/internal/policies"
)

// TestMI100EndToEnd exercises the whole stack on a different device: 120
// CUs over 8 SEs. Nothing in profiling, allocation, or serving should be
// MI50-specific.
func TestMI100EndToEnd(t *testing.T) {
	m := mustModel(t, "squeezenet")
	run := func(workers int, policy policies.Kind) Result {
		specs := make([]WorkerSpec, workers)
		for i := range specs {
			specs[i] = WorkerSpec{Model: m, Batch: 32}
		}
		return Run(Config{
			Spec:         gpu.MI100Spec(),
			Policy:       policy,
			Workers:      specs,
			Seed:         9,
			MeasureScale: 0.5,
		})
	}
	iso := run(1, policies.MPSDefault)
	if iso.RPS <= 0 {
		t.Fatal("no throughput on MI100")
	}
	// Twice the CUs: 8 workers of a 22-CU model should still scale well
	// under KRISP-I.
	eight := run(8, policies.KRISPI)
	if norm := eight.RPS / iso.RPS; norm < 3.5 {
		t.Errorf("8-worker KRISP-I on MI100 scaled %.2fx, want >= 3.5x", norm)
	}
	for i := range eight.Workers {
		if eight.Workers[i].Requests == 0 {
			t.Errorf("worker %d starved on MI100", i)
		}
	}
}

func TestMI100Topology(t *testing.T) {
	if gpu.MI100.TotalCUs() != 120 {
		t.Fatalf("MI100 total = %d", gpu.MI100.TotalCUs())
	}
	if err := gpu.MI100.Validate(); err != nil {
		t.Fatal(err)
	}
}
