package server

import (
	"math/rand"

	"krisp/internal/core"
	"krisp/internal/energy"
	"krisp/internal/faults"
	"krisp/internal/gpu"
	"krisp/internal/hsa"
	"krisp/internal/kernels"
	"krisp/internal/models"
	"krisp/internal/sim"
	"krisp/internal/telemetry"
)

// NodeConfig describes one persistent serving node: a multi-GPU stack that
// is stepped externally instead of running one closed-loop experiment to
// completion. The cluster layer (internal/cluster) builds one Node per
// simulated machine and advances them all in lockstep.
type NodeConfig struct {
	// Spec is the device model for every GPU on the node; zero means MI50.
	Spec gpu.DeviceSpec
	// HSA is the runtime cost model; zero means hsa.DefaultConfig.
	HSA hsa.Config
	// GPUs is the number of devices on the node. Zero means 1.
	GPUs int
	// Index is the node's fleet-wide id; it namespaces telemetry labels so
	// devices of different nodes do not collapse into one metric series.
	Index int
	// Power is the per-GPU energy model; zero means energy.MI50Power.
	Power energy.Model
	// Seed drives per-replica latency jitter; replicas derive their RNG
	// from it and their creation order, so a node's behaviour depends only
	// on (Seed, submission sequence), never on wall-clock scheduling.
	Seed int64
	// PreprocessUs/PostprocessUs are the CPU-side batch costs.
	// Zero means the server defaults (150us / 80us).
	PreprocessUs, PostprocessUs sim.Duration
	// Jitter is the relative per-kernel duration noise (default 0.04;
	// negative disables).
	Jitter float64
	// Telemetry, when non-nil, instruments the node's devices and command
	// processors. Nil disables instrumentation.
	Telemetry *telemetry.Hub
	// Faults, when non-nil and non-empty, arms the node-local chaos
	// substrate (CU kills/degrades, queue stalls, flaky IOCTLs).
	Faults *faults.Plan
}

// Node is a persistent multi-GPU serving stack with its own virtual clock.
// Replicas are added and drained at runtime; the owner advances the clock
// with RunUntil. A Node is single-goroutine: all calls must come from the
// same goroutine (the cluster layer advances distinct nodes concurrently,
// which is safe because nodes share nothing).
type Node struct {
	cfg      NodeConfig
	eng      *sim.Engine
	gpus     []gpuStack
	inj      *faults.Injector
	replicas []*Replica

	// replicaFree pools gracefully released replicas per GPU (a replica's
	// runtime is bound to one command processor, so reuse never crosses
	// devices). replicaSeq counts every AddReplica ever made and seeds the
	// replica RNG — the same sequence len(replicas) produced before
	// released replicas started leaving the live list.
	replicaFree [][]*Replica
	replicaSeq  int64

	// mail is the node's cross-node command inbox for lookahead
	// scheduling: the cluster's router phase posts timestamped request
	// deliveries here instead of scheduling closures, and AdvanceTo
	// ingests them before advancing the clock. mailSeq stamps posting
	// order so simultaneous commands replay in exactly the order a
	// lockstep router would have scheduled them; mailIdx is the pump's
	// progress cursor through the sorted batch.
	mail    []mail
	mailSeq uint64
	mailIdx int
	pumpFn  func() // pre-bound pump callback, one per node, zero-alloc

	// descs caches built kernel sequences per (model, batch). Replicas
	// come and go with autoscaler churn, but the sequences they run are
	// pure functions of the model recipe — rebuilt lists were the largest
	// steady-state allocation source in fleet runs. Shared lists are
	// read-only: replicas jitter-copy into their own scratch before
	// mutating durations.
	descs map[descKey][]kernels.Desc
}

// descKey identifies one cached kernel sequence.
type descKey struct {
	model string
	batch int
}

// modelKernels returns the node's cached kernel sequence for a model and
// batch size, building it on first use. The returned slice is shared and
// must not be mutated.
func (n *Node) modelKernels(m models.Model, batch int) []kernels.Desc {
	k := descKey{model: m.Name, batch: batch}
	if ks, ok := n.descs[k]; ok {
		return ks
	}
	if n.descs == nil {
		n.descs = make(map[descKey][]kernels.Desc)
	}
	ks := m.Kernels(batch)
	n.descs[k] = ks
	return ks
}

type gpuStack struct {
	meter *energy.Meter
	dev   *gpu.Device
	cp    *hsa.CommandProcessor
}

// NewNode builds the node's devices and command processors and arms its
// fault plan, if any. No replicas exist yet.
func NewNode(cfg NodeConfig) *Node {
	if cfg.Spec.Topo.TotalCUs() == 0 {
		cfg.Spec = gpu.MI50Spec()
	}
	if cfg.HSA.PacketProcessTime == 0 {
		cfg.HSA = hsa.DefaultConfig()
	}
	if cfg.Power.IdleW == 0 && cfg.Power.PerCUW == 0 {
		cfg.Power = energy.MI50Power()
	}
	if cfg.GPUs < 1 {
		cfg.GPUs = 1
	}
	if cfg.PreprocessUs == 0 {
		cfg.PreprocessUs = 150
	}
	if cfg.PostprocessUs == 0 {
		cfg.PostprocessUs = 80
	}
	switch {
	case cfg.Jitter == 0:
		cfg.Jitter = 0.04
	case cfg.Jitter < 0:
		cfg.Jitter = 0
	}

	n := &Node{cfg: cfg, eng: sim.New()}
	hsaCfg := cfg.HSA
	hsaCfg.KernelScoped = true // replicas are kernel-scoped partition instances
	if !cfg.Faults.Empty() {
		n.inj = faults.NewInjector(n.eng, *cfg.Faults)
		n.inj.SetTelemetry(faults.NewTelemetry(cfg.Telemetry))
	}
	n.gpus = make([]gpuStack, cfg.GPUs)
	for g := range n.gpus {
		meter := energy.NewMeter(cfg.Power)
		dev := gpu.NewDevice(n.eng, cfg.Spec, meter)
		cp := hsa.NewCommandProcessor(n.eng, dev, hsaCfg)
		if n.inj != nil {
			cp.SetFaults(n.inj)
		}
		id := cfg.Index*cfg.GPUs + g
		dev.SetTelemetry(gpu.NewTelemetry(cfg.Telemetry, cfg.Spec.Topo, id))
		cp.SetTelemetry(hsa.NewTelemetry(cfg.Telemetry, id))
		n.gpus[g] = gpuStack{meter: meter, dev: dev, cp: cp}
	}
	if n.inj != nil {
		devs := make([]*gpu.Device, cfg.GPUs)
		cps := make([]*hsa.CommandProcessor, cfg.GPUs)
		for g := range n.gpus {
			devs[g] = n.gpus[g].dev
			cps[g] = n.gpus[g].cp
		}
		n.inj.Arm(devs, cps)
	}
	return n
}

// Now returns the node's virtual clock.
func (n *Node) Now() sim.Time { return n.eng.Now() }

// RunUntil advances the node's clock to t, firing every pending event.
func (n *Node) RunUntil(t sim.Time) { n.eng.RunUntil(t) }

// Schedule runs fn on the node's clock at time t (clamped to now if t has
// already passed). The cluster layer uses it to deliver requests at their
// exact arrival timestamps between lockstep advances.
func (n *Node) Schedule(t sim.Time, fn func()) {
	if t < n.eng.Now() {
		t = n.eng.Now()
	}
	n.eng.At(t, fn)
}

// mail is one posted cross-node command: a request copy delivered to a
// replica at virtual time deliver, stamped with its original arrival.
// deliver and arrival differ when the router re-sends a request that
// queued router-side: delivery is clamped to the router clock, but the
// request's latency still counts from its true arrival — the same split
// lockstep got from Schedule's clamp around an unclamped SubmitID.
type mail struct {
	deliver sim.Time
	arrival sim.Time
	seq     uint64 // posting order; tie-break among equal delivery times
	rep     *Replica
	id      uint64
	// LLM request payload: prompt > 0 marks an autoregressive submit
	// (SubmitSeq); prefilled marks a disaggregated KV handoff joining
	// decode directly.
	prompt, output int
	prefilled      bool
}

// PostSubmit queues one request delivery for the replica, to be ingested
// by the next AdvanceTo. The caller (the cluster's router phase) must post
// with deliver no earlier than the node's last granted horizon —
// lockstep's Schedule clamped past arrivals to the node clock, so
// lookahead callers clamp to the router's own clock before posting. id 0
// means an untracked request (Submit); nonzero a tracked copy (SubmitID).
func (n *Node) PostSubmit(deliver, arrival sim.Time, r *Replica, id uint64) {
	n.mailSeq++
	n.mail = append(n.mail, mail{deliver: deliver, arrival: arrival, seq: n.mailSeq, rep: r, id: id})
}

// PostSubmitSeq queues one autoregressive request delivery (SubmitSeq)
// with its prompt/output lengths; prefilled marks a disaggregated KV
// handoff that joins decode directly. Ordering rules match PostSubmit.
func (n *Node) PostSubmitSeq(deliver, arrival sim.Time, r *Replica, id uint64, prompt, output int, prefilled bool) {
	if prompt < 1 {
		prompt = 1
	}
	n.mailSeq++
	n.mail = append(n.mail, mail{
		deliver: deliver, arrival: arrival, seq: n.mailSeq, rep: r, id: id,
		prompt: prompt, output: output, prefilled: prefilled,
	})
}

// MailboxLen returns the number of posted, not-yet-ingested commands. A
// node with pending mail can never be skipped by a lookahead grant.
func (n *Node) MailboxLen() int { return len(n.mail) }

// NextEventTime exposes the engine's earliest pending event — the lower
// bound the lookahead scheduler combines with MailboxLen to prove the node
// cannot act before a horizon.
func (n *Node) NextEventTime() (sim.Time, bool) { return n.eng.NextEventTime() }

// pump applies every mailbox command whose timestamp has arrived. It runs
// as an engine event (one firing per distinct command timestamp), so the
// deliveries interleave with the node's own events exactly where a
// lockstep router's per-command closures would have.
func (n *Node) pump() {
	now := n.eng.Now()
	for n.mailIdx < len(n.mail) && n.mail[n.mailIdx].deliver <= now {
		m := n.mail[n.mailIdx]
		n.mailIdx++
		if m.prompt > 0 {
			m.rep.SubmitSeq(m.arrival, m.id, m.prompt, m.output, m.prefilled)
		} else {
			m.rep.SubmitID(m.arrival, m.id)
		}
	}
}

// AdvanceTo ingests the mailbox and advances the node's clock to t, firing
// every event with timestamp <= t. Commands are replayed in (time, posting
// order) — byte-identical to a lockstep router scheduling each command as
// its own closure, because the pump events are created before any
// event the advancement itself schedules and therefore rank first among
// ties, exactly like the router-phase closures did. Every posted command
// must have deliver <= t; AdvanceTo panics if mail would be left
// undelivered, because a partially drained mailbox cannot be re-sorted
// safely.
func (n *Node) AdvanceTo(t sim.Time) {
	if len(n.mail) > 0 {
		// Insertion sort by (deliver, seq): postings arrive almost sorted
		// (the router walks arrivals in time order), so this is near-linear
		// and allocation-free.
		for i := 1; i < len(n.mail); i++ {
			m := n.mail[i]
			j := i - 1
			for j >= 0 && (n.mail[j].deliver > m.deliver || (n.mail[j].deliver == m.deliver && n.mail[j].seq > m.seq)) {
				n.mail[j+1] = n.mail[j]
				j--
			}
			n.mail[j+1] = m
		}
		if n.pumpFn == nil {
			n.pumpFn = n.pump
		}
		last := sim.Time(-1)
		for _, m := range n.mail {
			if m.deliver != last {
				n.eng.At(m.deliver, n.pumpFn)
				last = m.deliver
			}
		}
	}
	n.eng.RunUntil(t)
	if n.mailIdx != len(n.mail) {
		panic("server: AdvanceTo horizon left mailbox commands undelivered")
	}
	for i := range n.mail {
		n.mail[i].rep = nil
	}
	n.mail = n.mail[:0]
	n.mailIdx = 0
}

// NumGPUs returns the node's device count.
func (n *Node) NumGPUs() int { return n.cfg.GPUs }

// TotalCUs returns the per-device CU count.
func (n *Node) TotalCUs() int { return n.cfg.Spec.Topo.TotalCUs() }

// EnergyJ sums energy consumed across the node's devices up to now.
func (n *Node) EnergyJ() float64 {
	total := 0.0
	for _, g := range n.gpus {
		total += g.meter.EnergyJ(n.eng.Now())
	}
	return total
}

// FaultStats returns the node-local fault/reaction counters, or nil when
// no fault plan is armed.
func (n *Node) FaultStats() *faults.Stats {
	if n.inj == nil {
		return nil
	}
	return &n.inj.Stats
}

// ReplicaSpec describes one model replica: a gpulet bound to a device with
// a fixed CU budget, served through a kernel-scoped partition instance (so
// resizing it later is free — the next kernel simply uses the new size).
type ReplicaSpec struct {
	Model models.Model
	// Batch is the maximum dynamic batch size.
	Batch int
	// GPU is the device index on the node.
	GPU int
	// CUs is the partition budget; 0 or >= the device size means the full
	// device.
	CUs int
	// OverlapLimit bounds allocated-but-busy CUs per kernel (0 = KRISP-I
	// isolation, alloc.NoOverlapLimit = KRISP-O).
	OverlapLimit int
	// LLM, when non-nil, turns the replica into a continuous-batching
	// autoregressive engine (see LLMSpec). Batch is then overridden by
	// LLM.MaxSeqs and requests arrive via SubmitSeq.
	LLM *LLMSpec
}

// Completion is one finished request, reported in node-local virtual time.
type Completion struct {
	// ID is the caller-assigned request identity (0 for untracked submits).
	ID           uint64
	Arrival, End sim.Time
	// Stage boundaries for latency attribution: when the copy reached the
	// replica's queue, when its batch latched, and when the kernel sequence
	// started and finished. Always stamped (plain value copies of clocks the
	// lifecycle reads anyway), so sampled request journeys cost the node
	// side nothing extra.
	Enqueued    sim.Time
	BatchStart  sim.Time
	KernelStart sim.Time
	KernelEnd   sim.Time
	// Cancelled marks a copy revoked by Cancel while its batch was already
	// in flight: the work ran to the batch boundary, but the result must not
	// count as a served request.
	Cancelled bool
	// LLM fields, zero for classic requests. FirstToken is when the first
	// generated token after the last (re)admission left the batch; Tokens
	// counts generated tokens; Prompt/Output echo the request's lengths so
	// the routing layer can bill KV handoffs without a side table.
	FirstToken     sim.Time
	Prompt, Output int
	Tokens         int
}

// ReplicaStats is a point-in-time view of a replica's load.
type ReplicaStats struct {
	// Queued counts requests waiting to be batched; InFlight counts
	// requests inside the batch currently being served.
	Queued, InFlight int
	// CompletedRequests / CompletedBatches are lifetime totals.
	CompletedRequests, CompletedBatches int
	// Dropped counts requests discarded by Kill.
	Dropped int
	// Cancelled counts requests revoked by Cancel (dequeued or suppressed
	// at the batch boundary).
	Cancelled int
	// Preempted counts LLM sequences evicted from the continuous batch to
	// reclaim KV-cache space (each later resumes from its last committed
	// token).
	Preempted int
}

// Outstanding is the replica-side count of accepted-but-unfinished
// requests.
func (s ReplicaStats) Outstanding() int { return s.Queued + s.InFlight }

// Replica is one gpulet instance on a Node: it owns an HSA queue and a
// kernel-scoped runtime capped at the gpulet's CU budget, dynamically
// batches submitted requests, and reports completions for the router to
// pull at tick boundaries (pull-based so concurrent node advancement never
// calls back into shared router state).
type Replica struct {
	node *Node
	spec ReplicaSpec
	rt   *core.Runtime
	rng  *rand.Rand

	queue    []pending // requests waiting for a batch slot
	inflight []pending
	busy     bool
	draining bool
	killed   bool

	completions []Completion
	stats       ReplicaStats

	// descCache[n] is the model's kernel sequence for an n-request batch,
	// built on first use. Kernel geometry depends only on the batch size,
	// so partial batches (the tail of a drained queue, a trickle workload)
	// hit the cache too instead of rebuilding the sequence every batch.
	descCache [][]kernels.Desc
	descBuf   []kernels.Desc

	// The replica serves one dynamic batch at a time, so the batch
	// lifecycle lives in fields driven by pre-bound hooks instead of a
	// per-batch closure chain. curBatch is latched at batch start: Kill
	// clears inflight while the pre-processing event is still pending, so
	// the size must not be re-read when the hook fires.
	curBatch int
	preFn    func()
	seqFn    func()
	postFn   func()
	// Batch stage boundaries, latched alongside curBatch and copied into
	// every completion of the batch.
	curStart     sim.Time
	curKernStart sim.Time
	curKernEnd   sim.Time

	// llm, when non-nil, replaces the fixed-batch lifecycle with the
	// continuous-batching token loop (see llm.go). The classic queue holds
	// waiting sequences; busy covers the in-flight token step.
	llm *llmEngine
}

// AddReplica creates a replica on the node. The spec's GPU must exist.
func (n *Node) AddReplica(spec ReplicaSpec) *Replica {
	if spec.GPU < 0 || spec.GPU >= len(n.gpus) {
		panic("server: replica GPU out of range")
	}
	if spec.LLM != nil {
		// Copy the LLM spec so defaulting never mutates the caller's.
		l := *spec.LLM
		if l.MaxSeqs < 1 {
			l.MaxSeqs = 8
		}
		if l.StepOverheadUs <= 0 {
			l.StepOverheadUs = 20
		}
		if l.RetryUs <= 0 {
			l.RetryUs = 50
		}
		spec.LLM = &l
		spec.Batch = l.MaxSeqs
	}
	if spec.Batch < 1 {
		spec.Batch = models.CalibrationBatch
	}
	total := n.cfg.Spec.Topo.TotalCUs()
	if spec.CUs <= 0 || spec.CUs > total {
		spec.CUs = total
	}
	stack := n.gpus[spec.GPU]
	q := stack.cp.NewQueue()
	rtCfg := core.Config{
		Mode:         core.ModeNative,
		OverlapLimit: spec.OverlapLimit,
		Device:       n.cfg.Index*n.cfg.GPUs + spec.GPU,
	}
	seed := n.cfg.Seed + n.replicaSeq*7919 + 1
	n.replicaSeq++
	sizer := core.NewFixedRightSizer(spec.CUs, total)
	if l := spec.LLM; l != nil && (l.PrefillCUs > 0 || l.DecodeCUs > 0) {
		// Kernel-wise per-phase right-sizing: prefill kernels get one
		// partition size, decode kernels another, untagged kernels the
		// sizer's fallback.
		pf, dc := l.PrefillCUs, l.DecodeCUs
		if pf <= 0 {
			pf = spec.CUs
		}
		if dc <= 0 {
			dc = spec.CUs
		}
		sizer = core.NewPhaseRightSizer(pf, dc, total)
	}

	var r *Replica
	if free := n.replicaFree; spec.GPU < len(free) && len(free[spec.GPU]) > 0 {
		// Reuse a released replica from this GPU's pool: reseed its RNG in
		// place, rebind its runtime to the fresh queue, and invalidate the
		// batch-sequence cache if the workload changed.
		last := len(free[spec.GPU]) - 1
		r = free[spec.GPU][last]
		free[spec.GPU][last] = nil
		n.replicaFree[spec.GPU] = free[spec.GPU][:last]
		if r.spec.Model.Name != spec.Model.Name || r.spec.Batch != spec.Batch {
			r.descCache = nil
		}
		r.spec = spec
		r.rng.Seed(seed)
		r.rt.Reconfigure(q, sizer, rtCfg)
	} else {
		r = &Replica{
			node: n,
			spec: spec,
			rt:   core.NewRuntime(n.eng, stack.cp, q, sizer, rtCfg),
			rng:  rand.New(rand.NewSource(seed)),
		}
	}
	if spec.LLM != nil {
		if r.llm == nil {
			r.llm = &llmEngine{}
			r.llm.kickFn = r.llmKick
			r.llm.stepFn = r.llmStepDone
			r.llm.retryFn = r.llmRetry
		}
		r.llm.reset(*spec.LLM)
	} else {
		r.llm = nil
	}
	n.replicas = append(n.replicas, r)
	return r
}

// Release returns a gracefully drained replica to its node's pool: the HSA
// queue goes back to the command processor and the replica struct (runtime,
// RNG, buffers) is recycled by a later AddReplica on the same GPU. Only a
// quiescent replica can be released — drained, never killed, with all
// completions already pulled. A killed replica still has in-flight engine
// events bound to it, so Release refuses it and the caller simply leaks it.
func (r *Replica) Release() {
	if r.killed || !r.Drained() || len(r.completions) > 0 || len(r.inflight) > 0 {
		return
	}
	n := r.node
	n.gpus[r.spec.GPU].cp.ReleaseQueue(r.rt.Queue())
	for i, x := range n.replicas {
		if x == r {
			last := len(n.replicas) - 1
			n.replicas[i] = n.replicas[last]
			n.replicas[last] = nil
			n.replicas = n.replicas[:last]
			break
		}
	}
	r.queue = r.queue[:0]
	r.busy = false
	r.draining = false
	r.stats = ReplicaStats{}
	r.curBatch = 0
	if n.replicaFree == nil {
		n.replicaFree = make([][]*Replica, len(n.gpus))
	}
	n.replicaFree[r.spec.GPU] = append(n.replicaFree[r.spec.GPU], r)
}

// Spec returns the replica's placement spec.
func (r *Replica) Spec() ReplicaSpec { return r.spec }

// pending is one accepted-but-unfinished request copy. enq is the node
// clock at enqueue — the boundary between fabric transit and queue wait in
// the request's stage breakdown.
type pending struct {
	arrival   sim.Time
	enq       sim.Time
	id        uint64
	cancelled bool
	// LLM request payload, zero for classic requests. done carries the
	// committed token count across a preemption so a resumed sequence
	// re-prefills its context instead of starting over; prefilled marks a
	// disaggregated handoff that skips the local prefill pass.
	prompt, output, done int
	prefilled            bool
}

// Submit enqueues one untracked request that arrived at the given
// node-local time. It returns false — and accepts nothing — once the
// replica is draining or killed. Callers must only submit at or before the
// node's current clock.
func (r *Replica) Submit(arrival sim.Time) bool {
	return r.SubmitID(arrival, 0)
}

// SubmitID enqueues one request tagged with a caller-assigned identity, so
// the copy can later be revoked with Cancel and its completion matched to
// the logical request (hedged sends create two copies with the same id on
// different replicas).
func (r *Replica) SubmitID(arrival sim.Time, id uint64) bool {
	if r.llm != nil {
		// An untracked/classic submit on an LLM replica becomes a minimal
		// one-token sequence so the token loop stays the only lifecycle.
		return r.SubmitSeq(arrival, id, 1, 1, false)
	}
	if r.draining || r.killed {
		return false
	}
	// Enqueue stamp: the node clock, floored at the arrival — a caller
	// submitting ahead of the clock (direct harness use) must not produce a
	// negative transit stage.
	enq := r.node.eng.Now()
	if enq < arrival {
		enq = arrival
	}
	r.queue = append(r.queue, pending{arrival: arrival, enq: enq, id: id})
	r.maybeStart()
	return true
}

// CancelOutcome reports what Cancel found.
type CancelOutcome uint8

const (
	// CancelNotFound means no live copy with that id exists here (already
	// completed, never submitted, or killed with the replica).
	CancelNotFound CancelOutcome = iota
	// CancelDequeued means the copy was still queued and was removed before
	// consuming any GPU time.
	CancelDequeued
	// CancelInFlight means the copy's batch is already running: the work
	// completes at the batch boundary, but its completion will carry
	// Cancelled=true and must not be counted. There is no mid-kernel recall
	// — the batch boundary is the abort granularity, the serving analog of
	// cancelling generation at a token boundary.
	CancelInFlight
)

// Cancel revokes the copy with the given id (the losing side of a hedge).
// Queued copies are dequeued outright; in-flight copies are suppressed at
// the batch boundary. id 0 (untracked) is never cancellable.
func (r *Replica) Cancel(id uint64) CancelOutcome {
	if id == 0 || r.killed {
		return CancelNotFound
	}
	for i := range r.queue {
		if r.queue[i].id == id {
			r.queue = append(r.queue[:i], r.queue[i+1:]...)
			r.stats.Cancelled++
			return CancelDequeued
		}
	}
	for i := range r.inflight {
		if r.inflight[i].id == id && !r.inflight[i].cancelled {
			r.inflight[i].cancelled = true
			r.stats.Cancelled++
			return CancelInFlight
		}
	}
	if r.llm != nil {
		// A resident LLM sequence retires at the next token boundary, the
		// autoregressive analog of the batch-boundary abort.
		for i := range r.llm.active {
			if r.llm.active[i].id == id && !r.llm.active[i].cancelled {
				r.llm.active[i].cancelled = true
				r.stats.Cancelled++
				return CancelInFlight
			}
		}
	}
	return CancelNotFound
}

// Drain stops admission; queued and in-flight requests still complete.
func (r *Replica) Drain() { r.draining = true }

// Draining reports whether the replica has stopped admission.
func (r *Replica) Draining() bool { return r.draining }

// Drained reports whether a draining (or killed) replica has no work left.
func (r *Replica) Drained() bool {
	return (r.draining || r.killed) && !r.busy && len(r.queue) == 0 &&
		(r.llm == nil || len(r.llm.active) == 0)
}

// Kill drops the replica immediately — queued and in-flight requests are
// discarded (a node crash, not a graceful drain) — and returns how many
// requests were lost. The in-flight batch's simulation events still fire,
// but their completions are suppressed.
func (r *Replica) Kill() int {
	if r.killed {
		return 0
	}
	r.killed = true
	r.draining = true
	lost := len(r.queue) + len(r.inflight)
	if r.llm != nil {
		lost += len(r.llm.active)
		for i := range r.llm.active {
			r.llmFreeKV(r.llm.active[i].kv)
		}
		r.llm.active = r.llm.active[:0]
	}
	r.stats.Dropped += lost
	r.queue = r.queue[:0]
	r.inflight = r.inflight[:0]
	return lost
}

// Stats returns the replica's current load counters.
func (r *Replica) Stats() ReplicaStats {
	s := r.stats
	s.Queued = len(r.queue)
	s.InFlight = len(r.inflight)
	return s
}

// TakeCompletions appends completions recorded since the last call to buf
// and clears the internal list. Pull, don't push: the cluster collects
// completions at tick boundaries, after concurrent node advancement has
// finished, keeping the router single-threaded and deterministic.
func (r *Replica) TakeCompletions(buf []Completion) []Completion {
	buf = append(buf, r.completions...)
	r.completions = r.completions[:0]
	return buf
}

// maybeStart launches the next dynamic batch when the replica is idle.
func (r *Replica) maybeStart() {
	if r.llm != nil {
		r.llmMaybeStep()
		return
	}
	if r.busy || r.killed || len(r.queue) == 0 {
		return
	}
	n := len(r.queue)
	if n > r.spec.Batch {
		n = r.spec.Batch
	}
	r.inflight = append(r.inflight[:0], r.queue[:n]...)
	r.queue = r.queue[:copy(r.queue, r.queue[n:])]
	r.busy = true
	r.curBatch = n
	r.curStart = r.node.eng.Now()
	if r.preFn == nil {
		r.preFn = r.preDone
		r.seqFn = r.seqDone
		r.postFn = r.postDone
	}
	r.node.eng.After(r.node.cfg.PreprocessUs, r.preFn)
}

// preDone fires when pre-processing completes: submit the latched batch's
// kernel sequence (the batch may have been killed meanwhile — the work
// still runs, its completions are suppressed in postDone).
func (r *Replica) preDone() {
	r.curKernStart = r.node.eng.Now()
	r.rt.RunSequence(r.batchKernels(r.curBatch), r.seqFn)
}

// seqDone fires when the last kernel completes: pay post-processing.
func (r *Replica) seqDone() {
	r.curKernEnd = r.node.eng.Now()
	r.node.eng.After(r.node.cfg.PostprocessUs, r.postFn)
}

// postDone closes out the batch, records completions, and starts the next
// batch if requests queued up meanwhile.
func (r *Replica) postDone() {
	r.busy = false
	if r.killed {
		r.inflight = r.inflight[:0]
		return
	}
	end := r.node.eng.Now()
	served := 0
	for _, p := range r.inflight {
		r.completions = append(r.completions, Completion{
			ID: p.id, Arrival: p.arrival, End: end, Cancelled: p.cancelled,
			Enqueued: p.enq, BatchStart: r.curStart,
			KernelStart: r.curKernStart, KernelEnd: r.curKernEnd,
		})
		if !p.cancelled {
			served++
		}
	}
	r.stats.CompletedBatches++
	r.stats.CompletedRequests += served
	r.inflight = r.inflight[:0]
	r.maybeStart()
}

// batchKernels builds the model's kernel sequence for an n-request batch
// with per-instance duration noise, reusing the replica's buffers. Every
// batch size is cached on first use (geometry is a pure function of n);
// the lists live on the node so autoscaler-respawned replicas share them.
func (r *Replica) batchKernels(n int) []kernels.Desc {
	if r.descCache == nil {
		r.descCache = make([][]kernels.Desc, r.spec.Batch+1)
	}
	base := r.descCache[n]
	if base == nil {
		base = r.node.modelKernels(r.spec.Model, n)
		r.descCache[n] = base
	}
	if r.node.cfg.Jitter == 0 {
		return base
	}
	if cap(r.descBuf) < len(base) {
		r.descBuf = make([]kernels.Desc, len(base))
	}
	out := r.descBuf[:len(base)]
	for i, d := range base {
		f := 1 + r.node.cfg.Jitter*(2*r.rng.Float64()-1)
		d.Work.WGTime *= sim.Duration(f)
		out[i] = d
	}
	return out
}
