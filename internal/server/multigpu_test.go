package server

import (
	"testing"

	"krisp/internal/policies"
)

// TestMultiGPUScalesThroughput: eight workers on two GPUs should roughly
// double the throughput of eight workers crammed onto one.
func TestMultiGPUScalesThroughput(t *testing.T) {
	m := mustModel(t, "squeezenet")
	specs := make([]WorkerSpec, 8)
	for i := range specs {
		specs[i] = WorkerSpec{Model: m, Batch: 32}
	}
	one := Run(Config{Policy: policies.KRISPI, Workers: specs, Seed: 3, MeasureScale: 0.5})
	two := Run(Config{Policy: policies.KRISPI, GPUs: 2, Workers: specs, Seed: 3, MeasureScale: 0.5})
	if ratio := two.RPS / one.RPS; ratio < 1.25 {
		t.Errorf("2-GPU RPS only %.2fx of 1-GPU", ratio)
	}
	// Each GPU carries 4 workers, so the run should behave like two
	// independent 4-worker single-GPU deployments.
	four := Run(Config{Policy: policies.KRISPI,
		Workers: specs[:4], Seed: 3, MeasureScale: 0.5})
	if ratio := two.RPS / (2 * four.RPS); ratio < 0.9 || ratio > 1.1 {
		t.Errorf("2-GPU RPS %.0f is %.2fx of two 4-worker GPUs (%.0f x2)",
			two.RPS, ratio, four.RPS)
	}
	if two.MaxP95() > four.MaxP95()*1.3 {
		t.Errorf("2-GPU p95 %.0f far above 4-worker single-GPU p95 %.0f",
			two.MaxP95(), four.MaxP95())
	}
}

// TestMultiGPUPartitionsPerDevice: Static Equal with 4 workers on 2 GPUs
// gives each worker half a device, not a quarter.
func TestMultiGPUPartitionsPerDevice(t *testing.T) {
	m := mustModel(t, "squeezenet")
	specs := make([]WorkerSpec, 4)
	for i := range specs {
		specs[i] = WorkerSpec{Model: m, Batch: 32}
	}
	two := Run(Config{Policy: policies.StaticEqual, GPUs: 2, Workers: specs, Seed: 3, MeasureScale: 0.5})
	one := Run(Config{Policy: policies.StaticEqual, Workers: specs, Seed: 3, MeasureScale: 0.5})
	// 30-CU partitions (2 per GPU) beat 15-CU partitions (4 on one GPU).
	if two.RPS <= one.RPS {
		t.Errorf("2-GPU static RPS %.0f not above 1-GPU %.0f", two.RPS, one.RPS)
	}
}

// TestMultiGPUEnergyAccountsAllDevices: idle power is paid per device.
func TestMultiGPUEnergyAccountsAllDevices(t *testing.T) {
	m := mustModel(t, "squeezenet")
	specs := []WorkerSpec{{Model: m, Batch: 32}, {Model: m, Batch: 32}}
	one := Run(Config{Policy: policies.KRISPI, Workers: specs, Seed: 3, MeasureScale: 0.5})
	two := Run(Config{Policy: policies.KRISPI, GPUs: 2, Workers: specs, Seed: 3, MeasureScale: 0.5})
	if two.EnergyJ <= one.EnergyJ {
		t.Errorf("2-GPU energy %.2fJ not above 1-GPU %.2fJ (second idle device unpaid?)",
			two.EnergyJ, one.EnergyJ)
	}
}

// TestMoreGPUsThanWorkers: spare devices idle without breaking anything.
func TestMoreGPUsThanWorkers(t *testing.T) {
	m := mustModel(t, "squeezenet")
	res := Run(Config{
		Policy:  policies.KRISPI,
		GPUs:    4,
		Workers: []WorkerSpec{{Model: m, Batch: 32}},
		Seed:    3, MeasureScale: 0.5,
	})
	if res.TotalRequests() == 0 {
		t.Fatal("no requests with spare GPUs")
	}
}
