package server

import (
	"math"
	"math/rand"

	"krisp/internal/kernels"
	"krisp/internal/metrics"
	"krisp/internal/sim"
)

// Arrival configures open-loop load: requests arrive in a Poisson process
// and are dynamically batched. The paper's evaluation drives the server
// closed-loop at maximum load; open-loop serving is the extension needed
// to study latency under fluctuating request rates (the regime the prior
// works' schedulers target).
type Arrival struct {
	// RatePerSec is the aggregate request arrival rate.
	RatePerSec float64
	// MaxBatch is the largest batch a worker will form. Zero means the
	// workers' configured batch size.
	MaxBatch int
	// Timeout bounds how long the first queued request waits for
	// companions before a partial batch is dispatched. Zero means 500us.
	Timeout sim.Duration
}

// OpenLoopResult extends Result with request-level latency.
type OpenLoopResult struct {
	Result
	// RequestLatency samples per-request latency (arrival to completion)
	// for requests completing in the measurement window.
	RequestLatency metrics.Sample
	// Offered is the configured arrival rate; Completed the measured
	// completion rate. Completed << Offered means the server saturated.
	Offered, Completed float64
	// MeanBatch is the average formed batch size.
	MeanBatch float64
}

// RunOpenLoop executes a serving experiment under Poisson arrivals. The
// Workers' Model must be identical (one service endpoint); their Batch
// field sets the maximum batch size unless arrival.MaxBatch overrides it.
func RunOpenLoop(cfg Config, arrival Arrival) OpenLoopResult {
	if len(cfg.Workers) == 0 {
		panic("server: no workers")
	}
	for _, w := range cfg.Workers[1:] {
		if w.Model.Name != cfg.Workers[0].Model.Name {
			panic("server: open-loop serving requires a single model")
		}
	}
	if arrival.RatePerSec <= 0 {
		panic("server: non-positive arrival rate")
	}
	if arrival.MaxBatch == 0 {
		arrival.MaxBatch = cfg.Workers[0].Batch
	}
	if arrival.Timeout == 0 {
		arrival.Timeout = 500
	}

	// Build the shared stack exactly as Run does, but drive it open-loop.
	ol := &openLoop{arrival: arrival}
	cfg.openLoop = ol
	res := Run(cfg)

	out := OpenLoopResult{
		Result:  res,
		Offered: arrival.RatePerSec,
	}
	out.RequestLatency = ol.latency
	out.Completed = metrics.Throughput(ol.completedInWindow, float64(res.WindowUs))
	if ol.batches > 0 {
		out.MeanBatch = float64(ol.served) / float64(ol.batches)
	}
	return out
}

// openLoop carries the shared arrival queue between Run and the workers.
type openLoop struct {
	arrival Arrival
	rng     *rand.Rand
	eng     *sim.Engine

	queue   []sim.Time // arrival timestamps of waiting requests
	waiting []*worker  // idle workers parked until work arrives

	measureStart, measureEnd sim.Time
	latency                  metrics.Sample
	completedInWindow        int
	served, batches          int
}

// start begins the Poisson arrival process.
func (ol *openLoop) start(eng *sim.Engine, seed int64) {
	ol.eng = eng
	ol.rng = rand.New(rand.NewSource(seed ^ 0x5eed))
	ol.scheduleNext()
}

func (ol *openLoop) scheduleNext() {
	// Exponential inter-arrival in microseconds.
	mean := 1e6 / ol.arrival.RatePerSec
	d := sim.Duration(ol.rng.ExpFloat64() * mean)
	ol.eng.After(d, func() {
		ol.queue = append(ol.queue, ol.eng.Now())
		ol.dispatch()
		ol.scheduleNext()
	})
}

// dispatch hands work to a parked worker when batching conditions are met.
func (ol *openLoop) dispatch() {
	if len(ol.waiting) == 0 || len(ol.queue) == 0 {
		return
	}
	// Dispatch immediately on a full batch; otherwise the oldest request's
	// timeout (armed when it arrived at an empty queue) will flush.
	if len(ol.queue) >= ol.arrival.MaxBatch || ol.eng.Now()-ol.queue[0] >= ol.arrival.Timeout {
		ol.wake()
		return
	}
	if len(ol.queue) == 1 {
		deadline := ol.queue[0] + ol.arrival.Timeout
		first := ol.queue[0]
		ol.eng.At(deadline, func() {
			// Flush if that same request is still queued.
			if len(ol.queue) > 0 && ol.queue[0] == first {
				ol.wake()
			}
		})
	}
}

// wake pops a worker and gives it a batch.
func (ol *openLoop) wake() {
	if len(ol.waiting) == 0 || len(ol.queue) == 0 {
		return
	}
	w := ol.waiting[0]
	ol.waiting = ol.waiting[1:]
	n := len(ol.queue)
	if n > ol.arrival.MaxBatch {
		n = ol.arrival.MaxBatch
	}
	batch := make([]sim.Time, n)
	copy(batch, ol.queue[:n])
	ol.queue = ol.queue[n:]
	w.runOpenBatch(batch)
}

// park registers an idle worker and immediately retries dispatch.
func (ol *openLoop) park(w *worker) {
	ol.waiting = append(ol.waiting, w)
	ol.dispatch()
}

// complete records a finished batch.
func (ol *openLoop) complete(arrivals []sim.Time) {
	now := ol.eng.Now()
	ol.batches++
	ol.served += len(arrivals)
	if now > ol.measureStart && now <= ol.measureEnd {
		for _, at := range arrivals {
			ol.latency.Add(now - at)
			ol.completedInWindow++
		}
	}
}

// runOpenBatch serves one dynamically-formed batch on this worker.
func (w *worker) runOpenBatch(arrivals []sim.Time) {
	batchStart := w.eng.Now()
	var wd *watchdog
	if w.chaos != nil {
		wd = w.chaos.armWatchdog(w)
	}
	w.eng.After(w.pre, func() {
		descs := w.jitteredOpenKernels(len(arrivals))
		w.rt.RunSequence(descs, func() {
			w.eng.After(w.post, func() {
				if wd != nil {
					wd.stop()
				}
				end := w.eng.Now()
				ol := w.openLoop
				if w.chaos != nil {
					w.chaos.observeBatch(end - batchStart)
				}
				w.tel.observeBatch(len(arrivals), batchStart, end)
				ol.complete(arrivals)
				if end > w.measureStart && end <= w.measureEnd {
					w.stats.Batches++
					w.stats.Requests += len(arrivals)
					w.stats.BatchLatency.Add(end - arrivals[0])
				}
				ol.park(w)
			})
		})
	})
}

// jitteredOpenKernels builds the kernel sequence for a (possibly partial)
// batch with per-instance noise, reusing the worker's desc buffer. The
// batch size varies per dispatch, so only the jittered copy is cached, not
// the base sequence.
func (w *worker) jitteredOpenKernels(batch int) []kernels.Desc {
	return w.jittered(w.spec.Model.Kernels(batch))
}

// Utilization returns offered load relative to the single-worker service
// rate — a rough rho for sanity checks.
func (o *OpenLoopResult) Utilization(isolatedRPS float64, workers int) float64 {
	if isolatedRPS <= 0 || workers <= 0 {
		return math.Inf(1)
	}
	return o.Offered / (isolatedRPS * float64(workers))
}
