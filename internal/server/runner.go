package server

import (
	"sync"

	"krisp/internal/core"
	"krisp/internal/energy"
	"krisp/internal/gpu"
	"krisp/internal/hsa"
	"krisp/internal/policies"
	"krisp/internal/sim"
	"krisp/internal/telemetry"
)

// runShape fingerprints everything baked into a pooled run context at
// construction time and not reset between runs: the device spec a Device
// is sized for, the HSA cost model a command processor is configured with,
// the power model inside each meter, and the stack fan-out. Two configs
// with equal shapes can share a context; anything else (seeds, windows,
// policies, jitter, faults) is per-run state the reuse path reapplies.
type runShape struct {
	spec    gpu.DeviceSpec
	hsa     hsa.Config
	power   energy.Model
	gpus    int
	workers int
}

// runState is the reusable context behind Run: the engine, per-GPU stacks,
// worker slots, and the scratch slices the setup phase fills. Pooling it
// drives the serve lifecycle's steady-state allocations toward zero — a
// rerun resets every component in place (engine heap, device counters,
// meters, queues, runtimes, worker RNGs) instead of rebuilding the stack.
type runState struct {
	shape    runShape
	poolable bool

	eng      *sim.Engine
	gpus     []gpuStack
	coreTels []*core.Telemetry
	workers  []*worker

	// Setup scratch, reused across runs.
	rightSizes  []int
	perGPU      [][]int
	assignments []policies.Assignment
	devs        []*gpu.Device
	cps         []*hsa.CommandProcessor
}

// statePool is the interface runPool is held behind. Production uses
// sync.Pool (exclusive Gets under concurrent runs, idle contexts fall to
// the garbage collector); the reuse-determinism test substitutes a
// stack-backed pool, because under the race detector sync.Pool drops a
// quarter of Puts on purpose and "did the rerun hit the reset path"
// becomes unobservable.
type statePool interface {
	Get() any
	Put(any)
}

// runPool recycles run contexts across Run invocations.
var runPool statePool = &sync.Pool{}

// acquireRun returns a run context for the given shape: a pooled one reset
// in place when available, a freshly built one otherwise. Telemetry runs
// are never pooled — their stack wiring holds per-hub handles — so they
// build fresh and are discarded on release.
func acquireRun(shape runShape, hub *telemetry.Hub) *runState {
	poolable := hub == nil
	if poolable {
		if v := runPool.Get(); v != nil {
			st := v.(*runState)
			if st.shape == shape {
				st.reset()
				return st
			}
			// Shape mismatch: drop the stale context and build fresh.
		}
	}
	st := &runState{shape: shape, poolable: poolable, eng: sim.New()}
	st.gpus = make([]gpuStack, shape.gpus)
	st.coreTels = make([]*core.Telemetry, shape.gpus)
	for g := range st.gpus {
		meter := energy.NewMeter(shape.power)
		dev := gpu.NewDevice(st.eng, shape.spec, meter)
		cp := hsa.NewCommandProcessor(st.eng, dev, shape.hsa)
		// The telemetry constructors return nil on a nil hub, so this
		// wiring is unconditional and installs nothing when telemetry is
		// off.
		dev.SetTelemetry(gpu.NewTelemetry(hub, shape.spec.Topo, g))
		cp.SetTelemetry(hsa.NewTelemetry(hub, g))
		st.coreTels[g] = core.NewTelemetry(hub, g)
		st.gpus[g] = gpuStack{meter: meter, dev: dev, cp: cp}
	}
	st.workers = make([]*worker, shape.workers)
	for i := range st.workers {
		st.workers[i] = &worker{}
	}
	return st
}

// reset returns a pooled context to its just-built state: the engine heap
// is recycled, devices and meters rezeroed, queues parked on their
// processors' free lists. Worker slots are re-initialized by the setup
// loop in Run, which overwrites every per-run field.
func (st *runState) reset() {
	st.eng.Reset()
	for _, g := range st.gpus {
		g.dev.Reset()
		g.meter.Rezero()
		g.cp.Reset()
	}
}

// release returns the context to the pool. Only called on the normal exit
// path — a panicked run never re-pools its half-mutated context.
func (st *runState) release() {
	if st.poolable {
		runPool.Put(st)
	}
}

// scratchInts returns buf resized to n, reusing its backing array.
func scratchInts(buf []int, n int) []int {
	if cap(buf) < n {
		return make([]int, n)
	}
	buf = buf[:n]
	for i := range buf {
		buf[i] = 0
	}
	return buf
}
