package policies

import (
	"testing"

	"krisp/internal/alloc"
	"krisp/internal/core"
	"krisp/internal/gpu"
)

var mi50 = gpu.MI50

func TestMPSDefaultSharesEverything(t *testing.T) {
	as := Assign(MPSDefault, mi50, []int{30, 30, 30})
	if len(as) != 3 {
		t.Fatalf("%d assignments, want 3", len(as))
	}
	for i, a := range as {
		if a.Mode != core.ModePassthrough {
			t.Errorf("worker %d mode = %v", i, a.Mode)
		}
		if a.QueueMask.Count() != 60 {
			t.Errorf("worker %d mask = %d CUs, want 60", i, a.QueueMask.Count())
		}
	}
	if !Oversubscribed(mi50, as) {
		t.Error("MPS Default should report overlapping masks")
	}
}

func TestStaticEqualDisjoint(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4} {
		rs := make([]int, n)
		as := Assign(StaticEqual, mi50, rs)
		var union gpu.CUMask
		for i, a := range as {
			want := 60 / n
			if got := a.QueueMask.Count(); got != want {
				t.Errorf("n=%d worker %d: %d CUs, want %d", n, i, got, want)
			}
			if !union.And(a.QueueMask).IsEmpty() {
				t.Errorf("n=%d worker %d overlaps earlier workers", n, i)
			}
			union = union.Or(a.QueueMask)
		}
		if Oversubscribed(mi50, as) {
			t.Errorf("n=%d: static equal reported oversubscribed", n)
		}
	}
}

func TestModelRightSizeFitsWithoutOverlap(t *testing.T) {
	as := Assign(ModelRightSize, mi50, []int{12, 26}) // 38 <= 60
	if as[0].QueueMask.Count() != 12 || as[1].QueueMask.Count() != 26 {
		t.Errorf("sizes = %d, %d, want 12, 26",
			as[0].QueueMask.Count(), as[1].QueueMask.Count())
	}
	if !as[0].QueueMask.And(as[1].QueueMask).IsEmpty() {
		t.Error("fitting partitions overlap")
	}
	if Oversubscribed(mi50, as) {
		t.Error("fitting configuration reported oversubscribed")
	}
}

func TestModelRightSizeOverlapsWhenFull(t *testing.T) {
	as := Assign(ModelRightSize, mi50, []int{55, 55}) // 110 > 60
	if !Oversubscribed(mi50, as) {
		t.Error("oversized configuration not reported oversubscribed")
	}
	if as[0].QueueMask.Count() != 55 || as[1].QueueMask.Count() != 55 {
		t.Error("right-size masks wrong size")
	}
}

func TestModelRightSizeClampsSizes(t *testing.T) {
	as := Assign(ModelRightSize, mi50, []int{0, 99})
	if as[0].QueueMask.Count() != 1 {
		t.Errorf("zero right-size mask = %d CUs, want 1", as[0].QueueMask.Count())
	}
	if as[1].QueueMask.Count() != 60 {
		t.Errorf("oversized right-size mask = %d CUs, want 60", as[1].QueueMask.Count())
	}
}

func TestKRISPModes(t *testing.T) {
	aso := Assign(KRISPO, mi50, []int{10, 10})
	for _, a := range aso {
		if a.Mode != core.ModeNative || a.OverlapLimit != alloc.NoOverlapLimit {
			t.Errorf("KRISP-O assignment = %+v", a)
		}
	}
	asi := Assign(KRISPI, mi50, []int{10, 10})
	for _, a := range asi {
		if a.Mode != core.ModeNative || a.OverlapLimit != 0 {
			t.Errorf("KRISP-I assignment = %+v", a)
		}
	}
	if !KRISPO.KernelScoped() || !KRISPI.KernelScoped() || MPSDefault.KernelScoped() {
		t.Error("KernelScoped wrong")
	}
}

func TestMRSRequestAssignments(t *testing.T) {
	as := Assign(MRSRequest, mi50, []int{12, 55})
	if as[0].Mode != core.ModeNative || as[1].Mode != core.ModeNative {
		t.Error("MRS-Request must use kernel-scoped enforcement")
	}
	if as[0].FixedPartition != 12 || as[1].FixedPartition != 55 {
		t.Errorf("fixed partitions = %d, %d, want 12, 55",
			as[0].FixedPartition, as[1].FixedPartition)
	}
	// Clamping.
	as = Assign(MRSRequest, mi50, []int{0, 99})
	if as[0].FixedPartition != 1 || as[1].FixedPartition != 60 {
		t.Errorf("clamped partitions = %d, %d", as[0].FixedPartition, as[1].FixedPartition)
	}
	if !MRSRequest.KernelScoped() {
		t.Error("MRSRequest.KernelScoped() = false")
	}
	if k, err := ByName("mrs-request"); err != nil || k != MRSRequest {
		t.Errorf("ByName(mrs-request) = %v, %v", k, err)
	}
	if MRSRequest.Label() != "MRS-Request" {
		t.Errorf("label = %q", MRSRequest.Label())
	}
	// The paper's five-policy grid must not include the extension.
	for _, k := range All() {
		if k == MRSRequest {
			t.Error("All() includes the extension policy")
		}
	}
}

func TestAssignEmpty(t *testing.T) {
	if got := Assign(KRISPI, mi50, nil); got != nil {
		t.Errorf("empty assignment = %v, want nil", got)
	}
}

func TestNamesRoundTrip(t *testing.T) {
	for _, k := range All() {
		parsed, err := ByName(k.String())
		if err != nil || parsed != k {
			t.Errorf("ByName(%q) = %v, %v", k.String(), parsed, err)
		}
		if k.Label() == "Unknown" {
			t.Errorf("policy %v has no label", k)
		}
	}
	if _, err := ByName("bogus"); err == nil {
		t.Error("ByName(bogus) succeeded")
	}
	if Kind(42).String() != "unknown" || Kind(42).Label() != "Unknown" {
		t.Error("unknown kind formatting wrong")
	}
}

func TestMRSRequestReportsOversubscription(t *testing.T) {
	if Oversubscribed(mi50, Assign(MRSRequest, mi50, []int{20, 20})) {
		t.Error("fitting MRS-request configuration reported oversubscribed")
	}
	if !Oversubscribed(mi50, Assign(MRSRequest, mi50, []int{55, 55})) {
		t.Error("oversized MRS-request configuration not reported oversubscribed")
	}
}
