// Package policies implements the five inference-server spatial
// partitioning policies the paper evaluates (§VI-A):
//
//   - MPS Default: concurrent workers share all CUs with no isolation.
//   - Static Equal: equal-sized, non-overlapping per-worker partitions.
//   - Model Right-Size: per-worker partitions sized to the model's
//     profiled kneepoint (the GSLICE/Gpulet/PARIS approach); partitions
//     overlap only when the sizes do not fit the device.
//   - KRISP-O: kernel-scoped partitions, CU oversubscription allowed.
//   - KRISP-I: kernel-scoped partitions, concurrent kernels isolated; a
//     kernel may receive fewer CUs than its minimum when isolation leaves
//     nothing else available.
package policies

import (
	"fmt"
	"sort"

	"krisp/internal/alloc"
	"krisp/internal/core"
	"krisp/internal/gpu"
)

// Kind identifies a partitioning policy.
type Kind int

const (
	MPSDefault Kind = iota
	StaticEqual
	ModelRightSize
	KRISPO
	KRISPI
	// MRSRequest is the enhancement the paper suggests for prior works
	// (§II-D): model-wise right-sizing enforced through kernel-scoped
	// partition instances, so the partition is re-established per
	// inference request instead of per multi-second epoch. Every kernel
	// of a request is sized to the model's kneepoint.
	MRSRequest
)

// All lists the five policies of the paper's evaluation, in its
// presentation order. MRSRequest is the extension policy and is exercised
// by the extension experiment, not the main grid.
func All() []Kind {
	return []Kind{MPSDefault, StaticEqual, ModelRightSize, KRISPO, KRISPI}
}

func (k Kind) String() string {
	switch k {
	case MPSDefault:
		return "mps-default"
	case StaticEqual:
		return "static-equal"
	case ModelRightSize:
		return "model-right-size"
	case KRISPO:
		return "krisp-o"
	case KRISPI:
		return "krisp-i"
	case MRSRequest:
		return "mrs-request"
	default:
		return "unknown"
	}
}

// Label returns the display name used in the paper's figures.
func (k Kind) Label() string {
	switch k {
	case MPSDefault:
		return "MPS Default"
	case StaticEqual:
		return "Static Equal"
	case ModelRightSize:
		return "Model Right-Size"
	case KRISPO:
		return "KRISP-O"
	case KRISPI:
		return "KRISP-I"
	case MRSRequest:
		return "MRS-Request"
	default:
		return "Unknown"
	}
}

// ByName parses a policy name as produced by String.
func ByName(name string) (Kind, error) {
	for _, k := range append(All(), MRSRequest) {
		if k.String() == name {
			return k, nil
		}
	}
	return 0, fmt.Errorf("policies: unknown policy %q", name)
}

// KernelScoped reports whether the policy requires hardware (or emulated)
// kernel-scoped partition instance support.
func (k Kind) KernelScoped() bool {
	return k == KRISPO || k == KRISPI || k == MRSRequest
}

// Assignment is the per-worker configuration a policy produces.
type Assignment struct {
	// Mode is the runtime enforcement mode for this worker's stream.
	Mode core.Mode
	// QueueMask is the stream-scoped CU mask (meaningful for the
	// model-wise policies; KRISP workers keep the full mask and override
	// per kernel).
	QueueMask gpu.CUMask
	// OverlapLimit applies to kernel-scoped allocation (KRISP modes).
	OverlapLimit int
	// FixedPartition, when positive, overrides kernel-wise right-sizing
	// with a constant partition size for every kernel of the stream —
	// how MRSRequest applies a model-granular size through kernel-scoped
	// instances.
	FixedPartition int
}

// Assign computes per-worker assignments. rightSizes carries each worker's
// model-wise right-size (profiled kneepoint); it is only consulted by
// ModelRightSize but must have one entry per worker.
func Assign(kind Kind, topo gpu.Topology, rightSizes []int) []Assignment {
	n := len(rightSizes)
	if n == 0 {
		return nil
	}
	total := topo.TotalCUs()
	out := make([]Assignment, n)
	switch kind {
	case MPSDefault:
		for i := range out {
			out[i] = Assignment{Mode: core.ModePassthrough, QueueMask: gpu.FullMask(topo)}
		}
	case StaticEqual:
		share := total / n
		if share < 1 {
			share = 1
		}
		counters := make([]int, total)
		for i := range out {
			out[i] = Assignment{
				Mode:      core.ModePassthrough,
				QueueMask: carvePartition(topo, counters, share),
			}
		}
	case ModelRightSize:
		// Carve partitions out of free CUs first; overlap only when the
		// device is exhausted — the paper's "if concurrent models do not
		// fit, overlapping of CUs will occur".
		counters := make([]int, total)
		for i, rs := range rightSizes {
			if rs < 1 {
				rs = 1
			}
			if rs > total {
				rs = total
			}
			out[i] = Assignment{
				Mode:      core.ModePassthrough,
				QueueMask: carvePartition(topo, counters, rs),
			}
		}
	case KRISPO:
		for i := range out {
			out[i] = Assignment{
				Mode:         core.ModeNative,
				QueueMask:    gpu.FullMask(topo),
				OverlapLimit: alloc.NoOverlapLimit,
			}
		}
	case KRISPI:
		for i := range out {
			out[i] = Assignment{
				Mode:         core.ModeNative,
				QueueMask:    gpu.FullMask(topo),
				OverlapLimit: 0,
			}
		}
	case MRSRequest:
		for i, rs := range rightSizes {
			if rs < 1 {
				rs = 1
			}
			if rs > total {
				rs = total
			}
			out[i] = Assignment{
				Mode:           core.ModeNative,
				QueueMask:      gpu.FullMask(topo),
				OverlapLimit:   0,
				FixedPartition: rs,
			}
		}
	default:
		panic(fmt.Sprintf("policies: unknown kind %d", kind))
	}
	return out
}

// carvePartition selects n CUs for a model-wise partition the way the
// prior works' systems end up placing them: spread across ALL shader
// engines (the hardware's default Distributed layout — MPS GPU% and naive
// CU masks have no placement awareness), preferring free CUs and
// overlapping least-loaded CUs only for the shortfall. counters is updated
// in place so successive partitions avoid each other.
//
// The distributed layout is deliberate: placement-aware (Conserved)
// allocation is part of KRISP's contribution (paper §IV-C, Fig. 7/8), so
// the baselines must not get it for free. A 15-CU partition lands as
// 4/4/4/3 across the MI50's four SEs and is gated by the 3-CU engine.
func carvePartition(topo gpu.Topology, counters []int, n int) gpu.CUMask {
	if n > topo.TotalCUs() {
		n = topo.TotalCUs()
	}
	var mask gpu.CUMask

	// Free CUs grouped by SE, most-free SEs first.
	type seFree struct {
		se   int
		free []int
	}
	groups := make([]seFree, 0, topo.NumSEs)
	for se := 0; se < topo.NumSEs; se++ {
		g := seFree{se: se}
		for c := 0; c < topo.CUsPerSE; c++ {
			cu := topo.CUIndex(se, c)
			if counters[cu] == 0 {
				g.free = append(g.free, cu)
			}
		}
		if len(g.free) > 0 {
			groups = append(groups, g)
		}
	}
	sort.SliceStable(groups, func(i, j int) bool { return len(groups[i].free) > len(groups[j].free) })

	// Round-robin across every SE with free CUs (Distributed layout).
	need := n
	avail := 0
	for _, g := range groups {
		avail += len(g.free)
	}
	if avail < need {
		need = avail // shortfall handled by overlap below
	}
	taken := need
	for taken > 0 {
		progressed := false
		for i := range groups {
			g := &groups[i]
			if len(g.free) == 0 || taken == 0 {
				continue
			}
			cu := g.free[0]
			g.free = g.free[1:]
			mask = mask.Set(cu)
			taken--
			progressed = true
		}
		if !progressed {
			break
		}
	}

	// Overlap the remainder onto the least-loaded CUs.
	if short := n - mask.Count(); short > 0 {
		tmp := make([]int, len(counters))
		copy(tmp, counters)
		for _, cu := range mask.CUs() {
			tmp[cu]++
		}
		rest := alloc.GenerateMask(topo, tmp, alloc.Request{
			NumCUs:       short,
			OverlapLimit: alloc.NoOverlapLimit,
		})
		mask = mask.Or(rest)
	}

	for _, cu := range mask.CUs() {
		counters[cu]++
	}
	return mask
}

// Oversubscribed reports whether the model-wise assignments exceed the
// device, i.e. the requested partitions cannot coexist without sharing
// CUs. The paper marks such configurations with open circles because prior
// works would not schedule them. Two shapes are detected: passthrough
// assignments whose stream masks overlap (ModelRightSize's carved
// partitions), and fixed-partition assignments (MRSRequest's model-wise
// sizes enforced per kernel) whose sizes sum past the device — those have
// no static masks to intersect, but the partitions overlap dynamically all
// the same.
func Oversubscribed(topo gpu.Topology, assignments []Assignment) bool {
	var seen gpu.CUMask
	fixed := 0
	for _, a := range assignments {
		if a.FixedPartition > 0 {
			fixed += a.FixedPartition
		}
		if a.Mode != core.ModePassthrough {
			continue
		}
		if !seen.And(a.QueueMask).IsEmpty() {
			return true
		}
		seen = seen.Or(a.QueueMask)
	}
	return fixed > topo.TotalCUs()
}
