// Package core is KRISP itself: programmer-transparent kernel-wise
// right-sizing layered into the GPU runtime (paper §IV, Fig. 5).
//
// A Runtime wraps one HSA queue (one inference stream). Every kernel call
// from the ML framework is intercepted, its minimum required CUs looked up
// in the profiled performance database, and the partition enforced through
// one of three paths:
//
//   - ModeNative — the proposed hardware: the partition size rides in the
//     extended AQL packet and the packet processor generates the kernel
//     resource mask (kernel-scoped partition instance, Fig. 10b).
//   - ModeEmulated — the paper's evaluation vehicle on real hardware
//     (Fig. 11): two barrier packets bracket each kernel; the first one's
//     runtime callback right-sizes, allocates, and reconfigures the
//     queue's stream-scoped CU mask via the (serialized) IOCTL; the second
//     waits for the reconfiguration signal so the kernel cannot race the
//     mask change.
//   - ModePassthrough — the unmodified baseline: kernels inherit the
//     queue's CU mask (whatever MPS-default/static policy set it to).
//
// EstimateOverhead reproduces §V-B's accounting: the per-model emulation
// overhead L_over = L_emu_base - L_real_base that must be subtracted from
// emulated-KRISP latencies to estimate native KRISP performance (Fig. 12).
package core

import (
	"krisp/internal/alloc"
	"krisp/internal/faults"
	"krisp/internal/gpu"
	"krisp/internal/hsa"
	"krisp/internal/kernels"
	"krisp/internal/profile"
	"krisp/internal/sim"
	"krisp/internal/trace"
)

// Mode selects how spatial partitions are enforced.
type Mode int

const (
	// ModePassthrough launches kernels with the queue's stream mask.
	ModePassthrough Mode = iota
	// ModeNative uses kernel-scoped partition instances in hardware.
	ModeNative
	// ModeEmulated emulates kernel scoping with barrier packets and the
	// stream-scoped CU Masking IOCTL.
	ModeEmulated
)

func (m Mode) String() string {
	switch m {
	case ModePassthrough:
		return "passthrough"
	case ModeNative:
		return "native"
	case ModeEmulated:
		return "emulated"
	default:
		return "unknown"
	}
}

// RightSizer answers "how many CUs does this kernel need?" from the
// profiled performance database — the Required CUs table of §IV-B.
type RightSizer struct {
	db       *profile.DB
	totalCUs int
	fixed    int
	// phase holds per-phase fixed sizes for autoregressive serving:
	// phase[kernels.PhasePrefill] and phase[kernels.PhaseDecode]. A zero
	// entry falls through to the regular fixed/db/full-device path, so a
	// sizer without phase entries behaves exactly as before.
	phase [3]int
}

// NewRightSizer wraps a performance database for a device with totalCUs
// compute units. A nil db right-sizes every kernel to the full device.
func NewRightSizer(db *profile.DB, totalCUs int) *RightSizer {
	return &RightSizer{db: db, totalCUs: totalCUs}
}

// NewFixedRightSizer returns a sizer granting a constant partition to
// every kernel — model-wise right-sizing carried through kernel-scoped
// partition instances (the paper's suggested enhancement to prior works).
func NewFixedRightSizer(n, totalCUs int) *RightSizer {
	if n < 1 {
		n = 1
	}
	if n > totalCUs {
		n = totalCUs
	}
	return &RightSizer{totalCUs: totalCUs, fixed: n}
}

// NewPhaseRightSizer returns a sizer granting separate fixed partitions
// to prefill- and decode-tagged kernels — per-phase kernel-wise
// right-sizing for autoregressive models, where the two phases sit at
// opposite ends of the minCU spectrum. Untagged kernels fall back to the
// larger of the two sizes (the safe side for anything unphased that
// sneaks into an LLM sequence).
func NewPhaseRightSizer(prefillCUs, decodeCUs, totalCUs int) *RightSizer {
	clamp := func(n int) int {
		if n < 1 {
			n = 1
		}
		if n > totalCUs {
			n = totalCUs
		}
		return n
	}
	prefillCUs, decodeCUs = clamp(prefillCUs), clamp(decodeCUs)
	fallback := prefillCUs
	if decodeCUs > fallback {
		fallback = decodeCUs
	}
	r := &RightSizer{totalCUs: totalCUs, fixed: fallback}
	r.phase[kernels.PhasePrefill] = prefillCUs
	r.phase[kernels.PhaseDecode] = decodeCUs
	return r
}

// Size returns the partition size for a kernel: the phase-specific size
// for tagged kernels when configured, else the fixed size if set, else
// its profiled minCU, else the full device for unprofiled kernels.
func (r *RightSizer) Size(d kernels.Desc) int {
	if d.Phase != kernels.PhaseNone {
		if s := r.phase[d.Phase]; s > 0 {
			return s
		}
	}
	if r.fixed > 0 {
		return r.fixed
	}
	if r.db == nil {
		return r.totalCUs
	}
	return r.db.MinCU(d, r.totalCUs)
}

// Ladder levels of the graceful-degradation ladder. A hardened runtime
// normally runs kernel-scoped (level 0); when kernel-scoped mask sets keep
// failing or the SLO guard sees the tail blow out, it steps down to the
// stream-scoped mask (level 1) and finally to the full healthy GPU
// (level 2), then re-tightens one rung at a time after a cool-down.
const (
	LadderKernelScoped = iota
	LadderStreamScoped
	LadderFullGPU
)

// Hardening parameterizes the fault-tolerant serving path of a Runtime:
// bounded retry of transiently-failed kernels and the graceful-degradation
// ladder. A nil Hardening on Config disables all of it at zero cost.
type Hardening struct {
	// MaxRetries bounds relaunch attempts for a transiently-failed kernel;
	// past it the kernel is abandoned and the sequence continues.
	MaxRetries int
	// RetryBackoff is the first retry delay; it doubles per attempt.
	RetryBackoff sim.Duration
	// IOCTLFailureStreak is the consecutive SetCUMask failure count that
	// drops an emulated runtime from kernel-scoped to stream-scoped.
	IOCTLFailureStreak int
	// Stats receives fault-reaction counters; shared across runtimes.
	Stats *faults.Stats
}

// Config parameterizes a Runtime.
type Config struct {
	Mode Mode
	// OverlapLimit bounds allocated-but-busy CUs per kernel: 0 for
	// KRISP-I, alloc.NoOverlapLimit for KRISP-O.
	OverlapLimit int
	// Policy is the CU distribution policy (Conserved for KRISP).
	Policy alloc.Policy
	// Trace, when non-nil, records every kernel launch.
	Trace *trace.Trace
	// Device is the GPU index this runtime dispatches to, stamped into
	// trace records and telemetry so multi-GPU runs stay attributable.
	Device int
	// Telemetry, when non-nil, receives right-sizing and ladder metrics.
	Telemetry *Telemetry
	// Hardening, when non-nil, enables the robust serving path (retry +
	// degradation ladder) for chaos runs.
	Hardening *Hardening
}

// Runtime intercepts kernel calls for one inference stream and applies
// kernel-wise right-sizing. It is the programmer-transparent layer: the
// caller (the "ML framework") only ever calls LaunchKernel.
type Runtime struct {
	cfg   Config
	queue *hsa.Queue
	rs    *RightSizer
	eng   *sim.Engine
	cp    *hsa.CommandProcessor
	dev   *gpu.Device
	seq   int

	// Degradation-ladder state (only mutated when cfg.Hardening != nil).
	level           int
	ioctlFailStreak int
	degradedSince   sim.Time
}

// NewRuntime builds the right-sizing runtime over an HSA queue. rs may be
// nil in passthrough mode.
func NewRuntime(eng *sim.Engine, cp *hsa.CommandProcessor, queue *hsa.Queue, rs *RightSizer, cfg Config) *Runtime {
	if cfg.Mode != ModePassthrough && rs == nil {
		panic("core: right-sizing modes require a RightSizer")
	}
	return &Runtime{
		cfg:   cfg,
		queue: queue,
		rs:    rs,
		eng:   eng,
		cp:    cp,
		dev:   cp.Device(),
	}
}

// Reconfigure rebinds a pooled runtime for a fresh run: new queue, sizer
// and config on the same engine/processor/device, with the degradation
// ladder and sequence counter returned to their initial state. It is the
// reuse twin of NewRuntime and panics under the same invariant.
func (rt *Runtime) Reconfigure(queue *hsa.Queue, rs *RightSizer, cfg Config) {
	if cfg.Mode != ModePassthrough && rs == nil {
		panic("core: right-sizing modes require a RightSizer")
	}
	rt.cfg = cfg
	rt.queue = queue
	rt.rs = rs
	rt.seq = 0
	rt.level = 0
	rt.ioctlFailStreak = 0
	rt.degradedSince = 0
}

// Queue returns the underlying HSA queue.
func (rt *Runtime) Queue() *hsa.Queue { return rt.queue }

// Mode returns the enforcement mode.
func (rt *Runtime) Mode() Mode { return rt.cfg.Mode }

// Level returns the runtime's current degradation-ladder level.
func (rt *Runtime) Level() int { return rt.level }

// Widen steps the degradation ladder one rung down (wider masks): kernel-
// scoped → stream-scoped → full healthy GPU. Entering the full-GPU rung
// re-masks the stream to every healthy CU. Passthrough runtimes have no
// kernel-scoped masking to give up, so Widen is a no-op for them. It
// reports whether the level changed.
func (rt *Runtime) Widen() bool {
	h := rt.cfg.Hardening
	if h == nil || rt.cfg.Mode == ModePassthrough || rt.level >= LadderFullGPU {
		return false
	}
	if rt.level == LadderKernelScoped {
		rt.degradedSince = rt.eng.Now()
	}
	rt.level++
	rt.cfg.Telemetry.noteLadder(rt.queue.ID, rt.level, true, rt.eng.Now())
	switch rt.level {
	case LadderStreamScoped:
		h.Stats.StreamFallbacks++
	case LadderFullGPU:
		h.Stats.FullGPUFallbacks++
		rt.queue.SetCUMask(rt.dev.HealthMask(), nil)
	}
	return true
}

// Tighten steps the ladder one rung back toward kernel-scoped masking,
// typically after the SLO guard's cool-down. It reports whether the level
// changed.
func (rt *Runtime) Tighten() bool {
	h := rt.cfg.Hardening
	if h == nil || rt.level == LadderKernelScoped {
		return false
	}
	rt.level--
	rt.cfg.Telemetry.noteLadder(rt.queue.ID, rt.level, false, rt.eng.Now())
	h.Stats.LadderTightenings++
	if rt.level == LadderKernelScoped {
		h.Stats.DegradedTime += rt.eng.Now() - rt.degradedSince
	}
	return true
}

// FlushDegradedTime closes the open degraded interval (if any) into the
// stats at the current time — called once when a run's measurement ends.
func (rt *Runtime) FlushDegradedTime() {
	h := rt.cfg.Hardening
	if h == nil || rt.level == LadderKernelScoped {
		return
	}
	h.Stats.DegradedTime += rt.eng.Now() - rt.degradedSince
	rt.degradedSince = rt.eng.Now()
}

// noteIOCTLFailure records one failed kernel-scoped mask set; a streak of
// them drops the runtime to stream-scoped masking.
func (rt *Runtime) noteIOCTLFailure() {
	h := rt.cfg.Hardening
	h.Stats.MaskFallbacks++
	rt.ioctlFailStreak++
	if rt.ioctlFailStreak >= h.IOCTLFailureStreak && rt.level == LadderKernelScoped {
		rt.ioctlFailStreak = 0
		rt.Widen()
	}
}

// LaunchKernel submits one kernel call. onDone fires when the kernel
// completes on the device.
func (rt *Runtime) LaunchKernel(d kernels.Desc, onDone func()) {
	seq := rt.seq
	rt.seq++
	switch rt.cfg.Mode {
	case ModePassthrough:
		rt.submit(seq, d, 0, onDone)
	case ModeNative:
		partition := rt.rs.Size(d)
		rt.cfg.Telemetry.noteDecision(rt.queue.ID, partition, rt.eng.Now())
		if rt.level > LadderKernelScoped {
			// Degraded: suspend per-kernel masking; the kernel inherits
			// the stream mask (full GPU at the bottom rung).
			partition = 0
		}
		rt.submit(seq, d, partition, onDone)
	case ModeEmulated:
		if rt.level > LadderKernelScoped {
			rt.submit(seq, d, 0, onDone)
			return
		}
		rt.launchEmulated(seq, d, onDone)
	default:
		panic("core: unknown mode")
	}
}

// traceRec dedupes trace emission across the retry attempts of one seq:
// each attempt registers its own completion hook, and whichever attempt
// finally completes claims the record. Without the guard, fault paths that
// complete an earlier attempt's signal late (watchdog resets, injected
// double completions) could log the same seq twice.
type traceRec struct{ recorded bool }

// submit dispatches a kernel (kernel-scoped iff partition > 0) and wires
// tracing around it.
func (rt *Runtime) submit(seq int, d kernels.Desc, partition int, onDone func()) {
	var rec *traceRec
	if rt.cfg.Trace != nil {
		rec = &traceRec{}
	}
	rt.submitAttempt(seq, d, partition, 0, rec, onDone)
}

// onFaultFor builds the transient-failure handler for one dispatch
// attempt: bounded retry with exponential backoff, then abandonment (the
// sequence continues without the kernel — bounded degradation beats a
// wedged stream). Returns nil when hardening is disabled, so fault-free
// runs carry no handler and injected failures are swallowed in hsa.
func (rt *Runtime) onFaultFor(seq int, d kernels.Desc, partition, attempt int, rec *traceRec, onDone func()) func() {
	h := rt.cfg.Hardening
	if h == nil {
		return nil
	}
	return func() {
		if attempt >= h.MaxRetries {
			h.Stats.KernelsAbandoned++
			if t := rt.cfg.Telemetry; t != nil {
				t.Abandoned.Inc()
			}
			if onDone != nil {
				onDone()
			}
			return
		}
		h.Stats.KernelRetries++
		if t := rt.cfg.Telemetry; t != nil {
			t.Retries.Inc()
		}
		backoff := h.RetryBackoff * sim.Duration(int64(1)<<uint(attempt))
		rt.eng.After(backoff, func() {
			rt.submitAttempt(seq, d, partition, attempt+1, rec, onDone)
		})
	}
}

func (rt *Runtime) submitAttempt(seq int, d kernels.Desc, partition, attempt int, rec *traceRec, onDone func()) {
	sig := rt.cp.GetSignal(1)
	onFault := rt.onFaultFor(seq, d, partition, attempt, rec, onDone)
	if rt.cfg.Trace != nil {
		var start sim.Time
		var granted gpu.CUMask
		// The queue serializes kernels, so completion order matches launch
		// order and records append in sequence. rec guards the emission:
		// exactly one record per seq, stamped with the attempt that made it.
		sig.OnDone(func() {
			if !rec.recorded {
				rec.recorded = true
				rt.cfg.Trace.Add(trace.Record{
					Seq:          seq,
					Kernel:       d.Name,
					Workgroups:   d.Work.Workgroups,
					MinCU:        partition,
					AllocatedCUs: granted.Count(),
					Attempt:      attempt,
					Queue:        rt.queue.ID,
					Device:       rt.cfg.Device,
					Start:        start,
					End:          rt.eng.Now(),
				})
			}
			if onDone != nil {
				onDone()
			}
		})
		rt.queue.Submit(hsa.Packet{
			Type:         hsa.KernelDispatch,
			Kernel:       d,
			PartitionCUs: partition,
			OverlapLimit: rt.cfg.OverlapLimit,
			Completion:   sig,
			OnFault:      onFault,
			OnDispatch: func(mask gpu.CUMask) {
				start = rt.eng.Now()
				granted = mask
			},
		})
		return
	}
	if onDone != nil {
		sig.OnDone(onDone)
	}
	rt.queue.Submit(hsa.Packet{
		Type:         hsa.KernelDispatch,
		Kernel:       d,
		PartitionCUs: partition,
		OverlapLimit: rt.cfg.OverlapLimit,
		Completion:   sig,
		OnFault:      onFault,
	})
}

// launchEmulated implements Fig. 11b: barrier (callback: right-size +
// allocate + IOCTL) -> barrier (wait for mask applied) -> kernel.
func (rt *Runtime) launchEmulated(seq int, d kernels.Desc, onDone func()) {
	// maskApplied is observed (Done) by the second barrier after it
	// completes, so it takes the explicitly-recycled pool path: the second
	// barrier's callback returns it once no reference remains.
	maskApplied := rt.cp.GetBarrierSignal(1)
	// First barrier: consumed once prior kernels in this queue are done
	// (queue FIFO order guarantees that); its runtime callback performs
	// kernel-wise right-sizing and queue mask reconfiguration.
	rt.queue.SubmitBarrier(nil, func() {
		size := rt.rs.Size(d)
		rt.cfg.Telemetry.noteDecision(rt.queue.ID, size, rt.eng.Now())
		mask := rt.cp.GenerateKernelMask(alloc.Request{
			NumCUs:       size,
			OverlapLimit: rt.cfg.OverlapLimit,
			Policy:       rt.cfg.Policy,
			MinGrant:     rt.cp.FairShare(),
		})
		if rt.cfg.Hardening == nil {
			rt.queue.SetCUMask(mask, func() { maskApplied.Complete() })
			return
		}
		// Hardened path: a failed kernel-scoped mask set falls back to the
		// stream-scoped mask already installed (the kernel runs wider than
		// asked — correct, just less isolated), and a streak of failures
		// drops the whole runtime one ladder rung.
		rt.queue.SetCUMaskChecked(mask, func(err error) {
			if err != nil {
				rt.noteIOCTLFailure()
			} else {
				rt.ioctlFailStreak = 0
			}
			maskApplied.Complete()
		})
	}, nil)
	// Second barrier: blocks the kernel packet until the IOCTL applied
	// the new mask, avoiding the mask/kernel race. Its callback is the
	// last reader of maskApplied, so it returns the signal to the pool.
	rt.queue.SubmitBarrier([]*hsa.Signal{maskApplied}, func() {
		rt.cp.PutSignal(maskApplied)
	}, nil)
	// The kernel itself inherits the queue mask just installed.
	rt.submit(seq, d, 0, onDone)
}

// RunSequence launches a kernel sequence (one inference pass) and invokes
// onDone when the final kernel completes.
func (rt *Runtime) RunSequence(descs []kernels.Desc, onDone func()) {
	if len(descs) == 0 {
		if onDone != nil {
			onDone()
		}
		return
	}
	for i, d := range descs {
		if i == len(descs)-1 {
			rt.LaunchKernel(d, onDone)
		} else {
			rt.LaunchKernel(d, nil)
		}
	}
}

// OverheadEstimate is the §V-B accounting for one model.
type OverheadEstimate struct {
	// LRealBase is the inference latency on the unmodified baseline.
	LRealBase sim.Duration
	// LEmuBase is the latency with kernel-scoped emulation enabled but
	// right-sizing pinned to all CUs (mask reconfiguration still happens).
	LEmuBase sim.Duration
	// LOver = LEmuBase - LRealBase: the emulation-only overhead that must
	// be subtracted from emulated-KRISP measurements.
	LOver sim.Duration
}

// Adjust converts an emulated-KRISP latency into the estimated native
// latency: L_real^KRISP = L_emu^KRISP - L_over.
func (o OverheadEstimate) Adjust(emulated sim.Duration) sim.Duration {
	adj := emulated - o.LOver
	if adj < 0 {
		adj = 0
	}
	return adj
}

// EstimateOverhead measures LRealBase and LEmuBase for one inference pass
// by running it twice on a fresh, otherwise-idle stack: once in
// passthrough mode and once in emulated mode with a full-device
// right-sizer (the paper's "resource mask set to all active CUs").
func EstimateOverhead(spec gpu.DeviceSpec, hsaCfg hsa.Config, descs []kernels.Desc) OverheadEstimate {
	run := func(mode Mode) sim.Duration {
		eng := sim.New()
		dev := gpu.NewDevice(eng, spec, nil)
		cfg := hsaCfg
		cfg.KernelScoped = false // emulation path must not use native support
		cp := hsa.NewCommandProcessor(eng, dev, cfg)
		// Full-device right-sizer: every kernel sized to all CUs.
		rs := NewRightSizer(nil, spec.Topo.TotalCUs())
		rt := NewRuntime(eng, cp, cp.NewQueue(), rs, Config{
			Mode:         mode,
			OverlapLimit: alloc.NoOverlapLimit,
		})
		var done sim.Time
		rt.RunSequence(descs, func() { done = eng.Now() })
		eng.Run()
		return done
	}
	real := run(ModePassthrough)
	emu := run(ModeEmulated)
	return OverheadEstimate{LRealBase: real, LEmuBase: emu, LOver: emu - real}
}
