// Package core is KRISP itself: programmer-transparent kernel-wise
// right-sizing layered into the GPU runtime (paper §IV, Fig. 5).
//
// A Runtime wraps one HSA queue (one inference stream). Every kernel call
// from the ML framework is intercepted, its minimum required CUs looked up
// in the profiled performance database, and the partition enforced through
// one of three paths:
//
//   - ModeNative — the proposed hardware: the partition size rides in the
//     extended AQL packet and the packet processor generates the kernel
//     resource mask (kernel-scoped partition instance, Fig. 10b).
//   - ModeEmulated — the paper's evaluation vehicle on real hardware
//     (Fig. 11): two barrier packets bracket each kernel; the first one's
//     runtime callback right-sizes, allocates, and reconfigures the
//     queue's stream-scoped CU mask via the (serialized) IOCTL; the second
//     waits for the reconfiguration signal so the kernel cannot race the
//     mask change.
//   - ModePassthrough — the unmodified baseline: kernels inherit the
//     queue's CU mask (whatever MPS-default/static policy set it to).
//
// EstimateOverhead reproduces §V-B's accounting: the per-model emulation
// overhead L_over = L_emu_base - L_real_base that must be subtracted from
// emulated-KRISP latencies to estimate native KRISP performance (Fig. 12).
package core

import (
	"krisp/internal/alloc"
	"krisp/internal/gpu"
	"krisp/internal/hsa"
	"krisp/internal/kernels"
	"krisp/internal/profile"
	"krisp/internal/sim"
	"krisp/internal/trace"
)

// Mode selects how spatial partitions are enforced.
type Mode int

const (
	// ModePassthrough launches kernels with the queue's stream mask.
	ModePassthrough Mode = iota
	// ModeNative uses kernel-scoped partition instances in hardware.
	ModeNative
	// ModeEmulated emulates kernel scoping with barrier packets and the
	// stream-scoped CU Masking IOCTL.
	ModeEmulated
)

func (m Mode) String() string {
	switch m {
	case ModePassthrough:
		return "passthrough"
	case ModeNative:
		return "native"
	case ModeEmulated:
		return "emulated"
	default:
		return "unknown"
	}
}

// RightSizer answers "how many CUs does this kernel need?" from the
// profiled performance database — the Required CUs table of §IV-B.
type RightSizer struct {
	db       *profile.DB
	totalCUs int
	fixed    int
}

// NewRightSizer wraps a performance database for a device with totalCUs
// compute units. A nil db right-sizes every kernel to the full device.
func NewRightSizer(db *profile.DB, totalCUs int) *RightSizer {
	return &RightSizer{db: db, totalCUs: totalCUs}
}

// NewFixedRightSizer returns a sizer granting a constant partition to
// every kernel — model-wise right-sizing carried through kernel-scoped
// partition instances (the paper's suggested enhancement to prior works).
func NewFixedRightSizer(n, totalCUs int) *RightSizer {
	if n < 1 {
		n = 1
	}
	if n > totalCUs {
		n = totalCUs
	}
	return &RightSizer{totalCUs: totalCUs, fixed: n}
}

// Size returns the partition size for a kernel: the fixed size if set,
// else its profiled minCU, else the full device for unprofiled kernels.
func (r *RightSizer) Size(d kernels.Desc) int {
	if r.fixed > 0 {
		return r.fixed
	}
	if r.db == nil {
		return r.totalCUs
	}
	return r.db.MinCU(d, r.totalCUs)
}

// Config parameterizes a Runtime.
type Config struct {
	Mode Mode
	// OverlapLimit bounds allocated-but-busy CUs per kernel: 0 for
	// KRISP-I, alloc.NoOverlapLimit for KRISP-O.
	OverlapLimit int
	// Policy is the CU distribution policy (Conserved for KRISP).
	Policy alloc.Policy
	// Trace, when non-nil, records every kernel launch.
	Trace *trace.Trace
}

// Runtime intercepts kernel calls for one inference stream and applies
// kernel-wise right-sizing. It is the programmer-transparent layer: the
// caller (the "ML framework") only ever calls LaunchKernel.
type Runtime struct {
	cfg   Config
	queue *hsa.Queue
	rs    *RightSizer
	eng   *sim.Engine
	cp    *hsa.CommandProcessor
	dev   *gpu.Device
	seq   int
}

// NewRuntime builds the right-sizing runtime over an HSA queue. rs may be
// nil in passthrough mode.
func NewRuntime(eng *sim.Engine, cp *hsa.CommandProcessor, queue *hsa.Queue, rs *RightSizer, cfg Config) *Runtime {
	if cfg.Mode != ModePassthrough && rs == nil {
		panic("core: right-sizing modes require a RightSizer")
	}
	return &Runtime{
		cfg:   cfg,
		queue: queue,
		rs:    rs,
		eng:   eng,
		cp:    cp,
		dev:   cp.Device(),
	}
}

// Queue returns the underlying HSA queue.
func (rt *Runtime) Queue() *hsa.Queue { return rt.queue }

// Mode returns the enforcement mode.
func (rt *Runtime) Mode() Mode { return rt.cfg.Mode }

// LaunchKernel submits one kernel call. onDone fires when the kernel
// completes on the device.
func (rt *Runtime) LaunchKernel(d kernels.Desc, onDone func()) {
	seq := rt.seq
	rt.seq++
	switch rt.cfg.Mode {
	case ModePassthrough:
		rt.submit(seq, d, 0, onDone)
	case ModeNative:
		rt.submit(seq, d, rt.rs.Size(d), onDone)
	case ModeEmulated:
		rt.launchEmulated(seq, d, onDone)
	default:
		panic("core: unknown mode")
	}
}

// submit dispatches a kernel (kernel-scoped iff partition > 0) and wires
// tracing around it.
func (rt *Runtime) submit(seq int, d kernels.Desc, partition int, onDone func()) {
	sig := hsa.NewSignal(1)
	if rt.cfg.Trace != nil {
		var start sim.Time
		var granted gpu.CUMask
		// The queue serializes kernels, so completion order matches launch
		// order and records append in sequence.
		sig.OnDone(func() {
			rt.cfg.Trace.Add(trace.Record{
				Seq:          seq,
				Kernel:       d.Name,
				Workgroups:   d.Work.Workgroups,
				MinCU:        partition,
				AllocatedCUs: granted.Count(),
				Start:        start,
				End:          rt.eng.Now(),
			})
			if onDone != nil {
				onDone()
			}
		})
		rt.queue.Submit(hsa.Packet{
			Type:         hsa.KernelDispatch,
			Kernel:       d,
			PartitionCUs: partition,
			OverlapLimit: rt.cfg.OverlapLimit,
			Completion:   sig,
			OnDispatch: func(mask gpu.CUMask) {
				start = rt.eng.Now()
				granted = mask
			},
		})
		return
	}
	if onDone != nil {
		sig.OnDone(onDone)
	}
	rt.queue.Submit(hsa.Packet{
		Type:         hsa.KernelDispatch,
		Kernel:       d,
		PartitionCUs: partition,
		OverlapLimit: rt.cfg.OverlapLimit,
		Completion:   sig,
	})
}

// launchEmulated implements Fig. 11b: barrier (callback: right-size +
// allocate + IOCTL) -> barrier (wait for mask applied) -> kernel.
func (rt *Runtime) launchEmulated(seq int, d kernels.Desc, onDone func()) {
	maskApplied := hsa.NewSignal(1)
	// First barrier: consumed once prior kernels in this queue are done
	// (queue FIFO order guarantees that); its runtime callback performs
	// kernel-wise right-sizing and queue mask reconfiguration.
	rt.queue.SubmitBarrier(nil, func() {
		size := rt.rs.Size(d)
		mask := alloc.GenerateMask(rt.dev.Spec.Topo, rt.dev.Counters(), alloc.Request{
			NumCUs:       size,
			OverlapLimit: rt.cfg.OverlapLimit,
			Policy:       rt.cfg.Policy,
			MinGrant:     rt.cp.FairShare(),
		})
		rt.queue.SetCUMask(mask, func() { maskApplied.Complete() })
	}, nil)
	// Second barrier: blocks the kernel packet until the IOCTL applied
	// the new mask, avoiding the mask/kernel race.
	rt.queue.SubmitBarrier([]*hsa.Signal{maskApplied}, nil, nil)
	// The kernel itself inherits the queue mask just installed.
	rt.submit(seq, d, 0, onDone)
}

// RunSequence launches a kernel sequence (one inference pass) and invokes
// onDone when the final kernel completes.
func (rt *Runtime) RunSequence(descs []kernels.Desc, onDone func()) {
	if len(descs) == 0 {
		if onDone != nil {
			onDone()
		}
		return
	}
	for i, d := range descs {
		if i == len(descs)-1 {
			rt.LaunchKernel(d, onDone)
		} else {
			rt.LaunchKernel(d, nil)
		}
	}
}

// OverheadEstimate is the §V-B accounting for one model.
type OverheadEstimate struct {
	// LRealBase is the inference latency on the unmodified baseline.
	LRealBase sim.Duration
	// LEmuBase is the latency with kernel-scoped emulation enabled but
	// right-sizing pinned to all CUs (mask reconfiguration still happens).
	LEmuBase sim.Duration
	// LOver = LEmuBase - LRealBase: the emulation-only overhead that must
	// be subtracted from emulated-KRISP measurements.
	LOver sim.Duration
}

// Adjust converts an emulated-KRISP latency into the estimated native
// latency: L_real^KRISP = L_emu^KRISP - L_over.
func (o OverheadEstimate) Adjust(emulated sim.Duration) sim.Duration {
	adj := emulated - o.LOver
	if adj < 0 {
		adj = 0
	}
	return adj
}

// EstimateOverhead measures LRealBase and LEmuBase for one inference pass
// by running it twice on a fresh, otherwise-idle stack: once in
// passthrough mode and once in emulated mode with a full-device
// right-sizer (the paper's "resource mask set to all active CUs").
func EstimateOverhead(spec gpu.DeviceSpec, hsaCfg hsa.Config, descs []kernels.Desc) OverheadEstimate {
	run := func(mode Mode) sim.Duration {
		eng := sim.New()
		dev := gpu.NewDevice(eng, spec, nil)
		cfg := hsaCfg
		cfg.KernelScoped = false // emulation path must not use native support
		cp := hsa.NewCommandProcessor(eng, dev, cfg)
		// Full-device right-sizer: every kernel sized to all CUs.
		rs := NewRightSizer(nil, spec.Topo.TotalCUs())
		rt := NewRuntime(eng, cp, cp.NewQueue(), rs, Config{
			Mode:         mode,
			OverlapLimit: alloc.NoOverlapLimit,
		})
		var done sim.Time
		rt.RunSequence(descs, func() { done = eng.Now() })
		eng.Run()
		return done
	}
	real := run(ModePassthrough)
	emu := run(ModeEmulated)
	return OverheadEstimate{LRealBase: real, LEmuBase: emu, LOver: emu - real}
}
