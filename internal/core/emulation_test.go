package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"krisp/internal/alloc"
	"krisp/internal/gpu"
	"krisp/internal/hsa"
	"krisp/internal/kernels"
	"krisp/internal/profile"
	"krisp/internal/sim"
	"krisp/internal/trace"
)

// TestEmulatedKernelNeverRacesMaskChange verifies the purpose of the
// second barrier packet (Fig. 11b step 6): the kernel must never begin
// executing before its queue's CU mask reconfiguration has been applied,
// even with multiple queues serializing their IOCTLs.
func TestEmulatedKernelNeverRacesMaskChange(t *testing.T) {
	descs := []kernels.Desc{
		kernels.SizedCompute("a", 5, 10, 1, 40),
		kernels.SizedCompute("b", 30, 10, 1, 40),
		kernels.SizedCompute("c", 12, 10, 1, 40),
	}
	eng := sim.New()
	dev := gpu.NewDevice(eng, gpu.MI50Spec(), nil)
	cp := hsa.NewCommandProcessor(eng, dev, hsa.DefaultConfig())
	db := profile.NewDB()
	db.Profile(profile.New(profile.DefaultConfig()), descs)
	rs := NewRightSizer(db, 60)

	// Three concurrent emulated streams: IOCTLs serialize globally, so
	// without the second barrier a kernel could launch under a stale
	// mask.
	var traces []*trace.Trace
	for q := 0; q < 3; q++ {
		tr := &trace.Trace{}
		traces = append(traces, tr)
		rt := NewRuntime(eng, cp, cp.NewQueue(), rs, Config{
			Mode:         ModeEmulated,
			OverlapLimit: alloc.NoOverlapLimit,
			Trace:        tr,
		})
		rt.RunSequence(descs, nil)
	}
	eng.Run()
	for qi, tr := range traces {
		if tr.Len() != len(descs) {
			t.Fatalf("queue %d traced %d kernels, want %d", qi, tr.Len(), len(descs))
		}
		for _, r := range tr.Records() {
			want := rs.Size(mustDesc(descs, r.Kernel))
			if r.AllocatedCUs != want {
				t.Errorf("queue %d kernel %s ran with %d CUs, want %d (stale mask race)",
					qi, r.Kernel, r.AllocatedCUs, want)
			}
		}
	}
}

func mustDesc(descs []kernels.Desc, name string) kernels.Desc {
	for _, d := range descs {
		if d.Name == name {
			return d
		}
	}
	panic("unknown kernel " + name)
}

// Property: in native mode the traced allocation never exceeds the
// requested partition and the trace is complete and ordered.
func TestNativeTraceProperty(t *testing.T) {
	prop := func(seed int64, n8 uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(n8%20) + 1
		descs := make([]kernels.Desc, n)
		for i := range descs {
			descs[i] = kernels.SizedCompute("k", 1+rng.Intn(60), 10, 1, sim.Duration(1+rng.Intn(30)))
		}
		eng := sim.New()
		dev := gpu.NewDevice(eng, gpu.MI50Spec(), nil)
		cfg := hsa.DefaultConfig()
		cfg.KernelScoped = true
		cp := hsa.NewCommandProcessor(eng, dev, cfg)
		db := profile.NewDB()
		db.Profile(profile.New(profile.DefaultConfig()), descs)
		rs := NewRightSizer(db, 60)
		tr := &trace.Trace{}
		rt := NewRuntime(eng, cp, cp.NewQueue(), rs, Config{
			Mode: ModeNative, OverlapLimit: 0, Trace: tr,
		})
		done := false
		rt.RunSequence(descs, func() { done = true })
		eng.Run()
		if !done || tr.Len() != n {
			return false
		}
		prevEnd := sim.Time(0)
		for i, r := range tr.Records() {
			if r.Seq != i {
				return false
			}
			if r.AllocatedCUs < 1 || r.AllocatedCUs > r.MinCU {
				return false
			}
			if r.Start < prevEnd || r.End < r.Start {
				return false
			}
			prevEnd = r.End
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
