package core

import (
	"testing"

	"krisp/internal/alloc"
	"krisp/internal/faults"
	"krisp/internal/gpu"
	"krisp/internal/hsa"
	"krisp/internal/kernels"
	"krisp/internal/profile"
	"krisp/internal/sim"
	"krisp/internal/trace"
)

type stack struct {
	eng *sim.Engine
	dev *gpu.Device
	cp  *hsa.CommandProcessor
	rs  *RightSizer
	db  *profile.DB
}

func newStack(t *testing.T, descs []kernels.Desc, kernelScoped bool) *stack {
	t.Helper()
	eng := sim.New()
	dev := gpu.NewDevice(eng, gpu.MI50Spec(), nil)
	cfg := hsa.DefaultConfig()
	cfg.KernelScoped = kernelScoped
	cp := hsa.NewCommandProcessor(eng, dev, cfg)
	db := profile.NewDB()
	db.Profile(profile.New(profile.DefaultConfig()), descs)
	return &stack{eng: eng, dev: dev, cp: cp, rs: NewRightSizer(db, 60), db: db}
}

func (s *stack) runtime(cfg Config) *Runtime {
	return NewRuntime(s.eng, s.cp, s.cp.NewQueue(), s.rs, cfg)
}

func twoKernels() []kernels.Desc {
	return []kernels.Desc{
		kernels.SizedCompute("small", 12, 10, 1, 100),
		kernels.SizedCompute("wide", 60, 10, 1, 20),
	}
}

func TestRightSizerUsesDB(t *testing.T) {
	descs := twoKernels()
	s := newStack(t, descs, true)
	if got := s.rs.Size(descs[0]); got != 12 {
		t.Errorf("Size(small) = %d, want 12", got)
	}
	if got := s.rs.Size(descs[1]); got != 60 {
		t.Errorf("Size(wide) = %d, want 60", got)
	}
	// Unprofiled kernels get the full device.
	if got := s.rs.Size(kernels.SizedCompute("unknown", 5, 10, 1, 1)); got != 60 {
		t.Errorf("Size(unknown) = %d, want 60", got)
	}
	// Nil DB always grants the full device.
	nilRS := NewRightSizer(nil, 60)
	if got := nilRS.Size(descs[0]); got != 60 {
		t.Errorf("nil-DB Size = %d, want 60", got)
	}
}

func TestNativeModeRightSizesEachKernel(t *testing.T) {
	descs := twoKernels()
	s := newStack(t, descs, true)
	tr := &trace.Trace{}
	rt := s.runtime(Config{Mode: ModeNative, OverlapLimit: 0, Trace: tr})
	done := false
	rt.RunSequence(descs, func() { done = true })
	s.eng.Run()
	if !done {
		t.Fatal("sequence never completed")
	}
	recs := tr.Records()
	if len(recs) != 2 {
		t.Fatalf("%d trace records, want 2", len(recs))
	}
	if recs[0].AllocatedCUs != 12 {
		t.Errorf("small kernel allocated %d CUs, want 12", recs[0].AllocatedCUs)
	}
	if recs[1].AllocatedCUs != 60 {
		t.Errorf("wide kernel allocated %d CUs, want 60", recs[1].AllocatedCUs)
	}
	if recs[0].Seq != 0 || recs[1].Seq != 1 {
		t.Errorf("sequence numbers %d, %d, want 0, 1", recs[0].Seq, recs[1].Seq)
	}
	if recs[0].End <= recs[0].Start {
		t.Error("record has non-positive duration")
	}
}

func TestEmulatedModeReconfiguresQueueMask(t *testing.T) {
	descs := twoKernels()
	s := newStack(t, descs, false) // no native hardware support
	rt := s.runtime(Config{Mode: ModeEmulated, OverlapLimit: 0})
	var maskDuringFirst int
	rt.LaunchKernel(descs[0], nil)
	// Inspect the device while the first (12-CU) kernel runs. The
	// emulation path spends ~32us before the kernel starts (two barrier
	// packets + IOCTL), so probe at 45us.
	s.eng.At(45, func() { maskDuringFirst = s.dev.BusyCUs() })
	s.eng.Run()
	if maskDuringFirst != 12 {
		t.Errorf("busy CUs during emulated kernel = %d, want 12", maskDuringFirst)
	}
	if got := rt.Queue().CUMask().Count(); got != 12 {
		t.Errorf("queue mask after run = %d CUs, want 12", got)
	}
}

func TestEmulatedSlowerThanNative(t *testing.T) {
	descs := twoKernels()

	run := func(mode Mode, kernelScoped bool) sim.Duration {
		s := newStack(t, descs, kernelScoped)
		rt := s.runtime(Config{Mode: mode, OverlapLimit: alloc.NoOverlapLimit})
		var done sim.Time
		rt.RunSequence(descs, func() { done = s.eng.Now() })
		s.eng.Run()
		return done
	}

	native := run(ModeNative, true)
	emulated := run(ModeEmulated, false)
	if emulated <= native {
		t.Errorf("emulated (%v) should be slower than native (%v)", emulated, native)
	}
	// Emulation adds per kernel: barrier B1 processing (6us) plus the
	// IOCTL wait that outlasts B2's processing (20us) = 26us; native
	// instead pays 1us of mask-allocation firmware time. Two kernels:
	// 2 x (26 - 1) = 50us.
	if d := emulated - native; d < 45 || d > 55 {
		t.Errorf("emulation overhead = %v, want ~50", d)
	}
}

func TestPassthroughIgnoresRightSizing(t *testing.T) {
	descs := twoKernels()
	s := newStack(t, descs, true)
	rt := s.runtime(Config{Mode: ModePassthrough})
	var busy int
	rt.LaunchKernel(descs[0], nil)
	s.eng.At(10, func() { busy = s.dev.BusyCUs() })
	s.eng.Run()
	if busy != 60 {
		t.Errorf("passthrough busy CUs = %d, want 60 (full queue mask)", busy)
	}
}

func TestRunSequenceEmpty(t *testing.T) {
	s := newStack(t, nil, true)
	rt := s.runtime(Config{Mode: ModeNative})
	called := false
	rt.RunSequence(nil, func() { called = true })
	if !called {
		t.Error("empty sequence did not invoke onDone")
	}
}

func TestRuntimeRequiresRightSizer(t *testing.T) {
	s := newStack(t, nil, true)
	defer func() {
		if recover() == nil {
			t.Error("native mode without RightSizer did not panic")
		}
	}()
	NewRuntime(s.eng, s.cp, s.cp.NewQueue(), nil, Config{Mode: ModeNative})
}

func TestModeString(t *testing.T) {
	if ModePassthrough.String() != "passthrough" || ModeNative.String() != "native" ||
		ModeEmulated.String() != "emulated" || Mode(9).String() != "unknown" {
		t.Error("Mode.String wrong")
	}
}

func TestEstimateOverheadAccounting(t *testing.T) {
	descs := []kernels.Desc{
		kernels.SizedCompute("a", 12, 10, 1, 100),
		kernels.SizedCompute("b", 30, 10, 1, 50),
		kernels.SizedCompute("c", 60, 10, 1, 20),
	}
	est := EstimateOverhead(gpu.MI50Spec(), hsa.DefaultConfig(), descs)
	if est.LRealBase <= 0 || est.LEmuBase <= est.LRealBase {
		t.Fatalf("estimate = %+v, want 0 < real < emu", est)
	}
	// Per-kernel emulation cost: barrier B1 (6us) + the IOCTL wait beyond
	// B2's overlapped processing (20us) = 26us.
	wantOver := sim.Duration(3 * 26)
	if est.LOver < wantOver-5 || est.LOver > wantOver+5 {
		t.Errorf("LOver = %v, want ~%v", est.LOver, wantOver)
	}
	// Adjust subtracts the overhead and floors at zero.
	if got := est.Adjust(est.LEmuBase); got != est.LRealBase {
		t.Errorf("Adjust(LEmuBase) = %v, want LRealBase %v", got, est.LRealBase)
	}
	if got := est.Adjust(1); got != 0 {
		t.Errorf("Adjust(1) = %v, want 0 (floored)", got)
	}
}

// TestOverheadScalesWithKernelCount verifies the §V-B observation that
// emulation overhead scales with the number of kernel calls.
func TestOverheadScalesWithKernelCount(t *testing.T) {
	mk := func(n int) []kernels.Desc {
		out := make([]kernels.Desc, n)
		for i := range out {
			out[i] = kernels.SizedCompute("k", 12, 10, 1, 50)
		}
		return out
	}
	short := EstimateOverhead(gpu.MI50Spec(), hsa.DefaultConfig(), mk(10))
	long := EstimateOverhead(gpu.MI50Spec(), hsa.DefaultConfig(), mk(40))
	ratio := float64(long.LOver) / float64(short.LOver)
	if ratio < 3.5 || ratio > 4.5 {
		t.Errorf("overhead ratio = %.2f, want ~4 (scales with kernel count)", ratio)
	}
}

// failFirst is a FaultHook failing the first n kernel dispatches.
type failFirst struct{ n int }

func (f *failFirst) IOCTLOutcome() (bool, sim.Duration) { return false, 0 }
func (f *failFirst) KernelOutcome() (float64, bool) {
	if f.n > 0 {
		f.n--
		return 1, true
	}
	return 1, false
}
func (f *failFirst) NoteHealthRemask() {}

// TestRetriedLaunchTracesOnce pins the retry/trace contract: a kernel that
// transiently fails and is relaunched produces exactly one trace record
// for its seq, stamped with the attempt that completed it.
func TestRetriedLaunchTracesOnce(t *testing.T) {
	descs := twoKernels()
	s := newStack(t, descs, true)
	s.cp.SetFaults(&failFirst{n: 2})
	var tr trace.Trace
	stats := &faults.Stats{}
	rt := s.runtime(Config{
		Mode:  ModeNative,
		Trace: &tr,
		Hardening: &Hardening{
			MaxRetries: 3, RetryBackoff: 10, IOCTLFailureStreak: 3, Stats: stats,
		},
	})
	done := false
	rt.RunSequence(descs, func() { done = true })
	s.eng.Run()
	if !done {
		t.Fatal("sequence never completed")
	}
	if stats.KernelRetries != 2 {
		t.Fatalf("KernelRetries = %d, want 2", stats.KernelRetries)
	}
	recs := tr.Records()
	if len(recs) != len(descs) {
		t.Fatalf("%d trace records, want %d (one per seq)", len(recs), len(descs))
	}
	seen := map[int]bool{}
	retried := 0
	for _, r := range recs {
		if seen[r.Seq] {
			t.Fatalf("duplicate trace record for seq %d", r.Seq)
		}
		seen[r.Seq] = true
		if r.Attempt > 0 {
			retried++
		}
	}
	if retried != 2 {
		t.Fatalf("%d records marked as retried, want 2", retried)
	}
}
