package core

import (
	"fmt"

	tele "krisp/internal/telemetry"
)

// Telemetry holds the runtime's metric handles — right-sizing decisions and
// degradation-ladder movement — resolved once at stack construction. All
// handles are nil-safe; a nil *Telemetry on Config disables everything.
type Telemetry struct {
	// Decisions counts kernel-wise right-sizing decisions made.
	Decisions *tele.Counter
	// PartitionCUs is the distribution of decided partition sizes.
	PartitionCUs *tele.Histogram
	// Widenings and Tightenings count degradation-ladder transitions.
	Widenings   *tele.Counter
	Tightenings *tele.Counter
	// Retries counts kernel relaunch attempts after transient failures;
	// Abandoned counts kernels given up past the retry bound.
	Retries   *tele.Counter
	Abandoned *tele.Counter

	tracer *tele.Tracer
	pid    int
}

// NewTelemetry resolves the runtime metric handles for GPU index gpu
// against the hub. Returns nil when the hub carries no registry. Runtimes
// sharing a GPU share the handles (the registry is get-or-register).
func NewTelemetry(hub *tele.Hub, gpu int) *Telemetry {
	reg := hub.Registry()
	if reg == nil {
		return nil
	}
	lbl := fmt.Sprintf(`{gpu="%d"}`, gpu)
	return &Telemetry{
		Decisions:    reg.Counter("krisp_core_rightsize_decisions_total"+lbl, "kernel-wise right-sizing decisions"),
		PartitionCUs: reg.Histogram("krisp_core_partition_cus"+lbl, "decided partition sizes (CUs)", tele.CUBuckets()),
		Widenings:    reg.Counter("krisp_core_ladder_widenings_total"+lbl, "degradation-ladder steps toward wider masks"),
		Tightenings:  reg.Counter("krisp_core_ladder_tightenings_total"+lbl, "degradation-ladder steps back toward kernel scoping"),
		Retries:      reg.Counter("krisp_core_kernel_retries_total"+lbl, "kernel relaunches after transient failures"),
		Abandoned:    reg.Counter("krisp_core_kernels_abandoned_total"+lbl, "kernels abandoned past the retry bound"),
		tracer:       hub.Trace(),
		pid:          gpu,
	}
}

// noteDecision records one right-sizing decision of size CUs on queue tid.
func (t *Telemetry) noteDecision(tid, size int, now float64) {
	if t == nil {
		return
	}
	t.Decisions.Inc()
	t.PartitionCUs.Observe(float64(size))
	t.tracer.Instant("core", "rightsize", t.pid, tid, now, "cus", float64(size))
}

// noteLadder records one ladder transition to level on queue tid.
func (t *Telemetry) noteLadder(tid, level int, widen bool, now float64) {
	if t == nil {
		return
	}
	name := "tighten"
	if widen {
		t.Widenings.Inc()
		name = "widen"
	} else {
		t.Tightenings.Inc()
	}
	t.tracer.Instant("core", name, t.pid, tid, now, "level", float64(level))
}
