package metrics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPercentileBasics(t *testing.T) {
	var s Sample
	for i := 1; i <= 100; i++ {
		s.Add(float64(i))
	}
	cases := []struct {
		p    float64
		want float64
	}{
		{0, 1}, {50, 50.5}, {100, 100}, {95, 95.05},
	}
	for _, c := range cases {
		if got := s.Percentile(c.p); math.Abs(got-c.want) > 0.2 {
			t.Errorf("P%v = %v, want ~%v", c.p, got, c.want)
		}
	}
}

func TestPercentileEmptyAndSingle(t *testing.T) {
	var s Sample
	if s.P95() != 0 || s.Mean() != 0 || s.Min() != 0 || s.Max() != 0 {
		t.Error("empty sample stats not zero")
	}
	s.Add(42)
	if s.P95() != 42 || s.Mean() != 42 || s.Percentile(1) != 42 {
		t.Error("single-value sample stats wrong")
	}
}

func TestAddAfterPercentileResorts(t *testing.T) {
	var s Sample
	s.Add(10)
	_ = s.P95()
	s.Add(1)
	if got := s.Min(); got != 1 {
		t.Errorf("Min = %v after late add, want 1", got)
	}
}

func TestMeanMinMax(t *testing.T) {
	var s Sample
	for _, v := range []float64{3, 1, 4, 1, 5} {
		s.Add(v)
	}
	if got := s.Mean(); math.Abs(got-2.8) > 1e-9 {
		t.Errorf("Mean = %v, want 2.8", got)
	}
	if s.Min() != 1 || s.Max() != 5 {
		t.Errorf("Min/Max = %v/%v, want 1/5", s.Min(), s.Max())
	}
	if s.Len() != 5 {
		t.Errorf("Len = %d, want 5", s.Len())
	}
}

func TestBoxStats(t *testing.T) {
	box := BoxOf([]float64{1, 2, 3, 4, 5})
	if box.Min != 1 || box.Median != 3 || box.Max != 5 {
		t.Errorf("Box = %+v", box)
	}
	if box.Q1 != 2 || box.Q3 != 4 {
		t.Errorf("quartiles = %v/%v, want 2/4", box.Q1, box.Q3)
	}
}

func TestGeomean(t *testing.T) {
	if got := Geomean([]float64{1, 100}); math.Abs(got-10) > 1e-9 {
		t.Errorf("Geomean(1,100) = %v, want 10", got)
	}
	if got := Geomean([]float64{2, 2, 2}); math.Abs(got-2) > 1e-9 {
		t.Errorf("Geomean(2,2,2) = %v, want 2", got)
	}
	if Geomean(nil) != 0 {
		t.Error("Geomean(nil) != 0")
	}
	if Geomean([]float64{1, 0, 4}) != 0 {
		t.Error("Geomean with zero entry should return 0")
	}
	if Geomean([]float64{-1}) != 0 {
		t.Error("Geomean with negative entry should return 0")
	}
}

func TestThroughput(t *testing.T) {
	// 500 requests over 2 virtual seconds = 250 RPS.
	if got := Throughput(500, 2e6); got != 250 {
		t.Errorf("Throughput = %v, want 250", got)
	}
	if Throughput(10, 0) != 0 {
		t.Error("zero window should yield 0")
	}
}

// Property: percentiles are monotone in p and bounded by min/max.
func TestPercentileMonotoneProperty(t *testing.T) {
	prop := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		var s Sample
		for i := 0; i < int(n%100)+1; i++ {
			s.Add(rng.Float64() * 1000)
		}
		prev := s.Min()
		for p := 5.0; p <= 100; p += 5 {
			v := s.Percentile(p)
			if v < prev-1e-9 || v > s.Max()+1e-9 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: geomean lies between min and max for positive inputs.
func TestGeomeanBoundsProperty(t *testing.T) {
	prop := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		count := int(n%20) + 1
		vals := make([]float64, count)
		lo, hi := math.Inf(1), math.Inf(-1)
		for i := range vals {
			vals[i] = rng.Float64()*99 + 1
			lo = math.Min(lo, vals[i])
			hi = math.Max(hi, vals[i])
		}
		g := Geomean(vals)
		return g >= lo-1e-9 && g <= hi+1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestPercentileKeepsValuesOrder is the regression test for the
// shared-slice footgun: Percentile used to sort the backing array that
// Values hands out, silently reordering caller-held slices. Sorting now
// happens on a private copy.
func TestPercentileKeepsValuesOrder(t *testing.T) {
	var s Sample
	in := []float64{5, 1, 4, 2, 3}
	for _, v := range in {
		s.Add(v)
	}
	held := s.Values()
	if got := s.Percentile(50); got != 3 {
		t.Errorf("P50 = %v, want 3", got)
	}
	_ = s.Min()
	_ = s.Max()
	for i, v := range held {
		if v != in[i] {
			t.Fatalf("Values()[%d] = %v after Percentile, want %v (insertion order lost)", i, v, in[i])
		}
	}
	// Adding after a percentile query must invalidate the sorted copy.
	s.Add(0)
	if got := s.Min(); got != 0 {
		t.Errorf("Min after Add = %v, want 0", got)
	}
}
