// Package metrics provides the statistics the evaluation harness reports:
// latency percentiles, throughput, geometric means, normalization helpers,
// and five-number summaries for the co-location boxplots (Fig. 15).
package metrics

import (
	"math"
	"sort"
)

// Sample accumulates scalar observations (latencies, in microseconds).
type Sample struct {
	values []float64
	// sorted is a lazily-built sorted copy of values, invalidated by Add.
	// Percentile/Min/Max sort this private copy rather than the backing
	// array itself, so slices handed out by Values keep insertion order.
	sorted []float64
}

// Add records one observation.
func (s *Sample) Add(v float64) {
	s.values = append(s.values, v)
	s.sorted = nil
}

// Len returns the number of observations.
func (s *Sample) Len() int { return len(s.values) }

// Values returns the raw observations in insertion order (shared slice; do
// not mutate). Percentile queries never reorder it.
func (s *Sample) Values() []float64 { return s.values }

func (s *Sample) sortValues() []float64 {
	if s.sorted == nil {
		s.sorted = make([]float64, len(s.values))
		copy(s.sorted, s.values)
		sort.Float64s(s.sorted)
	}
	return s.sorted
}

// Percentile returns the p-th percentile (0 < p <= 100) using linear
// interpolation between closest ranks. An empty sample returns 0.
func (s *Sample) Percentile(p float64) float64 {
	if len(s.values) == 0 {
		return 0
	}
	sorted := s.sortValues()
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// P95 returns the 95th percentile — the paper's tail-latency metric.
func (s *Sample) P95() float64 { return s.Percentile(95) }

// P99 returns the 99th percentile.
func (s *Sample) P99() float64 { return s.Percentile(99) }

// Mean returns the arithmetic mean, 0 when empty.
func (s *Sample) Mean() float64 {
	if len(s.values) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range s.values {
		sum += v
	}
	return sum / float64(len(s.values))
}

// Min returns the smallest observation, 0 when empty.
func (s *Sample) Min() float64 {
	if len(s.values) == 0 {
		return 0
	}
	return s.sortValues()[0]
}

// Max returns the largest observation, 0 when empty.
func (s *Sample) Max() float64 {
	if len(s.values) == 0 {
		return 0
	}
	sorted := s.sortValues()
	return sorted[len(sorted)-1]
}

// BoxStats is a five-number summary for boxplots (Fig. 15).
type BoxStats struct {
	Min, Q1, Median, Q3, Max float64
}

// Box returns the five-number summary of the sample.
func (s *Sample) Box() BoxStats {
	return BoxStats{
		Min:    s.Min(),
		Q1:     s.Percentile(25),
		Median: s.Percentile(50),
		Q3:     s.Percentile(75),
		Max:    s.Max(),
	}
}

// BoxOf summarizes a plain slice.
func BoxOf(values []float64) BoxStats {
	var s Sample
	for _, v := range values {
		s.Add(v)
	}
	return s.Box()
}

// Geomean returns the geometric mean of values; zero and negative entries
// are rejected by returning 0 (they would make the geomean meaningless).
func Geomean(values []float64) float64 {
	if len(values) == 0 {
		return 0
	}
	sumLog := 0.0
	for _, v := range values {
		if v <= 0 {
			return 0
		}
		sumLog += math.Log(v)
	}
	return math.Exp(sumLog / float64(len(values)))
}

// Throughput converts a completion count over a virtual-time window in
// microseconds to requests per second.
func Throughput(completed int, windowUs float64) float64 {
	if windowUs <= 0 {
		return 0
	}
	return float64(completed) / windowUs * 1e6
}
