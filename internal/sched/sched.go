// Package sched implements the prior works' serving-cluster control
// plane: Gpulet-style partition sizing and placement. Given per-model
// request rates, it sizes a spatial partition for each model from its
// profiled latency curve (the "minimum GPU% satisfying the QoS target at
// the offered rate" metric of Gpulet, in CUs), splits models across
// multiple instances when one GPU cannot carry the rate, and packs the
// resulting gpulets onto the fewest devices first-fit-decreasing.
//
// An epoch controller replans on a rate trace and accounts the
// reconfiguration cost of applying each new plan with process-scoped
// instances (shadow reloads) versus kernel-scoped partition instances
// (free) — quantifying the paper's Fig. 2 argument at cluster scale.
package sched

import (
	"fmt"
	"math"
	"sort"

	"krisp/internal/llm"
	"krisp/internal/models"
	"krisp/internal/profile"
	"krisp/internal/reconfig"
	"krisp/internal/sim"
)

// Demand is one model's serving requirement.
type Demand struct {
	Model models.Model
	Batch int
	// RatePerSec is the request rate the deployment must sustain.
	RatePerSec float64
}

// Gpulet is one scheduled instance: a model bound to a CU partition on a
// device.
type Gpulet struct {
	Model string
	Batch int
	CUs   int
	GPU   int
	// ExpectedRPS is the instance's profiled throughput at this size.
	ExpectedRPS float64
}

func (g Gpulet) String() string {
	return fmt.Sprintf("%s[%d CUs @ gpu%d, %.0f rps]", g.Model, g.CUs, g.GPU, g.ExpectedRPS)
}

// Plan is a placement of gpulets onto devices.
type Plan struct {
	Gpulets []Gpulet
	// GPUs is the number of devices used.
	GPUs int
	// Feasible is false when demands could not be placed within MaxGPUs.
	Feasible bool
}

// TotalCUs returns the CUs allocated on device gpu.
func (p Plan) TotalCUs(gpu int) int {
	n := 0
	for _, g := range p.Gpulets {
		if g.GPU == gpu {
			n += g.CUs
		}
	}
	return n
}

// InstancesOf returns the number of instances serving a model.
func (p Plan) InstancesOf(model string) int {
	n := 0
	for _, g := range p.Gpulets {
		if g.Model == model {
			n++
		}
	}
	return n
}

// Planner sizes and places gpulets from profiled latency curves.
type Planner struct {
	prof     *profile.Profiler
	totalCUs int
	// SLOFactor is the tolerated latency multiple of the isolated
	// full-GPU latency (the paper's SLO definition uses 2x).
	SLOFactor float64
	// sweeps caches per model/batch latency curves; llmSizings caches
	// per-phase LLM right-sizing decisions.
	sweeps     map[string][]profile.SweepPoint
	llmSizings map[string]LLMSizing
}

// NewPlanner creates a planner over the given profiling configuration.
func NewPlanner(cfg profile.Config) *Planner {
	return &Planner{
		prof:      profile.New(cfg),
		totalCUs:  cfg.Spec.Topo.TotalCUs(),
		SLOFactor: 2,
		sweeps:    make(map[string][]profile.SweepPoint),
	}
}

func (p *Planner) sweep(m models.Model, batch int) []profile.SweepPoint {
	key := fmt.Sprintf("%s/%d", m.Name, batch)
	if s, ok := p.sweeps[key]; ok {
		return s
	}
	s := p.prof.CUSweep(m.Kernels(batch))
	p.sweeps[key] = s
	return s
}

// InstanceRPS returns the profiled throughput (requests/second) of one
// instance of the model at an n-CU partition. The cluster placer uses it
// to turn gpulet sizes back into capacity estimates.
func (p *Planner) InstanceRPS(m models.Model, batch, n int) float64 {
	s := p.sweep(m, batch)
	lat := float64(s[n-1].Latency) // microseconds per batch
	return float64(batch) / lat * 1e6
}

// instanceRPS is the historical internal spelling.
func (p *Planner) instanceRPS(m models.Model, batch, n int) float64 {
	return p.InstanceRPS(m, batch, n)
}

// SLOLatency returns the model's SLO target: SLOFactor times the isolated
// full-GPU batch latency, the paper's QoS definition. The cluster router
// scores completed requests against it.
func (p *Planner) SLOLatency(m models.Model, batch int) sim.Duration {
	s := p.sweep(m, batch)
	return sim.Duration(p.SLOFactor * float64(s[p.totalCUs-1].Latency))
}

// Sizing is one demand's per-instance sizing decision, exported so the
// cluster placer can reason about gpulets without re-deriving curves.
type Sizing struct {
	// CUs is the per-instance partition size; Instances the scale-out
	// count that carries the rate within the SLO.
	CUs, Instances int
	// MinQoSCUs is the floor below which a single instance violates the
	// SLO at any rate.
	MinQoSCUs int
	// PerInstanceRPS is the profiled throughput of one instance at CUs.
	PerInstanceRPS float64
}

// SizeFor returns the smallest per-instance partition and instance count
// that sustains rate within the SLO. The per-instance size never goes
// below the size needed to keep latency within SLOFactor x isolated
// (otherwise the instance violates QoS no matter the count).
//
// Degenerate rates are handled explicitly rather than looping forever: a
// zero or negative rate keeps one warm instance at the QoS floor, and a
// NaN or +Inf rate panics (it would otherwise scale out without bound).
func (p *Planner) SizeFor(m models.Model, batch int, rate float64) (cus, instances int) {
	sz := p.Sizing(m, batch, rate)
	return sz.CUs, sz.Instances
}

// Sizing computes the full sizing decision for one demand; see SizeFor.
func (p *Planner) Sizing(m models.Model, batch int, rate float64) Sizing {
	if math.IsNaN(rate) || math.IsInf(rate, 0) {
		panic(fmt.Sprintf("sched: non-finite rate %v for model %s", rate, m.Name))
	}
	s := p.sweep(m, batch)
	fullLat := float64(s[p.totalCUs-1].Latency)
	// Minimum CUs that keeps latency within the SLO.
	minQoS := p.totalCUs
	for n := 1; n <= p.totalCUs; n++ {
		if float64(s[n-1].Latency) <= p.SLOFactor*fullLat {
			minQoS = n
			break
		}
	}
	if rate <= 0 {
		// No offered load: keep one warm instance at the QoS floor.
		return Sizing{CUs: minQoS, Instances: 1, MinQoSCUs: minQoS,
			PerInstanceRPS: p.InstanceRPS(m, batch, minQoS)}
	}
	// Scale out until the per-instance rate share is achievable, then
	// pick the smallest size that carries the share.
	for instances := 1; ; instances++ {
		share := rate / float64(instances)
		if p.InstanceRPS(m, batch, p.totalCUs) < share {
			continue // even a whole GPU cannot carry the share
		}
		for n := minQoS; n <= p.totalCUs; n++ {
			if rps := p.InstanceRPS(m, batch, n); rps >= share {
				return Sizing{CUs: n, Instances: instances, MinQoSCUs: minQoS, PerInstanceRPS: rps}
			}
		}
	}
}

// TotalCUs returns the per-device CU count the planner sizes against.
func (p *Planner) TotalCUs() int { return p.totalCUs }

// LLMSizing is the per-phase right-sizing decision for one autoregressive
// model: separate profiled partition sizes for the prefill and decode
// phases, the single shared size a phase-blind system would have to
// provision (the max of the two, since either phase violates its latency
// knee below its own size), and the capacity estimates the autoscaler
// turns rates into instance counts with.
type LLMSizing struct {
	// PrefillCUs / DecodeCUs are the profiled per-phase right-sizes.
	PrefillCUs, DecodeCUs int
	// SharedCUs is the phase-blind alternative: one size that keeps both
	// phases at their knees.
	SharedCUs int
	// PrefillLatency is one prompt pass at PrefillCUs; DecodeStepLatency
	// one token step of a full continuous batch at DecodeCUs.
	PrefillLatency, DecodeStepLatency sim.Duration
	// PrefillRPS is prompts/second of one prefill-sized instance;
	// DecodeTokPS generated tokens/second of one decode-sized instance.
	PrefillRPS, DecodeTokPS float64
}

// Instances converts a sequence rate into per-phase instance counts: how
// many prefill-sized and decode-sized gpulets carry rate sequences/second
// whose outputs average avgOutput tokens.
func (s LLMSizing) Instances(rate float64, avgOutput int) (prefill, decode int) {
	if avgOutput < 1 {
		avgOutput = 1
	}
	prefill, decode = 1, 1
	if rate > 0 && s.PrefillRPS > 0 {
		prefill = int(math.Ceil(rate / s.PrefillRPS))
	}
	if rate > 0 && s.DecodeTokPS > 0 {
		decode = int(math.Ceil(rate * float64(avgOutput) / s.DecodeTokPS))
	}
	if prefill < 1 {
		prefill = 1
	}
	if decode < 1 {
		decode = 1
	}
	return prefill, decode
}

// LLMSizing profiles the model's two phases at representative lengths —
// a prefill over avgPrompt tokens and a decode step of maxSeqs sequences
// at their mean resident context — and right-sizes each independently.
// Results are cached per (model, lengths, maxSeqs).
func (p *Planner) LLMSizing(m llm.Model, avgPrompt, avgOutput, maxSeqs int) LLMSizing {
	if avgPrompt < 1 {
		avgPrompt = 1
	}
	if avgOutput < 1 {
		avgOutput = 1
	}
	if maxSeqs < 1 {
		maxSeqs = 8
	}
	key := fmt.Sprintf("%s/%d/%d/%d", m.Name, avgPrompt, avgOutput, maxSeqs)
	if s, ok := p.llmSizings[key]; ok {
		return s
	}
	pre := m.PrefillKernels(avgPrompt)
	dec := m.DecodeKernels(maxSeqs, maxSeqs*(avgPrompt+avgOutput/2))
	sz := LLMSizing{
		PrefillCUs: p.prof.ModelRightSize(pre),
		DecodeCUs:  p.prof.ModelRightSize(dec),
	}
	sz.SharedCUs = sz.PrefillCUs
	if sz.DecodeCUs > sz.SharedCUs {
		sz.SharedCUs = sz.DecodeCUs
	}
	sz.PrefillLatency = p.prof.ModelLatency(pre, sz.PrefillCUs)
	sz.DecodeStepLatency = p.prof.ModelLatency(dec, sz.DecodeCUs)
	if sz.PrefillLatency > 0 {
		sz.PrefillRPS = 1e6 / float64(sz.PrefillLatency)
	}
	if sz.DecodeStepLatency > 0 {
		sz.DecodeTokPS = float64(maxSeqs) * 1e6 / float64(sz.DecodeStepLatency)
	}
	if p.llmSizings == nil {
		p.llmSizings = make(map[string]LLMSizing)
	}
	p.llmSizings[key] = sz
	return sz
}

// Plan sizes every demand and packs the gpulets first-fit-decreasing onto
// at most maxGPUs devices. An infeasible demand set returns a partial plan
// with Feasible=false.
func (p *Planner) Plan(demands []Demand, maxGPUs int) Plan {
	var all []Gpulet
	for _, d := range demands {
		batch := d.Batch
		if batch < 1 {
			batch = models.CalibrationBatch
		}
		cus, instances := p.SizeFor(d.Model, batch, d.RatePerSec)
		for i := 0; i < instances; i++ {
			all = append(all, Gpulet{
				Model:       d.Model.Name,
				Batch:       batch,
				CUs:         cus,
				ExpectedRPS: p.instanceRPS(d.Model, batch, cus),
			})
		}
	}
	sort.SliceStable(all, func(i, j int) bool { return all[i].CUs > all[j].CUs })

	free := make([]int, 0, maxGPUs)
	plan := Plan{Feasible: true}
	for i := range all {
		placed := false
		for g := range free {
			if free[g] >= all[i].CUs {
				free[g] -= all[i].CUs
				all[i].GPU = g
				placed = true
				break
			}
		}
		if !placed && len(free) < maxGPUs {
			free = append(free, p.totalCUs-all[i].CUs)
			all[i].GPU = len(free) - 1
			placed = true
		}
		if !placed {
			plan.Feasible = false
			all[i].GPU = -1
		}
	}
	plan.Gpulets = all
	plan.GPUs = len(free)
	return plan
}

// EpochReport accounts applying a sequence of plans.
type EpochReport struct {
	Epochs int
	// Resizes counts gpulet size/placement changes between epochs.
	Resizes int
	// ProcessScopedReload is the cumulative background reload time paid
	// with shadow instances (one reload per resize).
	ProcessScopedReload sim.Duration
	// KernelScopedReload is the equivalent with kernel-scoped partition
	// instances: zero — the next request simply uses the new size.
	KernelScopedReload sim.Duration
}

// ReplanTrace runs the epoch controller over a rate trace: one rate per
// epoch per demand (all trace slices must have equal length). It returns
// the plans and the reconfiguration accounting.
func (p *Planner) ReplanTrace(base []Demand, trace [][]float64, maxGPUs int, costs reconfig.Costs) ([]Plan, EpochReport) {
	if len(trace) == 0 {
		return nil, EpochReport{}
	}
	for _, rates := range trace {
		if len(rates) != len(base) {
			panic("sched: trace width does not match demands")
		}
	}
	plans := make([]Plan, 0, len(trace))
	report := EpochReport{Epochs: len(trace)}
	var prev Plan
	for e, rates := range trace {
		ds := make([]Demand, len(base))
		copy(ds, base)
		for i := range ds {
			ds[i].RatePerSec = rates[i]
		}
		plan := p.Plan(ds, maxGPUs)
		if e > 0 {
			report.Resizes += diffPlans(prev, plan)
		}
		plans = append(plans, plan)
		prev = plan
	}
	report.ProcessScopedReload = sim.Duration(report.Resizes) * costs.ReloadTime()
	return plans, report
}

// diffPlans counts instances whose (model, CUs, GPU) changed — each one is
// a reconfiguration a process-scoped system must reload for.
func diffPlans(a, b Plan) int {
	count := func(p Plan) map[string]int {
		m := make(map[string]int)
		for _, g := range p.Gpulets {
			m[fmt.Sprintf("%s/%d/%d", g.Model, g.CUs, g.GPU)]++
		}
		return m
	}
	am, bm := count(a), count(b)
	changes := 0
	for k, n := range bm {
		if n > am[k] {
			changes += n - am[k]
		}
	}
	return changes
}
