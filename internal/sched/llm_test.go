package sched

import (
	"math"
	"testing"

	"krisp/internal/llm"
)

// TestLLMSizingPerPhase: the planner must right-size the two phases far
// apart — prefill at a large compute-bound partition, decode at a small
// bandwidth-bound one — and the phase-blind shared size must be forced up
// to the larger of the two.
func TestLLMSizingPerPhase(t *testing.T) {
	p := planner()
	for _, m := range llm.All() {
		sz := p.LLMSizing(m, 128, 32, 8)
		if sz.PrefillCUs <= sz.DecodeCUs {
			t.Fatalf("%s: prefill %d CUs not above decode %d CUs", m.Name, sz.PrefillCUs, sz.DecodeCUs)
		}
		if sz.PrefillCUs < 3*sz.DecodeCUs {
			t.Fatalf("%s: phase sizes too close (%d vs %d) — right-sizing has nothing to win", m.Name, sz.PrefillCUs, sz.DecodeCUs)
		}
		if sz.SharedCUs != sz.PrefillCUs {
			t.Fatalf("%s: shared size %d != max phase size %d", m.Name, sz.SharedCUs, sz.PrefillCUs)
		}
		if sz.PrefillLatency <= 0 || sz.DecodeStepLatency <= 0 {
			t.Fatalf("%s: non-positive phase latencies %+v", m.Name, sz)
		}
		if sz.PrefillRPS <= 0 || sz.DecodeTokPS <= 0 {
			t.Fatalf("%s: non-positive capacity estimates %+v", m.Name, sz)
		}
		// The cache must return the identical decision.
		if again := p.LLMSizing(m, 128, 32, 8); again != sz {
			t.Fatalf("%s: cached sizing diverged: %+v vs %+v", m.Name, again, sz)
		}
	}
}

// TestLLMSizingInstances checks the rate-to-instance arithmetic both ways
// around the capacity boundary.
func TestLLMSizingInstances(t *testing.T) {
	p := planner()
	sz := p.LLMSizing(llm.Small(), 128, 32, 8)

	pre, dec := sz.Instances(0, 32)
	if pre != 1 || dec != 1 {
		t.Fatalf("zero rate sized %d/%d instances, want 1/1 warm", pre, dec)
	}
	// Exactly one prefill instance's worth of prompts needs one instance;
	// a hair more needs two.
	pre, _ = sz.Instances(sz.PrefillRPS, 32)
	if pre != 1 {
		t.Fatalf("rate == capacity sized %d prefill instances, want 1", pre)
	}
	pre, _ = sz.Instances(sz.PrefillRPS*1.01, 32)
	if pre != 2 {
		t.Fatalf("rate just over capacity sized %d prefill instances, want 2", pre)
	}
	// Decode tiers scale with the token rate: rate x avgOutput tokens/sec.
	rate := 100.0
	_, dec = sz.Instances(rate, 64)
	if want := int(math.Ceil(rate * 64 / sz.DecodeTokPS)); dec != want {
		t.Fatalf("decode tier = %d instances, want %d", dec, want)
	}
	// Longer outputs need more decode capacity at the same sequence rate.
	_, dec64 := sz.Instances(2000, 64)
	_, dec16 := sz.Instances(2000, 16)
	if dec64 <= dec16 {
		t.Fatalf("decode tier not growing with output length: %d (64 tok) vs %d (16 tok)", dec64, dec16)
	}
}

// BenchmarkLLMRightSizing measures the cold-cache cost of a per-phase
// right-sizing decision: two phase profiles plus the shared fallback.
func BenchmarkLLMRightSizing(b *testing.B) {
	m := llm.Small()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p := planner()
		sz := p.LLMSizing(m, 128, 32, 8)
		if sz.PrefillCUs == 0 {
			b.Fatal("right-sizing failed")
		}
	}
}
