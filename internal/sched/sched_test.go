package sched

import (
	"math"
	"testing"

	"krisp/internal/models"
	"krisp/internal/profile"
	"krisp/internal/reconfig"
)

func planner() *Planner { return NewPlanner(profile.DefaultConfig()) }

func model(t *testing.T, name string) models.Model {
	t.Helper()
	m, ok := models.ByName(name)
	if !ok {
		t.Fatalf("model %s missing", name)
	}
	return m
}

func TestSizeForGrowsWithRate(t *testing.T) {
	p := planner()
	m := model(t, "squeezenet")
	prevCUs, prevInst := 0, 0
	for _, rate := range []float64{500, 2000, 4000, 8000, 16000} {
		cus, inst := p.SizeFor(m, 32, rate)
		if cus < 1 || cus > 60 || inst < 1 {
			t.Fatalf("rate %.0f: cus=%d inst=%d", rate, cus, inst)
		}
		if inst*cus < prevInst*prevCUs {
			t.Errorf("total CUs shrank as rate grew: %d*%d then %d*%d", prevInst, prevCUs, inst, cus)
		}
		// The sized deployment really sustains the rate.
		if got := float64(inst) * p.instanceRPS(m, 32, cus); got < rate {
			t.Errorf("rate %.0f: sized deployment only sustains %.0f", rate, got)
		}
		prevCUs, prevInst = cus, inst
	}
}

func TestSizeForRespectsQoSFloor(t *testing.T) {
	p := planner()
	for _, name := range []string{"vgg19", "albert", "resnext101"} {
		m := model(t, name)
		cus, inst := p.SizeFor(m, 32, 1)
		if inst != 1 {
			t.Fatalf("%s: instances = %d for trivial rate", name, inst)
		}
		// The sized partition must satisfy the SLO: latency within
		// SLOFactor of the isolated full-GPU latency.
		sweep := p.prof.CUSweep(m.Kernels(32))
		full := float64(sweep[59].Latency)
		if got := float64(sweep[cus-1].Latency); got > p.SLOFactor*full {
			t.Errorf("%s sized to %d CUs: latency %.0f exceeds SLO %.0f",
				name, cus, got, p.SLOFactor*full)
		}
		// And one CU fewer must violate it (minimality) unless already 1.
		if cus > 1 {
			if got := float64(sweep[cus-2].Latency); got <= p.SLOFactor*full {
				t.Errorf("%s: %d CUs already satisfies SLO, sizing not minimal", name, cus-1)
			}
		}
	}
}

func TestSizeForScalesOut(t *testing.T) {
	p := planner()
	m := model(t, "vgg19") // ~400 rps isolated
	_, inst := p.SizeFor(m, 32, 1500)
	if inst < 3 {
		t.Errorf("1500 rps of vgg19 needs >= 3 instances, got %d", inst)
	}
}

func TestPlanPacksDisjointGPUs(t *testing.T) {
	p := planner()
	demands := []Demand{
		{Model: model(t, "albert"), Batch: 32, RatePerSec: 1000},
		{Model: model(t, "squeezenet"), Batch: 32, RatePerSec: 3000},
		{Model: model(t, "resnet152"), Batch: 32, RatePerSec: 3000},
	}
	plan := p.Plan(demands, 4)
	if !plan.Feasible {
		t.Fatalf("plan infeasible: %+v", plan)
	}
	for g := 0; g < plan.GPUs; g++ {
		if got := plan.TotalCUs(g); got > 60 {
			t.Errorf("gpu%d allocated %d CUs (> 60)", g, got)
		}
	}
	for _, m := range []string{"albert", "squeezenet", "resnet152"} {
		if plan.InstancesOf(m) == 0 {
			t.Errorf("%s not placed", m)
		}
	}
}

func TestPlanInfeasibleWhenTooFewGPUs(t *testing.T) {
	p := planner()
	demands := []Demand{
		{Model: model(t, "vgg19"), Batch: 32, RatePerSec: 3000}, // many instances
	}
	plan := p.Plan(demands, 1)
	if plan.Feasible {
		t.Error("3000 rps of vgg19 on one GPU reported feasible")
	}
	// At 8 GPUs it becomes feasible.
	plan = p.Plan(demands, 8)
	if !plan.Feasible {
		t.Error("3000 rps of vgg19 on eight GPUs reported infeasible")
	}
}

func TestPlanDefaultsBatch(t *testing.T) {
	p := planner()
	plan := p.Plan([]Demand{{Model: model(t, "albert"), RatePerSec: 500}}, 1)
	if len(plan.Gpulets) == 0 || plan.Gpulets[0].Batch != models.CalibrationBatch {
		t.Errorf("default batch not applied: %+v", plan.Gpulets)
	}
}

func TestReplanTraceAccountsReloads(t *testing.T) {
	p := planner()
	base := []Demand{
		{Model: model(t, "squeezenet"), Batch: 32},
		{Model: model(t, "albert"), Batch: 32},
	}
	// A diurnal-ish trace: load doubles, then halves.
	trace := [][]float64{
		{1000, 300},
		{4000, 600},
		{8000, 1200},
		{4000, 600},
		{1000, 300},
	}
	plans, report := p.ReplanTrace(base, trace, 4, reconfig.DefaultCosts())
	if len(plans) != 5 {
		t.Fatalf("%d plans, want 5", len(plans))
	}
	if report.Epochs != 5 {
		t.Errorf("epochs = %d", report.Epochs)
	}
	if report.Resizes == 0 {
		t.Error("a varying trace produced no resizes")
	}
	// Each resize costs a full reload process-scoped, nothing
	// kernel-scoped — the Fig. 2 argument at cluster scale.
	want := float64(report.Resizes) * reconfig.DefaultCosts().ReloadTime()
	if report.ProcessScopedReload != want {
		t.Errorf("process-scoped reload = %v, want %v", report.ProcessScopedReload, want)
	}
	if report.KernelScopedReload != 0 {
		t.Errorf("kernel-scoped reload = %v, want 0", report.KernelScopedReload)
	}
}

func TestReplanTraceStableLoadNoResizes(t *testing.T) {
	p := planner()
	base := []Demand{{Model: model(t, "squeezenet"), Batch: 32}}
	trace := [][]float64{{2000}, {2000}, {2000}}
	_, report := p.ReplanTrace(base, trace, 2, reconfig.DefaultCosts())
	if report.Resizes != 0 {
		t.Errorf("stable load produced %d resizes", report.Resizes)
	}
}

func TestReplanTraceValidation(t *testing.T) {
	p := planner()
	defer func() {
		if recover() == nil {
			t.Error("mismatched trace width did not panic")
		}
	}()
	p.ReplanTrace([]Demand{{Model: model(t, "albert")}}, [][]float64{{1, 2}}, 1, reconfig.DefaultCosts())
}

func TestEmptyTrace(t *testing.T) {
	p := planner()
	plans, report := p.ReplanTrace(nil, nil, 1, reconfig.DefaultCosts())
	if plans != nil || report.Epochs != 0 {
		t.Errorf("empty trace: %v %+v", plans, report)
	}
}

func TestSizingZeroRateKeepsWarmInstance(t *testing.T) {
	p := planner()
	m := model(t, "albert")
	for _, rate := range []float64{0, -5} {
		sz := p.Sizing(m, 32, rate)
		if sz.Instances != 1 {
			t.Fatalf("rate %v: instances = %d, want 1 warm instance", rate, sz.Instances)
		}
		if sz.CUs != sz.MinQoSCUs {
			t.Fatalf("rate %v: warm instance sized %d CUs, want the QoS floor %d",
				rate, sz.CUs, sz.MinQoSCUs)
		}
		if sz.PerInstanceRPS <= 0 {
			t.Fatalf("rate %v: non-positive capacity estimate", rate)
		}
	}
}

func TestSizingNonFiniteRatePanics(t *testing.T) {
	p := planner()
	m := model(t, "albert")
	for _, rate := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("rate %v did not panic", rate)
				}
			}()
			p.Sizing(m, 32, rate)
		}()
	}
}

func TestSizingMatchesSizeFor(t *testing.T) {
	p := planner()
	m := model(t, "squeezenet")
	for _, rate := range []float64{1, 700, 3000, 9000} {
		cus, inst := p.SizeFor(m, 32, rate)
		sz := p.Sizing(m, 32, rate)
		if cus != sz.CUs || inst != sz.Instances {
			t.Fatalf("rate %v: SizeFor (%d, %d) != Sizing %+v", rate, cus, inst, sz)
		}
		if got := p.InstanceRPS(m, 32, sz.CUs); got != sz.PerInstanceRPS {
			t.Fatalf("rate %v: InstanceRPS %v != Sizing.PerInstanceRPS %v", rate, got, sz.PerInstanceRPS)
		}
	}
}

func TestSLOLatencyIsFactorOfIsolated(t *testing.T) {
	p := planner()
	m := model(t, "resnet152")
	slo := p.SLOLatency(m, 32)
	full := p.sweep(m, 32)[p.totalCUs-1].Latency
	if got := float64(slo); got != p.SLOFactor*float64(full) {
		t.Fatalf("SLOLatency = %v, want %v x %v", got, p.SLOFactor, full)
	}
}

func TestReplanTraceZeroRateEpochs(t *testing.T) {
	// A trace that collapses to zero demand must not panic or drop the
	// model: zero-rate epochs keep one warm instance.
	p := planner()
	base := []Demand{{Model: model(t, "squeezenet"), Batch: 32}}
	trace := [][]float64{{8000}, {0}, {8000}}
	plans, report := p.ReplanTrace(base, trace, 2, reconfig.DefaultCosts())
	if len(plans) != 3 {
		t.Fatalf("%d plans, want 3", len(plans))
	}
	for e, plan := range plans {
		if !plan.Feasible {
			t.Fatalf("epoch %d infeasible", e)
		}
		if plan.InstancesOf("squeezenet") < 1 {
			t.Fatalf("epoch %d dropped the model entirely", e)
		}
	}
	if plans[1].InstancesOf("squeezenet") != 1 {
		t.Fatalf("zero-rate epoch kept %d instances, want 1 warm", plans[1].InstancesOf("squeezenet"))
	}
	if report.Resizes == 0 {
		t.Fatal("scaling to zero and back accounted no resizes")
	}
}

func TestReplanTraceMaxGPUsExhaustion(t *testing.T) {
	// When an epoch's demand exceeds the fleet, the plan must come back
	// infeasible (with overflow instances marked unplaced) instead of
	// packing beyond maxGPUs — and later feasible epochs must recover.
	p := planner()
	base := []Demand{{Model: model(t, "vgg19"), Batch: 32}}
	trace := [][]float64{{300}, {20000}, {300}}
	plans, _ := p.ReplanTrace(base, trace, 2, reconfig.DefaultCosts())
	if plans[0].Feasible != true || plans[2].Feasible != true {
		t.Fatal("light epochs reported infeasible")
	}
	if plans[1].Feasible {
		t.Fatal("20000 rps of vgg19 on two GPUs reported feasible")
	}
	unplaced := 0
	for _, g := range plans[1].Gpulets {
		if g.GPU == -1 {
			unplaced++
		} else if g.GPU < 0 || g.GPU >= 2 {
			t.Fatalf("gpulet placed on out-of-range GPU %d", g.GPU)
		}
	}
	if unplaced == 0 {
		t.Fatal("infeasible plan has no unplaced gpulets")
	}
	for g := 0; g < 2; g++ {
		if got := plans[1].TotalCUs(g); got > 60 {
			t.Fatalf("gpu%d oversubscribed to %d CUs", g, got)
		}
	}
}
