package kernels

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestConstructorsProduceValidWork(t *testing.T) {
	descs := []Desc{
		Conv2D(32, 64, 56, 56, 128, 3, 1),
		Conv2DFFT(32, 64, 56, 56, 64, 3),
		GroupedConv(32, 232, 28, 28, 3, 232),
		GEMM(32, 512, 512, 512),
		GEMMSmall(32, 128, 64, 256),
		BatchNorm(32, 64, 56, 56),
		Pooling(32, 64, 56, 56, 2),
		Softmax(32*12*128, 128),
		LayerNorm(32*128, 768),
		Elementwise(32*64*56*56, 2),
		Reduce(32 * 1000),
		Embedding(32*128, 768),
		Im2Col(32, 64, 56, 56, 3),
		VecMult(4096),
	}
	for _, d := range descs {
		if d.Name == "" {
			t.Errorf("%v: empty name", d)
		}
		if d.Work.Workgroups < 1 {
			t.Errorf("%s: %d workgroups", d.Name, d.Work.Workgroups)
		}
		if d.Work.ThreadsPerWG < 1 {
			t.Errorf("%s: %d threads/WG", d.Name, d.Work.ThreadsPerWG)
		}
		if d.Work.WGTime <= 0 {
			t.Errorf("%s: WGTime %v", d.Name, d.Work.WGTime)
		}
		if d.Work.MemBytes < 0 || d.InputBytes < 0 {
			t.Errorf("%s: negative bytes", d.Name)
		}
	}
}

func TestDescKeyDistinguishesGeometry(t *testing.T) {
	a := GEMM(32, 512, 512, 512)
	b := GEMM(32, 512, 512, 1024) // same tiles, different K
	c := GEMM(32, 1024, 512, 512)
	if a.Key() == c.Key() {
		t.Error("different tile counts share a key")
	}
	if a.Key() != b.Key() {
		// Same geometry: K changes WGTime but not the key. The perf DB
		// keys on launch geometry like MIOpen's does; this is intentional
		// and the profiler stores the worst case.
		t.Errorf("same-geometry kernels should share a key: %s vs %s", a.Key(), b.Key())
	}
	if !strings.Contains(a.String(), "Cijk") {
		t.Errorf("String() = %q", a.String())
	}
}

func TestElementwiseIsBandwidthBound(t *testing.T) {
	d := Elementwise(32*64*112*112, 2)
	computeTime := float64(d.Work.Workgroups) / 600 * float64(d.Work.WGTime)
	memTime := d.Work.MemBytes / 1e6
	if memTime <= computeTime {
		t.Errorf("elementwise should be memory-bound: mem %v <= compute %v", memTime, computeTime)
	}
}

func TestGEMMIsComputeBound(t *testing.T) {
	d := GEMM(32, 1024, 1024, 1024)
	computeTime := float64(d.Work.Workgroups) / 600 * float64(d.Work.WGTime)
	memTime := d.Work.MemBytes / 1e6
	if computeTime <= memTime {
		t.Errorf("large GEMM should be compute-bound: compute %v <= mem %v", computeTime, memTime)
	}
}

func TestSizedComputeGeometry(t *testing.T) {
	d := SizedCompute("k", 12, 10, 1, 5)
	if d.Work.Workgroups != 120 {
		t.Errorf("Workgroups = %d, want 120", d.Work.Workgroups)
	}
	d = SizedCompute("k", 26, 10, 3, 5)
	if d.Work.Workgroups != 260 {
		t.Errorf("Workgroups = %d, want 260", d.Work.Workgroups)
	}
	if d.Work.WGTime != 15 {
		t.Errorf("WGTime = %v, want 15 (scale x base)", d.Work.WGTime)
	}
	// Degenerate inputs clamp.
	d = SizedCompute("k", 0, 10, 0, 5)
	if d.Work.Workgroups != 10 {
		t.Errorf("clamped Workgroups = %d, want 10", d.Work.Workgroups)
	}
}

// Property: scaling batch size never decreases workgroup count or memory
// traffic for the main layer kernels.
func TestBatchMonotonicityProperty(t *testing.T) {
	prop := func(b8 uint8) bool {
		b := int(b8%31) + 1
		small := GEMM(b, 256, 256, 256)
		big := GEMM(b+1, 256, 256, 256)
		if big.Work.Workgroups < small.Work.Workgroups {
			return false
		}
		sc := Conv2D(b, 64, 56, 56, 64, 3, 1)
		bc := Conv2D(b+1, 64, 56, 56, 64, 3, 1)
		return bc.Work.Workgroups >= sc.Work.Workgroups && bc.Work.MemBytes >= sc.Work.MemBytes
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestThreadsReported(t *testing.T) {
	d := VecMult(100)
	if got := d.Work.Threads(); got != 100*256 {
		t.Errorf("Threads() = %d, want %d", got, 100*256)
	}
}
