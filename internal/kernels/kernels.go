// Package kernels describes GPU compute kernels the way KRISP's profiler
// sees them: a named kernel family (mirroring MIOpen / rocBLAS kernel
// names), a launch geometry (workgroups x workgroup size), a compute cost,
// and a memory-traffic cost.
//
// Constructors derive gpu.KernelWork from layer-level parameters using a
// roofline-style model: per-workgroup-slot compute throughput plus total
// DRAM traffic. The resulting kernels reproduce the paper's Fig. 6
// observation that neither kernel size (total threads) nor input size
// predicts the minimum required CUs — kernel *type* dominates: dense convs
// and large GEMMs need most of the machine, elementwise/normalization
// kernels are bandwidth-bound and tolerate tiny partitions, and mid-size
// single-wave kernels have knees wherever their wave count quantizes.
package kernels

import (
	"fmt"

	"krisp/internal/gpu"
	"krisp/internal/sim"
)

// Family names mimic the kernel symbol names that show up in ROCm traces.
const (
	FamilyConvDirect  = "miopenSp3AsmConv_v21_1_2"
	FamilyConvFFT     = "MIOpenConvFFT_fwd_in"
	FamilyConvGroup   = "gfx9_f3x2_fp32_stride1_group"
	FamilyGEMM        = "Cijk_Ailk_Bljk_SB_MT128x128"
	FamilyGEMMSmall   = "Cijk_Ailk_Bljk_SB_MT64x64"
	FamilyBatchNorm   = "MIOpenBatchNormFwdInferSpatial"
	FamilyPooling     = "mloPoolingG"
	FamilySoftmax     = "softmax_warp_forward"
	FamilyLayerNorm   = "vectorized_layer_norm_kernel"
	FamilyElementwise = "elementwise_kernel_4"
	FamilyReduce      = "reduce_kernel_512"
	FamilyEmbedding   = "indexSelectLargeIndex"
	FamilyIm2Col      = "MIOpenIm2Col"
	FamilyVecMult     = "vec_mult"
)

// Per-workgroup-slot fp32 throughput, in FLOPs per microsecond. The MI50
// peaks at ~13.4 TFLOPS over 60 CUs x 10 slots, i.e. ~22.3 GFLOP/s per
// slot.
const slotFLOPsPerUs = 22300.0

// efficiency is the fraction of peak a family actually achieves; tuned to
// typical achieved throughput of each kernel class.
var efficiency = map[string]float64{
	FamilyConvDirect:  0.72,
	FamilyConvFFT:     0.45,
	FamilyConvGroup:   0.55,
	FamilyGEMM:        0.85,
	FamilyGEMMSmall:   0.60,
	FamilyBatchNorm:   0.30,
	FamilyPooling:     0.35,
	FamilySoftmax:     0.25,
	FamilyLayerNorm:   0.30,
	FamilyElementwise: 0.50,
	FamilyReduce:      0.40,
	FamilyEmbedding:   0.35,
	FamilyIm2Col:      0.40,
	FamilyVecMult:     0.50,
}

// Phase tags a kernel with the autoregressive serving phase it belongs
// to. Classic fixed-sequence models leave it at PhaseNone (the zero
// value), so nothing about their descriptors, keys, or database entries
// changes. LLM models tag their prefill and decode kernels so a
// phase-aware right-sizer can grant different partition sizes to the two
// phases of the same replica — the kernel-wise argument applied to the
// starkest minCU split the workload class has.
type Phase uint8

const (
	// PhaseNone marks a kernel outside any autoregressive phase.
	PhaseNone Phase = iota
	// PhasePrefill marks prompt-processing kernels: large GEMMs, compute
	// bound, high minCU.
	PhasePrefill
	// PhaseDecode marks per-token generation kernels: batched GEMV plus
	// KV-cache scans, bandwidth bound, low minCU.
	PhaseDecode
)

func (p Phase) String() string {
	switch p {
	case PhasePrefill:
		return "prefill"
	case PhaseDecode:
		return "decode"
	default:
		return "none"
	}
}

// Desc is a fully-specified kernel dispatch: what the ROCm runtime would
// see in an AQL kernel packet, plus bookkeeping for profiling figures.
type Desc struct {
	// Name is the kernel family (symbol) name.
	Name string
	// Work is the device-level cost model input.
	Work gpu.KernelWork
	// InputBytes is the size of the kernel's input tensor(s), used for the
	// Fig. 6b input-size scatter; it differs from Work.MemBytes, which is
	// total DRAM traffic.
	InputBytes float64
	// Phase is the autoregressive serving phase, if any (LLM models only).
	Phase Phase
}

func (d Desc) String() string {
	return fmt.Sprintf("%s{wgs=%d thr=%d}", d.Name, d.Work.Workgroups, d.Work.ThreadsPerWG)
}

// Key identifies a kernel variant for the performance database: the same
// family launched with a different geometry is a different database entry,
// matching how MIOpen's perf DB keys on problem configuration.
func (d Desc) Key() string {
	return fmt.Sprintf("%s/%d/%d", d.Name, d.Work.Workgroups, d.Work.ThreadsPerWG)
}

// build assembles a Desc from raw costs, applying family efficiency.
func build(name string, wgs, threadsPerWG int, flopsPerWG, memBytes, inputBytes float64) Desc {
	if wgs < 1 {
		wgs = 1
	}
	eff := efficiency[name]
	if eff == 0 {
		eff = 0.5
	}
	wgTime := flopsPerWG / (slotFLOPsPerUs * eff)
	if wgTime < 0.02 {
		wgTime = 0.02 // floor: even trivial WGs cost some cycles
	}
	return Desc{
		Name: name,
		Work: gpu.KernelWork{
			Workgroups:   wgs,
			ThreadsPerWG: threadsPerWG,
			WGTime:       sim.Duration(wgTime),
			MemBytes:     memBytes,
			Tail:         0.5,
		},
		InputBytes: inputBytes,
	}
}

const f32 = 4 // bytes per fp32 element

// Conv2D models a direct convolution: batch x cin x h x w input, cout
// filters of k x k, given stride. Each workgroup produces a 4096-element
// output tile.
func Conv2D(batch, cin, h, w, cout, k, stride int) Desc {
	oh, ow := (h-k)/stride+1, (w-k)/stride+1
	if oh < 1 {
		oh = 1
	}
	if ow < 1 {
		ow = 1
	}
	outElems := batch * cout * oh * ow
	flopsPerOut := float64(2 * k * k * cin)
	const tile = 4096
	wgs := (outElems + tile - 1) / tile
	in := float64(batch*cin*h*w) * f32
	weights := float64(cout*cin*k*k) * f32
	out := float64(outElems) * f32
	return build(FamilyConvDirect, wgs, 256, flopsPerOut*tile, in+weights+out, in)
}

// Conv2DFFT models MIOpen's FFT-based convolution path: fewer, fatter
// workgroups with heavy scratch traffic. The paper's Fig. 6a highlights
// this family (green circles) as exceeding the GPU's thread limit while
// still tolerating CU restriction — the scratch traffic makes it
// bandwidth-bound.
func Conv2DFFT(batch, cin, h, w, cout, k int) Desc {
	outElems := batch * cout * h * w
	const tile = 8192
	wgs := (outElems + tile - 1) / tile
	// FFT replaces the k*k MACs with log-factor work but reads/writes
	// transformed scratch several times.
	flopsPerOut := float64(8 * cin)
	in := float64(batch*cin*h*w) * f32
	scratch := 6 * (in + float64(outElems)*f32)
	return build(FamilyConvFFT, wgs, 512, flopsPerOut*tile, scratch, in)
}

// GroupedConv models grouped/depthwise convolution (shufflenet-style).
// Little weight reuse makes it bandwidth-hungry per FLOP.
func GroupedConv(batch, channels, h, w, k, groups int) Desc {
	outElems := batch * channels * h * w
	const tile = 2048
	wgs := (outElems + tile - 1) / tile
	flopsPerOut := float64(2 * k * k * channels / groups)
	in := float64(batch*channels*h*w) * f32
	return build(FamilyConvGroup, wgs, 256, flopsPerOut*tile, 2.2*in, in)
}

// GEMM models a rocBLAS SGEMM C[m,n] += A[m,k] x B[k,n] with 128x128
// macro-tiles, optionally batched.
func GEMM(batch, m, n, k int) Desc {
	tm, tn := (m+127)/128, (n+127)/128
	wgs := tm * tn * batch
	flopsPerWG := float64(2 * 128 * 128 * k)
	bytes := float64(batch*(m*k+k*n+m*n)) * f32
	in := float64(batch*m*k) * f32
	return build(FamilyGEMM, wgs, 256, flopsPerWG, bytes, in)
}

// GEMMSmall models the 64x64-tile SGEMM variant rocBLAS selects for
// skinnier problems; more workgroups, lower efficiency.
func GEMMSmall(batch, m, n, k int) Desc {
	tm, tn := (m+63)/64, (n+63)/64
	wgs := tm * tn * batch
	flopsPerWG := float64(2 * 64 * 64 * k)
	bytes := float64(batch*(m*k+k*n+m*n)) * f32
	in := float64(batch*m*k) * f32
	return build(FamilyGEMMSmall, wgs, 256, flopsPerWG, bytes, in)
}

// BatchNorm models inference-mode spatial batch norm over batch x c x h x w.
func BatchNorm(batch, c, h, w int) Desc {
	elems := batch * c * h * w
	const perWG = 4096
	wgs := (elems + perWG - 1) / perWG
	bytes := float64(elems) * f32 * 2.5 // read + write + stats
	return build(FamilyBatchNorm, wgs, 256, 4*perWG, bytes, float64(elems)*f32)
}

// Pooling models max/avg pooling with window k over batch x c x h x w.
func Pooling(batch, c, h, w, k int) Desc {
	outElems := batch * c * (h / k) * (w / k)
	if outElems < 1 {
		outElems = 1
	}
	const perWG = 2048
	wgs := (outElems + perWG - 1) / perWG
	in := float64(batch*c*h*w) * f32
	return build(FamilyPooling, wgs, 256, float64(k*k)*perWG, in+float64(outElems)*f32, in)
}

// Softmax models a warp-per-row softmax over rows x cols.
func Softmax(rows, cols int) Desc {
	// One warp (64 threads) per row, 4 rows per 256-thread WG.
	wgs := (rows + 3) / 4
	bytes := float64(rows*cols) * f32 * 2
	return build(FamilySoftmax, wgs, 256, float64(8*cols*4), bytes, float64(rows*cols)*f32)
}

// LayerNorm models a vectorized layer norm over rows x cols.
func LayerNorm(rows, cols int) Desc {
	wgs := (rows + 3) / 4
	bytes := float64(rows*cols) * f32 * 2
	return build(FamilyLayerNorm, wgs, 256, float64(10*cols*4), bytes, float64(rows*cols)*f32)
}

// Elementwise models a fused pointwise op (add, relu, gelu, ...) over elems
// elements with the given arity (tensors read).
func Elementwise(elems, arity int) Desc {
	const perWG = 4096
	wgs := (elems + perWG - 1) / perWG
	bytes := float64(elems) * f32 * float64(arity+1)
	return build(FamilyElementwise, wgs, 256, float64(2*perWG), bytes, float64(elems*arity)*f32)
}

// Reduce models a tree reduction over elems elements.
func Reduce(elems int) Desc {
	const perWG = 8192
	wgs := (elems + perWG - 1) / perWG
	bytes := float64(elems) * f32
	return build(FamilyReduce, wgs, 512, float64(2*perWG), bytes, bytes)
}

// Embedding models an embedding-table gather of rows x dim.
func Embedding(rows, dim int) Desc {
	const rowsPerWG = 16
	wgs := (rows + rowsPerWG - 1) / rowsPerWG
	bytes := float64(rows*dim) * f32 * 2
	return build(FamilyEmbedding, wgs, 256, float64(dim*rowsPerWG), bytes, bytes/2)
}

// Im2Col models the im2col expansion preceding GEMM-based convolution.
func Im2Col(batch, cin, h, w, k int) Desc {
	elems := batch * cin * h * w * k * k
	const perWG = 8192
	wgs := (elems + perWG - 1) / perWG
	bytes := float64(elems) * f32 * 1.2
	return build(FamilyIm2Col, wgs, 256, float64(perWG), bytes, float64(batch*cin*h*w)*f32)
}

// VecMult is the microbenchmark kernel of the paper's Fig. 8: a dense
// vector multiply with a tunable workgroup count, compute-dominated so CU
// distribution effects show cleanly.
func VecMult(wgs int) Desc {
	return build(FamilyVecMult, wgs, 256, 40*slotFLOPsPerUs*0.5, float64(wgs)*1024*f32, float64(wgs)*1024*f32)
}

// SizedCompute builds a synthetic compute-bound kernel whose minimum
// required CUs lands near target when allocated with the Conserved policy:
// it issues exactly target x SlotsPerCU workgroups so the wave count is 1
// at or above the target allocation and 2 below it. The scale factor
// multiplies the per-workgroup time, stretching total duration without
// moving the knee. Used by model calibration.
func SizedCompute(name string, target, slotsPerCU, scale int, wgTime sim.Duration) Desc {
	if target < 1 {
		target = 1
	}
	if scale < 1 {
		scale = 1
	}
	wgs := target * slotsPerCU
	d := Desc{
		Name: name,
		Work: gpu.KernelWork{
			Workgroups:   wgs,
			ThreadsPerWG: 256,
			WGTime:       wgTime * sim.Duration(scale),
			Tail:         0.5,
		},
		InputBytes: float64(wgs) * 1024,
	}
	return d
}
