#!/usr/bin/env sh
# scripts/profile.sh — capture pprof CPU and heap profiles of krisp-bench.
#
# Builds cmd/krisp-bench and runs the given experiment (default: the
# table4 -quick grid, the dispatch-path stress test) with -cpuprofile and
# -memprofile, then prints the top entries of each profile so hot spots
# are visible without leaving the terminal. The raw profiles stay in
# /tmp/krisp_{cpu,mem}.pprof for interactive `go tool pprof` sessions.
#
# Usage: scripts/profile.sh [experiment] [extra krisp-bench flags...]
set -eu

cd "$(dirname "$0")/.."
exp="${1:-table4}"
[ $# -gt 0 ] && shift

cpu=/tmp/krisp_cpu.pprof
mem=/tmp/krisp_mem.pprof
bin=/tmp/krisp-bench-profile

go build -o "$bin" ./cmd/krisp-bench

echo "== profiling: $bin -exp $exp -quick -cpuprofile $cpu -memprofile $mem $* =="
"$bin" -exp "$exp" -quick -cpuprofile "$cpu" -memprofile "$mem" "$@" > /dev/null

echo
echo "== top CPU (cumulative) =="
go tool pprof -top -cum -nodecount 15 "$bin" "$cpu" | sed -n '1,25p'
echo
echo "== top heap (alloc_space) =="
go tool pprof -top -sample_index=alloc_space -nodecount 15 "$bin" "$mem" | sed -n '1,25p'
echo
echo "profiles: $cpu $mem  (open with: go tool pprof $bin $cpu)"
